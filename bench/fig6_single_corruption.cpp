// Figure 6b/6e: single corrupted query — the incremental algorithm
// without tuple slicing (inc1) against tuple slicing at batch sizes
// k = 1, 2, 8.
//
// The paper's findings: inc1 without tuple slicing stops scaling around
// 50 queries; tuple slicing is ~200x faster; k > 1 destroys accuracy
// because batched parameterization goes infeasible.
//
// [scaled] N_D = 40 (paper 1000) for the unsliced inc1 variant's sake;
// sliced variants are insensitive to N_D.
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

int main() {
  const bool full = bench::FullMode();
  std::vector<size_t> log_sizes = full
                                      ? std::vector<size_t>{10, 20, 30, 40, 50}
                                      : std::vector<size_t>{10, 20, 30};

  workload::SyntheticSpec base;
  base.num_tuples = 40;
  base.num_attrs = 10;
  base.value_domain = 100;
  base.range_size = 8;

  std::printf("Figure 6b/6e: single corruption, inc_k variants "
              "(N_D = %zu [scaled])\n\n", base.num_tuples);
  harness::Table time_table(
      {"Nq", "inc1", "inc1-tuple", "inc2-tuple", "inc8-tuple"});
  harness::Table f1_table(
      {"Nq", "inc1", "inc1-tuple", "inc2-tuple", "inc8-tuple"});

  struct Variant {
    const char* name;
    int k;
    bool tuple;
  };
  const Variant variants[] = {
      {"inc1", 1, false},
      {"inc1-tuple", 1, true},
      {"inc2-tuple", 2, true},
      {"inc8-tuple", 8, true},
  };

  for (size_t nq : log_sizes) {
    workload::SyntheticSpec spec = base;
    spec.num_queries = nq;
    std::vector<std::string> time_row{std::to_string(nq)};
    std::vector<std::string> f1_row{std::to_string(nq)};
    for (const Variant& v : variants) {
      bench::Aggregate agg;
      for (int t = 0; t < bench::Trials(); ++t) {
        // Corrupt a mid-log query (the paper varies it; mid is
        // representative for the scaling question).
        workload::Scenario s = workload::MakeSyntheticScenario(
            spec, {nq / 2}, 300 + t);
        if (s.complaints.empty()) continue;
        qfixcore::QFixOptions opt;
        opt.tuple_slicing = v.tuple;
        opt.query_slicing = true;
        opt.attribute_slicing = true;
        opt.time_limit_seconds = 15.0;
        int k = v.k;
        agg.Add(bench::RunTrial(
            s,
            [k](qfixcore::QFixEngine& e) { return e.RepairIncremental(k); },
            opt));
      }
      time_row.push_back(agg.TimeCell());
      f1_row.push_back(agg.F1Cell());
    }
    time_table.AddRow(time_row);
    f1_table.AddRow(f1_row);
  }
  std::printf("-- time (seconds) --\n");
  bench::PrintAndExport(time_table, "fig6_single_corruption_time");
  std::printf("\n-- F1 --\n");
  bench::PrintAndExport(f1_table, "fig6_single_corruption_accuracy");
  std::printf(
      "\nExpected shape: inc1 without tuple slicing is the slowest and "
      "degrades with Nq;\ninc1-tuple is fastest with F1 ~ 1; larger k "
      "trades accuracy for nothing (paper Fig. 6b/6e).\n");
  return 0;
}
