// Observability overhead: what the telemetry layer costs on the
// serving hot path. Two measurements:
//
//  1. Per-instrument costs in a tight loop (Counter::Inc,
//     Histogram::Observe, TraceContext mint + 6 spans) — nanoseconds
//     per operation, so a regression in the lock-cheap design is
//     visible directly.
//  2. The acceptance bar: the complete per-request instrumentation
//     block one /v1/diagnose pays (one TraceContext mint, six spans,
//     the span->histogram mapping, seven histogram observations, five
//     counter increments) is timed directly and divided by the p50 of
//     a representative small request (a fixed ~100us compute kernel,
//     sized like a cheap cached diagnose; real requests are larger).
//     That ratio — the p50 overhead — must stay <= 2%. The block is
//     measured directly rather than by A/B-ing instrumented vs bare
//     request loops because identical ~100us blocks drift several
//     microseconds by loop position alone on shared CI hardware,
//     swamping a ~1us effect.
//
// Numbers are hardware-dependent (single-core CI containers inflate
// constant costs relative to the kernel, same caveat as
// BENCH_service.json); the bar is intentionally generous for that
// reason. The emitted table is the checked-in baseline BENCH_obs.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "harness/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace qfix;

namespace {

/// Fixed deterministic FP work standing in for a small served request
/// (roughly a cache-hit diagnose: decode + key + render). Returns a
/// value the caller must consume so the loop cannot be elided.
double ComputeKernel(int rounds) {
  double acc = 1.0;
  for (int i = 0; i < rounds; ++i) {
    acc += 1.0 / (1.0 + acc * acc);
  }
  return acc;
}

double PercentileOf(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(q * (samples.size() - 1));
  return samples[idx];
}

struct Instruments {
  obs::MetricsRegistry registry;
  obs::Counter* requests;
  obs::Counter* items;
  obs::Counter* nodes;
  obs::Counter* lp_iterations;
  obs::Counter* constraints;
  obs::Histogram* phases[6];
  obs::Histogram* tenant_seconds;

  Instruments() {
    obs::CounterFamily* reqs = registry.AddCounter(
        "bench_requests_total", "Requests.", {"endpoint"});
    requests = reqs->WithLabels({"diagnose"});
    items = registry.AddCounter("bench_items_total", "Items.")->Get();
    nodes = registry.AddCounter("bench_nodes_total", "Nodes.")->Get();
    lp_iterations =
        registry.AddCounter("bench_lp_total", "LP iterations.")->Get();
    constraints =
        registry.AddCounter("bench_constraints_total", "Constraints.")->Get();
    obs::HistogramFamily* phase_family = registry.AddHistogram(
        "bench_phase_seconds", "Phases.", obs::DefaultLatencyBucketEdges(),
        {"phase"});
    const char* names[6] = {"parse",  "cache", "admission",
                            "encode", "solve", "render"};
    for (int i = 0; i < 6; ++i) {
      phases[i] = phase_family->WithLabels({names[i]});
    }
    tenant_seconds =
        registry
            .AddHistogram("bench_diagnose_seconds", "Diagnose.",
                          obs::DefaultLatencyBucketEdges(), {"tenant"})
            ->WithLabels({"t1"});
  }
};

}  // namespace

int main() {
  const int trials = bench::Trials();
  const int requests = bench::FullMode() ? 20000 : 4000;
  const int kernel_rounds = 12000;  // ~100us of FP work per "request"

  std::printf("observability overhead: instrumented vs bare hot path\n\n");

  Instruments inst;

  // --- Part 1: per-instrument nanosecond costs. -------------------------
  harness::Table ops({"operation", "ops", "ns/op"});
  const int kOps = bench::FullMode() ? 2000000 : 500000;
  {
    WallTimer timer;
    for (int i = 0; i < kOps; ++i) inst.requests->Inc();
    ops.AddRow({"counter_inc", std::to_string(kOps),
                harness::Table::Cell(timer.ElapsedSeconds() / kOps * 1e9)});
  }
  {
    WallTimer timer;
    for (int i = 0; i < kOps; ++i) {
      inst.phases[4]->Observe(1e-4 * (i % 128));
    }
    ops.AddRow({"histogram_observe", std::to_string(kOps),
                harness::Table::Cell(timer.ElapsedSeconds() / kOps * 1e9)});
  }
  {
    const int kTraces = kOps / 10;
    WallTimer timer;
    for (int i = 0; i < kTraces; ++i) {
      obs::TraceContext trace;
      for (const char* phase :
           {"parse", "cache", "admission", "encode", "solve", "render"}) {
        trace.EndSpan(trace.BeginSpan(phase));
      }
    }
    ops.AddRow({"trace_6_spans", std::to_string(kTraces),
                harness::Table::Cell(timer.ElapsedSeconds() / kTraces * 1e9)});
  }
  bench::PrintAndExport(ops, "obs_ops");
  std::printf("\n");

  // --- Part 2: the 2%% p50 acceptance bar. ------------------------------
  // (a) p50 of the representative request, best trial.
  double request_p50 = 1e9, request_p99 = 0.0;
  volatile double sink = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> samples;
    samples.reserve(requests);
    for (int r = 0; r < requests; ++r) {
      WallTimer timer;
      sink = sink + ComputeKernel(kernel_rounds);
      samples.push_back(timer.ElapsedSeconds());
    }
    double p50 = PercentileOf(samples, 0.50);
    if (p50 < request_p50) {
      request_p50 = p50;
      request_p99 = PercentileOf(samples, 0.99);
    }
  }
  (void)sink;

  // (b) the full per-request instrumentation block, timed directly.
  double block_seconds = 1e9;
  for (int trial = 0; trial < trials; ++trial) {
    WallTimer timer;
    for (int r = 0; r < requests; ++r) {
      obs::TraceContext trace;
      size_t sp = trace.BeginSpan("parse");
      trace.EndSpan(sp);
      sp = trace.BeginSpan("cache");
      trace.EndSpan(sp);
      sp = trace.BeginSpan("admission");
      trace.EndSpan(sp);
      double before = trace.ElapsedSeconds();
      double after = trace.ElapsedSeconds();  // the kernel would run here
      trace.AddSpan("encode", before, before);
      trace.AddSpan("solve", before, after);
      sp = trace.BeginSpan("render");
      trace.EndSpan(sp);
      inst.requests->Inc();
      inst.items->Inc();
      inst.nodes->Inc(3);
      inst.lp_iterations->Inc(40);
      inst.constraints->Inc(25);
      const double elapsed = trace.ElapsedSeconds();
      for (const obs::TraceSpan& span : trace.spans()) {
        int i = 0;
        for (const char* name :
             {"parse", "cache", "admission", "encode", "solve", "render"}) {
          if (span.phase == name) {
            inst.phases[i]->Observe(span.DurationSeconds());
          }
          ++i;
        }
      }
      inst.tenant_seconds->Observe(elapsed);
    }
    block_seconds = std::min(block_seconds,
                             timer.ElapsedSeconds() / requests);
  }

  const double overhead_pct =
      request_p50 > 0.0 ? block_seconds / request_p50 * 100.0 : 0.0;
  harness::Table table({"series", "requests", "p50_us", "p99_us",
                        "obs_block_ns", "overhead_pct"});
  table.AddRow({"request", std::to_string(requests),
                harness::Table::Cell(request_p50 * 1e6),
                harness::Table::Cell(request_p99 * 1e6), "-", "-"});
  table.AddRow({"instrumented", std::to_string(requests), "-", "-",
                harness::Table::Cell(block_seconds * 1e9),
                harness::Table::Cell(overhead_pct)});
  bench::PrintAndExport(table, "obs");

  // One render at the end: the exposition must lint clean after the
  // hammering above (the same invariant the unit tests assert).
  Status lint = obs::LintExposition(inst.registry.RenderPrometheus());
  if (!lint.ok()) {
    std::printf("\nexposition lint FAILED: %s\n", lint.ToString().c_str());
    return 1;
  }

  std::printf("\np50 overhead: %.2f%% (bar: <= 2%%%s)\n", overhead_pct,
              overhead_pct <= 2.0 ? ", met" : ", MISSED");
  return 0;
}
