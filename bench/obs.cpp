// Observability overhead: what the telemetry layer costs on the
// serving hot path. Two measurements:
//
//  1. Per-instrument costs in a tight loop (Counter::Inc,
//     Histogram::Observe with and without an exemplar, TraceContext
//     mint + 6 spans, the same trace with solver-internal child spans,
//     TraceRecorder::Record on its common sampled-out drop path) —
//     nanoseconds per operation, so a regression in the lock-cheap
//     design is visible directly.
//  2. The acceptance bar: the complete per-request instrumentation
//     block one /v1/diagnose pays (one TraceContext mint, six
//     top-level spans plus four solver-internal children, the
//     span->histogram mapping, seven histogram observations — one
//     with an exemplar — five counter increments, and the flight
//     recorder's tail-sampling decision) is timed and divided by the p50 of
//     a representative small request (a fixed ~100us compute kernel,
//     sized like a cheap cached diagnose; real requests are larger).
//     That ratio — the p50 overhead — must stay <= 2%. The block is
//     measured directly rather than by A/B-ing instrumented vs bare
//     request loops because identical ~100us blocks drift several
//     microseconds by loop position alone on shared CI hardware,
//     swamping a ~1us effect.
//
// Numbers are hardware-dependent (single-core CI containers inflate
// constant costs relative to the kernel, same caveat as
// BENCH_service.json); the bar is intentionally generous for that
// reason. The emitted table is the checked-in baseline BENCH_obs.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "harness/table.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

using namespace qfix;

namespace {

/// Fixed deterministic FP work standing in for a small served request
/// (roughly a cache-hit diagnose: decode + key + render). Returns a
/// value the caller must consume so the loop cannot be elided.
double ComputeKernel(int rounds) {
  double acc = 1.0;
  for (int i = 0; i < rounds; ++i) {
    acc += 1.0 / (1.0 + acc * acc);
  }
  return acc;
}

double PercentileOf(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(q * (samples.size() - 1));
  return samples[idx];
}

struct Instruments {
  obs::MetricsRegistry registry;
  obs::Counter* requests;
  obs::Counter* items;
  obs::Counter* nodes;
  obs::Counter* lp_iterations;
  obs::Counter* constraints;
  obs::Histogram* phases[6];
  obs::Histogram* tenant_seconds;

  Instruments() {
    obs::CounterFamily* reqs = registry.AddCounter(
        "bench_requests_total", "Requests.", {"endpoint"});
    requests = reqs->WithLabels({"diagnose"});
    items = registry.AddCounter("bench_items_total", "Items.")->Get();
    nodes = registry.AddCounter("bench_nodes_total", "Nodes.")->Get();
    lp_iterations =
        registry.AddCounter("bench_lp_total", "LP iterations.")->Get();
    constraints =
        registry.AddCounter("bench_constraints_total", "Constraints.")->Get();
    obs::HistogramFamily* phase_family = registry.AddHistogram(
        "bench_phase_seconds", "Phases.", obs::DefaultLatencyBucketEdges(),
        {"phase"});
    const char* names[6] = {"parse",  "cache", "admission",
                            "encode", "solve", "render"};
    for (int i = 0; i < 6; ++i) {
      phases[i] = phase_family->WithLabels({names[i]});
    }
    tenant_seconds =
        registry
            .AddHistogram("bench_diagnose_seconds", "Diagnose.",
                          obs::DefaultLatencyBucketEdges(), {"tenant"})
            ->WithLabels({"t1"});
  }
};

}  // namespace

int main() {
  const int trials = bench::Trials();
  const int requests = bench::FullMode() ? 20000 : 4000;
  const int kernel_rounds = 12000;  // ~100us of FP work per "request"

  std::printf("observability overhead: instrumented vs bare hot path\n\n");

  Instruments inst;

  // --- Part 1: per-instrument nanosecond costs. -------------------------
  harness::Table ops({"operation", "ops", "ns/op"});
  const int kOps = bench::FullMode() ? 2000000 : 500000;
  {
    WallTimer timer;
    for (int i = 0; i < kOps; ++i) inst.requests->Inc();
    ops.AddRow({"counter_inc", std::to_string(kOps),
                harness::Table::Cell(timer.ElapsedSeconds() / kOps * 1e9)});
  }
  {
    WallTimer timer;
    for (int i = 0; i < kOps; ++i) {
      inst.phases[4]->Observe(1e-4 * (i % 128));
    }
    ops.AddRow({"histogram_observe", std::to_string(kOps),
                harness::Table::Cell(timer.ElapsedSeconds() / kOps * 1e9)});
  }
  {
    const int kTraces = kOps / 10;
    WallTimer timer;
    for (int i = 0; i < kTraces; ++i) {
      obs::TraceContext trace;
      for (const char* phase :
           {"parse", "cache", "admission", "encode", "solve", "render"}) {
        trace.EndSpan(trace.BeginSpan(phase));
      }
    }
    ops.AddRow({"trace_6_spans", std::to_string(kTraces),
                harness::Table::Cell(timer.ElapsedSeconds() / kTraces * 1e9)});
  }
  {
    WallTimer timer;
    for (int i = 0; i < kOps; ++i) {
      inst.tenant_seconds->ObserveWithExemplar(1e-4 * (i % 128), "q-bench");
    }
    ops.AddRow({"histogram_observe_exemplar", std::to_string(kOps),
                harness::Table::Cell(timer.ElapsedSeconds() / kOps * 1e9)});
  }
  {
    // The trace a solver-crossing request actually builds: six
    // top-level phases plus presolve/root_lp/node_batch/incumbent
    // children hanging off "solve".
    const int kTraces = kOps / 10;
    WallTimer timer;
    for (int i = 0; i < kTraces; ++i) {
      obs::TraceContext trace;
      for (const char* phase : {"parse", "cache", "admission", "encode"}) {
        trace.EndSpan(trace.BeginSpan(phase));
      }
      size_t solve = trace.BeginSpan("solve");
      for (const char* child :
           {"presolve", "root_lp", "node_batch", "incumbent_update"}) {
        trace.EndSpan(trace.BeginSpan(child, solve));
      }
      trace.EndSpan(solve);
      trace.EndSpan(trace.BeginSpan("render"));
    }
    ops.AddRow({"trace_6_spans_4_children", std::to_string(kTraces),
                harness::Table::Cell(timer.ElapsedSeconds() / kTraces * 1e9)});
  }
  {
    // Flight recorder, common path: an ok-fast trace at the default 1%
    // sampling — the decision is a relaxed atomic read plus a hash;
    // ~99% of the iterations never take the ring's lock.
    obs::TraceRecorder recorder(obs::TraceRecorder::Options{
        4 * 1024 * 1024, /*sample_probability=*/0.01,
        /*slow_threshold_seconds=*/0.1});
    const int kRecords = kOps / 10;
    WallTimer timer;
    for (int i = 0; i < kRecords; ++i) {
      obs::RetainedTrace t;
      t.request_id = "q-bench";
      t.tenant = "t1";
      t.dataset = "t1/taxes";
      t.endpoint = "/v1/diagnose";
      t.duration_seconds = 1e-4;
      t.spans.resize(10);
      recorder.Record(std::move(t));
    }
    ops.AddRow({"recorder_record_1pct", std::to_string(kRecords),
                harness::Table::Cell(timer.ElapsedSeconds() / kRecords * 1e9)});
  }
  bench::PrintAndExport(ops, "obs_ops");
  std::printf("\n");

  // --- Part 2: the 2%% p50 acceptance bar. ------------------------------
  // (a) p50 of the representative request, best trial.
  double request_p50 = 1e9, request_p99 = 0.0;
  volatile double sink = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> samples;
    samples.reserve(requests);
    for (int r = 0; r < requests; ++r) {
      WallTimer timer;
      sink = sink + ComputeKernel(kernel_rounds);
      samples.push_back(timer.ElapsedSeconds());
    }
    double p50 = PercentileOf(samples, 0.50);
    if (p50 < request_p50) {
      request_p50 = p50;
      request_p99 = PercentileOf(samples, 0.99);
    }
  }
  (void)sink;

  // (b) the full per-request instrumentation block, timed directly:
  // everything the server pays today, including the solver-internal
  // child spans, the exemplar slot, and the flight recorder's
  // tail-sampling decision at the default 1% retention.
  obs::TraceRecorder recorder(obs::TraceRecorder::Options{
      4 * 1024 * 1024, /*sample_probability=*/0.01,
      /*slow_threshold_seconds=*/0.1});
  double block_seconds = 1e9;
  for (int trial = 0; trial < trials; ++trial) {
    WallTimer timer;
    for (int r = 0; r < requests; ++r) {
      obs::TraceContext trace;
      size_t sp = trace.BeginSpan("parse");
      trace.EndSpan(sp);
      sp = trace.BeginSpan("cache");
      trace.EndSpan(sp);
      sp = trace.BeginSpan("admission");
      trace.EndSpan(sp);
      double before = trace.ElapsedSeconds();
      double after = trace.ElapsedSeconds();  // the kernel would run here
      trace.AddSpan("encode", before, before);
      size_t solve = trace.AddSpan("solve", before, after);
      trace.AddSpan("presolve", before, before, solve);
      trace.AddSpan("root_lp", before, before, solve);
      trace.AddSpan("node_batch", before, after, solve);
      trace.AddSpan("incumbent_update", after, after, solve);
      sp = trace.BeginSpan("render");
      trace.EndSpan(sp);
      inst.requests->Inc();
      inst.items->Inc();
      inst.nodes->Inc(3);
      inst.lp_iterations->Inc(40);
      inst.constraints->Inc(25);
      const double elapsed = trace.ElapsedSeconds();
      // One observation per phase per request, as the server
      // aggregates (solver children are trace-only detail).
      for (const obs::TraceSpan& span : trace.spans()) {
        if (span.parent >= 0) continue;
        int i = 0;
        for (const char* name :
             {"parse", "cache", "admission", "encode", "solve", "render"}) {
          if (span.phase == name) {
            inst.phases[i]->Observe(span.DurationSeconds());
          }
          ++i;
        }
      }
      inst.tenant_seconds->ObserveWithExemplar(elapsed, "q-bench");
      obs::RetainedTrace rt;
      rt.request_id = "q-bench";
      rt.tenant = "t1";
      rt.dataset = "t1/taxes";
      rt.endpoint = "/v1/diagnose";
      rt.duration_seconds = elapsed;
      rt.spans.assign(trace.spans().begin(), trace.spans().end());
      recorder.Record(std::move(rt));
    }
    block_seconds = std::min(block_seconds,
                             timer.ElapsedSeconds() / requests);
  }

  const double overhead_pct =
      request_p50 > 0.0 ? block_seconds / request_p50 * 100.0 : 0.0;
  harness::Table table({"series", "requests", "p50_us", "p99_us",
                        "obs_block_ns", "overhead_pct"});
  table.AddRow({"request", std::to_string(requests),
                harness::Table::Cell(request_p50 * 1e6),
                harness::Table::Cell(request_p99 * 1e6), "-", "-"});
  table.AddRow({"instrumented", std::to_string(requests), "-", "-",
                harness::Table::Cell(block_seconds * 1e9),
                harness::Table::Cell(overhead_pct)});
  bench::PrintAndExport(table, "obs");

  // One render at the end: the exposition must lint clean after the
  // hammering above (the same invariant the unit tests assert).
  Status lint = obs::LintExposition(inst.registry.RenderPrometheus());
  if (!lint.ok()) {
    std::printf("\nexposition lint FAILED: %s\n", lint.ToString().c_str());
    return 1;
  }

  std::printf("\np50 overhead: %.2f%% (bar: <= 2%%%s)\n", overhead_pct,
              overhead_pct <= 2.0 ? ", met" : ", MISSED");
  return 0;
}
