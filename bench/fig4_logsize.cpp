// Figure 4: log size vs execution time over N_D records — the motivating
// experiment showing that parameterizing the whole log (`basic`, red
// bars) explodes while parameterizing a single query (blue bars) stays
// cheap.
//
// [scaled] The paper uses N_D = 1000; the from-scratch solver's dense
// simplex caps the unsliced encoding, so the default run uses N_D = 20
// with the same query shapes. The shape — basic collapsing within tens
// of queries while single-query parameterization survives — is the
// reproduced claim. QFIX_BENCH_FULL=1 doubles the scale.
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

int main() {
  const bool full = bench::FullMode();
  const size_t nd = full ? 24 : 12;
  std::vector<size_t> log_sizes = full
                                      ? std::vector<size_t>{10, 20, 30, 40, 50}
                                      : std::vector<size_t>{4, 8, 12, 16, 20};

  std::printf("Figure 4: log size vs execution time (N_D = %zu records)\n",
              nd);
  std::printf("basic = all queries parameterized; single = only the "
              "corrupted query\n\n");

  harness::Table table({"Nq", "basic(s)", "single(s)", "basic_F1",
                        "single_F1", "MILP_rows(basic)"});
  for (size_t nq : log_sizes) {
    workload::SyntheticSpec spec;
    spec.num_tuples = nd;
    spec.num_queries = nq;
    spec.num_attrs = 5;
    spec.value_domain = 50;
    spec.range_size = 8;

    bench::Aggregate basic_agg, single_agg;
    int basic_rows = 0;
    for (int t = 0; t < bench::Trials(); ++t) {
      workload::Scenario s =
          workload::MakeSyntheticScenario(spec, {0}, 100 + t);
      if (s.complaints.empty()) continue;

      qfixcore::QFixOptions basic_opt;
      basic_opt.tuple_slicing = false;
      basic_opt.query_slicing = false;
      basic_opt.attribute_slicing = false;
      basic_opt.time_limit_seconds = 15.0;
      auto basic_res = bench::RunTrial(
          s, [](qfixcore::QFixEngine& e) { return e.RepairBasic(); },
          basic_opt);
      basic_agg.Add(basic_res);
      if (basic_res.ok) basic_rows = basic_res.stats.num_constraints;

      qfixcore::QFixOptions single_opt;
      single_opt.time_limit_seconds = 15.0;
      auto single_res = bench::RunTrial(
          s, [](qfixcore::QFixEngine& e) { return e.RepairSingle(0); },
          single_opt);
      single_agg.Add(single_res);
    }
    table.AddRow({std::to_string(nq), basic_agg.TimeCell(),
                  single_agg.TimeCell(), basic_agg.F1Cell(),
                  single_agg.F1Cell(),
                  basic_rows > 0 ? std::to_string(basic_rows) : "-"});
  }
  bench::PrintAndExport(table, "fig4_logsize");
  std::printf(
      "\nExpected shape: basic time grows steeply / collapses to "
      "'limit' as Nq grows;\nsingle-query parameterization stays fast "
      "(paper Fig. 4, red vs blue bars).\n");
  return 0;
}
