// Report-cache payoff: cold solve vs warm hit latency, and throughput
// as a function of the request stream's repetition (hit ratio) — the
// serving shape the src/cache subsystem exists for. Cold requests
// build a fresh snapshot (unique version, guaranteed miss); warm
// requests repeat one (dataset, version, complaint-set) identity.
//
// The acceptance bar for the cache layer is warm-hit latency >= 10x
// below cold-solve latency; the "speedup" cell records the measured
// ratio. Numbers are hardware-dependent (single-core container caveat
// as in BENCH_milp/BENCH_service, though hits vs solves is dominated by
// work elimination, not parallelism). The emitted table is the
// checked-in baseline BENCH_cache.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cache/report_cache.h"
#include "cache/snapshot.h"
#include "common/random.h"
#include "common/timer.h"
#include "provenance/complaint.h"
#include "qfix/batch.h"
#include "relational/executor.h"

using namespace qfix;

namespace {

// The paper's Figure-2 fixture (tests/test_support.h shape), built
// locally so the bench owns its data.
relational::Database TaxD0() {
  relational::Database db(relational::Schema({"income", "owed", "pay"}),
                          "Taxes");
  db.AddTuple({9500, 950, 8550});
  db.AddTuple({90000, 22500, 67500});
  db.AddTuple({86000, 21500, 64500});
  db.AddTuple({86500, 21625, 64875});
  return db;
}

relational::QueryLog PaperLog(double q1_threshold) {
  using relational::CmpOp;
  using relational::LinearExpr;
  using relational::Predicate;
  using relational::Query;
  relational::QueryLog log;
  log.push_back(Query::Update(
      "Taxes", {{1, LinearExpr::AttrScaled(0, 0.3)}},
      Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, q1_threshold})));
  log.push_back(Query::Insert("Taxes", {87000, 21750, 65250}));
  LinearExpr pay = LinearExpr::Attr(0);
  pay.AddTerm(1, -1.0);
  log.push_back(Query::Update("Taxes", {{2, pay}}, Predicate::True()));
  return log;
}

qfixcore::BatchItem FreshItem() {
  // A fresh snapshot per call: unique version -> guaranteed cache miss.
  cache::Snapshot snap =
      cache::MakeSnapshot(PaperLog(85700), TaxD0(), "taxes");
  relational::Database truth =
      relational::ExecuteLog(PaperLog(87500), snap->d0());
  provenance::ComplaintSet complaints =
      provenance::DiffStates(snap->dirty, truth);
  qfixcore::QFixOptions options;
  options.time_limit_seconds = 30.0;
  return qfixcore::MakeBatchItem(std::move(snap), std::move(complaints),
                                 options);
}

}  // namespace

int main() {
  const int trials = bench::Trials();
  const int requests = bench::FullMode() ? 400 : 80;

  std::printf("report cache: cold solves vs warm hits (figure-2 repair)\n\n");

  harness::Table table({"series", "requests", "ms/req", "req/s", "hits",
                        "misses", "speedup"});

  // ---- 1. Cold vs warm latency. ----
  double cold_ms = 1e30;
  double warm_ms = 1e30;
  {
    cache::ReportCache cache(16 << 20);
    qfixcore::BatchOptions options;
    options.jobs = 0;
    options.report_cache = &cache;
    qfixcore::BatchDiagnoser diagnoser(options);

    for (int t = 0; t < trials; ++t) {
      // Cold: every request is a fresh (version, complaints) identity.
      std::vector<qfixcore::BatchItem> cold_items;
      cold_items.reserve(requests);
      for (int i = 0; i < requests; ++i) cold_items.push_back(FreshItem());
      double s0 = MonotonicSeconds();
      for (const auto& item : cold_items) {
        auto r = diagnoser.Run({item});
        if (!r[0].ok()) {
          std::fprintf(stderr, "cold solve failed: %s\n",
                       r[0].status().ToString().c_str());
          return 1;
        }
      }
      cold_ms = std::min(cold_ms,
                         (MonotonicSeconds() - s0) * 1e3 / requests);

      // Warm: one identity, repeated — after the seeding solve, every
      // run is a hit that must skip the solver.
      qfixcore::BatchItem hot = FreshItem();
      (void)diagnoser.Run({hot});  // seed
      double s1 = MonotonicSeconds();
      for (int i = 0; i < requests; ++i) {
        auto r = diagnoser.Run({hot});
        if (!r[0].ok() || !r[0]->from_cache) {
          std::fprintf(stderr, "expected a cache hit\n");
          return 1;
        }
      }
      warm_ms = std::min(warm_ms,
                         (MonotonicSeconds() - s1) * 1e3 / requests);
    }
    cache::ReportCache::Stats stats = cache.stats();
    table.AddRow({"cold-solve", harness::Table::Cell(double(requests)),
                  harness::Table::Cell(cold_ms),
                  harness::Table::Cell(1e3 / cold_ms), "0",
                  std::to_string(stats.misses), "1.0"});
    table.AddRow({"warm-hit", harness::Table::Cell(double(requests)),
                  harness::Table::Cell(warm_ms),
                  harness::Table::Cell(1e3 / warm_ms),
                  std::to_string(stats.hits), "0",
                  harness::Table::Cell(cold_ms / warm_ms)});
  }

  // ---- 2. Hit-ratio sweep: repetition in the stream -> throughput. ----
  for (int percent : {0, 50, 90, 99}) {
    double best_rps = 0.0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    for (int t = 0; t < trials; ++t) {
      cache::ReportCache cache(16 << 20);
      qfixcore::BatchOptions options;
      options.jobs = 0;
      options.report_cache = &cache;
      qfixcore::BatchDiagnoser diagnoser(options);
      qfixcore::BatchItem hot = FreshItem();
      (void)diagnoser.Run({hot});  // seed the hot identity

      Rng rng(42 + percent + t);
      // Pre-build the cold tail so snapshot construction is not timed.
      std::vector<qfixcore::BatchItem> stream;
      stream.reserve(requests);
      for (int i = 0; i < requests; ++i) {
        stream.push_back(rng.UniformInt(1, 100) <= percent ? hot
                                                           : FreshItem());
      }
      double s0 = MonotonicSeconds();
      for (const auto& item : stream) {
        auto r = diagnoser.Run({item});
        if (!r[0].ok()) return 1;
      }
      double seconds = MonotonicSeconds() - s0;
      best_rps = std::max(best_rps, requests / seconds);
      cache::ReportCache::Stats stats = cache.stats();
      hits = stats.hits;
      misses = stats.misses;
    }
    table.AddRow({"stream-" + std::to_string(percent) + "pct",
                  harness::Table::Cell(double(requests)),
                  harness::Table::Cell(1e3 / best_rps),
                  harness::Table::Cell(best_rps), std::to_string(hits),
                  std::to_string(misses), "-"});
  }

  bench::PrintAndExport(table, "cache");

  const double speedup = cold_ms / warm_ms;
  std::printf("\nwarm-hit speedup over cold solve: %.1fx %s\n", speedup,
              speedup >= 10.0 ? "(meets the >=10x bar)"
                              : "(BELOW the >=10x bar)");
  return speedup >= 10.0 ? 0 : 1;
}
