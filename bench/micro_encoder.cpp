// Microbenchmarks (google-benchmark) for the QFix encoder and the
// surrounding per-repair machinery: problem encoding, full-impact
// analysis, and log execution.
#include <benchmark/benchmark.h>

#include "provenance/impact.h"
#include "qfix/encoder.h"
#include "relational/executor.h"
#include "workload/synthetic.h"

namespace qfix {
namespace {

workload::Scenario MakeScenario(size_t nd, size_t nq) {
  workload::SyntheticSpec spec;
  spec.num_tuples = nd;
  spec.num_attrs = 10;
  spec.value_domain = static_cast<double>(nd);
  spec.range_size = 10;
  spec.num_queries = nq;
  return workload::MakeSyntheticScenario(spec, {nq / 2}, 99);
}

void BM_EncodeIncremental(benchmark::State& state) {
  workload::Scenario s =
      MakeScenario(1000, static_cast<size_t>(state.range(0)));
  const size_t n = s.dirty_log.size();
  qfixcore::EncodeRequest req;
  req.log = &s.dirty_log;
  req.d0 = &s.d0;
  req.dirty_dn = &s.dirty;
  req.complaints = &s.complaints;
  req.parameterized.assign(n, false);
  req.parameterized[n / 2] = true;
  req.encoded.assign(n, true);
  for (const auto& c : s.complaints.complaints()) {
    req.tuple_slots.push_back(static_cast<size_t>(c.tid));
  }
  for (auto _ : state) {
    auto problem = qfixcore::Encode(req);
    benchmark::DoNotOptimize(problem.ok());
  }
}
BENCHMARK(BM_EncodeIncremental)->Arg(50)->Arg(100)->Arg(200);

void BM_FullImpactAnalysis(benchmark::State& state) {
  workload::Scenario s =
      MakeScenario(100, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto impacts = provenance::ComputeFullImpacts(
        s.dirty_log, s.d0.schema().num_attrs());
    benchmark::DoNotOptimize(impacts.size());
  }
}
BENCHMARK(BM_FullImpactAnalysis)->Arg(100)->Arg(500)->Arg(2000);

void BM_ExecuteLog(benchmark::State& state) {
  workload::Scenario s =
      MakeScenario(static_cast<size_t>(state.range(0)), 300);
  for (auto _ : state) {
    relational::Database dn = relational::ExecuteLog(s.dirty_log, s.d0);
    benchmark::DoNotOptimize(dn.NumSlots());
  }
}
BENCHMARK(BM_ExecuteLog)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace qfix

BENCHMARK_MAIN();
