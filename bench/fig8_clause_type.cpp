// Figure 8b: query clause types — Constant vs Relative SET crossed with
// Point vs Range WHERE, over the corruption's age in the log.
//
// Paper findings: point predicates and constant SET clauses are easier
// than ranges and relative SETs (ranges double the undetermined
// variables; constant SETs break the input-output chain).
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

int main() {
  const bool full = bench::FullMode();
  const size_t nq = full ? 60 : 30;
  std::vector<size_t> ages =
      full ? std::vector<size_t>{1, 15, 30, 45, 59}
           : std::vector<size_t>{1, 10, 20, 29};  // corruption index

  std::printf("Figure 8b: clause-type cost over corruption index "
              "(Nq = %zu, inc1-all)\n\n", nq);
  harness::Table table({"corrupt_idx", "Const/Point(s)", "Const/Range(s)",
                        "Rel/Point(s)", "Rel/Range(s)"});

  struct Variant {
    workload::SetClauseType set;
    workload::WhereClauseType where;
  };
  const Variant variants[] = {
      {workload::SetClauseType::kConstant, workload::WhereClauseType::kPoint},
      {workload::SetClauseType::kConstant, workload::WhereClauseType::kRange},
      {workload::SetClauseType::kRelative, workload::WhereClauseType::kPoint},
      {workload::SetClauseType::kRelative, workload::WhereClauseType::kRange},
  };

  for (size_t age : ages) {
    std::vector<std::string> row{std::to_string(age)};
    for (const Variant& v : variants) {
      workload::SyntheticSpec spec;
      spec.num_tuples = 150;
      spec.num_attrs = 10;
      spec.value_domain = 200;
      spec.range_size = 6;
      spec.num_queries = nq;
      spec.set_type = v.set;
      spec.where_type = v.where;

      bench::Aggregate agg;
      for (int t = 0; t < bench::Trials(); ++t) {
        workload::Scenario s = workload::MakeSyntheticScenario(
            spec, {nq - age}, 800 + t);
        if (s.complaints.empty()) continue;
        qfixcore::QFixOptions opt;
        opt.time_limit_seconds = 20.0;
        agg.Add(bench::RunTrial(
            s,
            [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
            opt));
      }
      row.push_back(agg.TimeCell());
    }
    table.AddRow(row);
  }
  bench::PrintAndExport(table, "fig8_clause_type");
  std::printf(
      "\nExpected shape: Point < Range, Constant < Relative; cost grows "
      "with corruption age (paper Fig. 8b).\n");
  return 0;
}
