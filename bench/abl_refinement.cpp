// Ablation: the tuple-slicing refinement step (§5.1 step 2).
//
// Measures the overhead of the second MILP and its effect on precision
// in the over-generalization scenario of Fig. 5b (non-overlapping dirty
// and true predicate ranges with stranded non-complaint tuples).
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

int main() {
  const bool full = bench::FullMode();
  const size_t nq = full ? 40 : 20;
  std::printf("Ablation: refinement step on/off (Nq = %zu, single "
              "corruption, inc1-all)\n\n", nq);
  harness::Table table({"refinement", "time(s)", "precision", "recall",
                        "F1"});

  for (int on = 1; on >= 0; --on) {
    bench::Aggregate agg;
    for (int t = 0; t < bench::Trials() * 3; ++t) {
      workload::SyntheticSpec spec;
      spec.num_tuples = 400;
      spec.num_attrs = 8;
      spec.value_domain = 400;
      spec.range_size = 12;
      spec.num_queries = nq;
      workload::Scenario s = workload::MakeSyntheticScenario(
          spec, {nq / 2}, 1500 + t);
      if (s.complaints.empty()) continue;
      qfixcore::QFixOptions opt;
      opt.refinement = on == 1;
      opt.time_limit_seconds = 20.0;
      agg.Add(bench::RunTrial(
          s,
          [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
          opt));
    }
    table.AddRow({on ? "on" : "off", agg.TimeCell(), agg.PrecisionCell(),
                  agg.RecallCell(), agg.F1Cell()});
  }
  bench::PrintAndExport(table, "abl_refinement");
  std::printf(
      "\nExpected: refinement costs little extra time and recovers "
      "precision whenever step 1 over-generalizes (paper §5.1: 0.1-0.5%% "
      "overhead).\n");
  return 0;
}
