// Figure 7a: number of attributes vs repair time — where attribute and
// query slicing shine (paper: up to 40x over tuple slicing alone at
// N_a = 500).
//
// N_D = 100 as in the paper; [scaled] attribute sweep tops at 200 (500
// under QFIX_BENCH_FULL=1) and the log is 30 queries.
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

int main() {
  const bool full = bench::FullMode();
  std::vector<size_t> attr_counts =
      full ? std::vector<size_t>{10, 50, 100, 250, 500}
           : std::vector<size_t>{10, 50, 100, 200};

  std::printf("Figure 7a: #attributes vs time (N_D = 100, single "
              "corruption, inc1)\n\n");
  harness::Table table(
      {"Na", "inc1-tuple(s)", "inc1-tuple+query(s)", "inc1-all(s)", "F1"});

  for (size_t na : attr_counts) {
    workload::SyntheticSpec spec;
    spec.num_tuples = 100;
    spec.num_attrs = na;
    spec.value_domain = 100;
    spec.range_size = 10;
    spec.num_queries = 30;

    struct Variant {
      bool query, attr;
    };
    const Variant variants[] = {{false, false}, {true, false}, {true, true}};
    std::vector<std::string> row{std::to_string(na)};
    std::string f1_cell = "-";
    for (const Variant& v : variants) {
      bench::Aggregate agg;
      for (int t = 0; t < bench::Trials(); ++t) {
        workload::Scenario s =
            workload::MakeSyntheticScenario(spec, {15}, 500 + t);
        if (s.complaints.empty()) continue;
        qfixcore::QFixOptions opt;
        opt.tuple_slicing = true;
        opt.query_slicing = v.query;
        opt.attribute_slicing = v.attr;
        opt.time_limit_seconds = 15.0;
        agg.Add(bench::RunTrial(
            s,
            [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
            opt));
      }
      row.push_back(agg.TimeCell());
      if (v.query && v.attr) f1_cell = agg.F1Cell();
    }
    row.push_back(f1_cell);
    table.AddRow(row);
  }
  bench::PrintAndExport(table, "fig7_attributes");
  std::printf(
      "\nExpected shape: variants coincide at Na = 10; query+attribute "
      "slicing win increasingly as Na grows (paper Fig. 7a).\n");
  return 0;
}
