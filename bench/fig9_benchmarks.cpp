// Figure 9: OLTP benchmarks — repair latency on TPC-C-like and
// TATP-like workloads as the corrupted query ages from the most recent
// query back to 1500 queries deep.
//
// Paper finding: near-interactive latencies throughout, because each
// query touches 1-2 tuples (tiny complaint sets) and slicing reduces
// the constraints to under ~100.
#include <cstdio>

#include "bench_common.h"
#include "workload/tatp_like.h"
#include "workload/tpcc_like.h"

using namespace qfix;

int main() {
  std::vector<size_t> ages = bench::FullMode()
                                 ? std::vector<size_t>{0, 50, 250, 500,
                                                       1000, 1500}
                                 : std::vector<size_t>{0, 50, 250, 1000,
                                                       1500};

  std::printf("Figure 9: OLTP benchmark repair latency vs corruption "
              "age (inc1-all)\n\n");
  harness::Table table({"corrupt_age", "TPCC(ms)", "TPCC_F1", "TATP(ms)",
                        "TATP_F1"});

  for (size_t age : ages) {
    bench::Aggregate tpcc, tatp;
    for (int t = 0; t < bench::Trials(); ++t) {
      workload::TpccSpec tspec;  // 6000 rows, 2000 queries as the paper
      workload::Scenario ts =
          workload::MakeTpccScenario(tspec, age, 1300 + t);
      if (!ts.complaints.empty()) {
        qfixcore::QFixOptions opt;
        opt.time_limit_seconds = 30.0;
        tpcc.Add(bench::RunTrial(
            ts,
            [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
            opt));
      }
      workload::TatpSpec aspec;  // 5000 subscribers, 2000 updates
      workload::Scenario as =
          workload::MakeTatpScenario(aspec, age, 1350 + t);
      if (!as.complaints.empty()) {
        qfixcore::QFixOptions opt;
        opt.time_limit_seconds = 30.0;
        tatp.Add(bench::RunTrial(
            as,
            [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
            opt));
      }
    }
    auto ms_cell = [](const bench::Aggregate& a) {
      if (a.successes == 0) {
        return a.failure_kinds.empty() ? std::string("n/a")
                                       : a.failure_kinds;
      }
      return harness::Table::Cell(a.seconds / a.successes * 1e3);
    };
    table.AddRow({std::to_string(age), ms_cell(tpcc), tpcc.F1Cell(),
                  ms_cell(tatp), tatp.F1Cell()});
  }
  bench::PrintAndExport(table, "fig9_benchmarks");
  std::printf(
      "\nExpected shape: millisecond-scale repairs at every corruption "
      "age, F1 = 1 (paper Fig. 9).\n");
  return 0;
}
