// Service throughput over real loopback HTTP: requests/sec for the
// three request classes — health probes (protocol floor), sequential
// diagnoses (one Figure-2 repair per request, the paper's Example-1
// call-center shape), and concurrent diagnoses from several clients
// sharing one registered dataset.
//
// Numbers are hardware-dependent: on a single-core container the
// concurrent rows only measure scheduling overhead over the sequential
// ones (same caveat as BENCH_milp); re-record on multi-core hardware
// where the shared pool actually spreads the solves. The emitted table
// is the checked-in baseline BENCH_service.json.
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/timer.h"
#include "service/client.h"
#include "service/server.h"

using namespace qfix;

namespace {

constexpr const char* kTaxD0Csv =
    "income,owed,pay\n"
    "9500,950,8550\n"
    "90000,22500,67500\n"
    "86000,21500,64500\n"
    "86500,21625,64875\n";

constexpr const char* kTaxLogSql =
    "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;\n"
    "INSERT INTO Taxes VALUES (87000, 21750, 65250);\n"
    "UPDATE Taxes SET pay = income - owed;\n";

constexpr const char* kTaxComplaintsCsv =
    "tid,alive,income,owed,pay\n"
    "2,1,86000,21500,64500\n"
    "3,1,86500,21625,64875\n";

std::string DiagnoseBody() {
  JsonWriter w;
  w.BeginObject();
  w.Key("dataset");
  w.String("taxes");
  w.Key("complaints_csv");
  w.String(kTaxComplaintsCsv);
  w.EndObject();
  return w.str();
}

struct Load {
  int requests = 0;
  int errors = 0;
  double seconds = 0.0;
  double ReqPerSec() const {
    return seconds > 0.0 ? requests / seconds : 0.0;
  }
};

// Fires `total` requests from `clients` threads and aggregates.
Load Drive(int port, const std::string& path, const std::string& body,
           int clients, int total) {
  Load out;
  out.requests = total;
  std::vector<std::thread> threads;
  std::vector<int> errors(clients, 0);
  WallTimer timer;
  for (int c = 0; c < clients; ++c) {
    int n = total / clients + (c < total % clients ? 1 : 0);
    threads.emplace_back([port, &path, &body, n, c, &errors] {
      for (int i = 0; i < n; ++i) {
        auto r = body.empty()
                     ? service::HttpGet("127.0.0.1", port, path)
                     : service::HttpPost("127.0.0.1", port, path, body);
        if (!r.ok() || r->status != 200) ++errors[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  out.seconds = timer.ElapsedSeconds();
  for (int e : errors) out.errors += e;
  return out;
}

}  // namespace

int main() {
  const int trials = bench::Trials();
  const int health_n = bench::FullMode() ? 2000 : 400;
  const int diag_n = bench::FullMode() ? 200 : 40;

  service::ServerOptions options;
  options.jobs = 2;
  options.max_inflight = 32;
  service::DiagnosisServer server(options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  {
    JsonWriter w;
    w.BeginObject();
    w.Key("name");
    w.String("taxes");
    w.Key("table");
    w.String("Taxes");
    w.Key("d0_csv");
    w.String(kTaxD0Csv);
    w.Key("log_sql");
    w.String(kTaxLogSql);
    w.EndObject();
    auto reg = service::HttpPost("127.0.0.1", server.port(), "/v1/datasets",
                                 w.str());
    if (!reg.ok() || reg->status != 200) {
      std::fprintf(stderr, "cannot register dataset\n");
      return 1;
    }
  }

  std::printf("loopback HTTP serving throughput (hardware threads: %u)\n\n",
              std::thread::hardware_concurrency());

  struct Config {
    const char* name;
    const char* path;
    bool diagnose;
    int clients;
    int requests;
  };
  const Config configs[] = {
      {"healthz-seq", "/v1/healthz", false, 1, health_n},
      {"diagnose-seq", "/v1/diagnose", true, 1, diag_n},
      {"diagnose-4client", "/v1/diagnose", true, 4, diag_n},
  };

  harness::Table table(
      {"request", "clients", "requests", "req/s", "ms/req", "errors"});
  const std::string diagnose_body = DiagnoseBody();
  for (const Config& config : configs) {
    double best_rps = 0.0;
    int errors = 0;
    for (int t = 0; t < trials; ++t) {
      Load load = Drive(server.port(), config.path,
                        config.diagnose ? diagnose_body : std::string(),
                        config.clients, config.requests);
      best_rps = std::max(best_rps, load.ReqPerSec());
      errors += load.errors;
    }
    table.AddRow({config.name, harness::Table::Cell(double(config.clients)),
                  harness::Table::Cell(double(config.requests)),
                  harness::Table::Cell(best_rps),
                  harness::Table::Cell(best_rps > 0 ? 1e3 / best_rps : 0.0),
                  harness::Table::Cell(double(errors))});
  }
  bench::PrintAndExport(table, "service");

  // Connection-count sweep: how fast the event loop can establish and
  // serve N *simultaneously open* connections (ConcurrentSmoke holds
  // every socket at once, then healthz-es each). Each in-process
  // connection costs two fds, so the sweep is clamped to the
  // RLIMIT_NOFILE budget (after trying to raise it). Single-core
  // containers measure the loop's syscall throughput, not parallelism
  // — same caveat as above.
  rlimit nofile;
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0) {
    rlimit want = nofile;
    want.rlim_cur = 25000;
    if (want.rlim_max != RLIM_INFINITY && want.rlim_max < 25000) {
      want.rlim_max = 25000;
    }
    if (::setrlimit(RLIMIT_NOFILE, &want) != 0 &&
        nofile.rlim_cur < nofile.rlim_max) {
      want = nofile;
      want.rlim_cur = nofile.rlim_max;
      ::setrlimit(RLIMIT_NOFILE, &want);
    }
    ::getrlimit(RLIMIT_NOFILE, &nofile);
  }
  const int fd_budget =
      static_cast<int>((nofile.rlim_cur > 400 ? nofile.rlim_cur - 400 : 0) /
                       2);

  harness::Table sweep(
      {"connections", "held", "healthz ok", "seconds", "conn/s"});
  for (int want_conns : {64, 500, 2000, 10000}) {
    int conns = std::min(want_conns, fd_budget);
    if (conns <= 0) continue;
    double best_seconds = 0.0;
    service::SmokeStats best;
    for (int t = 0; t < trials; ++t) {
      WallTimer timer;
      auto smoke =
          service::ConcurrentSmoke("127.0.0.1", server.port(), conns, 60.0);
      double seconds = timer.ElapsedSeconds();
      if (!smoke.ok()) {
        std::fprintf(stderr, "smoke(%d): %s\n", conns,
                     smoke.status().ToString().c_str());
        continue;
      }
      if (best_seconds == 0.0 || seconds < best_seconds) {
        best_seconds = seconds;
        best = *smoke;
      }
    }
    if (best_seconds == 0.0) continue;
    sweep.AddRow({std::to_string(conns),
                  harness::Table::Cell(double(best.connected)),
                  harness::Table::Cell(double(best.ok)),
                  harness::Table::Cell(best_seconds),
                  harness::Table::Cell(best.ok / best_seconds)});
  }
  bench::PrintAndExport(sweep, "service_connections");

  server.Stop();
  return 0;
}
