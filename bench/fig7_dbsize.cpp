// Figure 7b: database size vs time with a wide table (N_a = 100),
// holding the complaint-set size fixed by scaling query selectivity
// down as N_D grows (the paper's protocol).
//
// [scaled] N_D sweep to 2000 (paper 5000); Nq = 30 with the corruption
// mid-log.
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

int main() {
  const bool full = bench::FullMode();
  std::vector<size_t> db_sizes = full
                                     ? std::vector<size_t>{100, 500, 1000,
                                                           2000, 5000}
                                     : std::vector<size_t>{100, 500, 1000,
                                                           2000};

  std::printf("Figure 7b: database size vs time (N_a = 100, fixed "
              "complaint count)\n\n");
  harness::Table table(
      {"ND", "inc1-tuple(s)", "inc1-tuple+attr(s)", "inc1-all(s)", "F1"});

  for (size_t nd : db_sizes) {
    workload::SyntheticSpec spec;
    spec.num_tuples = nd;
    spec.num_attrs = 100;
    // Integer value domain scaled with N_D so that a width-`range_size`
    // interval keeps matching ~10 tuples (fixed |C|, as in the paper).
    spec.value_domain = static_cast<double>(nd);
    spec.range_size = 10.0;
    spec.num_queries = 30;

    struct Variant {
      bool query, attr;
    };
    const Variant variants[] = {{false, false}, {false, true}, {true, true}};
    std::vector<std::string> row{std::to_string(nd)};
    std::string f1_cell = "-";
    for (const Variant& v : variants) {
      bench::Aggregate agg;
      for (int t = 0; t < bench::Trials(); ++t) {
        workload::Scenario s =
            workload::MakeSyntheticScenario(spec, {15}, 600 + t);
        if (s.complaints.empty()) continue;
        qfixcore::QFixOptions opt;
        opt.tuple_slicing = true;
        opt.query_slicing = v.query;
        opt.attribute_slicing = v.attr;
        opt.time_limit_seconds = 15.0;
        agg.Add(bench::RunTrial(
            s,
            [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
            opt));
      }
      row.push_back(agg.TimeCell());
      if (v.query && v.attr) f1_cell = agg.F1Cell();
    }
    row.push_back(f1_cell);
    table.AddRow(row);
  }
  bench::PrintAndExport(table, "fig7_dbsize");
  std::printf(
      "\nExpected shape: tuple slicing alone grows with N_D (more "
      "candidate queries); adding attribute+query slicing flattens the "
      "curve (paper Fig. 7b, 2-4x).\n");
  return 0;
}
