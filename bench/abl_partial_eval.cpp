// Ablation: encoder partial evaluation (constant folding).
//
// When a tuple's inputs to an encoded-but-unparameterized query are
// known constants, the encoder folds the query arithmetic instead of
// emitting the raw Eq. (1)-(6) constraint set. The paper observes CPLEX
// doing the equivalent pruning implicitly (§7.3, "the solver's ability
// to prune constraints"); our encoder makes it explicit. This bench
// quantifies what folding buys by disabling it: identical repairs,
// several-fold larger MILPs, slower solves — the gap that separates the
// Figure 4 "basic" bars from the single-query bars at equal log size.
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

int main() {
  const bool full = bench::FullMode();
  const std::vector<size_t> log_sizes =
      full ? std::vector<size_t>{25, 50, 100, 150}
           : std::vector<size_t>{25, 50, 75};
  std::printf("Ablation: encoder constant folding (inc1-all, corrupt "
              "oldest third)\n\n");
  harness::Table table({"Nq", "fold", "time(s)", "vars", "constraints",
                        "F1"});

  for (size_t nq : log_sizes) {
    for (int fold = 1; fold >= 0; --fold) {
      bench::Aggregate agg;
      long long vars = 0;
      long long cons = 0;
      int samples = 0;
      for (int t = 0; t < bench::Trials(); ++t) {
        workload::SyntheticSpec spec;
        spec.num_tuples = 300;
        spec.num_attrs = 10;
        spec.value_domain = 300;
        spec.range_size = 12;
        spec.num_queries = nq;
        workload::Scenario s = workload::MakeSyntheticScenario(
            spec, {nq / 3}, 2200 + t);
        if (s.complaints.empty()) continue;
        qfixcore::QFixOptions opt;
        opt.encoder.fold_constants = fold == 1;
        opt.time_limit_seconds = 30.0;
        auto res = bench::RunTrial(
            s,
            [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
            opt);
        if (res.ok) {
          vars += res.stats.num_vars;
          cons += res.stats.num_constraints;
          ++samples;
        }
        agg.Add(res);
      }
      table.AddRow({std::to_string(nq), fold ? "on" : "off",
                    agg.TimeCell(),
                    samples ? std::to_string(vars / samples) : "-",
                    samples ? std::to_string(cons / samples) : "-",
                    agg.F1Cell()});
    }
  }
  bench::PrintAndExport(table, "abl_partial_eval");
  std::printf(
      "\nExpected: identical F1; folding shrinks the model by the "
      "constant-input share of the log, and the gap widens with Nq.\n");
  return 0;
}
