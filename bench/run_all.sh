#!/usr/bin/env bash
# Runs every built bench binary and emits one JSON per benchmark into
# an output directory, so trajectory tracking (BENCH_*.json) has a
# stable producer.
#
# Usage:  bench/run_all.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build tree containing bench/ binaries (default: build)
#   OUT_DIR    where the JSON files go (default: bench_results)
#
# Knobs forwarded to the benches (see bench_common.h):
#   QFIX_BENCH_TRIALS=N   trials per configuration
#   QFIX_BENCH_FULL=1     larger, closer-to-paper sweeps
set -u

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_results}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found - build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"

case "${QFIX_BENCH_TRIALS:-}" in
  '' | *[!0-9]*) trials=null ;;
  *) trials="$QFIX_BENCH_TRIALS" ;;
esac

# JSON string escaping: drop control bytes other than tab/newline
# (ANSI color codes, sanitizer sequences), then escape the rest.
json_escape() {
  tr -d '\000-\010\013-\037' \
    | sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' -e 's/\t/\\t/g' \
    | awk 'NR>1 {printf "\\n"} {printf "%s", $0}'
}

failures=0
ran=0
for bin in "$BENCH_DIR"/*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  out_json="$OUT_DIR/BENCH_${name}.json"
  echo "== $name"

  start_ns=$(date +%s%N)
  stdout_file="$(mktemp)"
  QFIX_BENCH_CSV="$OUT_DIR" "$bin" >"$stdout_file" 2>&1
  exit_code=$?
  end_ns=$(date +%s%N)
  seconds=$(awk -v a="$start_ns" -v b="$end_ns" 'BEGIN {printf "%.3f", (b-a)/1e9}')

  {
    printf '{\n'
    printf '  "bench": "%s",\n' "$name"
    printf '  "exit_code": %d,\n' "$exit_code"
    printf '  "seconds": %s,\n' "$seconds"
    printf '  "trials": %s,\n' "$trials"
    printf '  "full_mode": %s,\n' "$([ -n "${QFIX_BENCH_FULL:-}" ] && echo true || echo false)"
    printf '  "stdout": "'
    json_escape <"$stdout_file"
    printf '"\n}\n'
  } >"$out_json"
  rm -f "$stdout_file"

  ran=$((ran + 1))
  if [ "$exit_code" -ne 0 ]; then
    echo "   FAILED (exit $exit_code), see $out_json" >&2
    failures=$((failures + 1))
  fi
done

echo
echo "ran $ran benches, $failures failed; JSON in $OUT_DIR/"
[ "$failures" -eq 0 ]
