// Figure 6a/6d: multiple corrupted queries — performance and accuracy of
// `basic` against each slicing optimization individually and combined.
//
// The paper corrupts every tenth query (q1, q11, q21, ...) in UPDATE-only
// logs of 10..50 queries over 1000 tuples, and finds that basic degrades
// past ~30 queries while tuple slicing keeps problems tractable.
//
// [scaled] N_D = 24 (paper 1000): the unsliced variants encode every
// tuple x query pair, which the dense simplex caps far below CPLEX.
// Slicing-on variants behave identically at either scale because they
// only encode complaint tuples.
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

namespace {

struct Variant {
  const char* name;
  bool tuple, query, attr;
};

}  // namespace

int main() {
  const bool full = bench::FullMode();
  std::vector<size_t> log_sizes = full
                                      ? std::vector<size_t>{10, 20, 30, 40, 50}
                                      : std::vector<size_t>{10, 20, 30};
  const Variant variants[] = {
      {"basic", false, false, false},
      {"basic-tuple", true, false, false},
      {"basic-query", false, true, false},
      {"basic-attr", false, false, true},
      {"basic-all", true, true, true},
  };

  workload::SyntheticSpec base;
  base.num_tuples = 24;
  base.num_attrs = 10;
  base.value_domain = 60;
  base.range_size = 10;

  std::printf(
      "Figure 6a/6d: multiple corruptions (every 10th query corrupted), "
      "N_D = %zu [scaled]\n\n", base.num_tuples);
  harness::Table time_table(
      {"Nq", "basic", "b-tuple", "b-query", "b-attr", "b-all"});
  harness::Table f1_table(
      {"Nq", "basic", "b-tuple", "b-query", "b-attr", "b-all"});

  for (size_t nq : log_sizes) {
    workload::SyntheticSpec spec = base;
    spec.num_queries = nq;
    std::vector<size_t> corrupt;
    for (size_t i = 0; i < nq; i += 10) corrupt.push_back(i);

    std::vector<std::string> time_row{std::to_string(nq)};
    std::vector<std::string> f1_row{std::to_string(nq)};
    for (const Variant& v : variants) {
      bench::Aggregate agg;
      for (int t = 0; t < bench::Trials(); ++t) {
        workload::Scenario s =
            workload::MakeSyntheticScenario(spec, corrupt, 200 + t);
        if (s.complaints.empty()) continue;
        qfixcore::QFixOptions opt;
        opt.tuple_slicing = v.tuple;
        opt.query_slicing = v.query;
        opt.attribute_slicing = v.attr;
        opt.time_limit_seconds = 10.0;
        agg.Add(bench::RunTrial(
            s, [](qfixcore::QFixEngine& e) { return e.RepairBasic(); },
            opt));
      }
      time_row.push_back(agg.TimeCell());
      f1_row.push_back(agg.F1Cell());
    }
    time_table.AddRow(time_row);
    f1_table.AddRow(f1_row);
  }
  std::printf("-- time (seconds; 'limit' = solver budget exceeded, as the "
              "paper's 1000s timeouts) --\n");
  bench::PrintAndExport(time_table, "fig6_multi_corruption_time");
  std::printf("\n-- F1 --\n");
  bench::PrintAndExport(f1_table, "fig6_multi_corruption_accuracy");
  std::printf(
      "\nExpected shape: basic degrades/collapses as Nq grows; "
      "tuple-sliced variants stay fast with F1 near 1 (paper Fig. "
      "6a/6d).\n");
  return 0;
}
