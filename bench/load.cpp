// Multi-tenant load baseline: harness::RunLoad driving an in-process
// DiagnosisServer over real loopback HTTP, the same path tools/
// qfix_load exercises against a remote fleet. Three scenarios:
//
//   closed-cached    3 equal tenants, closed loop, repeat complaints —
//                    the report-cache hit path's sustainable rps.
//   closed-mixed     same tenants, 1-in-5 requests a cold variant that
//                    reaches the solver through the admission gate.
//   open-overload    9:1 greedy:light open-loop mix into a separate
//                    single-slot gate (Figure-2 solves run ~0.1ms, so
//                    only a tight gate saturates at loopback rates) —
//                    per-tenant goodput and shed counts show weighted
//                    fair sharing holding under overload.
//
// Numbers are hardware-dependent; on a single-core container the
// concurrency axis measures scheduling overhead, not parallel solves
// (same caveat as BENCH_service/BENCH_milp). The emitted table is the
// checked-in baseline BENCH_load.json.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "harness/loadgen.h"
#include "harness/table.h"
#include "service/server.h"

using namespace qfix;

namespace {

constexpr const char* kTaxD0Csv =
    "income,owed,pay\n"
    "9500,950,8550\n"
    "90000,22500,67500\n"
    "86000,21500,64500\n"
    "86500,21625,64875\n";

constexpr const char* kTaxLogSql =
    "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;\n"
    "INSERT INTO Taxes VALUES (87000, 21750, 65250);\n"
    "UPDATE Taxes SET pay = income - owed;\n";

constexpr const char* kTaxComplaintsCsv =
    "tid,alive,income,owed,pay\n"
    "2,1,86000,21500,64500\n"
    "3,1,86500,21625,64875\n";

std::string DiagnoseBody(const std::string& dataset,
                         const std::string& complaints) {
  JsonWriter w;
  w.BeginObject();
  w.Key("dataset");
  w.String(dataset);
  w.Key("complaints_csv");
  w.String(complaints);
  w.EndObject();
  return w.str();
}

harness::LoadTenantSpec Tenant(const std::string& name, int weight,
                               bool with_cold_variants) {
  harness::LoadTenantSpec t;
  t.name = name;
  t.weight = weight;
  harness::LoadRequestTemplate cached;
  cached.path = "/v1/diagnose";
  cached.body = DiagnoseBody(name + "/taxes", kTaxComplaintsCsv);
  cached.weight = 4;
  t.requests.push_back(std::move(cached));
  if (with_cold_variants) {
    char complaint[160];
    std::snprintf(complaint, sizeof(complaint),
                  "tid,alive,income,owed,pay\n2,1,86000,21500,%d\n", 64001);
    harness::LoadRequestTemplate cold;
    cold.path = "/v1/diagnose";
    cold.body = DiagnoseBody(name + "/taxes", complaint);
    cold.weight = 1;
    t.requests.push_back(std::move(cold));
  }
  return t;
}

}  // namespace

int main() {
  service::ServerOptions options;
  options.jobs = 2;
  options.max_inflight = 4;
  options.cache_bytes = 8u << 20;
  service::DiagnosisServer server(options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 1;
  }
  // The overload scenario gets its own server: one admission slot and
  // one solver job, so cold solves saturate and the gate sheds.
  service::ServerOptions tight = options;
  tight.jobs = 1;
  tight.max_inflight = 1;
  service::DiagnosisServer gated(tight);
  started = gated.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 1;
  }
  for (const char* tenant : {"t1", "t2", "t3"}) {
    auto ds = server.registry().Register(std::string(tenant) + "/taxes",
                                         kTaxD0Csv, "Taxes", kTaxLogSql);
    if (!ds.ok()) {
      std::fprintf(stderr, "register: %s\n", ds.status().ToString().c_str());
      return 1;
    }
  }
  for (const char* tenant : {"greedy", "light"}) {
    auto ds = gated.registry().Register(std::string(tenant) + "/taxes",
                                        kTaxD0Csv, "Taxes", kTaxLogSql);
    if (!ds.ok()) {
      std::fprintf(stderr, "register: %s\n", ds.status().ToString().c_str());
      return 1;
    }
  }

  const double seconds = bench::FullMode() ? 10.0 : 2.0;
  std::printf(
      "multi-tenant load baseline (hardware threads: %u, %gs/scenario)\n\n",
      std::thread::hardware_concurrency(), seconds);

  struct Scenario {
    const char* name;
    harness::LoadOptions options;
  };
  std::vector<Scenario> scenarios;
  {
    harness::LoadOptions lo;
    lo.host = options.host;
    lo.port = server.port();
    lo.mode = harness::LoadOptions::Mode::kClosed;
    lo.duration_seconds = seconds;
    lo.concurrency = 4;
    for (const char* t : {"t1", "t2", "t3"}) {
      lo.tenants.push_back(Tenant(t, 1, /*with_cold_variants=*/false));
    }
    scenarios.push_back({"closed-cached", lo});
    for (auto& t : lo.tenants) {
      t = Tenant(t.name, 1, /*with_cold_variants=*/true);
    }
    scenarios.push_back({"closed-mixed", lo});
    lo.port = gated.port();
    lo.tenants.clear();
    lo.tenants.push_back(Tenant("greedy", 9, /*with_cold_variants=*/true));
    lo.tenants.push_back(Tenant("light", 1, /*with_cold_variants=*/true));
    for (auto& t : lo.tenants) {
      // Half the mix reaches the solver: saturates the 1-slot gate.
      t.requests[1].weight = 4;
    }
    lo.mode = harness::LoadOptions::Mode::kOpen;
    lo.rate_per_second = 16000;
    lo.concurrency = 8;
    scenarios.push_back({"open-overload", lo});
  }

  harness::Table table({"scenario", "tenant", "attempted", "ok/s",
                        "shed_429", "p50_ms", "p99_ms"});
  bool failed = false;
  for (const Scenario& s : scenarios) {
    const harness::LoadResult r = harness::RunLoad(s.options);
    if (r.classes.err_4xx + r.classes.err_5xx + r.classes.transport > 0) {
      std::fprintf(stderr, "%s: unexpected errors (4xx=%llu 5xx=%llu "
                   "transport=%llu)\n", s.name,
                   static_cast<unsigned long long>(r.classes.err_4xx),
                   static_cast<unsigned long long>(r.classes.err_5xx),
                   static_cast<unsigned long long>(r.classes.transport));
      failed = true;
    }
    table.AddRow({s.name, "ALL", std::to_string(r.attempted),
                  harness::Table::Cell(r.ok_rps),
                  std::to_string(r.classes.shed_429),
                  harness::Table::Cell(r.latency.Percentile(0.5) * 1e3),
                  harness::Table::Cell(r.latency.Percentile(0.99) * 1e3)});
    for (const harness::TenantLoadResult& t : r.tenants) {
      table.AddRow(
          {s.name, t.name, std::to_string(t.attempted),
           harness::Table::Cell(t.classes.ok_2xx / r.duration_seconds),
           std::to_string(t.classes.shed_429),
           harness::Table::Cell(t.latency.Percentile(0.5) * 1e3),
           harness::Table::Cell(t.latency.Percentile(0.99) * 1e3)});
    }
  }
  bench::PrintAndExport(table, "load");
  server.Stop();
  return failed ? 1 : 0;
}
