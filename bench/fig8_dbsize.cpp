// Figure 8a: database size vs time with a narrow table (N_a = 10),
// recent vs old corruption, inc1 with all optimizations. The paper's
// curve is nearly flat to N_D = 100k because the complaint count is
// held fixed.
//
// [scaled] N_D to 50k (100k under QFIX_BENCH_FULL=1); log of 40 queries
// with "recent" = q32 and "old" = q8 corruptions.
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

int main() {
  const bool full = bench::FullMode();
  std::vector<size_t> db_sizes =
      full ? std::vector<size_t>{100, 1000, 10000, 50000, 100000}
           : std::vector<size_t>{100, 1000, 10000, 50000};

  std::printf("Figure 8a: database size vs time (N_a = 10, fixed "
              "complaint count, inc1-all)\n\n");
  harness::Table table({"ND", "recent_corruption(s)", "old_corruption(s)",
                        "recent_F1", "old_F1"});

  for (size_t nd : db_sizes) {
    workload::SyntheticSpec spec;
    spec.num_tuples = nd;
    spec.num_attrs = 10;
    spec.value_domain = static_cast<double>(nd);  // fixed |C| (~10)
    spec.range_size = 10.0;
    spec.num_queries = 40;

    bench::Aggregate recent, old;
    for (int t = 0; t < bench::Trials(); ++t) {
      workload::Scenario sr =
          workload::MakeSyntheticScenario(spec, {32}, 700 + t);
      if (!sr.complaints.empty()) {
        qfixcore::QFixOptions opt;
        opt.time_limit_seconds = 30.0;
        recent.Add(bench::RunTrial(
            sr,
            [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
            opt));
      }
      workload::Scenario so =
          workload::MakeSyntheticScenario(spec, {8}, 750 + t);
      if (!so.complaints.empty()) {
        qfixcore::QFixOptions opt;
        opt.time_limit_seconds = 30.0;
        old.Add(bench::RunTrial(
            so,
            [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
            opt));
      }
    }
    table.AddRow({std::to_string(nd), recent.TimeCell(), old.TimeCell(),
                  recent.F1Cell(), old.F1Cell()});
  }
  bench::PrintAndExport(table, "fig8_dbsize");
  std::printf(
      "\nExpected shape: both curves are nearly flat in N_D; the older "
      "corruption costs a constant factor more (paper Fig. 8a).\n");
  return 0;
}
