// Shared plumbing for the figure-reproduction benches.
//
// Every bench prints the series its paper figure plots. Scales that had
// to be reduced for the from-scratch MILP solver are marked in each
// bench's header comment and in EXPERIMENTS.md. Environment knobs:
//   QFIX_BENCH_TRIALS=N   trials per configuration (default 3)
//   QFIX_BENCH_FULL=1     run the larger sweeps (closer to paper scale)
//   QFIX_BENCH_CSV=DIR    additionally write each printed table as
//                         DIR/<bench>.csv for plotting
#ifndef QFIX_BENCH_BENCH_COMMON_H_
#define QFIX_BENCH_BENCH_COMMON_H_

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/timer.h"
#include "harness/metrics.h"
#include "harness/table.h"
#include "qfix/qfix.h"
#include "workload/scenario.h"

namespace qfix {
namespace bench {

inline int Trials() {
  const char* env = std::getenv("QFIX_BENCH_TRIALS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 2;
}

inline bool FullMode() {
  const char* env = std::getenv("QFIX_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

/// Prints the table and, when QFIX_BENCH_CSV names a directory, also
/// writes it there as <bench_name>.csv. Benches pass their binary name.
inline void PrintAndExport(const harness::Table& table,
                           const char* bench_name) {
  table.Print();
  const char* dir = std::getenv("QFIX_BENCH_CSV");
  if (dir == nullptr || dir[0] == '\0') return;
  std::string path = std::string(dir) + "/" + bench_name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "QFIX_BENCH_CSV: cannot write %s: %s\n",
                 path.c_str(), std::strerror(errno));
    return;
  }
  out << table.ToCsv();
  std::printf("[series written to %s]\n", path.c_str());
}

/// Outcome of one repair trial.
struct TrialResult {
  bool ok = false;
  std::string failure;  // "infeasible", "timeout", ...
  double seconds = 0.0;
  harness::RepairAccuracy accuracy;
  qfixcore::RepairStats stats;
};

/// Runs one repair via `solve` (a bound QFixEngine call) and scores it.
inline TrialResult RunTrial(
    const workload::Scenario& scenario,
    const std::function<Result<qfixcore::Repair>(qfixcore::QFixEngine&)>&
        solve,
    const qfixcore::QFixOptions& options) {
  TrialResult out;
  qfixcore::QFixEngine engine(scenario.dirty_log, scenario.d0,
                              scenario.dirty, scenario.complaints, options);
  WallTimer timer;
  auto repair = solve(engine);
  out.seconds = timer.ElapsedSeconds();
  if (!repair.ok()) {
    out.failure = repair.status().IsInfeasible()       ? "infeasible"
                  : repair.status().IsResourceExhausted() ? "limit"
                                                          : "error";
    return out;
  }
  out.ok = true;
  out.stats = repair->stats;
  out.accuracy = harness::EvaluateRepair(repair->log, scenario.d0,
                                         scenario.dirty, scenario.truth);
  return out;
}

/// Mean over successful trials plus failure accounting.
struct Aggregate {
  double seconds = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int successes = 0;
  int failures = 0;
  std::string failure_kinds;

  void Add(const TrialResult& t) {
    if (!t.ok) {
      ++failures;
      if (failure_kinds.find(t.failure) == std::string::npos) {
        if (!failure_kinds.empty()) failure_kinds += "/";
        failure_kinds += t.failure;
      }
      return;
    }
    ++successes;
    seconds += t.seconds;
    precision += t.accuracy.precision;
    recall += t.accuracy.recall;
    f1 += t.accuracy.f1;
  }

  std::string TimeCell() const {
    if (successes == 0) {
      return failure_kinds.empty() ? "n/a" : failure_kinds;
    }
    return harness::Table::Cell(seconds / successes);
  }
  std::string AccCell(double sum) const {
    if (successes == 0) return "-";
    return harness::Table::Cell(sum / successes);
  }
  std::string PrecisionCell() const { return AccCell(precision); }
  std::string RecallCell() const { return AccCell(recall); }
  std::string F1Cell() const { return AccCell(f1); }
};

}  // namespace bench
}  // namespace qfix

#endif  // QFIX_BENCH_BENCH_COMMON_H_
