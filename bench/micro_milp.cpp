// Microbenchmarks (google-benchmark) for the MILP substrate: simplex on
// random dense-ish LPs, bound propagation, and branch & bound on
// knapsacks — the primitives every QFix repair pays for.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/random.h"
#include "milp/lp_format.h"
#include "milp/model.h"
#include "milp/presolve.h"
#include "milp/simplex.h"
#include "milp/solver.h"

namespace qfix {
namespace milp {
namespace {

Model RandomLp(int vars, int rows, uint64_t seed) {
  Rng rng(seed);
  // Witness-point construction keeps the LP feasible.
  std::vector<std::vector<double>> points(4, std::vector<double>(vars));
  for (auto& p : points) {
    for (double& v : p) v = rng.UniformReal(-10, 10);
  }
  Model m;
  for (int j = 0; j < vars; ++j) {
    m.AddContinuous(-10, 10, "x");
    m.AddObjectiveTerm(j, rng.UniformReal(-2, 2));
  }
  for (int i = 0; i < rows; ++i) {
    LinearTerms terms;
    for (int j = 0; j < vars; ++j) {
      if (rng.Bernoulli(0.4)) terms.push_back({j, rng.UniformReal(-1, 1)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    double max_act = -1e30;
    for (const auto& p : points) {
      double a = 0;
      for (const Term& t : terms) a += t.coeff * p[t.var];
      max_act = std::max(max_act, a);
    }
    m.AddConstraint(std::move(terms), Sense::kLe, max_act);
  }
  return m;
}

void BM_SimplexRandomLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Model m = RandomLp(n, n, 42);
  Domains d = m.InitialDomains();
  for (auto _ : state) {
    LpResult r = SolveLp(m, d, SimplexOptions{});
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_SimplexRandomLp)->Arg(20)->Arg(80)->Arg(200)->Arg(400);

void BM_BoundPropagation(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  Model m;
  // a_0 = 7; a_{i+1} = a_i + 1: propagation must walk the whole chain.
  VarId prev = m.AddContinuous(0, 1e6, "a0");
  m.AddConstraint({{prev, 1.0}}, Sense::kEq, 7.0);
  for (int i = 1; i < chain; ++i) {
    VarId next = m.AddContinuous(0, 1e6, "a");
    m.AddConstraint({{next, 1.0}, {prev, -1.0}}, Sense::kEq, 1.0);
    prev = next;
  }
  for (auto _ : state) {
    Domains d = m.InitialDomains();
    Status s = PropagateBounds(m, d, chain + 1, nullptr);
    benchmark::DoNotOptimize(s.ok());
  }
}
BENCHMARK(BM_BoundPropagation)->Arg(64)->Arg(256)->Arg(1024);

void BM_KnapsackBranchAndBound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  Model m;
  LinearTerms row;
  for (int i = 0; i < n; ++i) {
    VarId v = m.AddBinary("b");
    row.push_back({v, double(rng.UniformInt(1, 20))});
    m.AddObjectiveTerm(v, -double(rng.UniformInt(1, 30)));
  }
  m.AddConstraint(row, Sense::kLe, 10.0 * n / 4.0);
  for (auto _ : state) {
    MilpSolution s = MilpSolver().Solve(m);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_KnapsackBranchAndBound)->Arg(12)->Arg(20)->Arg(28);

// Jobs scaling on a strongly correlated knapsack (tight LP bounds force
// real enumeration); compare the Arg(1) and Arg(4) rows for the
// parallel branch & bound speedup on this machine.
void BM_KnapsackJobs(benchmark::State& state) {
  const int n = 26;
  Rng rng(9);
  Model m;
  LinearTerms row;
  double total = 0;
  for (int i = 0; i < n; ++i) {
    VarId v = m.AddBinary("b");
    double w = double(rng.UniformInt(10, 30));
    total += w;
    row.push_back({v, w});
    m.AddObjectiveTerm(v, -(w + rng.UniformReal(0.0, 1.0)));
  }
  m.AddConstraint(row, Sense::kLe, std::floor(total / 2.0) + 0.5);
  MilpOptions opts;
  opts.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MilpSolution s = MilpSolver(opts).Solve(m);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_KnapsackJobs)->Arg(1)->Arg(2)->Arg(4);

// Big-M indicator chain of the shape QFix emits: x >= k forces b_k = 1.
Model IndicatorChain(int chains) {
  Model m;
  for (int k = 0; k < chains; ++k) {
    VarId x = m.AddContinuous(0, 100, "x");
    VarId b = m.AddBinary("b");
    m.AddConstraint({{x, 1.0}, {b, -100.0}}, Sense::kLe, 0.0);
    m.AddConstraint({{x, 1.0}}, Sense::kGe, double(k % 50) + 1.0);
    m.AddObjectiveTerm(b, 1.0);
  }
  return m;
}

void BM_ProbeBinaries(benchmark::State& state) {
  Model m = IndicatorChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Domains d = m.InitialDomains();
    ProbeResult result;
    Status s = ProbeBinaries(m, d, 10, 1, nullptr, &result);
    benchmark::DoNotOptimize(result.fixed_binaries);
    benchmark::DoNotOptimize(s.ok());
  }
}
BENCHMARK(BM_ProbeBinaries)->Arg(16)->Arg(64)->Arg(256);

void BM_LpFormatWrite(benchmark::State& state) {
  Model m = RandomLp(static_cast<int>(state.range(0)),
                     static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    std::string text = WriteLpFormat(m);
    benchmark::DoNotOptimize(text.size());
  }
}
BENCHMARK(BM_LpFormatWrite)->Arg(50)->Arg(200);

void BM_LpFormatRoundTrip(benchmark::State& state) {
  Model m = RandomLp(static_cast<int>(state.range(0)),
                     static_cast<int>(state.range(0)), 7);
  std::string text = WriteLpFormat(m);
  for (auto _ : state) {
    auto back = ReadLpFormat(text);
    benchmark::DoNotOptimize(back.ok());
  }
}
BENCHMARK(BM_LpFormatRoundTrip)->Arg(50)->Arg(200);

}  // namespace
}  // namespace milp
}  // namespace qfix

BENCHMARK_MAIN();
