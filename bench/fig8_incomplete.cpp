// Figure 8c/8f: incomplete complaint sets — repair time and accuracy as
// the false-negative rate (fraction of unreported errors) grows from 0
// to 0.75, for a recent and an older corruption.
//
// Paper findings: smaller complaint sets solve faster; recall (and for
// old corruptions precision) drops as fewer errors are reported.
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

int main() {
  const std::vector<double> fn_rates{0.0, 0.25, 0.5, 0.75};
  const bool full = bench::FullMode();
  const size_t nq = full ? 50 : 30;

  std::printf("Figure 8c/8f: incomplete complaint sets (Nq = %zu, "
              "inc1-all)\n\n", nq);
  harness::Table table({"fn_rate", "recent(s)", "recent_P", "recent_R",
                        "old(s)", "old_P", "old_R"});

  for (double fn : fn_rates) {
    workload::SyntheticSpec spec;
    spec.num_tuples = 300;
    spec.num_attrs = 10;
    spec.value_domain = 300;
    spec.range_size = 15;
    spec.num_queries = nq;

    bench::Aggregate recent, old;
    for (int t = 0; t < bench::Trials(); ++t) {
      for (int age_case = 0; age_case < 2; ++age_case) {
        size_t idx = age_case == 0 ? nq - 3 : nq / 4;
        workload::Scenario s = workload::MakeSyntheticScenario(
            spec, {idx}, 900 + t * 2 + age_case);
        if (s.complaints.empty()) continue;
        // Remove a fraction of the true complaints (false negatives).
        Rng rng(1000 + t);
        s.complaints =
            provenance::SampleComplaints(s.complaints, 1.0 - fn, rng);
        qfixcore::QFixOptions opt;
        opt.time_limit_seconds = 20.0;
        auto res = bench::RunTrial(
            s,
            [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
            opt);
        (age_case == 0 ? recent : old).Add(res);
      }
    }
    table.AddRow({harness::Table::Cell(fn), recent.TimeCell(),
                  recent.PrecisionCell(), recent.RecallCell(),
                  old.TimeCell(), old.PrecisionCell(), old.RecallCell()});
  }
  bench::PrintAndExport(table, "fig8_incomplete");
  std::printf(
      "\nExpected shape: time shrinks as fewer complaints are encoded; "
      "recent corruptions stay accurate at high FN rates, old ones lose "
      "precision/recall (paper Fig. 8c/8f).\n");
  return 0;
}
