// Append-mode Figure 4: re-encoding cost per append as the log grows.
//
// fig4_logsize sweeps total log size with a from-scratch encode+solve
// at every point. This bench replays the same axis as an *ingest*
// pipeline: batches of queries arrive via AppendSnapshot, every batch
// ends in one corrupted query (a wrong SET constant over the top
// `K` rows), and the tail diagnosis (Inc_1 finds it on the first
// attempt, zero collateral, verified) is timed twice on the same
// chunked snapshot —
//   reencode: no EncodingCache — constant folding replays the whole
//             sealed prefix per encoded tuple, so the encode cost of
//             each diagnosis grows with total log size;
//   append:   the EncodingCache carried across the lineage — the
//             walk-back extends the previous boundary by one chunk,
//             so encode cost tracks the chunk size and stays flat.
// The encode columns are the subsystem's claim; the e2e columns keep
// the whole-diagnosis picture honest (solve + verification replays are
// untouched by ingest and still scale their own way).
//
// [scaled] Same single-core caveat as the other baselines; the shape —
// enc_reencode growing with Nq while enc_append stays near the
// per-chunk cost — is the reproduced claim. QFIX_BENCH_FULL=1 roughly
// doubles rows, chunk size and append count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cache/snapshot.h"
#include "ingest/encoding_cache.h"
#include "relational/database.h"
#include "relational/query.h"

using namespace qfix;

namespace {

relational::Database MakeD0(size_t nd) {
  relational::Database db(
      relational::Schema({"a0", "a1", "a2", "a3", "a4"}), "T");
  for (size_t r = 0; r < nd; ++r) {
    db.AddTuple({100.0 + 10.0 * static_cast<double>(r), 0, 0, 0, 0});
  }
  return db;
}

/// Query g rewrites attribute 1 + g%4 of every row with a0 >= lo to
/// 0.1 * a0 + c. a0 is never written, so predicates stay stable.
relational::Query BatchQuery(size_t g, double c, double lo) {
  return relational::Query::Update(
      "T",
      {{1 + g % 4, relational::LinearExpr::AttrScaled(0, 0.1, c)}},
      relational::Predicate::Atom(
          {relational::LinearExpr::Attr(0), relational::CmpOp::kGe, lo}));
}

struct Diagnosis {
  double total_seconds = 0.0;
  double encode_seconds = 0.0;
  bool ok = false;
};

/// Diagnoses the tail corruption of `snap` (query g, the newest: its
/// SET constant is 50 too high over the top `K` rows). The complaint
/// set names all K rows' correct values; the repair is pinned by
/// equality constraints, so it is exact, zero-collateral and verified —
/// the only thing varying between the two option sets is how much log
/// prefix the encoder replays.
Diagnosis DiagnoseTail(const cache::Snapshot& snap, size_t g, size_t nd,
                       size_t K, ingest::EncodingCache* cache) {
  provenance::ComplaintSet complaints;
  size_t attr = 1 + g % 4;
  for (size_t r = nd - K; r < nd; ++r) {
    provenance::Complaint c;
    c.tid = static_cast<int64_t>(r);
    c.target_alive = true;
    c.target_values = snap->dirty.slot(r).values;
    c.target_values[attr] =
        0.1 * c.target_values[0] + static_cast<double>(g);
    complaints.Add(std::move(c));
  }

  qfixcore::QFixOptions options;
  options.encoding_cache = cache;
  options.time_limit_seconds = 60.0;

  Diagnosis out;
  WallTimer timer;
  qfixcore::QFixEngine engine(snap, std::move(complaints), options);
  auto repair = engine.RepairIncremental(1);
  out.total_seconds = timer.ElapsedSeconds();
  if (!repair.ok()) return out;
  out.encode_seconds = repair->stats.encode_seconds;
  out.ok = repair->verified && repair->collateral == 0 &&
           repair->changed_queries == std::vector<size_t>{g};
  return out;
}

std::string Ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", 1e3 * seconds);
  return buf;
}

}  // namespace

int main() {
  const bool full = bench::FullMode();
  const size_t nd = full ? 1000 : 600;
  const size_t K = full ? 250 : 150;
  const size_t chunk = full ? 32 : 24;
  const size_t appends = full ? 20 : 12;

  std::printf(
      "Append-mode Figure 4: tail diagnosis per appended batch (N_D = "
      "%zu, %zu queries/append, %zu complaints)\n",
      nd, chunk, K);
  std::printf(
      "enc_reencode = cold prefix replay from D0; enc_append = "
      "EncodingCache walk-back over the lineage\n\n");

  std::vector<Diagnosis> cold_sum(appends), warm_sum(appends);
  int bad = 0;
  uint64_t computes = 0;
  for (int t = 0; t < bench::Trials(); ++t) {
    ingest::EncodingCache cache(64u << 20);
    cache::Snapshot snap = cache::MakeSnapshot(
        relational::QueryLog(), MakeD0(nd), "growing");
    size_t g = 0;
    const double lo_tail = 100.0 + 10.0 * static_cast<double>(nd - K);
    for (size_t a = 0; a < appends; ++a) {
      relational::QueryLog batch;
      for (size_t q = 0; q < chunk; ++q, ++g) {
        bool corrupted = q + 1 == chunk;  // the newest query of the batch
        batch.push_back(BatchQuery(
            g, static_cast<double>(g) + (corrupted ? 50.0 : 0.0),
            corrupted ? lo_tail
                      : 100.0 + 10.0 * static_cast<double>(
                                           (13 * g) % (nd / 2))));
      }
      snap = cache::AppendSnapshot(snap, std::move(batch));

      Diagnosis cold = DiagnoseTail(snap, g - 1, nd, K, nullptr);
      Diagnosis warm = DiagnoseTail(snap, g - 1, nd, K, &cache);
      cold_sum[a].total_seconds += cold.total_seconds;
      cold_sum[a].encode_seconds += cold.encode_seconds;
      warm_sum[a].total_seconds += warm.total_seconds;
      warm_sum[a].encode_seconds += warm.encode_seconds;
      if (!cold.ok || !warm.ok) ++bad;
    }
    computes += cache.stats().computes;
  }

  harness::Table table({"Nq", "enc_reencode(ms)", "enc_append(ms)",
                        "enc_speedup", "e2e_reencode(ms)",
                        "e2e_append(ms)"});
  const double trials = static_cast<double>(bench::Trials());
  for (size_t a = 0; a < appends; ++a) {
    double cold_enc = cold_sum[a].encode_seconds / trials;
    double warm_enc = warm_sum[a].encode_seconds / trials;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1f",
                  warm_enc > 0 ? cold_enc / warm_enc : 0.0);
    table.AddRow({std::to_string(chunk * (a + 1)), Ms(cold_enc),
                  Ms(warm_enc), speedup,
                  Ms(cold_sum[a].total_seconds / trials),
                  Ms(warm_sum[a].total_seconds / trials)});
  }
  bench::PrintAndExport(table, "ingest");

  std::printf(
      "\nEncodingCache across %d trial lineage(s): %llu gap replays "
      "(one per append, each covering one chunk).\n",
      bench::Trials(), static_cast<unsigned long long>(computes));
  std::printf(
      "Expected shape: enc_reencode(ms) grows with Nq; enc_append(ms) "
      "stays near-flat at the\nper-chunk cost (paper Fig. 4's log-size "
      "axis, re-read as ingest cost per appended batch).\n");
  if (bad > 0) {
    std::printf("FAILED: %d diagnosis(es) wrong or unverified\n", bad);
    return 1;
  }
  return 0;
}
