// Figure 8e: WHERE-clause dimensionality vs time — each extra conjunct
// adds constraints and indicator variables, increasing cost even though
// the query cardinality is held constant.
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

int main() {
  const std::vector<size_t> dims{1, 2, 3, 4};
  const bool full = bench::FullMode();
  const size_t nq = full ? 50 : 30;

  std::printf("Figure 8e: WHERE dimensionality vs time (Nq = %zu, "
              "constant cardinality, inc1-all)\n\n", nq);
  harness::Table table({"predicates", "time(s)", "F1", "MILP_rows"});

  for (size_t d : dims) {
    workload::SyntheticSpec spec;
    spec.num_tuples = 300;
    spec.num_attrs = 10;
    spec.value_domain = 300;
    spec.range_size = 12;
    spec.where_dimensions = d;
    spec.num_queries = nq;

    bench::Aggregate agg;
    int rows = 0;
    for (int t = 0; t < bench::Trials(); ++t) {
      workload::Scenario s = workload::MakeSyntheticScenario(
          spec, {nq / 2}, 1200 + t);
      if (s.complaints.empty()) continue;
      qfixcore::QFixOptions opt;
      opt.time_limit_seconds = 20.0;
      auto res = bench::RunTrial(
          s,
          [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
          opt);
      if (res.ok) rows = res.stats.num_constraints;
      agg.Add(res);
    }
    table.AddRow({std::to_string(d), agg.TimeCell(), agg.F1Cell(),
                  rows > 0 ? std::to_string(rows) : "-"});
  }
  bench::PrintAndExport(table, "fig8_dimensionality");
  std::printf(
      "\nExpected shape: time grows with the number of predicates "
      "(paper Fig. 8e).\n");
  return 0;
}
