// Figure 8d: attribute skew vs time — zipfian attribute choice from
// s = 0 (uniform) to s = 1 concentrates the workload on few attributes
// and *reduces* repair latency (fewer attributes carry constraints, and
// each carries more pruning power).
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

int main() {
  const std::vector<double> skews{0.0, 0.25, 0.5, 0.75, 1.0};
  const bool full = bench::FullMode();
  const size_t nq = full ? 50 : 30;

  std::printf("Figure 8d: attribute skew vs time (Nq = %zu, inc1-all)\n\n",
              nq);
  harness::Table table({"skew", "time(s)", "F1"});

  for (double skew : skews) {
    workload::SyntheticSpec spec;
    spec.num_tuples = 200;
    spec.num_attrs = 10;
    spec.value_domain = 200;
    spec.range_size = 8;
    spec.num_queries = nq;
    spec.skew = skew;

    bench::Aggregate agg;
    for (int t = 0; t < bench::Trials(); ++t) {
      workload::Scenario s = workload::MakeSyntheticScenario(
          spec, {nq / 2}, 1100 + t);
      if (s.complaints.empty()) continue;
      qfixcore::QFixOptions opt;
      opt.time_limit_seconds = 20.0;
      agg.Add(bench::RunTrial(
          s,
          [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
          opt));
    }
    table.AddRow({harness::Table::Cell(skew), agg.TimeCell(),
                  agg.F1Cell()});
  }
  bench::PrintAndExport(table, "fig8_skew");
  std::printf(
      "\nExpected shape: latency decreases as skew increases (paper "
      "Fig. 8d).\n");
  return 0;
}
