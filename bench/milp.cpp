// Parallel execution scaling: the two consumers of src/exec measured
// against their serial baselines on the same inputs.
//
//  1. Solver-level: 1-job vs 4-job branch & bound on strongly
//     correlated knapsacks (tight LP bounds force real enumeration —
//     the branching-heavy regime where extra workers pay off), checking
//     identical proven optima.
//  2. Engine-level: BatchDiagnoser throughput over independent
//     corruption scenarios, pooled workers vs the deterministic serial
//     mode, checking identical diagnoses.
//
// The emitted table is the first checked-in perf trajectory point for
// the solver (BENCH_milp.json). Speedups are hardware-dependent: on a
// single-core container the parallel runs only measure overhead; on
// N-core hardware the knapsack rows approach the core count.
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "milp/model.h"
#include "milp/solver.h"
#include "qfix/batch.h"
#include "workload/synthetic.h"

using namespace qfix;

namespace {

// Strongly correlated knapsack (value ~= weight): the LP bound is tight
// everywhere, so branch & bound must genuinely enumerate.
milp::Model HardKnapsack(int n, uint64_t seed) {
  Rng rng(seed);
  milp::Model m;
  milp::LinearTerms row;
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    milp::VarId v = m.AddBinary("b" + std::to_string(i));
    double w = double(rng.UniformInt(10, 30));
    total += w;
    row.push_back({v, w});
    m.AddObjectiveTerm(v, -(w + rng.UniformReal(0.0, 1.0)));
  }
  m.AddConstraint(row, milp::Sense::kLe, std::floor(total / 2.0) + 0.5);
  return m;
}

// One independent single-corruption diagnosis request (the service-loop
// unit of work for BatchDiagnoser).
qfixcore::BatchItem ScenarioItem(uint64_t seed) {
  workload::SyntheticSpec spec;
  spec.num_tuples = 40;
  spec.num_attrs = 6;
  spec.num_queries = 16;
  spec.value_domain = 60;
  spec.range_size = 10;
  workload::Scenario s = workload::MakeSyntheticScenario(
      spec, /*corrupt=*/{spec.num_queries / 2}, seed);
  qfixcore::BatchItem item;
  item.data = cache::MakeSnapshot(s.dirty_log, s.d0, s.dirty);
  item.complaints = s.complaints;
  item.options.time_limit_seconds = 30.0;
  return item;
}

}  // namespace

int main() {
  const bool full = bench::FullMode();
  const int parallel_jobs = 4;
  bool all_equal = true;

  std::printf("src/exec scaling: serial vs %d workers "
              "(hardware threads: %u)\n\n",
              parallel_jobs, std::thread::hardware_concurrency());

  // ---- 1. Parallel branch & bound on knapsacks. ----
  harness::Table solver_table({"instance", "vars", "s_1job",
                               "s_" + std::to_string(parallel_jobs) + "job",
                               "speedup", "obj_equal", "nodes_1",
                               "nodes_N"});
  const int n = full ? 34 : 30;
  for (uint64_t seed : {7u, 11u, 23u}) {
    milp::Model m = HardKnapsack(n, seed);
    double best_1 = 1e30, best_n = 1e30;
    milp::MilpSolution sol_1, sol_n;
    for (int t = 0; t < bench::Trials(); ++t) {
      milp::MilpOptions serial;
      serial.jobs = 1;
      double s0 = MonotonicSeconds();
      sol_1 = milp::MilpSolver(serial).Solve(m);
      best_1 = std::min(best_1, MonotonicSeconds() - s0);

      milp::MilpOptions parallel = serial;
      parallel.jobs = parallel_jobs;
      s0 = MonotonicSeconds();
      sol_n = milp::MilpSolver(parallel).Solve(m);
      best_n = std::min(best_n, MonotonicSeconds() - s0);
    }
    bool equal = sol_1.status == milp::MilpStatus::kOptimal &&
                 sol_n.status == milp::MilpStatus::kOptimal &&
                 std::fabs(sol_1.objective - sol_n.objective) < 1e-6;
    all_equal = all_equal && equal;
    solver_table.AddRow(
        {"knapsack-" + std::to_string(n) + "-s" + std::to_string(seed),
         std::to_string(sol_1.stats.num_vars), harness::Table::Cell(best_1),
         harness::Table::Cell(best_n),
         harness::Table::Cell(best_1 / best_n), equal ? "yes" : "NO",
         std::to_string(sol_1.stats.nodes),
         std::to_string(sol_n.stats.nodes)});
  }
  bench::PrintAndExport(solver_table, "milp");

  // ---- 2. Batched diagnosis throughput. ----
  const size_t batch_size = full ? 16 : 8;
  std::vector<qfixcore::BatchItem> items;
  for (size_t i = 0; i < batch_size; ++i) {
    items.push_back(ScenarioItem(300 + i));
  }

  double serial_s = 1e30, pooled_s = 1e30;
  std::vector<Result<qfixcore::Repair>> serial_out, pooled_out;
  for (int t = 0; t < bench::Trials(); ++t) {
    qfixcore::BatchOptions serial;
    serial.jobs = 0;  // deterministic inline mode
    double s0 = MonotonicSeconds();
    serial_out = qfixcore::BatchDiagnoser(serial).Run(items);
    serial_s = std::min(serial_s, MonotonicSeconds() - s0);

    qfixcore::BatchOptions pooled;
    pooled.jobs = parallel_jobs;
    s0 = MonotonicSeconds();
    pooled_out = qfixcore::BatchDiagnoser(pooled).Run(items);
    pooled_s = std::min(pooled_s, MonotonicSeconds() - s0);
  }
  size_t agree = 0, diagnosed = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    if (serial_out[i].ok()) ++diagnosed;
    bool same =
        serial_out[i].ok() == pooled_out[i].ok() &&
        (!serial_out[i].ok() ||
         std::fabs(serial_out[i]->distance - pooled_out[i]->distance) < 1e-6);
    if (same) ++agree;
  }
  all_equal = all_equal && agree == items.size();

  std::printf("\n");
  harness::Table batch_table({"batch", "items", "diagnosed", "s_serial",
                              "s_" + std::to_string(parallel_jobs) + "job",
                              "speedup", "items/s", "agree"});
  batch_table.AddRow(
      {"synthetic-1corr", std::to_string(items.size()),
       std::to_string(diagnosed), harness::Table::Cell(serial_s),
       harness::Table::Cell(pooled_s),
       harness::Table::Cell(serial_s / pooled_s),
       harness::Table::Cell(double(items.size()) / pooled_s),
       std::to_string(agree) + "/" + std::to_string(items.size())});
  bench::PrintAndExport(batch_table, "milp_batch");

  if (!all_equal) {
    std::fprintf(stderr,
                 "FAIL: parallel results diverged from serial baseline\n");
    return 1;
  }
  return 0;
}
