// Figure 10 (Appendix A): DecTree vs QFix — runtime and accuracy on the
// simplified single-query setting that favors the learning baseline:
// one corrupted UPDATE (constant SET, range WHERE), complete complaints,
// growing database size.
//
// Paper findings: DecTree is a small constant factor faster but its
// repairs are effectively unusable (F1 from ~0.5 degrading toward 0),
// while QFix stays at F1 = 1.
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "dectree/dectree_repair.h"
#include "workload/synthetic.h"

using namespace qfix;

int main() {
  std::vector<size_t> db_sizes = bench::FullMode()
                                     ? std::vector<size_t>{100, 500, 1000,
                                                           5000, 20000}
                                     : std::vector<size_t>{100, 500, 1000,
                                                           5000};

  std::printf("Figure 10: DecTree baseline vs QFix (single corrupted "
              "UPDATE, complete complaints)\n\n");
  harness::Table table({"ND", "DecTree(s)", "QFix(s)", "DecTree_F1",
                        "QFix_F1"});

  for (size_t nd : db_sizes) {
    // The paper's template: multi-clause SET, multi-dimensional range
    // WHERE at ~2% joint selectivity over a fixed value domain. Few
    // positives among many negatives is precisely where rule learners
    // collapse (Appendix A, "high selectivity, low precision").
    workload::SyntheticSpec spec;
    spec.num_tuples = nd;
    spec.num_attrs = 10;
    spec.value_domain = 200;
    spec.range_size = 4;  // 2% joint selectivity
    spec.where_dimensions = 2;
    spec.num_queries = 1;

    bench::Aggregate qfix_agg;
    double dectree_time = 0.0, dectree_f1 = 0.0;
    int dectree_runs = 0;
    for (int t = 0; t < bench::Trials(); ++t) {
      workload::Scenario s =
          workload::MakeSyntheticScenario(spec, {0}, 1400 + t);
      if (s.complaints.empty()) continue;

      // --- DecTree: learn WHERE from labels, refit SET (Appendix A). ---
      WallTimer timer;
      auto dt = dectree::RepairWithDecTree(s.dirty_log[0], s.d0, s.truth);
      if (dt.ok()) {
        relational::QueryLog repaired{dt->repaired};
        dectree_time += timer.ElapsedSeconds();
        auto acc =
            harness::EvaluateRepair(repaired, s.d0, s.dirty, s.truth);
        dectree_f1 += acc.f1;
        ++dectree_runs;
      }

      // --- QFix (inc1, all optimizations). ---
      qfixcore::QFixOptions opt;
      opt.time_limit_seconds = 30.0;
      qfix_agg.Add(bench::RunTrial(
          s,
          [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
          opt));
    }
    table.AddRow({std::to_string(nd),
                  dectree_runs > 0
                      ? harness::Table::Cell(dectree_time / dectree_runs)
                      : "n/a",
                  qfix_agg.TimeCell(),
                  dectree_runs > 0
                      ? harness::Table::Cell(dectree_f1 / dectree_runs)
                      : "-",
                  qfix_agg.F1Cell()});
  }
  bench::PrintAndExport(table, "fig10_dectree");
  std::printf(
      "\nExpected shape: comparable runtimes (DecTree a constant factor "
      "apart), but QFix F1 = 1 while DecTree accuracy is low/unstable "
      "(paper Fig. 10a/10b).\n");
  return 0;
}
