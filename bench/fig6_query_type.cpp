// Figure 6c/6f: query-type cost — INSERT-only vs DELETE-only vs
// UPDATE-only logs under inc1-tuple, corrupting the *oldest* query.
//
// Paper finding: INSERT repairs stay near-constant as the log grows,
// DELETE grows moderately, UPDATE grows fastest (each complaint tuple
// drags its whole downstream provenance into the MILP). F1 stays ~1.
//
// [scaled] Log sweep to 60 (paper 200) and N_D = 200 with ~5 complaint
// tuples: UPDATE chains multiply rows by log length, which is where the
// dense simplex tops out.
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

int main() {
  const bool full = bench::FullMode();
  std::vector<size_t> log_sizes =
      full ? std::vector<size_t>{1, 25, 50, 100, 150, 200}
           : std::vector<size_t>{1, 10, 20, 40, 60};

  std::printf("Figure 6c/6f: repair cost by query type (corrupt the "
              "oldest query), inc1-tuple\n\n");
  harness::Table time_table({"Nq", "INSERT(s)", "DELETE(s)", "UPDATE(s)"});
  harness::Table f1_table({"Nq", "INSERT", "DELETE", "UPDATE"});

  for (size_t nq : log_sizes) {
    std::vector<std::string> time_row{std::to_string(nq)};
    std::vector<std::string> f1_row{std::to_string(nq)};
    for (int type = 0; type < 3; ++type) {
      workload::SyntheticSpec spec;
      spec.num_tuples = 200;
      spec.num_attrs = 10;
      spec.value_domain = 200;
      spec.range_size = 4;
      spec.num_queries = nq;
      if (type == 0) {
        spec.insert_fraction = 1.0;
      } else if (type == 1) {
        spec.delete_fraction = 1.0;
        spec.range_size = 2;  // keep some tuples alive over long logs
      }
      bench::Aggregate agg;
      for (int t = 0; t < bench::Trials(); ++t) {
        workload::Scenario s =
            workload::MakeSyntheticScenario(spec, {0}, 400 + t);
        if (s.complaints.empty()) continue;
        qfixcore::QFixOptions opt;
        opt.time_limit_seconds = 30.0;
        agg.Add(bench::RunTrial(
            s,
            [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
            opt));
      }
      time_row.push_back(agg.TimeCell());
      f1_row.push_back(agg.F1Cell());
    }
    time_table.AddRow(time_row);
    f1_table.AddRow(f1_row);
  }
  std::printf("-- time (seconds) --\n");
  bench::PrintAndExport(time_table, "fig6_query_type_time");
  std::printf("\n-- F1 --\n");
  bench::PrintAndExport(f1_table, "fig6_query_type_accuracy");
  std::printf(
      "\nExpected shape: INSERT ~ flat, DELETE grows moderately, UPDATE "
      "grows fastest (paper Fig. 6c); F1 ~ 1 everywhere (Fig. 6f).\n");
  return 0;
}
