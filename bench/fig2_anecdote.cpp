// Figure 2 / §7.4 anecdote: "we evaluated QFix on Example 2 in Figure 2
// and fully repaired the correct query in 35 milliseconds."
//
// This bench replays the exact running example and reports our repair
// latency for the same diagnosis.
#include <cstdio>

#include "bench_common.h"
#include "relational/executor.h"
#include "sql/parser.h"

using namespace qfix;

int main() {
  relational::Schema schema({"income", "owed", "pay"});
  relational::Database d0(schema, "Taxes");
  d0.AddTuple({9500, 950, 8550});
  d0.AddTuple({90000, 22500, 67500});
  d0.AddTuple({86000, 21500, 64500});
  d0.AddTuple({86500, 21625, 64875});

  auto dirty_log = sql::ParseLog(
      "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;"
      "INSERT INTO Taxes VALUES (87000, 21750, 65250);"
      "UPDATE Taxes SET pay = income - owed;",
      schema);
  auto clean_log = sql::ParseLog(
      "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 87500;"
      "INSERT INTO Taxes VALUES (87000, 21750, 65250);"
      "UPDATE Taxes SET pay = income - owed;",
      schema);
  QFIX_CHECK(dirty_log.ok() && clean_log.ok());

  workload::Scenario s = workload::FinalizeScenario(
      std::move(d0), std::move(*clean_log), std::move(*dirty_log), {0});

  std::printf("Figure 2 anecdote: repair the tax-bracket example\n");
  std::printf("(paper reports 35 ms on CPLEX)\n\n");
  harness::Table table({"trial", "time(ms)", "precision", "recall", "F1"});
  const int trials = bench::Trials();
  for (int t = 0; t < trials; ++t) {
    auto result = bench::RunTrial(
        s, [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
        qfixcore::QFixOptions());
    table.AddRow({std::to_string(t + 1),
                  harness::Table::Cell(result.seconds * 1e3),
                  result.ok ? harness::Table::Cell(result.accuracy.precision)
                            : result.failure,
                  result.ok ? harness::Table::Cell(result.accuracy.recall)
                            : "-",
                  result.ok ? harness::Table::Cell(result.accuracy.f1)
                            : "-"});
  }
  bench::PrintAndExport(table, "fig2_anecdote");
  return 0;
}
