// Ablation: MILP solver internals — bound-propagation presolve, the root
// rounding heuristic, root probing, and the branching rule. These are
// the design choices that make the from-scratch branch & bound viable on
// QFix's chain-structured big-M encodings (DESIGN.md, substitution S2).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "workload/synthetic.h"

using namespace qfix;

namespace {

struct SolverConfig {
  const char* name;
  bool presolve;
  bool rounding;
  bool probing;
  milp::BranchRule branch_rule;
};

}  // namespace

int main() {
  const bool full = bench::FullMode();
  const size_t nq = full ? 40 : 24;
  std::printf("Ablation: solver internals (Nq = %zu, inc1-all)\n\n", nq);
  harness::Table table({"config", "time(s)", "solver_nodes", "F1"});

  const std::vector<SolverConfig> configs = {
      {"all-on (default)", true, true, true,
       milp::BranchRule::kMostFractional},
      {"no presolve", false, true, true, milp::BranchRule::kMostFractional},
      {"no rounding", true, false, true, milp::BranchRule::kMostFractional},
      {"no probing", true, true, false, milp::BranchRule::kMostFractional},
      {"pseudo-cost branching", true, true, true,
       milp::BranchRule::kPseudoCost},
      {"bare (propagation only)", true, false, false,
       milp::BranchRule::kMostFractional},
  };

  for (const SolverConfig& config : configs) {
    bench::Aggregate agg;
    long long nodes = 0;
    int node_samples = 0;
    for (int t = 0; t < bench::Trials(); ++t) {
      workload::SyntheticSpec spec;
      spec.num_tuples = 300;
      spec.num_attrs = 10;
      spec.value_domain = 300;
      spec.range_size = 12;
      spec.num_queries = nq;
      workload::Scenario s = workload::MakeSyntheticScenario(
          spec, {nq / 3}, 1600 + t);
      if (s.complaints.empty()) continue;
      qfixcore::QFixOptions opt;
      opt.milp.enable_presolve = config.presolve;
      opt.milp.enable_rounding_heuristic = config.rounding;
      opt.milp.enable_probing = config.probing;
      opt.milp.branch_rule = config.branch_rule;
      opt.time_limit_seconds = 20.0;
      auto res = bench::RunTrial(
          s,
          [](qfixcore::QFixEngine& e) { return e.RepairIncremental(1); },
          opt);
      if (res.ok) {
        nodes += res.stats.solver_nodes;
        ++node_samples;
      }
      agg.Add(res);
    }
    table.AddRow({config.name, agg.TimeCell(),
                  node_samples > 0 ? std::to_string(nodes / node_samples)
                                   : "-",
                  agg.F1Cell()});
  }
  bench::PrintAndExport(table, "abl_solver");
  std::printf(
      "\nExpected: presolve dominates (big-M chains propagate); probing "
      "and pseudo-cost trade root/node work for fewer nodes; every "
      "config reaches the same F1.\n");
  return 0;
}
