#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "provenance/complaint.h"
#include "qfix/encoder.h"
#include "qfix/qfix.h"
#include "relational/executor.h"
#include "sql/parser.h"
#include "test_support.h"
#include "workload/synthetic.h"

namespace qfix {
namespace qfixcore {
namespace {

using provenance::ComplaintSet;
using provenance::DiffStates;
using relational::CmpOp;
using relational::Database;
using relational::ExecuteLog;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::Schema;

using test::PaperLog;
using test::TaxD0;
using test::TaxSchema;

// Builds an engine for (dirty log, clean log) over d0 with the complete
// complaint set derived by state diffing.
QFixEngine MakeEngine(const QueryLog& dirty_log, const QueryLog& clean_log,
                      const Database& d0, QFixOptions options = {}) {
  Database dirty = ExecuteLog(dirty_log, d0);
  Database truth = ExecuteLog(clean_log, d0);
  ComplaintSet complaints = DiffStates(dirty, truth);
  return QFixEngine(dirty_log, d0, dirty, complaints, options);
}

// True if replaying `log` equals replaying `clean_log` tuple-for-tuple.
bool ReplayMatchesTruth(const QueryLog& log, const QueryLog& clean_log,
                        const Database& d0, double tol = 1e-6) {
  Database got = ExecuteLog(log, d0);
  Database want = ExecuteLog(clean_log, d0);
  if (got.NumSlots() != want.NumSlots()) return false;
  for (size_t i = 0; i < got.NumSlots(); ++i) {
    if (got.slot(i).alive != want.slot(i).alive) return false;
    if (!got.slot(i).alive) continue;
    for (size_t a = 0; a < got.schema().num_attrs(); ++a) {
      if (std::fabs(got.slot(i).values[a] - want.slot(i).values[a]) > tol) {
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// Running example (paper Fig. 2): the flagship end-to-end scenario.
// ---------------------------------------------------------------------

TEST(QFixEndToEnd, RepairsPaperRunningExample) {
  QueryLog dirty_log = PaperLog(85700);
  QueryLog clean_log = PaperLog(87500);
  Database d0 = TaxD0();
  QFixEngine engine = MakeEngine(dirty_log, clean_log, d0);

  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  // The diagnosis blames exactly q1.
  EXPECT_EQ(repair->changed_queries, (std::vector<size_t>{0}));
  // The repaired threshold must exclude the complaint tuples (86000,
  // 86500) and keep 90000 matched.
  double threshold = repair->log[0].GetParam(
      {relational::ParamRef::Kind::kWhereRhs, 0, 0});
  EXPECT_GT(threshold, 86500.0);
  EXPECT_LE(threshold, 87000.0 + 1.0);
  // The repaired log reproduces the true final state exactly.
  EXPECT_TRUE(ReplayMatchesTruth(repair->log, clean_log, d0));
}

TEST(QFixEndToEnd, BasicAlgorithmAlsoRepairsPaperExample) {
  QueryLog dirty_log = PaperLog(85700);
  QueryLog clean_log = PaperLog(87500);
  Database d0 = TaxD0();
  QFixEngine engine = MakeEngine(dirty_log, clean_log, d0);
  auto repair = engine.RepairBasic();
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  EXPECT_TRUE(ReplayMatchesTruth(repair->log, clean_log, d0));
}

TEST(QFixEndToEnd, WorksThroughSqlFrontEnd) {
  Schema schema = TaxSchema();
  auto dirty_log = sql::ParseLog(
      "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;"
      "INSERT INTO Taxes VALUES (87000, 21750, 65250);"
      "UPDATE Taxes SET pay = income - owed;",
      schema);
  ASSERT_TRUE(dirty_log.ok()) << dirty_log.status().ToString();
  QueryLog clean_log = PaperLog(87500);
  Database d0 = TaxD0();
  QFixEngine engine = MakeEngine(*dirty_log, clean_log, d0);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok());
  EXPECT_TRUE(repair->verified);
  // Repaired log prints back as SQL.
  std::string sql_text = repair->log[0].ToSql(schema);
  EXPECT_NE(sql_text.find("UPDATE Taxes SET owed = income * 0.3"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Per-query-type repairs.
// ---------------------------------------------------------------------

TEST(QFixQueryTypes, RepairsSetConstantCorruption) {
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  for (int i = 0; i < 8; ++i) d0.AddTuple({double(i * 10), 0});

  auto make_log = [&](double set_const) {
    QueryLog log;
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::Constant(set_const)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 40})));
    return log;
  };
  QueryLog dirty_log = make_log(70);  // should have been 50
  QueryLog clean_log = make_log(50);
  Database d0_copy = d0;
  QFixEngine engine = MakeEngine(dirty_log, clean_log, d0_copy);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  // The SET constant is pinned exactly by the complaint targets.
  EXPECT_DOUBLE_EQ(repair->log[0].GetParam(
                       {relational::ParamRef::Kind::kSetConstant, 0, 0}),
                   50.0);
  EXPECT_TRUE(ReplayMatchesTruth(repair->log, clean_log, d0_copy));
}

TEST(QFixQueryTypes, RepairsInsertCorruption) {
  Schema schema = Schema::WithDefaultNames(3);
  Database d0(schema, "T");
  d0.AddTuple({1, 2, 3});

  auto make_log = [&](std::vector<double> values) {
    QueryLog log;
    log.push_back(Query::Insert("T", std::move(values)));
    // A later pass-through update exercises provenance through INSERT.
    log.push_back(Query::Update("T", {{2, LinearExpr::Attr(1)}},
                                Predicate::True()));
    return log;
  };
  QueryLog dirty_log = make_log({10, 99, 0});  // 99 should be 20
  QueryLog clean_log = make_log({10, 20, 0});
  QFixEngine engine = MakeEngine(dirty_log, clean_log, d0);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  EXPECT_EQ(repair->changed_queries, (std::vector<size_t>{0}));
  EXPECT_DOUBLE_EQ(repair->log[0].insert_values()[1], 20.0);
  EXPECT_TRUE(ReplayMatchesTruth(repair->log, clean_log, d0));
}

TEST(QFixQueryTypes, RepairsDeleteCorruption) {
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  for (int i = 0; i < 10; ++i) d0.AddTuple({double(i), double(100 + i)});

  auto make_log = [&](double threshold) {
    QueryLog log;
    log.push_back(Query::Delete(
        "T", Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, threshold})));
    return log;
  };
  QueryLog dirty_log = make_log(5);   // deleted 5..9
  QueryLog clean_log = make_log(8);   // should only delete 8, 9
  QFixEngine engine = MakeEngine(dirty_log, clean_log, d0);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  // Complaints demand tuples 5, 6, 7 stay alive; the minimal threshold
  // excluding them is 7.5, and nothing lives in (7.5, 8).
  EXPECT_TRUE(ReplayMatchesTruth(repair->log, clean_log, d0));
}

TEST(QFixQueryTypes, RepairsRelativeSetCorruption) {
  // SET a1 = a1 + delta with the wrong delta.
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  for (int i = 0; i < 6; ++i) d0.AddTuple({double(i), double(10 * i)});

  auto make_log = [&](double delta) {
    QueryLog log;
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::AttrScaled(1, 1.0, delta)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kLe, 3})));
    return log;
  };
  QueryLog dirty_log = make_log(-7);
  QueryLog clean_log = make_log(5);
  QFixEngine engine = MakeEngine(dirty_log, clean_log, d0);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  EXPECT_DOUBLE_EQ(repair->log[0].GetParam(
                       {relational::ParamRef::Kind::kSetConstant, 0, 0}),
                   5.0);
  EXPECT_TRUE(ReplayMatchesTruth(repair->log, clean_log, d0));
}

// ---------------------------------------------------------------------
// Refinement (tuple slicing step 2, paper Fig. 5b).
// ---------------------------------------------------------------------

TEST(QFixRefinement, ExcludesNonComplaintTupleBetweenIntervals) {
  // Dirty range [8, 12] and true range [28, 32] do not overlap, with a
  // non-complaint tuple (a0 = 20) between them. Step 1's minimal-distance
  // repair would stretch the interval over 20; step 2 must exclude it.
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  d0.AddTuple({10, 0});
  d0.AddTuple({20, 0});
  d0.AddTuple({30, 0});

  auto make_log = [&](double lo, double hi) {
    QueryLog log;
    log.push_back(Query::Update("T", {{1, LinearExpr::Constant(1)}},
                                Predicate::Between(0, lo, hi)));
    return log;
  };
  QueryLog dirty_log = make_log(8, 12);
  QueryLog clean_log = make_log(28, 32);
  QFixEngine engine = MakeEngine(dirty_log, clean_log, d0);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  EXPECT_TRUE(repair->stats.refined);
  // The repaired interval matches 30 but neither 10 nor 20.
  const Query& q = repair->log[0];
  EXPECT_FALSE(q.Matches({10, 0}));
  EXPECT_FALSE(q.Matches({20, 0}));
  EXPECT_TRUE(q.Matches({30, 0}));
  EXPECT_TRUE(ReplayMatchesTruth(repair->log, clean_log, d0));
}

TEST(QFixRefinement, NoRefinementWhenIntervalsOverlap) {
  // Fig. 5a: overlapping dirty and true interval, no stranded tuples;
  // step 1 alone is exact and the NC set is empty.
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  d0.AddTuple({10, 0});
  d0.AddTuple({12, 0});
  d0.AddTuple({14, 0});
  d0.AddTuple({16, 0});

  auto make_log = [&](double lo, double hi) {
    QueryLog log;
    log.push_back(Query::Update("T", {{1, LinearExpr::Constant(1)}},
                                Predicate::Between(0, lo, hi)));
    return log;
  };
  QueryLog dirty_log = make_log(10, 13);  // matches 10, 12
  QueryLog clean_log = make_log(12, 17);  // matches 12, 14, 16
  QFixEngine engine = MakeEngine(dirty_log, clean_log, d0);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  EXPECT_TRUE(ReplayMatchesTruth(repair->log, clean_log, d0));
}

// ---------------------------------------------------------------------
// Incomplete complaint sets (§6).
// ---------------------------------------------------------------------

TEST(QFixIncomplete, RepairsWithPartialComplaints) {
  QueryLog dirty_log = PaperLog(85700);
  QueryLog clean_log = PaperLog(87500);
  Database d0 = TaxD0();
  Database dirty = ExecuteLog(dirty_log, d0);
  Database truth = ExecuteLog(clean_log, d0);
  ComplaintSet full = DiffStates(dirty, truth);
  // Keep only the complaint on t4 (slot 3) — the paper's §6 scenario.
  ComplaintSet partial;
  partial.Add(*full.Find(3));

  QFixEngine engine(dirty_log, d0, dirty, partial);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  // The reported complaint is resolved...
  EXPECT_TRUE(repair->verified);
  Database fixed = ExecuteLog(repair->log, d0);
  EXPECT_DOUBLE_EQ(fixed.slot(3).values[1], 21625);
  // ...and with tuple slicing the repair generalizes: the unreported
  // error on t3 (86000) is healed too, because the minimal threshold
  // change that frees t4 also frees t3.
  EXPECT_DOUBLE_EQ(fixed.slot(2).values[1], 21500);
}

TEST(QFixIncomplete, BasicWithoutTupleSlicingGoesInfeasible) {
  // The same partial complaint under the unsliced basic encoding pins t3
  // to its dirty (wrong) value while t4 must change — no single
  // threshold does both, so the MILP is infeasible (paper §6).
  QueryLog dirty_log = PaperLog(85700);
  QueryLog clean_log = PaperLog(87500);
  Database d0 = TaxD0();
  Database dirty = ExecuteLog(dirty_log, d0);
  Database truth = ExecuteLog(clean_log, d0);
  ComplaintSet full = DiffStates(dirty, truth);
  ComplaintSet partial;
  partial.Add(*full.Find(3));

  QFixOptions options;
  options.tuple_slicing = false;
  options.refinement = false;
  QFixEngine engine(dirty_log, d0, dirty, partial, options);
  auto repair = engine.RepairIncremental(1);
  ASSERT_FALSE(repair.ok());
  EXPECT_TRUE(repair.status().IsInfeasible())
      << repair.status().ToString();
}

// ---------------------------------------------------------------------
// Optimization-level consistency.
// ---------------------------------------------------------------------

struct SlicingConfig {
  bool tuple, query, attr;
};

class QFixSlicingTest : public ::testing::TestWithParam<int> {};

TEST_P(QFixSlicingTest, AllOptimizationLevelsProduceVerifiedRepairs) {
  const SlicingConfig configs[] = {
      {false, false, false}, {true, false, false}, {false, true, false},
      {false, false, true},  {true, true, false},  {true, true, true},
  };
  const SlicingConfig& cfg = configs[GetParam() % 6];
  const int scenario = GetParam() / 6;

  // Three scenarios: corrupt WHERE constant, SET constant, INSERT value.
  Schema schema = Schema::WithDefaultNames(3);
  Database d0(schema, "T");
  for (int i = 0; i < 10; ++i) {
    d0.AddTuple({double(i * 5), double(i), 100});
  }
  auto make_log = [&](bool corrupted) {
    QueryLog log;
    double where_c = corrupted && scenario == 0 ? 15 : 30;
    double set_c = corrupted && scenario == 1 ? -3 : 4;
    // Corrupt attr 1 of the INSERT: it survives to D_n both directly and
    // through the trailing SET a2 = a1 pass.
    std::vector<double> ins{7, corrupted && scenario == 2 ? 0.0 : 50.0, 9};
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::AttrScaled(1, 1.0, set_c)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, where_c})));
    log.push_back(Query::Insert("T", ins));
    log.push_back(Query::Update("T", {{2, LinearExpr::Attr(1)}},
                                Predicate::True()));
    return log;
  };
  QueryLog dirty_log = make_log(true);
  QueryLog clean_log = make_log(false);

  QFixOptions options;
  options.tuple_slicing = cfg.tuple;
  options.query_slicing = cfg.query;
  options.attribute_slicing = cfg.attr;
  QFixEngine engine = MakeEngine(dirty_log, clean_log, d0, options);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok())
      << "scenario " << scenario << " cfg " << cfg.tuple << cfg.query
      << cfg.attr << ": " << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  EXPECT_TRUE(ReplayMatchesTruth(repair->log, clean_log, d0))
      << "scenario " << scenario;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, QFixSlicingTest,
                         ::testing::Range(0, 18));

// ---------------------------------------------------------------------
// Multi-corruption basic repair.
// ---------------------------------------------------------------------

TEST(QFixMultiCorruption, BasicRepairsTwoCorruptedQueries) {
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  for (int i = 0; i < 6; ++i) d0.AddTuple({double(i * 10), 0});

  auto make_log = [&](double c1, double c2) {
    QueryLog log;
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::Constant(c1)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 30})));
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::Constant(c2)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kLe, 10})));
    return log;
  };
  QueryLog dirty_log = make_log(7, 13);   // both SET constants wrong
  QueryLog clean_log = make_log(5, 11);
  QFixEngine engine = MakeEngine(dirty_log, clean_log, d0);
  auto repair = engine.RepairBasic();
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  EXPECT_EQ(repair->changed_queries, (std::vector<size_t>{0, 1}));
  EXPECT_TRUE(ReplayMatchesTruth(repair->log, clean_log, d0));
}

// ---------------------------------------------------------------------
// Incremental search order and failure modes.
// ---------------------------------------------------------------------

TEST(QFixIncremental, FindsOldCorruptionBehindCleanQueries) {
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  for (int i = 0; i < 8; ++i) d0.AddTuple({double(i * 10), 1});

  auto make_log = [&](double threshold) {
    QueryLog log;
    // Oldest query corrupted; several clean queries after it.
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::Constant(2)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, threshold})));
    for (int i = 0; i < 4; ++i) {
      log.push_back(Query::Update(
          "T", {{1, LinearExpr::AttrScaled(1, 2.0)}},
          Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 60})));
    }
    return log;
  };
  QueryLog dirty_log = make_log(20);  // should be 50
  QueryLog clean_log = make_log(50);
  QFixEngine engine = MakeEngine(dirty_log, clean_log, d0);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  EXPECT_EQ(repair->changed_queries, (std::vector<size_t>{0}));
  EXPECT_GE(repair->stats.attempts, 1);
  EXPECT_TRUE(ReplayMatchesTruth(repair->log, clean_log, d0));
}

TEST(QFixIncremental, RejectsBadBatchSize) {
  QueryLog log = PaperLog(85700);
  Database d0 = TaxD0();
  QFixEngine engine = MakeEngine(log, log, d0);
  EXPECT_TRUE(engine.RepairIncremental(0).status().IsInvalidArgument());
}

TEST(QFixIncremental, InfeasibleWhenNoQueryExplainsComplaints) {
  // Complaint on an attribute no query ever writes.
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  d0.AddTuple({1, 1});
  QueryLog log;
  log.push_back(Query::Update("T", {{0, LinearExpr::Constant(5)}},
                              Predicate::True()));
  Database dirty = ExecuteLog(log, d0);
  ComplaintSet complaints;
  complaints.Add({0, true, {5, 99}});  // a1 never written
  QFixEngine engine(log, d0, dirty, complaints);
  auto repair = engine.RepairIncremental(1);
  ASSERT_FALSE(repair.ok());
  EXPECT_TRUE(repair.status().IsInfeasible());
}

// ---------------------------------------------------------------------
// Encoder-level properties.
// ---------------------------------------------------------------------

TEST(EncoderTest, CleanLogIsZeroCostFeasible) {
  // Encoding an *uncorrupted* log with an empty complaint set and all
  // queries parameterized must admit the original parameters at cost 0.
  QueryLog log = PaperLog(87500);
  Database d0 = TaxD0();
  Database dn = ExecuteLog(log, d0);
  ComplaintSet none;

  EncodeRequest req;
  req.log = &log;
  req.d0 = &d0;
  req.dirty_dn = &dn;
  req.complaints = &none;
  req.parameterized.assign(log.size(), true);
  req.encoded.assign(log.size(), true);
  for (size_t i = 0; i < dn.NumSlots(); ++i) req.tuple_slots.push_back(i);

  auto problem = Encode(req);
  ASSERT_TRUE(problem.ok()) << problem.status().ToString();
  milp::MilpSolution sol = milp::MilpSolver().Solve(problem->model);
  ASSERT_EQ(sol.status, milp::MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-6);
  QueryLog repaired = ConvertQLog(log, *problem, sol.x);
  EXPECT_NEAR(relational::LogDistance(log, repaired), 0.0, 1e-6);
}

TEST(EncoderTest, RejectsMalformedRequests) {
  QueryLog log = PaperLog(87500);
  Database d0 = TaxD0();
  Database dn = ExecuteLog(log, d0);
  ComplaintSet none;

  EncodeRequest req;
  req.log = &log;
  req.d0 = &d0;
  req.dirty_dn = &dn;
  req.complaints = &none;
  req.parameterized.assign(2, true);  // wrong size
  req.encoded.assign(2, true);
  EXPECT_TRUE(Encode(req).status().IsInvalidArgument());

  req.parameterized.assign(3, true);
  req.encoded.assign(3, false);  // parameterized but not encoded
  EXPECT_TRUE(Encode(req).status().IsInvalidArgument());
}

// Random single-corruption property sweep: corrupt one query in a random
// log, derive the complete complaint set, and require a verified repair.
class QFixRandomRepairTest : public ::testing::TestWithParam<int> {};

TEST_P(QFixRandomRepairTest, IncrementalRepairResolvesAllComplaints) {
  Rng rng(7000 + GetParam());
  const size_t num_attrs = 3;
  const int num_tuples = 12;
  const int num_queries = 6;
  Schema schema = Schema::WithDefaultNames(num_attrs);
  Database d0(schema, "T");
  for (int i = 0; i < num_tuples; ++i) {
    std::vector<double> vals;
    for (size_t a = 0; a < num_attrs; ++a) {
      vals.push_back(static_cast<double>(rng.UniformInt(0, 50)));
    }
    d0.AddTuple(vals);
  }

  auto random_update = [&](Rng& r) {
    size_t set_attr = 1 + r.Index(num_attrs - 1);
    LinearExpr expr =
        r.Bernoulli(0.5)
            ? LinearExpr::Constant(double(r.UniformInt(0, 50)))
            : LinearExpr::AttrScaled(set_attr, 1.0,
                                     double(r.UniformInt(1, 10)));
    double lo = double(r.UniformInt(0, 40));
    Predicate where =
        r.Bernoulli(0.5)
            ? Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, lo})
            : Predicate::Between(0, lo, lo + double(r.UniformInt(2, 10)));
    return Query::Update("T", {{set_attr, expr}}, where);
  };

  QueryLog clean_log;
  for (int i = 0; i < num_queries; ++i) {
    clean_log.push_back(random_update(rng));
  }
  // Corrupt one random query's first parameter.
  size_t corrupt_idx = rng.Index(clean_log.size());
  QueryLog dirty_log = clean_log;
  auto params = dirty_log[corrupt_idx].Params();
  auto ref = params[rng.Index(params.size())];
  double orig = dirty_log[corrupt_idx].GetParam(ref);
  dirty_log[corrupt_idx].SetParam(
      ref, orig + double(rng.UniformInt(5, 25)) *
                      (rng.Bernoulli(0.5) ? 1.0 : -1.0));

  Database dirty = ExecuteLog(dirty_log, d0);
  Database truth = ExecuteLog(clean_log, d0);
  ComplaintSet complaints = DiffStates(dirty, truth);
  if (complaints.empty()) {
    GTEST_SKIP() << "corruption was a semantic no-op";
  }

  QFixOptions options;
  options.time_limit_seconds = 60.0;
  QFixEngine engine(dirty_log, d0, dirty, complaints, options);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << "case " << GetParam() << ": "
                           << repair.status().ToString();
  EXPECT_TRUE(repair->verified) << "case " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomSingleCorruptions, QFixRandomRepairTest,
                         ::testing::Range(0, 25));

// ---------------------------------------------------------------------
// Parameter polishing (post-solve cleanup of epsilon-boundary optima).
// ---------------------------------------------------------------------

TEST(QFixPolish, RepairedThresholdIsACleanInteger) {
  QueryLog dirty_log = PaperLog(85700);
  QueryLog clean_log = PaperLog(87500);
  Database d0 = TaxD0();
  QFixEngine engine = MakeEngine(dirty_log, clean_log, d0);

  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  ASSERT_TRUE(repair->verified);
  double threshold = repair->log[0].GetParam(
      {relational::ParamRef::Kind::kWhereRhs, 0, 0});
  // Polishing rounds the epsilon-boundary optimum to an integer that
  // replays identically (the data is integral).
  EXPECT_DOUBLE_EQ(threshold, std::round(threshold));
  EXPECT_TRUE(ReplayMatchesTruth(repair->log, clean_log, d0));
}

TEST(QFixPolish, DisablingPolishStillVerifies) {
  QueryLog dirty_log = PaperLog(85700);
  QueryLog clean_log = PaperLog(87500);
  Database d0 = TaxD0();
  QFixOptions options;
  options.polish_params = false;
  QFixEngine engine = MakeEngine(dirty_log, clean_log, d0, options);

  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  EXPECT_TRUE(ReplayMatchesTruth(repair->log, clean_log, d0));
}

TEST(QFixPolish, PolishNeverChangesTheFinalState) {
  // On a mid-log range corruption, polished and unpolished repairs must
  // replay to the same final database state.
  workload::SyntheticSpec spec;
  spec.num_tuples = 60;
  spec.num_attrs = 4;
  spec.num_queries = 12;
  workload::Scenario s = workload::MakeSyntheticScenario(spec, {5}, 321);

  QFixOptions polished;
  QFixOptions raw;
  raw.polish_params = false;
  QFixEngine e1(s.dirty_log, s.d0, s.dirty, s.complaints, polished);
  QFixEngine e2(s.dirty_log, s.d0, s.dirty, s.complaints, raw);
  auto r1 = e1.RepairIncremental(1);
  auto r2 = e2.RepairIncremental(1);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  Database f1 = ExecuteLog(r1->log, s.d0);
  Database f2 = ExecuteLog(r2->log, s.d0);
  ASSERT_EQ(f1.NumSlots(), f2.NumSlots());
  for (size_t i = 0; i < f1.NumSlots(); ++i) {
    ASSERT_EQ(f1.slot(i).alive, f2.slot(i).alive) << "slot " << i;
    if (!f1.slot(i).alive) continue;
    for (size_t a = 0; a < f1.schema().num_attrs(); ++a) {
      EXPECT_NEAR(f1.slot(i).values[a], f2.slot(i).values[a], 1e-6)
          << "slot " << i << " attr " << a;
    }
  }
}

}  // namespace
}  // namespace qfixcore
}  // namespace qfix
