#include <gtest/gtest.h>

#include <cmath>

#include "milp/model.h"
#include "milp/presolve.h"

namespace qfix {
namespace milp {
namespace {

TEST(PresolveTest, TightensSimpleInequality) {
  Model m;
  VarId a = m.AddContinuous(0, 100, "a");
  m.AddConstraint({{a, 2.0}}, Sense::kLe, 10.0);
  Domains d = m.InitialDomains();
  ASSERT_TRUE(PropagateBounds(m, d, 10, nullptr).ok());
  EXPECT_DOUBLE_EQ(d.ub[a], 5.0);
  EXPECT_DOUBLE_EQ(d.lb[a], 0.0);
}

TEST(PresolveTest, GeAndEqSenses) {
  Model m;
  VarId a = m.AddContinuous(0, 100, "a");
  VarId b = m.AddContinuous(0, 100, "b");
  m.AddConstraint({{a, 1.0}}, Sense::kGe, 30.0);
  m.AddConstraint({{b, 1.0}}, Sense::kEq, 42.0);
  Domains d = m.InitialDomains();
  ASSERT_TRUE(PropagateBounds(m, d, 10, nullptr).ok());
  EXPECT_DOUBLE_EQ(d.lb[a], 30.0);
  EXPECT_DOUBLE_EQ(d.lb[b], 42.0);
  EXPECT_DOUBLE_EQ(d.ub[b], 42.0);
}

TEST(PresolveTest, PropagatesThroughChains) {
  // a = 7, b = a + 1, c <= b - 5  =>  c <= 3.
  Model m;
  VarId a = m.AddContinuous(0, 100, "a");
  VarId b = m.AddContinuous(0, 100, "b");
  VarId c = m.AddContinuous(0, 100, "c");
  m.AddConstraint({{a, 1.0}}, Sense::kEq, 7.0);
  m.AddConstraint({{b, 1.0}, {a, -1.0}}, Sense::kEq, 1.0);
  m.AddConstraint({{c, 1.0}, {b, -1.0}}, Sense::kLe, -5.0);
  Domains d = m.InitialDomains();
  ASSERT_TRUE(PropagateBounds(m, d, 10, nullptr).ok());
  EXPECT_DOUBLE_EQ(d.lb[b], 8.0);
  EXPECT_DOUBLE_EQ(d.ub[b], 8.0);
  EXPECT_DOUBLE_EQ(d.ub[c], 3.0);
}

TEST(PresolveTest, FixesIndicatorBinaryFromBigM) {
  // x binary, a fixed to 50; big-M pair forcing x = 1 iff a >= 10:
  //   a - 10 <= M x          (x = 0 forces a < 10)
  //   a - 10 >= -M (1 - x)   (x = 1 forces a >= 10)
  // With a = 50 the first row forces x = 1.
  const double kM = 1000.0;
  Model m;
  VarId a = m.AddContinuous(50, 50, "a");
  VarId x = m.AddBinary("x");
  m.AddConstraint({{a, 1.0}, {x, -kM}}, Sense::kLe, 10.0);
  m.AddConstraint({{a, 1.0}, {x, -kM}}, Sense::kGe, 10.0 - kM);
  Domains d = m.InitialDomains();
  ASSERT_TRUE(PropagateBounds(m, d, 10, nullptr).ok());
  EXPECT_DOUBLE_EQ(d.lb[x], 1.0);
  EXPECT_DOUBLE_EQ(d.ub[x], 1.0);
}

TEST(PresolveTest, IntegerBoundsRoundInward) {
  Model m;
  VarId k = m.AddVariable(VarType::kInteger, 0, 100, "k");
  m.AddConstraint({{k, 2.0}}, Sense::kLe, 9.0);   // k <= 4.5 -> 4
  m.AddConstraint({{k, 3.0}}, Sense::kGe, 7.0);   // k >= 2.33 -> 3
  Domains d = m.InitialDomains();
  ASSERT_TRUE(PropagateBounds(m, d, 10, nullptr).ok());
  EXPECT_DOUBLE_EQ(d.ub[k], 4.0);
  EXPECT_DOUBLE_EQ(d.lb[k], 3.0);
}

TEST(PresolveTest, DetectsInfeasibility) {
  Model m;
  VarId a = m.AddContinuous(0, 5, "a");
  m.AddConstraint({{a, 1.0}}, Sense::kGe, 10.0);
  Domains d = m.InitialDomains();
  EXPECT_TRUE(PropagateBounds(m, d, 10, nullptr).IsInfeasible());
}

TEST(PresolveTest, DetectsConflictingEqualities) {
  Model m;
  VarId a = m.AddContinuous(-100, 100, "a");
  m.AddConstraint({{a, 1.0}}, Sense::kEq, 3.0);
  m.AddConstraint({{a, 1.0}}, Sense::kEq, 4.0);
  Domains d = m.InitialDomains();
  EXPECT_TRUE(PropagateBounds(m, d, 10, nullptr).IsInfeasible());
}

TEST(PresolveTest, HandlesUnboundedVariables) {
  Model m;
  VarId a = m.AddContinuous(-kInf, kInf, "a");
  VarId b = m.AddContinuous(0, 10, "b");
  // a + b <= 3 can only tighten a's upper bound once b's lower is known.
  m.AddConstraint({{a, 1.0}, {b, 1.0}}, Sense::kLe, 3.0);
  Domains d = m.InitialDomains();
  ASSERT_TRUE(PropagateBounds(m, d, 10, nullptr).ok());
  EXPECT_DOUBLE_EQ(d.ub[a], 3.0);
  EXPECT_TRUE(std::isinf(d.lb[a]));
}

TEST(PresolveTest, TrailRewindRestoresDomains) {
  Model m;
  VarId a = m.AddContinuous(0, 100, "a");
  VarId b = m.AddContinuous(0, 100, "b");
  m.AddConstraint({{a, 1.0}}, Sense::kLe, 20.0);
  m.AddConstraint({{b, 1.0}, {a, -1.0}}, Sense::kLe, 0.0);  // b <= a
  Domains d = m.InitialDomains();
  Domains original = d;
  BoundTrail trail;
  ASSERT_TRUE(PropagateBounds(m, d, 10, &trail).ok());
  EXPECT_DOUBLE_EQ(d.ub[a], 20.0);
  EXPECT_DOUBLE_EQ(d.ub[b], 20.0);
  EXPECT_FALSE(trail.empty());
  RewindTrail(d, trail, 0);
  EXPECT_EQ(d.lb, original.lb);
  EXPECT_EQ(d.ub, original.ub);
  EXPECT_TRUE(trail.empty());
}

}  // namespace
}  // namespace milp
}  // namespace qfix
