// DatasetRegistry LRU/TTL eviction: the multi-tenant fleet story.
// A byte budget keeps thousands of registered datasets inside a fixed
// memory envelope; recency (Get/Register) decides who is evicted;
// pinned snapshots — ones an in-flight diagnosis still references —
// are never evicted out from under their readers; eviction drops the
// name's report-cache partition; and a TTL sweeps idle names. Runs in
// the TSan CI lane: the concurrent register/get/read loop at the
// bottom is the zero-use-after-evict acceptance check.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/report_cache.h"
#include "service/registry.h"

namespace qfix {
namespace {

using cache::CacheKey;
using cache::CachedReport;
using cache::ReportCache;
using service::DatasetRegistry;
using service::RegistryOptions;

constexpr const char* kTaxD0Csv =
    "income,owed,pay\n"
    "9500,950,8550\n"
    "90000,22500,67500\n"
    "86000,21500,64500\n"
    "86500,21625,64875\n";

constexpr const char* kTaxLogSql =
    "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;\n"
    "INSERT INTO Taxes VALUES (87000, 21750, 65250);\n"
    "UPDATE Taxes SET pay = income - owed;\n";

/// ApproxDatasetBytes of one taxes fixture — every dataset in these
/// tests is the same fixture, so budgets can be phrased in units of it.
size_t FixtureBytes() {
  DatasetRegistry probe;
  auto ds = probe.Register("probe", kTaxD0Csv, "Taxes", kTaxLogSql);
  EXPECT_TRUE(ds.ok());
  return service::ApproxDatasetBytes(**ds);
}

RegistryOptions ByteBudget(size_t datasets_worth, double ttl = 0.0) {
  RegistryOptions o;
  o.max_bytes = datasets_worth * FixtureBytes() + FixtureBytes() / 2;
  o.ttl_seconds = ttl;
  return o;
}

bool RegisterOk(DatasetRegistry& r, const std::string& name) {
  auto ds = r.Register(name, kTaxD0Csv, "Taxes", kTaxLogSql);
  EXPECT_TRUE(ds.ok()) << name << ": " << ds.status().ToString();
  return ds.ok();
}

TEST(RegistryEvictionTest, ByteBudgetEvictsLeastRecentlyUsed) {
  DatasetRegistry registry(ByteBudget(2));
  ASSERT_TRUE(RegisterOk(registry, "a"));
  ASSERT_TRUE(RegisterOk(registry, "b"));
  ASSERT_TRUE(RegisterOk(registry, "c"));  // pushes past the budget

  EXPECT_EQ(registry.Get("a"), nullptr);  // oldest goes first
  EXPECT_NE(registry.Get("b"), nullptr);
  EXPECT_NE(registry.Get("c"), nullptr);
  auto stats = registry.stats();
  EXPECT_EQ(stats.datasets, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
}

TEST(RegistryEvictionTest, GetRefreshesRecency) {
  DatasetRegistry registry(ByteBudget(2));
  ASSERT_TRUE(RegisterOk(registry, "a"));
  ASSERT_TRUE(RegisterOk(registry, "b"));
  ASSERT_NE(registry.Get("a"), nullptr);  // a is now most recent
  ASSERT_TRUE(RegisterOk(registry, "c"));

  EXPECT_NE(registry.Get("a"), nullptr);
  EXPECT_EQ(registry.Get("b"), nullptr);  // b became the LRU victim
  EXPECT_NE(registry.Get("c"), nullptr);
}

TEST(RegistryEvictionTest, PinnedDatasetsAreNeverEvicted) {
  DatasetRegistry registry(ByteBudget(2));
  ASSERT_TRUE(RegisterOk(registry, "pinned"));
  // Hold a reference, as an in-flight diagnosis would.
  std::shared_ptr<const service::Dataset> held = registry.Get("pinned");
  ASSERT_NE(held, nullptr);

  // Push far past the budget: the pinned LRU-tail entry is skipped and
  // the younger unpinned entries are evicted instead.
  ASSERT_TRUE(RegisterOk(registry, "b"));
  ASSERT_TRUE(RegisterOk(registry, "c"));
  ASSERT_TRUE(RegisterOk(registry, "d"));
  EXPECT_NE(registry.Get("pinned"), nullptr);
  EXPECT_EQ(held->log.size(), 3u);  // still perfectly readable

  // Once the reader finishes, the pin is gone and byte pressure may
  // collect it like anyone else (two registrations: the Get above made
  // it recently used, so it must age to the LRU tail first).
  held.reset();
  ASSERT_TRUE(RegisterOk(registry, "e"));
  ASSERT_TRUE(RegisterOk(registry, "f"));
  EXPECT_EQ(registry.Get("pinned"), nullptr);
}

TEST(RegistryEvictionTest, TtlSweepsIdleDatasets) {
  double now = 0.0;
  DatasetRegistry registry(ByteBudget(100, /*ttl=*/10.0));
  registry.SetClockForTest([&now] { return now; });

  ASSERT_TRUE(RegisterOk(registry, "old"));
  now = 5.0;
  ASSERT_TRUE(RegisterOk(registry, "young"));

  now = 12.0;  // old idle 12s > ttl, young idle 7s
  EXPECT_EQ(registry.SweepExpired(), 1u);
  EXPECT_EQ(registry.Get("old"), nullptr);
  EXPECT_NE(registry.Get("young"), nullptr);
  EXPECT_EQ(registry.stats().ttl_evictions, 1u);

  // Get refreshed young's recency at t=12, so it survives t=15 too.
  now = 15.0;
  EXPECT_EQ(registry.SweepExpired(), 0u);
  EXPECT_NE(registry.Get("young"), nullptr);
}

TEST(RegistryEvictionTest, RegistrationTriggersTtlSweep) {
  double now = 0.0;
  DatasetRegistry registry(ByteBudget(100, /*ttl=*/10.0));
  registry.SetClockForTest([&now] { return now; });

  ASSERT_TRUE(RegisterOk(registry, "stale"));
  now = 20.0;
  ASSERT_TRUE(RegisterOk(registry, "fresh"));  // sweeps in passing
  EXPECT_EQ(registry.Get("stale"), nullptr);
  EXPECT_NE(registry.Get("fresh"), nullptr);
  EXPECT_EQ(registry.stats().ttl_evictions, 1u);
}

TEST(RegistryEvictionTest, EvictionDropsReportCachePartition) {
  ReportCache cache(1 << 20);
  DatasetRegistry registry(ByteBudget(2));
  registry.AttachReportCache(&cache);

  ASSERT_TRUE(RegisterOk(registry, "t1/taxes"));
  auto ds = registry.Get("t1/taxes");
  ASSERT_NE(ds, nullptr);
  CacheKey key{"t1/taxes", ds->version, /*request_hash=*/42};
  cache.Publish(key, CachedReport{"{\"cached\":true}", nullptr});
  ASSERT_NE(cache.Peek(key), nullptr);
  ds.reset();  // unpin

  // Evicting t1/taxes must drop its cache partition with it: stale
  // reports must not sit in the cache budget for an unreachable name.
  ASSERT_TRUE(RegisterOk(registry, "t2/a"));
  ASSERT_TRUE(RegisterOk(registry, "t2/b"));
  ASSERT_EQ(registry.Get("t1/taxes"), nullptr);
  EXPECT_EQ(cache.Peek(key), nullptr);
  EXPECT_EQ(cache.TenantBytes("t1"), 0u);
  EXPECT_GE(cache.stats().invalidations, 1u);
}

TEST(RegistryEvictionTest, ReRegisterAfterEvictionMintsFreshVersion) {
  DatasetRegistry registry(ByteBudget(2));
  ASSERT_TRUE(RegisterOk(registry, "a"));
  const uint64_t first_version = registry.Get("a")->version;
  ASSERT_TRUE(RegisterOk(registry, "b"));
  ASSERT_TRUE(RegisterOk(registry, "c"));
  ASSERT_EQ(registry.Get("a"), nullptr);

  // An evicted name re-registers like any new name, with a fresh
  // version so no stale cache key can ever match it.
  ASSERT_TRUE(RegisterOk(registry, "a"));
  auto again = registry.Get("a");
  ASSERT_NE(again, nullptr);
  EXPECT_NE(again->version, first_version);
}

TEST(RegistryEvictionTest, CountCapStillRejectsNewNames) {
  // The count cap is back-pressure (429 to the caller), distinct from
  // eviction: a byte budget must not turn capacity errors into silent
  // evictions of other tenants' names.
  RegistryOptions options = ByteBudget(100);
  options.max_datasets = 2;
  DatasetRegistry registry(options);
  ASSERT_TRUE(RegisterOk(registry, "a"));
  ASSERT_TRUE(RegisterOk(registry, "b"));
  auto third = registry.Register("c", kTaxD0Csv, "Taxes", kTaxLogSql);
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsResourceExhausted());
  EXPECT_NE(registry.Get("a"), nullptr);
  EXPECT_NE(registry.Get("b"), nullptr);
}

TEST(RegistryEvictionTest, TwoThousandTenantsFitTheBudget) {
  // The acceptance criterion: register 2000 datasets through a budget
  // sized for ~10 and stay inside it the whole time.
  const size_t budget = 10 * FixtureBytes();
  RegistryOptions options;
  options.max_bytes = budget;
  DatasetRegistry registry(options);

  for (int i = 0; i < 2000; ++i) {
    const std::string name = "tenant" + std::to_string(i) + "/taxes";
    ASSERT_TRUE(RegisterOk(registry, name));
    ASSERT_LE(registry.stats().bytes, budget) << "at dataset " << i;
  }
  auto stats = registry.stats();
  EXPECT_LE(stats.datasets, 10u);
  EXPECT_GE(stats.evictions, 1990u);
  // The most recent registrations are the survivors.
  EXPECT_NE(registry.Get("tenant1999/taxes"), nullptr);
  EXPECT_EQ(registry.Get("tenant0/taxes"), nullptr);
}

// The TSan acceptance: registrations that evict race lookups that read
// through their snapshots. A use-after-evict — the registry dropping
// bytes a reader still dereferences — is a data race TSan would flag;
// shared_ptr pinning must make the interleaving boring.
TEST(RegistryEvictionTest, ConcurrentRegisterGetAndReadUnderPressure) {
  ReportCache cache(1 << 18);
  DatasetRegistry registry(ByteBudget(3));
  registry.AttachReportCache(&cache);

  constexpr int kNames = 8;
  constexpr int kIterations = 60;
  auto name_of = [](int i) {
    return "t" + std::to_string(i % kNames) + "/d";
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        auto ds = registry.Register(name_of(i + t), kTaxD0Csv, "Taxes",
                                    kTaxLogSql);
        ASSERT_TRUE(ds.ok());
        // Touch the snapshot after publication — it may already have
        // been evicted by the other registrar, and must still read.
        ASSERT_EQ((*ds)->d0().NumSlots(), 4u);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        std::shared_ptr<const service::Dataset> ds =
            registry.Get(name_of(i * 3 + t));
        if (ds == nullptr) continue;  // evicted or not yet registered
        // Hold the snapshot across other threads' evictions and read
        // every part of it.
        ASSERT_EQ(ds->log.size(), 3u);
        ASSERT_EQ(ds->dirty.NumSlots(), 5u);
        std::this_thread::yield();
        ASSERT_EQ(ds->d0().NumSlots(), 4u);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  auto stats = registry.stats();
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
  EXPECT_GE(stats.evictions, 1u);
}

}  // namespace
}  // namespace qfix
