#include <gtest/gtest.h>

#include "provenance/complaint.h"
#include "provenance/impact.h"
#include "relational/executor.h"
#include "test_support.h"

namespace qfix {
namespace provenance {
namespace {

using relational::CmpOp;
using relational::Database;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::Schema;

using qfix::test::PaperLog;
using qfix::test::TaxD0;
using qfix::test::TaxSchema;

TEST(ComplaintSetTest, AddFindAndConsistency) {
  ComplaintSet set;
  set.Add({3, true, {1, 2, 3}});
  set.Add({1, true, {4, 5, 6}});
  EXPECT_EQ(set.size(), 2u);
  ASSERT_NE(set.Find(3), nullptr);
  EXPECT_EQ(set.Find(3)->target_values[0], 1);
  EXPECT_EQ(set.Find(7), nullptr);
  // Re-adding the same tid replaces (consistency: one transform/tuple).
  set.Add({3, true, {9, 9, 9}});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.Find(3)->target_values[0], 9);
  // Kept sorted by tid.
  EXPECT_EQ(set.complaints()[0].tid, 1);
  EXPECT_EQ(set.complaints()[1].tid, 3);
}

TEST(ComplaintSetTest, ApplyToPerformsTransformations) {
  Database dirty = TaxD0();
  ComplaintSet set;
  set.Add({0, true, {1, 2, 3}});
  set.Add({2, false, {}});  // t3 should be deleted
  Database repaired = set.ApplyTo(dirty);
  EXPECT_EQ(repaired.slot(0).values, (std::vector<double>{1, 2, 3}));
  EXPECT_FALSE(repaired.slot(2).alive);
  EXPECT_TRUE(repaired.slot(1).alive);  // untouched
}

TEST(ComplaintSetTest, ComplaintAttributes) {
  Database dirty = TaxD0();
  ComplaintSet set;
  // Only `owed` (attr 1) differs.
  set.Add({2, true, {86000, 99999, 64500}});
  AttrSet attrs = set.ComplaintAttributes(dirty);
  EXPECT_EQ(attrs.ToVector(), (std::vector<size_t>{1}));
  // A liveness complaint marks all attributes.
  set.Add({0, false, {}});
  EXPECT_EQ(set.ComplaintAttributes(dirty).Count(), 3u);
}

TEST(DiffStatesTest, PaperExampleComplaints) {
  QueryLog dirty_log = PaperLog(85700);   // digit transposition
  QueryLog clean_log = PaperLog(87500);   // intended policy
  Database d0 = TaxD0();
  Database dirty = relational::ExecuteLog(dirty_log, d0);
  Database truth = relational::ExecuteLog(clean_log, d0);

  ComplaintSet complaints = DiffStates(dirty, truth);
  // Exactly t3 and t4 (slots 2, 3) are wrong; t2 (90000) is correctly
  // re-rated by both logs and t5 is inserted identically.
  ASSERT_EQ(complaints.size(), 2u);
  EXPECT_EQ(complaints.complaints()[0].tid, 2);
  EXPECT_EQ(complaints.complaints()[1].tid, 3);
  EXPECT_EQ(complaints.complaints()[0].target_values,
            (std::vector<double>{86000, 21500, 64500}));
  EXPECT_EQ(complaints.complaints()[1].target_values,
            (std::vector<double>{86500, 21625, 64875}));
  // A(C) = {owed, pay}.
  EXPECT_EQ(complaints.ComplaintAttributes(dirty).ToVector(),
            (std::vector<size_t>{1, 2}));
}

TEST(DiffStatesTest, DetectsLivenessDifferences) {
  Schema s = TaxSchema();
  Database a(s, "T"), b(s, "T");
  a.AddTuple({1, 2, 3});
  b.AddTuple({1, 2, 3});
  b.mutable_tuples()[0].alive = false;
  ComplaintSet c = DiffStates(a, b);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_FALSE(c.complaints()[0].target_alive);
}

TEST(SampleComplaintsTest, KeepFractionAndNonEmptyGuarantee) {
  ComplaintSet full;
  for (int i = 0; i < 200; ++i) {
    full.Add({i, true, {0, 0, 0}});
  }
  Rng rng(17);
  ComplaintSet half = SampleComplaints(full, 0.5, rng);
  EXPECT_GT(half.size(), 60u);
  EXPECT_LT(half.size(), 140u);
  ComplaintSet none = SampleComplaints(full, 0.0, rng);
  EXPECT_EQ(none.size(), 1u);  // at least one survives
  ComplaintSet all = SampleComplaints(full, 1.0, rng);
  EXPECT_EQ(all.size(), 200u);
}

TEST(FullImpactTest, PaperExampleChains) {
  QueryLog log = PaperLog(85700);
  auto impacts = ComputeFullImpacts(log, 3);
  ASSERT_EQ(impacts.size(), 3u);
  // q3 writes pay only; nothing follows it.
  EXPECT_EQ(impacts[2].ToVector(), (std::vector<size_t>{2}));
  // q1 writes owed; q3 reads owed (in SET pay = income - owed), so the
  // impact propagates: F(q1) = {owed, pay}.
  EXPECT_EQ(impacts[0].ToVector(), (std::vector<size_t>{1, 2}));
  // INSERT impacts every attribute, and chains through q3 as well.
  EXPECT_EQ(impacts[1].Count(), 3u);
}

TEST(FullImpactTest, NoFalsePropagationWithoutOverlap) {
  // q0 writes a0; q1 reads a1 writes a2. No chain between them.
  Schema s = Schema::WithDefaultNames(3);
  QueryLog log;
  log.push_back(Query::Update("T", {{0, LinearExpr::Constant(1)}},
                              Predicate::True()));
  log.push_back(Query::Update("T", {{2, LinearExpr::Attr(1)}},
                              Predicate::True()));
  auto impacts = ComputeFullImpacts(log, 3);
  EXPECT_EQ(impacts[0].ToVector(), (std::vector<size_t>{0}));
  EXPECT_EQ(impacts[1].ToVector(), (std::vector<size_t>{2}));
}

TEST(RelevantQueriesTest, LooseAndStrictFilters) {
  AttrSet f0(3), f1(3), f2(3), complaint(3);
  f0.Insert(0);              // disjoint from complaints
  f1.Insert(1);              // covers part of complaints
  f2.Insert(1);
  f2.Insert(2);              // covers all complaints
  complaint.Insert(1);
  complaint.Insert(2);
  std::vector<AttrSet> impacts{f0, f1, f2};

  auto loose = RelevantQueries(impacts, complaint, false);
  EXPECT_EQ(loose, (std::vector<size_t>{1, 2}));
  auto strict = RelevantQueries(impacts, complaint, true);
  EXPECT_EQ(strict, (std::vector<size_t>{2}));
}

TEST(RelevantAttributesTest, UnionOfImpactAndDependency) {
  QueryLog log = PaperLog(85700);
  // Relevant: q1 (index 0) only.
  AttrSet complaint(3);
  complaint.Insert(1);
  AttrSet rel = RelevantAttributes(log, {0}, complaint, 3);
  // q1 writes owed (1) and reads income (0); complaint adds owed.
  EXPECT_EQ(rel.ToVector(), (std::vector<size_t>{0, 1}));
}

}  // namespace
}  // namespace provenance
}  // namespace qfix
