// End-to-end tests for the `qfix` command-line tool: file loading, the
// diagnosis flow, report/exports, exit codes, and error handling. These
// exercise exactly what a user runs, including the CSV/SQL/snapshot
// parsers on real files.
//
// The binary's path is passed by CMake via QFIX_CLI_PATH.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace qfix {
namespace {

#ifndef QFIX_CLI_PATH
#error "QFIX_CLI_PATH must be defined by the build"
#endif

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CommandResult RunCli(const std::string& args) {
  std::string command = std::string(QFIX_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  CommandResult result;
  if (pipe == nullptr) return result;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out.is_open()) << path;
  out << content;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Writes the paper's Figure 2 scenario into `dir` and returns the
// common argument prefix.
std::string SetUpPaperScenario(const std::string& dir) {
  WriteFile(dir + "/d0.csv",
            "income,owed,pay\n"
            "9500,950,8550\n"
            "90000,22500,67500\n"
            "86000,21500,64500\n"
            "86500,21625,64875\n");
  WriteFile(dir + "/log.sql",
            "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;\n"
            "INSERT INTO Taxes VALUES (87000, 21750, 65250);\n"
            "UPDATE Taxes SET pay = income - owed;\n");
  WriteFile(dir + "/complaints.csv",
            "tid,alive,income,owed,pay\n"
            "2,1,86000,21500,64500\n"
            "3,1,86500,21625,64875\n");
  return "--d0 " + dir + "/d0.csv --log " + dir + "/log.sql --complaints " +
         dir + "/complaints.csv --table Taxes";
}

class CliTest : public testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each case as its own process in parallel; a per-test
    // directory keeps concurrent cases from racing on the same files.
    dir_ = testing::TempDir() + "/qfix_cli_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    std::string mkdir = "mkdir -p " + dir_;
    ASSERT_EQ(std::system(mkdir.c_str()), 0);
    args_ = SetUpPaperScenario(dir_);
  }
  std::string dir_;
  std::string args_;
};

TEST_F(CliTest, DiagnosesThePaperScenario) {
  CommandResult r = RunCli(args_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("loaded: 4 tuples, 3 queries, 2 complaints"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("q1 executed:"), std::string::npos);
  EXPECT_NE(r.output.find("q1 intended:"), std::string::npos);
  EXPECT_NE(r.output.find("complaints resolved on replay: yes"),
            std::string::npos);
}

TEST_F(CliTest, ReportFlagPrintsFullReport) {
  CommandResult r = RunCli(args_ + " --report");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("QFix diagnosis report"), std::string::npos);
  EXPECT_NE(r.output.find("@@ q1 @@"), std::string::npos);
  EXPECT_NE(r.output.find("2 of 2 complaint(s) resolved"),
            std::string::npos);
}

TEST_F(CliTest, SaveStateWritesAReloadableSnapshot) {
  std::string snap = dir_ + "/repaired.snap";
  CommandResult r = RunCli(args_ + " --save-state " + snap);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::string content = ReadFile(snap);
  EXPECT_EQ(content.rfind("qfix-snapshot v1", 0), 0u) << content;
  EXPECT_NE(content.find("table Taxes"), std::string::npos);

  // The snapshot round-trips as a --d0 input: replaying an empty log
  // over it with zero complaints is rejected gracefully (no complaints
  // = nothing to diagnose), proving the file parsed.
  WriteFile(dir_ + "/empty.sql", "UPDATE Taxes SET pay = pay;\n");
  WriteFile(dir_ + "/none.csv", "tid,alive,income,owed,pay\n");
  CommandResult r2 = RunCli("--d0 " + snap + " --log " + dir_ +
                            "/empty.sql --complaints " + dir_ +
                            "/none.csv --table Taxes");
  EXPECT_NE(r2.output.find("loaded: 5 tuples"), std::string::npos)
      << r2.output;
}

TEST_F(CliTest, ExportLpWritesAnLpModel) {
  std::string lp = dir_ + "/model.lp";
  CommandResult r = RunCli(args_ + " --export-lp " + lp);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::string content = ReadFile(lp);
  EXPECT_NE(content.find("Minimize"), std::string::npos);
  EXPECT_NE(content.find("Subject To"), std::string::npos);
  EXPECT_NE(content.find("End"), std::string::npos);
}

TEST_F(CliTest, ExportGraphWritesDot) {
  std::string dot_path = dir_ + "/impact.dot";
  CommandResult r = RunCli(args_ + " --export-graph " + dot_path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::string content = ReadFile(dot_path);
  EXPECT_EQ(content.rfind("digraph qfix_impact {", 0), 0u);
  EXPECT_NE(content.find("q1 -> q3"), std::string::npos);
}

TEST_F(CliTest, AlternativesListsRankedDiagnoses) {
  CommandResult r = RunCli(args_ + " --alternatives 3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // The Figure 2 scenario has a unique single-query diagnosis, so the
  // run succeeds whether or not the "ranked alternatives" section
  // prints; the flag must at least not break the flow.
  EXPECT_NE(r.output.find("complaints resolved on replay: yes"),
            std::string::npos);
}

TEST_F(CliTest, MissingArgumentsPrintUsage) {
  CommandResult r = RunCli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownFlagPrintsUsage) {
  CommandResult r = RunCli(args_ + " --frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, MissingFileIsACleanError) {
  CommandResult r = RunCli("--d0 /nonexistent.csv --log " + dir_ +
                           "/log.sql --complaints " + dir_ +
                           "/complaints.csv");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot read"), std::string::npos);
}

TEST_F(CliTest, MalformedSqlIsACleanError) {
  WriteFile(dir_ + "/bad.sql", "SELECT * FROM Taxes;\n");
  CommandResult r = RunCli("--d0 " + dir_ + "/d0.csv --log " + dir_ +
                           "/bad.sql --complaints " + dir_ +
                           "/complaints.csv --table Taxes");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error parsing log"), std::string::npos);
}

TEST_F(CliTest, ContradictoryComplaintsReportInfeasible) {
  // Complaints that no constant change can produce: t1 (income 9500,
  // untouched by q1) demands owed = 1.
  WriteFile(dir_ + "/impossible.csv",
            "tid,alive,income,owed,pay\n"
            "2,1,86000,21500,64500\n"
            "3,1,86500,99999,64875\n");
  CommandResult r = RunCli("--d0 " + dir_ + "/d0.csv --log " + dir_ +
                           "/log.sql --complaints " + dir_ +
                           "/impossible.csv --table Taxes");
  // Either infeasible (no diagnosis) or a repair that fails replay
  // verification; both must be reported honestly, not crash.
  EXPECT_TRUE(r.output.find("no diagnosis") != std::string::npos ||
              r.output.find("NO") != std::string::npos)
      << r.output;
}

TEST_F(CliTest, JsonFlagEmitsAParsableDocument) {
  CommandResult r = RunCli(args_ + " --json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // stdout carries exactly one JSON document.
  ASSERT_FALSE(r.output.empty());
  EXPECT_EQ(r.output.front(), '{') << r.output;
  EXPECT_NE(r.output.find("\"verified\":true"), std::string::npos);
  EXPECT_NE(r.output.find("\"repairs\":[{\"query\":1"),
            std::string::npos);
  // No human-readable chatter mixed in.
  EXPECT_EQ(r.output.find("loaded:"), std::string::npos);
  EXPECT_EQ(r.output.find("diagnosis ("), std::string::npos);
  EXPECT_EQ(std::count(r.output.begin(), r.output.end(), '{'),
            std::count(r.output.begin(), r.output.end(), '}'));
}

TEST_F(CliTest, ExportMpsWritesAnMpsModel) {
  std::string mps = dir_ + "/model.mps";
  CommandResult r = RunCli(args_ + " --export-mps " + mps);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::string content = ReadFile(mps);
  EXPECT_NE(content.find("ROWS"), std::string::npos);
  EXPECT_NE(content.find("COLUMNS"), std::string::npos);
  EXPECT_NE(content.find("ENDATA"), std::string::npos);
}

// --- qfix_serve flag parsing ------------------------------------------------
// The server tool parses numeric flags strictly: trailing garbage and
// out-of-range values must be usage errors (exit 2), never a silently
// wrong configuration. Regression for the std::atoi era, when
// `--port 80x0` bound port 80 and `--max-inflight abc` meant capacity
// clamped from 0.

#ifndef QFIX_SERVE_PATH
#error "QFIX_SERVE_PATH must be defined by the build"
#endif

CommandResult RunServe(const std::string& args) {
  std::string command = std::string(QFIX_SERVE_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  CommandResult result;
  if (pipe == nullptr) return result;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(ServeFlagsTest, PortWithTrailingGarbageIsAUsageError) {
  CommandResult r = RunServe("--port 80x0");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("--port"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(ServeFlagsTest, NonNumericMaxInflightIsAUsageError) {
  CommandResult r = RunServe("--max-inflight abc");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("--max-inflight"), std::string::npos) << r.output;
}

TEST(ServeFlagsTest, OutOfRangePortIsAUsageError) {
  CommandResult r = RunServe("--port 99999");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("--port"), std::string::npos) << r.output;
}

TEST(ServeFlagsTest, MissingFlagValueIsAUsageError) {
  CommandResult r = RunServe("--event-loop-threads");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("--event-loop-threads"), std::string::npos)
      << r.output;
}

TEST(ServeFlagsTest, NegativeTimeLimitIsAUsageError) {
  CommandResult r = RunServe("--time-limit -5");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("--time-limit"), std::string::npos) << r.output;
}

}  // namespace
}  // namespace qfix
