// Cross-module pipeline properties on random single-corruption
// scenarios: the bookkeeping every layer reports (changed queries,
// distances, diffs, reports, snapshots) must agree with every other
// layer. These invariants are what the CLI and the bench harness rely
// on without re-checking.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/strings.h"
#include "io/snapshot.h"
#include "qfix/explain.h"
#include "qfix/qfix.h"
#include "relational/executor.h"
#include "sql/diff.h"
#include "sql/parser.h"
#include "workload/synthetic.h"

namespace qfix {
namespace qfixcore {
namespace {

using relational::Database;
using relational::ExecuteLog;
using relational::LogDistance;

class PipelinePropertyTest : public testing::TestWithParam<int> {};

TEST_P(PipelinePropertyTest, AllLayersAgreeOnTheRepair) {
  workload::SyntheticSpec spec;
  spec.num_tuples = 50;
  spec.num_attrs = 5;
  spec.num_queries = 14;
  size_t corrupt = 3 + static_cast<size_t>(GetParam()) % 10;
  workload::Scenario s =
      workload::MakeSyntheticScenario(spec, {corrupt}, 9000 + GetParam());
  if (s.complaints.empty()) GTEST_SKIP() << "corruption was a no-op";

  QFixEngine engine(s.dirty_log, s.d0, s.dirty, s.complaints);
  auto repair = engine.RepairIncremental(1);
  if (!repair.ok()) GTEST_SKIP() << repair.status().ToString();

  // 1. The repair actually resolves the complaint set on replay.
  EXPECT_TRUE(repair->verified);

  // 2. changed_queries is exactly the set DiffLogs derives from the
  //    parameter values.
  auto diffs =
      sql::DiffLogs(s.dirty_log, repair->log, s.d0.schema(), 1e-7);
  ASSERT_EQ(diffs.size(), repair->changed_queries.size());
  for (size_t i = 0; i < diffs.size(); ++i) {
    EXPECT_EQ(diffs[i].index, repair->changed_queries[i]);
  }

  // 3. The reported distance is LogDistance of the returned log.
  EXPECT_NEAR(repair->distance, LogDistance(s.dirty_log, repair->log),
              1e-6);

  // 4. The report's resolution count matches the verified flag.
  std::string report = ExplainRepair(*repair, s.dirty_log, s.d0, s.dirty,
                                     s.complaints);
  std::string expected = StringPrintf("%zu of %zu complaint(s) resolved",
                                      s.complaints.size(),
                                      s.complaints.size());
  EXPECT_NE(report.find(expected), std::string::npos) << report;

  // 5. The repaired final state survives a checkpoint round-trip.
  Database fixed = ExecuteLog(repair->log, s.d0);
  auto reloaded = io::ReadSnapshot(io::WriteSnapshot(fixed));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded->NumSlots(), fixed.NumSlots());
  for (size_t i = 0; i < fixed.NumSlots(); ++i) {
    EXPECT_EQ(reloaded->slot(i).alive, fixed.slot(i).alive);
    if (!fixed.slot(i).alive) continue;
    for (size_t a = 0; a < fixed.schema().num_attrs(); ++a) {
      EXPECT_EQ(reloaded->slot(i).values[a], fixed.slot(i).values[a]);
    }
  }

  // 6. Printing the repaired log as SQL and reparsing it replays to the
  //    same final state (the administrator applies *text*, not memory).
  std::string sql_text;
  for (const auto& q : repair->log) {
    sql_text += q.ToSql(s.d0.schema()) + ";";
  }
  auto reparsed = sql::ParseLog(sql_text, s.d0.schema());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  Database replayed = ExecuteLog(*reparsed, s.d0);
  ASSERT_EQ(replayed.NumSlots(), fixed.NumSlots());
  for (size_t i = 0; i < fixed.NumSlots(); ++i) {
    ASSERT_EQ(replayed.slot(i).alive, fixed.slot(i).alive) << "slot " << i;
    if (!fixed.slot(i).alive) continue;
    for (size_t a = 0; a < fixed.schema().num_attrs(); ++a) {
      EXPECT_NEAR(replayed.slot(i).values[a], fixed.slot(i).values[a],
                  1e-9)
          << "slot " << i << " attr " << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, PipelinePropertyTest,
                         testing::Range(0, 15));

}  // namespace
}  // namespace qfixcore
}  // namespace qfix
