#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/attr_set.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/timer.h"

namespace qfix {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Infeasible("no repair resolves all complaints");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInfeasible());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.ToString(), "Infeasible: no repair resolves all complaints");
}

TEST(StatusTest, AllNamedConstructorsMapToCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Unbounded("x").IsUnbounded());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int v) {
  QFIX_RETURN_IF_ERROR(FailIfNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> DoublePositive(int v) {
  QFIX_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return 2 * x;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 21);

  Result<int> bad = ParsePositive(-3);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> good = DoublePositive(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 8);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DeterministicUnderSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndComplete) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);

  auto partial = rng.SampleWithoutReplacement(100, 7);
  std::set<size_t> distinct(partial.begin(), partial.end());
  EXPECT_EQ(distinct.size(), 7u);
  for (size_t v : partial) EXPECT_LT(v, 100u);
}

TEST(ZipfianTest, UniformWhenExponentZero) {
  ZipfianDistribution zipf(4, 0.0);
  Rng rng(11);
  std::vector<int> counts(4, 0);
  const int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials / 4.0, kTrials * 0.02);
  }
}

TEST(ZipfianTest, SkewConcentratesOnLowIndexes) {
  ZipfianDistribution zipf(10, 1.5);
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[0], 20000 / 4);
}

TEST(AttrSetTest, InsertEraseContains) {
  AttrSet s(130);
  EXPECT_TRUE(s.Empty());
  s.Insert(0);
  s.Insert(64);
  s.Insert(129);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(64));
  EXPECT_TRUE(s.Contains(129));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_EQ(s.Count(), 3u);
  s.Erase(64);
  EXPECT_FALSE(s.Contains(64));
  EXPECT_EQ(s.Count(), 2u);
}

TEST(AttrSetTest, SetOperations) {
  AttrSet a(70), b(70);
  a.Insert(1);
  a.Insert(65);
  b.Insert(65);
  b.Insert(2);
  EXPECT_TRUE(a.Intersects(b));
  AttrSet inter = a.Intersect(b);
  EXPECT_EQ(inter.Count(), 1u);
  EXPECT_TRUE(inter.Contains(65));

  AttrSet u = a;
  u.UnionWith(b);
  EXPECT_EQ(u.Count(), 3u);
  EXPECT_TRUE(u.ContainsAll(a));
  EXPECT_TRUE(u.ContainsAll(b));
  EXPECT_FALSE(a.ContainsAll(b));
}

TEST(AttrSetTest, ToVectorSorted) {
  AttrSet s(10);
  s.Insert(7);
  s.Insert(2);
  s.Insert(9);
  std::vector<size_t> v = s.ToVector();
  EXPECT_EQ(v, (std::vector<size_t>{2, 7, 9}));
}

TEST(StringsTest, FormatNumberTrimsIntegers) {
  EXPECT_EQ(FormatNumber(3.0), "3");
  EXPECT_EQ(FormatNumber(-42.0), "-42");
  EXPECT_EQ(FormatNumber(0.25), "0.25");
  EXPECT_EQ(FormatNumber(85700.0), "85700");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " AND "), "a AND b AND c");
}

TEST(StringsTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("q%d: %s", 3, "UPDATE"), "q3: UPDATE");
}

TEST(TimerTest, DeadlineSemantics) {
  EXPECT_FALSE(Deadline::Unlimited().Expired());
  Deadline d = Deadline::AfterSeconds(1e-9);
  // A nanosecond budget expires essentially immediately.
  WallTimer w;
  while (w.ElapsedSeconds() < 1e-6) {
  }
  EXPECT_TRUE(d.Expired());
  EXPECT_GT(Deadline::Unlimited().RemainingSeconds(), 1e20);
}

}  // namespace
}  // namespace qfix
