// src/service event-loop core: TimerWheel units (simulated clock — no
// sleeping), EventLoop post/wakeup handshake, and the scale/robustness
// end-to-end suite the epoll rewrite exists for:
//   * 1k concurrent keep-alive connections, two pipelined requests each
//   * 10k idle connections held on O(event-loop-threads) threads, with
//     a timed cooperative Stop()
//   * slowloris trickle reaped by the read deadline on the timer wheel
//   * a peer that stops reading its response reaped by the write
//     deadline (no thread ever blocks on the stuck send)
//   * accept() hitting EMFILE backs off and recovers (RLIMIT_NOFILE
//     regression — the old loop spun hot or died)
//   * a peer reset mid-response does not SIGPIPE the process even with
//     the default signal disposition (every send is MSG_NOSIGNAL)
// This suite runs in the TSan CI lane: the cross-thread traffic is the
// Post()/eventfd handshake between loop threads and pool workers.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "service/client.h"
#include "service/event_loop.h"
#include "service/server.h"

// Sanitizer builds run every syscall through interceptors on the CI's
// small machines; the scale tests drop their connection counts there
// (the code paths are identical, only the fd count shrinks).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define QFIX_EVENT_LOOP_TEST_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#ifndef QFIX_EVENT_LOOP_TEST_SANITIZED
#define QFIX_EVENT_LOOP_TEST_SANITIZED 1
#endif
#endif
#endif

namespace qfix {
namespace {

using service::DiagnosisServer;
using service::EventLoop;
using service::ServerOptions;
using service::TimerWheel;

// ---------------------------------------------------------------------------
// TimerWheel (simulated clock: Schedule() stamps real monotonic time,
// Advance() is handed explicit "now" values, so nothing here sleeps)

TEST(TimerWheelTest, NeverFiresBeforeItsDeadline) {
  double t0 = MonotonicSeconds();
  TimerWheel wheel(0.1, 8);
  bool fired = false;
  wheel.Schedule(0.25, [&] { fired = true; });
  wheel.Advance(t0 + 0.15);
  EXPECT_FALSE(fired);
  EXPECT_EQ(wheel.pending(), 1u);
  wheel.Advance(t0 + 0.45);
  EXPECT_TRUE(fired);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, FiresEachTimerExactlyOnce) {
  double t0 = MonotonicSeconds();
  TimerWheel wheel(0.1, 8);
  int fires = 0;
  wheel.Schedule(0.1, [&] { ++fires; });
  wheel.Schedule(0.3, [&] { ++fires; });
  wheel.Advance(t0 + 1.0);
  EXPECT_EQ(fires, 2);
  wheel.Advance(t0 + 2.0);  // nothing left to fire
  EXPECT_EQ(fires, 2);
}

TEST(TimerWheelTest, CancelForgetsAPendingTimer) {
  double t0 = MonotonicSeconds();
  TimerWheel wheel(0.1, 8);
  bool fired = false;
  uint64_t id = wheel.Schedule(0.2, [&] { fired = true; });
  EXPECT_NE(id, 0u);
  wheel.Cancel(id);
  EXPECT_EQ(wheel.pending(), 0u);
  wheel.Advance(t0 + 1.0);
  EXPECT_FALSE(fired);
  wheel.Cancel(id);         // fired/unknown ids are a no-op
  wheel.Cancel(12345);
}

TEST(TimerWheelTest, BeyondHorizonTimerTakesAnotherLap) {
  // Horizon = 0.1s * 4 slots; a 1.0s timer parks in the furthest slot
  // and is re-bucketed each lap until it is actually due.
  double t0 = MonotonicSeconds();
  TimerWheel wheel(0.1, 4);
  bool fired = false;
  wheel.Schedule(1.0, [&] { fired = true; });
  wheel.Advance(t0 + 0.5);
  EXPECT_FALSE(fired);
  wheel.Advance(t0 + 0.9);
  EXPECT_FALSE(fired);
  wheel.Advance(t0 + 1.25);
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, AdvanceReportsNextDeadlineOrIdle) {
  double t0 = MonotonicSeconds();
  TimerWheel wheel(0.1, 8);
  EXPECT_LT(wheel.Advance(t0 + 0.2), 0.0);  // idle: negative
  wheel.Schedule(0.5, [] {});
  double next = wheel.Advance(t0 + 0.25);
  EXPECT_GE(next, 0.0);
  EXPECT_LE(next, 0.1 + 1e-6);  // never further out than one tick
}

TEST(TimerWheelTest, CallbacksMayScheduleReentrantly) {
  double t0 = MonotonicSeconds();
  TimerWheel wheel(0.1, 8);
  bool second = false;
  wheel.Schedule(0.1, [&] { wheel.Schedule(0.1, [&] { second = true; }); });
  wheel.Advance(t0 + 0.15);
  EXPECT_FALSE(second);
  wheel.Advance(t0 + 1.0);
  EXPECT_TRUE(second);
}

// ---------------------------------------------------------------------------
// EventLoop: the Post()/eventfd wakeup handshake

TEST(EventLoopTest, PostedTasksRunOnTheLoopThread) {
  EventLoop loop;
  ASSERT_TRUE(loop.Init().ok());
  EXPECT_TRUE(loop.InLoopThread());  // pre-Run: setup code may register
  std::thread runner([&] { loop.Run(); });
  std::atomic<bool> ran{false};
  std::atomic<bool> on_loop_thread{false};
  loop.Post([&] {
    on_loop_thread.store(loop.InLoopThread());
    ran.store(true);
  });
  for (int i = 0; i < 2000 && !ran.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  loop.RequestStop();
  runner.join();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(on_loop_thread.load());
}

TEST(EventLoopTest, WheelTimersFireWhileTheLoopIsBlocked) {
  // With no fds registered the loop parks in epoll_wait; the wheel's
  // next-deadline hint must still bound the wait so timers fire.
  EventLoop loop;
  ASSERT_TRUE(loop.Init().ok());
  std::atomic<bool> fired{false};
  double t0 = MonotonicSeconds();
  std::thread runner([&] { loop.Run(); });
  loop.Post([&] {
    loop.timers().Schedule(0.15, [&] {
      fired.store(true);
      loop.RequestStop();
    });
  });
  runner.join();
  EXPECT_TRUE(fired.load());
  EXPECT_LT(MonotonicSeconds() - t0, 5.0);
}

// ---------------------------------------------------------------------------
// End-to-end scale and robustness (raw sockets against DiagnosisServer)

int RawConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until EOF/error, with a per-recv timeout so a server bug can't
/// hang the suite. Returns everything received.
std::string RecvUntilClosed(int fd, double timeout_seconds = 10.0) {
  timeval tv;
  tv.tv_sec = static_cast<long>(timeout_seconds);
  tv.tv_usec = static_cast<long>((timeout_seconds - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string out;
  char buf[16384];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF, reset, or timeout all end the read
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Threads of this process, from /proc/self/status. The 10k test pins
/// the tentpole claim: connection count must not leak into thread count.
int ProcessThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

TEST(EventLoopServerTest, OneThousandKeepAliveConnectionsPipelined) {
#ifdef QFIX_EVENT_LOOP_TEST_SANITIZED
  const int kConns = 300;
#else
  const int kConns = 1000;
#endif
  ServerOptions options;
  options.read_timeout_seconds = 30.0;  // the send phase is serial
  DiagnosisServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Two pipelined healthz requests in one segment; the second asks for
  // close so the server ends each connection once both are answered.
  const std::string two_requests =
      "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /v1/healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";

  std::vector<int> fds;
  fds.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0) << "connect " << i << ": " << strerror(errno);
    ASSERT_TRUE(SendAll(fd, two_requests)) << "send " << i;
    fds.push_back(fd);
  }
  // Every connection is open (and mid-conversation) at once; now drain.
  int ok_responses = 0;
  for (int fd : fds) {
    std::string response = RecvUntilClosed(fd, 30.0);
    ok_responses += CountOccurrences(response, "HTTP/1.1 200 OK");
    ::close(fd);
  }
  EXPECT_EQ(ok_responses, 2 * kConns);

  DiagnosisServer::Stats stats = server.stats();
  EXPECT_EQ(stats.connections_total, static_cast<uint64_t>(kConns));
  EXPECT_EQ(stats.requests_total, static_cast<uint64_t>(2 * kConns));
  EXPECT_EQ(stats.requests_health, static_cast<uint64_t>(2 * kConns));
  server.Stop();
  EXPECT_EQ(server.stats().open_connections, 0);
}

/// A child process that connects `conns` sockets to a port and holds
/// them open until released. The client ends live in the CHILD's fd
/// table, so the server process can hold 10k+ accepted sockets without
/// the test process paying two fds per connection (containers commonly
/// cap RLIMIT_NOFILE at 20k and refuse raises).
///
/// Protocol: parent writes the port (int) down port_wr; child connects
/// and answers with how many sockets it holds on ready_rd; closing
/// control_wr releases the child. Fork happens while the test process
/// is single-threaded (before the server starts its loops).
struct ConnectionHolder {
  pid_t pid = -1;
  int port_wr = -1;
  int ready_rd = -1;
  int control_wr = -1;
};

ConnectionHolder SpawnConnectionHolder(int conns) {
  ConnectionHolder holder;
  int port_pipe[2], ready_pipe[2], control_pipe[2];
  if (::pipe(port_pipe) != 0) return holder;
  if (::pipe(ready_pipe) != 0) return holder;
  if (::pipe(control_pipe) != 0) return holder;
  pid_t pid = ::fork();
  if (pid == 0) {
    ::close(port_pipe[1]);
    ::close(ready_pipe[0]);
    ::close(control_pipe[1]);
    int port = 0;
    if (::read(port_pipe[0], &port, sizeof(port)) != sizeof(port)) _exit(1);
    ::close(port_pipe[0]);
    int held = 0;
    for (int i = 0; i < conns; ++i) {
      if (RawConnect(port) < 0) break;  // fds deliberately kept open
      ++held;
    }
    ssize_t ignored = ::write(ready_pipe[1], &held, sizeof(held));
    (void)ignored;
    char byte;
    ignored = ::read(control_pipe[0], &byte, 1);  // blocks until release
    _exit(0);
  }
  ::close(port_pipe[0]);
  ::close(ready_pipe[1]);
  ::close(control_pipe[0]);
  holder.pid = pid;
  holder.port_wr = port_pipe[1];
  holder.ready_rd = ready_pipe[0];
  holder.control_wr = control_pipe[1];
  return holder;
}

TEST(EventLoopServerTest, TenThousandIdleConnectionsHeldOnFewThreads) {
  // The tentpole acceptance: 10k+ concurrent idle keep-alive
  // connections, thread count O(event-loop-threads), Stop() prompt.
  // Two child processes hold 5k client sockets each; every accepted
  // end lands in THIS process, which must stay within its fd budget.
  rlimit nofile;
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &nofile), 0);
  if (nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &nofile);
    ::getrlimit(RLIMIT_NOFILE, &nofile);
  }
#ifdef QFIX_EVENT_LOOP_TEST_SANITIZED
  const int kTarget = 2000;
#else
  const int kTarget = 10000;
#endif
  const int budget = static_cast<int>(nofile.rlim_cur) - 400;
  const int kConns = std::min(kTarget, budget);
  ASSERT_GE(kConns, 1000) << "fd budget too small (rlim_cur="
                          << nofile.rlim_cur << ")";

  // Fork the holders BEFORE the server spawns any thread.
  ConnectionHolder holders[2];
  holders[0] = SpawnConnectionHolder(kConns / 2);
  holders[1] = SpawnConnectionHolder(kConns - kConns / 2);
  ASSERT_GT(holders[0].pid, 0);
  ASSERT_GT(holders[1].pid, 0);

  ServerOptions options;
  options.event_loop_threads = 2;  // EPOLLEXCLUSIVE listener sharing
  options.max_connections = kConns + 16;
  options.read_timeout_seconds = 120.0;   // idle means idle
  options.idle_timeout_seconds = 120.0;
  DiagnosisServer server(options);
  ASSERT_TRUE(server.Start().ok());

  int total_held = 0;
  for (ConnectionHolder& holder : holders) {
    int port = server.port();
    ASSERT_EQ(::write(holder.port_wr, &port, sizeof(port)),
              static_cast<ssize_t>(sizeof(port)));
  }
  for (ConnectionHolder& holder : holders) {
    int held = 0;
    ASSERT_EQ(::read(holder.ready_rd, &held, sizeof(held)),
              static_cast<ssize_t>(sizeof(held)));
    total_held += held;
  }
  EXPECT_EQ(total_held, kConns);

  // The accept side is asynchronous; wait until every connection has
  // been admitted.
  double deadline = MonotonicSeconds() + 60.0;
  while (server.stats().open_connections < total_held &&
         MonotonicSeconds() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.stats().open_connections, total_held);

  // Thread count is loops + pools + gtest, never a function of the
  // connection count (the old design: kConns threads right here).
  int threads = ProcessThreadCount();
  EXPECT_GT(threads, 0);
  EXPECT_LT(threads, 64) << "thread count scaled with connections";

  // The server still answers promptly with kConns watched sockets.
  int probe = RawConnect(server.port());
  ASSERT_GE(probe, 0);
  ASSERT_TRUE(SendAll(probe,
                      "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n"
                      "Connection: close\r\n\r\n"));
  std::string response = RecvUntilClosed(probe, 10.0);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  ::close(probe);

  // Cooperative Stop() must reap all of it within the bound, not
  // linger for per-connection timeouts.
  double t0 = MonotonicSeconds();
  server.Stop();
  EXPECT_LT(MonotonicSeconds() - t0, 20.0);
  EXPECT_EQ(server.stats().open_connections, 0);

  // Release ALL children before reaping ANY: a later-forked child
  // inherits the earlier pipes' write ends, so a child only sees EOF
  // once the parent has closed every control_wr (and later children,
  // holding inherited copies, have exited).
  for (ConnectionHolder& holder : holders) {
    ::close(holder.control_wr);
    ::close(holder.port_wr);
    ::close(holder.ready_rd);
  }
  for (ConnectionHolder& holder : holders) {
    int status = 0;
    ASSERT_EQ(::waitpid(holder.pid, &status, 0), holder.pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
}

TEST(EventLoopServerTest, SlowlorisTrickleIsReapedByTheReadDeadline) {
  ServerOptions options;
  options.read_timeout_seconds = 0.5;
  DiagnosisServer server(options);
  ASSERT_TRUE(server.Start().ok());

  int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  double t0 = MonotonicSeconds();
  // One byte every 100ms: a legitimate-looking trickle that never
  // completes a request head. The first-request deadline runs from
  // accept and is NOT extended by bytes, so the wheel reaps it.
  const std::string head = "GET /v1/healthz HTTP/1.1\r\n";
  bool closed_early = false;
  for (int i = 0; i < 40; ++i) {
    std::string byte(1, head[i % head.size()]);
    if (::send(fd, byte.data(), 1, MSG_NOSIGNAL) <= 0) {
      closed_early = true;
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 100) > 0) {
      closed_early = true;  // server answered (408) and/or closed
      break;
    }
  }
  EXPECT_TRUE(closed_early);
  std::string response = RecvUntilClosed(fd, 5.0);
  double elapsed = MonotonicSeconds() - t0;
  EXPECT_LT(elapsed, 4.0) << "trickle kept the connection alive";
  EXPECT_NE(response.find("408"), std::string::npos) << response;
  ::close(fd);
  server.Stop();
}

TEST(EventLoopServerTest, NonReadingPeerIsReapedByTheWriteDeadline) {
  ServerOptions options;
  options.write_timeout_seconds = 0.5;
  options.enable_test_endpoints = true;
  DiagnosisServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const int kPayloadBytes = 8 * 1024 * 1024;  // >> any socket buffering
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;  // before connect(), so the window stays tiny
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  std::string body = "{\"bytes\":" + std::to_string(kPayloadBytes) + "}";
  std::string request =
      "POST /v1/debug/payload HTTP/1.1\r\nHost: t\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
  ASSERT_TRUE(SendAll(fd, request));

  // Do not read. The response cannot fit in kernel buffers, so the
  // server parks on EPOLLOUT and the write deadline must kill the
  // connection — without ever blocking a thread on the send.
  double t0 = MonotonicSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  std::string received = RecvUntilClosed(fd, 10.0);
  double elapsed = MonotonicSeconds() - t0;
  EXPECT_LT(received.size(), static_cast<size_t>(kPayloadBytes))
      << "the whole payload arrived: the write deadline never fired";
  EXPECT_LT(elapsed, 15.0);
  ::close(fd);
  server.Stop();
}

TEST(EventLoopServerTest, AcceptBacksOffOnEmfileAndRecovers) {
  // Regression for the accept-loop errno sweep: fd exhaustion (EMFILE;
  // same branch serves ENFILE/ENOMEM/ENOBUFS) must park the acceptor on
  // a backoff timer and retry — not spin on a hot EPOLLIN, not die.
  ServerOptions options;
  DiagnosisServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // The client socket is created BEFORE the squeeze (it needs an fd).
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);

  rlimit saved;
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  int lowest_free = ::dup(0);  // the next fd any allocation would get
  ASSERT_GE(lowest_free, 0);
  ::close(lowest_free);
  rlimit squeezed = saved;
  squeezed.rlim_cur = static_cast<rlim_t>(lowest_free);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &squeezed), 0);

  // connect() needs no new fd: the TCP handshake completes against the
  // listen backlog, the server's accept4() fails with EMFILE.
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_TRUE(SendAll(fd,
                      "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n"
                      "Connection: close\r\n\r\n"));
  // Let the acceptor hit EMFILE and enter backoff a few times over.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(server.stats().open_connections, 0);

  // Lift the squeeze: the next backoff retry must accept the waiting
  // connection and serve the request that has been sitting in its
  // socket buffer all along.
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
  std::string response = RecvUntilClosed(fd, 10.0);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos)
      << "acceptor never recovered from EMFILE: " << response;
  ::close(fd);
  server.Stop();
}

TEST(EventLoopServerTest, PeerResetMidResponseDoesNotRaiseSigpipe) {
  // With SIGPIPE at its DEFAULT disposition (terminate), a send() to a
  // reset peer without MSG_NOSIGNAL kills the whole process. The server
  // must not rely on anyone installing a handler.
  std::signal(SIGPIPE, SIG_DFL);
  ServerOptions options;
  options.enable_test_endpoints = true;
  DiagnosisServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const int kPayloadBytes = 8 * 1024 * 1024;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string body = "{\"bytes\":" + std::to_string(kPayloadBytes) + "}";
  ASSERT_TRUE(SendAll(fd,
                      "POST /v1/debug/payload HTTP/1.1\r\nHost: t\r\n"
                      "Content-Length: " + std::to_string(body.size()) +
                      "\r\n\r\n" + body));
  // Wait until the server is mid-write (our tiny window is full), then
  // RST the connection out from under it: SO_LINGER{1,0} + close.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  linger hard{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(fd);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Still alive, still serving. (If a SIGPIPE fired, we never get here:
  // the test binary is gone.)
  auto health = service::HttpGet("127.0.0.1", server.port(), "/v1/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  server.Stop();
}

TEST(EventLoopServerTest, ConcurrentSmokeHoldsManyConnectionsAtOnce) {
  // The helper the CI serve-smoke drives through `qfix_cli
  // --smoke-connections`: all sockets open simultaneously, then healthz
  // on each.
  ServerOptions options;
  DiagnosisServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto smoke = service::ConcurrentSmoke("127.0.0.1", server.port(), 200);
  ASSERT_TRUE(smoke.ok()) << smoke.status().ToString();
  EXPECT_EQ(smoke->requested, 200);
  EXPECT_EQ(smoke->connected, 200);
  EXPECT_EQ(smoke->ok, 200);
  server.Stop();
}

}  // namespace
}  // namespace qfix
