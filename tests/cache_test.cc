// src/cache: versioned zero-copy snapshots and the memoized report
// cache. Covers the acceptance surface of the caching layer:
//   * snapshot identity (unique monotone versions, shared storage),
//   * ReportCache hit/miss/LRU-eviction at the byte budget,
//   * invalidation (EraseDataset, registry re-registration),
//   * singleflight coalescing under real concurrency (TSan lane),
//   * the zero-copy contract: no implicit Database deep copy on the
//     diagnosis hot path, hits or misses (Database::CopyCount hook),
//   * BatchDiagnoser memoization: hits skip the solver and render
//     byte-identical reports.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cache/report_cache.h"
#include "cache/snapshot.h"
#include "provenance/complaint.h"
#include "qfix/batch.h"
#include "qfix/report_json.h"
#include "relational/executor.h"
#include "service/registry.h"
#include "test_support.h"

namespace qfix {
namespace {

using cache::CachedReport;
using cache::CacheKey;
using cache::MakeSnapshot;
using cache::ReportCache;
using cache::Snapshot;
using provenance::ComplaintSet;
using provenance::DiffStates;
using relational::Database;
using relational::ExecuteLog;
using relational::QueryLog;

CacheKey Key(const std::string& dataset, uint64_t version, uint64_t hash) {
  CacheKey key;
  key.dataset = dataset;
  key.version = version;
  key.request_hash = hash;
  return key;
}

CachedReport Report(const std::string& json) {
  CachedReport out;
  out.report_json = json;
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot

TEST(SnapshotTest, VersionsAreUniqueAndMonotone) {
  Snapshot a = MakeSnapshot(test::PaperLog(85700), test::TaxD0(), "a");
  Snapshot b = MakeSnapshot(test::PaperLog(85700), test::TaxD0(), "b");
  EXPECT_GT(a.version(), 0u);
  EXPECT_GT(b.version(), a.version());
  EXPECT_EQ(a.name(), "a");
}

TEST(SnapshotTest, DerivesDirtyStateByReplay) {
  Snapshot s = MakeSnapshot(test::PaperLog(85700), test::TaxD0());
  EXPECT_EQ(s->d0().NumSlots(), 4u);
  EXPECT_EQ(s->dirty.NumSlots(), 5u);  // the INSERT added a tuple
}

TEST(SnapshotTest, CopyingSharesStorage) {
  Snapshot s = MakeSnapshot(test::PaperLog(85700), test::TaxD0());
  const int64_t before = Database::CopyCount();
  Snapshot t = s;
  Snapshot u = t;
  EXPECT_EQ(Database::CopyCount(), before);
  EXPECT_EQ(&u->d0(), &s->d0());
}

// ---------------------------------------------------------------------------
// ReportCache basics

TEST(ReportCacheTest, MissLeadPublishHit) {
  ReportCache cache(1 << 20);
  CacheKey key = Key("d", 1, 42);

  ReportCache::Outcome miss = cache.FindOrLead(key);
  EXPECT_EQ(miss.value, nullptr);
  EXPECT_TRUE(miss.lead);
  cache.Publish(key, Report("{\"x\":1}"));

  ReportCache::Outcome hit = cache.FindOrLead(key);
  ASSERT_NE(hit.value, nullptr);
  EXPECT_FALSE(hit.lead);
  EXPECT_FALSE(hit.coalesced);
  EXPECT_EQ(hit.value->report_json, "{\"x\":1}");

  ReportCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ReportCacheTest, DistinctKeysAreDistinctEntries) {
  ReportCache cache(1 << 20);
  ReportCache::Outcome a = cache.FindOrLead(Key("d", 1, 1));
  ASSERT_TRUE(a.lead);
  cache.Publish(Key("d", 1, 1), Report("a"));
  // Same name+hash, different version (re-registration) is a miss.
  EXPECT_EQ(cache.FindOrLead(Key("d", 2, 1)).value, nullptr);
  cache.Abandon(Key("d", 2, 1));
  // Same version, different complaint hash is a miss.
  EXPECT_EQ(cache.FindOrLead(Key("d", 1, 2)).value, nullptr);
  cache.Abandon(Key("d", 1, 2));
  EXPECT_NE(cache.FindOrLead(Key("d", 1, 1)).value, nullptr);
}

TEST(ReportCacheTest, AbandonReleasesLeadershipWithoutAValue) {
  ReportCache cache(1 << 20);
  CacheKey key = Key("d", 1, 7);
  ASSERT_TRUE(cache.FindOrLead(key).lead);
  cache.Abandon(key);
  // The next lookup is a fresh miss with leadership again.
  ReportCache::Outcome again = cache.FindOrLead(key);
  EXPECT_EQ(again.value, nullptr);
  EXPECT_TRUE(again.lead);
  cache.Abandon(key);
}

TEST(ReportCacheTest, EvictsLeastRecentlyUsedAtByteBudget) {
  // Single shard so recency is strictly global; ~3 entries fit.
  const std::string payload(400, 'r');
  ReportCache cache(/*max_bytes=*/3 * (payload.size() + 200),
                    /*num_shards=*/1);
  for (uint64_t i = 0; i < 4; ++i) {
    CacheKey key = Key("d", 1, i);
    ASSERT_TRUE(cache.FindOrLead(key).lead);
    cache.Publish(key, Report(payload));
    // Touch key 0 after each insert so it stays hot.
    if (i > 0) cache.Peek(Key("d", 1, 0));
  }
  ReportCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 3 * (payload.size() + 200));
  // The hot key survived; the coldest (key 1) was evicted.
  EXPECT_NE(cache.Peek(Key("d", 1, 0)), nullptr);
  EXPECT_EQ(cache.Peek(Key("d", 1, 1)), nullptr);
}

TEST(ReportCacheTest, EraseDatasetDropsAllVersions) {
  ReportCache cache(1 << 20);
  for (uint64_t v = 1; v <= 3; ++v) {
    CacheKey key = Key("gone", v, 1);
    ASSERT_TRUE(cache.FindOrLead(key).lead);
    cache.Publish(key, Report("x"));
  }
  CacheKey kept = Key("kept", 1, 1);
  ASSERT_TRUE(cache.FindOrLead(kept).lead);
  cache.Publish(kept, Report("y"));

  cache.EraseDataset("gone");
  for (uint64_t v = 1; v <= 3; ++v) {
    EXPECT_EQ(cache.Peek(Key("gone", v, 1)), nullptr) << v;
  }
  EXPECT_NE(cache.Peek(kept), nullptr);
  ReportCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 3u);
  EXPECT_EQ(stats.entries, 1u);
}

// ---------------------------------------------------------------------------
// Singleflight

TEST(ReportCacheTest, ConcurrentIdenticalMissesCoalesceIntoOneSolve) {
  ReportCache cache(1 << 20);
  CacheKey key = Key("d", 1, 99);
  constexpr int kThreads = 8;
  std::atomic<int> leaders{0};
  std::atomic<int> hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &key, &leaders, &hits] {
      ReportCache::Outcome out = cache.FindOrLead(key);
      if (out.lead) {
        // The "solve": slow enough that the other threads pile up.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        leaders.fetch_add(1);
        cache.Publish(key, Report("once"));
      } else if (out.value != nullptr) {
        EXPECT_EQ(out.value->report_json, "once");
        hits.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(hits.load(), kThreads - 1);
  EXPECT_GE(cache.stats().coalesced, 1u);
}

TEST(ReportCacheTest, CancelledWaitDegradesToUncachedMiss) {
  ReportCache cache(1 << 20);
  CacheKey key = Key("d", 1, 5);
  ASSERT_TRUE(cache.FindOrLead(key).lead);  // leader never settles

  exec::CancellationSource cancel;
  cancel.Cancel();
  ReportCache::Outcome out = cache.FindOrLead(key, cancel.token());
  EXPECT_EQ(out.value, nullptr);
  EXPECT_FALSE(out.lead);  // caller computes without publishing
  cache.Abandon(key);
}

// ---------------------------------------------------------------------------
// Request hashing

TEST(CacheHashTest, EqualComplaintSetsHashEqual) {
  Database d0 = test::TaxD0();
  Database dirty = ExecuteLog(test::PaperLog(85700), d0);
  Database truth = ExecuteLog(test::PaperLog(87500), d0);
  ComplaintSet a = DiffStates(dirty, truth);
  ComplaintSet b = DiffStates(dirty, truth);
  EXPECT_EQ(cache::HashComplaints(a), cache::HashComplaints(b));

  // Insertion order does not matter: ComplaintSet canonicalizes by tid.
  ComplaintSet fwd, rev;
  for (const auto& c : a.complaints()) fwd.Add(c);
  for (auto it = a.complaints().rbegin(); it != a.complaints().rend(); ++it) {
    rev.Add(*it);
  }
  EXPECT_EQ(cache::HashComplaints(fwd), cache::HashComplaints(rev));
}

TEST(CacheHashTest, DifferentComplaintsOrOptionsHashDifferent) {
  Database d0 = test::TaxD0();
  Database dirty = ExecuteLog(test::PaperLog(85700), d0);
  Database truth = ExecuteLog(test::PaperLog(87500), d0);
  ComplaintSet full = DiffStates(dirty, truth);
  ComplaintSet partial;
  partial.Add(full.complaints()[0]);
  EXPECT_NE(cache::HashComplaints(full), cache::HashComplaints(partial));

  Snapshot snap = MakeSnapshot(test::PaperLog(85700), test::TaxD0(), "t");
  qfixcore::BatchItem a = qfixcore::MakeBatchItem(snap, full);
  qfixcore::BatchItem b = qfixcore::MakeBatchItem(snap, full);
  b.k = 2;
  qfixcore::BatchItem c = qfixcore::MakeBatchItem(snap, full);
  c.options.refinement = false;
  EXPECT_NE(qfixcore::ItemCacheKey(a).request_hash,
            qfixcore::ItemCacheKey(b).request_hash);
  EXPECT_NE(qfixcore::ItemCacheKey(a).request_hash,
            qfixcore::ItemCacheKey(c).request_hash);
  EXPECT_EQ(qfixcore::ItemCacheKey(a).request_hash,
            qfixcore::ItemCacheKey(qfixcore::MakeBatchItem(snap, full))
                .request_hash);
}

// ---------------------------------------------------------------------------
// Registry integration

TEST(RegistryCacheTest, ReRegistrationMintsNewVersionAndInvalidates) {
  constexpr const char* kCsv =
      "income,owed,pay\n9500,950,8550\n90000,22500,67500\n";
  constexpr const char* kSql = "UPDATE Taxes SET pay = income - owed;";

  ReportCache cache(1 << 20);
  service::DatasetRegistry registry;
  registry.AttachReportCache(&cache);

  auto first = registry.Register("d", kCsv, "Taxes", kSql);
  ASSERT_TRUE(first.ok());
  CacheKey key = Key("d", (*first)->version, 1);
  ASSERT_TRUE(cache.FindOrLead(key).lead);
  cache.Publish(key, Report("stale"));

  auto second = registry.Register("d", kCsv, "Taxes", kSql);
  ASSERT_TRUE(second.ok());
  EXPECT_GT((*second)->version, (*first)->version);
  // Replacement erased the old name's entries eagerly.
  EXPECT_EQ(cache.Peek(key), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);

  // Erase drops the name and its entries.
  CacheKey key2 = Key("d", (*second)->version, 1);
  ASSERT_TRUE(cache.FindOrLead(key2).lead);
  cache.Publish(key2, Report("x"));
  EXPECT_TRUE(registry.Erase("d"));
  EXPECT_EQ(registry.Get("d"), nullptr);
  EXPECT_EQ(cache.Peek(key2), nullptr);
  EXPECT_FALSE(registry.Erase("d"));
}

// ---------------------------------------------------------------------------
// Zero-copy + memoized BatchDiagnoser

qfixcore::BatchItem PaperItem(const Snapshot& snap) {
  Database truth = ExecuteLog(test::PaperLog(87500), snap->d0());
  return qfixcore::MakeBatchItem(snap, DiffStates(snap->dirty, truth));
}

TEST(BatchCacheTest, HotPathPerformsZeroDatabaseDeepCopies) {
  Snapshot snap = MakeSnapshot(test::PaperLog(85700), test::TaxD0(), "taxes");
  qfixcore::BatchItem item = PaperItem(snap);
  ReportCache cache(1 << 20);
  qfixcore::BatchOptions options;
  options.jobs = 0;
  options.report_cache = &cache;
  qfixcore::BatchDiagnoser diagnoser(options);

  // Miss path: snapshot in, solve, publish — no implicit Database copy
  // anywhere (replay working states use the explicit Clone()).
  const int64_t before_miss = Database::CopyCount();
  auto cold = diagnoser.Run({item});
  EXPECT_EQ(Database::CopyCount(), before_miss);
  ASSERT_EQ(cold.size(), 1u);
  ASSERT_TRUE(cold[0].ok()) << cold[0].status().ToString();
  EXPECT_FALSE(cold[0]->from_cache);

  // Hit path: the solver never runs; still zero copies.
  const int64_t before_hit = Database::CopyCount();
  auto warm = diagnoser.Run({item});
  EXPECT_EQ(Database::CopyCount(), before_hit);
  ASSERT_EQ(warm.size(), 1u);
  ASSERT_TRUE(warm[0].ok());
  EXPECT_TRUE(warm[0]->from_cache);
}

TEST(BatchCacheTest, CacheHitSkipsSolverAndRendersByteIdenticalReport) {
  Snapshot snap = MakeSnapshot(test::PaperLog(85700), test::TaxD0(), "taxes");
  qfixcore::BatchItem item = PaperItem(snap);
  ReportCache cache(1 << 20);
  qfixcore::BatchOptions options;
  options.jobs = 0;
  options.report_cache = &cache;
  qfixcore::BatchDiagnoser diagnoser(options);

  auto cold = diagnoser.Run({item});
  ASSERT_TRUE(cold[0].ok());
  auto warm = diagnoser.Run({item});
  ASSERT_TRUE(warm[0].ok());
  EXPECT_TRUE(warm[0]->from_cache);
  // The hit skipped the solver: stats are the original solve's, and the
  // cache saw exactly one insert for two runs.
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(warm[0]->stats.solver_nodes, cold[0]->stats.solver_nodes);

  // Byte-identical rendering, including timing stats (they are the
  // original solve's, not re-measured).
  std::string cold_json = qfixcore::RepairToJson(
      *cold[0], snap->log, snap->d0(), snap->dirty, item.complaints);
  std::string warm_json = qfixcore::RepairToJson(
      *warm[0], snap->log, snap->d0(), snap->dirty, item.complaints);
  EXPECT_EQ(cold_json, warm_json);
  // And both match the published report document.
  auto entry = cache.Peek(qfixcore::ItemCacheKey(item));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->report_json, cold_json);
}

TEST(BatchCacheTest, ConcurrentBatchesShareOneSolve) {
  Snapshot snap = MakeSnapshot(test::PaperLog(85700), test::TaxD0(), "taxes");
  qfixcore::BatchItem item = PaperItem(snap);
  ReportCache cache(1 << 20);

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<Result<qfixcore::Repair>> results(
      kThreads, Result<qfixcore::Repair>(Status::Internal("unset")));
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &item, &results, t] {
      qfixcore::BatchOptions options;
      options.jobs = 0;
      options.report_cache = &cache;
      auto out = qfixcore::BatchDiagnoser(options).Run({item});
      results[t] = std::move(out[0]);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(results[t].ok()) << results[t].status().ToString();
    EXPECT_NEAR(results[t]->distance, results[0]->distance, 1e-9);
  }
  // Exactly one thread solved; everyone else hit (possibly coalesced).
  ReportCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
}

}  // namespace
}  // namespace qfix
