// Cross-module integration tests: mixed workloads, liveness chains,
// benchmark scenarios, and optimization-equivalence checks.
#include <gtest/gtest.h>

#include <cmath>

#include "harness/metrics.h"
#include "qfix/qfix.h"
#include "relational/executor.h"
#include "workload/synthetic.h"
#include "workload/tatp_like.h"
#include "workload/tpcc_like.h"

namespace qfix {
namespace {

using provenance::ComplaintSet;
using provenance::DiffStates;
using qfixcore::QFixEngine;
using qfixcore::QFixOptions;
using relational::CmpOp;
using relational::Database;
using relational::ExecuteLog;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::Schema;

// A corrupted DELETE wrongly kills tuples; a subsequent UPDATE would
// have modified them. The complaint asks for the tuple to exist with its
// post-UPDATE value, so the encoder must gate the UPDATE on the repaired
// liveness (the alive-chain encoding replacing the paper's M+ sentinel).
TEST(LivenessChain, DeleteThenUpdateRepair) {
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  for (int i = 0; i < 10; ++i) d0.AddTuple({double(i * 10), 5});

  auto make_log = [&](double del_threshold) {
    QueryLog log;
    log.push_back(Query::Delete(
        "T",
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, del_threshold})));
    // Everyone surviving gets a1 += 100.
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::AttrScaled(1, 1.0, 100.0)}},
        Predicate::True()));
    return log;
  };
  QueryLog dirty_log = make_log(40);  // killed 40..90
  QueryLog clean_log = make_log(70);  // should only kill 70..90
  Database dirty = ExecuteLog(dirty_log, d0);
  Database truth = ExecuteLog(clean_log, d0);
  ComplaintSet complaints = DiffStates(dirty, truth);
  // Tuples 40, 50, 60 should be alive with a1 = 105.
  ASSERT_EQ(complaints.size(), 3u);
  ASSERT_TRUE(complaints.complaints()[0].target_alive);
  EXPECT_DOUBLE_EQ(complaints.complaints()[0].target_values[1], 105);

  QFixEngine engine(dirty_log, d0, dirty, complaints);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  EXPECT_EQ(repair->changed_queries, (std::vector<size_t>{0}));
  Database fixed = ExecuteLog(repair->log, d0);
  EXPECT_TRUE(fixed.slot(4).alive);
  EXPECT_DOUBLE_EQ(fixed.slot(4).values[1], 105);
  EXPECT_FALSE(fixed.slot(7).alive);
}

// The mirror case: a corrupted DELETE failed to kill tuples it should
// have (complaints with target_alive = false).
TEST(LivenessChain, RepairRestoresMissingDeletions) {
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  for (int i = 0; i < 10; ++i) d0.AddTuple({double(i * 10), 5});

  auto make_log = [&](double del_threshold) {
    QueryLog log;
    log.push_back(Query::Delete(
        "T",
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, del_threshold})));
    return log;
  };
  QueryLog dirty_log = make_log(80);  // kept 60, 70 wrongly
  QueryLog clean_log = make_log(60);
  Database dirty = ExecuteLog(dirty_log, d0);
  Database truth = ExecuteLog(clean_log, d0);
  ComplaintSet complaints = DiffStates(dirty, truth);
  ASSERT_EQ(complaints.size(), 2u);
  EXPECT_FALSE(complaints.complaints()[0].target_alive);

  QFixEngine engine(dirty_log, d0, dirty, complaints);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  Database fixed = ExecuteLog(repair->log, d0);
  EXPECT_FALSE(fixed.slot(6).alive);
  EXPECT_FALSE(fixed.slot(7).alive);
  EXPECT_TRUE(fixed.slot(5).alive);
}

// Mixed-type log with the corruption at every position (parameterized):
// the pipeline must identify and repair whichever query was corrupted.
class MixedLogSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MixedLogSweep, RepairsCorruptionAtAnyPosition) {
  const size_t corrupt_at = GetParam();
  Schema schema = Schema::WithDefaultNames(3);
  Database d0(schema, "T");
  for (int i = 0; i < 15; ++i) {
    d0.AddTuple({double(i * 4), double(i % 7), 50});
  }

  auto make_log = [&](bool corrupted) {
    QueryLog log;
    double c0 = corrupted && corrupt_at == 0 ? 16 : 32;
    log.push_back(Query::Update(
        "T", {{2, LinearExpr::Constant(9)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, c0})));
    double v1 = corrupted && corrupt_at == 1 ? 3 : 33;
    log.push_back(Query::Insert("T", {60, v1, 9}));
    double c2 = corrupted && corrupt_at == 2 ? 1 : 5;
    log.push_back(Query::Delete(
        "T", Predicate::Atom({LinearExpr::Attr(1), CmpOp::kEq, c2})));
    double c3 = corrupted && corrupt_at == 3 ? 44 : 14;
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::AttrScaled(1, 1.0, c3)}},
        Predicate::Atom({LinearExpr::Attr(2), CmpOp::kEq, 9})));
    return log;
  };
  QueryLog dirty_log = make_log(true);
  QueryLog clean_log = make_log(false);
  Database dirty = ExecuteLog(dirty_log, d0);
  Database truth = ExecuteLog(clean_log, d0);
  ComplaintSet complaints = DiffStates(dirty, truth);
  ASSERT_FALSE(complaints.empty()) << "corruption was a no-op";

  QFixEngine engine(dirty_log, d0, dirty, complaints);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << "corrupt_at=" << corrupt_at << ": "
                           << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
  auto acc = harness::EvaluateRepair(repair->log, d0, dirty, truth);
  EXPECT_DOUBLE_EQ(acc.recall, 1.0) << "corrupt_at=" << corrupt_at;
}

INSTANTIATE_TEST_SUITE_P(AllPositions, MixedLogSweep,
                         ::testing::Values(0, 1, 2, 3));

TEST(BenchmarkScenarios, TpccRepairIsFastAndExact) {
  workload::TpccSpec spec;
  spec.initial_orders = 1000;
  spec.num_queries = 400;
  workload::Scenario s = workload::MakeTpccScenario(spec, 37, 5);
  ASSERT_FALSE(s.complaints.empty());
  QFixEngine engine(s.dirty_log, s.d0, s.dirty, s.complaints);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  auto acc = harness::EvaluateRepair(repair->log, s.d0, s.dirty, s.truth);
  EXPECT_DOUBLE_EQ(acc.f1, 1.0);
  EXPECT_LT(repair->stats.total_seconds, 30.0);
}

TEST(BenchmarkScenarios, TatpRepairIsFastAndExact) {
  workload::TatpSpec spec;
  spec.subscribers = 1000;
  spec.num_queries = 400;
  workload::Scenario s = workload::MakeTatpScenario(spec, 21, 6);
  ASSERT_FALSE(s.complaints.empty());
  QFixEngine engine(s.dirty_log, s.d0, s.dirty, s.complaints);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  auto acc = harness::EvaluateRepair(repair->log, s.d0, s.dirty, s.truth);
  EXPECT_DOUBLE_EQ(acc.f1, 1.0);
}

// Optimized and unoptimized paths agree on the repaired final state for
// small synthetic scenarios (the paper's claim that slicing does not
// compromise accuracy, §5).
class SlicingEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SlicingEquivalence, SlicedAndUnslicedResolveIdentically) {
  workload::SyntheticSpec spec;
  spec.num_tuples = 30;
  spec.num_attrs = 6;
  spec.value_domain = 40;
  spec.range_size = 8;
  spec.num_queries = 8;
  workload::Scenario s = workload::MakeSyntheticScenario(
      spec, {static_cast<size_t>(GetParam() % 8)}, 5000 + GetParam());
  if (s.complaints.empty()) {
    GTEST_SKIP() << "corruption was a no-op";
  }

  QFixOptions sliced;  // defaults: everything on
  QFixOptions unsliced;
  unsliced.tuple_slicing = false;
  unsliced.query_slicing = false;
  unsliced.attribute_slicing = false;
  unsliced.time_limit_seconds = 60.0;

  QFixEngine sliced_engine(s.dirty_log, s.d0, s.dirty, s.complaints,
                           sliced);
  QFixEngine unsliced_engine(s.dirty_log, s.d0, s.dirty, s.complaints,
                             unsliced);
  auto a = sliced_engine.RepairIncremental(1);
  auto b = unsliced_engine.RepairIncremental(1);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(a->verified);
  EXPECT_TRUE(b->verified);
  // Both must fully resolve the complaint set; the repairs themselves
  // may differ (ties in the distance objective).
  auto acc_a = harness::EvaluateRepair(a->log, s.d0, s.dirty, s.truth);
  auto acc_b = harness::EvaluateRepair(b->log, s.d0, s.dirty, s.truth);
  EXPECT_DOUBLE_EQ(acc_a.recall, 1.0);
  EXPECT_DOUBLE_EQ(acc_b.recall, 1.0);
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, SlicingEquivalence,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace qfix
