#include <gtest/gtest.h>

#include "io/csv.h"
#include "qfix/qfix.h"
#include "relational/executor.h"

namespace qfix {
namespace io {
namespace {

using provenance::ComplaintSet;
using relational::Database;
using relational::Schema;

constexpr const char* kTaxCsv =
    "income,owed,pay\n"
    "9500,950,8550\n"
    "90000,22500,67500\n";

TEST(CsvTest, ParsesDatabase) {
  auto db = DatabaseFromCsv(kTaxCsv, "Taxes");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->table_name(), "Taxes");
  EXPECT_EQ(db->schema().num_attrs(), 3u);
  EXPECT_EQ(db->schema().attr_name(1), "owed");
  ASSERT_EQ(db->NumSlots(), 2u);
  EXPECT_DOUBLE_EQ(db->slot(1).values[0], 90000);
}

TEST(CsvTest, RoundTripsDatabase) {
  auto db = DatabaseFromCsv(kTaxCsv, "Taxes");
  ASSERT_TRUE(db.ok());
  std::string csv = DatabaseToCsv(*db);
  auto again = DatabaseFromCsv(csv, "Taxes");
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->NumSlots(), db->NumSlots());
  for (size_t i = 0; i < db->NumSlots(); ++i) {
    EXPECT_EQ(again->slot(i).values, db->slot(i).values);
  }
}

TEST(CsvTest, HandlesWhitespaceAndBlankLines) {
  auto db = DatabaseFromCsv("a, b\n 1 , 2\n\n3,4\n", "T");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->NumSlots(), 2u);
  EXPECT_DOUBLE_EQ(db->slot(0).values[1], 2);
}

TEST(CsvTest, RejectsMalformedDatabases) {
  EXPECT_FALSE(DatabaseFromCsv("", "T").ok());
  EXPECT_FALSE(DatabaseFromCsv("a,b\n1\n", "T").ok());          // arity
  EXPECT_FALSE(DatabaseFromCsv("a,b\n1,xyz\n", "T").ok());      // number
  EXPECT_FALSE(DatabaseFromCsv("a,b\n1,2,3\n", "T").ok());      // arity
}

TEST(CsvTest, ParsesComplaints) {
  Schema schema({"income", "owed", "pay"});
  auto c = ComplaintsFromCsv(
      "tid,alive,income,owed,pay\n"
      "2,1,86000,21500,64500\n"
      "5,0,0,0,0\n",
      schema);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_EQ(c->size(), 2u);
  EXPECT_EQ(c->complaints()[0].tid, 2);
  EXPECT_TRUE(c->complaints()[0].target_alive);
  EXPECT_DOUBLE_EQ(c->complaints()[0].target_values[1], 21500);
  EXPECT_FALSE(c->complaints()[1].target_alive);
}

TEST(CsvTest, ComplaintsRoundTrip) {
  Schema schema({"a", "b"});
  ComplaintSet original;
  original.Add({3, true, {1, 2}});
  original.Add({7, false, {}});
  std::string csv = ComplaintsToCsv(original, schema);
  auto again = ComplaintsFromCsv(csv, schema);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again->size(), 2u);
  EXPECT_EQ(again->complaints()[0].target_values,
            (std::vector<double>{1, 2}));
  EXPECT_FALSE(again->complaints()[1].target_alive);
}

TEST(CsvTest, ComplaintsHeaderMustMatchSchema) {
  Schema schema({"a", "b"});
  EXPECT_FALSE(ComplaintsFromCsv("tid,alive,a\n", schema).ok());
  EXPECT_FALSE(ComplaintsFromCsv("tid,alive,x,y\n", schema).ok());
  EXPECT_FALSE(ComplaintsFromCsv("alive,tid,a,b\n", schema).ok());
}

// ---------------------------------------------------------------------
// Additional CSV edge cases.
// ---------------------------------------------------------------------

TEST(CsvTest, NegativeAndFractionalValuesRoundTrip) {
  Database db(Schema({"a", "b"}), "T");
  db.AddTuple({-1.5, 0.000001});
  db.AddTuple({1e15, -0.25});
  auto back = DatabaseFromCsv(DatabaseToCsv(db), "T");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumSlots(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t a = 0; a < 2; ++a) {
      EXPECT_EQ(back->slot(i).values[a], db.slot(i).values[a])
          << i << "," << a;
    }
  }
}

TEST(CsvTest, DeadSlotsAreSkippedOnExport) {
  Database db(Schema({"a"}), "T");
  db.AddTuple({1});
  db.AddTuple({2});
  db.slot(0).alive = false;
  std::string csv = DatabaseToCsv(db);
  auto back = DatabaseFromCsv(csv, "T");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumSlots(), 1u);  // only the live tuple survives CSV
  EXPECT_DOUBLE_EQ(back->slot(0).values[0], 2.0);
}

TEST(CsvTest, RejectsArityMismatches) {
  EXPECT_FALSE(DatabaseFromCsv("a,b\n1\n", "T").ok());
  EXPECT_FALSE(DatabaseFromCsv("a,b\n1,2,3\n", "T").ok());
  EXPECT_FALSE(DatabaseFromCsv("a,b\n1,x\n", "T").ok());
}

TEST(CsvTest, ComplaintLivenessVariantsRoundTrip) {
  Schema schema({"a", "b"});
  ComplaintSet c;
  c.Add({0, true, {1, 2}});       // value fix
  c.Add({1, false, {}});          // t -> bottom (should not exist)
  std::string csv = ComplaintsToCsv(c, schema);
  auto back = ComplaintsFromCsv(csv, schema);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_TRUE(back->Find(0)->target_alive);
  EXPECT_FALSE(back->Find(1)->target_alive);
}

TEST(CsvTest, RejectsMalformedComplaints) {
  Schema schema({"a", "b"});
  // Non-numeric tid.
  EXPECT_FALSE(ComplaintsFromCsv("tid,alive,a,b\nx,1,1,2\n", schema).ok());
  // Missing values.
  EXPECT_FALSE(ComplaintsFromCsv("tid,alive,a,b\n0,1,1\n", schema).ok());
  // Wrong header.
  EXPECT_FALSE(ComplaintsFromCsv("id,alive,a,b\n0,1,1,2\n", schema).ok());
}

}  // namespace
}  // namespace io
}  // namespace qfix
