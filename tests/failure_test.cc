// Failure-injection tests: the library must degrade with clear Status
// codes (or loud QFIX_CHECK aborts for programming errors), never with
// silent corruption.
#include <gtest/gtest.h>

#include "milp/solver.h"
#include "provenance/complaint.h"
#include "qfix/encoder.h"
#include "qfix/qfix.h"
#include "relational/executor.h"
#include "workload/synthetic.h"

namespace qfix {
namespace {

using provenance::ComplaintSet;
using qfixcore::EncodeRequest;
using qfixcore::QFixEngine;
using qfixcore::QFixOptions;
using relational::CmpOp;
using relational::Database;
using relational::ExecuteLog;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::Schema;

TEST(FailureInjection, TinyTimeLimitReturnsResourceExhausted) {
  workload::SyntheticSpec spec;
  spec.num_tuples = 200;
  spec.num_queries = 40;
  spec.range_size = 20;
  workload::Scenario s = workload::MakeSyntheticScenario(spec, {5}, 1);
  ASSERT_FALSE(s.complaints.empty());
  QFixOptions opt;
  opt.time_limit_seconds = 1e-9;
  QFixEngine engine(s.dirty_log, s.d0, s.dirty, s.complaints, opt);
  auto repair = engine.RepairIncremental(1);
  // Either nothing completed in time (error) or a fallback made it.
  if (!repair.ok()) {
    EXPECT_TRUE(repair.status().IsResourceExhausted())
        << repair.status().ToString();
  }
}

TEST(FailureInjection, SolverSizeBudgetSurfacesAsResourceExhausted) {
  workload::SyntheticSpec spec;
  spec.num_tuples = 400;
  spec.num_queries = 60;
  spec.range_size = 40;  // huge complaint sets
  workload::Scenario s = workload::MakeSyntheticScenario(spec, {0}, 2);
  ASSERT_GT(s.complaints.size(), 50u);
  QFixOptions opt;
  opt.milp.lp.max_rows = 50;  // absurdly small budget
  QFixEngine engine(s.dirty_log, s.d0, s.dirty, s.complaints, opt);
  auto repair = engine.RepairSingle(0);
  ASSERT_FALSE(repair.ok());
  EXPECT_TRUE(repair.status().IsResourceExhausted());
}

TEST(FailureInjection, ComplaintOnUnreachableTupleIsInfeasible) {
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  d0.AddTuple({1, 1});
  QueryLog log;
  log.push_back(Query::Update("T", {{1, LinearExpr::Constant(7)}},
                              Predicate::True()));
  Database dirty = ExecuteLog(log, d0);
  ComplaintSet complaints;
  complaints.Add({0, true, {999, 7}});  // a0 is never written by the log
  QFixEngine engine(log, d0, dirty, complaints);
  EXPECT_TRUE(engine.RepairIncremental(1).status().IsInfeasible());
  EXPECT_TRUE(engine.RepairBasic().status().IsInfeasible());
}

TEST(FailureInjection, ContradictoryComplaintsAreInfeasible) {
  // Two complaints demand different SET constants from the same query
  // for tuples with identical provenance.
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  d0.AddTuple({1, 0});
  d0.AddTuple({2, 0});
  QueryLog log;
  log.push_back(Query::Update("T", {{1, LinearExpr::Constant(5)}},
                              Predicate::True()));
  Database dirty = ExecuteLog(log, d0);
  ComplaintSet complaints;
  complaints.Add({0, true, {1, 10}});
  complaints.Add({1, true, {2, 20}});  // same constant cannot be both
  QFixEngine engine(log, d0, dirty, complaints);
  auto repair = engine.RepairIncremental(1);
  ASSERT_FALSE(repair.ok());
  EXPECT_TRUE(repair.status().IsInfeasible());
}

TEST(FailureInjection, EncoderRejectsOutOfRangeSlots) {
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  d0.AddTuple({1, 1});
  QueryLog log;
  log.push_back(Query::Update("T", {{1, LinearExpr::Constant(7)}},
                              Predicate::True()));
  Database dirty = ExecuteLog(log, d0);
  ComplaintSet none;
  EncodeRequest req;
  req.log = &log;
  req.d0 = &d0;
  req.dirty_dn = &dirty;
  req.complaints = &none;
  req.parameterized = {true};
  req.encoded = {true};
  req.tuple_slots = {7};  // no such slot
  EXPECT_TRUE(qfixcore::Encode(req).status().IsInvalidArgument());
}

TEST(FailureInjection, EncoderRejectsNullInputs) {
  EncodeRequest req;  // all nulls
  EXPECT_TRUE(qfixcore::Encode(req).status().IsInvalidArgument());
}

TEST(FailureInjection, MilpValidateCatchesNonFiniteObjective) {
  milp::Model m;
  milp::VarId v = m.AddContinuous(0, 1, "x");
  m.AddObjectiveTerm(v, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(m.Validate().IsInvalidArgument());
}

TEST(FailureInjectionDeathTest, ChecksAbortOnApiMisuse) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  // Inserting a tuple with the wrong arity is a programming error.
  Schema schema = Schema::WithDefaultNames(2);
  Database db(schema, "T");
  EXPECT_DEATH(db.AddTuple({1.0}), "QFIX_CHECK");
  // Out-of-range attribute access in a linear expression.
  LinearExpr e = LinearExpr::Attr(5);
  EXPECT_DEATH(e.Eval({1.0, 2.0}), "QFIX_CHECK");
}

}  // namespace
}  // namespace qfix
