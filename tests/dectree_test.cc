#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "dectree/decision_tree.h"
#include "dectree/dectree_repair.h"
#include "dectree/linear_system.h"
#include "relational/executor.h"

namespace qfix {
namespace dectree {
namespace {

using relational::CmpOp;
using relational::Database;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::Schema;

TEST(LinearSystemTest, SolvesSquareSystems) {
  // x + y = 10, x - y = 2.
  auto x = SolveSquare({{1, 1}, {1, -1}}, {10, 2});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 6.0, 1e-9);
  EXPECT_NEAR((*x)[1], 4.0, 1e-9);
}

TEST(LinearSystemTest, PivotingHandlesZeroDiagonal) {
  // First pivot is zero; partial pivoting must swap rows.
  auto x = SolveSquare({{0, 2}, {3, 1}}, {4, 5});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-9);
  EXPECT_NEAR((*x)[1], 2.0, 1e-9);
}

TEST(LinearSystemTest, SingularIsInfeasible) {
  EXPECT_TRUE(SolveSquare({{1, 1}, {2, 2}}, {3, 6}).status().IsInfeasible());
}

TEST(LinearSystemTest, LeastSquaresRecoverLine) {
  // Fit y = 3x + 2 from noisy-free samples (overdetermined).
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  for (int i = 0; i < 10; ++i) {
    a.push_back({double(i), 1.0});
    b.push_back(3.0 * i + 2.0);
  }
  auto x = SolveLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-8);
  EXPECT_NEAR((*x)[1], 2.0, 1e-8);
}

TEST(DecisionTreeTest, LearnsThresholdSplit) {
  std::vector<Example> examples;
  for (int i = 0; i < 40; ++i) {
    examples.push_back({{double(i)}, i >= 25});
  }
  DecisionTree tree = DecisionTree::Train(examples);
  EXPECT_FALSE(tree.Predict({10}));
  EXPECT_FALSE(tree.Predict({24}));
  EXPECT_TRUE(tree.Predict({25}));
  EXPECT_TRUE(tree.Predict({39}));
}

TEST(DecisionTreeTest, LearnsIntervalAsTwoSplits) {
  std::vector<Example> examples;
  for (int i = 0; i < 60; ++i) {
    examples.push_back({{double(i)}, i >= 20 && i <= 40});
  }
  DecisionTree tree = DecisionTree::Train(examples);
  EXPECT_FALSE(tree.Predict({10}));
  EXPECT_TRUE(tree.Predict({30}));
  EXPECT_FALSE(tree.Predict({50}));
}

TEST(DecisionTreeTest, PredicateExtractionMatchesPredictions) {
  Rng rng(99);
  std::vector<Example> examples;
  for (int i = 0; i < 120; ++i) {
    double x = double(rng.UniformInt(0, 50));
    double y = double(rng.UniformInt(0, 50));
    examples.push_back({{x, y}, x >= 15 && y <= 30});
  }
  DecisionTree tree = DecisionTree::Train(examples);
  Predicate pred = tree.ToPredicate(2);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> f{double(rng.UniformInt(0, 50)),
                          double(rng.UniformInt(0, 50))};
    EXPECT_EQ(tree.Predict(f), pred.Eval(f)) << f[0] << "," << f[1];
  }
}

TEST(DecisionTreeTest, AllNegativeGivesNeverMatchingPredicate) {
  std::vector<Example> examples;
  for (int i = 0; i < 10; ++i) examples.push_back({{double(i)}, false});
  DecisionTree tree = DecisionTree::Train(examples);
  Predicate pred = tree.ToPredicate(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(pred.Eval({double(i)}));
  }
}

TEST(DecTreeRepairTest, RepairsRangePredicateAndSetConstant) {
  // Dirty: SET a1 = 9 WHERE a0 BETWEEN 10 AND 19 (should have been
  // SET a1 = 5 WHERE a0 BETWEEN 30 AND 49).
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  for (int i = 0; i < 100; ++i) d0.AddTuple({double(i), 0});

  Query dirty_q = Query::Update("T", {{1, LinearExpr::Constant(9)}},
                                Predicate::Between(0, 10, 19));
  Query clean_q = Query::Update("T", {{1, LinearExpr::Constant(5)}},
                                Predicate::Between(0, 30, 49));
  Database truth = d0;
  relational::ApplyQuery(clean_q, truth);

  auto result = RepairWithDecTree(dirty_q, d0, truth);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The repaired query must reproduce the truth exactly: with a dense
  // integer grid the tree boundary lands between 29/30 and 49/50.
  Database repaired_state = d0;
  relational::ApplyQuery(result->repaired, repaired_state);
  for (size_t i = 0; i < repaired_state.NumSlots(); ++i) {
    EXPECT_DOUBLE_EQ(repaired_state.slot(i).values[1],
                     truth.slot(i).values[1])
        << "tuple " << i;
  }
}

TEST(DecTreeRepairTest, RefitsRelativeSetExpression) {
  // SET a1 = a1 + 3 (wrongly + 11) over a fixed predicate.
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    d0.AddTuple({double(i), double(rng.UniformInt(0, 40))});
  }
  Query dirty_q = Query::Update(
      "T", {{1, LinearExpr::AttrScaled(1, 1.0, 11.0)}},
      Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 25}));
  Query clean_q = Query::Update(
      "T", {{1, LinearExpr::AttrScaled(1, 1.0, 3.0)}},
      Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 25}));
  Database truth = d0;
  relational::ApplyQuery(clean_q, truth);

  auto result = RepairWithDecTree(dirty_q, d0, truth);
  ASSERT_TRUE(result.ok());
  Database repaired_state = d0;
  relational::ApplyQuery(result->repaired, repaired_state);
  for (size_t i = 0; i < repaired_state.NumSlots(); ++i) {
    EXPECT_NEAR(repaired_state.slot(i).values[1], truth.slot(i).values[1],
                1e-6);
  }
}

TEST(DecTreeRepairTest, PointUpdateShowsLowPrecisionFailureMode) {
  // The paper's "high selectivity, low precision" argument: a key-point
  // update flips one record out of many; the tree may collapse to the
  // always-false rule. Either way DecTree must not crash, and we record
  // whether it missed the single changed tuple.
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  for (int i = 0; i < 500; ++i) d0.AddTuple({double(i), 0});
  Query clean_q = Query::Update(
      "T", {{1, LinearExpr::Constant(1)}},
      Predicate::Atom({LinearExpr::Attr(0), CmpOp::kEq, 123}));
  Database truth = d0;
  relational::ApplyQuery(clean_q, truth);
  Query dirty_q = Query::Update(
      "T", {{1, LinearExpr::Constant(1)}},
      Predicate::Atom({LinearExpr::Attr(0), CmpOp::kEq, 300}));

  auto result = RepairWithDecTree(dirty_q, d0, truth);
  ASSERT_TRUE(result.ok());
  // No assertion on accuracy — this documents the failure mode the
  // paper's Figure 10 quantifies. The repair must be a valid query.
  Database repaired_state = d0;
  relational::ApplyQuery(result->repaired, repaired_state);
  SUCCEED();
}

TEST(DecTreeRepairTest, RejectsNonUpdateQueries) {
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  d0.AddTuple({1, 2});
  Query del = Query::Delete("T", Predicate::True());
  EXPECT_TRUE(
      RepairWithDecTree(del, d0, d0).status().IsUnsupported());
}

}  // namespace
}  // namespace dectree
}  // namespace qfix
