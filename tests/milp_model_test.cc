#include <gtest/gtest.h>

#include "milp/model.h"

namespace qfix {
namespace milp {
namespace {

TEST(ModelTest, AddVariablesAssignsSequentialIds) {
  Model m;
  VarId a = m.AddContinuous(0, 10, "a");
  VarId b = m.AddBinary("b");
  VarId c = m.AddVariable(VarType::kInteger, -5, 5, "c");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 2);
  EXPECT_EQ(m.NumVars(), 3);
  EXPECT_EQ(m.NumIntegerVars(), 2);
  EXPECT_EQ(m.type(b), VarType::kBinary);
  EXPECT_EQ(m.lb(c), -5);
  EXPECT_EQ(m.ub(c), 5);
  EXPECT_EQ(m.name(a), "a");
}

TEST(ModelTest, ConstraintMergesDuplicateTerms) {
  Model m;
  VarId a = m.AddContinuous(0, 10, "a");
  VarId b = m.AddContinuous(0, 10, "b");
  m.AddConstraint({{a, 1.0}, {b, 2.0}, {a, 3.0}}, Sense::kLe, 7.0);
  const Constraint& c = m.constraint(0);
  ASSERT_EQ(c.terms.size(), 2u);
  EXPECT_EQ(c.terms[0].var, a);
  EXPECT_DOUBLE_EQ(c.terms[0].coeff, 4.0);
  EXPECT_EQ(c.terms[1].var, b);
}

TEST(ModelTest, ConstraintDropsCancelledTerms) {
  Model m;
  VarId a = m.AddContinuous(0, 10, "a");
  VarId b = m.AddContinuous(0, 10, "b");
  m.AddConstraint({{a, 1.0}, {a, -1.0}, {b, 1.0}}, Sense::kEq, 2.0);
  EXPECT_EQ(m.constraint(0).terms.size(), 1u);
  EXPECT_EQ(m.constraint(0).terms[0].var, b);
}

TEST(ModelTest, ObjectiveAccumulatesAndEvaluates) {
  Model m;
  VarId a = m.AddContinuous(0, 10, "a");
  VarId b = m.AddContinuous(0, 10, "b");
  m.AddObjectiveTerm(a, 2.0);
  m.AddObjectiveTerm(a, 1.0);
  m.AddObjectiveTerm(b, -1.0);
  m.AddObjectiveConstant(5.0);
  EXPECT_DOUBLE_EQ(m.EvalObjective({2.0, 3.0}), 5.0 + 3.0 * 2.0 - 3.0);
}

TEST(ModelTest, ValidateRejectsBadModels) {
  Model m;
  VarId a = m.AddContinuous(0, 10, "a");
  m.AddConstraint({{a, 1.0}}, Sense::kLe,
                  std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(m.Validate().IsInvalidArgument());
}

TEST(ModelTest, ValidateAcceptsSaneModel) {
  Model m;
  VarId a = m.AddBinary("a");
  m.AddConstraint({{a, 1.0}}, Sense::kGe, 0.0);
  m.AddObjectiveTerm(a, 1.0);
  EXPECT_TRUE(m.Validate().ok());
}

TEST(ModelTest, IsFeasibleChecksBoundsIntegralityAndRows) {
  Model m;
  VarId a = m.AddContinuous(0, 10, "a");
  VarId b = m.AddBinary("b");
  m.AddConstraint({{a, 1.0}, {b, 5.0}}, Sense::kLe, 8.0);

  EXPECT_TRUE(m.IsFeasible({3.0, 1.0}, 1e-6));
  EXPECT_FALSE(m.IsFeasible({4.0, 1.0}, 1e-6));   // row violated
  EXPECT_FALSE(m.IsFeasible({-1.0, 0.0}, 1e-6));  // bound violated
  EXPECT_FALSE(m.IsFeasible({1.0, 0.5}, 1e-6));   // fractional binary
  EXPECT_FALSE(m.IsFeasible({1.0}, 1e-6));        // wrong arity
}

TEST(ModelTest, FixVariableCollapsesBounds) {
  Model m;
  VarId a = m.AddContinuous(0, 10, "a");
  m.FixVariable(a, 4.0);
  EXPECT_EQ(m.lb(a), 4.0);
  EXPECT_EQ(m.ub(a), 4.0);
  Domains d = m.InitialDomains();
  EXPECT_TRUE(d.Fixed(a));
}

}  // namespace
}  // namespace milp
}  // namespace qfix
