// Unit tests for the src/exec work-stealing subsystem: pool/task-group
// basics, stealing fairness, cancellation, exception propagation, and
// the deterministic single-thread fallback mode.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/cancellation.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"

namespace qfix {
namespace exec {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    group.Spawn([&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DeterministicModeRunsInlineInSubmissionOrder) {
  ThreadPool pool(0);
  EXPECT_TRUE(pool.deterministic());
  EXPECT_EQ(pool.num_workers(), 0);

  std::vector<int> order;
  std::thread::id main_thread = std::this_thread::get_id();
  TaskGroup group(&pool);
  for (int i = 0; i < 16; ++i) {
    group.Spawn([&order, main_thread, i] {
      EXPECT_EQ(std::this_thread::get_id(), main_thread);
      order.push_back(i);
    });
  }
  group.Wait();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, DeterministicModeIsReproducible) {
  // Two identical runs produce byte-identical traces — the property the
  // solver tests rely on.
  auto run = [] {
    ThreadPool pool(-1);
    TaskGroup group(&pool);
    std::vector<int> trace;
    for (int i = 0; i < 8; ++i) {
      group.Spawn([&group, &trace, i] {
        trace.push_back(i);
        if (i % 2 == 0) {
          group.Spawn([&trace, i] { trace.push_back(100 + i); });
        }
      });
    }
    group.Wait();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

TEST(ThreadPoolTest, WorkSpawnedOnOneWorkerIsStolenByOthers) {
  // All tasks are spawned from inside a single worker task, so they all
  // land in that worker's deque; the only way another thread can run one
  // is by stealing. The brief sleep keeps the owner busy long enough
  // that stealing must happen for the batch to drain in parallel.
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::mutex mu;
  std::set<std::thread::id> executors;
  group.Spawn([&] {
    for (int i = 0; i < 64; ++i) {
      group.Spawn([&mu, &executors] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::lock_guard<std::mutex> lock(mu);
        executors.insert(std::this_thread::get_id());
      });
    }
  });
  group.Wait();
  // Fairness: with 64 x 1ms tasks in one deque and 3 idle workers (plus
  // the waiter helping), at least one steal must have happened.
  EXPECT_GE(executors.size(), 2u);
}

TEST(ThreadPoolTest, ExternalSubmitLandsInInjectionQueue) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  group.Spawn([&ran] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskGroupTest, PropagatesFirstException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Spawn([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // Wait() again rethrows the same stored error.
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(TaskGroupTest, ExceptionCancelsQueuedSiblings) {
  // Deterministic mode makes the ordering exact: the first task throws,
  // so every later task must be skipped.
  ThreadPool pool(0);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  group.Spawn([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 8; ++i) {
    group.Spawn([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_TRUE(group.cancelled());
}

TEST(TaskGroupTest, ExceptionInParallelModeStillPropagates) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    group.Spawn([&ran, i] {
      if (i == 5) throw std::invalid_argument("task 5 failed");
      ran.fetch_add(1);
    });
  }
  EXPECT_THROW(group.Wait(), std::invalid_argument);
  EXPECT_LE(ran.load(), 31);
}

TEST(CancellationTest, TokenObservesSource) {
  CancellationSource source;
  CancellationToken token = source.token();
  EXPECT_FALSE(token.cancelled());
  source.Cancel();
  EXPECT_TRUE(token.cancelled());
  // Default token never fires.
  EXPECT_FALSE(CancellationToken().cancelled());
}

TEST(CancellationTest, TokenOutlivesSource) {
  CancellationToken token;
  {
    CancellationSource source;
    token = source.token();
    source.Cancel();
  }
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTest, GroupCancelSkipsQueuedTasks) {
  ThreadPool pool(0);  // deterministic: queued == everything after Cancel
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  group.Spawn([&group, &ran] {
    ran.fetch_add(1);
    group.Cancel();
  });
  group.Spawn([&ran] { ran.fetch_add(1); });
  group.Spawn([&ran] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_TRUE(group.cancelled());
}

TEST(CancellationTest, ParentTokenCancelsGroup) {
  CancellationSource parent;
  ThreadPool pool(0);
  TaskGroup group(&pool, parent.token());
  std::atomic<int> ran{0};
  parent.Cancel();
  group.Spawn([&ran] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_TRUE(group.cancelled());
  // The group's own token reflects the propagated parent cancellation.
  EXPECT_TRUE(group.token().cancelled());
}

TEST(CancellationTest, RunningTasksCanPollTheToken) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> iterations{0};
  group.Spawn([&group, &iterations] {
    CancellationToken token = group.token();
    while (!token.cancelled()) {
      iterations.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  group.Spawn([&group] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    group.Cancel();
  });
  group.Wait();  // terminates because the poller observes the cancel
  EXPECT_GE(iterations.load(), 1);
}

TEST(TaskGroupTest, NestedWaitOnWorkerThreadDoesNotDeadlock) {
  // A task waits on a child group whose work sits in the pool queues;
  // with a single worker this only terminates because Wait() helps run
  // queued tasks.
  ThreadPool pool(1);
  TaskGroup group(&pool);
  std::atomic<int> inner_ran{0};
  group.Spawn([&pool, &inner_ran] {
    TaskGroup inner(&pool);
    for (int i = 0; i < 4; ++i) {
      inner.Spawn([&inner_ran] { inner_ran.fetch_add(1); });
    }
    inner.Wait();
  });
  group.Wait();
  EXPECT_EQ(inner_ran.load(), 4);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // No Wait(): the destructor must drain before joining.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, DefaultParallelismIsPositive) {
  EXPECT_GE(ThreadPool::DefaultParallelism(), 1);
}

}  // namespace
}  // namespace exec
}  // namespace qfix
