// Tests for the LP-format writer/reader (milp/lp_format.h): golden
// output, parser coverage for each section shape, error reporting, and
// write→read→write fixpoint plus solver-equivalence properties on random
// models.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "milp/lp_format.h"
#include "milp/model.h"
#include "milp/solver.h"

namespace qfix {
namespace milp {
namespace {

Model SmallMip() {
  Model m;
  VarId x = m.AddContinuous(0, 10, "x");
  VarId y = m.AddBinary("y");
  VarId z = m.AddVariable(VarType::kInteger, -3, 7, "z");
  m.AddConstraint({{x, 1.0}, {y, 5.0}}, Sense::kLe, 8.0);
  m.AddConstraint({{x, 2.0}, {z, -1.0}}, Sense::kGe, 1.0);
  m.AddConstraint({{y, 1.0}, {z, 1.0}}, Sense::kEq, 2.0);
  m.AddObjectiveTerm(x, 1.0);
  m.AddObjectiveTerm(z, 3.0);
  m.AddObjectiveConstant(4.0);
  return m;
}

TEST(LpWriterTest, WritesAllSections) {
  std::string text = WriteLpFormat(SmallMip());
  EXPECT_NE(text.find("Minimize"), std::string::npos);
  EXPECT_NE(text.find("Subject To"), std::string::npos);
  EXPECT_NE(text.find("Bounds"), std::string::npos);
  EXPECT_NE(text.find("Binaries"), std::string::npos);
  EXPECT_NE(text.find("Generals"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
  // Constraint rows are labeled c0..c2.
  EXPECT_NE(text.find("c0:"), std::string::npos);
  EXPECT_NE(text.find("c2:"), std::string::npos);
  // The objective constant is written inline.
  EXPECT_NE(text.find("+ 4"), std::string::npos);
}

TEST(LpWriterTest, SanitizesIllegalNames) {
  Model m;
  m.AddContinuous(0, 1, "t[3].owed");   // brackets/dots are illegal
  m.AddContinuous(0, 1, "9lives");      // cannot start with a digit
  m.AddContinuous(0, 1, "e12");         // looks like scientific notation
  m.AddContinuous(0, 1, "");            // empty
  std::string text = WriteLpFormat(m);
  // The illegal spellings never appear outside comment lines.
  for (size_t pos = 0; pos < text.size();) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    if (!line.empty() && line[0] != '\\') {
      EXPECT_EQ(line.find("t[3].owed"), std::string::npos) << line;
    }
    pos = eol + 1;
  }
  Result<Model> back = ReadLpFormat(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumVars(), 4);
}

TEST(LpWriterTest, DuplicateNamesAreDeduplicated) {
  Model m;
  m.AddContinuous(0, 1, "dup");
  m.AddContinuous(0, 2, "dup");
  m.AddConstraint({{0, 1.0}, {1, 1.0}}, Sense::kLe, 2.0);
  Result<Model> back = ReadLpFormat(WriteLpFormat(m));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumVars(), 2);
  EXPECT_NE(back->name(0), back->name(1));
  EXPECT_DOUBLE_EQ(back->ub(1), 2.0);
}

TEST(LpReaderTest, ParsesMinimalProgram) {
  const char* text =
      "Minimize\n obj: x + 2 y\n"
      "Subject To\n c: x + y >= 1\n"
      "Bounds\n 0 <= x <= 4\n 0 <= y <= 4\n"
      "End\n";
  Result<Model> m = ReadLpFormat(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->NumVars(), 2);
  EXPECT_EQ(m->NumConstraints(), 1);
  EXPECT_DOUBLE_EQ(m->EvalObjective({1.0, 0.5}), 2.0);
}

TEST(LpReaderTest, ParsesUnlabeledRows) {
  const char* text =
      "min\n x + y\n"
      "st\n x - y <= 3\n x + y >= 1\n"
      "End\n";
  Result<Model> m = ReadLpFormat(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->NumConstraints(), 2);
  // LP default bounds apply: [0, inf).
  EXPECT_DOUBLE_EQ(m->lb(0), 0.0);
  EXPECT_EQ(m->ub(0), kInf);
}

TEST(LpReaderTest, MaximizeIsNegatedIntoMinimizeForm) {
  const char* text =
      "Maximize\n obj: 3 x + 1\n"
      "Subject To\n c0: x <= 5\n"
      "End\n";
  Result<Model> m = ReadLpFormat(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_DOUBLE_EQ(m->objective()[0], -3.0);
  EXPECT_DOUBLE_EQ(m->objective_constant(), -1.0);
}

TEST(LpReaderTest, ParsesBoundShapes) {
  const char* text =
      "Minimize\n obj: a + b + c + d + e\n"
      "Subject To\n c0: a + b + c + d + e <= 100\n"
      "Bounds\n"
      " -2 <= a <= 2\n"
      " b >= -5\n"
      " c <= 9\n"
      " d = 4\n"
      " e free\n"
      "End\n";
  Result<Model> m = ReadLpFormat(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_DOUBLE_EQ(m->lb(0), -2.0);
  EXPECT_DOUBLE_EQ(m->ub(0), 2.0);
  EXPECT_DOUBLE_EQ(m->lb(1), -5.0);
  EXPECT_EQ(m->ub(1), kInf);
  EXPECT_DOUBLE_EQ(m->lb(2), 0.0);  // only ub given; lb keeps LP default
  EXPECT_DOUBLE_EQ(m->ub(2), 9.0);
  EXPECT_DOUBLE_EQ(m->lb(3), 4.0);
  EXPECT_DOUBLE_EQ(m->ub(3), 4.0);
  EXPECT_EQ(m->lb(4), -kInf);
  EXPECT_EQ(m->ub(4), kInf);
}

TEST(LpReaderTest, InfinityTokensInBounds) {
  const char* text =
      "Minimize\n obj: x\n"
      "Subject To\n c0: x >= 0\n"
      "Bounds\n -inf <= x <= infinity\n"
      "End\n";
  Result<Model> m = ReadLpFormat(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->lb(0), -kInf);
  EXPECT_EQ(m->ub(0), kInf);
}

TEST(LpReaderTest, BinariesAndGeneralsSections) {
  const char* text =
      "Minimize\n obj: x + y + z\n"
      "Subject To\n c0: x + y + z >= 1\n"
      "Bounds\n 0 <= z <= 12\n"
      "Binaries\n x\n"
      "Generals\n y z\n"
      "End\n";
  Result<Model> m = ReadLpFormat(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->type(0), VarType::kBinary);
  EXPECT_EQ(m->type(1), VarType::kInteger);
  EXPECT_EQ(m->type(2), VarType::kInteger);
  EXPECT_DOUBLE_EQ(m->ub(0), 1.0);  // binary box applied
  EXPECT_DOUBLE_EQ(m->ub(2), 12.0);
  EXPECT_EQ(m->NumIntegerVars(), 3);
}

TEST(LpReaderTest, ConstantsOnTheLeftMoveToTheRhs) {
  // "x + 3 <= 10" is the same row as "x <= 7".
  const char* text =
      "Minimize\n obj: x\n"
      "Subject To\n c0: x + 3 <= 10\n"
      "End\n";
  Result<Model> m = ReadLpFormat(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_DOUBLE_EQ(m->constraint(0).rhs, 7.0);
}

TEST(LpReaderTest, CommentsAreIgnored) {
  const char* text =
      "\\ header comment\n"
      "Minimize \\ trailing comment\n obj: x\n"
      "Subject To\n c0: x >= 2 \\ another\n"
      "End\n";
  Result<Model> m = ReadLpFormat(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_DOUBLE_EQ(m->constraint(0).rhs, 2.0);
}

TEST(LpReaderTest, RejectsMalformedInputs) {
  EXPECT_FALSE(ReadLpFormat("").ok());
  EXPECT_FALSE(ReadLpFormat("Hello\n x\nEnd\n").ok());
  // Constraint with no relational operator.
  EXPECT_FALSE(
      ReadLpFormat("Minimize\n obj: x\nSubject To\n c0: x + 1\nEnd\n").ok());
  // Missing End.
  EXPECT_FALSE(ReadLpFormat("Minimize\n obj: x\nSubject To\n c: x<=1\n").ok());
  // Empty bound interval.
  EXPECT_FALSE(ReadLpFormat("Minimize\n obj: x\nSubject To\n c: x<=1\n"
                            "Bounds\n 5 <= x <= 2\nEnd\n")
                   .ok());
  // Garbage character.
  EXPECT_FALSE(ReadLpFormat("Minimize\n obj: x ^ 2\nSubject To\n"
                            " c: x<=1\nEnd\n")
                   .ok());
}

TEST(LpFileTest, RoundTripsThroughDisk) {
  Model m = SmallMip();
  std::string path = testing::TempDir() + "/qfix_lpformat_test.lp";
  ASSERT_TRUE(WriteLpFile(m, path).ok());
  Result<Model> back = ReadLpFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumVars(), m.NumVars());
  EXPECT_EQ(back->NumConstraints(), m.NumConstraints());
}

TEST(LpFileTest, MissingFileIsNotFound) {
  Result<Model> r = ReadLpFile("/nonexistent/dir/model.lp");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

// ---------------------------------------------------------------------
// Property sweeps on random models.
// ---------------------------------------------------------------------

Model RandomModel(Rng& rng) {
  Model m;
  int nvars = static_cast<int>(rng.UniformInt(1, 8));
  for (int v = 0; v < nvars; ++v) {
    double roll = rng.UniformReal(0, 1);
    if (roll < 0.4) {
      m.AddBinary("b" + std::to_string(v));
    } else if (roll < 0.6) {
      m.AddVariable(VarType::kInteger, rng.UniformInt(-5, 0),
                    rng.UniformInt(1, 6), "i" + std::to_string(v));
    } else {
      double lb = rng.UniformReal(-10, 0);
      m.AddContinuous(lb, lb + rng.UniformReal(0.5, 12),
                      "x" + std::to_string(v));
    }
    if (rng.Bernoulli(0.7)) {
      m.AddObjectiveTerm(v, std::round(rng.UniformReal(-4, 4) * 4) / 4);
    }
  }
  int ncons = static_cast<int>(rng.UniformInt(1, 10));
  for (int c = 0; c < ncons; ++c) {
    LinearTerms terms;
    for (int v = 0; v < nvars; ++v) {
      if (rng.Bernoulli(0.5)) {
        terms.push_back({v, std::round(rng.UniformReal(-3, 3) * 2) / 2});
      }
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    Sense sense = c % 3 == 0   ? Sense::kLe
                  : c % 3 == 1 ? Sense::kGe
                               : Sense::kEq;
    m.AddConstraint(std::move(terms), sense,
                    std::round(rng.UniformReal(-6, 6)));
  }
  m.AddObjectiveConstant(std::round(rng.UniformReal(-2, 2)));
  return m;
}

class LpRoundTripTest : public testing::TestWithParam<int> {};

TEST_P(LpRoundTripTest, WriteReadWriteReachesAFixpoint) {
  // The reader numbers variables by first appearance, so the first
  // round-trip may permute ids; after that one normalization pass,
  // write∘read must be the identity on the text.
  Rng rng(1234 + GetParam());
  Model m = RandomModel(rng);
  Result<Model> m1 = ReadLpFormat(WriteLpFormat(m));
  ASSERT_TRUE(m1.ok()) << m1.status().ToString();
  std::string s2 = WriteLpFormat(*m1);
  Result<Model> m2 = ReadLpFormat(s2);
  ASSERT_TRUE(m2.ok()) << m2.status().ToString() << "\n" << s2;
  EXPECT_EQ(s2, WriteLpFormat(*m2));
  EXPECT_EQ(m1->NumVars(), m.NumVars());
  EXPECT_EQ(m1->NumConstraints(), m.NumConstraints());
  EXPECT_EQ(m1->NumIntegerVars(), m.NumIntegerVars());
}

TEST_P(LpRoundTripTest, RereadModelHasSameOptimum) {
  Rng rng(987 + GetParam());
  Model m = RandomModel(rng);
  Result<Model> back = ReadLpFormat(WriteLpFormat(m));
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  MilpOptions options;
  options.time_limit_seconds = 10.0;
  MilpSolver solver(options);
  MilpSolution a = solver.Solve(m);
  MilpSolution b = solver.Solve(*back);
  ASSERT_EQ(a.status, b.status)
      << MilpStatusToString(a.status) << " vs " << MilpStatusToString(b.status);
  if (HasSolution(a.status)) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6);
    // Map the re-read solution back through variable names (ids may be
    // permuted by first-appearance numbering) and check it is feasible
    // for the original model too.
    std::vector<double> remapped(m.NumVars(), 0.0);
    for (VarId v = 0; v < back->NumVars(); ++v) {
      bool found = false;
      for (VarId w = 0; w < m.NumVars(); ++w) {
        if (m.name(w) == back->name(v)) {
          remapped[w] = b.x[v];
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "unknown variable " << back->name(v);
    }
    EXPECT_TRUE(m.IsFeasible(remapped, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, LpRoundTripTest, testing::Range(0, 20));

}  // namespace
}  // namespace milp
}  // namespace qfix
