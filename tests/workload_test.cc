#include <gtest/gtest.h>

#include <cmath>

#include "harness/metrics.h"
#include "harness/table.h"
#include "relational/executor.h"
#include "workload/synthetic.h"
#include "workload/tatp_like.h"
#include "workload/tpcc_like.h"

namespace qfix {
namespace workload {
namespace {

using relational::QueryType;

TEST(SyntheticTest, DatabaseShapeAndDomain) {
  SyntheticSpec spec;
  spec.num_tuples = 50;
  spec.num_attrs = 4;
  spec.value_domain = 30;
  Rng rng(1);
  auto db = GenerateDatabase(spec, rng);
  EXPECT_EQ(db.NumSlots(), 50u);
  EXPECT_EQ(db.schema().num_attrs(), 5u);  // id + 4
  EXPECT_EQ(db.schema().attr_name(0), "id");
  for (size_t i = 0; i < db.NumSlots(); ++i) {
    EXPECT_DOUBLE_EQ(db.slot(i).values[0], double(i));  // id == tid
    for (size_t a = 1; a < 5; ++a) {
      EXPECT_GE(db.slot(i).values[a], 0);
      EXPECT_LE(db.slot(i).values[a], 30);
    }
  }
}

TEST(SyntheticTest, LogRespectsTypeMix) {
  SyntheticSpec spec;
  spec.num_tuples = 30;
  spec.num_queries = 400;
  spec.insert_fraction = 0.3;
  spec.delete_fraction = 0.2;
  Rng rng(2);
  auto d0 = GenerateDatabase(spec, rng);
  auto log = GenerateLog(spec, d0, rng);
  ASSERT_EQ(log.size(), 400u);
  size_t inserts = 0, deletes = 0, updates = 0;
  for (const auto& q : log) {
    inserts += q.type() == QueryType::kInsert;
    deletes += q.type() == QueryType::kDelete;
    updates += q.type() == QueryType::kUpdate;
  }
  EXPECT_NEAR(inserts, 120, 40);
  EXPECT_NEAR(deletes, 80, 40);
  EXPECT_EQ(inserts + deletes + updates, 400u);
}

TEST(SyntheticTest, RangeSelectivityApproximatesTarget) {
  // With Vd = 200 and r = 4 the paper's default selectivity is ~2%.
  SyntheticSpec spec;
  spec.num_tuples = 2000;
  spec.num_queries = 50;
  Rng rng(3);
  auto d0 = GenerateDatabase(spec, rng);
  auto log = GenerateLog(spec, d0, rng);
  double total_fraction = 0.0;
  for (const auto& q : log) {
    size_t matched = 0;
    for (const auto& t : d0.tuples()) {
      matched += q.Matches(t.values);
    }
    total_fraction += double(matched) / d0.NumSlots();
  }
  EXPECT_NEAR(total_fraction / log.size(), 0.02, 0.015);
}

TEST(SyntheticTest, DimensionalityPreservesCardinality) {
  SyntheticSpec spec;
  spec.num_tuples = 4000;
  spec.num_queries = 60;
  spec.range_size = 40;  // 20% per dim at d=1
  auto card = [&](size_t dims, uint64_t seed) {
    SyntheticSpec s = spec;
    s.where_dimensions = dims;
    Rng rng(seed);
    auto d0 = GenerateDatabase(s, rng);
    auto log = GenerateLog(s, d0, rng);
    double total = 0;
    for (const auto& q : log) {
      size_t matched = 0;
      for (const auto& t : d0.tuples()) matched += q.Matches(t.values);
      total += double(matched) / d0.NumSlots();
    }
    return total / log.size();
  };
  double c1 = card(1, 11), c3 = card(3, 12);
  EXPECT_NEAR(c1, c3, 0.1);
  EXPECT_GT(c3, 0.05);  // both near 20%
}

TEST(SyntheticTest, SkewConcentratesAttributes) {
  SyntheticSpec spec;
  spec.num_tuples = 20;
  spec.num_queries = 300;
  spec.skew = 1.0;
  Rng rng(4);
  auto d0 = GenerateDatabase(spec, rng);
  auto log = GenerateLog(spec, d0, rng);
  std::vector<int> set_counts(spec.num_attrs + 1, 0);
  for (const auto& q : log) {
    if (q.type() == QueryType::kUpdate) {
      ++set_counts[q.set_clauses()[0].attr];
    }
  }
  // Attribute a0 (index 1) dominates under zipf(1).
  EXPECT_GT(set_counts[1], set_counts[5] * 2);
}

TEST(SyntheticTest, CorruptionChangesOnlyConstants) {
  SyntheticSpec spec;
  spec.num_tuples = 20;
  spec.num_queries = 10;
  Rng rng(5);
  auto d0 = GenerateDatabase(spec, rng);
  auto clean = GenerateLog(spec, d0, rng);
  auto dirty = clean;
  CorruptQueryConstants(dirty, 4, spec, rng);
  // Same structure: same parameter count, different values somewhere.
  auto pc = clean[4].Params();
  auto pd = dirty[4].Params();
  ASSERT_EQ(pc.size(), pd.size());
  EXPECT_GT(relational::LogDistance(clean, dirty), 0.0);
  for (size_t i = 0; i < clean.size(); ++i) {
    if (i == 4) continue;
    EXPECT_EQ(clean[i].ToSql(d0.schema()), dirty[i].ToSql(d0.schema()));
  }
}

TEST(SyntheticTest, ScenarioProducesComplaints) {
  SyntheticSpec spec;
  spec.num_tuples = 100;
  spec.num_queries = 20;
  spec.range_size = 20;  // 10% selectivity: corruption almost surely hits
  Scenario s = MakeSyntheticScenario(spec, {10}, 42);
  EXPECT_EQ(s.dirty_log.size(), 20u);
  EXPECT_EQ(s.corrupted_queries, (std::vector<size_t>{10}));
  EXPECT_GT(s.complaints.size(), 0u);
  // Complaints are exactly the dirty-vs-truth differences.
  auto rediff = provenance::DiffStates(s.dirty, s.truth);
  EXPECT_EQ(rediff.size(), s.complaints.size());
}

TEST(TpccTest, WorkloadShape) {
  TpccSpec spec;
  spec.initial_orders = 300;
  spec.num_queries = 200;
  Scenario s = MakeTpccScenario(spec, /*corrupt_age=*/5, 7);
  EXPECT_EQ(s.d0.NumSlots(), 300u);
  ASSERT_EQ(s.dirty_log.size(), 200u);
  size_t inserts = 0;
  for (const auto& q : s.dirty_log) {
    inserts += q.type() == QueryType::kInsert;
  }
  // ~92% INSERTs.
  EXPECT_GT(inserts, 160u);
  EXPECT_EQ(s.corrupted_queries[0], 200u - 1 - 5);
  EXPECT_GT(s.complaints.size(), 0u);
  // Complaint sets in this workload are tiny (1-2 tuples, §7.4).
  EXPECT_LE(s.complaints.size(), 4u);
}

TEST(TatpTest, WorkloadShape) {
  TatpSpec spec;
  spec.subscribers = 200;
  spec.num_queries = 100;
  Scenario s = MakeTatpScenario(spec, /*corrupt_age=*/3, 8);
  EXPECT_EQ(s.d0.NumSlots(), 200u);
  for (const auto& q : s.dirty_log) {
    EXPECT_EQ(q.type(), QueryType::kUpdate);
    // All point predicates on the key.
    EXPECT_EQ(q.where().NumAtoms(), 1u);
  }
  EXPECT_GT(s.complaints.size(), 0u);
  EXPECT_LE(s.complaints.size(), 4u);
}

TEST(MetricsTest, PerfectRepairScoresOne) {
  SyntheticSpec spec;
  spec.num_tuples = 50;
  spec.num_queries = 10;
  spec.range_size = 20;
  Scenario s = MakeSyntheticScenario(spec, {5}, 9);
  ASSERT_GT(s.complaints.size(), 0u);
  // The clean log is by definition the perfect repair.
  auto acc = harness::EvaluateRepair(s.clean_log, s.d0, s.dirty, s.truth);
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  EXPECT_DOUBLE_EQ(acc.recall, 1.0);
  EXPECT_DOUBLE_EQ(acc.f1, 1.0);
  EXPECT_EQ(acc.true_complaints, s.complaints.size());
}

TEST(MetricsTest, NoopRepairScoresZeroRecall) {
  SyntheticSpec spec;
  spec.num_tuples = 50;
  spec.num_queries = 10;
  spec.range_size = 20;
  Scenario s = MakeSyntheticScenario(spec, {5}, 10);
  ASSERT_GT(s.complaints.size(), 0u);
  // "Repairing" with the dirty log itself changes nothing.
  auto acc = harness::EvaluateRepair(s.dirty_log, s.d0, s.dirty, s.truth);
  EXPECT_DOUBLE_EQ(acc.recall, 0.0);
  EXPECT_DOUBLE_EQ(acc.precision, 0.0);  // complaints exist, none repaired
  EXPECT_DOUBLE_EQ(acc.f1, 0.0);
}

TEST(TableTest, AlignedRendering) {
  harness::Table t({"Nq", "time(s)", "F1"});
  t.AddRow({"10", harness::Table::Cell(0.5), harness::Table::Cell(1.0)});
  t.AddRow({"200", harness::Table::Cell(12.25), harness::Table::Cell(0.875)});
  std::string s = t.ToString();
  EXPECT_NE(s.find("Nq"), std::string::npos);
  EXPECT_NE(s.find("0.500"), std::string::npos);
  EXPECT_NE(s.find("12.250"), std::string::npos);
  EXPECT_NE(s.find("0.875"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

}  // namespace
}  // namespace workload
}  // namespace qfix
