// Regression tests for parallel branch & bound (MilpOptions::jobs > 1):
// solver limits must be respected under concurrency, and parallel runs
// must reach the same proven optimum as the deterministic serial search
// — including on the paper's Figure-2 fixture through the full engine.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "milp/model.h"
#include "milp/solver.h"
#include "provenance/complaint.h"
#include "qfix/qfix.h"
#include "relational/executor.h"
#include "test_support.h"

namespace qfix {
namespace milp {
namespace {

// A knapsack with enough correlated weights to force real branching.
Model HardKnapsack(int n, uint64_t seed) {
  Rng rng(seed);
  Model m;
  LinearTerms row;
  for (int i = 0; i < n; ++i) {
    VarId v = m.AddBinary("b" + std::to_string(i));
    row.push_back({v, double(rng.UniformInt(1, 20))});
    m.AddObjectiveTerm(v, -double(rng.UniformInt(1, 30)));
  }
  m.AddConstraint(row, Sense::kLe, 10.0 * n / 4.0);
  return m;
}

TEST(MilpParallelTest, SameObjectiveAsSerialOnKnapsacks) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Model m = HardKnapsack(18, seed);
    MilpOptions serial;
    serial.jobs = 1;
    MilpOptions parallel = serial;
    parallel.jobs = 4;
    MilpSolution s1 = MilpSolver(serial).Solve(m);
    MilpSolution s4 = MilpSolver(parallel).Solve(m);
    ASSERT_EQ(s1.status, MilpStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(s4.status, MilpStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(s1.objective, s4.objective, 1e-6) << "seed " << seed;
    EXPECT_EQ(s4.stats.workers, 4);
  }
}

TEST(MilpParallelTest, InfeasibleStaysInfeasibleWithJobs) {
  // x + y = 1 with x = y (both binary) needs branching to refute.
  Model m;
  VarId x = m.AddBinary("x");
  VarId y = m.AddBinary("y");
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kEq, 1.0);
  m.AddConstraint({{x, 1.0}, {y, -1.0}}, Sense::kEq, 0.0);
  MilpOptions opts;
  opts.jobs = 4;
  MilpSolution s = MilpSolver(opts).Solve(m);
  EXPECT_EQ(s.status, MilpStatus::kInfeasible);
}

TEST(MilpParallelTest, TimeLimitRespectedWithJobs) {
  // A fiddly equal-weight subset-sum instance; with an effectively-zero
  // budget the parallel solver must stop promptly across all workers.
  Rng rng(5);
  Model m;
  LinearTerms row;
  for (int i = 0; i < 30; ++i) {
    VarId v = m.AddBinary("b" + std::to_string(i));
    row.push_back({v, rng.UniformReal(1.0, 2.0)});
    m.AddObjectiveTerm(v, -1.0);
  }
  m.AddConstraint(row, Sense::kLe, 20.0);
  MilpOptions opts;
  opts.jobs = 4;
  opts.time_limit_seconds = 1e-9;
  double start = MonotonicSeconds();
  MilpSolution s = MilpSolver(opts).Solve(m);
  double elapsed = MonotonicSeconds() - start;
  EXPECT_TRUE(s.status == MilpStatus::kTimeLimit ||
              s.status == MilpStatus::kFeasible)
      << MilpStatusToString(s.status);
  // Generous bound: the point is that workers observed the deadline
  // rather than finishing the search.
  EXPECT_LT(elapsed, 20.0);
}

TEST(MilpParallelTest, NodeBudgetSharedAcrossWorkers) {
  Rng rng(11);
  Model m;
  LinearTerms row;
  for (int i = 0; i < 26; ++i) {
    VarId v = m.AddBinary("b" + std::to_string(i));
    row.push_back({v, rng.UniformReal(1.0, 2.0)});
    m.AddObjectiveTerm(v, -1.0);
  }
  m.AddConstraint(row, Sense::kLe, 17.0);
  MilpOptions opts;
  opts.jobs = 4;
  opts.max_nodes = 40;
  MilpSolution s = MilpSolver(opts).Solve(m);
  // The budget is claimed atomically before LP work; each in-flight
  // worker can overshoot by at most the one node it already claimed.
  EXPECT_LE(s.stats.nodes, opts.max_nodes + opts.jobs);
  EXPECT_NE(s.status, MilpStatus::kOptimal);
}

TEST(MilpParallelTest, TooLargeBudgetRespectedWithJobs) {
  // More rows than SimplexOptions::max_rows allows: the first LP reports
  // kTooLarge and every worker must stand down. Two-variable rows so
  // LP reduction cannot fold them into bounds.
  Model m;
  std::vector<VarId> vars;
  for (int i = 0; i < 20; ++i) {
    vars.push_back(m.AddContinuous(0, 1, "x" + std::to_string(i)));
    m.AddObjectiveTerm(vars.back(), -1.0);
  }
  VarId b = m.AddBinary("flip");
  m.AddObjectiveTerm(b, -0.5);
  for (int i = 0; i < 40; ++i) {
    VarId u = vars[i % vars.size()];
    VarId v = vars[(i + 7) % vars.size()];
    if (u == v) continue;
    m.AddConstraint({{u, 1.0}, {v, 1.0}}, Sense::kLe, 1.5);
  }
  MilpOptions opts;
  opts.jobs = 4;
  opts.enable_presolve = false;  // keep all rows alive for the LP
  opts.lp.max_rows = 8;
  MilpSolution s = MilpSolver(opts).Solve(m);
  EXPECT_EQ(s.status, MilpStatus::kTooLarge);
}

TEST(MilpParallelTest, JobsZeroMeansHardwareParallelism) {
  Model m;
  VarId x = m.AddBinary("x");
  m.AddConstraint({{x, 1.0}}, Sense::kGe, 1.0);
  MilpOptions opts;
  opts.jobs = 0;
  MilpSolution s = MilpSolver(opts).Solve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_GE(s.stats.workers, 1);
}

// ---------------------------------------------------------------------
// Figure-2 fixture: 1-job and 4-job runs must produce the same repair.
// ---------------------------------------------------------------------

TEST(MilpParallelTest, Figure2RepairIdenticalAcrossJobCounts) {
  using test::PaperLog;
  using test::TaxD0;
  relational::QueryLog dirty_log = PaperLog(85700);
  relational::QueryLog clean_log = PaperLog(87500);
  relational::Database d0 = TaxD0();
  relational::Database dirty = relational::ExecuteLog(dirty_log, d0);
  relational::Database truth = relational::ExecuteLog(clean_log, d0);
  provenance::ComplaintSet complaints =
      provenance::DiffStates(dirty, truth);

  auto repair_with_jobs = [&](int jobs) {
    qfixcore::QFixOptions options;
    options.milp.jobs = jobs;
    qfixcore::QFixEngine engine(dirty_log, d0, dirty, complaints, options);
    return engine.RepairIncremental(1);
  };

  auto serial = repair_with_jobs(1);
  auto parallel = repair_with_jobs(4);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_TRUE(serial->verified);
  EXPECT_TRUE(parallel->verified);
  EXPECT_EQ(serial->changed_queries, parallel->changed_queries);
  // Same optimal parameter distance, and the same repaired threshold
  // after polishing — both runs prove optimality of the same objective.
  EXPECT_NEAR(serial->distance, parallel->distance, 1e-6);
  relational::ParamRef q1_where{relational::ParamRef::Kind::kWhereRhs, 0, 0};
  EXPECT_NEAR(serial->log[0].GetParam(q1_where),
              parallel->log[0].GetParam(q1_where), 1e-6);
}

}  // namespace
}  // namespace milp
}  // namespace qfix
