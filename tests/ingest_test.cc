// Incremental ingest (src/ingest + the append paths threaded through
// cache/service): chunk sealing and signature chains, structural
// sharing across AppendSnapshot (zero Database copies), the memoized
// EncodingCache and its lineage walk, prefix-aware report-cache keys
// (cache::WindowSignature) and their survival/invalidation boundaries,
// DatasetRegistry::Append atomicity + lineage pinning, the
// /v1/datasets/{name}/append endpoint end-to-end (a pre-append window
// diagnosis is served from cache after an append; a diagnosis covering
// appended rows re-encodes only the tail), and a concurrent
// append/diagnose/evict loop for the TSan lane.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/report_cache.h"
#include "cache/snapshot.h"
#include "common/json.h"
#include "ingest/chunk.h"
#include "ingest/encoding_cache.h"
#include "provenance/complaint.h"
#include "qfix/batch.h"
#include "qfix/qfix.h"
#include "relational/executor.h"
#include "service/client.h"
#include "service/json_value.h"
#include "service/registry.h"
#include "service/server.h"
#include "test_support.h"

namespace qfix {
namespace {

using relational::CmpOp;
using relational::Database;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using service::DatasetRegistry;
using service::JsonValue;
using service::ParseJson;
using service::RegistryOptions;

constexpr const char* kTaxD0Csv =
    "income,owed,pay\n"
    "9500,950,8550\n"
    "90000,22500,67500\n"
    "86000,21500,64500\n"
    "86500,21625,64875\n";

constexpr const char* kTaxLogSql =
    "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;\n"
    "INSERT INTO Taxes VALUES (87000, 21750, 65250);\n"
    "UPDATE Taxes SET pay = income - owed;\n";

/// An appended query that writes ONLY `income` (attr 0) — the
/// complaints in these tests disagree on owed/pay, so such appends sit
/// outside their observable window.
constexpr const char* kIncomeBumpSql =
    "UPDATE Taxes SET income = income + 100 WHERE income >= 86000;";

/// An income-only append whose predicate matches nothing: it changes
/// the chunk/tail WRITE summary (income) but leaves every dirty value
/// in place, so complaints filed before the append stay consistent.
constexpr const char* kIncomeNoopSql =
    "UPDATE Taxes SET income = income + 0 WHERE income < 0;";

/// The same query, built programmatically for snapshot-level tests.
Query IncomeBumpQuery(double add, double threshold) {
  return Query::Update(
      "Taxes", {{0, LinearExpr::AttrScaled(0, 1.0, add)}},
      Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, threshold}));
}

/// A complaint that keeps every dirty value except `attr` of `tid`.
provenance::ComplaintSet ComplaintOn(const Database& dirty, int64_t tid,
                                     size_t attr, double target) {
  provenance::Complaint c;
  c.tid = tid;
  c.target_alive = true;
  c.target_values = dirty.slot(static_cast<size_t>(tid)).values;
  c.target_values[attr] = target;
  provenance::ComplaintSet set;
  set.Add(std::move(c));
  return set;
}

void ExpectSameState(const Database& a, const Database& b) {
  ASSERT_EQ(a.NumSlots(), b.NumSlots());
  for (size_t s = 0; s < a.NumSlots(); ++s) {
    EXPECT_EQ(a.slot(s).alive, b.slot(s).alive) << "slot " << s;
    ASSERT_EQ(a.slot(s).values.size(), b.slot(s).values.size());
    for (size_t v = 0; v < a.slot(s).values.size(); ++v) {
      EXPECT_DOUBLE_EQ(a.slot(s).values[v], b.slot(s).values[v])
          << "slot " << s << " attr " << v;
    }
  }
}

AttrSet Attrs(std::initializer_list<size_t> attrs) {
  AttrSet set(3);
  for (size_t a : attrs) set.Insert(a);
  return set;
}

// ---------------------------------------------------------------------------
// Chunk sealing and signatures

TEST(ChunkTest, SealSummarizesWritesInsertsAndSlots) {
  QueryLog log = test::PaperLog(85700);
  const uint64_t anchor = ingest::EmptyPrefixSig(7);
  ingest::LogChunkPtr chunk =
      ingest::SealChunk(log, 0, 3, /*num_attrs=*/3, /*slots_before=*/4,
                        anchor);
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(chunk->begin, 0u);
  EXPECT_EQ(chunk->end, 3u);
  // q0 writes owed (1), q2 writes pay (2); nothing writes income (0).
  EXPECT_FALSE(chunk->writes.Contains(0));
  EXPECT_TRUE(chunk->writes.Contains(1));
  EXPECT_TRUE(chunk->writes.Contains(2));
  EXPECT_FALSE(chunk->has_delete);
  // One INSERT: the chunk is entered with 4 slots and left with 5.
  EXPECT_EQ(chunk->slots_before, 4u);
  EXPECT_EQ(chunk->slots_after, 5u);
  // The signature chains the anchor with the chunk's unique id.
  EXPECT_EQ(chunk->prefix_sig, ingest::MixHash(anchor, chunk->id));
}

TEST(ChunkTest, DeleteChunksConservativelyWriteEverything) {
  QueryLog log;
  log.push_back(Query::Delete(
      "Taxes",
      Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 1e9})));
  ingest::LogChunkPtr chunk =
      ingest::SealChunk(log, 0, 1, 3, 4, ingest::EmptyPrefixSig(1));
  EXPECT_TRUE(chunk->has_delete);
  // A repaired DELETE predicate could match anything: every attribute
  // is conservatively written.
  for (size_t a = 0; a < 3; ++a) EXPECT_TRUE(chunk->writes.Contains(a));
}

TEST(ChunkTest, SignatureChainsAreRootAnchored) {
  EXPECT_NE(ingest::EmptyPrefixSig(1), ingest::EmptyPrefixSig(2));

  QueryLog log = test::PaperLog(85700);
  // Two seals of the same range get distinct ids, hence distinct
  // signatures — chunk identity, not content, is what chains.
  ingest::LogChunkPtr a =
      ingest::SealChunk(log, 0, 3, 3, 4, ingest::EmptyPrefixSig(1));
  ingest::LogChunkPtr b =
      ingest::SealChunk(log, 0, 3, 3, 4, ingest::EmptyPrefixSig(1));
  EXPECT_NE(a->id, b->id);
  EXPECT_NE(a->prefix_sig, b->prefix_sig);

  // Extending a's prefix chains through a's signature.
  QueryLog tail;
  tail.push_back(IncomeBumpQuery(100, 86000));
  log.push_back(tail[0]);
  ingest::LogChunkPtr c =
      ingest::SealChunk(log, 3, 4, 3, a->slots_after, a->prefix_sig);
  EXPECT_EQ(c->prefix_sig, ingest::MixHash(a->prefix_sig, c->id));
  EXPECT_EQ(c->slots_before, 5u);
  EXPECT_EQ(c->slots_after, 5u);  // no INSERT in the tail
}

TEST(ChunkTest, AffectsBoundaries) {
  QueryLog log = test::PaperLog(85700);
  ingest::LogChunkPtr chunk =
      ingest::SealChunk(log, 0, 3, 3, 4, ingest::EmptyPrefixSig(1));

  // Attribute overlap with the chunk's writes.
  EXPECT_FALSE(ingest::ChunkAffects(*chunk, Attrs({0}), {0}));
  EXPECT_TRUE(ingest::ChunkAffects(*chunk, Attrs({1}), {0}));
  EXPECT_TRUE(ingest::ChunkAffects(*chunk, Attrs({2}), {0}));
  // Slot 4 is born in this chunk's INSERT: a complaint on it is
  // affected even when the attribute sets are disjoint.
  EXPECT_TRUE(ingest::ChunkAffects(*chunk, Attrs({0}), {4}));
  EXPECT_FALSE(ingest::ChunkAffects(*chunk, Attrs({0}), {3}));

  // The tail-side counterpart agrees on the same ranges.
  EXPECT_FALSE(ingest::QueriesAffect(log, 0, 3, 4, Attrs({0}), {0}));
  EXPECT_TRUE(ingest::QueriesAffect(log, 0, 3, 4, Attrs({1}), {0}));
  EXPECT_TRUE(ingest::QueriesAffect(log, 0, 3, 4, Attrs({0}), {4}));
  // Sub-ranges see only their own queries: [2, 3) is the pay update.
  EXPECT_FALSE(ingest::QueriesAffect(log, 2, 3, 5, Attrs({1}), {0}));
  EXPECT_TRUE(ingest::QueriesAffect(log, 2, 3, 5, Attrs({2}), {0}));
}

// ---------------------------------------------------------------------------
// AppendSnapshot: structural sharing, zero copies

TEST(AppendSnapshotTest, SharesD0AndChunksWithoutCopying) {
  cache::Snapshot base =
      cache::MakeSnapshot(test::PaperLog(85700), test::TaxD0(), "t");
  const int64_t copies_before = Database::CopyCount();

  QueryLog tail1;
  tail1.push_back(IncomeBumpQuery(100, 86000));
  cache::Snapshot a1 = cache::AppendSnapshot(base, tail1);
  QueryLog tail2;
  tail2.push_back(IncomeBumpQuery(50, 90000));
  cache::Snapshot a2 = cache::AppendSnapshot(a1, tail2);

  // The append path never implicitly copies a Database.
  EXPECT_EQ(Database::CopyCount(), copies_before);

  // D0 is the same object across the lineage, not an equal copy.
  EXPECT_EQ(a1->d0_state.get(), base->d0_state.get());
  EXPECT_EQ(a2->d0_state.get(), base->d0_state.get());

  // The first append sealed the base's whole log into chunk 0; the
  // second append reuses that chunk by reference and seals the first
  // tail into chunk 1.
  ASSERT_EQ(a1->chunks.size(), 1u);
  ASSERT_EQ(a2->chunks.size(), 2u);
  EXPECT_EQ(a2->chunks[0].get(), a1->chunks[0].get());
  EXPECT_EQ(a1->tail_begin(), 3u);
  EXPECT_EQ(a2->tail_begin(), 4u);
  EXPECT_EQ(a1->tail_slots(), 5u);  // D0's 4 slots + the sealed INSERT

  // Derived identity: fresh version, inherited root.
  EXPECT_NE(a1->version, base->version);
  EXPECT_NE(a2->version, a1->version);
  EXPECT_EQ(base->root, base->version);
  EXPECT_EQ(a1->root, base->version);
  EXPECT_EQ(a2->root, base->version);

  // The derived dirty state equals a full replay of the extended log.
  ASSERT_EQ(a2->log.size(), 5u);
  ExpectSameState(a2->dirty,
                  relational::ExecuteLog(a2->log, base->d0()));
}

// ---------------------------------------------------------------------------
// WindowSignature: survival and invalidation boundaries

TEST(WindowSignatureTest, SurvivesAppendsOutsideTheWindow) {
  cache::Snapshot base =
      cache::MakeSnapshot(test::PaperLog(85700), test::TaxD0(), "t");
  // The complaint disagrees on pay (attr 2) only.
  provenance::ComplaintSet on_pay =
      ComplaintOn(base->dirty, 2, 2, base->dirty.slot(2).values[2] + 1);

  // Income-only appends whose predicates match nothing: the write
  // summary says "income", the dirty state is untouched, so the pay
  // complaint keeps meaning the same thing on every version.
  QueryLog tail;
  tail.push_back(IncomeBumpQuery(100, 1e15));
  cache::Snapshot a1 = cache::AppendSnapshot(base, tail);
  QueryLog tail2;
  tail2.push_back(IncomeBumpQuery(50, 1e15));
  cache::Snapshot a2 = cache::AppendSnapshot(a1, tail2);

  // Income-only appends cannot observe or affect a pay window: the
  // signature pins the deepest affecting chunk and survives verbatim.
  const uint64_t sig1 = cache::WindowSignature(*a1.dataset(), on_pay);
  const uint64_t sig2 = cache::WindowSignature(*a2.dataset(), on_pay);
  EXPECT_EQ(sig1, sig2);
  EXPECT_EQ(sig1, a1->chunks[0]->prefix_sig);

  // A window the mutable tail CAN affect is salted with the version:
  // never shared across versions, so appends invalidate it.
  provenance::ComplaintSet on_income =
      ComplaintOn(a1->dirty, 2, 0, a1->dirty.slot(2).values[0] + 1);
  const uint64_t inc1 = cache::WindowSignature(*a1.dataset(), on_income);
  provenance::ComplaintSet on_income2 =
      ComplaintOn(a2->dirty, 2, 0, a2->dirty.slot(2).values[0] + 1);
  const uint64_t inc2 = cache::WindowSignature(*a2.dataset(), on_income2);
  EXPECT_NE(inc1, inc2);
  EXPECT_NE(inc1, sig1);
}

TEST(WindowSignatureTest, EmptyWindowIsRootAnchored) {
  // No query in the paper log writes income for tid 0, and slot 0 is
  // not INSERT-born: the window is empty and degenerates to the
  // root-anchored empty-prefix signature.
  cache::Snapshot first =
      cache::MakeSnapshot(test::PaperLog(85700), test::TaxD0(), "t");
  provenance::ComplaintSet on_income =
      ComplaintOn(first->dirty, 0, 0, first->dirty.slot(0).values[0] + 1);
  EXPECT_EQ(cache::WindowSignature(*first.dataset(), on_income),
            ingest::EmptyPrefixSig(first->root));

  // A re-registration of the same content mints a fresh root, so the
  // degenerate signature still never collides across registrations.
  cache::Snapshot second =
      cache::MakeSnapshot(test::PaperLog(85700), test::TaxD0(), "t");
  EXPECT_NE(cache::WindowSignature(*first.dataset(), on_income),
            cache::WindowSignature(*second.dataset(), on_income));
}

// ---------------------------------------------------------------------------
// EncodingCache

TEST(EncodingCacheTest, LruEvictionAndInvalidation) {
  // Size the budget in units of one cached fixture state.
  auto state = [] {
    return std::make_shared<const Database>(test::TaxD0().Clone());
  };
  size_t per_entry = 0;
  {
    ingest::EncodingCache probe(1 << 20);
    probe.Put("p", 1, state());
    per_entry = probe.stats().bytes;
    ASSERT_GT(per_entry, 0u);
  }

  ingest::EncodingCache cache(2 * per_entry + per_entry / 2);
  cache.Put("d", 1, state());
  cache.Put("d", 2, state());
  EXPECT_NE(cache.Get("d", 1), nullptr);  // refresh: sig 2 is now LRU
  cache.Put("d", 3, state());             // evicts sig 2
  EXPECT_NE(cache.Get("d", 1), nullptr);
  EXPECT_EQ(cache.Get("d", 2), nullptr);
  EXPECT_NE(cache.Get("d", 3), nullptr);
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, stats.capacity_bytes);

  // EraseDataset drops exactly the named dataset's entries.
  ingest::EncodingCache wide(1 << 20);
  wide.Put("d", 1, state());
  wide.Put("d", 2, state());
  wide.Put("other", 1, state());
  wide.EraseDataset("d");
  EXPECT_EQ(wide.Get("d", 1), nullptr);
  EXPECT_EQ(wide.Get("d", 2), nullptr);
  EXPECT_NE(wide.Get("other", 1), nullptr);
  EXPECT_EQ(wide.stats().invalidations, 2u);
  EXPECT_EQ(wide.stats().entries, 1u);
}

TEST(EncodingCacheTest, GetOrComputeWalksBackToCachedAncestors) {
  cache::Snapshot base =
      cache::MakeSnapshot(test::PaperLog(85700), test::TaxD0(), "t");
  QueryLog tail;
  tail.push_back(IncomeBumpQuery(100, 86000));
  cache::Snapshot a1 = cache::AppendSnapshot(base, tail);
  QueryLog tail2;
  tail2.push_back(IncomeBumpQuery(50, 90000));
  cache::Snapshot a2 = cache::AppendSnapshot(a1, tail2);
  ASSERT_EQ(a2->chunks.size(), 2u);

  ingest::EncodingCache cache(1 << 20);
  // Boundary 0 (after the original 3-query log): cold compute from D0.
  auto s0 = cache.GetOrCompute("t", a2->chunks, 0, a2->d0(), a2->log);
  ASSERT_NE(s0, nullptr);
  ExpectSameState(*s0, base->dirty);
  auto stats = cache.stats();
  EXPECT_EQ(stats.computes, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // Boundary 1: a miss, but the walk-back finds boundary 0 and replays
  // only the one-query gap instead of the whole prefix.
  auto s1 = cache.GetOrCompute("t", a2->chunks, 1, a2->d0(), a2->log);
  ASSERT_NE(s1, nullptr);
  ExpectSameState(*s1, a1->dirty);
  stats = cache.stats();
  EXPECT_EQ(stats.computes, 2u);
  EXPECT_EQ(stats.misses, 2u);

  // Exact repeat: pure hit, no replay.
  auto s1_again = cache.GetOrCompute("t", a2->chunks, 1, a2->d0(), a2->log);
  EXPECT_EQ(s1_again.get(), s1.get());
  stats = cache.stats();
  EXPECT_EQ(stats.computes, 2u);
  EXPECT_EQ(stats.hits, 1u);

  // Cached states are owned clones, never aliases into the lineage.
  EXPECT_NE(s0.get(), &base->dirty);
  EXPECT_NE(s1.get(), &a1->dirty);
}

// ---------------------------------------------------------------------------
// Encoder prefix reuse: identical diagnosis, tail-only re-encode

TEST(EncoderPrefixTest, PrefixReuseMatchesFullEncode) {
  // Correct base log (threshold 87500), then an appended income bump
  // whose predicate wrongly catches tid 2 (86000 >= 86000). The
  // complaint says tid 2's income should never have been bumped; the
  // minimal repair nudges the appended threshold to 86001.
  cache::Snapshot base =
      cache::MakeSnapshot(test::PaperLog(87500), test::TaxD0(), "t");
  QueryLog tail;
  tail.push_back(IncomeBumpQuery(100, 86000));
  cache::Snapshot appended = cache::AppendSnapshot(base, tail);
  ASSERT_EQ(appended->chunks.size(), 1u);

  provenance::ComplaintSet complaints =
      ComplaintOn(appended->dirty, 2, 0, 86000);

  qfixcore::QFixOptions without_cache;
  auto full = qfixcore::QFixEngine(appended, complaints, without_cache)
                  .RepairIncremental(1);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  ingest::EncodingCache cache(1 << 20);
  qfixcore::QFixOptions with_cache;
  with_cache.encoding_cache = &cache;
  auto reused = qfixcore::QFixEngine(appended, complaints, with_cache)
                    .RepairIncremental(1);
  ASSERT_TRUE(reused.ok()) << reused.status().ToString();
  EXPECT_GE(cache.stats().computes, 1u);

  // Identical diagnosis: same changed query, distance, and MILP shape
  // (the folded prefix contributes zero variables either way).
  ASSERT_EQ(full->changed_queries, std::vector<size_t>({3}));
  EXPECT_EQ(reused->changed_queries, full->changed_queries);
  EXPECT_DOUBLE_EQ(reused->distance, full->distance);
  EXPECT_TRUE(full->verified);
  EXPECT_TRUE(reused->verified);
  EXPECT_EQ(full->collateral, 0u);
  EXPECT_EQ(reused->collateral, 0u);
  EXPECT_EQ(reused->stats.num_vars, full->stats.num_vars);
  EXPECT_EQ(reused->stats.num_constraints, full->stats.num_constraints);

  // Both repaired logs replay to the complained-about state.
  ExpectSameState(relational::ExecuteLog(reused->log, base->d0()),
                  relational::ExecuteLog(full->log, base->d0()));
  Database repaired = relational::ExecuteLog(reused->log, base->d0());
  EXPECT_DOUBLE_EQ(repaired.slot(2).values[0], 86000);

  // A second engine over the same snapshot hits the memoized boundary.
  auto again = qfixcore::QFixEngine(appended, complaints, with_cache)
                   .RepairIncremental(1);
  ASSERT_TRUE(again.ok());
  EXPECT_GE(cache.stats().hits, 1u);
}

// ---------------------------------------------------------------------------
// DatasetRegistry::Append

size_t FixtureBytes() {
  DatasetRegistry probe;
  auto ds = probe.Register("probe", kTaxD0Csv, "Taxes", kTaxLogSql);
  EXPECT_TRUE(ds.ok());
  return service::ApproxDatasetBytes(**ds);
}

TEST(RegistryAppendTest, AppendRecomputesBytesAndPublishesDerived) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register("a", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  auto base = registry.Get("a");
  ASSERT_NE(base, nullptr);
  const size_t bytes_before = registry.stats().bytes;

  // Registration seals the initial log into chunk 0 (empty tail).
  EXPECT_EQ(base->chunks.size(), 1u);
  EXPECT_EQ(base->tail_begin(), 3u);

  auto appended = registry.Append("a", kIncomeBumpSql);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ((*appended)->log.size(), 4u);
  EXPECT_EQ((*appended)->chunks.size(), 1u);
  EXPECT_EQ((*appended)->chunks[0].get(), base->chunks[0].get());
  EXPECT_EQ((*appended)->tail_begin(), 3u);
  EXPECT_EQ((*appended)->root, base->version);
  EXPECT_NE((*appended)->version, base->version);
  EXPECT_EQ(registry.Get("a").get(), appended->get());

  // Byte accounting tracks the grown head version exactly.
  auto stats = registry.stats();
  EXPECT_GT(stats.bytes, bytes_before);
  EXPECT_EQ(stats.bytes, service::ApproxDatasetBytes(**appended));
  EXPECT_EQ(stats.appends, 1u);
  EXPECT_EQ(stats.chunks, 1u);
}

TEST(RegistryAppendTest, FailedAppendsLeavePriorVersionUntouched) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register("a", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  auto before = registry.Get("a");
  ASSERT_NE(before, nullptr);

  EXPECT_TRUE(registry.Append("missing", kIncomeBumpSql)
                  .status().IsNotFound());
  EXPECT_TRUE(registry.Append("a", "THIS IS NOT SQL;")
                  .status().IsInvalidArgument());
  EXPECT_TRUE(registry.Append("a", "").status().IsInvalidArgument());
  const std::string three =
      std::string(kIncomeBumpSql) + kIncomeBumpSql + kIncomeBumpSql;
  EXPECT_TRUE(registry.Append("a", three, /*max_queries=*/2)
                  .status().IsResourceExhausted());

  // Atomicity: the registered version is the SAME object, not merely an
  // equal one — nothing was half-applied.
  EXPECT_EQ(registry.Get("a").get(), before.get());
  EXPECT_EQ(registry.stats().appends, 0u);
  EXPECT_EQ(registry.stats().chunks, 1u);  // the registration seal only
}

TEST(RegistryAppendTest, ReRegisterAfterAppendMintsFreshRoot) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register("a", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  ASSERT_TRUE(registry.Append("a", kIncomeBumpSql).ok());
  const uint64_t old_root = registry.Get("a")->root;

  ASSERT_TRUE(registry.Register("a", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  auto fresh = registry.Get("a");
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->log.size(), 3u);
  EXPECT_EQ(fresh->root, fresh->version);
  EXPECT_NE(fresh->root, old_root);
  // A fresh registration seal, not an inherited chunk: the new chunk 0
  // chains from the NEW root, so no signature survives re-registration.
  ASSERT_EQ(fresh->chunks.size(), 1u);
  EXPECT_EQ(fresh->chunks[0]->prefix_sig,
            ingest::MixHash(ingest::EmptyPrefixSig(fresh->root),
                            fresh->chunks[0]->id));
}

TEST(RegistryAppendTest, LineagePinsEvictionWhileAncestorsAreRead) {
  RegistryOptions options;
  options.max_bytes = 2 * FixtureBytes() + FixtureBytes() / 2;
  DatasetRegistry registry(options);
  ASSERT_TRUE(
      registry.Register("keep", kTaxD0Csv, "Taxes", kTaxLogSql).ok());

  // An in-flight solve holds the PRE-append version; the head is then
  // superseded by an append. The held ancestor shares chunks with the
  // head, so the name must be pinned exactly like a referenced head.
  std::shared_ptr<const service::Dataset> held = registry.Get("keep");
  ASSERT_NE(held, nullptr);
  ASSERT_TRUE(registry.Append("keep", kIncomeBumpSql).ok());

  ASSERT_TRUE(registry.Register("b", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  ASSERT_TRUE(registry.Register("c", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  ASSERT_TRUE(registry.Register("d", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  auto still = registry.Get("keep");
  ASSERT_NE(still, nullptr);
  EXPECT_EQ(still->log.size(), 4u);
  still.reset();

  // Ancestor released: the pin is gone, and byte pressure may collect
  // the name like anyone else once it ages to the LRU tail.
  held.reset();
  ASSERT_TRUE(registry.Register("e", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  ASSERT_TRUE(registry.Register("f", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  ASSERT_TRUE(registry.Register("g", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  EXPECT_EQ(registry.Get("keep"), nullptr);
}

// ---------------------------------------------------------------------------
// /v1/datasets/{name}/append end-to-end

class IngestServerTest : public testing::Test {
 protected:
  void StartServer(service::ServerOptions options) {
    server_ = std::make_unique<service::DiagnosisServer>(options);
    ASSERT_TRUE(server_->Start().ok());
    port_ = server_->port();
    ASSERT_GT(port_, 0);
  }

  service::HttpResponse Post(const std::string& path,
                             const std::string& body) {
    auto r = service::HttpPost("127.0.0.1", port_, path, body, 60.0);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : service::HttpResponse{};
  }

  service::HttpResponse Get(const std::string& path) {
    auto r = service::HttpGet("127.0.0.1", port_, path);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : service::HttpResponse{};
  }

  std::string RegisterTaxesBody() {
    JsonWriter w;
    w.BeginObject();
    w.Key("name");
    w.String("taxes");
    w.Key("table");
    w.String("Taxes");
    w.Key("d0_csv");
    w.String(kTaxD0Csv);
    w.Key("log_sql");
    w.String(kTaxLogSql);
    w.EndObject();
    return w.str();
  }

  std::string AppendBody(const std::string& sql) {
    JsonWriter w;
    w.BeginObject();
    w.Key("log_sql");
    w.String(sql);
    w.EndObject();
    return w.str();
  }

  std::string DiagnoseBody(const std::string& complaints_csv) {
    JsonWriter w;
    w.BeginObject();
    w.Key("dataset");
    w.String("taxes");
    w.Key("complaints_csv");
    w.String(complaints_csv);
    w.EndObject();
    return w.str();
  }

  std::unique_ptr<service::DiagnosisServer> server_;
  int port_ = 0;
};

TEST_F(IngestServerTest, AppendEndpointValidatesAndNeverHalfApplies) {
  service::ServerOptions options;
  options.max_append_queries = 2;
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);

  auto ok = Post("/v1/datasets/taxes/append", AppendBody(kIncomeBumpSql));
  ASSERT_EQ(ok.status, 200) << ok.body;
  auto doc = ParseJson(ok.body);
  ASSERT_TRUE(doc.ok()) << ok.body;
  EXPECT_EQ(doc->Find("name")->AsString(), "taxes");
  EXPECT_EQ(doc->Find("queries")->AsNumber(), 4.0);
  EXPECT_EQ(doc->Find("appended")->AsNumber(), 1.0);
  EXPECT_EQ(doc->Find("chunks")->AsNumber(), 1.0);

  // Structured refusals, none of them half-applied.
  EXPECT_EQ(Get("/v1/datasets/taxes/append").status, 405);
  EXPECT_EQ(Post("/v1/datasets/nope/append",
                 AppendBody(kIncomeBumpSql)).status, 404);
  EXPECT_EQ(Post("/v1/datasets/taxes/append", "not json").status, 400);
  EXPECT_EQ(Post("/v1/datasets/taxes/append", "{}").status, 400);
  EXPECT_EQ(Post("/v1/datasets/taxes/append",
                 AppendBody("NONSENSE;")).status, 400);
  const std::string three =
      std::string(kIncomeBumpSql) + kIncomeBumpSql + kIncomeBumpSql;
  auto oversized = Post("/v1/datasets/taxes/append", AppendBody(three));
  EXPECT_EQ(oversized.status, 413) << oversized.body;
  EXPECT_NE(oversized.body.find("\"error\""), std::string::npos);

  // The log still holds exactly 4 queries: the one successful append
  // landed, none of the refused ones did (even partially).
  auto after = Post("/v1/datasets/taxes/append", AppendBody(kIncomeBumpSql));
  ASSERT_EQ(after.status, 200) << after.body;
  auto after_doc = ParseJson(after.body);
  ASSERT_TRUE(after_doc.ok());
  EXPECT_EQ(after_doc->Find("queries")->AsNumber(), 5.0);
}

TEST_F(IngestServerTest, PreAppendWindowIsServedFromCacheAfterAppend) {
  service::ServerOptions options;
  options.jobs = 0;  // deterministic serial solves
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);

  // Complaints on owed/pay: the paper's Figure-2 diagnosis.
  const std::string complaints =
      "tid,alive,income,owed,pay\n"
      "2,1,86000,21500,64500\n"
      "3,1,86500,21625,64875\n";
  auto cold = Post("/v1/diagnose", DiagnoseBody(complaints));
  ASSERT_EQ(cold.status, 200) << cold.body;
  EXPECT_NE(cold.body.find("\"cached\":false"), std::string::npos);

  // Append income-only queries: outside the owed/pay window (and
  // matching nothing, so the complaints stay consistent with dirty).
  ASSERT_EQ(Post("/v1/datasets/taxes/append",
                 AppendBody(kIncomeNoopSql)).status, 200);

  // The same diagnosis after the append: served from cache, no solve.
  auto warm = Post("/v1/diagnose", DiagnoseBody(complaints));
  ASSERT_EQ(warm.status, 200) << warm.body;
  EXPECT_NE(warm.body.find("\"cached\":true"), std::string::npos)
      << warm.body;
  EXPECT_EQ(server_->stats().cached_hits, 1u);

  // The ingest block surfaces the append.
  auto stats = Get("/v1/stats");
  ASSERT_EQ(stats.status, 200);
  auto sdoc = ParseJson(stats.body);
  ASSERT_TRUE(sdoc.ok());
  const JsonValue* ingest = sdoc->Find("ingest");
  ASSERT_NE(ingest, nullptr) << stats.body;
  EXPECT_EQ(ingest->Find("appends")->AsNumber(), 1.0);
  EXPECT_EQ(ingest->Find("chunks")->AsNumber(), 1.0);
  EXPECT_EQ(ingest->Find("appended_queries")->AsNumber(), 1.0);
}

TEST_F(IngestServerTest, TailDiagnosisReusesTheSealedPrefix) {
  service::ServerOptions options;
  options.jobs = 0;
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);
  ASSERT_EQ(Post("/v1/datasets/taxes/append",
                 AppendBody(kIncomeBumpSql)).status, 200);

  // Dirty tid 2 after the buggy base log (threshold 85700) and the
  // appended bump: income 86100, owed 25800, pay 60200. The complaint
  // disagrees on income only — the appended query's doing.
  auto diag = Post("/v1/diagnose",
                   DiagnoseBody("tid,alive,income,owed,pay\n"
                                "2,1,86000,25800,60200\n"));
  ASSERT_EQ(diag.status, 200) << diag.body;
  auto doc = ParseJson(diag.body);
  ASSERT_TRUE(doc.ok()) << diag.body;
  EXPECT_TRUE(doc->Find("ok")->AsBool());
  EXPECT_TRUE(doc->Find("report")->Find("verified")->AsBool());

  // The solve re-encoded only the appended tail: the sealed 3-query
  // prefix came straight out of the encoding cache (the append warmed
  // the boundary, so this is a pure hit — zero prefix replays).
  auto sdoc = ParseJson(Get("/v1/stats").body);
  ASSERT_TRUE(sdoc.ok());
  const JsonValue* ingest = sdoc->Find("ingest");
  ASSERT_NE(ingest, nullptr);
  EXPECT_GE(ingest->Find("prefix_hits")->AsNumber(), 1.0);

  // Append again and diagnose the new tail: the second append seals
  // the first one's query into chunk 1 and warms that boundary too.
  ASSERT_EQ(Post("/v1/datasets/taxes/append",
                 AppendBody(kIncomeBumpSql)).status, 200);
  auto diag2 = Post("/v1/diagnose",
                    DiagnoseBody("tid,alive,income,owed,pay\n"
                                 "2,1,86100,25800,60200\n"));
  ASSERT_EQ(diag2.status, 200) << diag2.body;
  auto doc2 = ParseJson(diag2.body);
  ASSERT_TRUE(doc2.ok());
  EXPECT_TRUE(doc2->Find("ok")->AsBool());
  sdoc = ParseJson(Get("/v1/stats").body);
  ASSERT_TRUE(sdoc.ok());
  EXPECT_GE(sdoc->Find("ingest")->Find("prefix_hits")->AsNumber(), 2.0);
}

// ---------------------------------------------------------------------------
// Concurrency (TSan lane): append vs diagnose vs eviction

TEST(IngestConcurrencyTest, ConcurrentAppendDiagnoseAndEviction) {
  RegistryOptions options;
  options.max_bytes = 4 * FixtureBytes();
  DatasetRegistry registry(options);
  cache::ReportCache report_cache(1 << 20);
  ingest::EncodingCache encoding_cache(1 << 20);
  registry.AttachReportCache(&report_cache);
  registry.AttachEncodingCache(&encoding_cache);
  ASSERT_TRUE(
      registry.Register("shared", kTaxD0Csv, "Taxes", kTaxLogSql).ok());

  std::vector<std::thread> threads;
  // Appender: grows "shared" one income query at a time. Under byte
  // pressure the name may get evicted between appends — NotFound is an
  // acceptable outcome, torn state is not.
  threads.emplace_back([&registry] {
    for (int i = 0; i < 25; ++i) {
      auto r = registry.Append("shared", kIncomeBumpSql);
      if (!r.ok()) {
        ASSERT_TRUE(r.status().IsNotFound()) << r.status().ToString();
        auto re = registry.Register("shared", kTaxD0Csv, "Taxes",
                                    kTaxLogSql);
        ASSERT_TRUE(re.ok());
      }
    }
  });
  // Diagnoser: solves against whatever version is current, with both
  // caches live (the engine reads chunk prefixes the appender extends).
  threads.emplace_back([&registry, &report_cache, &encoding_cache] {
    qfixcore::BatchOptions batch_options;
    batch_options.jobs = 0;
    batch_options.report_cache = &report_cache;
    qfixcore::BatchDiagnoser diagnoser(batch_options);
    for (int i = 0; i < 8; ++i) {
      std::shared_ptr<const service::Dataset> ds = registry.Get("shared");
      if (ds == nullptr) continue;
      ASSERT_GE(ds->log.size(), 3u);
      provenance::ComplaintSet complaints = ComplaintOn(
          ds->dirty, 2, 2, ds->dirty.slot(2).values[2] + 1 + i);
      qfixcore::QFixOptions qopts;
      qopts.time_limit_seconds = 30.0;
      qopts.encoding_cache = &encoding_cache;
      qfixcore::BatchItem item = qfixcore::MakeBatchItem(
          cache::Snapshot(ds), std::move(complaints), qopts, /*k=*/1);
      auto results = diagnoser.Run({item});
      ASSERT_EQ(results.size(), 1u);
      // Feasibility depends on the racing log contents; crashes and
      // torn reads are the failure mode under test, not infeasibility.
    }
  });
  // Evictor: registers filler names to keep byte pressure on, which
  // also exercises append-vs-evict and the cache invalidation paths.
  threads.emplace_back([&registry] {
    for (int i = 0; i < 20; ++i) {
      auto r = registry.Register("filler" + std::to_string(i % 5),
                                 kTaxD0Csv, "Taxes", kTaxLogSql);
      ASSERT_TRUE(r.ok());
    }
  });
  for (std::thread& t : threads) t.join();

  // Whatever survived is coherent.
  std::shared_ptr<const service::Dataset> final_ds = registry.Get("shared");
  if (final_ds != nullptr) {
    EXPECT_GE(final_ds->log.size(), 3u);
    ExpectSameState(final_ds->dirty,
                    relational::ExecuteLog(final_ds->log, final_ds->d0()));
  }
  // Byte accounting stayed consistent with the surviving entries. (A
  // single appended dataset may legitimately exceed the budget — the
  // entry being published is never its own eviction victim — so the
  // invariant is exact accounting, not bytes <= capacity.)
  size_t expected_bytes = 0;
  std::vector<std::string> names = {"shared"};
  for (int i = 0; i < 5; ++i) names.push_back("filler" + std::to_string(i));
  for (const std::string& n : names) {
    auto ds = registry.Get(n);
    if (ds != nullptr) expected_bytes += service::ApproxDatasetBytes(*ds);
  }
  EXPECT_EQ(registry.stats().bytes, expected_bytes);
}

}  // namespace
}  // namespace qfix
