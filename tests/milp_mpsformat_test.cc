// Tests for the free-MPS writer/reader (milp/mps_format.h): section
// coverage, bound-type semantics (including the historical quirks),
// error reporting, and cross-format equivalence with the LP format on
// random models.
#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "milp/lp_format.h"
#include "milp/model.h"
#include "milp/mps_format.h"
#include "milp/solver.h"

namespace qfix {
namespace milp {
namespace {

Model SmallMip() {
  Model m;
  VarId x = m.AddContinuous(0, 10, "x");
  VarId y = m.AddBinary("y");
  VarId z = m.AddVariable(VarType::kInteger, -3, 7, "z");
  m.AddConstraint({{x, 1.0}, {y, 5.0}}, Sense::kLe, 8.0);
  m.AddConstraint({{x, 2.0}, {z, -1.0}}, Sense::kGe, 1.0);
  m.AddConstraint({{y, 1.0}, {z, 1.0}}, Sense::kEq, 2.0);
  m.AddObjectiveTerm(x, 1.0);
  m.AddObjectiveTerm(z, 3.0);
  m.AddObjectiveConstant(4.0);
  return m;
}

TEST(MpsWriterTest, WritesAllSections) {
  std::string text = WriteMpsFormat(SmallMip(), "small");
  EXPECT_NE(text.find("NAME small"), std::string::npos);
  EXPECT_NE(text.find("ROWS"), std::string::npos);
  EXPECT_NE(text.find(" N obj"), std::string::npos);
  EXPECT_NE(text.find(" L c0"), std::string::npos);
  EXPECT_NE(text.find(" G c1"), std::string::npos);
  EXPECT_NE(text.find(" E c2"), std::string::npos);
  EXPECT_NE(text.find("COLUMNS"), std::string::npos);
  EXPECT_NE(text.find("'INTORG'"), std::string::npos);
  EXPECT_NE(text.find("'INTEND'"), std::string::npos);
  EXPECT_NE(text.find("RHS"), std::string::npos);
  EXPECT_NE(text.find("BOUNDS"), std::string::npos);
  EXPECT_NE(text.find(" BV bnd y"), std::string::npos);
  EXPECT_NE(text.find("ENDATA"), std::string::npos);
}

TEST(MpsRoundTrip, SmallMipSurvives) {
  Model m = SmallMip();
  Result<Model> back = ReadMpsFormat(WriteMpsFormat(m));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumVars(), m.NumVars());
  EXPECT_EQ(back->NumConstraints(), m.NumConstraints());
  EXPECT_EQ(back->NumIntegerVars(), m.NumIntegerVars());
  EXPECT_EQ(back->type(1), VarType::kBinary);
  EXPECT_EQ(back->type(2), VarType::kInteger);
  EXPECT_DOUBLE_EQ(back->lb(2), -3.0);
  EXPECT_DOUBLE_EQ(back->ub(2), 7.0);
  EXPECT_DOUBLE_EQ(back->objective_constant(), 4.0);
}

TEST(MpsReaderTest, ParsesHandWrittenDocument) {
  const char* text =
      "* a comment\n"
      "NAME test\n"
      "ROWS\n"
      " N cost\n"
      " L cap\n"
      "COLUMNS\n"
      " x cost 2 cap 1\n"
      " y cost 3 cap 2\n"
      "RHS\n"
      " rhs cap 10\n"
      "BOUNDS\n"
      " UP bnd x 4\n"
      "ENDATA\n";
  Result<Model> m = ReadMpsFormat(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->NumVars(), 2);
  EXPECT_EQ(m->NumConstraints(), 1);
  EXPECT_DOUBLE_EQ(m->ub(0), 4.0);
  EXPECT_EQ(m->ub(1), kInf);
  EXPECT_DOUBLE_EQ(m->constraint(0).rhs, 10.0);
  EXPECT_DOUBLE_EQ(m->EvalObjective({1.0, 2.0}), 8.0);
}

TEST(MpsReaderTest, BoundTypeSemantics) {
  const char* text =
      "NAME b\nROWS\n N obj\n"
      "COLUMNS\n a obj 1\n b obj 1\n c obj 1\n d obj 1\n e obj 1\n"
      "BOUNDS\n"
      " FX bnd a 3\n"
      " FR bnd b\n"
      " MI bnd c\n"
      " UP bnd c 9\n"
      " UP bnd d -2\n"  // negative UP without LO implies lb = -inf
      " LO bnd e 1\n"
      "ENDATA\n";
  Result<Model> m = ReadMpsFormat(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_DOUBLE_EQ(m->lb(0), 3.0);
  EXPECT_DOUBLE_EQ(m->ub(0), 3.0);
  EXPECT_EQ(m->lb(1), -kInf);
  EXPECT_EQ(m->ub(1), kInf);
  EXPECT_EQ(m->lb(2), -kInf);
  EXPECT_DOUBLE_EQ(m->ub(2), 9.0);
  EXPECT_EQ(m->lb(3), -kInf);
  EXPECT_DOUBLE_EQ(m->ub(3), -2.0);
  EXPECT_DOUBLE_EQ(m->lb(4), 1.0);
}

TEST(MpsReaderTest, ObjsenseMaxNegates) {
  const char* text =
      "NAME x\nOBJSENSE MAX\nROWS\n N obj\n"
      "COLUMNS\n x obj 3\n"
      "RHS\n rhs obj -1\n"
      "ENDATA\n";
  Result<Model> m = ReadMpsFormat(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_DOUBLE_EQ(m->objective()[0], -3.0);
  EXPECT_DOUBLE_EQ(m->objective_constant(), -1.0);
}

TEST(MpsReaderTest, RejectsMalformedDocuments) {
  // Missing ENDATA.
  EXPECT_FALSE(ReadMpsFormat("NAME t\nROWS\n N obj\n").ok());
  // Unknown row in COLUMNS.
  EXPECT_FALSE(ReadMpsFormat("NAME t\nROWS\n N obj\nCOLUMNS\n"
                             " x nosuch 1\nENDATA\n")
                   .ok());
  // Unknown bound type.
  EXPECT_FALSE(ReadMpsFormat("NAME t\nROWS\n N obj\nCOLUMNS\n x obj 1\n"
                             "BOUNDS\n ZZ bnd x 1\nENDATA\n")
                   .ok());
  // Unsupported section.
  EXPECT_FALSE(ReadMpsFormat("NAME t\nROWS\n N obj\nRANGES\nENDATA\n").ok());
  // Duplicate row.
  EXPECT_FALSE(
      ReadMpsFormat("NAME t\nROWS\n L r\n L r\nENDATA\n").ok());
  // Malformed number.
  EXPECT_FALSE(ReadMpsFormat("NAME t\nROWS\n N obj\nCOLUMNS\n"
                             " x obj abc\nENDATA\n")
                   .ok());
}

TEST(MpsFileTest, RoundTripsThroughDisk) {
  Model m = SmallMip();
  std::string path = testing::TempDir() + "/qfix_mps_test.mps";
  ASSERT_TRUE(WriteMpsFile(m, path).ok());
  Result<Model> back = ReadMpsFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumVars(), m.NumVars());
}

// ---------------------------------------------------------------------
// Cross-format property: MPS and LP round-trips agree with the original
// model's optimum.
// ---------------------------------------------------------------------

Model RandomModel(Rng& rng) {
  Model m;
  int nvars = static_cast<int>(rng.UniformInt(1, 8));
  for (int v = 0; v < nvars; ++v) {
    double roll = rng.UniformReal(0, 1);
    if (roll < 0.4) {
      m.AddBinary("b" + std::to_string(v));
    } else if (roll < 0.6) {
      m.AddVariable(VarType::kInteger, rng.UniformInt(-5, 0),
                    rng.UniformInt(1, 6), "i" + std::to_string(v));
    } else {
      double lb = rng.UniformReal(-10, 0);
      m.AddContinuous(lb, lb + rng.UniformReal(0.5, 12),
                      "x" + std::to_string(v));
    }
    if (rng.Bernoulli(0.7)) {
      m.AddObjectiveTerm(v, std::round(rng.UniformReal(-4, 4) * 4) / 4);
    }
  }
  int ncons = static_cast<int>(rng.UniformInt(1, 10));
  for (int c = 0; c < ncons; ++c) {
    LinearTerms terms;
    for (int v = 0; v < nvars; ++v) {
      if (rng.Bernoulli(0.5)) {
        terms.push_back({v, std::round(rng.UniformReal(-3, 3) * 2) / 2});
      }
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    Sense sense = c % 3 == 0   ? Sense::kLe
                  : c % 3 == 1 ? Sense::kGe
                               : Sense::kEq;
    m.AddConstraint(std::move(terms), sense,
                    std::round(rng.UniformReal(-6, 6)));
  }
  m.AddObjectiveConstant(std::round(rng.UniformReal(-2, 2)));
  return m;
}

class MpsCrossFormatTest : public testing::TestWithParam<int> {};

TEST_P(MpsCrossFormatTest, MpsAndLpRoundTripsShareTheOptimum) {
  Rng rng(6100 + GetParam());
  Model m = RandomModel(rng);
  Result<Model> via_mps = ReadMpsFormat(WriteMpsFormat(m));
  ASSERT_TRUE(via_mps.ok()) << via_mps.status().ToString();
  Result<Model> via_lp = ReadLpFormat(WriteLpFormat(m));
  ASSERT_TRUE(via_lp.ok()) << via_lp.status().ToString();

  MilpOptions options;
  options.time_limit_seconds = 10.0;
  MilpSolver solver(options);
  MilpSolution a = solver.Solve(m);
  MilpSolution b = solver.Solve(*via_mps);
  MilpSolution c = solver.Solve(*via_lp);
  ASSERT_EQ(a.status, b.status) << "mps round-trip changed status";
  ASSERT_EQ(a.status, c.status) << "lp round-trip changed status";
  if (HasSolution(a.status)) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6);
    EXPECT_NEAR(a.objective, c.objective, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, MpsCrossFormatTest,
                         testing::Range(0, 20));

}  // namespace
}  // namespace milp
}  // namespace qfix
