// Tests for presolve probing (milp/presolve.h ProbeBinaries): fixing via
// one-side contradictions, union bound tightening, infeasibility proofs,
// trail rewinding, and the property that probing never cuts off the
// optimum on random models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "milp/model.h"
#include "milp/presolve.h"
#include "milp/solver.h"

namespace qfix {
namespace milp {
namespace {

TEST(ProbingTest, FixesBinaryWhoseOneSideIsContradictory) {
  // b = 1 caps both x and y at 3 while x + y >= 12 needs 12 total. The
  // contradiction only appears when the rows interact, which plain
  // single-row propagation cannot see — probing can.
  Model m;
  VarId x = m.AddContinuous(0, 10, "x");
  VarId y = m.AddContinuous(0, 10, "y");
  VarId b = m.AddBinary("b");
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kGe, 12.0);
  m.AddConstraint({{x, 1.0}, {b, 10.0}}, Sense::kLe, 13.0);  // b=1: x <= 3
  m.AddConstraint({{y, 1.0}, {b, 10.0}}, Sense::kLe, 13.0);  // b=1: y <= 3

  Domains d = m.InitialDomains();
  ASSERT_TRUE(PropagateBounds(m, d, 10, nullptr).ok());
  ASSERT_FALSE(d.Fixed(b)) << "plain propagation should not fix b yet";

  ProbeResult result;
  ASSERT_TRUE(ProbeBinaries(m, d, 10, 1, nullptr, &result).ok());
  EXPECT_EQ(result.fixed_binaries, 1);
  EXPECT_TRUE(d.Fixed(b));
  EXPECT_DOUBLE_EQ(d.ub[b], 0.0);
}

TEST(ProbingTest, ProvesInfeasibilityWhenBothSidesDie) {
  // b = 0 forces x <= 0; b = 1 forces x >= 9; x is pinned to [4, 5].
  Model m;
  VarId x = m.AddContinuous(4, 5, "x");
  VarId b = m.AddBinary("b");
  m.AddConstraint({{x, 1.0}, {b, -10.0}}, Sense::kLe, 0.0);   // x <= 10 b
  m.AddConstraint({{x, 1.0}, {b, -9.0}}, Sense::kGe, 0.0);    // x >= 9 b

  Domains d = m.InitialDomains();
  Status s = ProbeBinaries(m, d, 10, 1, nullptr, nullptr);
  EXPECT_TRUE(s.IsInfeasible()) << s.ToString();
}

TEST(ProbingTest, UnionStepTightensContinuousBounds) {
  // b = 0 forces x = 2 and b = 1 forces x = 7, so globally x in [2, 7]
  // even though x starts with bounds [0, 100].
  Model m;
  VarId x = m.AddContinuous(0, 100, "x");
  VarId b = m.AddBinary("b");
  m.AddConstraint({{x, 1.0}, {b, -5.0}}, Sense::kEq, 2.0);  // x = 2 + 5 b

  Domains d = m.InitialDomains();
  ProbeResult result;
  ASSERT_TRUE(ProbeBinaries(m, d, 10, 1, nullptr, &result).ok());
  EXPECT_GE(result.tightened_bounds, 2);
  EXPECT_DOUBLE_EQ(d.lb[x], 2.0);
  EXPECT_DOUBLE_EQ(d.ub[x], 7.0);
}

TEST(ProbingTest, TrailRewindRestoresDomains) {
  Model m;
  VarId x = m.AddContinuous(0, 10, "x");
  VarId b = m.AddBinary("b");
  m.AddConstraint({{x, 1.0}}, Sense::kGe, 6.0);
  m.AddConstraint({{x, 1.0}, {b, -10.0}}, Sense::kLe, 0.0);

  Domains d = m.InitialDomains();
  Domains before = d;
  BoundTrail trail;
  ASSERT_TRUE(ProbeBinaries(m, d, 10, 1, &trail, nullptr).ok());
  ASSERT_FALSE(trail.empty());
  RewindTrail(d, trail, 0);
  for (VarId v = 0; v < m.NumVars(); ++v) {
    EXPECT_DOUBLE_EQ(d.lb[v], before.lb[v]);
    EXPECT_DOUBLE_EQ(d.ub[v], before.ub[v]);
  }
}

TEST(ProbingTest, SkipsFixedAndShrunkBinaries) {
  Model m;
  VarId b0 = m.AddBinary("b0");
  VarId b1 = m.AddBinary("b1");
  m.AddConstraint({{b0, 1.0}, {b1, 1.0}}, Sense::kLe, 2.0);
  Domains d = m.InitialDomains();
  d.lb[b0] = 1.0;  // already fixed
  d.ub[b0] = 1.0;
  ProbeResult result;
  ASSERT_TRUE(ProbeBinaries(m, d, 10, 1, nullptr, &result).ok());
  EXPECT_EQ(result.probed, 1);  // only b1
}

TEST(SolverProbingTest, ProbingStatsAreReported) {
  Model m;
  VarId x = m.AddContinuous(0, 10, "x");
  VarId y = m.AddContinuous(0, 10, "y");
  VarId b = m.AddBinary("b");
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kGe, 12.0);
  m.AddConstraint({{x, 1.0}, {b, 10.0}}, Sense::kLe, 13.0);
  m.AddConstraint({{y, 1.0}, {b, 10.0}}, Sense::kLe, 13.0);
  m.AddObjectiveTerm(x, 1.0);
  m.AddObjectiveTerm(y, 1.0);

  MilpOptions with;
  with.enable_probing = true;
  MilpSolution sol = MilpSolver(with).Solve(m);
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_EQ(sol.stats.probe_fixed, 1);
  EXPECT_NEAR(sol.objective, 12.0, 1e-6);

  MilpOptions without;
  without.enable_probing = false;
  MilpSolution sol2 = MilpSolver(without).Solve(m);
  ASSERT_EQ(sol2.status, MilpStatus::kOptimal);
  EXPECT_EQ(sol2.stats.probe_fixed, 0);
  EXPECT_DOUBLE_EQ(sol2.objective, sol.objective);
}

// ---------------------------------------------------------------------
// Property: probing preserves the optimum on random MILPs.
// ---------------------------------------------------------------------

Model RandomMip(Rng& rng) {
  Model m;
  int nbin = static_cast<int>(rng.UniformInt(2, 6));
  int ncont = static_cast<int>(rng.UniformInt(1, 4));
  for (int i = 0; i < nbin; ++i) m.AddBinary("b" + std::to_string(i));
  for (int i = 0; i < ncont; ++i) {
    m.AddContinuous(-5, 10, "x" + std::to_string(i));
  }
  int nvars = nbin + ncont;
  int ncons = static_cast<int>(rng.UniformInt(2, 8));
  for (int c = 0; c < ncons; ++c) {
    LinearTerms terms;
    for (int v = 0; v < nvars; ++v) {
      if (rng.Bernoulli(0.6)) {
        terms.push_back({v, static_cast<double>(rng.UniformInt(-4, 4))});
      }
    }
    if (terms.empty()) continue;
    m.AddConstraint(std::move(terms),
                    rng.Bernoulli(0.5) ? Sense::kLe : Sense::kGe,
                    static_cast<double>(rng.UniformInt(-6, 8)));
  }
  for (int v = 0; v < nvars; ++v) {
    m.AddObjectiveTerm(v, static_cast<double>(rng.UniformInt(-3, 3)));
  }
  return m;
}

class ProbingPropertyTest : public testing::TestWithParam<int> {};

TEST_P(ProbingPropertyTest, ProbingNeverChangesTheOptimum) {
  Rng rng(5150 + GetParam());
  Model m = RandomMip(rng);

  MilpOptions plain;
  plain.enable_probing = false;
  plain.time_limit_seconds = 10.0;
  MilpOptions probed = plain;
  probed.enable_probing = true;
  probed.probe_passes = 2;

  MilpSolution a = MilpSolver(plain).Solve(m);
  MilpSolution b = MilpSolver(probed).Solve(m);
  ASSERT_EQ(a.status, b.status)
      << MilpStatusToString(a.status) << " vs "
      << MilpStatusToString(b.status);
  if (HasSolution(a.status)) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6);
    EXPECT_TRUE(m.IsFeasible(b.x, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMips, ProbingPropertyTest,
                         testing::Range(0, 25));

// ---------------------------------------------------------------------
// Branching-rule property: pseudo-cost and most-fractional agree.
// ---------------------------------------------------------------------

class BranchRulePropertyTest : public testing::TestWithParam<int> {};

TEST_P(BranchRulePropertyTest, PseudoCostFindsTheSameOptimum) {
  Rng rng(7300 + GetParam());
  Model m = RandomMip(rng);

  MilpOptions frac;
  frac.branch_rule = BranchRule::kMostFractional;
  frac.time_limit_seconds = 10.0;
  MilpOptions pseudo = frac;
  pseudo.branch_rule = BranchRule::kPseudoCost;

  MilpSolution a = MilpSolver(frac).Solve(m);
  MilpSolution b = MilpSolver(pseudo).Solve(m);
  ASSERT_EQ(a.status, b.status)
      << MilpStatusToString(a.status) << " vs "
      << MilpStatusToString(b.status);
  if (HasSolution(a.status)) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6);
    EXPECT_TRUE(m.IsFeasible(b.x, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMips, BranchRulePropertyTest,
                         testing::Range(0, 25));

}  // namespace
}  // namespace milp
}  // namespace qfix
