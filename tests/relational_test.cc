#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/executor.h"
#include "relational/linear_expr.h"
#include "relational/predicate.h"
#include "relational/query.h"
#include "relational/schema.h"
#include "test_support.h"

namespace qfix {
namespace relational {
namespace {

using qfix::test::TaxD0;
using qfix::test::TaxSchema;

TEST(SchemaTest, NamesAndIndexes) {
  Schema s = TaxSchema();
  EXPECT_EQ(s.num_attrs(), 3u);
  EXPECT_EQ(s.attr_name(1), "owed");
  auto idx = s.AttrIndex("pay");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_TRUE(s.AttrIndex("bogus").status().IsNotFound());
}

TEST(SchemaTest, DefaultNames) {
  Schema s = Schema::WithDefaultNames(3);
  EXPECT_EQ(s.attr_name(0), "a0");
  EXPECT_EQ(s.attr_name(2), "a2");
}

TEST(LinearExprTest, EvalAndMerge) {
  // 2 * income - owed + 10
  LinearExpr e = LinearExpr::AttrScaled(0, 2.0, 10.0);
  e.AddTerm(1, -1.0);
  EXPECT_DOUBLE_EQ(e.Eval({100, 30, 0}), 180.0);
  e.AddTerm(0, 1.0);  // merges into coeff 3
  EXPECT_DOUBLE_EQ(e.Eval({100, 30, 0}), 280.0);
  EXPECT_EQ(e.terms().size(), 2u);
}

TEST(LinearExprTest, ArithmeticOperators) {
  LinearExpr a = LinearExpr::Attr(0);
  LinearExpr b = LinearExpr::AttrScaled(1, 2.0, 5.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.Eval({1, 1, 0}), 1 + 2 + 5);
  a -= b;
  EXPECT_TRUE(a == LinearExpr::Attr(0));
  a *= 3.0;
  EXPECT_DOUBLE_EQ(a.Eval({2, 0, 0}), 6.0);
}

TEST(LinearExprTest, IdentityAndConstant) {
  EXPECT_TRUE(LinearExpr::Attr(2).IsIdentityOf(2));
  EXPECT_FALSE(LinearExpr::Attr(2).IsIdentityOf(1));
  EXPECT_FALSE(LinearExpr::AttrScaled(2, 2.0).IsIdentityOf(2));
  EXPECT_TRUE(LinearExpr::Constant(4.0).IsConstant());
  EXPECT_FALSE(LinearExpr::Attr(0).IsConstant());
}

TEST(LinearExprTest, ReadSetSkipsZeroCoeffs) {
  LinearExpr e = LinearExpr::Attr(0);
  e.AddTerm(1, 0.0);
  AttrSet s = e.ReadSet(3);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_FALSE(s.Contains(1));
}

TEST(LinearExprTest, ToStringReadable) {
  Schema s = TaxSchema();
  LinearExpr e = LinearExpr::AttrScaled(0, 0.3);
  EXPECT_EQ(e.ToString(s), "income * 0.3");
  LinearExpr diff = LinearExpr::Attr(0);
  diff.AddTerm(1, -1.0);
  EXPECT_EQ(diff.ToString(s), "income - owed");
  EXPECT_EQ(LinearExpr::Constant(7).ToString(s), "7");
}

TEST(PredicateTest, ComparisonOps) {
  std::vector<double> v{10, 0, 0};
  auto atom = [&](CmpOp op, double rhs) {
    return Comparison{LinearExpr::Attr(0), op, rhs}.Eval(v);
  };
  EXPECT_TRUE(atom(CmpOp::kGe, 10));
  EXPECT_FALSE(atom(CmpOp::kGt, 10));
  EXPECT_TRUE(atom(CmpOp::kLe, 10));
  EXPECT_FALSE(atom(CmpOp::kLt, 10));
  EXPECT_TRUE(atom(CmpOp::kEq, 10));
  EXPECT_FALSE(atom(CmpOp::kNeq, 10));
  EXPECT_TRUE(atom(CmpOp::kNeq, 11));
}

TEST(PredicateTest, TreeEvalAndHelpers) {
  // income >= 100 AND (owed = 5 OR pay <= 3)
  Predicate p = Predicate::And(
      {Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 100}),
       Predicate::Or({Predicate::Atom({LinearExpr::Attr(1), CmpOp::kEq, 5}),
                      Predicate::Atom({LinearExpr::Attr(2), CmpOp::kLe, 3})})});
  EXPECT_TRUE(p.Eval({100, 5, 10}));
  EXPECT_TRUE(p.Eval({100, 6, 3}));
  EXPECT_FALSE(p.Eval({100, 6, 4}));
  EXPECT_FALSE(p.Eval({99, 5, 3}));
  EXPECT_EQ(p.NumAtoms(), 3u);
  AttrSet reads = p.ReadSet(3);
  EXPECT_EQ(reads.Count(), 3u);
}

TEST(PredicateTest, TrueAndBetween) {
  EXPECT_TRUE(Predicate::True().Eval({1, 2, 3}));
  Predicate b = Predicate::Between(0, 5, 10);
  EXPECT_TRUE(b.Eval({5, 0, 0}));
  EXPECT_TRUE(b.Eval({10, 0, 0}));
  EXPECT_FALSE(b.Eval({4, 0, 0}));
  EXPECT_FALSE(b.Eval({11, 0, 0}));
}

TEST(PredicateTest, ToStringNested) {
  Schema s = TaxSchema();
  Predicate p = Predicate::Or(
      {Predicate::And(
           {Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 1}),
            Predicate::Atom({LinearExpr::Attr(1), CmpOp::kLt, 2})}),
       Predicate::Atom({LinearExpr::Attr(2), CmpOp::kNeq, 3})});
  EXPECT_EQ(p.ToString(s), "income >= 1 AND owed < 2 OR pay <> 3");
}

TEST(QueryTest, UpdateAppliesSimultaneously) {
  // SET income = owed, owed = income must swap, not chain.
  Database db(TaxSchema(), "Taxes");
  db.AddTuple({1, 2, 0});
  Query q = Query::Update(
      "Taxes",
      {{0, LinearExpr::Attr(1)}, {1, LinearExpr::Attr(0)}},
      Predicate::True());
  ApplyQuery(q, db);
  EXPECT_DOUBLE_EQ(db.slot(0).values[0], 2);
  EXPECT_DOUBLE_EQ(db.slot(0).values[1], 1);
}

TEST(QueryTest, DeleteKeepsSlot) {
  Database db = TaxD0();
  Query q = Query::Delete(
      "Taxes", Predicate::Atom({LinearExpr::Attr(0), CmpOp::kLt, 10000}));
  ApplyQuery(q, db);
  EXPECT_EQ(db.NumSlots(), 4u);
  EXPECT_EQ(db.NumAlive(), 3u);
  EXPECT_FALSE(db.slot(0).alive);
  // Dead tuples are not updated afterwards.
  Query q2 = Query::Update("Taxes", {{1, LinearExpr::Constant(0)}},
                           Predicate::True());
  ApplyQuery(q2, db);
  EXPECT_DOUBLE_EQ(db.slot(0).values[1], 950);
  EXPECT_DOUBLE_EQ(db.slot(1).values[1], 0);
}

TEST(QueryTest, InsertAssignsNextTid) {
  Database db = TaxD0();
  Query q = Query::Insert("Taxes", {87000, 21750, 65250});
  ApplyQuery(q, db);
  EXPECT_EQ(db.NumSlots(), 5u);
  EXPECT_EQ(db.slot(4).tid, 4);
  EXPECT_DOUBLE_EQ(db.slot(4).values[0], 87000);
}

// Replays the full Figure 2 example and checks the corrupted final state
// the paper prints (D4 in the figure, including t5).
TEST(ExecutorTest, PaperRunningExample) {
  QueryLog log;
  // q1 (corrupted): UPDATE Taxes SET owed = income * 0.3
  //                 WHERE income >= 85700
  log.push_back(Query::Update(
      "Taxes", {{1, LinearExpr::AttrScaled(0, 0.3)}},
      Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 85700})));
  // q2: INSERT INTO Taxes VALUES (87000, 21750, 65250)
  log.push_back(Query::Insert("Taxes", {87000, 21750, 65250}));
  // q3: UPDATE Taxes SET pay = income - owed
  LinearExpr pay = LinearExpr::Attr(0);
  pay.AddTerm(1, -1.0);
  log.push_back(Query::Update("Taxes", {{2, pay}}, Predicate::True()));

  Database dn = ExecuteLog(log, TaxD0());
  ASSERT_EQ(dn.NumSlots(), 5u);
  // t1 untouched by q1; pay recomputed by q3 to the same value.
  EXPECT_DOUBLE_EQ(dn.slot(0).values[1], 950);
  EXPECT_DOUBLE_EQ(dn.slot(0).values[2], 8550);
  // t2..t4 hit by the corrupted predicate.
  EXPECT_DOUBLE_EQ(dn.slot(1).values[1], 27000);
  EXPECT_DOUBLE_EQ(dn.slot(1).values[2], 63000);
  EXPECT_DOUBLE_EQ(dn.slot(2).values[1], 25800);
  EXPECT_DOUBLE_EQ(dn.slot(2).values[2], 60200);
  EXPECT_DOUBLE_EQ(dn.slot(3).values[1], 25950);
  EXPECT_DOUBLE_EQ(dn.slot(3).values[2], 60550);
  // t5 inserted after q1, so only q3 touches it.
  EXPECT_DOUBLE_EQ(dn.slot(4).values[1], 21750);
  EXPECT_DOUBLE_EQ(dn.slot(4).values[2], 65250);
}

TEST(ExecutorTest, CleanLogGivesTrueState) {
  QueryLog clean;
  clean.push_back(Query::Update(
      "Taxes", {{1, LinearExpr::AttrScaled(0, 0.3)}},
      Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 87500})));
  clean.push_back(Query::Insert("Taxes", {87000, 21750, 65250}));
  LinearExpr pay = LinearExpr::Attr(0);
  pay.AddTerm(1, -1.0);
  clean.push_back(Query::Update("Taxes", {{2, pay}}, Predicate::True()));

  Database dn = ExecuteLog(clean, TaxD0());
  // t3, t4 keep their original owed under the correct predicate.
  EXPECT_DOUBLE_EQ(dn.slot(2).values[1], 21500);
  EXPECT_DOUBLE_EQ(dn.slot(2).values[2], 64500);
  EXPECT_DOUBLE_EQ(dn.slot(3).values[1], 21625);
  EXPECT_DOUBLE_EQ(dn.slot(3).values[2], 64875);
  // t2 (income 90000) is correctly re-rated.
  EXPECT_DOUBLE_EQ(dn.slot(1).values[1], 27000);
}

TEST(ExecutorTest, StatesEnumeratesAllPrefixes) {
  QueryLog log;
  log.push_back(Query::Update("T", {{1, LinearExpr::Constant(1)}},
                              Predicate::True()));
  log.push_back(Query::Update("T", {{1, LinearExpr::Constant(2)}},
                              Predicate::True()));
  Database d0(TaxSchema(), "T");
  d0.AddTuple({0, 0, 0});
  auto states = ExecuteLogStates(log, d0);
  ASSERT_EQ(states.size(), 3u);
  EXPECT_DOUBLE_EQ(states[0].slot(0).values[1], 0);
  EXPECT_DOUBLE_EQ(states[1].slot(0).values[1], 1);
  EXPECT_DOUBLE_EQ(states[2].slot(0).values[1], 2);
}

TEST(QueryParamsTest, UpdateParamOrderAndMutation) {
  // SET owed = income * 0.3 + 7 WHERE income >= 85700 AND pay <= 100
  Query q = Query::Update(
      "Taxes", {{1, LinearExpr::AttrScaled(0, 0.3, 7.0)}},
      Predicate::And(
          {Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 85700}),
           Predicate::Atom({LinearExpr::Attr(2), CmpOp::kLe, 100})}));
  auto params = q.Params();
  // set constant, set coeff, two where rhs.
  ASSERT_EQ(params.size(), 4u);
  EXPECT_DOUBLE_EQ(q.GetParam(params[0]), 7.0);
  EXPECT_DOUBLE_EQ(q.GetParam(params[1]), 0.3);
  EXPECT_DOUBLE_EQ(q.GetParam(params[2]), 85700.0);
  EXPECT_DOUBLE_EQ(q.GetParam(params[3]), 100.0);

  q.SetParam(params[2], 87500.0);
  EXPECT_DOUBLE_EQ(q.GetParam(params[2]), 87500.0);
  EXPECT_FALSE(q.Matches({86000, 0, 0}));
  EXPECT_TRUE(q.Matches({88000, 0, 0}));
}

TEST(QueryParamsTest, InsertAndDeleteParams) {
  Query ins = Query::Insert("T", {1, 2, 3});
  ASSERT_EQ(ins.NumParams(), 3u);
  auto p = ins.Params();
  EXPECT_DOUBLE_EQ(ins.GetParam(p[1]), 2.0);
  ins.SetParam(p[1], 9.0);
  EXPECT_DOUBLE_EQ(ins.insert_values()[1], 9.0);

  Query del = Query::Delete(
      "T", Predicate::Atom({LinearExpr::Attr(0), CmpOp::kEq, 5}));
  ASSERT_EQ(del.NumParams(), 1u);
  EXPECT_DOUBLE_EQ(del.GetParam(del.Params()[0]), 5.0);
}

TEST(QueryImpactTest, DirectImpactAndDependency) {
  LinearExpr pay = LinearExpr::Attr(0);
  pay.AddTerm(1, -1.0);
  Query q = Query::Update(
      "Taxes", {{2, pay}},
      Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 0}));
  AttrSet impact = q.DirectImpact(3);
  EXPECT_EQ(impact.ToVector(), (std::vector<size_t>{2}));
  // Dependency includes SET reads (income, owed) plus WHERE reads.
  AttrSet dep = q.Dependency(3);
  EXPECT_EQ(dep.ToVector(), (std::vector<size_t>{0, 1}));

  Query ins = Query::Insert("Taxes", {1, 2, 3});
  EXPECT_EQ(ins.DirectImpact(3).Count(), 3u);
  EXPECT_TRUE(ins.Dependency(3).Empty());

  Query del = Query::Delete(
      "Taxes", Predicate::Atom({LinearExpr::Attr(1), CmpOp::kLt, 0}));
  EXPECT_EQ(del.DirectImpact(3).Count(), 3u);
  EXPECT_EQ(del.Dependency(3).ToVector(), (std::vector<size_t>{1}));
}

TEST(QueryTest, ToSqlRendering) {
  Schema s = TaxSchema();
  Query q = Query::Update(
      "Taxes", {{1, LinearExpr::AttrScaled(0, 0.3)}},
      Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 85700}));
  EXPECT_EQ(q.ToSql(s),
            "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700");
  EXPECT_EQ(Query::Insert("Taxes", {25, 85800, 21450}).ToSql(s),
            "INSERT INTO Taxes VALUES (25, 85800, 21450)");
  EXPECT_EQ(Query::Delete("Taxes", Predicate::True()).ToSql(s),
            "DELETE FROM Taxes");
}

TEST(LogDistanceTest, ManhattanOverParams) {
  QueryLog a, b;
  a.push_back(Query::Insert("T", {1, 2, 3}));
  b.push_back(Query::Insert("T", {1, 5, 1}));
  EXPECT_DOUBLE_EQ(LogDistance(a, b), 3.0 + 2.0);
  EXPECT_DOUBLE_EQ(LogDistance(a, a), 0.0);
}

}  // namespace
}  // namespace relational
}  // namespace qfix
