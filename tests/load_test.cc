// Load-generation stack: LatencyHistogram quantization/merge
// guarantees, TenantGovernor weighted fair-share admission (fake
// clock), and harness::RunLoad driven end to end against a live
// DiagnosisServer — closed-loop steady state sustains the target
// concurrency, open-loop overload sheds 429s per tenant (a greedy
// tenant cannot starve a light one), and /v1/stats keeps per-tenant
// latency recorders split so one tenant's slow solves never skew
// another's p99. Runs in the TSan CI lane: the governor and the
// per-worker histogram/merge pattern must be race-free.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "harness/histogram.h"
#include "harness/loadgen.h"
#include "service/client.h"
#include "service/json_value.h"
#include "service/server.h"
#include "service/tenant.h"

namespace qfix {
namespace {

using harness::LatencyHistogram;
using harness::LoadOptions;
using harness::LoadRequestTemplate;
using harness::LoadResult;
using harness::LoadTenantSpec;
using harness::RunLoad;
using service::DiagnosisServer;
using service::ParseJson;
using service::ServerOptions;
using service::TenantGovernor;
using service::TenantOf;

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogramTest, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(LatencyHistogramTest, LinearRegionIsExact) {
  // The first 64 buckets are one-per-microsecond: percentiles of small
  // values quantize to exactly the recorded microsecond.
  LatencyHistogram h;
  for (int us = 1; us <= 50; ++us) {
    h.Record(us * 1e-6);
  }
  EXPECT_EQ(h.count(), 50u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), 50e-6);
  EXPECT_NEAR(h.Percentile(0.50), 25e-6, 1e-6);
  EXPECT_NEAR(h.Percentile(0.90), 45e-6, 1e-6);
  EXPECT_NEAR(h.Percentile(1.00), 50e-6, 1e-9);  // clamped to exact max
}

TEST(LatencyHistogramTest, RelativeErrorIsBounded) {
  // Each power-of-two group splits into 32 sub-buckets, so a reported
  // percentile overshoots the true value by at most ~1/32 plus the
  // 1us quantization. Check across four decades.
  for (double value : {130e-6, 1.7e-3, 23e-3, 0.9, 7.5}) {
    LatencyHistogram h;
    h.Record(value);
    const double p = h.Percentile(0.5);
    EXPECT_GE(p, value - 1e-6) << value;
    EXPECT_LE(p, value * (1.0 + 1.0 / 32) + 2e-6) << value;
  }
}

TEST(LatencyHistogramTest, PercentilesAreMonotone) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) {
    h.Record(1e-4 + i * 1e-5);  // 0.1ms .. ~10ms
  }
  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double p = h.Percentile(q);
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
  EXPECT_NEAR(h.Percentile(0.999), 10.1e-3, 0.5e-3);
}

TEST(LatencyHistogramTest, MergeMatchesSingleRecorder) {
  // The harness records per worker thread and merges at the end; the
  // merged histogram must be indistinguishable from one recorder
  // having seen every sample.
  LatencyHistogram a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double v = 1e-5 + (i % 97) * 3e-4;
    (i % 2 == 0 ? a : b).Record(v);
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Percentile(q), all.Percentile(q)) << q;
  }
}

TEST(LatencyHistogramTest, NegativeSamplesClampToZero) {
  LatencyHistogram h;
  h.Record(-1.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Percentile(1.0), 0.0);
}

// ---------------------------------------------------------------------------
// TenantOf

TEST(TenantOfTest, SplitsNamespacePrefix) {
  EXPECT_EQ(TenantOf("acme/taxes"), "acme");
  EXPECT_EQ(TenantOf("acme/sub/x"), "acme");
  EXPECT_EQ(TenantOf("taxes"), "taxes");
  EXPECT_EQ(TenantOf(""), "");
}

// ---------------------------------------------------------------------------
// TenantGovernor (fake clock: reservations expire deterministically)

double g_fake_now = 0.0;
double FakeNow() { return g_fake_now; }

TenantGovernor::Options GovOptions(int capacity, double window = 5.0) {
  TenantGovernor::Options o;
  o.capacity = capacity;
  o.activity_window_seconds = window;
  return o;
}

TEST(TenantGovernorTest, SingleTenantDegeneratesToGlobalGate) {
  TenantGovernor gov(GovOptions(4));
  TenantGovernor::Ticket t1, t2, t3;
  // One contending tenant owns the whole capacity.
  EXPECT_TRUE(gov.TryAcquire({{"a", 4}}, &t1));
  EXPECT_EQ(gov.inflight(), 4);
  EXPECT_FALSE(gov.TryAcquire({{"a", 1}}, &t2));
  t1.Release();
  EXPECT_EQ(gov.inflight(), 0);
  EXPECT_TRUE(gov.TryAcquire({{"a", 1}}, &t3));
  EXPECT_EQ(gov.inflight(), 1);
}

TEST(TenantGovernorTest, OversizedBatchIsCappedNotStarved) {
  // A batch bigger than the whole gate must still be admittable on an
  // idle gate (capped at capacity), exactly like the old global gate —
  // otherwise it would shed forever.
  TenantGovernor gov(GovOptions(2));
  TenantGovernor::Ticket t;
  EXPECT_TRUE(gov.TryAcquire({{"a", 5}}, &t));
  EXPECT_EQ(gov.inflight(), 2);
}

TEST(TenantGovernorTest, TicketMoveTransfersOwnership) {
  TenantGovernor gov(GovOptions(2));
  TenantGovernor::Ticket a;
  ASSERT_TRUE(gov.TryAcquire({{"x", 2}}, &a));
  TenantGovernor::Ticket b = std::move(a);
  EXPECT_FALSE(a.held());
  EXPECT_TRUE(b.held());
  EXPECT_EQ(gov.inflight(), 2);
  b.Release();
  EXPECT_EQ(gov.inflight(), 0);
}

TEST(TenantGovernorTest, ShedTenantKeepsItsReservation) {
  g_fake_now = 0.0;
  TenantGovernor gov(GovOptions(4));
  gov.SetClockForTest(&FakeNow);

  // Greedy fills the gate; light is shed (no global room) and thereby
  // stamps its reservation.
  TenantGovernor::Ticket greedy, light, retry;
  ASSERT_TRUE(gov.TryAcquire({{"greedy", 4}}, &greedy));
  EXPECT_FALSE(gov.TryAcquire({{"light", 1}}, &light));
  greedy.Release();

  // Light is now a contender (shed within the window) even with zero
  // inflight: each tenant's guaranteed share is 2, so greedy may not
  // re-grab the whole gate...
  EXPECT_FALSE(gov.TryAcquire({{"greedy", 4}}, &greedy));
  // ...but may take up to light's reserved share's complement, and
  // light's retry is admitted into its reservation.
  ASSERT_TRUE(gov.TryAcquire({{"greedy", 2}}, &greedy));
  ASSERT_TRUE(gov.TryAcquire({{"light", 1}}, &retry));
  EXPECT_EQ(gov.inflight(), 3);
}

TEST(TenantGovernorTest, ReservationExpiresAfterWindow) {
  g_fake_now = 0.0;
  TenantGovernor gov(GovOptions(4, /*window=*/5.0));
  gov.SetClockForTest(&FakeNow);

  TenantGovernor::Ticket greedy, light;
  ASSERT_TRUE(gov.TryAcquire({{"greedy", 4}}, &greedy));
  EXPECT_FALSE(gov.TryAcquire({{"light", 1}}, &light));
  greedy.Release();

  // Past the activity window the shed tenant stops reserving; the
  // gate is work-conserving again.
  g_fake_now = 6.0;
  EXPECT_TRUE(gov.TryAcquire({{"greedy", 4}}, &greedy));
}

TEST(TenantGovernorTest, CompletedTenantReservesNothing) {
  g_fake_now = 0.0;
  TenantGovernor gov(GovOptions(4));
  gov.SetClockForTest(&FakeNow);

  // A tenant that ran and finished (never shed) holds no reservation:
  // another tenant may immediately borrow the whole gate.
  TenantGovernor::Ticket a, b;
  ASSERT_TRUE(gov.TryAcquire({{"a", 2}}, &a));
  a.Release();
  EXPECT_TRUE(gov.TryAcquire({{"b", 4}}, &b));
}

TEST(TenantGovernorTest, WeightsSkewGuaranteedShares) {
  g_fake_now = 0.0;
  TenantGovernor gov(GovOptions(8));
  gov.SetClockForTest(&FakeNow);
  gov.SetWeight("heavy", 3);  // shares with light: 6 vs 2

  TenantGovernor::Ticket heavy, light;
  ASSERT_TRUE(gov.TryAcquire({{"heavy", 2}}, &heavy));
  // Light asking for 6 would borrow past its share of 2 while heavy
  // (inflight) could no longer reach its share of 6: shed.
  EXPECT_FALSE(gov.TryAcquire({{"light", 6}}, &light));
  // Within its share, light is admitted.
  EXPECT_TRUE(gov.TryAcquire({{"light", 2}}, &light));
  EXPECT_EQ(gov.inflight(), 4);
}

TEST(TenantGovernorTest, SnapshotCountsPerTenant) {
  g_fake_now = 0.0;
  TenantGovernor gov(GovOptions(4));
  gov.SetClockForTest(&FakeNow);
  gov.CountRequest("b");
  gov.CountRequest("a");
  gov.CountRequest("a");
  gov.CountShed("a");
  gov.CountCachedHit("b");
  gov.CountItems("a", 3);
  gov.RecordLatency("a", 0.010);

  auto stats = gov.Snapshot();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "a");  // sorted by name
  EXPECT_EQ(stats[1].name, "b");
  EXPECT_EQ(stats[0].requests, 2u);
  EXPECT_EQ(stats[0].shed_429, 1u);
  EXPECT_EQ(stats[0].items, 3u);
  EXPECT_EQ(stats[0].latency.count, 1u);
  EXPECT_EQ(stats[1].cached_hits, 1u);
  EXPECT_EQ(stats[1].requests, 1u);
}

// ---------------------------------------------------------------------------
// RunLoad against a live server

std::string SleepBody(double seconds, const std::string& tenant) {
  JsonWriter w;
  w.BeginObject();
  w.Key("seconds");
  w.Double(seconds);
  w.Key("tenant");
  w.String(tenant);
  w.EndObject();
  return w.str();
}

LoadTenantSpec SleepTenant(const std::string& name, int weight,
                           double seconds) {
  LoadTenantSpec t;
  t.name = name;
  t.weight = weight;
  LoadRequestTemplate r;
  r.path = "/v1/debug/sleep";
  r.body = SleepBody(seconds, name);
  t.requests.push_back(std::move(r));
  return t;
}

class LoadGenTest : public testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    options.enable_test_endpoints = true;
    server_ = std::make_unique<DiagnosisServer>(options);
    ASSERT_TRUE(server_->Start().ok());
    port_ = server_->port();
    ASSERT_GT(port_, 0);
  }

  std::unique_ptr<DiagnosisServer> server_;
  int port_ = 0;
};

TEST_F(LoadGenTest, ClosedLoopSustainsTargetConcurrency) {
  ServerOptions so;
  so.jobs = 4;
  StartServer(so);

  // 4 workers x 20ms service time for ~1.2s: a healthy closed loop
  // completes ~240 requests. Require enough that fewer than three
  // effective workers would fail, and no more than the loop could
  // physically issue.
  LoadOptions lo;
  lo.host = "127.0.0.1";
  lo.port = port_;
  lo.mode = LoadOptions::Mode::kClosed;
  lo.duration_seconds = 1.2;
  lo.concurrency = 4;
  lo.tenants.push_back(SleepTenant("t1", 1, 0.020));

  LoadResult r = RunLoad(lo);
  EXPECT_GE(r.attempted, 140u) << "closed loop under-drove the server";
  EXPECT_LE(r.attempted, 400u);
  EXPECT_EQ(r.classes.ok_2xx, r.attempted);
  EXPECT_EQ(r.classes.shed_429, 0u);
  EXPECT_EQ(r.classes.transport, 0u);
  EXPECT_EQ(r.latency.count(), r.classes.ok_2xx);
  // Per-request latency is at least the service time.
  EXPECT_GE(r.latency.Percentile(0.5), 0.018);
  ASSERT_EQ(r.tenants.size(), 1u);
  EXPECT_EQ(r.tenants[0].name, "t1");
  EXPECT_EQ(r.tenants[0].attempted, r.attempted);
  EXPECT_GT(r.achieved_rps, 0.0);
}

TEST_F(LoadGenTest, OpenLoopOverloadShedsGreedyNotLight) {
  // The satellite acceptance: a 9:1 greedy:light open-loop mix into a
  // 4-slot gate. Demand is ~11 slots, so the server must shed — but
  // the light tenant's demand (~1.2 slots) fits under its guaranteed
  // share of 2, so shedding lands on the greedy tenant and the light
  // tenant keeps (well over) 25% of its fair-share throughput.
  ServerOptions so;
  so.jobs = 8;
  so.max_inflight = 4;
  StartServer(so);

  LoadOptions lo;
  lo.host = "127.0.0.1";
  lo.port = port_;
  lo.mode = LoadOptions::Mode::kOpen;
  lo.duration_seconds = 2.0;
  lo.concurrency = 16;
  lo.rate_per_second = 400;
  lo.tenants.push_back(SleepTenant("greedy", 9, 0.030));
  lo.tenants.push_back(SleepTenant("light", 1, 0.030));

  LoadResult r = RunLoad(lo);
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_EQ(r.tenants[0].name, "greedy");
  EXPECT_EQ(r.tenants[1].name, "light");
  const auto& greedy = r.tenants[0];
  const auto& light = r.tenants[1];

  // Overload reached the gate and was shed with 429s, nothing else.
  EXPECT_GT(greedy.classes.shed_429, 0u);
  EXPECT_EQ(r.classes.err_4xx, 0u);
  EXPECT_EQ(r.classes.err_5xx, 0u);
  EXPECT_EQ(r.classes.transport, 0u);

  // The greedy tenant saw far more offered load...
  EXPECT_GT(greedy.attempted, light.attempted * 4);
  // ...but could not starve the light tenant: the light tenant's
  // reserved share (2 slots / 30ms = ~66 rps) exceeds its offered
  // ~40 rps, so most light requests are admitted. 25% of its
  // fair-share throughput over the run is the acceptance floor.
  const double fair_floor = 0.25 * light.attempted;
  EXPECT_GE(light.classes.ok_2xx, static_cast<uint64_t>(fair_floor))
      << "light tenant starved: " << light.classes.ok_2xx << " ok of "
      << light.attempted << " attempted";
  // And the gate was genuinely saturated: greedy completed no more
  // than its achievable slice (4 slots / 30ms = ~133 rps * 2s = ~266,
  // with slack for scheduling).
  EXPECT_LT(greedy.classes.ok_2xx, 320u);
}

TEST_F(LoadGenTest, PerTenantStatsKeepLatencySplit) {
  // Regression for the aggregated-recorder bug: /v1/stats used to fold
  // every tenant's solve latency into one recorder, so a slow tenant
  // dragged every tenant's percentiles. The per-tenant recorders must
  // keep a fast tenant's p99 far below a slow tenant's p50.
  StartServer(ServerOptions{});

  service::ClientConnection conn("127.0.0.1", port_);
  for (int i = 0; i < 12; ++i) {
    auto r = conn.Post("/v1/debug/sleep", SleepBody(0.002, "fast"), 30.0);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->status, 200);
  }
  for (int i = 0; i < 4; ++i) {
    auto r = conn.Post("/v1/debug/sleep", SleepBody(0.080, "slow"), 30.0);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->status, 200);
  }

  auto stats = service::HttpGet("127.0.0.1", port_, "/v1/stats");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->status, 200);
  auto doc = ParseJson(stats->body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const service::JsonValue* tenants = doc->Find("tenants");
  ASSERT_NE(tenants, nullptr);
  const service::JsonValue* fast = tenants->Find("fast");
  const service::JsonValue* slow = tenants->Find("slow");
  ASSERT_NE(fast, nullptr);
  ASSERT_NE(slow, nullptr);

  const double fast_p99 =
      fast->Find("latency")->Find("p99_ms")->AsNumber();
  const double slow_p50 =
      slow->Find("latency")->Find("p50_ms")->AsNumber();
  EXPECT_GE(slow_p50, 75.0);
  EXPECT_LT(fast_p99, 40.0);
  EXPECT_LT(fast_p99, slow_p50);
  EXPECT_DOUBLE_EQ(fast->Find("requests")->AsNumber(), 12.0);
  EXPECT_DOUBLE_EQ(slow->Find("requests")->AsNumber(), 4.0);
}

TEST_F(LoadGenTest, JsonOutputRoundTrips) {
  StartServer(ServerOptions{});

  LoadOptions lo;
  lo.host = "127.0.0.1";
  lo.port = port_;
  lo.mode = LoadOptions::Mode::kClosed;
  lo.duration_seconds = 0.3;
  lo.concurrency = 2;
  lo.tenants.push_back(SleepTenant("acme", 1, 0.001));

  LoadResult r = RunLoad(lo);
  auto doc = ParseJson(harness::LoadResultToJson(r));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("mode")->AsString(), "closed");
  EXPECT_DOUBLE_EQ(doc->Find("attempted")->AsNumber(),
                   static_cast<double>(r.attempted));
  const service::JsonValue* classes = doc->Find("classes");
  ASSERT_NE(classes, nullptr);
  EXPECT_DOUBLE_EQ(classes->Find("ok_2xx")->AsNumber(),
                   static_cast<double>(r.classes.ok_2xx));
  const service::JsonValue* latency = doc->Find("latency_ms");
  ASSERT_NE(latency, nullptr);
  for (const char* key : {"count", "mean", "p50", "p90", "p99", "p999",
                          "max"}) {
    EXPECT_NE(latency->Find(key), nullptr) << key;
  }
  const service::JsonValue* acme =
      doc->Find("tenants") ? doc->Find("tenants")->Find("acme") : nullptr;
  ASSERT_NE(acme, nullptr);
  EXPECT_NE(acme->Find("latency_ms")->Find("p99"), nullptr);
}

TEST(LoadGenUnitTest, ConnectionFailuresClassifyAsTransport) {
  // Reserve an ephemeral port, then close it: connects are refused.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int dead_port = ntohs(addr.sin_port);
  ::close(fd);

  LoadOptions lo;
  lo.host = "127.0.0.1";
  lo.port = dead_port;
  lo.mode = LoadOptions::Mode::kClosed;
  lo.duration_seconds = 0.2;
  lo.concurrency = 2;
  lo.request_timeout_seconds = 1.0;
  lo.tenants.push_back(SleepTenant("t", 1, 0.001));

  LoadResult r = RunLoad(lo);
  EXPECT_GT(r.attempted, 0u);
  EXPECT_EQ(r.classes.ok_2xx, 0u);
  EXPECT_EQ(r.classes.transport, r.attempted);
  EXPECT_EQ(r.latency.count(), 0u);  // failed sends record no latency
}

}  // namespace
}  // namespace qfix
