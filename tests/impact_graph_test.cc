// Tests for the read-write dependency graph (provenance/impact_graph.h):
// edge derivation, DOT rendering, relevance coloring, and consistency
// with Algorithm 2's full-impact closure.
#include <gtest/gtest.h>

#include <string>

#include "provenance/impact.h"
#include "provenance/impact_graph.h"
#include "relational/linear_expr.h"
#include "relational/predicate.h"
#include "test_support.h"

namespace qfix {
namespace provenance {
namespace {

using relational::CmpOp;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::Schema;

// The paper's running example: q1 writes owed (reads income); q2 is an
// INSERT; q3 writes pay reading income and owed.
QueryLog PaperLog() { return qfix::test::PaperLog(85700); }

TEST(ImpactEdgesTest, DerivesReadWriteChains) {
  QueryLog log = PaperLog();
  auto edges = ComputeImpactEdges(log, 3);
  // q1 -> q3 via owed; q2 (INSERT writes everything) -> q3 via
  // income and owed.
  bool q1_to_q3 = false;
  bool q2_to_q3 = false;
  for (const ImpactEdge& e : edges) {
    if (e.from == 0 && e.to == 2) {
      q1_to_q3 = true;
      ASSERT_EQ(e.attrs.size(), 1u);
      EXPECT_EQ(e.attrs[0], 1u);  // owed
    }
    if (e.from == 1 && e.to == 2) {
      q2_to_q3 = true;
      EXPECT_EQ(e.attrs.size(), 2u);  // income, owed
    }
  }
  EXPECT_TRUE(q1_to_q3);
  EXPECT_TRUE(q2_to_q3);
}

TEST(ImpactEdgesTest, NoEdgesBetweenDisjointQueries) {
  QueryLog log;
  log.push_back(Query::Update("T", {{0, LinearExpr::Constant(1)}},
                              Predicate::True()));
  log.push_back(Query::Update("T", {{1, LinearExpr::Constant(2)}},
                              Predicate::True()));
  EXPECT_TRUE(ComputeImpactEdges(log, 2).empty());
}

TEST(ImpactEdgesTest, EdgesAreConsistentWithFullImpactClosure) {
  // If q_i has a path to q_j in the edge graph, then F(q_i) must contain
  // I(q_j)'s contribution (Alg. 2 closes over exactly these chains).
  QueryLog log = PaperLog();
  size_t num_attrs = 3;
  auto edges = ComputeImpactEdges(log, num_attrs);
  auto full = ComputeFullImpacts(log, num_attrs);
  for (const ImpactEdge& e : edges) {
    AttrSet to_impact = log[e.to].DirectImpact(num_attrs);
    EXPECT_TRUE(full[e.from].ContainsAll(to_impact))
        << "edge q" << e.from + 1 << " -> q" << e.to + 1
        << " not reflected in F(q" << e.from + 1 << ")";
  }
}

TEST(ImpactGraphTest, RendersValidDotDocument) {
  Schema schema({"income", "owed", "pay"});
  std::string dot = WriteImpactGraph(PaperLog(), schema);
  EXPECT_EQ(dot.rfind("digraph qfix_impact {", 0), 0u);
  EXPECT_NE(dot.find("q1 ["), std::string::npos);
  EXPECT_NE(dot.find("q3 ["), std::string::npos);
  EXPECT_NE(dot.find("q1 -> q3"), std::string::npos);
  EXPECT_NE(dot.find("label=\"owed\""), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("\n}"), std::string::npos);
  // SQL labels are embedded.
  EXPECT_NE(dot.find("UPDATE Taxes"), std::string::npos);
}

TEST(ImpactGraphTest, ColorsRelevantAndHighlightedQueries) {
  Schema schema({"income", "owed", "pay"});
  ImpactGraphOptions options;
  options.complaint_attrs = AttrSet(3);
  options.complaint_attrs.Insert(2);  // complaints on pay
  options.highlight = {0};            // diagnosis blames q1

  std::string dot = WriteImpactGraph(PaperLog(), schema, options);
  // q3 writes pay directly and q1 chains into it: both are filled.
  size_t q1 = dot.find("q1 [");
  size_t q3 = dot.find("q3 [");
  ASSERT_NE(q1, std::string::npos);
  ASSERT_NE(q3, std::string::npos);
  EXPECT_NE(dot.find("fillcolor", q1), std::string::npos);
  std::string q3_line = dot.substr(q3, dot.find('\n', q3) - q3);
  EXPECT_NE(q3_line.find("filled"), std::string::npos);
  // Only q1 carries the highlight border.
  std::string q1_line = dot.substr(q1, dot.find('\n', q1) - q1);
  EXPECT_NE(q1_line.find("penwidth"), std::string::npos);
  EXPECT_EQ(q3_line.find("penwidth"), std::string::npos);
}

TEST(ImpactGraphTest, PlainLabelsWhenSqlDisabled) {
  Schema schema({"income", "owed", "pay"});
  ImpactGraphOptions options;
  options.sql_labels = false;
  std::string dot = WriteImpactGraph(PaperLog(), schema, options);
  EXPECT_EQ(dot.find("UPDATE"), std::string::npos);
  EXPECT_NE(dot.find("label=\"q1\""), std::string::npos);
}

}  // namespace
}  // namespace provenance
}  // namespace qfix
