#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "milp/model.h"
#include "milp/simplex.h"

namespace qfix {
namespace milp {
namespace {

SimplexOptions DefaultOptions() { return SimplexOptions{}; }

TEST(SimplexTest, UnconstrainedSitsAtBounds) {
  Model m;
  VarId a = m.AddContinuous(2, 8, "a");
  VarId b = m.AddContinuous(-3, 4, "b");
  m.AddObjectiveTerm(a, 1.0);   // pushed to lb
  m.AddObjectiveTerm(b, -2.0);  // pushed to ub
  LpResult r = SolveLp(m, m.InitialDomains(), DefaultOptions());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.x[a], 2.0);
  EXPECT_DOUBLE_EQ(r.x[b], 4.0);
  EXPECT_DOUBLE_EQ(r.objective, 2.0 - 8.0);
}

TEST(SimplexTest, ClassicTwoVariableLp) {
  // max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 (Dantzig's example).
  // As minimization: min -3x - 5y. Optimum (2, 6), objective -36.
  Model m;
  VarId x = m.AddContinuous(0, kInf, "x");
  VarId y = m.AddContinuous(0, kInf, "y");
  m.AddConstraint({{x, 1.0}}, Sense::kLe, 4.0);
  m.AddConstraint({{y, 2.0}}, Sense::kLe, 12.0);
  m.AddConstraint({{x, 3.0}, {y, 2.0}}, Sense::kLe, 18.0);
  m.AddObjectiveTerm(x, -3.0);
  m.AddObjectiveTerm(y, -5.0);
  LpResult r = SolveLp(m, m.InitialDomains(), DefaultOptions());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 2.0, 1e-6);
  EXPECT_NEAR(r.x[y], 6.0, 1e-6);
  EXPECT_NEAR(r.objective, -36.0, 1e-6);
}

TEST(SimplexTest, EqualityConstraints) {
  // min x + y s.t. x + y = 10, x - y = 2  ->  x = 6, y = 4.
  Model m;
  VarId x = m.AddContinuous(0, kInf, "x");
  VarId y = m.AddContinuous(0, kInf, "y");
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kEq, 10.0);
  m.AddConstraint({{x, 1.0}, {y, -1.0}}, Sense::kEq, 2.0);
  m.AddObjectiveTerm(x, 1.0);
  m.AddObjectiveTerm(y, 1.0);
  LpResult r = SolveLp(m, m.InitialDomains(), DefaultOptions());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 6.0, 1e-6);
  EXPECT_NEAR(r.x[y], 4.0, 1e-6);
}

TEST(SimplexTest, GreaterEqualRows) {
  // min 2x + 3y s.t. x + y >= 5, x >= 1, y >= 0 -> (5, 0) obj 10.
  Model m;
  VarId x = m.AddContinuous(1, kInf, "x");
  VarId y = m.AddContinuous(0, kInf, "y");
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kGe, 5.0);
  m.AddObjectiveTerm(x, 2.0);
  m.AddObjectiveTerm(y, 3.0);
  LpResult r = SolveLp(m, m.InitialDomains(), DefaultOptions());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-6);
  EXPECT_NEAR(r.x[x], 5.0, 1e-6);
}

TEST(SimplexTest, NegativeRhsRows) {
  // min x s.t. -x <= -7  (i.e. x >= 7).
  Model m;
  VarId x = m.AddContinuous(0, 100, "x");
  m.AddConstraint({{x, -1.0}}, Sense::kLe, -7.0);
  m.AddObjectiveTerm(x, 1.0);
  LpResult r = SolveLp(m, m.InitialDomains(), DefaultOptions());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 7.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasibility) {
  Model m;
  VarId x = m.AddContinuous(0, 5, "x");
  m.AddConstraint({{x, 1.0}}, Sense::kGe, 6.0);
  m.AddObjectiveTerm(x, 1.0);
  LpResult r = SolveLp(m, m.InitialDomains(), DefaultOptions());
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  Model m;
  VarId x = m.AddContinuous(0, kInf, "x");
  VarId y = m.AddContinuous(0, kInf, "y");
  m.AddConstraint({{x, 1.0}, {y, -1.0}}, Sense::kLe, 1.0);
  m.AddObjectiveTerm(x, -1.0);  // x can grow with y forever
  LpResult r = SolveLp(m, m.InitialDomains(), DefaultOptions());
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, FreeVariables) {
  // min |shape|: x free, min x s.t. x >= -12 via row.
  Model m;
  VarId x = m.AddContinuous(-kInf, kInf, "x");
  m.AddConstraint({{x, 1.0}}, Sense::kGe, -12.0);
  m.AddObjectiveTerm(x, 1.0);
  LpResult r = SolveLp(m, m.InitialDomains(), DefaultOptions());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], -12.0, 1e-6);
}

TEST(SimplexTest, DegenerateLpTerminates) {
  // Multiple redundant constraints through the optimum: classic
  // degeneracy trigger.
  Model m;
  VarId x = m.AddContinuous(0, kInf, "x");
  VarId y = m.AddContinuous(0, kInf, "y");
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0);
  m.AddConstraint({{x, 2.0}, {y, 2.0}}, Sense::kLe, 8.0);
  m.AddConstraint({{x, 1.0}}, Sense::kLe, 4.0);
  m.AddConstraint({{y, 1.0}}, Sense::kLe, 4.0);
  m.AddObjectiveTerm(x, -1.0);
  m.AddObjectiveTerm(y, -1.0);
  LpResult r = SolveLp(m, m.InitialDomains(), DefaultOptions());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-6);
}

TEST(SimplexTest, RedundantEqualityRows) {
  Model m;
  VarId x = m.AddContinuous(0, 10, "x");
  m.AddConstraint({{x, 1.0}}, Sense::kEq, 3.0);
  m.AddConstraint({{x, 2.0}}, Sense::kEq, 6.0);  // same information
  m.AddObjectiveTerm(x, 1.0);
  LpResult r = SolveLp(m, m.InitialDomains(), DefaultOptions());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 3.0, 1e-6);
}

TEST(SimplexTest, RespectsDomainOverride) {
  Model m;
  VarId x = m.AddContinuous(0, 100, "x");
  m.AddObjectiveTerm(x, -1.0);
  Domains d = m.InitialDomains();
  d.ub[x] = 9.0;  // branch-and-bound style tightening
  LpResult r = SolveLp(m, d, DefaultOptions());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.x[x], 9.0);
}

TEST(SimplexTest, CrossedDomainsAreInfeasible) {
  Model m;
  VarId x = m.AddContinuous(0, 100, "x");
  Domains d = m.InitialDomains();
  d.lb[x] = 5.0;
  d.ub[x] = 4.0;
  LpResult r = SolveLp(m, d, DefaultOptions());
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, RowLimitReportsTooLarge) {
  // Rows must be non-vacuous (bindable under the bounds), or the
  // reduction pass drops them before the limit check.
  Model m;
  std::vector<VarId> xs;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(m.AddContinuous(0, 1, "x" + std::to_string(i)));
  }
  for (int i = 0; i < 10; ++i) {
    m.AddConstraint({{xs[i], 1.0}, {xs[(i + 1) % 10], 1.0}}, Sense::kLe,
                    0.5);
  }
  SimplexOptions opts;
  opts.max_rows = 5;
  LpResult r = SolveLp(m, m.InitialDomains(), opts);
  EXPECT_EQ(r.status, LpStatus::kTooLarge);
}

// Property test: random LPs constructed so that a set of sampled points is
// feasible by construction; the simplex optimum must be feasible and at
// least as good as every sampled point.
class SimplexRandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomLpTest, OptimumDominatesSampledFeasiblePoints) {
  Rng rng(1000 + GetParam());
  const int n = static_cast<int>(rng.UniformInt(2, 6));
  const int num_points = 8;
  const int num_rows = static_cast<int>(rng.UniformInt(2, 10));

  // Sample witness points inside the box [-10, 10]^n.
  std::vector<std::vector<double>> points(num_points,
                                          std::vector<double>(n));
  for (auto& p : points) {
    for (double& v : p) v = rng.UniformReal(-10.0, 10.0);
  }

  Model m;
  for (int j = 0; j < n; ++j) {
    m.AddContinuous(-10.0, 10.0, "x" + std::to_string(j));
    m.AddObjectiveTerm(j, rng.UniformReal(-2.0, 2.0));
  }
  // Each constraint is a random halfspace shifted to contain all points.
  for (int i = 0; i < num_rows; ++i) {
    LinearTerms terms;
    for (int j = 0; j < n; ++j) {
      terms.push_back({j, rng.UniformReal(-1.0, 1.0)});
    }
    double max_activity = -1e30;
    for (const auto& p : points) {
      double act = 0.0;
      for (const Term& t : terms) act += t.coeff * p[t.var];
      max_activity = std::max(max_activity, act);
    }
    m.AddConstraint(terms, Sense::kLe, max_activity);
  }

  LpResult r = SolveLp(m, m.InitialDomains(), DefaultOptions());
  ASSERT_EQ(r.status, LpStatus::kOptimal) << "seed case " << GetParam();
  EXPECT_TRUE(m.IsFeasible(r.x, 1e-5));
  for (const auto& p : points) {
    EXPECT_LE(r.objective, m.EvalObjective(p) + 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SimplexRandomLpTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace milp
}  // namespace qfix
