#include <gtest/gtest.h>

#include "qfix/qfix.h"
#include "relational/executor.h"

namespace qfix {
namespace qfixcore {
namespace {

using provenance::ComplaintSet;
using provenance::DiffStates;
using relational::CmpOp;
using relational::Database;
using relational::ExecuteLog;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::Schema;

// Two queries could each explain the complaints; DiagnoseAll must list
// both, best (clean, minimal-distance) first.
TEST(DiagnoseAllTest, RanksAlternativesByCollateralThenDistance) {
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  for (int i = 0; i < 8; ++i) d0.AddTuple({double(i * 10), 0});

  // Both queries write a1 for overlapping ranges; the corruption is in
  // q0 (threshold 20 should have been 50).
  auto make_log = [&](double t0) {
    QueryLog log;
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::Constant(5)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, t0})));
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::Constant(9)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 60})));
    return log;
  };
  QueryLog dirty_log = make_log(20);
  QueryLog clean_log = make_log(50);
  Database dirty = ExecuteLog(dirty_log, d0);
  Database truth = ExecuteLog(clean_log, d0);
  ComplaintSet complaints = DiffStates(dirty, truth);
  ASSERT_FALSE(complaints.empty());

  QFixEngine engine(dirty_log, d0, dirty, complaints);
  auto diagnoses = engine.DiagnoseAll(5);
  ASSERT_GE(diagnoses.size(), 1u);
  // Best diagnosis: q0's threshold, collateral-free and verified.
  EXPECT_EQ(diagnoses[0].changed_queries, (std::vector<size_t>{0}));
  EXPECT_EQ(diagnoses[0].collateral, 0u);
  EXPECT_TRUE(diagnoses[0].verified);
  // Ranking invariant holds across the whole list.
  for (size_t i = 1; i < diagnoses.size(); ++i) {
    bool ordered =
        diagnoses[i - 1].collateral < diagnoses[i].collateral ||
        (diagnoses[i - 1].collateral == diagnoses[i].collateral &&
         diagnoses[i - 1].distance <= diagnoses[i].distance);
    EXPECT_TRUE(ordered) << "rank " << i;
  }
}

TEST(DiagnoseAllTest, EmptyComplaintsYieldNothing) {
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  d0.AddTuple({1, 1});
  QueryLog log;
  log.push_back(Query::Update("T", {{1, LinearExpr::Constant(2)}},
                              Predicate::True()));
  Database dirty = ExecuteLog(log, d0);
  QFixEngine engine(log, d0, dirty, ComplaintSet());
  EXPECT_TRUE(engine.DiagnoseAll(5).empty());
}

TEST(DiagnoseAllTest, RespectsMaxDiagnoses) {
  Schema schema = Schema::WithDefaultNames(2);
  Database d0(schema, "T");
  for (int i = 0; i < 6; ++i) d0.AddTuple({double(i * 10), 0});
  QueryLog dirty_log, clean_log;
  for (int q = 0; q < 4; ++q) {
    double c = q == 0 ? 15 : 40;  // q0 corrupted (should be 40)
    dirty_log.push_back(Query::Update(
        "T", {{1, LinearExpr::AttrScaled(1, 1.0, 3)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, c})));
    clean_log.push_back(Query::Update(
        "T", {{1, LinearExpr::AttrScaled(1, 1.0, 3)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 40})));
  }
  Database dirty = ExecuteLog(dirty_log, d0);
  Database truth = ExecuteLog(clean_log, d0);
  ComplaintSet complaints = DiffStates(dirty, truth);
  ASSERT_FALSE(complaints.empty());
  QFixEngine engine(dirty_log, d0, dirty, complaints);
  EXPECT_LE(engine.DiagnoseAll(1).size(), 1u);
  EXPECT_LE(engine.DiagnoseAll(2).size(), 2u);
}

}  // namespace
}  // namespace qfixcore
}  // namespace qfix
