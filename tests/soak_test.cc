// Soak/overload lane: qfix_serve as a real subprocess under a
// mixed-tenant open-loop overload driven by harness::RunLoad. The
// default-lane smoke runs a few seconds (QFIX_SOAK_SECONDS=3); the
// `ctest -L soak` variant runs the same scenario for 30s. Pass
// criteria: the only errors are 429 sheds (no 4xx/5xx/transport), the
// server's fd table and resident set do not grow across the soak, and
// SIGTERM still produces a clean exit afterwards.
#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/timer.h"
#include "harness/loadgen.h"
#include "service/client.h"

#ifndef QFIX_SERVE_PATH
#error "QFIX_SERVE_PATH must be defined by the build"
#endif

// Sanitizer builds quarantine freed allocations (ASan holds up to
// 256 MiB by default), so the subprocess's resident set legitimately
// grows with allocation *churn*, not leaks — and the append path
// churns a flattened log copy per append. Real leaks are still caught
// there by LeakSanitizer at exit; the strict RSS bound only means
// something in unsanitized builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define QFIX_SOAK_TEST_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#ifndef QFIX_SOAK_TEST_SANITIZED
#define QFIX_SOAK_TEST_SANITIZED 1
#endif
#endif
#endif
#ifdef QFIX_SOAK_TEST_SANITIZED
constexpr long kRssGrowthBudgetKb = 512 * 1024;
#else
constexpr long kRssGrowthBudgetKb = 64 * 1024;
#endif

namespace qfix {
namespace {

using harness::LoadOptions;
using harness::LoadRequestTemplate;
using harness::LoadResult;
using harness::LoadTenantSpec;
using harness::RunLoad;

constexpr const char* kTaxD0Csv =
    "income,owed,pay\n"
    "9500,950,8550\n"
    "90000,22500,67500\n"
    "86000,21500,64500\n"
    "86500,21625,64875\n";

constexpr const char* kTaxLogSql =
    "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;\n"
    "INSERT INTO Taxes VALUES (87000, 21750, 65250);\n"
    "UPDATE Taxes SET pay = income - owed;\n";

constexpr const char* kTaxComplaintsCsv =
    "tid,alive,income,owed,pay\n"
    "2,1,86000,21500,64500\n"
    "3,1,86500,21625,64875\n";

double SoakSeconds() {
  const char* env = std::getenv("QFIX_SOAK_SECONDS");
  if (env == nullptr || *env == '\0') return 3.0;
  return std::max(std::atof(env), 1.0);
}

/// A running qfix_serve child whose stdout/stderr we scrape.
struct ServeProcess {
  pid_t pid = -1;
  FILE* output = nullptr;  // child's combined stdout+stderr
  int port = 0;

  ~ServeProcess() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    if (output != nullptr) ::fclose(output);
  }
};

bool StartServe(const std::vector<std::string>& extra_args,
                ServeProcess* serve) {
  int fds[2];
  if (::pipe(fds) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::dup2(fds[1], STDERR_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<std::string> args = {QFIX_SERVE_PATH, "--port", "0"};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(QFIX_SERVE_PATH, argv.data());
    std::perror("execv qfix_serve");
    ::_exit(127);
  }
  ::close(fds[1]);
  serve->pid = pid;
  serve->output = ::fdopen(fds[0], "r");
  if (serve->output == nullptr) return false;

  // Scrape "qfix_serve listening on http://HOST:PORT".
  char line[512];
  while (std::fgets(line, sizeof(line), serve->output) != nullptr) {
    const char* marker = std::strstr(line, "listening on http://");
    if (marker == nullptr) continue;
    const char* colon = std::strrchr(marker, ':');
    if (colon == nullptr) return false;
    serve->port = std::atoi(colon + 1);
    return serve->port > 0;
  }
  return false;  // child exited without listening
}

/// Open fds of the child, via /proc/<pid>/fd.
int CountFds(pid_t pid) {
  const std::string path = "/proc/" + std::to_string(pid) + "/fd";
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return -1;
  int count = 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count;
}

/// Resident set of the child in KiB, via /proc/<pid>/status.
long RssKb(pid_t pid) {
  const std::string path = "/proc/" + std::to_string(pid) + "/status";
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return -1;
  long kb = -1;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %ld kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

std::string RegisterBody(const std::string& name) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String(name);
  w.Key("table");
  w.String("Taxes");
  w.Key("d0_csv");
  w.String(kTaxD0Csv);
  w.Key("log_sql");
  w.String(kTaxLogSql);
  w.EndObject();
  return w.str();
}

std::string DiagnoseBody(const std::string& dataset, double pay) {
  char complaint[160];
  std::snprintf(complaint, sizeof(complaint),
                "tid,alive,income,owed,pay\n2,1,86000,21500,%.0f\n", pay);
  JsonWriter w;
  w.BeginObject();
  w.Key("dataset");
  w.String(dataset);
  w.Key("complaints_csv");
  w.String(complaint);
  w.EndObject();
  return w.str();
}

/// The mixed-tenant overload mix: per tenant, half the traffic repeats
/// one cacheable complaint (served from the report cache, no gate
/// slot) and half cycles cold variants that reach the solver.
LoadTenantSpec MixedTenant(const std::string& name, int weight) {
  LoadTenantSpec t;
  t.name = name;
  t.weight = weight;
  const std::string dataset = name + "/taxes";
  LoadRequestTemplate cached;
  cached.path = "/v1/diagnose";
  {
    JsonWriter w;
    w.BeginObject();
    w.Key("dataset");
    w.String(dataset);
    w.Key("complaints_csv");
    w.String(kTaxComplaintsCsv);
    w.EndObject();
    cached.body = w.str();
  }
  cached.weight = 4;
  t.requests.push_back(std::move(cached));
  for (int v = 0; v < 4; ++v) {
    LoadRequestTemplate cold;
    cold.path = "/v1/diagnose";
    cold.body = DiagnoseBody(dataset, 64000.0 + v);
    cold.weight = 1;
    t.requests.push_back(std::move(cold));
  }
  return t;
}

/// Append-heavy mix: alongside the cached/cold diagnose traffic, a
/// quarter of each tenant's requests appends queries to its dataset.
/// The appended queries write only `income` while every complaint in
/// the mix disagrees on owed/pay, so prefix-aware cache keys must keep
/// cached reports servable across appends (appends never invalidate
/// this mix's cache entries).
LoadTenantSpec AppendHeavyTenant(const std::string& name, int weight) {
  LoadTenantSpec t = MixedTenant(name, weight);
  const std::string dataset = name + "/taxes";
  LoadRequestTemplate append;
  append.path = "/v1/datasets/" + dataset + "/append";
  {
    std::string sql;
    for (int q = 0; q < 4; ++q) {
      sql += "UPDATE Taxes SET income = income + 0 WHERE income < 0;\n";
    }
    JsonWriter w;
    w.BeginObject();
    w.Key("log_sql");
    w.String(sql);
    w.EndObject();
    append.body = w.str();
  }
  append.weight = 3;  // vs 4 cached + 4x1 cold: ~27% appends
  t.requests.push_back(std::move(append));
  return t;
}

TEST(SoakTest, AppendHeavyMixLeaksNothingAndNeverFails) {
  ServeProcess serve;
  // A roomy registry budget: the soak's appends grow each dataset's
  // log, and an eviction mid-soak would turn later requests into 404s
  // (a failure of THIS test's sizing, not of the server).
  ASSERT_TRUE(StartServe({"--max-inflight", "4", "--jobs", "2",
                          "--cache-bytes", "4194304",
                          "--registry-bytes", "16777216"},
                         &serve))
      << "qfix_serve did not come up";

  for (const char* tenant : {"a1", "a2"}) {
    auto r = service::HttpPost("127.0.0.1", serve.port, "/v1/datasets",
                               RegisterBody(std::string(tenant) + "/taxes"),
                               30.0);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->status, 200) << r->body;
  }

  LoadOptions lo;
  lo.host = "127.0.0.1";
  lo.port = serve.port;
  lo.mode = LoadOptions::Mode::kOpen;
  lo.concurrency = 8;
  lo.rate_per_second = 400;
  lo.tenants.push_back(AppendHeavyTenant("a1", 1));
  lo.tenants.push_back(AppendHeavyTenant("a2", 1));

  lo.duration_seconds = 1.0;
  RunLoad(lo);
  const int fds_before = CountFds(serve.pid);
  const long rss_before = RssKb(serve.pid);
  ASSERT_GT(fds_before, 0);
  ASSERT_GT(rss_before, 0);

  lo.duration_seconds = SoakSeconds();
  LoadResult r = RunLoad(lo);

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const int fds_after = CountFds(serve.pid);
  const long rss_after = RssKb(serve.pid);

  EXPECT_GT(r.classes.ok_2xx, 0u);
  // Appends must never half-apply, 404 (nothing evicts at this budget),
  // or 409 (no re-registration runs in this mix) — the only refusals
  // are admission sheds.
  EXPECT_EQ(r.classes.err_4xx, 0u);
  EXPECT_EQ(r.classes.err_5xx, 0u);
  EXPECT_EQ(r.classes.transport, 0u);

  // The ingest path must not leak: appends mint derived versions and
  // seal chunks, but superseded versions are freed once their readers
  // drop (structural sharing, no deep copies), and the encoding cache
  // is byte-budgeted.
  EXPECT_LE(fds_after, fds_before + 8)
      << "fd table grew " << fds_before << " -> " << fds_after;
  EXPECT_LE(rss_after, rss_before + kRssGrowthBudgetKb)
      << "VmRSS grew " << rss_before << "kB -> " << rss_after << "kB";

  ASSERT_EQ(::kill(serve.pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(serve.pid, &status, 0), serve.pid);
  serve.pid = -1;
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(SoakTest, MixedTenantOverloadLeaksNothingAndShedsOnly429) {
  ServeProcess serve;
  ASSERT_TRUE(StartServe({"--max-inflight", "4", "--jobs", "2",
                          "--cache-bytes", "4194304",
                          "--registry-bytes", "1048576"},
                         &serve))
      << "qfix_serve did not come up";

  // Register one dataset per tenant namespace.
  for (const char* tenant : {"t1", "t2", "t3"}) {
    auto r = service::HttpPost("127.0.0.1", serve.port, "/v1/datasets",
                               RegisterBody(std::string(tenant) + "/taxes"),
                               30.0);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->status, 200) << r->body;
  }

  LoadOptions lo;
  lo.host = "127.0.0.1";
  lo.port = serve.port;
  lo.mode = LoadOptions::Mode::kOpen;
  lo.concurrency = 8;
  lo.rate_per_second = 600;  // well past a 4-slot gate: forced overload
  lo.tenants.push_back(MixedTenant("t1", 3));
  lo.tenants.push_back(MixedTenant("t2", 1));
  lo.tenants.push_back(MixedTenant("t3", 1));

  // Warm up (connections, cache, allocator high-water marks), then
  // snapshot the fd table and resident set.
  lo.duration_seconds = 1.0;
  RunLoad(lo);
  const int fds_before = CountFds(serve.pid);
  const long rss_before = RssKb(serve.pid);
  ASSERT_GT(fds_before, 0);
  ASSERT_GT(rss_before, 0);

  lo.duration_seconds = SoakSeconds();
  LoadResult r = RunLoad(lo);

  // Give the server a beat to reap the load generator's connections,
  // then re-measure.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const int fds_after = CountFds(serve.pid);
  const long rss_after = RssKb(serve.pid);

  // The soak did real work across all three tenants...
  EXPECT_GT(r.classes.ok_2xx, 0u);
  for (const auto& t : r.tenants) {
    EXPECT_GT(t.attempted, 0u) << t.name;
  }
  // ...and the only refusals were admission sheds.
  EXPECT_EQ(r.classes.err_4xx, 0u);
  EXPECT_EQ(r.classes.err_5xx, 0u);
  EXPECT_EQ(r.classes.transport, 0u);

  // No fd leak: the table may wobble by a few sockets in flight but
  // must not grow with request count (thousands served).
  EXPECT_LE(fds_after, fds_before + 8)
      << "fd table grew " << fds_before << " -> " << fds_after;
  // No unbounded memory growth: budgeted caches (4MiB cache, 1MiB
  // registry) plus allocator slack stay well under 64MiB of growth.
  EXPECT_LE(rss_after, rss_before + kRssGrowthBudgetKb)
      << "VmRSS grew " << rss_before << "kB -> " << rss_after << "kB";

  // Clean shutdown on SIGTERM.
  ASSERT_EQ(::kill(serve.pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(serve.pid, &status, 0), serve.pid);
  serve.pid = -1;  // the destructor must not re-reap
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace qfix
