// Randomized "garbage bytes" regression suite for the src/io readers.
//
// The service feeds DatabaseFromCsv / ComplaintsFromCsv / ReadSnapshot
// straight from network request bodies, so malformed input — truncated
// rows, embedded NUL bytes, oversized fields, duplicate header names,
// out-of-range tids — must come back as Result errors, never crash
// (QFIX_CHECK aborts and double->int64 casts on garbage are UB). The
// random sweeps are seeded and deterministic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "io/csv.h"
#include "io/snapshot.h"
#include "relational/database.h"
#include "test_support.h"

namespace qfix {
namespace {

constexpr const char* kValidDbCsv =
    "income,owed,pay\n"
    "9500,950,8550\n"
    "90000,22500,67500\n"
    "86000,21500,64500\n";

constexpr const char* kValidComplaintsCsv =
    "tid,alive,income,owed,pay\n"
    "2,1,86000,21500,64500\n"
    "3,0,0,0,0\n";

std::string ValidSnapshot() { return io::WriteSnapshot(test::TaxD0()); }

std::string RandomBytes(Rng& rng, size_t len) {
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  return out;
}

// One random corruption of a valid document: the failure modes a
// network actually produces (truncation, bit rot, injected bytes).
std::string Mutate(const std::string& doc, Rng& rng) {
  std::string out = doc;
  switch (rng.UniformInt(0, 6)) {
    case 0:  // truncate at a random offset
      out.resize(rng.Index(out.size() + 1));
      break;
    case 1:  // flip one byte to a random value
      if (!out.empty()) {
        out[rng.Index(out.size())] =
            static_cast<char>(rng.UniformInt(0, 255));
      }
      break;
    case 2:  // inject a NUL byte
      out.insert(rng.Index(out.size() + 1), 1, '\0');
      break;
    case 3:  // duplicate a random slice (misaligns rows)
      if (!out.empty()) {
        size_t at = rng.Index(out.size());
        size_t n = rng.Index(out.size() - at) + 1;
        out.insert(at, out.substr(at, n));
      }
      break;
    case 4:  // splice in an oversized numeric field
      out.insert(rng.Index(out.size() + 1), std::string(4096, '9'));
      break;
    case 5:  // splice in a non-finite token
      out.insert(rng.Index(out.size() + 1),
                 rng.Bernoulli(0.5) ? "inf" : "nan");
      break;
    default:  // extra separators
      out.insert(rng.Index(out.size() + 1),
                 rng.Bernoulli(0.5) ? ",,,," : "\n\n\r\n");
      break;
  }
  return out;
}

// Every reader must return (value or error) on arbitrary bytes — this
// "call and ignore the outcome" helper is the whole assertion: a crash
// fails the test run.
void FeedAllReaders(const std::string& bytes) {
  auto db = io::DatabaseFromCsv(bytes, "T");
  if (db.ok()) {
    // Accepted documents must round-trip without crashing either.
    io::DatabaseToCsv(*db);
  }
  auto complaints = io::ComplaintsFromCsv(bytes, test::TaxSchema());
  if (complaints.ok()) {
    io::ComplaintsToCsv(*complaints, test::TaxSchema());
  }
  auto snapshot = io::ReadSnapshot(bytes);
  if (snapshot.ok()) {
    io::WriteSnapshot(*snapshot);
  }
}

TEST(IoFuzzTest, SurvivesPureRandomBytes) {
  Rng rng(20260729);
  for (int i = 0; i < 400; ++i) {
    FeedAllReaders(RandomBytes(rng, rng.Index(512)));
  }
}

TEST(IoFuzzTest, SurvivesMutatedCsvDocuments) {
  Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    FeedAllReaders(Mutate(kValidDbCsv, rng));
    FeedAllReaders(Mutate(kValidComplaintsCsv, rng));
  }
}

TEST(IoFuzzTest, SurvivesMutatedSnapshots) {
  Rng rng(2);
  const std::string snapshot = ValidSnapshot();
  for (int i = 0; i < 400; ++i) {
    FeedAllReaders(Mutate(snapshot, rng));
  }
}

// -- Specific regressions the sweeps above were built from ------------------

TEST(IoFuzzTest, DuplicateCsvHeaderNamesError) {
  auto db = io::DatabaseFromCsv("a,b,a\n1,2,3\n", "T");
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsInvalidArgument());
}

TEST(IoFuzzTest, EmptyCsvHeaderNameErrors) {
  EXPECT_FALSE(io::DatabaseFromCsv("a,,c\n1,2,3\n", "T").ok());
}

TEST(IoFuzzTest, EmbeddedNulInNumericCellErrors) {
  std::string csv = "a,b\n1,2\n";
  csv[csv.size() - 2] = '\0';  // "1,\0" — strtod would stop silently
  auto db = io::DatabaseFromCsv(csv, "T");
  EXPECT_FALSE(db.ok());
  std::string nul_suffix("a,b\n1,2");
  nul_suffix += '\0';
  nul_suffix += "junk\n";
  EXPECT_FALSE(io::DatabaseFromCsv(nul_suffix, "T").ok());
}

TEST(IoFuzzTest, OversizedNumericFieldErrors) {
  std::string csv = "a\n" + std::string(100000, '9') + "\n";
  auto db = io::DatabaseFromCsv(csv, "T");
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsInvalidArgument());
}

TEST(IoFuzzTest, NonFiniteValuesError) {
  EXPECT_FALSE(io::DatabaseFromCsv("a,b\ninf,2\n", "T").ok());
  EXPECT_FALSE(io::DatabaseFromCsv("a,b\n1,nan\n", "T").ok());
  // Overflow to infinity is caught too.
  EXPECT_FALSE(io::DatabaseFromCsv("a\n1e400\n", "T").ok());
}

TEST(IoFuzzTest, TruncatedRowErrors) {
  EXPECT_FALSE(io::DatabaseFromCsv("a,b,c\n1,2\n", "T").ok());
  EXPECT_FALSE(io::ComplaintsFromCsv("tid,alive,income,owed,pay\n1,1,5\n",
                                     test::TaxSchema())
                   .ok());
}

TEST(IoFuzzTest, ComplaintTidRangeChecked) {
  const relational::Schema schema({"a"});
  // Out-of-int64-range, negative, and fractional tids must all error
  // (the cast itself would be UB on the first one).
  for (const char* tid : {"1e30", "-1", "1.5"}) {
    std::string csv = std::string("tid,alive,a\n") + tid + ",1,5\n";
    auto complaints = io::ComplaintsFromCsv(csv, schema);
    EXPECT_FALSE(complaints.ok()) << tid;
  }
}

TEST(IoFuzzTest, SnapshotDuplicateAttrsError) {
  std::string snap =
      "qfix-snapshot v1\ntable T\nattrs a a\ntuple 0 alive 1 2\nend\n";
  auto db = io::ReadSnapshot(snap);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsInvalidArgument());
}

TEST(IoFuzzTest, SnapshotHugeTidErrors) {
  std::string snap =
      "qfix-snapshot v1\ntable T\nattrs a\ntuple 1e30 alive 1\nend\n";
  EXPECT_FALSE(io::ReadSnapshot(snap).ok());
}

TEST(IoFuzzTest, SnapshotNonFiniteValueErrors) {
  std::string snap =
      "qfix-snapshot v1\ntable T\nattrs a\ntuple 0 alive inf\nend\n";
  EXPECT_FALSE(io::ReadSnapshot(snap).ok());
}

TEST(IoFuzzTest, ValidDocumentsStillParse) {
  // The hardening must not reject the documents the CLI ships around.
  auto db = io::DatabaseFromCsv(kValidDbCsv, "Taxes");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->NumSlots(), 3u);
  auto complaints =
      io::ComplaintsFromCsv(kValidComplaintsCsv, test::TaxSchema());
  ASSERT_TRUE(complaints.ok()) << complaints.status().ToString();
  EXPECT_EQ(complaints->size(), 2u);
  auto snapshot = io::ReadSnapshot(ValidSnapshot());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->NumSlots(), 4u);
}

}  // namespace
}  // namespace qfix
