// src/service: HTTP parser and JSON decoder units, DatasetRegistry
// concurrency (TSan lane), and end-to-end loopback coverage of the
// diagnosis server — register the Figure-2 fixture over HTTP, post a
// complaint, and check the JSON repair matches the library result
// byte-for-byte (modulo timing stats). Also the admission-control
// acceptance: an over-capacity burst sheds with 429 instead of
// queueing, and the server recovers afterwards.
#include <gtest/gtest.h>
#include <strings.h>

#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "io/csv.h"
#include "io/snapshot.h"
#include "qfix/batch.h"
#include "qfix/report_json.h"
#include "service/client.h"
#include "service/http.h"
#include "service/json_value.h"
#include "service/registry.h"
#include "service/server.h"
#include "sql/parser.h"
#include "test_support.h"

namespace qfix {
namespace {

using service::DatasetRegistry;
using service::DiagnosisServer;
using service::HttpRequestParser;
using service::HttpResponse;
using service::JsonValue;
using service::ParseJson;
using service::ServerOptions;

// ---------------------------------------------------------------------------
// HTTP request parser

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequestParser p;
  auto state = p.Feed("GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(state, HttpRequestParser::State::kComplete);
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().target, "/v1/healthz");
  EXPECT_EQ(p.request().version, "HTTP/1.1");
  EXPECT_TRUE(p.request().body.empty());
}

TEST(HttpParserTest, ParsesPostWithBodyAndHeaders) {
  HttpRequestParser p;
  std::string req =
      "POST /v1/diagnose HTTP/1.1\r\n"
      "Content-Type: application/json\r\n"
      "content-length: 11\r\n"
      "\r\n"
      "{\"a\": true}";
  ASSERT_EQ(p.Feed(req), HttpRequestParser::State::kComplete);
  EXPECT_EQ(p.request().body, "{\"a\": true}");
  // Header lookup is case-insensitive.
  ASSERT_NE(p.request().FindHeader("CONTENT-TYPE"), nullptr);
  EXPECT_EQ(*p.request().FindHeader("CONTENT-TYPE"), "application/json");
}

TEST(HttpParserTest, AcceptsByteByByteFeeding) {
  HttpRequestParser p;
  std::string req =
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  HttpRequestParser::State state = HttpRequestParser::State::kNeedMore;
  for (char c : req) {
    state = p.Feed(std::string_view(&c, 1));
  }
  ASSERT_EQ(state, HttpRequestParser::State::kComplete);
  EXPECT_EQ(p.request().body, "hello");
}

TEST(HttpParserTest, AcceptsBareLfLineEndings) {
  HttpRequestParser p;
  ASSERT_EQ(p.Feed("GET / HTTP/1.0\nHost: x\n\n"),
            HttpRequestParser::State::kComplete);
  EXPECT_EQ(p.request().version, "HTTP/1.0");
}

TEST(HttpParserTest, LfHeadWithCrlfInBodyParsesCorrectly) {
  // The earliest blank line wins: an LF-terminated head followed (in
  // the same segment) by a body containing "\r\n\r\n" must not have
  // the terminator search skip into the body.
  HttpRequestParser p;
  std::string body = "{\"a\":\r\n\r\n1}";  // valid JSON whitespace
  std::string req = "POST /x HTTP/1.1\nContent-Length: " +
                    std::to_string(body.size()) + "\n\n" + body;
  ASSERT_EQ(p.Feed(req), HttpRequestParser::State::kComplete)
      << p.error();
  EXPECT_EQ(p.request().body, body);
}

TEST(HttpParserTest, SplitsPathAndQuery) {
  HttpRequestParser p;
  ASSERT_EQ(p.Feed("GET /v1/stats?verbose=1 HTTP/1.1\r\n\r\n"),
            HttpRequestParser::State::kComplete);
  EXPECT_EQ(p.request().path(), "/v1/stats");
  EXPECT_EQ(p.request().query(), "verbose=1");
}

TEST(HttpParserTest, RejectsMalformedRequestLine) {
  HttpRequestParser p;
  ASSERT_EQ(p.Feed("NONSENSE\r\n\r\n"), HttpRequestParser::State::kError);
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParserTest, RejectsNonHttpVersion) {
  HttpRequestParser p;
  ASSERT_EQ(p.Feed("GET / SPDY/9\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParserTest, RejectsOversizedHead) {
  service::HttpLimits limits;
  limits.max_head_bytes = 128;
  HttpRequestParser p(limits);
  std::string big = "GET / HTTP/1.1\r\nX-Pad: " + std::string(500, 'a');
  ASSERT_EQ(p.Feed(big), HttpRequestParser::State::kError);
  EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParserTest, RejectsOversizedBodyUpfront) {
  service::HttpLimits limits;
  limits.max_body_bytes = 64;
  HttpRequestParser p(limits);
  ASSERT_EQ(p.Feed("POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(p.error_status(), 413);
}

TEST(HttpParserTest, RejectsChunkedTransferEncoding) {
  HttpRequestParser p;
  ASSERT_EQ(p.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(p.error_status(), 501);
}

TEST(HttpParserTest, RejectsMalformedContentLength) {
  HttpRequestParser p;
  ASSERT_EQ(p.Feed("POST / HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(p.error_status(), 400);
  // Signed values must be 400 (malformed), not 413: strtoull would
  // silently wrap "-1" to ULLONG_MAX.
  for (const char* bad : {"-1", "+5"}) {
    HttpRequestParser q;
    ASSERT_EQ(q.Feed(std::string("POST / HTTP/1.1\r\nContent-Length: ") +
                     bad + "\r\n\r\n"),
              HttpRequestParser::State::kError)
        << bad;
    EXPECT_EQ(q.error_status(), 400) << bad;
  }
}

TEST(HttpResponseTest, SerializeRoundTripsThroughResponseParser) {
  HttpResponse r;
  r.status = 429;
  r.body = "{\"error\":{}}";
  auto parsed = service::ParseHttpResponse(r.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->status, 429);
  EXPECT_EQ(parsed->body, "{\"error\":{}}");
}

TEST(HttpResponseTest, SerializeAnnouncesConnectionPersistence) {
  HttpResponse r;
  EXPECT_NE(r.Serialize().find("Connection: close"), std::string::npos);
  r.keep_alive = true;
  EXPECT_NE(r.Serialize().find("Connection: keep-alive"),
            std::string::npos);
}

TEST(HttpParserTest, KeepAliveSemanticsFollowVersionAndHeader) {
  auto wants = [](const std::string& head) {
    HttpRequestParser p;
    EXPECT_EQ(p.Feed(head), HttpRequestParser::State::kComplete) << head;
    return p.request().WantsKeepAlive();
  };
  // HTTP/1.1 defaults to keep-alive; `close` wins over anything.
  EXPECT_TRUE(wants("GET / HTTP/1.1\r\n\r\n"));
  EXPECT_FALSE(wants("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
  EXPECT_FALSE(wants("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n"));
  // HTTP/1.0 defaults to close unless it opts in.
  EXPECT_FALSE(wants("GET / HTTP/1.0\r\n\r\n"));
  EXPECT_TRUE(wants("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"));
}

TEST(HttpParserTest, PipelinedBytesCarryOverViaTakeLeftover) {
  HttpRequestParser p;
  std::string two =
      "POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"
      "GET /b HTTP/1.1\r\n\r\n";
  ASSERT_EQ(p.Feed(two), HttpRequestParser::State::kComplete);
  EXPECT_EQ(p.request().body, "abc");
  std::string rest = p.TakeLeftover();
  HttpRequestParser q;
  ASSERT_EQ(q.Feed(rest), HttpRequestParser::State::kComplete);
  EXPECT_EQ(q.request().target, "/b");
  EXPECT_TRUE(q.TakeLeftover().empty());
}

// ---------------------------------------------------------------------------
// JSON request decoder

TEST(JsonValueTest, ParsesScalarsAndContainers) {
  auto v = ParseJson(
      " {\"a\": 1.5, \"b\": [true, null, \"x\"], \"c\": {\"d\": -2e3}} ");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v->Find("a")->AsNumber(), 1.5);
  const JsonValue& b = *v->Find("b");
  ASSERT_TRUE(b.is_array());
  ASSERT_EQ(b.AsArray().size(), 3u);
  EXPECT_TRUE(b.AsArray()[0].AsBool());
  EXPECT_TRUE(b.AsArray()[1].is_null());
  EXPECT_EQ(b.AsArray()[2].AsString(), "x");
  EXPECT_DOUBLE_EQ(v->Find("c")->Find("d")->AsNumber(), -2000.0);
}

TEST(JsonValueTest, DecodesEscapesAndUnicode) {
  auto v = ParseJson(R"({"s": "a\"b\\c\nd A 😀"})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("s")->AsString(), "a\"b\\c\nd A \xF0\x9F\x98\x80");
}

TEST(JsonValueTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseJson("{} extra").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("truth").ok());
  EXPECT_FALSE(ParseJson("1e999").ok());  // non-finite
  EXPECT_FALSE(ParseJson(R"({"s":"\uD800"})").ok());  // lone surrogate
}

TEST(JsonValueTest, EnforcesDepthLimit) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep, /*max_depth=*/64).ok());
  EXPECT_TRUE(ParseJson("[[[[1]]]]", /*max_depth=*/64).ok());
}

TEST(JsonValueTest, EnforcesNodeBudget) {
  // Every value costs ~100 bytes of JsonValue, so a small body of tiny
  // scalars amplifies ~50x in memory; the node budget bounds it.
  EXPECT_FALSE(ParseJson("[1,1,1,1,1]", /*max_depth=*/64,
                         /*max_nodes=*/4)
                   .ok());
  EXPECT_TRUE(ParseJson("[1,1,1,1,1]", /*max_depth=*/64,
                        /*max_nodes=*/6)
                  .ok());
  // The service default admits any legitimate request shape.
  EXPECT_TRUE(ParseJson(R"({"items":[{"dataset":"d","k":2}]})").ok());
}

TEST(JsonValueTest, LookupHelpers) {
  auto v = ParseJson(R"({"k": 3, "flag": true, "name": "x"})");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->NumberOr("k", 1.0).value(), 3.0);
  EXPECT_DOUBLE_EQ(v->NumberOr("missing", 1.0).value(), 1.0);
  EXPECT_TRUE(v->BoolOr("flag", false).value());
  EXPECT_FALSE(v->BoolOr("missing", false).value());
  auto name = v->RequiredString("name");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "x");
  EXPECT_FALSE(v->RequiredString("k").ok());       // wrong kind
  EXPECT_FALSE(v->RequiredString("missing").ok());  // absent
}

TEST(JsonValueTest, LookupHelpersRejectWrongKinds) {
  // A present key of the wrong kind must surface as an error, not fall
  // back to the default — the request would otherwise be served with
  // silently different parameters.
  auto v = ParseJson(R"({"k": "5", "flag": 1})");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->NumberOr("k", 1.0).ok());
  EXPECT_FALSE(v->BoolOr("flag", false).ok());
}

// ---------------------------------------------------------------------------
// Fixtures shared by registry and server tests (the paper's Figure 2)

constexpr const char* kTaxD0Csv =
    "income,owed,pay\n"
    "9500,950,8550\n"
    "90000,22500,67500\n"
    "86000,21500,64500\n"
    "86500,21625,64875\n";

constexpr const char* kTaxLogSql =
    "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;\n"
    "INSERT INTO Taxes VALUES (87000, 21750, 65250);\n"
    "UPDATE Taxes SET pay = income - owed;\n";

constexpr const char* kTaxComplaintsCsv =
    "tid,alive,income,owed,pay\n"
    "2,1,86000,21500,64500\n"
    "3,1,86500,21625,64875\n";

// ---------------------------------------------------------------------------
// DatasetRegistry

TEST(DatasetRegistryTest, RegistersAndGets) {
  DatasetRegistry registry;
  auto ds = registry.Register("taxes", kTaxD0Csv, "Taxes", kTaxLogSql);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ((*ds)->d0().NumSlots(), 4u);
  EXPECT_EQ((*ds)->log.size(), 3u);
  EXPECT_EQ((*ds)->dirty.NumSlots(), 5u);  // the INSERT added a tuple
  ASSERT_NE(registry.Get("taxes"), nullptr);
  EXPECT_EQ(registry.Get("taxes").get(), ds->get());
  EXPECT_EQ(registry.Get("other"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(DatasetRegistryTest, AcceptsSnapshotCheckpoints) {
  DatasetRegistry registry;
  std::string snapshot = io::WriteSnapshot(test::TaxD0());
  auto ds = registry.Register("snap", snapshot, "ignored", kTaxLogSql);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ((*ds)->d0().table_name(), "Taxes");
}

TEST(DatasetRegistryTest, RejectsBadInputs) {
  DatasetRegistry registry;
  EXPECT_FALSE(registry.Register("", kTaxD0Csv, "T", kTaxLogSql).ok());
  EXPECT_FALSE(
      registry.Register("bad name", kTaxD0Csv, "T", kTaxLogSql).ok());
  EXPECT_FALSE(registry.Register("x", "not,a\nvalid", "T", "SELECT").ok());
  EXPECT_FALSE(
      registry.Register("x", kTaxD0Csv, "Taxes", "DROP TABLE Taxes").ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(DatasetRegistryTest, CapacityBoundsNewNamesButAllowsReplacement) {
  DatasetRegistry registry(/*max_datasets=*/2);
  ASSERT_TRUE(registry.Register("a", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  ASSERT_TRUE(registry.Register("b", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  auto third = registry.Register("c", kTaxD0Csv, "Taxes", kTaxLogSql);
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsResourceExhausted());
  // Replacing a registered name is always allowed at capacity.
  EXPECT_TRUE(registry.Register("a", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  EXPECT_EQ(registry.size(), 2u);
}

TEST(DatasetRegistryTest, FullRegistryRejectsBeforeParsing) {
  DatasetRegistry registry(/*max_datasets=*/1);
  ASSERT_TRUE(registry.Register("a", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  // A new name on a full registry must be rejected with the capacity
  // error before the body is parsed: garbage d0 text would otherwise
  // surface as InvalidArgument, proving the expensive parse ran.
  auto rejected = registry.Register("b", "not,a\nvalid", "T", "garbage");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
  // Replacement of the existing name still parses (and still rejects
  // malformed bodies on their own merits).
  EXPECT_FALSE(registry.Register("a", "not,a\nvalid", "T", "garbage")
                   .status()
                   .IsResourceExhausted());
}

TEST(DatasetRegistryTest, ReplacementKeepsOldSnapshotAliveForReaders) {
  DatasetRegistry registry;
  auto first = registry.Register("d", kTaxD0Csv, "Taxes", kTaxLogSql);
  ASSERT_TRUE(first.ok());
  std::shared_ptr<const service::Dataset> held = registry.Get("d");
  auto second =
      registry.Register("d", kTaxD0Csv, "Taxes",
                        "UPDATE Taxes SET pay = income - owed;");
  ASSERT_TRUE(second.ok());
  // The held reference still sees the original three-query log.
  EXPECT_EQ(held->log.size(), 3u);
  EXPECT_EQ(registry.Get("d")->log.size(), 1u);
}

// Registration racing lookups on the same name must be clean under
// TSan: readers hold shared_ptr snapshots, writers swap the map entry.
TEST(DatasetRegistryTest, ConcurrentRegisterAndGet) {
  DatasetRegistry registry;
  ASSERT_TRUE(
      registry.Register("shared", kTaxD0Csv, "Taxes", kTaxLogSql).ok());
  constexpr int kThreads = 4;
  constexpr int kIterations = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIterations; ++i) {
        if (t % 2 == 0) {
          auto ds = registry.Register("shared", kTaxD0Csv, "Taxes",
                                      kTaxLogSql);
          ASSERT_TRUE(ds.ok());
        } else {
          std::shared_ptr<const service::Dataset> ds =
              registry.Get("shared");
          ASSERT_NE(ds, nullptr);
          // Read through the snapshot; stale is fine, torn is not.
          ASSERT_EQ(ds->log.size(), 3u);
          ASSERT_EQ(ds->d0().NumSlots(), 4u);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

// ---------------------------------------------------------------------------
// End-to-end loopback

// Zeroes the values of the timing stats fields, which legitimately
// differ between two runs of the same diagnosis.
std::string NormalizeTiming(std::string json) {
  for (const char* key :
       {"\"encode_seconds\":", "\"solve_seconds\":", "\"total_seconds\":"}) {
    size_t pos = 0;
    while ((pos = json.find(key, pos)) != std::string::npos) {
      size_t begin = pos + std::string(key).size();
      size_t end = begin;
      while (end < json.size() && json[end] != ',' && json[end] != '}') {
        ++end;
      }
      json.replace(begin, end - begin, "0");
      pos = begin;
    }
  }
  return json;
}

// Extracts the balanced JSON object that follows `"report":` — the raw
// report_json document the server spliced into its response.
std::string ExtractReport(const std::string& body) {
  size_t start = body.find("\"report\":");
  if (start == std::string::npos) return "";
  start += std::string("\"report\":").size();
  int depth = 0;
  bool in_string = false;
  for (size_t i = start; i < body.size(); ++i) {
    char c = body[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') {
      --depth;
      if (depth == 0) return body.substr(start, i - start + 1);
    }
  }
  return "";
}

class ServerTest : public testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    server_ = std::make_unique<DiagnosisServer>(options);
    ASSERT_TRUE(server_->Start().ok());
    port_ = server_->port();
    ASSERT_GT(port_, 0);
  }

  service::HttpResponse Post(const std::string& path,
                             const std::string& body,
                             double timeout = 60.0) {
    auto r = service::HttpPost("127.0.0.1", port_, path, body, timeout);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : service::HttpResponse{};
  }

  service::HttpResponse Get(const std::string& path) {
    auto r = service::HttpGet("127.0.0.1", port_, path);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : service::HttpResponse{};
  }

  std::string RegisterTaxesBody() {
    JsonWriter w;
    w.BeginObject();
    w.Key("name");
    w.String("taxes");
    w.Key("table");
    w.String("Taxes");
    w.Key("d0_csv");
    w.String(kTaxD0Csv);
    w.Key("log_sql");
    w.String(kTaxLogSql);
    w.EndObject();
    return w.str();
  }

  std::string DiagnoseTaxesBody() {
    JsonWriter w;
    w.BeginObject();
    w.Key("dataset");
    w.String("taxes");
    w.Key("complaints_csv");
    w.String(kTaxComplaintsCsv);
    w.EndObject();
    return w.str();
  }

  std::unique_ptr<DiagnosisServer> server_;
  int port_ = 0;
};

TEST_F(ServerTest, HealthzAndStats) {
  StartServer(ServerOptions{});
  auto health = Get("/v1/healthz");
  EXPECT_EQ(health.status, 200);
  auto doc = ParseJson(health.body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("status")->AsString(), "ok");

  auto stats = Get("/v1/stats");
  EXPECT_EQ(stats.status, 200);
  auto sdoc = ParseJson(stats.body);
  ASSERT_TRUE(sdoc.ok());
  // The healthz request above is already counted.
  EXPECT_GE(sdoc->Find("requests")->Find("healthz")->AsNumber(), 1.0);
  EXPECT_EQ(sdoc->Find("queue")->Find("capacity")->AsNumber(), 8.0);
}

TEST_F(ServerTest, RoutingErrors) {
  StartServer(ServerOptions{});
  EXPECT_EQ(Get("/v1/nope").status, 404);
  EXPECT_EQ(Post("/v1/healthz", "{}").status, 405);
  EXPECT_EQ(Post("/v1/diagnose", "this is not json").status, 400);
  EXPECT_EQ(Post("/v1/datasets", "{\"name\":\"x\"}").status, 400);
  // Debug endpoints are off by default.
  EXPECT_EQ(Post("/v1/debug/sleep", "{}").status, 404);
  auto diag = Post("/v1/diagnose", DiagnoseTaxesBody());
  EXPECT_EQ(diag.status, 404);  // dataset not registered
}

TEST_F(ServerTest, EndToEndMatchesLibraryResult) {
  // Deterministic pool so the served result is bit-identical to the
  // serial library path.
  ServerOptions options;
  options.jobs = 0;
  StartServer(options);

  auto reg = Post("/v1/datasets", RegisterTaxesBody());
  ASSERT_EQ(reg.status, 200) << reg.body;
  auto reg_doc = ParseJson(reg.body);
  ASSERT_TRUE(reg_doc.ok());
  EXPECT_EQ(reg_doc->Find("tuples")->AsNumber(), 4.0);
  EXPECT_EQ(reg_doc->Find("queries")->AsNumber(), 3.0);

  auto diag = Post("/v1/diagnose", DiagnoseTaxesBody());
  ASSERT_EQ(diag.status, 200) << diag.body;
  auto diag_doc = ParseJson(diag.body);
  ASSERT_TRUE(diag_doc.ok()) << diag.body;
  EXPECT_TRUE(diag_doc->Find("ok")->AsBool());
  std::string served_report = ExtractReport(diag.body);
  ASSERT_FALSE(served_report.empty()) << diag.body;

  // The same diagnosis through the library: identical inputs, the
  // serial BatchDiagnoser, the same report rendering.
  auto d0 = io::DatabaseFromCsv(kTaxD0Csv, "Taxes");
  ASSERT_TRUE(d0.ok());
  auto log = sql::ParseLog(kTaxLogSql, d0->schema());
  ASSERT_TRUE(log.ok());
  auto complaints = io::ComplaintsFromCsv(kTaxComplaintsCsv, d0->schema());
  ASSERT_TRUE(complaints.ok());
  qfixcore::QFixOptions qopts;
  qopts.time_limit_seconds = 30.0;  // the server's default cap
  qfixcore::BatchItem item = qfixcore::MakeBatchItem(*log, *d0, *complaints,
                                                     qopts, /*k=*/1);
  qfixcore::BatchDiagnoser diagnoser(qfixcore::BatchOptions{});
  auto results = diagnoser.Run({item});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  std::string direct_report = qfixcore::RepairToJson(
      *results[0], item.data->log, item.data->d0(), item.data->dirty,
      item.complaints);

  EXPECT_EQ(NormalizeTiming(served_report), NormalizeTiming(direct_report));
  // And the repair is the paper's: threshold 85700 -> 86501.
  EXPECT_NE(served_report.find("\"after\":86501"), std::string::npos);
  // Percentiles sample served diagnoses only; the registration this
  // test also performed must not be in the window.
  EXPECT_EQ(server_->stats().latency.count, 1u);
}

TEST_F(ServerTest, BatchedItemsReturnAlignedResults) {
  StartServer(ServerOptions{});
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);

  JsonWriter w;
  w.BeginObject();
  w.Key("items");
  w.BeginArray();
  for (int i = 0; i < 2; ++i) {
    w.BeginObject();
    w.Key("dataset");
    w.String("taxes");
    w.Key("complaints_csv");
    w.String(kTaxComplaintsCsv);
    if (i == 1) {
      w.Key("basic");
      w.Bool(true);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  auto response = Post("/v1/diagnose", w.str());
  ASSERT_EQ(response.status, 200) << response.body;
  auto doc = ParseJson(response.body);
  ASSERT_TRUE(doc.ok()) << response.body;
  const JsonValue* results = doc->Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->AsArray().size(), 2u);
  for (const JsonValue& r : results->AsArray()) {
    EXPECT_TRUE(r.Find("ok")->AsBool());
    ASSERT_NE(r.Find("report"), nullptr);
    EXPECT_TRUE(r.Find("report")->Find("verified")->AsBool());
  }
}

TEST_F(ServerTest, WrongTypedOptionalFieldsAre400NotDefaults) {
  StartServer(ServerOptions{});
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);
  // "k" as a string must be rejected, not silently diagnosed with the
  // default k.
  std::string body = DiagnoseTaxesBody();
  body.insert(body.size() - 1, ",\"k\":\"5\"");
  EXPECT_EQ(Post("/v1/diagnose", body).status, 400);
  body = DiagnoseTaxesBody();
  body.insert(body.size() - 1, ",\"denoise\":1");
  EXPECT_EQ(Post("/v1/diagnose", body).status, 400);
  body = DiagnoseTaxesBody();
  body.insert(body.size() - 1, ",\"time_limit_seconds\":\"10\"");
  EXPECT_EQ(Post("/v1/diagnose", body).status, 400);
}

TEST_F(ServerTest, OversizedItemsArrayIsRejected) {
  // Every BatchItem copies the full dataset, so items[] length is the
  // memory-amplification knob; the cap must bound it before any item
  // is decoded or admitted.
  ServerOptions options;
  options.max_items = 2;
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);

  JsonWriter w;
  w.BeginObject();
  w.Key("items");
  w.BeginArray();
  for (int i = 0; i < 3; ++i) {
    w.BeginObject();
    w.Key("dataset");
    w.String("taxes");
    w.Key("complaints_csv");
    w.String(kTaxComplaintsCsv);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(Post("/v1/diagnose", w.str()).status, 413);
}

// Concurrent diagnoses against one shared dataset: the TSan-lane
// acceptance. Every request must succeed and carry the verified repair.
TEST_F(ServerTest, ConcurrentDiagnosesOnSharedDataset) {
  ServerOptions options;
  options.jobs = 2;
  options.max_inflight = 16;
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<int> statuses(kClients, 0);
  std::vector<std::string> bodies(kClients);
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &statuses, &bodies] {
      auto r = service::HttpPost("127.0.0.1", port_, "/v1/diagnose",
                                 DiagnoseTaxesBody(), 60.0);
      if (r.ok()) {
        statuses[c] = r->status;
        bodies[c] = r->body;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(statuses[c], 200) << bodies[c];
    EXPECT_NE(bodies[c].find("\"verified\":true"), std::string::npos)
        << bodies[c];
  }
}

// Over capacity, diagnosis requests shed with 429 rather than queueing
// without bound — and the server stays observable and recovers.
TEST_F(ServerTest, OverCapacityBurstShedsWith429) {
  ServerOptions options;
  options.max_inflight = 2;
  options.enable_test_endpoints = true;
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);

  // Occupy both admission slots with debug sleeps.
  std::vector<std::thread> sleepers;
  for (int i = 0; i < 2; ++i) {
    sleepers.emplace_back([this] {
      auto r = service::HttpPost("127.0.0.1", port_, "/v1/debug/sleep",
                                 "{\"seconds\": 3.0}", 30.0);
      EXPECT_TRUE(r.ok() && r->status == 200);
    });
  }
  // Give the sleepers time to be admitted (generous for TSan).
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));

  // The burst: every diagnosis request must be shed immediately.
  for (int i = 0; i < 4; ++i) {
    auto r = Post("/v1/diagnose", DiagnoseTaxesBody(), 10.0);
    EXPECT_EQ(r.status, 429) << r.body;
  }
  // Health stays responsive under load (it bypasses the gate).
  EXPECT_EQ(Get("/v1/healthz").status, 200);
  auto stats = ParseJson(Get("/v1/stats").body);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->Find("requests")->Find("shed_429")->AsNumber(), 4.0);
  EXPECT_EQ(stats->Find("queue")->Find("inflight")->AsNumber(), 2.0);

  for (std::thread& t : sleepers) t.join();
  // Capacity freed: the same request now succeeds.
  auto recovered = Post("/v1/diagnose", DiagnoseTaxesBody());
  EXPECT_EQ(recovered.status, 200) << recovered.body;
}

// ---------------------------------------------------------------------------
// Keep-alive

TEST_F(ServerTest, KeepAliveServesManyRequestsOverOneConnection) {
  StartServer(ServerOptions{});
  service::ClientConnection conn("127.0.0.1", port_);
  auto reg = conn.Post("/v1/datasets", RegisterTaxesBody());
  ASSERT_TRUE(reg.ok()) << reg.status().ToString();
  ASSERT_EQ(reg->status, 200) << reg->body;
  for (int i = 0; i < 3; ++i) {
    auto r = conn.Get("/v1/healthz");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200);
  }
  // One TCP connect carried all four requests.
  EXPECT_EQ(conn.connects(), 1);
  DiagnosisServer::Stats stats = server_->stats();
  EXPECT_EQ(stats.connections_total, 1u);
  EXPECT_EQ(stats.requests_total, 4u);
}

TEST_F(ServerTest, MaxRequestsPerConnClosesAndClientReconnects) {
  ServerOptions options;
  options.max_requests_per_conn = 2;
  StartServer(options);
  service::ClientConnection conn("127.0.0.1", port_);
  for (int i = 0; i < 4; ++i) {
    auto r = conn.Get("/v1/healthz");
    ASSERT_TRUE(r.ok()) << "request " << i << ": " << r.status().ToString();
    EXPECT_EQ(r->status, 200);
  }
  // The server closed after every second request; the client noticed
  // (Connection: close) and reconnected.
  EXPECT_EQ(conn.connects(), 2);
  EXPECT_EQ(server_->stats().connections_total, 2u);
}

// ---------------------------------------------------------------------------
// Report cache

TEST_F(ServerTest, RepeatDiagnoseServedFromCacheByteIdenticalAndZeroCopy) {
  ServerOptions options;
  options.jobs = 0;
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);

  // The acceptance criterion: zero implicit Database deep copies on the
  // hot path — across the cold solve (miss) AND the warm hit.
  const int64_t copies_before = relational::Database::CopyCount();
  auto cold = Post("/v1/diagnose", DiagnoseTaxesBody());
  ASSERT_EQ(cold.status, 200) << cold.body;
  EXPECT_NE(cold.body.find("\"cached\":false"), std::string::npos)
      << cold.body;

  auto warm = Post("/v1/diagnose", DiagnoseTaxesBody());
  ASSERT_EQ(warm.status, 200) << warm.body;
  EXPECT_NE(warm.body.find("\"cached\":true"), std::string::npos)
      << warm.body;
  EXPECT_EQ(relational::Database::CopyCount(), copies_before);

  // The hit splices the original solve's bytes: identical report
  // including the timing stats a re-solve could never reproduce.
  EXPECT_EQ(ExtractReport(cold.body), ExtractReport(warm.body));

  DiagnosisServer::Stats stats = server_->stats();
  EXPECT_TRUE(stats.cache_enabled);
  EXPECT_EQ(stats.cached_hits, 1u);
  EXPECT_GE(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.inserts, 1u);
  // Only the cold solve bought an admission slot.
  EXPECT_EQ(stats.items_total, 1u);
}

TEST_F(ServerTest, ReRegistrationInvalidatesCachedReports) {
  ServerOptions options;
  options.jobs = 0;
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);
  ASSERT_NE(Post("/v1/diagnose", DiagnoseTaxesBody())
                .body.find("\"cached\":false"),
            std::string::npos);
  ASSERT_NE(Post("/v1/diagnose", DiagnoseTaxesBody())
                .body.find("\"cached\":true"),
            std::string::npos);

  // Re-registering the name mints a new version: the next diagnosis
  // must solve cold even though the bytes are identical.
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);
  auto after = Post("/v1/diagnose", DiagnoseTaxesBody());
  ASSERT_EQ(after.status, 200) << after.body;
  EXPECT_NE(after.body.find("\"cached\":false"), std::string::npos)
      << after.body;
  EXPECT_GE(server_->stats().cache.invalidations, 1u);
}

TEST_F(ServerTest, CacheOffSolvesEveryRequestCold) {
  ServerOptions options;
  options.jobs = 0;
  options.cache_bytes = 0;
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);
  for (int i = 0; i < 2; ++i) {
    auto r = Post("/v1/diagnose", DiagnoseTaxesBody());
    ASSERT_EQ(r.status, 200) << r.body;
    EXPECT_NE(r.body.find("\"cached\":false"), std::string::npos) << r.body;
  }
  DiagnosisServer::Stats stats = server_->stats();
  EXPECT_FALSE(stats.cache_enabled);
  EXPECT_EQ(stats.cached_hits, 0u);
  EXPECT_EQ(stats.items_total, 2u);
}

TEST_F(ServerTest, IdenticalItemsInOneRequestSolveOnce) {
  ServerOptions options;
  options.jobs = 0;
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);

  JsonWriter w;
  w.BeginObject();
  w.Key("items");
  w.BeginArray();
  for (int i = 0; i < 2; ++i) {
    w.BeginObject();
    w.Key("dataset");
    w.String("taxes");
    w.Key("complaints_csv");
    w.String(kTaxComplaintsCsv);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  auto response = Post("/v1/diagnose", w.str());
  ASSERT_EQ(response.status, 200) << response.body;
  auto doc = ParseJson(response.body);
  ASSERT_TRUE(doc.ok()) << response.body;
  const JsonValue* results = doc->Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->AsArray().size(), 2u);
  for (const JsonValue& r : results->AsArray()) {
    EXPECT_TRUE(r.Find("ok")->AsBool());
    ASSERT_NE(r.Find("report"), nullptr);
  }
  // The duplicate coalesced within the request: one solve, one slot.
  EXPECT_EQ(server_->stats().items_total, 1u);
}

// ---------------------------------------------------------------------------
// Item-weighted admission

TEST_F(ServerTest, AdmissionGateCountsItemsNotRequests) {
  ServerOptions options;
  options.jobs = 0;
  options.max_inflight = 2;
  options.enable_test_endpoints = true;
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);

  // Two items with DISTINCT complaint sets (no in-request coalescing).
  const char* complaint_rows[] = {
      "tid,alive,income,owed,pay\n2,1,86000,21500,64500\n",
      "tid,alive,income,owed,pay\n3,1,86500,21625,64875\n"};
  JsonWriter w;
  w.BeginObject();
  w.Key("items");
  w.BeginArray();
  for (const char* rows : complaint_rows) {
    w.BeginObject();
    w.Key("dataset");
    w.String("taxes");
    w.Key("complaints_csv");
    w.String(rows);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string two_items = w.str();

  // Occupy ONE of the two slots; a two-item request then wants two
  // slots over the one remaining and must shed. A request-counting
  // gate (the old semantics) would have admitted it: one sleeping
  // request + one new request fit a capacity of 2.
  std::thread sleeper([this] {
    auto r = service::HttpPost("127.0.0.1", port_, "/v1/debug/sleep",
                               "{\"seconds\": 3.0}", 30.0);
    EXPECT_TRUE(r.ok() && r->status == 200);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  auto shed = Post("/v1/diagnose", two_items);
  EXPECT_EQ(shed.status, 429) << shed.body;
  // A single-item request fits the remaining slot.
  auto one = Post("/v1/diagnose", DiagnoseTaxesBody());
  EXPECT_EQ(one.status, 200) << one.body;
  sleeper.join();

  // With the gate empty the same two-item request is admitted — and an
  // items[] array larger than the whole capacity is weight-capped, not
  // shed forever.
  EXPECT_EQ(Post("/v1/diagnose", two_items).status, 200);

  auto stats = ParseJson(Get("/v1/stats").body);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->Find("requests")->Find("shed_429")->AsNumber(), 1.0);
  // Items admitted: 1 (single) + 2 (batch); the shed request admitted
  // none. (The single-item solve was a cache miss of its own key.)
  EXPECT_EQ(stats->Find("requests")->Find("items")->AsNumber(), 3.0);
  EXPECT_EQ(stats->Find("queue")->Find("capacity")->AsNumber(), 2.0);
}

TEST_F(ServerTest, OversizedBatchIsAdmittedOnAnEmptyGate) {
  // items[] > max_inflight: the weight is capped at capacity, so the
  // request occupies the whole gate rather than being 429'd forever.
  ServerOptions options;
  options.jobs = 0;
  options.max_inflight = 2;
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);

  const char* complaint_rows[] = {
      "tid,alive,income,owed,pay\n2,1,86000,21500,64500\n",
      "tid,alive,income,owed,pay\n3,1,86500,21625,64875\n",
      "tid,alive,income,owed,pay\n"
      "2,1,86000,21500,64500\n3,1,86500,21625,64875\n"};
  JsonWriter w;
  w.BeginObject();
  w.Key("items");
  w.BeginArray();
  for (const char* rows : complaint_rows) {
    w.BeginObject();
    w.Key("dataset");
    w.String("taxes");
    w.Key("complaints_csv");
    w.String(rows);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  auto response = Post("/v1/diagnose", w.str());
  ASSERT_EQ(response.status, 200) << response.body;
  auto doc = ParseJson(response.body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("results")->AsArray().size(), 3u);
}

TEST_F(ServerTest, StopCancelsDebugSleepCooperatively) {
  ServerOptions options;
  options.enable_test_endpoints = true;
  StartServer(options);
  std::thread sleeper([this] {
    // Long sleep; Stop() must cut it short via the shutdown token.
    service::HttpPost("127.0.0.1", port_, "/v1/debug/sleep",
                      "{\"seconds\": 25.0}", 30.0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  const double stop_started = MonotonicSeconds();
  server_->Stop();
  const double stop_seconds = MonotonicSeconds() - stop_started;
  sleeper.join();
  // Cooperative cancellation: far less than the requested 25 s.
  EXPECT_LT(stop_seconds, 10.0);
}

// ---------------------------------------------------------------------------
// Observability: /metrics, request ids, timings, slow-request log

// HttpResponse has no FindHeader; the tests scan case-insensitively.
const std::string* ResponseHeader(const service::HttpResponse& response,
                                  const char* name) {
  for (const auto& [key, value] : response.headers) {
    if (strcasecmp(key.c_str(), name) == 0) return &value;
  }
  return nullptr;
}

TEST_F(ServerTest, MetricsExpositionLintsCleanAndCoversSubsystems) {
  ServerOptions options;
  options.enable_test_endpoints = true;
  StartServer(options);

  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);
  ASSERT_EQ(Post("/v1/diagnose", DiagnoseTaxesBody()).status, 200);
  ASSERT_EQ(Post("/v1/diagnose", DiagnoseTaxesBody()).status, 200);  // hit
  ASSERT_EQ(Post("/v1/datasets/taxes/append",
                 "{\"log_sql\":\"UPDATE Taxes SET pay = pay WHERE "
                 "income < 0;\"}")
                .status,
            200);

  auto metrics = Get("/metrics");
  ASSERT_EQ(metrics.status, 200) << metrics.body;
  const std::string* content_type = ResponseHeader(metrics, "Content-Type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_NE(content_type->find("version=0.0.4"), std::string::npos);

  Status lint = obs::LintExposition(metrics.body);
  EXPECT_TRUE(lint.ok()) << lint.ToString();

  auto parsed = obs::ParseExposition(metrics.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  // Every layer of the stack shows up in one scrape.
  for (const char* family :
       {"qfix_requests_total", "qfix_http_responses_total",
        "qfix_open_connections", "qfix_inflight_items",
        "qfix_request_phase_seconds", "qfix_diagnose_seconds",
        "qfix_report_cache_events_total", "qfix_registry_datasets",
        "qfix_encoding_cache_events_total", "qfix_ingest_appends_total",
        "qfix_tenant_requests_total", "qfix_solver_nodes_total",
        "qfix_encoder_constraints_total", "qfix_pool_workers",
        "qfix_uptime_seconds"}) {
    EXPECT_TRUE(parsed->types.count(family)) << "missing family " << family;
  }

  // Spot-check values: requests routed, phases observed, solver worked.
  auto series = [&](const char* name, const char* label_name,
                    const char* label_value) -> double {
    for (const auto& sample : parsed->samples) {
      if (sample.name != name) continue;
      if (label_name == nullptr) return sample.value;
      const std::string* v = sample.FindLabel(label_name);
      if (v != nullptr && *v == label_value) return sample.value;
    }
    return -1.0;
  };
  EXPECT_EQ(series("qfix_requests_total", "endpoint", "diagnose"), 2.0);
  EXPECT_EQ(series("qfix_requests_total", "endpoint", "append"), 1.0);
  EXPECT_EQ(series("qfix_registry_datasets", nullptr, nullptr), 1.0);
  EXPECT_EQ(series("qfix_ingest_appends_total", nullptr, nullptr), 1.0);
  EXPECT_GE(series("qfix_solver_nodes_total", nullptr, nullptr), 1.0);
  EXPECT_GE(series("qfix_encoder_constraints_total", nullptr, nullptr), 1.0);
  // One cold solve + one cache hit, both diagnoses phase-traced.
  EXPECT_GE(series("qfix_report_cache_events_total", "event", "hits"), 1.0);
  EXPECT_EQ(series("qfix_request_phase_seconds_count", "phase", "solve"),
            2.0);
  EXPECT_EQ(series("qfix_request_phase_seconds_count", "phase", "parse"),
            2.0);
  // TenantOf("taxes") is "taxes": unprefixed datasets are their own
  // tenant namespace.
  EXPECT_EQ(series("qfix_diagnose_seconds_count", "tenant", "taxes"), 2.0);
  // The write phase is recorded at the connection layer for every
  // response served so far.
  EXPECT_GE(series("qfix_request_phase_seconds_count", "phase", "write"),
            4.0);

  // /metrics serves GET only.
  EXPECT_EQ(Post("/metrics", "{}").status, 405);
}

TEST_F(ServerTest, TimingsBlockIsOptInAndInternallyConsistent) {
  StartServer(ServerOptions{});
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);

  // Without the flag: no timings block.
  auto plain = Post("/v1/diagnose", DiagnoseTaxesBody());
  ASSERT_EQ(plain.status, 200);
  EXPECT_EQ(plain.body.find("\"timings\""), std::string::npos);

  JsonWriter w;
  w.BeginObject();
  w.Key("dataset");
  w.String("taxes");
  w.Key("complaints_csv");
  w.String(kTaxComplaintsCsv);
  w.Key("timings");
  w.Bool(true);
  w.EndObject();
  auto timed = Post("/v1/diagnose", w.str());
  ASSERT_EQ(timed.status, 200) << timed.body;

  auto doc = ParseJson(timed.body);
  ASSERT_TRUE(doc.ok()) << timed.body;
  const JsonValue* timings = doc->Find("timings");
  ASSERT_NE(timings, nullptr) << timed.body;

  // The id in the body is the id on the wire.
  const JsonValue* request_id = timings->Find("request_id");
  ASSERT_NE(request_id, nullptr);
  const std::string* header_id = ResponseHeader(timed, "X-Request-Id");
  ASSERT_NE(header_id, nullptr);
  EXPECT_EQ(request_id->AsString(), *header_id);

  const JsonValue* total_ms = timings->Find("total_ms");
  ASSERT_NE(total_ms, nullptr);
  EXPECT_GT(total_ms->AsNumber(), 0.0);

  const JsonValue* phases = timings->Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_TRUE(phases->is_array());
  std::vector<std::string> names;
  double phase_sum_ms = 0.0;
  double prev_start = -1.0;
  for (const JsonValue& phase : phases->AsArray()) {
    names.push_back(phase.Find("phase")->AsString());
    double start = phase.Find("start_ms")->AsNumber();
    double ms = phase.Find("ms")->AsNumber();
    EXPECT_GE(ms, 0.0);
    EXPECT_GE(start, prev_start);  // spans in chronological order
    prev_start = start;
    phase_sum_ms += ms;
  }
  EXPECT_EQ(names, (std::vector<std::string>{"parse", "cache", "admission",
                                             "encode", "solve", "render"}));
  // Phases are disjoint sub-intervals of the request: their sum cannot
  // exceed the total (the render span closes before serialization).
  EXPECT_LE(phase_sum_ms, total_ms->AsNumber() + 1e-6);
}

TEST_F(ServerTest, RequestIdEchoedGeneratedAndSanitized) {
  StartServer(ServerOptions{});

  // A safe client id is echoed byte-for-byte.
  auto echoed = service::HttpPost("127.0.0.1", port_, "/v1/diagnose",
                                  DiagnoseTaxesBody(), 30.0,
                                  {{"X-Request-Id", "client-id.42"}});
  ASSERT_TRUE(echoed.ok());
  const std::string* id = ResponseHeader(*echoed, "X-Request-Id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(*id, "client-id.42");
  EXPECT_EQ(echoed->status, 404);  // unregistered dataset: errors echo too

  // An unsafe id (header injection shape) is replaced, not echoed.
  auto unsafe = service::HttpPost("127.0.0.1", port_, "/v1/healthz", "",
                                  30.0, {{"X-Request-Id", "bad id\"!"}});
  ASSERT_TRUE(unsafe.ok());
  id = ResponseHeader(*unsafe, "X-Request-Id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->compare(0, 2, "q-"), 0) << *id;

  // No client id: the server mints one, on every route including 404s.
  auto generated = Get("/v1/healthz");
  id = ResponseHeader(generated, "X-Request-Id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->compare(0, 2, "q-"), 0) << *id;
  auto missing = Get("/v1/nope");
  EXPECT_EQ(missing.status, 404);
  id = ResponseHeader(missing, "X-Request-Id");
  ASSERT_NE(id, nullptr);
  EXPECT_FALSE(id->empty());
}

TEST_F(ServerTest, EveryRoutedEndpointIncrementsExactlyOneCounter) {
  ServerOptions options;
  options.enable_test_endpoints = true;
  StartServer(options);

  struct Snapshot {
    uint64_t total, datasets, append, diagnose, health, stats, metrics,
        debug;
  };
  auto snapshot = [this]() -> Snapshot {
    DiagnosisServer::Stats s = server_->stats();
    return {s.requests_total,  s.requests_datasets, s.requests_append,
            s.requests_diagnose, s.requests_health, s.requests_stats,
            s.requests_metrics, s.requests_debug};
  };
  auto endpoint_sum = [](const Snapshot& s) {
    return s.datasets + s.append + s.diagnose + s.health + s.stats +
           s.metrics + s.debug;
  };
  auto expect_one = [&](const char* label, uint64_t before_field,
                        uint64_t after_field, const Snapshot& before,
                        const Snapshot& after) {
    EXPECT_EQ(after.total - before.total, 1u) << label;
    EXPECT_EQ(after_field - before_field, 1u) << label;
    EXPECT_EQ(endpoint_sum(after) - endpoint_sum(before), 1u) << label;
  };

  Snapshot before = snapshot();
  Get("/v1/healthz");
  Snapshot after = snapshot();
  expect_one("healthz", before.health, after.health, before, after);

  before = after;
  Get("/v1/stats");
  after = snapshot();
  expect_one("stats", before.stats, after.stats, before, after);

  before = after;
  Get("/metrics");
  after = snapshot();
  expect_one("metrics", before.metrics, after.metrics, before, after);

  before = after;
  Post("/v1/datasets", RegisterTaxesBody());
  after = snapshot();
  expect_one("datasets", before.datasets, after.datasets, before, after);

  before = after;
  Post("/v1/datasets/taxes/append",
       "{\"log_sql\":\"UPDATE Taxes SET pay = pay WHERE income < 0;\"}");
  after = snapshot();
  expect_one("append", before.append, after.append, before, after);

  before = after;
  Post("/v1/diagnose", DiagnoseTaxesBody());
  after = snapshot();
  expect_one("diagnose", before.diagnose, after.diagnose, before, after);

  before = after;
  Post("/v1/debug/payload", "{\"bytes\": 16}");
  after = snapshot();
  expect_one("debug", before.debug, after.debug, before, after);

  // Unrouted paths count toward the total but no endpoint bucket.
  before = after;
  Get("/v1/nope");
  after = snapshot();
  EXPECT_EQ(after.total - before.total, 1u);
  EXPECT_EQ(endpoint_sum(after) - endpoint_sum(before), 0u);
}

TEST_F(ServerTest, SlowRequestLogFiresAboveThresholdOnly) {
  std::vector<std::string> lines;
  std::mutex lines_mu;
  SetLogSink([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(lines_mu);
    lines.push_back(line);
  });

  // Threshold far above any loopback diagnosis: nothing logged.
  ServerOptions quiet;
  quiet.slow_request_ms = 1e9;
  StartServer(quiet);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);
  auto fast = Post("/v1/diagnose", DiagnoseTaxesBody());
  ASSERT_EQ(fast.status, 200);
  {
    std::lock_guard<std::mutex> lock(lines_mu);
    for (const std::string& line : lines) {
      EXPECT_EQ(line.find("slow_request"), std::string::npos) << line;
    }
  }
  server_->Stop();

  // Threshold below any diagnosis: the warn line fires and carries the
  // request id the client saw.
  ServerOptions noisy;
  noisy.slow_request_ms = 1e-6;
  StartServer(noisy);
  ASSERT_EQ(Post("/v1/datasets", RegisterTaxesBody()).status, 200);
  auto slow = service::HttpPost("127.0.0.1", port_, "/v1/diagnose",
                                DiagnoseTaxesBody(), 30.0,
                                {{"X-Request-Id", "slow-probe-1"}});
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(slow->status, 200);
  {
    std::lock_guard<std::mutex> lock(lines_mu);
    bool found = false;
    for (const std::string& line : lines) {
      if (line.find("slow_request") == std::string::npos) continue;
      found = true;
      EXPECT_NE(line.find("slow-probe-1"), std::string::npos) << line;
      EXPECT_NE(line.find("WARN"), std::string::npos) << line;
      EXPECT_NE(line.find("solve_ms"), std::string::npos) << line;
    }
    EXPECT_TRUE(found);
  }
  SetLogSink(nullptr);
}

// Builds a dataset whose basic-mode diagnosis is genuinely slow: the
// padding no-ops sit BEFORE the final `pay = income - owed` update, so
// upstream of the complained-about attributes their parameterizations
// all interact with the repair (appended after it they are dead code
// presolve prunes in microseconds). Mirrors tools/qfix_load's
// --probe-traces recipe.
std::string SlowTaxLogSql() {
  std::string log =
      "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;\n"
      "INSERT INTO Taxes VALUES (87000, 21750, 65250);\n";
  for (int i = 0; i < 8; ++i) {
    log += "UPDATE Taxes SET income = income + 0 WHERE income < 0;\n";
  }
  log += "UPDATE Taxes SET pay = income - owed;\n";
  return log;
}

std::string RegisterSlowTaxesBody(const std::string& name) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String(name);
  w.Key("table");
  w.String("Taxes");
  w.Key("d0_csv");
  w.String(kTaxD0Csv);
  w.Key("log_sql");
  w.String(SlowTaxLogSql());
  w.EndObject();
  return w.str();
}

std::string DiagnoseSlowTaxesBody(const std::string& name) {
  JsonWriter w;
  w.BeginObject();
  w.Key("dataset");
  w.String(name);
  w.Key("basic");
  w.Bool(true);
  w.Key("time_limit_seconds");
  w.Double(20.0);
  w.Key("complaints_csv");
  w.String("tid,alive,income,owed,pay\n2,1,86000,21500,50000\n");
  w.EndObject();
  return w.str();
}

TEST_F(ServerTest, SlowRequestRetainedInDebugTracesWithSolverSpans) {
  ServerOptions options;
  options.slow_request_ms = 10.0;
  // Tail sampling at probability zero: only the slow classification
  // (or a watchdog pin) can retain anything.
  options.trace_sample_probability = 0.0;
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterSlowTaxesBody("slowtax")).status,
            200);

  auto slow = service::HttpPost("127.0.0.1", port_, "/v1/diagnose",
                                DiagnoseSlowTaxesBody("slowtax"), 60.0,
                                {{"X-Request-Id", "it-slow-1"}});
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  ASSERT_EQ(slow->status, 200) << slow->body;

  auto traces = Get("/v1/debug/traces?outcome=slow");
  ASSERT_EQ(traces.status, 200) << traces.body;
  auto doc = ParseJson(traces.body);
  ASSERT_TRUE(doc.ok()) << traces.body;
  const JsonValue* list = doc->Find("traces");
  ASSERT_NE(list, nullptr);
  ASSERT_TRUE(list->is_array());

  const JsonValue* mine = nullptr;
  for (const JsonValue& t : list->AsArray()) {
    const JsonValue* id = t.Find("request_id");
    if (id != nullptr && id->is_string() && id->AsString() == "it-slow-1") {
      mine = &t;
      break;
    }
  }
  ASSERT_NE(mine, nullptr)
      << "slow request not retained in /v1/debug/traces: " << traces.body;
  EXPECT_EQ(mine->Find("outcome")->AsString(), "slow");
  EXPECT_EQ(mine->Find("retain_reason")->AsString(), "slow");
  EXPECT_EQ(mine->Find("dataset")->AsString(), "slowtax");
  EXPECT_GE(mine->Find("duration_ms")->AsNumber(), 10.0);

  // The retained trace crosses the solver boundary: at least one
  // solver-internal child span, nested under a top-level phase.
  const JsonValue* spans = mine->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  size_t solver_children = 0;
  std::set<std::string> phases;
  for (const JsonValue& span : spans->AsArray()) {
    const std::string phase = span.Find("phase")->AsString();
    phases.insert(phase);
    if (phase == "presolve" || phase == "root_lp" || phase == "node_batch" ||
        phase == "incumbent_update") {
      ++solver_children;
      const JsonValue* parent = span.Find("parent");
      ASSERT_NE(parent, nullptr) << "solver span '" << phase
                                 << "' has no parent";
      EXPECT_GE(parent->AsNumber(), 0.0);
    }
  }
  EXPECT_GE(solver_children, 1u) << traces.body;
  for (const char* top : {"parse", "encode", "solve", "render"}) {
    EXPECT_TRUE(phases.count(top)) << "missing top-level phase " << top;
  }

  // Filters: an impossible duration floor excludes it.
  auto none = Get("/v1/debug/traces?min_duration_ms=1000000000");
  ASSERT_EQ(none.status, 200);
  EXPECT_EQ(none.body.find("it-slow-1"), std::string::npos);

  // The slow diagnosis is the worst-recent in its latency bucket, so
  // the histogram exemplar carries its request id.
  auto metrics = Get("/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("trace_id=\"it-slow-1\""), std::string::npos);
  EXPECT_TRUE(obs::LintExposition(metrics.body).ok());
}

TEST_F(ServerTest, WatchdogFlagsOverdueSolveAndForceRetainsTrace) {
  std::vector<std::string> lines;
  std::mutex lines_mu;
  SetLogSink([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(lines_mu);
    lines.push_back(line);
  });

  ServerOptions options;
  // Retention can only come from the watchdog's pin: sampling is off
  // and the slow classification is disabled.
  options.trace_sample_probability = 0.0;
  options.slow_request_ms = 0.0;
  options.solve_deadline_warn_ms = 10.0;
  StartServer(options);
  ASSERT_EQ(Post("/v1/datasets", RegisterSlowTaxesBody("stalltax")).status,
            200);

  auto slow = service::HttpPost("127.0.0.1", port_, "/v1/diagnose",
                                DiagnoseSlowTaxesBody("stalltax"), 60.0,
                                {{"X-Request-Id", "it-stall-1"}});
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  ASSERT_EQ(slow->status, 200) << slow->body;

  // The watchdog flagged the solve while it was still running.
  {
    std::lock_guard<std::mutex> lock(lines_mu);
    bool found = false;
    for (const std::string& line : lines) {
      if (line.find("stall") == std::string::npos ||
          line.find("solve_deadline") == std::string::npos) {
        continue;
      }
      found = true;
      EXPECT_NE(line.find("it-stall-1"), std::string::npos) << line;
      EXPECT_NE(line.find("WARN"), std::string::npos) << line;
    }
    EXPECT_TRUE(found) << "no solve_deadline stall WARN logged";
  }

  // ... counted it ...
  auto metrics = Get("/metrics");
  ASSERT_EQ(metrics.status, 200);
  auto parsed = obs::ParseExposition(metrics.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  double stalls = -1.0;
  for (const auto& sample : parsed->samples) {
    if (sample.name != "qfix_stalls_total") continue;
    const std::string* kind = sample.FindLabel("kind");
    if (kind != nullptr && *kind == "solve_deadline") stalls = sample.value;
  }
  EXPECT_GE(stalls, 1.0);

  // ... and pinned the offending trace despite sampling being off.
  auto traces = Get("/v1/debug/traces");
  ASSERT_EQ(traces.status, 200);
  auto doc = ParseJson(traces.body);
  ASSERT_TRUE(doc.ok()) << traces.body;
  const JsonValue* list = doc->Find("traces");
  ASSERT_NE(list, nullptr);
  bool retained = false;
  for (const JsonValue& t : list->AsArray()) {
    const JsonValue* id = t.Find("request_id");
    if (id == nullptr || !id->is_string() || id->AsString() != "it-stall-1") {
      continue;
    }
    retained = true;
    EXPECT_TRUE(t.Find("forced")->AsBool());
    EXPECT_EQ(t.Find("retain_reason")->AsString(), "stall:solve_deadline");
  }
  EXPECT_TRUE(retained) << "stalled request's trace not force-retained: "
                        << traces.body;
  SetLogSink(nullptr);
}

TEST_F(ServerTest, HealthzCarriesBuildInfo) {
  StartServer(ServerOptions{});
  auto health = Get("/v1/healthz");
  ASSERT_EQ(health.status, 200);
  auto doc = ParseJson(health.body);
  ASSERT_TRUE(doc.ok());
  const JsonValue* build = doc->Find("build");
  ASSERT_NE(build, nullptr) << health.body;
  for (const char* key : {"version", "compiler", "build_type", "sanitize"}) {
    const JsonValue* field = build->Find(key);
    ASSERT_NE(field, nullptr) << key;
    EXPECT_FALSE(field->AsString().empty()) << key;
  }
}

}  // namespace
}  // namespace qfix
