// Randomized executor properties: the replay semantics every layer of
// QFix assumes. Tuple slicing, state diffing, and the MILP encoding all
// lean on these invariants without re-checking them.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "relational/database.h"
#include "relational/executor.h"
#include "workload/synthetic.h"

namespace qfix {
namespace relational {
namespace {

workload::SyntheticSpec MixedSpec() {
  workload::SyntheticSpec spec;
  spec.num_tuples = 30;
  spec.num_attrs = 4;
  spec.num_queries = 40;
  spec.insert_fraction = 0.25;
  spec.delete_fraction = 0.25;
  return spec;
}

class ExecutorPropertyTest : public testing::TestWithParam<int> {};

TEST_P(ExecutorPropertyTest, SlotsGrowMonotonicallyAndTidsStayStable) {
  Rng rng(3100 + GetParam());
  workload::SyntheticSpec spec = MixedSpec();
  Database d0 = workload::GenerateDatabase(spec, rng);
  QueryLog log = workload::GenerateLog(spec, d0, rng);

  std::vector<Database> states = ExecuteLogStates(log, d0);
  ASSERT_EQ(states.size(), log.size() + 1);
  for (size_t i = 0; i + 1 < states.size(); ++i) {
    // Slots never shrink (DELETE marks dead, INSERT appends).
    EXPECT_GE(states[i + 1].NumSlots(), states[i].NumSlots());
    // Every slot's tid is its index, in every state.
    for (size_t slot = 0; slot < states[i].NumSlots(); ++slot) {
      EXPECT_EQ(states[i].slot(slot).tid, static_cast<int64_t>(slot));
    }
  }
}

TEST_P(ExecutorPropertyTest, StatesArePrefixConsistent) {
  Rng rng(3200 + GetParam());
  workload::SyntheticSpec spec = MixedSpec();
  Database d0 = workload::GenerateDatabase(spec, rng);
  QueryLog log = workload::GenerateLog(spec, d0, rng);

  std::vector<Database> states = ExecuteLogStates(log, d0);
  for (size_t i = 0; i < log.size(); ++i) {
    Database step = states[i];
    ApplyQuery(log[i], step);
    ASSERT_EQ(step.NumSlots(), states[i + 1].NumSlots()) << "query " << i;
    for (size_t slot = 0; slot < step.NumSlots(); ++slot) {
      EXPECT_EQ(step.slot(slot).alive, states[i + 1].slot(slot).alive);
      if (!step.slot(slot).alive) continue;
      for (size_t a = 0; a < d0.schema().num_attrs(); ++a) {
        EXPECT_EQ(step.slot(slot).values[a],
                  states[i + 1].slot(slot).values[a])
            << "query " << i << " slot " << slot << " attr " << a;
      }
    }
  }
}

TEST_P(ExecutorPropertyTest, DeadTuplesStayDeadAndUnchanged) {
  Rng rng(3300 + GetParam());
  workload::SyntheticSpec spec = MixedSpec();
  Database d0 = workload::GenerateDatabase(spec, rng);
  QueryLog log = workload::GenerateLog(spec, d0, rng);

  std::vector<Database> states = ExecuteLogStates(log, d0);
  for (size_t i = 0; i + 1 < states.size(); ++i) {
    for (size_t slot = 0; slot < states[i].NumSlots(); ++slot) {
      if (states[i].slot(slot).alive) continue;
      const Tuple& before = states[i].slot(slot);
      const Tuple& after = states[i + 1].slot(slot);
      EXPECT_FALSE(after.alive) << "dead tuple revived by query " << i;
      for (size_t a = 0; a < d0.schema().num_attrs(); ++a) {
        EXPECT_EQ(before.values[a], after.values[a])
            << "dead tuple mutated by query " << i;
      }
    }
  }
}

TEST_P(ExecutorPropertyTest, UpdateSemanticsMatchManualEvaluation) {
  Rng rng(3400 + GetParam());
  workload::SyntheticSpec spec = MixedSpec();
  spec.insert_fraction = 0.0;
  spec.delete_fraction = 0.0;  // UPDATE-only for this check
  spec.set_type = workload::SetClauseType::kRelative;
  Database d0 = workload::GenerateDatabase(spec, rng);
  QueryLog log = workload::GenerateLog(spec, d0, rng);

  std::vector<Database> states = ExecuteLogStates(log, d0);
  for (size_t i = 0; i < log.size(); ++i) {
    const Query& q = log[i];
    for (size_t slot = 0; slot < states[i].NumSlots(); ++slot) {
      const Tuple& before = states[i].slot(slot);
      const Tuple& after = states[i + 1].slot(slot);
      if (!before.alive) continue;
      if (!q.Matches(before.values)) {
        for (size_t a = 0; a < d0.schema().num_attrs(); ++a) {
          EXPECT_EQ(before.values[a], after.values[a])
              << "unmatched tuple changed by query " << i;
        }
        continue;
      }
      // Matched: every SET clause evaluates against the *pre-update*
      // tuple (simultaneous assignment), other attributes unchanged.
      std::vector<double> expected = before.values;
      for (const SetClause& sc : q.set_clauses()) {
        expected[sc.attr] = sc.expr.Eval(before.values);
      }
      for (size_t a = 0; a < d0.schema().num_attrs(); ++a) {
        EXPECT_NEAR(after.values[a], expected[a], 1e-9)
            << "query " << i << " slot " << slot << " attr " << a;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLogs, ExecutorPropertyTest,
                         testing::Range(0, 12));

}  // namespace
}  // namespace relational
}  // namespace qfix
