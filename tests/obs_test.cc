// Tests for the observability layer: obs::MetricsRegistry (instruments,
// Prometheus exposition, the in-repo parser/linter the CI smoke and
// qfix_load reuse), obs::TraceContext (span bracketing, request ids),
// and the structured logger in common/logging.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "harness/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qfix {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Instruments

TEST(MetricsTest, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);

  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  Histogram h({0.1, 1.0, 10.0});
  h.Observe(0.05);   // bucket 0
  h.Observe(0.1);    // le=0.1 is inclusive: bucket 0
  h.Observe(0.5);    // bucket 1
  h.Observe(100.0);  // +Inf bucket
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 0u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // +Inf
  EXPECT_DOUBLE_EQ(h.Sum(), 0.05 + 0.1 + 0.5 + 100.0);
}

TEST(MetricsTest, DefaultLatencyEdgesMatchHarnessHistogramLayout) {
  std::vector<double> edges = DefaultLatencyBucketEdges();
  ASSERT_FALSE(edges.empty());
  // Strictly ascending (a Histogram constructor invariant, but assert
  // it here so a bad derivation fails with a readable message).
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]) << "edge " << i;
  }
  // Every edge must be an exact harness::LatencyHistogram bucket upper
  // edge: recording an edge-valued latency into both histograms lands
  // in buckets with identical upper bounds.
  using harness::LatencyHistogram;
  std::set<uint64_t> harness_edges_us;
  const size_t total =
      LatencyHistogram::kLinearBuckets +
      LatencyHistogram::kGroups * LatencyHistogram::kSubBuckets;
  for (size_t i = 0; i < total; ++i) {
    harness_edges_us.insert(LatencyHistogram::UpperEdgeUs(i));
  }
  for (double edge : edges) {
    uint64_t us = static_cast<uint64_t>(std::llround(edge * 1e6));
    EXPECT_TRUE(harness_edges_us.count(us))
        << edge << "s is not a harness bucket edge";
  }
}

// ---------------------------------------------------------------------------
// Registry + exposition round-trip

TEST(MetricsTest, RenderParsesBackWithTypesHelpAndValues) {
  MetricsRegistry registry;
  CounterFamily* requests =
      registry.AddCounter("test_requests_total", "Requests served.",
                          {"endpoint"});
  requests->WithLabels({"diagnose"})->Inc(3);
  requests->WithLabels({"healthz"})->Inc(1);
  GaugeFamily* inflight = registry.AddGauge("test_inflight", "In flight.");
  inflight->Get()->Set(2.0);

  auto parsed = ParseExposition(registry.RenderPrometheus());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->types.at("test_requests_total"), "counter");
  EXPECT_EQ(parsed->types.at("test_inflight"), "gauge");
  EXPECT_EQ(parsed->help.at("test_requests_total"), "Requests served.");

  double diagnose = -1, healthz = -1, gauge = -1;
  for (const auto& sample : parsed->samples) {
    if (sample.name == "test_requests_total") {
      const std::string* endpoint = sample.FindLabel("endpoint");
      ASSERT_NE(endpoint, nullptr);
      (*endpoint == "diagnose" ? diagnose : healthz) = sample.value;
    } else if (sample.name == "test_inflight") {
      gauge = sample.value;
    }
  }
  EXPECT_DOUBLE_EQ(diagnose, 3.0);
  EXPECT_DOUBLE_EQ(healthz, 1.0);
  EXPECT_DOUBLE_EQ(gauge, 2.0);
}

TEST(MetricsTest, LabelValueEscapingRoundTrips) {
  MetricsRegistry registry;
  CounterFamily* family =
      registry.AddCounter("test_escapes_total", "Help with \\ and \n inside.",
                          {"tenant"});
  const std::string nasty = "a\"b\\c\nd";
  family->WithLabels({nasty})->Inc();

  std::string text = registry.RenderPrometheus();
  auto parsed = ParseExposition(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->help.at("test_escapes_total"),
            "Help with \\ and \n inside.");
  ASSERT_EQ(parsed->samples.size(), 1u);
  const std::string* tenant = parsed->samples[0].FindLabel("tenant");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(*tenant, nasty);
  EXPECT_TRUE(LintExposition(text).ok());
}

TEST(MetricsTest, HistogramExpositionIsCumulativeAndLintsClean) {
  MetricsRegistry registry;
  HistogramFamily* family = registry.AddHistogram(
      "test_latency_seconds", "Latency.", {0.1, 1.0}, {"phase"});
  Histogram* h = family->WithLabels({"solve"});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);

  std::string text = registry.RenderPrometheus();
  ASSERT_TRUE(LintExposition(text).ok()) << LintExposition(text).ToString();

  auto parsed = ParseExposition(text);
  ASSERT_TRUE(parsed.ok());
  double le_01 = -1, le_1 = -1, le_inf = -1, sum = -1, count = -1;
  for (const auto& sample : parsed->samples) {
    if (sample.name == "test_latency_seconds_bucket") {
      const std::string* le = sample.FindLabel("le");
      ASSERT_NE(le, nullptr);
      if (*le == "0.1") le_01 = sample.value;
      if (*le == "1") le_1 = sample.value;
      if (*le == "+Inf") le_inf = sample.value;
    } else if (sample.name == "test_latency_seconds_sum") {
      sum = sample.value;
    } else if (sample.name == "test_latency_seconds_count") {
      count = sample.value;
    }
  }
  EXPECT_DOUBLE_EQ(le_01, 1.0);   // cumulative
  EXPECT_DOUBLE_EQ(le_1, 2.0);
  EXPECT_DOUBLE_EQ(le_inf, 3.0);
  EXPECT_DOUBLE_EQ(count, 3.0);
  EXPECT_NEAR(sum, 5.55, 1e-9);
}

TEST(MetricsTest, WithLabelsReturnsStablePointer) {
  MetricsRegistry registry;
  CounterFamily* family =
      registry.AddCounter("test_stable_total", "Stable.", {"k"});
  Counter* first = family->WithLabels({"v"});
  first->Inc();
  // Creating more series must not move existing instruments.
  for (int i = 0; i < 100; ++i) {
    family->WithLabels({"other" + std::to_string(i)})->Inc();
  }
  EXPECT_EQ(family->WithLabels({"v"}), first);
  EXPECT_EQ(first->Value(), 1u);
}

TEST(MetricsTest, CallbackFamilySampledAtScrapeTime) {
  MetricsRegistry registry;
  std::atomic<int> source{7};
  registry.AddCallback(
      "test_callback_total", "Callback.", MetricsRegistry::Kind::kCounter,
      {"kind"}, [&source](std::vector<MetricsRegistry::Sample>* out) {
        out->push_back({{"a"}, static_cast<double>(source.load())});
      });

  auto first = ParseExposition(registry.RenderPrometheus());
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->samples.size(), 1u);
  EXPECT_DOUBLE_EQ(first->samples[0].value, 7.0);

  source = 9;  // a later scrape sees the new value: nothing is cached
  auto second = ParseExposition(registry.RenderPrometheus());
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second->samples[0].value, 9.0);
}

TEST(MetricsTest, NameValidation) {
  EXPECT_TRUE(ValidMetricName("qfix_requests_total"));
  EXPECT_TRUE(ValidMetricName("ns:sub_total"));
  EXPECT_FALSE(ValidMetricName(""));
  EXPECT_FALSE(ValidMetricName("9starts_with_digit"));
  EXPECT_FALSE(ValidMetricName("has-dash"));
  EXPECT_TRUE(ValidLabelName("tenant"));
  EXPECT_FALSE(ValidLabelName("__reserved"));
  EXPECT_FALSE(ValidLabelName("has.dot"));
}

// ---------------------------------------------------------------------------
// Lint negative cases: each payload is one specific scraper-visible bug.

TEST(MetricsLintTest, RejectsSampleWithoutType) {
  EXPECT_FALSE(LintExposition("orphan_total 1\n").ok());
}

TEST(MetricsLintTest, RejectsDuplicateSeries) {
  const char* text =
      "# TYPE dup_total counter\n"
      "dup_total{t=\"a\"} 1\n"
      "dup_total{t=\"a\"} 2\n";
  EXPECT_FALSE(LintExposition(text).ok());
}

TEST(MetricsLintTest, RejectsNegativeCounter) {
  EXPECT_FALSE(
      LintExposition("# TYPE neg_total counter\nneg_total -1\n").ok());
}

TEST(MetricsLintTest, RejectsNonCumulativeHistogram) {
  const char* text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"0.1\"} 5\n"
      "h_bucket{le=\"1\"} 3\n"          // decreasing: not cumulative
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 1\n"
      "h_count 5\n";
  EXPECT_FALSE(LintExposition(text).ok());
}

TEST(MetricsLintTest, RejectsHistogramWithoutInfBucket) {
  const char* text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"0.1\"} 1\n"
      "h_sum 1\n"
      "h_count 1\n";
  EXPECT_FALSE(LintExposition(text).ok());
}

TEST(MetricsLintTest, RejectsCountDisagreeingWithInfBucket) {
  const char* text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"+Inf\"} 3\n"
      "h_sum 1\n"
      "h_count 4\n";
  EXPECT_FALSE(LintExposition(text).ok());
}

TEST(MetricsParseTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseExposition("no_value\n").ok());
  EXPECT_FALSE(ParseExposition("bad{unterminated=\"x} 1\n").ok());
  EXPECT_FALSE(ParseExposition("bad_value notanumber\n").ok());
}

TEST(MetricsParseTest, AcceptsInfNanAndTimestamps) {
  auto parsed = ParseExposition(
      "g_one +Inf\n"
      "g_two -Inf\n"
      "g_three NaN\n"
      "g_four 1.5 1712000000000\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->samples.size(), 4u);
  EXPECT_TRUE(std::isinf(parsed->samples[0].value));
  EXPECT_TRUE(std::isinf(parsed->samples[1].value));
  EXPECT_LT(parsed->samples[1].value, 0);
  EXPECT_TRUE(std::isnan(parsed->samples[2].value));
  EXPECT_DOUBLE_EQ(parsed->samples[3].value, 1.5);
}

// ---------------------------------------------------------------------------
// Concurrency: scrapes interleaved with writers must stay lint-clean.
// (Run under the TSan lane in CI; the assertions here catch torn
// exposition, TSan catches races.)

TEST(MetricsTest, ConcurrentObserveAndRenderStaysConsistent) {
  MetricsRegistry registry;
  CounterFamily* counters =
      registry.AddCounter("test_mt_total", "MT.", {"worker"});
  HistogramFamily* hists = registry.AddHistogram(
      "test_mt_seconds", "MT latency.", {0.001, 0.01, 0.1}, {"worker"});

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::string label = "w" + std::to_string(w);
      Counter* c = counters->WithLabels({label});
      Histogram* h = hists->WithLabels({label});
      for (int i = 0; i < kOpsPerWriter; ++i) {
        c->Inc();
        h->Observe(0.0005 * (i % 400));
      }
    });
  }
  // Scrape continuously while writers run; every payload must lint.
  int scrapes = 0;
  while (!stop.load()) {
    std::string text = registry.RenderPrometheus();
    Status lint = LintExposition(text);
    ASSERT_TRUE(lint.ok()) << lint.ToString();
    ++scrapes;
    bool all_done = true;
    for (int w = 0; w < kWriters; ++w) {
      if (counters->WithLabels({"w" + std::to_string(w)})->Value() <
          kOpsPerWriter) {
        all_done = false;
      }
    }
    if (all_done) stop = true;
  }
  for (std::thread& t : writers) t.join();
  EXPECT_GE(scrapes, 1);

  // Final totals are exact once writers are quiescent.
  auto parsed = ParseExposition(registry.RenderPrometheus());
  ASSERT_TRUE(parsed.ok());
  double total = 0, count_total = 0;
  for (const auto& sample : parsed->samples) {
    if (sample.name == "test_mt_total") total += sample.value;
    if (sample.name == "test_mt_seconds_count") count_total += sample.value;
  }
  EXPECT_DOUBLE_EQ(total, kWriters * kOpsPerWriter);
  EXPECT_DOUBLE_EQ(count_total, kWriters * kOpsPerWriter);
}

// ---------------------------------------------------------------------------
// Tracing

TEST(TraceTest, SpansRecordOrderedOffsets) {
  TraceContext trace("test-id");
  EXPECT_EQ(trace.request_id(), "test-id");

  size_t parse = trace.BeginSpan("parse");
  trace.EndSpan(parse);
  size_t solve = trace.BeginSpan("solve");
  trace.EndSpan(solve);

  ASSERT_EQ(trace.spans().size(), 2u);
  const TraceSpan& first = trace.spans()[0];
  const TraceSpan& second = trace.spans()[1];
  EXPECT_EQ(first.phase, "parse");
  EXPECT_EQ(second.phase, "solve");
  EXPECT_GE(first.start_seconds, 0.0);
  EXPECT_LE(first.start_seconds, first.end_seconds);
  EXPECT_LE(first.end_seconds, second.start_seconds);
  EXPECT_LE(second.end_seconds, trace.ElapsedSeconds());
}

TEST(TraceTest, EndSpanOnlyExtendsForward) {
  TraceContext trace;
  size_t span = trace.BeginSpan("phase");
  trace.EndSpan(span);
  double first_end = trace.spans()[0].end_seconds;
  trace.EndSpan(span);  // re-close later: extends
  EXPECT_GE(trace.spans()[0].end_seconds, first_end);
}

TEST(TraceTest, AddSpanClampsBackwardExtents) {
  TraceContext trace;
  trace.AddSpan("computed", 0.5, 0.2);  // end before start: clamped
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.spans()[0].start_seconds, 0.5);
  EXPECT_DOUBLE_EQ(trace.spans()[0].end_seconds, 0.5);
  EXPECT_DOUBLE_EQ(trace.spans()[0].DurationSeconds(), 0.0);
}

TEST(TraceTest, GeneratedRequestIdsAreUniqueAndWellFormed) {
  std::set<std::string> ids;
  for (int i = 0; i < 1000; ++i) {
    std::string id = GenerateRequestId();
    ASSERT_EQ(id.size(), 18u) << id;
    ASSERT_EQ(id.compare(0, 2, "q-"), 0) << id;
    for (size_t p = 2; p < id.size(); ++p) {
      char c = id[p];
      ASSERT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << id;
    }
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
  }
  // An empty-constructed context mints an id too.
  EXPECT_FALSE(TraceContext().request_id().empty());
}

TEST(TraceTest, SanitizeRequestIdFiltersUnsafeValues) {
  EXPECT_EQ(SanitizeRequestId("abc-123.XYZ_ok"), "abc-123.XYZ_ok");
  EXPECT_EQ(SanitizeRequestId(""), "");
  EXPECT_EQ(SanitizeRequestId("evil\r\nSet-Cookie: x"), "");
  EXPECT_EQ(SanitizeRequestId("has space"), "");
  EXPECT_EQ(SanitizeRequestId("quote\"inject"), "");
  EXPECT_EQ(SanitizeRequestId(std::string(65, 'a')), "");
  EXPECT_EQ(SanitizeRequestId(std::string(64, 'a')), std::string(64, 'a'));
}

// ---------------------------------------------------------------------------
// Structured logging

class LogCaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogSink([this](const std::string& line) { lines_.push_back(line); });
    SetLogLevel(LogLevel::kInfo);
    SetLogJson(false);
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(LogLevel::kInfo);
    SetLogJson(false);
  }
  std::vector<std::string> lines_;
};

TEST_F(LogCaptureTest, PlainFormatAndFieldQuoting) {
  LogEvent(LogLevel::kInfo, "request_done")
      .Str("id", "q-1234")
      .Str("msg", "two words")
      .Int("items", 3)
      .Double("ms", 1.5)
      .Bool("cached", true);
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_NE(line.find(" INFO request_done "), std::string::npos) << line;
  EXPECT_NE(line.find("id=q-1234"), std::string::npos) << line;
  // Values with spaces are quoted; bare tokens are not.
  EXPECT_NE(line.find("msg=\"two words\""), std::string::npos) << line;
  EXPECT_NE(line.find("items=3"), std::string::npos) << line;
  EXPECT_NE(line.find("cached=true"), std::string::npos) << line;
}

TEST_F(LogCaptureTest, LevelFilterDropsBelowThreshold) {
  SetLogLevel(LogLevel::kWarn);
  LogEvent(LogLevel::kInfo, "dropped");
  LogEvent(LogLevel::kDebug, "dropped_too");
  LogEvent(LogLevel::kWarn, "kept");
  LogEvent(LogLevel::kError, "kept_too");
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_NE(lines_[0].find("kept"), std::string::npos);
  EXPECT_NE(lines_[1].find("kept_too"), std::string::npos);

  SetLogLevel(LogLevel::kOff);
  LogEvent(LogLevel::kError, "silenced");
  EXPECT_EQ(lines_.size(), 2u);
}

TEST_F(LogCaptureTest, JsonLinesCarryAllFields) {
  SetLogJson(true);
  LogEvent(LogLevel::kWarn, "slow_request")
      .Str("id", "q-ff")
      .Double("total_ms", 12.25)
      .Int("items", -2);
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"event\":\"slow_request\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"id\":\"q-ff\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"items\":-2"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ts\":\""), std::string::npos) << line;
}

TEST(LogLevelTest, ParseAndNameRoundTrip) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kOff);  // untouched on failure
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
}

}  // namespace
}  // namespace obs
}  // namespace qfix
