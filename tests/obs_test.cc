// Tests for the observability layer: obs::MetricsRegistry (instruments,
// Prometheus exposition, the in-repo parser/linter the CI smoke and
// qfix_load reuse), obs::TraceContext (span bracketing, request ids),
// and the structured logger in common/logging.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "harness/histogram.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace qfix {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Instruments

TEST(MetricsTest, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);

  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  Histogram h({0.1, 1.0, 10.0});
  h.Observe(0.05);   // bucket 0
  h.Observe(0.1);    // le=0.1 is inclusive: bucket 0
  h.Observe(0.5);    // bucket 1
  h.Observe(100.0);  // +Inf bucket
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 0u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // +Inf
  EXPECT_DOUBLE_EQ(h.Sum(), 0.05 + 0.1 + 0.5 + 100.0);
}

TEST(MetricsTest, DefaultLatencyEdgesMatchHarnessHistogramLayout) {
  std::vector<double> edges = DefaultLatencyBucketEdges();
  ASSERT_FALSE(edges.empty());
  // Strictly ascending (a Histogram constructor invariant, but assert
  // it here so a bad derivation fails with a readable message).
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]) << "edge " << i;
  }
  // Every edge must be an exact harness::LatencyHistogram bucket upper
  // edge: recording an edge-valued latency into both histograms lands
  // in buckets with identical upper bounds.
  using harness::LatencyHistogram;
  std::set<uint64_t> harness_edges_us;
  const size_t total =
      LatencyHistogram::kLinearBuckets +
      LatencyHistogram::kGroups * LatencyHistogram::kSubBuckets;
  for (size_t i = 0; i < total; ++i) {
    harness_edges_us.insert(LatencyHistogram::UpperEdgeUs(i));
  }
  for (double edge : edges) {
    uint64_t us = static_cast<uint64_t>(std::llround(edge * 1e6));
    EXPECT_TRUE(harness_edges_us.count(us))
        << edge << "s is not a harness bucket edge";
  }
}

// ---------------------------------------------------------------------------
// Registry + exposition round-trip

TEST(MetricsTest, RenderParsesBackWithTypesHelpAndValues) {
  MetricsRegistry registry;
  CounterFamily* requests =
      registry.AddCounter("test_requests_total", "Requests served.",
                          {"endpoint"});
  requests->WithLabels({"diagnose"})->Inc(3);
  requests->WithLabels({"healthz"})->Inc(1);
  GaugeFamily* inflight = registry.AddGauge("test_inflight", "In flight.");
  inflight->Get()->Set(2.0);

  auto parsed = ParseExposition(registry.RenderPrometheus());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->types.at("test_requests_total"), "counter");
  EXPECT_EQ(parsed->types.at("test_inflight"), "gauge");
  EXPECT_EQ(parsed->help.at("test_requests_total"), "Requests served.");

  double diagnose = -1, healthz = -1, gauge = -1;
  for (const auto& sample : parsed->samples) {
    if (sample.name == "test_requests_total") {
      const std::string* endpoint = sample.FindLabel("endpoint");
      ASSERT_NE(endpoint, nullptr);
      (*endpoint == "diagnose" ? diagnose : healthz) = sample.value;
    } else if (sample.name == "test_inflight") {
      gauge = sample.value;
    }
  }
  EXPECT_DOUBLE_EQ(diagnose, 3.0);
  EXPECT_DOUBLE_EQ(healthz, 1.0);
  EXPECT_DOUBLE_EQ(gauge, 2.0);
}

TEST(MetricsTest, LabelValueEscapingRoundTrips) {
  MetricsRegistry registry;
  CounterFamily* family =
      registry.AddCounter("test_escapes_total", "Help with \\ and \n inside.",
                          {"tenant"});
  const std::string nasty = "a\"b\\c\nd";
  family->WithLabels({nasty})->Inc();

  std::string text = registry.RenderPrometheus();
  auto parsed = ParseExposition(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->help.at("test_escapes_total"),
            "Help with \\ and \n inside.");
  ASSERT_EQ(parsed->samples.size(), 1u);
  const std::string* tenant = parsed->samples[0].FindLabel("tenant");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(*tenant, nasty);
  EXPECT_TRUE(LintExposition(text).ok());
}

TEST(MetricsTest, HistogramExpositionIsCumulativeAndLintsClean) {
  MetricsRegistry registry;
  HistogramFamily* family = registry.AddHistogram(
      "test_latency_seconds", "Latency.", {0.1, 1.0}, {"phase"});
  Histogram* h = family->WithLabels({"solve"});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);

  std::string text = registry.RenderPrometheus();
  ASSERT_TRUE(LintExposition(text).ok()) << LintExposition(text).ToString();

  auto parsed = ParseExposition(text);
  ASSERT_TRUE(parsed.ok());
  double le_01 = -1, le_1 = -1, le_inf = -1, sum = -1, count = -1;
  for (const auto& sample : parsed->samples) {
    if (sample.name == "test_latency_seconds_bucket") {
      const std::string* le = sample.FindLabel("le");
      ASSERT_NE(le, nullptr);
      if (*le == "0.1") le_01 = sample.value;
      if (*le == "1") le_1 = sample.value;
      if (*le == "+Inf") le_inf = sample.value;
    } else if (sample.name == "test_latency_seconds_sum") {
      sum = sample.value;
    } else if (sample.name == "test_latency_seconds_count") {
      count = sample.value;
    }
  }
  EXPECT_DOUBLE_EQ(le_01, 1.0);   // cumulative
  EXPECT_DOUBLE_EQ(le_1, 2.0);
  EXPECT_DOUBLE_EQ(le_inf, 3.0);
  EXPECT_DOUBLE_EQ(count, 3.0);
  EXPECT_NEAR(sum, 5.55, 1e-9);
}

TEST(MetricsTest, WithLabelsReturnsStablePointer) {
  MetricsRegistry registry;
  CounterFamily* family =
      registry.AddCounter("test_stable_total", "Stable.", {"k"});
  Counter* first = family->WithLabels({"v"});
  first->Inc();
  // Creating more series must not move existing instruments.
  for (int i = 0; i < 100; ++i) {
    family->WithLabels({"other" + std::to_string(i)})->Inc();
  }
  EXPECT_EQ(family->WithLabels({"v"}), first);
  EXPECT_EQ(first->Value(), 1u);
}

TEST(MetricsTest, CallbackFamilySampledAtScrapeTime) {
  MetricsRegistry registry;
  std::atomic<int> source{7};
  registry.AddCallback(
      "test_callback_total", "Callback.", MetricsRegistry::Kind::kCounter,
      {"kind"}, [&source](std::vector<MetricsRegistry::Sample>* out) {
        out->push_back({{"a"}, static_cast<double>(source.load())});
      });

  auto first = ParseExposition(registry.RenderPrometheus());
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->samples.size(), 1u);
  EXPECT_DOUBLE_EQ(first->samples[0].value, 7.0);

  source = 9;  // a later scrape sees the new value: nothing is cached
  auto second = ParseExposition(registry.RenderPrometheus());
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second->samples[0].value, 9.0);
}

TEST(MetricsTest, NameValidation) {
  EXPECT_TRUE(ValidMetricName("qfix_requests_total"));
  EXPECT_TRUE(ValidMetricName("ns:sub_total"));
  EXPECT_FALSE(ValidMetricName(""));
  EXPECT_FALSE(ValidMetricName("9starts_with_digit"));
  EXPECT_FALSE(ValidMetricName("has-dash"));
  EXPECT_TRUE(ValidLabelName("tenant"));
  EXPECT_FALSE(ValidLabelName("__reserved"));
  EXPECT_FALSE(ValidLabelName("has.dot"));
}

// ---------------------------------------------------------------------------
// Lint negative cases: each payload is one specific scraper-visible bug.

TEST(MetricsLintTest, RejectsSampleWithoutType) {
  EXPECT_FALSE(LintExposition("orphan_total 1\n").ok());
}

TEST(MetricsLintTest, RejectsDuplicateSeries) {
  const char* text =
      "# TYPE dup_total counter\n"
      "dup_total{t=\"a\"} 1\n"
      "dup_total{t=\"a\"} 2\n";
  EXPECT_FALSE(LintExposition(text).ok());
}

TEST(MetricsLintTest, RejectsNegativeCounter) {
  EXPECT_FALSE(
      LintExposition("# TYPE neg_total counter\nneg_total -1\n").ok());
}

TEST(MetricsLintTest, RejectsNonCumulativeHistogram) {
  const char* text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"0.1\"} 5\n"
      "h_bucket{le=\"1\"} 3\n"          // decreasing: not cumulative
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 1\n"
      "h_count 5\n";
  EXPECT_FALSE(LintExposition(text).ok());
}

TEST(MetricsLintTest, RejectsHistogramWithoutInfBucket) {
  const char* text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"0.1\"} 1\n"
      "h_sum 1\n"
      "h_count 1\n";
  EXPECT_FALSE(LintExposition(text).ok());
}

TEST(MetricsLintTest, RejectsCountDisagreeingWithInfBucket) {
  const char* text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"+Inf\"} 3\n"
      "h_sum 1\n"
      "h_count 4\n";
  EXPECT_FALSE(LintExposition(text).ok());
}

TEST(MetricsParseTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseExposition("no_value\n").ok());
  EXPECT_FALSE(ParseExposition("bad{unterminated=\"x} 1\n").ok());
  EXPECT_FALSE(ParseExposition("bad_value notanumber\n").ok());
}

TEST(MetricsParseTest, AcceptsInfNanAndTimestamps) {
  auto parsed = ParseExposition(
      "g_one +Inf\n"
      "g_two -Inf\n"
      "g_three NaN\n"
      "g_four 1.5 1712000000000\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->samples.size(), 4u);
  EXPECT_TRUE(std::isinf(parsed->samples[0].value));
  EXPECT_TRUE(std::isinf(parsed->samples[1].value));
  EXPECT_LT(parsed->samples[1].value, 0);
  EXPECT_TRUE(std::isnan(parsed->samples[2].value));
  EXPECT_DOUBLE_EQ(parsed->samples[3].value, 1.5);
}

// ---------------------------------------------------------------------------
// Concurrency: scrapes interleaved with writers must stay lint-clean.
// (Run under the TSan lane in CI; the assertions here catch torn
// exposition, TSan catches races.)

TEST(MetricsTest, ConcurrentObserveAndRenderStaysConsistent) {
  MetricsRegistry registry;
  CounterFamily* counters =
      registry.AddCounter("test_mt_total", "MT.", {"worker"});
  HistogramFamily* hists = registry.AddHistogram(
      "test_mt_seconds", "MT latency.", {0.001, 0.01, 0.1}, {"worker"});

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::string label = "w" + std::to_string(w);
      Counter* c = counters->WithLabels({label});
      Histogram* h = hists->WithLabels({label});
      for (int i = 0; i < kOpsPerWriter; ++i) {
        c->Inc();
        h->Observe(0.0005 * (i % 400));
      }
    });
  }
  // Scrape continuously while writers run; every payload must lint.
  int scrapes = 0;
  while (!stop.load()) {
    std::string text = registry.RenderPrometheus();
    Status lint = LintExposition(text);
    ASSERT_TRUE(lint.ok()) << lint.ToString();
    ++scrapes;
    bool all_done = true;
    for (int w = 0; w < kWriters; ++w) {
      if (counters->WithLabels({"w" + std::to_string(w)})->Value() <
          kOpsPerWriter) {
        all_done = false;
      }
    }
    if (all_done) stop = true;
  }
  for (std::thread& t : writers) t.join();
  EXPECT_GE(scrapes, 1);

  // Final totals are exact once writers are quiescent.
  auto parsed = ParseExposition(registry.RenderPrometheus());
  ASSERT_TRUE(parsed.ok());
  double total = 0, count_total = 0;
  for (const auto& sample : parsed->samples) {
    if (sample.name == "test_mt_total") total += sample.value;
    if (sample.name == "test_mt_seconds_count") count_total += sample.value;
  }
  EXPECT_DOUBLE_EQ(total, kWriters * kOpsPerWriter);
  EXPECT_DOUBLE_EQ(count_total, kWriters * kOpsPerWriter);
}

// ---------------------------------------------------------------------------
// Tracing

TEST(TraceTest, SpansRecordOrderedOffsets) {
  TraceContext trace("test-id");
  EXPECT_EQ(trace.request_id(), "test-id");

  size_t parse = trace.BeginSpan("parse");
  trace.EndSpan(parse);
  size_t solve = trace.BeginSpan("solve");
  trace.EndSpan(solve);

  ASSERT_EQ(trace.spans().size(), 2u);
  const TraceSpan& first = trace.spans()[0];
  const TraceSpan& second = trace.spans()[1];
  EXPECT_EQ(first.phase, "parse");
  EXPECT_EQ(second.phase, "solve");
  EXPECT_GE(first.start_seconds, 0.0);
  EXPECT_LE(first.start_seconds, first.end_seconds);
  EXPECT_LE(first.end_seconds, second.start_seconds);
  EXPECT_LE(second.end_seconds, trace.ElapsedSeconds());
}

TEST(TraceTest, EndSpanOnlyExtendsForward) {
  TraceContext trace;
  size_t span = trace.BeginSpan("phase");
  trace.EndSpan(span);
  double first_end = trace.spans()[0].end_seconds;
  trace.EndSpan(span);  // re-close later: extends
  EXPECT_GE(trace.spans()[0].end_seconds, first_end);
}

TEST(TraceTest, AddSpanClampsBackwardExtents) {
  TraceContext trace;
  trace.AddSpan("computed", 0.5, 0.2);  // end before start: clamped
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.spans()[0].start_seconds, 0.5);
  EXPECT_DOUBLE_EQ(trace.spans()[0].end_seconds, 0.5);
  EXPECT_DOUBLE_EQ(trace.spans()[0].DurationSeconds(), 0.0);
}

TEST(TraceTest, GeneratedRequestIdsAreUniqueAndWellFormed) {
  std::set<std::string> ids;
  for (int i = 0; i < 1000; ++i) {
    std::string id = GenerateRequestId();
    ASSERT_EQ(id.size(), 18u) << id;
    ASSERT_EQ(id.compare(0, 2, "q-"), 0) << id;
    for (size_t p = 2; p < id.size(); ++p) {
      char c = id[p];
      ASSERT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << id;
    }
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
  }
  // An empty-constructed context mints an id too.
  EXPECT_FALSE(TraceContext().request_id().empty());
}

TEST(TraceTest, SanitizeRequestIdFiltersUnsafeValues) {
  EXPECT_EQ(SanitizeRequestId("abc-123.XYZ_ok"), "abc-123.XYZ_ok");
  EXPECT_EQ(SanitizeRequestId(""), "");
  EXPECT_EQ(SanitizeRequestId("evil\r\nSet-Cookie: x"), "");
  EXPECT_EQ(SanitizeRequestId("has space"), "");
  EXPECT_EQ(SanitizeRequestId("quote\"inject"), "");
  EXPECT_EQ(SanitizeRequestId(std::string(65, 'a')), "");
  EXPECT_EQ(SanitizeRequestId(std::string(64, 'a')), std::string(64, 'a'));
}

// ---------------------------------------------------------------------------
// Structured logging

class LogCaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogSink([this](const std::string& line) { lines_.push_back(line); });
    SetLogLevel(LogLevel::kInfo);
    SetLogJson(false);
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(LogLevel::kInfo);
    SetLogJson(false);
  }
  std::vector<std::string> lines_;
};

TEST_F(LogCaptureTest, PlainFormatAndFieldQuoting) {
  LogEvent(LogLevel::kInfo, "request_done")
      .Str("id", "q-1234")
      .Str("msg", "two words")
      .Int("items", 3)
      .Double("ms", 1.5)
      .Bool("cached", true);
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_NE(line.find(" INFO request_done "), std::string::npos) << line;
  EXPECT_NE(line.find("id=q-1234"), std::string::npos) << line;
  // Values with spaces are quoted; bare tokens are not.
  EXPECT_NE(line.find("msg=\"two words\""), std::string::npos) << line;
  EXPECT_NE(line.find("items=3"), std::string::npos) << line;
  EXPECT_NE(line.find("cached=true"), std::string::npos) << line;
}

TEST_F(LogCaptureTest, LevelFilterDropsBelowThreshold) {
  SetLogLevel(LogLevel::kWarn);
  LogEvent(LogLevel::kInfo, "dropped");
  LogEvent(LogLevel::kDebug, "dropped_too");
  LogEvent(LogLevel::kWarn, "kept");
  LogEvent(LogLevel::kError, "kept_too");
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_NE(lines_[0].find("kept"), std::string::npos);
  EXPECT_NE(lines_[1].find("kept_too"), std::string::npos);

  SetLogLevel(LogLevel::kOff);
  LogEvent(LogLevel::kError, "silenced");
  EXPECT_EQ(lines_.size(), 2u);
}

TEST_F(LogCaptureTest, JsonLinesCarryAllFields) {
  SetLogJson(true);
  LogEvent(LogLevel::kWarn, "slow_request")
      .Str("id", "q-ff")
      .Double("total_ms", 12.25)
      .Int("items", -2);
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"event\":\"slow_request\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"id\":\"q-ff\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"items\":-2"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ts\":\""), std::string::npos) << line;
}

TEST(LogLevelTest, ParseAndNameRoundTrip) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kOff);  // untouched on failure
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
}

TEST_F(LogCaptureTest, WarnRateLimitDropsAndCounts) {
  const uint64_t dropped_before = DroppedLogLines();
  SetWarnLogPerSec(2.0);  // burst 2, then drops
  for (int i = 0; i < 10; ++i) {
    LogEvent(LogLevel::kWarn, "slow_request").Int("i", i);
  }
  // ERROR is never limited, even with the WARN bucket empty.
  LogEvent(LogLevel::kError, "still_logged");
  SetWarnLogPerSec(0.0);  // restore: unlimited
  size_t warns = 0, errors = 0;
  for (const std::string& line : lines_) {
    if (line.find("slow_request") != std::string::npos) ++warns;
    if (line.find("still_logged") != std::string::npos) ++errors;
  }
  EXPECT_EQ(warns, 2u);
  EXPECT_EQ(errors, 1u);
  EXPECT_EQ(DroppedLogLines() - dropped_before, 8u);
}

// ---------------------------------------------------------------------------
// Histogram exemplars

TEST(MetricsTest, ExemplarTracksWorstRecentPerBucket) {
  Histogram h({0.1, 1.0});
  h.ObserveWithExemplar(0.05, "q-fast");
  h.ObserveWithExemplar(0.5, "q-mid");
  h.ObserveWithExemplar(0.7, "q-mid-worse");
  h.ObserveWithExemplar(0.3, "q-mid-better");  // not a new worst
  h.ObserveWithExemplar(50.0, "q-inf");
  ASSERT_TRUE(h.ExemplarFor(0).valid());
  EXPECT_EQ(h.ExemplarFor(0).trace_id, "q-fast");
  ASSERT_TRUE(h.ExemplarFor(1).valid());
  EXPECT_EQ(h.ExemplarFor(1).trace_id, "q-mid-worse");
  EXPECT_DOUBLE_EQ(h.ExemplarFor(1).value, 0.7);
  ASSERT_TRUE(h.ExemplarFor(2).valid());
  EXPECT_EQ(h.ExemplarFor(2).trace_id, "q-inf");
  // Empty trace id degrades to a plain Observe: count moves, exemplar
  // unchanged.
  h.ObserveWithExemplar(0.9, "");
  EXPECT_EQ(h.ExemplarFor(1).trace_id, "q-mid-worse");
}

TEST(MetricsTest, ExemplarsRenderAndParseAndLintClean) {
  MetricsRegistry registry;
  auto* family = registry.AddHistogram("qfix_test_seconds", "test latency",
                                       {0.1, 1.0});
  Histogram* h = family->WithLabels({});
  h->ObserveWithExemplar(0.05, "q-abc123");
  h->ObserveWithExemplar(0.5, "q-def456");

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# {trace_id=\"q-abc123\"} 0.05"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# {trace_id=\"q-def456\"} 0.5"), std::string::npos)
      << text;

  Status lint = LintExposition(text);
  EXPECT_TRUE(lint.ok()) << lint.ToString();
  auto parsed = ParseExposition(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  bool found = false;
  for (const auto& sample : parsed->samples) {
    if (sample.name != "qfix_test_seconds_bucket") continue;
    const std::string* le = sample.FindLabel("le");
    if (le == nullptr || *le != "0.1") continue;
    found = true;
    ASSERT_TRUE(sample.has_exemplar);
    const std::string* trace_id = sample.FindExemplarLabel("trace_id");
    ASSERT_NE(trace_id, nullptr);
    EXPECT_EQ(*trace_id, "q-abc123");
    EXPECT_DOUBLE_EQ(sample.exemplar_value, 0.05);
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Flight recorder

RetainedTrace MakeTrace(const std::string& id, TraceOutcome outcome,
                        double duration_seconds, int status = 200) {
  RetainedTrace t;
  t.request_id = id;
  t.tenant = "t1";
  t.dataset = "t1/taxes";
  t.endpoint = "/v1/diagnose";
  t.outcome = outcome;
  t.http_status = status;
  t.duration_seconds = duration_seconds;
  return t;
}

TEST(TraceRecorderTest, TailSamplingRetainsSlowErrorShedAlways) {
  TraceRecorder::Options options;
  options.sample_probability = 0.0;  // ok-fast is NEVER kept
  options.slow_threshold_seconds = 0.1;
  TraceRecorder recorder(options);

  EXPECT_FALSE(recorder.Record(MakeTrace("ok", TraceOutcome::kOk, 0.01)));
  // Duration at/over the threshold upgrades kOk to kSlow.
  EXPECT_TRUE(recorder.Record(MakeTrace("slow", TraceOutcome::kOk, 0.1)));
  EXPECT_TRUE(
      recorder.Record(MakeTrace("err", TraceOutcome::kError, 0.01, 500)));
  EXPECT_TRUE(
      recorder.Record(MakeTrace("shed", TraceOutcome::kShed, 0.001, 429)));

  TraceRecorder::Stats stats = recorder.stats();
  EXPECT_EQ(stats.recorded_total, 4u);
  EXPECT_EQ(stats.retained_total, 3u);
  EXPECT_EQ(stats.sampled_out_total, 1u);

  auto all = recorder.Snapshot({});
  ASSERT_EQ(all.size(), 3u);
  // Newest first.
  EXPECT_EQ(all[0].request_id, "shed");
  EXPECT_EQ(all[1].request_id, "err");
  EXPECT_EQ(all[2].request_id, "slow");
  EXPECT_EQ(all[2].outcome, TraceOutcome::kSlow);  // upgraded
  EXPECT_EQ(all[2].retain_reason, "slow");
}

TEST(TraceRecorderTest, ProbabilityOneRetainsEverything) {
  TraceRecorder::Options options;
  options.sample_probability = 1.0;
  TraceRecorder recorder(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(recorder.Record(
        MakeTrace("ok-" + std::to_string(i), TraceOutcome::kOk, 0.001)));
  }
  EXPECT_EQ(recorder.stats().retained_total, 100u);
  EXPECT_EQ(recorder.stats().sampled_out_total, 0u);
}

TEST(TraceRecorderTest, ByteBudgetEvictsOldestButKeepsNewest) {
  TraceRecorder::Options options;
  options.sample_probability = 1.0;
  // Tiny budget: a couple of traces at most.
  options.byte_budget = 2 * MakeTrace("x", TraceOutcome::kOk, 0.0)
                                .ApproxBytes();
  TraceRecorder recorder(options);
  for (int i = 0; i < 50; ++i) {
    recorder.Record(MakeTrace("t" + std::to_string(i), TraceOutcome::kOk,
                              0.001));
  }
  TraceRecorder::Stats stats = recorder.stats();
  EXPECT_EQ(stats.retained_total, 50u);
  EXPECT_GT(stats.evicted_total, 0u);
  EXPECT_LE(stats.buffered_bytes, stats.byte_budget);
  EXPECT_GE(stats.buffered, 1u);  // the newest trace always survives
  auto all = recorder.Snapshot({});
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front().request_id, "t49");
}

TEST(TraceRecorderTest, ForceRetainPinsOkFastTraceOnce) {
  TraceRecorder::Options options;
  options.sample_probability = 0.0;
  TraceRecorder recorder(options);
  recorder.ForceRetain("q-pinned", "stall:solve_deadline");

  EXPECT_TRUE(recorder.Record(MakeTrace("q-pinned", TraceOutcome::kOk, 0.01)));
  // The pin was consumed: the same id records again as plain ok-fast.
  EXPECT_FALSE(recorder.Record(MakeTrace("q-pinned", TraceOutcome::kOk, 0.01)));

  auto all = recorder.Snapshot({});
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].forced);
  EXPECT_EQ(all[0].retain_reason, "stall:solve_deadline");
  EXPECT_EQ(recorder.stats().forced_total, 1u);
}

TEST(TraceRecorderTest, SnapshotFiltersMatch) {
  TraceRecorder::Options options;
  options.sample_probability = 1.0;
  TraceRecorder recorder(options);
  auto t1 = MakeTrace("a", TraceOutcome::kOk, 0.001);
  auto t2 = MakeTrace("b", TraceOutcome::kError, 0.5, 500);
  t2.tenant = "t2";
  t2.dataset = "t2/sales";
  recorder.Record(std::move(t1));
  recorder.Record(std::move(t2));

  TraceRecorder::Filter by_tenant;
  by_tenant.tenant = "t2";
  auto got = recorder.Snapshot(by_tenant);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].request_id, "b");

  TraceRecorder::Filter by_duration;
  by_duration.min_duration_seconds = 0.1;
  got = recorder.Snapshot(by_duration);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].request_id, "b");

  TraceRecorder::Filter by_outcome;
  by_outcome.has_outcome = true;
  by_outcome.outcome = TraceOutcome::kError;
  got = recorder.Snapshot(by_outcome);
  ASSERT_EQ(got.size(), 1u);

  TraceRecorder::Filter limited;
  limited.limit = 1;
  got = recorder.Snapshot(limited);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].request_id, "b");  // newest wins the limit
}

TEST(TraceRecorderTest, OutcomeNamesRoundTrip) {
  EXPECT_STREQ(TraceOutcomeName(TraceOutcome::kSlow), "slow");
  TraceOutcome out = TraceOutcome::kOk;
  EXPECT_TRUE(ParseTraceOutcome("shed", &out));
  EXPECT_EQ(out, TraceOutcome::kShed);
  EXPECT_FALSE(ParseTraceOutcome("bogus", &out));
  EXPECT_EQ(out, TraceOutcome::kShed);  // untouched on failure
}

TEST(TraceRecorderTest, ConcurrentRecordSnapshotAndPinStayConsistent) {
  TraceRecorder::Options options;
  options.sample_probability = 0.5;
  options.slow_threshold_seconds = 0.1;
  options.byte_budget = 64 * 1024;
  TraceRecorder recorder(options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        auto outcome = i % 7 == 0 ? TraceOutcome::kError : TraceOutcome::kOk;
        double duration = i % 11 == 0 ? 0.5 : 0.001;
        recorder.Record(MakeTrace(
            "w" + std::to_string(w) + "-" + std::to_string(i), outcome,
            duration, outcome == TraceOutcome::kError ? 500 : 200));
        if (i % 13 == 0) {
          recorder.ForceRetain("w" + std::to_string(w) + "-pin", "test");
        }
      }
    });
  }
  std::thread reader([&] {
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < 200; ++i) {
      auto snap = recorder.Snapshot({});
      for (size_t j = 1; j < snap.size(); ++j) {
        // Newest-first order holds under concurrent writes.
        EXPECT_GE(snap[j - 1].recorded_unix_seconds,
                  snap[j].recorded_unix_seconds);
      }
      (void)recorder.stats();
    }
  });
  go.store(true);
  for (auto& t : writers) t.join();
  reader.join();

  TraceRecorder::Stats stats = recorder.stats();
  EXPECT_EQ(stats.recorded_total,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.recorded_total,
            stats.retained_total + stats.sampled_out_total);
  EXPECT_LE(stats.buffered_bytes, stats.byte_budget);
}

// ---------------------------------------------------------------------------
// Watchdog

TEST(WatchdogTest, HeartbeatStallFiresOnceAndRearmsOnRecovery) {
  Watchdog::Options options;
  options.loop_stall_seconds = 0.01;
  std::vector<Watchdog::StallEvent> events;
  Watchdog wd(options, [&](const Watchdog::StallEvent& e) {
    events.push_back(e);
  });
  int hb = wd.RegisterHeartbeat("loop-0");
  wd.Beat(hb);
  EXPECT_EQ(wd.PollOnce(), 0);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(wd.PollOnce(), 1);  // stale -> one event
  EXPECT_EQ(wd.PollOnce(), 0);  // edge-triggered: not repeated
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, "event_loop");
  EXPECT_EQ(events[0].detail, "loop-0");
  EXPECT_GE(events[0].age_seconds, 0.01);

  wd.Beat(hb);  // recovery re-arms the edge
  EXPECT_EQ(wd.PollOnce(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(wd.PollOnce(), 1);
  EXPECT_EQ(events.size(), 2u);
}

TEST(WatchdogTest, OverdueSolveFlaggedOnceWhileRunning) {
  Watchdog::Options options;
  options.loop_stall_seconds = 0.0;  // isolate the solve probe
  options.solve_deadline_warn_seconds = 0.01;
  std::vector<Watchdog::StallEvent> events;
  Watchdog wd(options, [&](const Watchdog::StallEvent& e) {
    events.push_back(e);
  });
  uint64_t token = wd.BeginSolve("q-runaway");
  EXPECT_EQ(wd.PollOnce(), 0);  // not overdue yet
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(wd.PollOnce(), 1);
  EXPECT_EQ(wd.PollOnce(), 0);  // flagged once
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, "solve_deadline");
  EXPECT_EQ(events[0].request_id, "q-runaway");
  wd.EndSolve(token);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(wd.PollOnce(), 0);  // finished solves can't re-fire
}

TEST(WatchdogTest, StarvationNeedsContinuousWindow) {
  Watchdog::Options options;
  options.loop_stall_seconds = 0.0;
  options.starvation_window_seconds = 0.02;
  std::vector<Watchdog::StallEvent> events;
  Watchdog wd(options, [&](const Watchdog::StallEvent& e) {
    events.push_back(e);
  });
  bool starving = true;
  wd.SetStarvationProbe([&](std::string* detail) {
    *detail = "gate pinned";
    return starving;
  });
  EXPECT_EQ(wd.PollOnce(), 0);  // window starts now
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  starving = false;
  EXPECT_EQ(wd.PollOnce(), 0);  // recovered before the window elapsed
  starving = true;
  EXPECT_EQ(wd.PollOnce(), 0);  // window restarts
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(wd.PollOnce(), 1);
  EXPECT_EQ(wd.PollOnce(), 0);  // once per episode
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, "admission_starvation");
  EXPECT_EQ(events[0].detail, "gate pinned");
}

TEST(WatchdogTest, MonitorThreadFiresWithoutManualPolling) {
  Watchdog::Options options;
  options.poll_interval_seconds = 0.005;
  options.loop_stall_seconds = 0.01;
  std::atomic<int> fired{0};
  Watchdog wd(options, [&](const Watchdog::StallEvent&) { ++fired; });
  int hb = wd.RegisterHeartbeat("loop-0");
  wd.Beat(hb);
  wd.Start();
  for (int i = 0; i < 200 && fired.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  wd.Stop();
  EXPECT_GE(fired.load(), 1);
}

}  // namespace
}  // namespace obs
}  // namespace qfix
