// Tests for the JSON writer (common/json.h): document shapes, escaping,
// number fidelity, and nesting bookkeeping.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/json.h"

namespace qfix {
namespace {

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter obj;
  obj.BeginObject();
  obj.EndObject();
  EXPECT_EQ(obj.str(), "{}");

  JsonWriter arr;
  arr.BeginArray();
  arr.EndArray();
  EXPECT_EQ(arr.str(), "[]");
}

TEST(JsonWriterTest, ObjectWithMixedValues) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String("hi");
  w.Key("i");
  w.Int(-7);
  w.Key("u");
  w.Uint(7);
  w.Key("d");
  w.Double(0.5);
  w.Key("b");
  w.Bool(false);
  w.Key("n");
  w.Null();
  w.EndObject();
  EXPECT_EQ(w.str(),
            R"({"s":"hi","i":-7,"u":7,"d":0.5,"b":false,"n":null})");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows");
  w.BeginArray();
  for (int i = 0; i < 3; ++i) {
    w.BeginObject();
    w.Key("id");
    w.Int(i);
    w.EndObject();
  }
  w.EndArray();
  w.Key("empty");
  w.BeginArray();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            R"({"rows":[{"id":0},{"id":1},{"id":2}],"empty":[]})");
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");

  JsonWriter w;
  w.BeginArray();
  w.String("say \"hi\"\n");
  w.EndArray();
  EXPECT_EQ(w.str(), "[\"say \\\"hi\\\"\\n\"]");
}

TEST(JsonWriterTest, DoublesRoundTripAndStayShort) {
  JsonWriter w;
  w.BeginArray();
  w.Double(3.0);
  w.Double(86500.000001);
  w.Double(1.0 / 3.0);
  w.EndArray();
  // Pull the three numbers back out and re-parse them.
  std::string text = w.str();
  ASSERT_EQ(text.front(), '[');
  ASSERT_EQ(text.back(), ']');
  std::string inner = text.substr(1, text.size() - 2);
  double values[3];
  ASSERT_EQ(std::sscanf(inner.c_str(), "%lf,%lf,%lf", &values[0],
                        &values[1], &values[2]),
            3);
  EXPECT_EQ(values[0], 3.0);
  EXPECT_EQ(values[1], 86500.000001);
  EXPECT_EQ(values[2], 1.0 / 3.0);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::nan(""));
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriterTest, RootScalarsAreValidDocuments) {
  JsonWriter w;
  w.Int(42);
  EXPECT_EQ(w.str(), "42");
}

TEST(JsonWriterTest, KeysAreEscaped) {
  JsonWriter w;
  w.BeginObject();
  w.Key("we\"ird");
  w.Int(1);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"we\\\"ird\":1}");
}

}  // namespace
}  // namespace qfix
