// Shared fixtures for the qfix-layer suites: the paper's running
// example (Figure 2) — the Taxes table, its trusted checkpoint D0, and
// the three-query log whose q1 predicate carries the transposed digit
// when built with PaperLog(85700) and is correct with PaperLog(87500).
#ifndef QFIX_TESTS_TEST_SUPPORT_H_
#define QFIX_TESTS_TEST_SUPPORT_H_

#include "relational/database.h"
#include "relational/linear_expr.h"
#include "relational/predicate.h"
#include "relational/query.h"
#include "relational/schema.h"

namespace qfix {
namespace test {

inline relational::Schema TaxSchema() {
  return relational::Schema({"income", "owed", "pay"});
}

inline relational::Database TaxD0() {
  relational::Database db(TaxSchema(), "Taxes");
  db.AddTuple({9500, 950, 8550});
  db.AddTuple({90000, 22500, 67500});
  db.AddTuple({86000, 21500, 64500});
  db.AddTuple({86500, 21625, 64875});
  return db;
}

inline relational::QueryLog PaperLog(double q1_threshold) {
  using relational::CmpOp;
  using relational::LinearExpr;
  using relational::Predicate;
  using relational::Query;
  relational::QueryLog log;
  log.push_back(Query::Update(
      "Taxes", {{1, LinearExpr::AttrScaled(0, 0.3)}},
      Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, q1_threshold})));
  log.push_back(Query::Insert("Taxes", {87000, 21750, 65250}));
  LinearExpr pay = LinearExpr::Attr(0);
  pay.AddTerm(1, -1.0);
  log.push_back(Query::Update("Taxes", {{2, pay}}, Predicate::True()));
  return log;
}

}  // namespace test
}  // namespace qfix

#endif  // QFIX_TESTS_TEST_SUPPORT_H_
