#include <gtest/gtest.h>

#include "common/random.h"
#include "provenance/denoiser.h"
#include "qfix/qfix.h"
#include "relational/executor.h"

namespace qfix {
namespace provenance {
namespace {

using relational::CmpOp;
using relational::Database;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::Schema;

Database MakeDirty(size_t n) {
  Database db(Schema::WithDefaultNames(2), "T");
  for (size_t i = 0; i < n; ++i) db.AddTuple({double(i), 100});
  return db;
}

TEST(DenoiserTest, PassesSmallSetsThrough) {
  Database dirty = MakeDirty(10);
  ComplaintSet c;
  c.Add({0, true, {0, 99999}});  // absurd, but only 1 complaint
  DenoiseResult r = DenoiseComplaints(c, dirty);
  EXPECT_EQ(r.kept.size(), 1u);
  EXPECT_EQ(r.dropped.size(), 0u);
}

TEST(DenoiserTest, DropsMagnitudeOutlier) {
  Database dirty = MakeDirty(20);
  ComplaintSet c;
  // Consistent complaints: a1 should be 110 (delta 10 each).
  for (int64_t i = 0; i < 8; ++i) {
    c.Add({i, true, {double(i), 110}});
  }
  // A fake complaint claiming a wild value (delta 1e6).
  c.Add({10, true, {10, 1000100}});
  DenoiseResult r = DenoiseComplaints(c, dirty);
  EXPECT_EQ(r.dropped.size(), 1u);
  EXPECT_EQ(r.dropped.complaints()[0].tid, 10);
  EXPECT_EQ(r.kept.size(), 8u);
}

TEST(DenoiserTest, KeepsConsistentComplaints) {
  Database dirty = MakeDirty(20);
  ComplaintSet c;
  for (int64_t i = 0; i < 10; ++i) {
    c.Add({i, true, {double(i), 100 + 5.0 * (i % 3)}});
  }
  DenoiseResult r = DenoiseComplaints(c, dirty);
  EXPECT_EQ(r.dropped.size(), 0u);
  EXPECT_EQ(r.kept.size(), 10u);
}

TEST(DenoiserTest, LivenessComplaintsPassThrough) {
  Database dirty = MakeDirty(20);
  ComplaintSet c;
  for (int64_t i = 0; i < 6; ++i) {
    c.Add({i, true, {double(i), 110}});
  }
  c.Add({7, false, {}});
  DenoiseResult r = DenoiseComplaints(c, dirty);
  EXPECT_NE(r.kept.Find(7), nullptr);
}

// End-to-end: a fake complaint makes the repair infeasible; denoising
// first restores the diagnosis (the workflow of paper §6).
TEST(DenoiserTest, RescuesDiagnosisFromFakeComplaint) {
  Database d0 = MakeDirty(30);
  auto make_log = [&](double threshold) {
    QueryLog log;
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::Constant(150)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, threshold})));
    return log;
  };
  QueryLog dirty_log = make_log(10);  // should be 20
  QueryLog clean_log = make_log(20);
  Database dirty = relational::ExecuteLog(dirty_log, d0);
  Database truth = relational::ExecuteLog(clean_log, d0);
  ComplaintSet complaints = DiffStates(dirty, truth);
  ASSERT_GE(complaints.size(), 4u);
  // A malicious/buggy report: tuple 25's a1 should allegedly be -9999.
  complaints.Add({25, true, {25, -9999}});

  // Without denoising the complaint set is contradictory: satisfying the
  // fake complaint forces the repair to damage neighbouring tuples (or
  // go infeasible outright, depending on which constants are free).
  {
    qfixcore::QFixEngine engine(dirty_log, d0, dirty, complaints);
    auto repair = engine.RepairIncremental(1);
    if (repair.ok()) {
      EXPECT_GT(repair->collateral, 0u);
    } else {
      EXPECT_TRUE(repair.status().IsInfeasible());
    }
  }
  // With denoising, the fake complaint is screened out and the repair
  // succeeds.
  DenoiseResult screened = DenoiseComplaints(complaints, dirty);
  ASSERT_EQ(screened.dropped.size(), 1u);
  EXPECT_EQ(screened.dropped.complaints()[0].tid, 25);
  qfixcore::QFixEngine engine(dirty_log, d0, dirty, screened.kept);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->verified);
}

// ---------------------------------------------------------------------
// Property sweep: planted fakes of growing magnitude.
// ---------------------------------------------------------------------

class DenoiserPropertyTest : public testing::TestWithParam<int> {};

TEST_P(DenoiserPropertyTest, PlantedFakeIsCaughtAndRealsSurvive) {
  Rng rng(8800 + GetParam());
  Database dirty = MakeDirty(40);
  ComplaintSet c;
  // Real complaints: uniform delta with small jitter.
  size_t reals = 6 + rng.Index(6);
  for (size_t i = 0; i < reals; ++i) {
    double jitter = rng.UniformReal(-1.0, 1.0);
    c.Add({static_cast<int64_t>(i), true,
           {double(i), 110 + jitter}});
  }
  // One fake whose delta dwarfs the reals (>= 40x the real delta of 10
  // plus jitter; well past any reasonable MAD threshold).
  double fake_delta = 400 + rng.UniformReal(0, 4000);
  c.Add({30, true, {30, 100 + fake_delta}});

  DenoiseResult r = DenoiseComplaints(c, dirty);
  ASSERT_EQ(r.dropped.size(), 1u)
      << "fake delta " << fake_delta << " not dropped";
  EXPECT_EQ(r.dropped.complaints()[0].tid, 30);
  EXPECT_EQ(r.kept.size(), reals);
}

TEST_P(DenoiserPropertyTest, HomogeneousSetsAreNeverScreened) {
  Rng rng(9900 + GetParam());
  Database dirty = MakeDirty(40);
  ComplaintSet c;
  size_t n = 5 + rng.Index(10);
  for (size_t i = 0; i < n; ++i) {
    c.Add({static_cast<int64_t>(i), true,
           {double(i), 110 + rng.UniformReal(-1.0, 1.0)}});
  }
  DenoiseResult r = DenoiseComplaints(c, dirty);
  EXPECT_EQ(r.dropped.size(), 0u);
  EXPECT_EQ(r.kept.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DenoiserPropertyTest, testing::Range(0, 10));

}  // namespace
}  // namespace provenance
}  // namespace qfix
