// Tests for the experiment harness (harness/table.h, harness/metrics.h)
// and the lossless number formatting the SQL printer and checkpoint
// formats depend on (common/strings.h FormatNumber).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/strings.h"
#include "harness/metrics.h"
#include "harness/table.h"
#include "relational/executor.h"
#include "relational/linear_expr.h"
#include "relational/predicate.h"

namespace qfix {
namespace {

// ---------------------------------------------------------------------
// FormatNumber: pretty for clean values, lossless always.
// ---------------------------------------------------------------------

TEST(FormatNumberTest, IntegersPrintBare) {
  EXPECT_EQ(FormatNumber(3.0), "3");
  EXPECT_EQ(FormatNumber(-42.0), "-42");
  EXPECT_EQ(FormatNumber(0.0), "0");
  EXPECT_EQ(FormatNumber(86500.0), "86500");
}

TEST(FormatNumberTest, ShortDecimalsStayShort) {
  EXPECT_EQ(FormatNumber(0.25), "0.25");
  EXPECT_EQ(FormatNumber(86500.5), "86500.5");
  EXPECT_EQ(FormatNumber(-0.3), "-0.3");
}

TEST(FormatNumberTest, EveryValueParsesBackExactly) {
  // The repaired-SQL regression: an epsilon-boundary threshold like
  // 86500.000001 must NOT print as "86500" (which would re-include the
  // very tuple the repair excluded).
  const double cases[] = {86500.000001, 1.0 / 3.0,   -1e-9, 1e17,
                          5e-324,       0.1 + 0.2,   -0.0,  123456.789012345};
  for (double v : cases) {
    std::string text = FormatNumber(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
  EXPECT_NE(FormatNumber(86500.000001), "86500");
}

TEST(FormatNumberTest, SpecialValues) {
  EXPECT_EQ(FormatNumber(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatNumber(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(FormatNumber(std::nan("")), "nan");
}

// ---------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------

TEST(TableTest, AlignsColumnsUnderHeader) {
  harness::Table t({"name", "time(s)"});
  t.AddRow({"a", "0.001"});
  t.AddRow({"longer-name", "12.5"});
  std::string text = t.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TableTest, CellFormatsNumbers) {
  EXPECT_EQ(harness::Table::Cell(3.0), "3");
  EXPECT_EQ(harness::Table::Cell(0.1234), "0.123");
}

TEST(TableTest, ToCsvEscapesSpecialCells) {
  harness::Table t({"config", "note"});
  t.AddRow({"a,b", "say \"hi\""});
  t.AddRow({"plain", "ok"});
  std::string csv = t.ToCsv();
  EXPECT_EQ(csv,
            "config,note\n"
            "\"a,b\",\"say \"\"hi\"\"\"\n"
            "plain,ok\n");
}

// ---------------------------------------------------------------------
// EvaluateRepair
// ---------------------------------------------------------------------

using relational::CmpOp;
using relational::Database;
using relational::ExecuteLog;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::Schema;

TEST(MetricsTest, PerfectRepairScoresOne) {
  Database d0(Schema::WithDefaultNames(1), "T");
  for (int i = 0; i < 10; ++i) d0.AddTuple({double(i)});
  auto log_with = [&](double threshold) {
    QueryLog log;
    log.push_back(Query::Update(
        "T", {{0, LinearExpr::Constant(100)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, threshold})));
    return log;
  };
  Database dirty = ExecuteLog(log_with(3), d0);
  Database truth = ExecuteLog(log_with(7), d0);
  auto acc = harness::EvaluateRepair(log_with(7), d0, dirty, truth);
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  EXPECT_DOUBLE_EQ(acc.recall, 1.0);
  EXPECT_DOUBLE_EQ(acc.f1, 1.0);
  EXPECT_EQ(acc.true_complaints, 4u);  // tuples 3..6
  EXPECT_EQ(acc.resolved_complaints, 4u);

  // A partial repair (threshold 5) fixes only tuples 3, 4.
  auto partial = harness::EvaluateRepair(log_with(5), d0, dirty, truth);
  EXPECT_DOUBLE_EQ(partial.precision, 1.0);
  EXPECT_DOUBLE_EQ(partial.recall, 0.5);
  EXPECT_GT(partial.f1, 0.0);
  EXPECT_LT(partial.f1, 1.0);
}

}  // namespace
}  // namespace qfix
