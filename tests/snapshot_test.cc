// Tests for checkpoint snapshots (io/snapshot.h): exact round-trips
// including dead slots, malformed-input rejection, file IO, and the
// property that a snapshot taken mid-log replays identically to the
// original execution.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/random.h"
#include "io/snapshot.h"
#include "relational/database.h"
#include "relational/executor.h"
#include "workload/synthetic.h"

namespace qfix {
namespace io {
namespace {

using relational::Database;
using relational::Schema;

Database SampleDb() {
  Database db(Schema({"income", "owed", "pay"}), "Taxes");
  db.AddTuple({9500, 950, 8550});
  db.AddTuple({90000.125, -22500, 0.1});  // exercises non-integers
  db.AddTuple({86000, 21500, 64500});
  db.slot(1).alive = false;  // a deleted tuple keeps its slot
  return db;
}

void ExpectSameDatabase(const Database& a, const Database& b) {
  EXPECT_EQ(a.table_name(), b.table_name());
  ASSERT_TRUE(a.schema() == b.schema());
  ASSERT_EQ(a.NumSlots(), b.NumSlots());
  for (size_t i = 0; i < a.NumSlots(); ++i) {
    EXPECT_EQ(a.slot(i).tid, b.slot(i).tid);
    EXPECT_EQ(a.slot(i).alive, b.slot(i).alive);
    for (size_t attr = 0; attr < a.schema().num_attrs(); ++attr) {
      // Bit-exact: checkpoints must not drift through serialization.
      EXPECT_EQ(a.slot(i).values[attr], b.slot(i).values[attr])
          << "slot " << i << " attr " << attr;
    }
  }
}

TEST(SnapshotTest, RoundTripsValuesLivenessAndTids) {
  Database db = SampleDb();
  std::string text = WriteSnapshot(db);
  Result<Database> back = ReadSnapshot(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameDatabase(db, *back);
}

TEST(SnapshotTest, FormatIsHumanReadable) {
  std::string text = WriteSnapshot(SampleDb());
  EXPECT_NE(text.find("qfix-snapshot v1"), std::string::npos);
  EXPECT_NE(text.find("table Taxes"), std::string::npos);
  EXPECT_NE(text.find("attrs income owed pay"), std::string::npos);
  EXPECT_NE(text.find("tuple 1 dead"), std::string::npos);
  EXPECT_NE(text.find("end"), std::string::npos);
}

TEST(SnapshotTest, EmptyDatabaseRoundTrips) {
  Database db(Schema({"a0"}), "T");
  Result<Database> back = ReadSnapshot(WriteSnapshot(db));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumSlots(), 0u);
}

TEST(SnapshotTest, ExtremeValuesRoundTripExactly) {
  Database db(Schema({"a0", "a1"}), "T");
  db.AddTuple({1.0 / 3.0, 1e17});
  db.AddTuple({-0.1, 5e-324});  // denormal minimum
  Result<Database> back = ReadSnapshot(WriteSnapshot(db));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameDatabase(db, *back);
}

TEST(SnapshotTest, RejectsMalformedDocuments) {
  // Wrong header.
  EXPECT_FALSE(ReadSnapshot("nonsense v1\ntable T\nattrs a\nend\n").ok());
  // Missing attrs line.
  EXPECT_FALSE(ReadSnapshot("qfix-snapshot v1\ntable T\nend\n").ok());
  // Arity mismatch (2 values for 3 attributes).
  EXPECT_FALSE(ReadSnapshot("qfix-snapshot v1\ntable T\nattrs a b c\n"
                            "tuple 0 alive 1 2\nend\n")
                   .ok());
  // Bad liveness token.
  EXPECT_FALSE(ReadSnapshot("qfix-snapshot v1\ntable T\nattrs a\n"
                            "tuple 0 zombie 1\nend\n")
                   .ok());
  // Out-of-order tid.
  EXPECT_FALSE(ReadSnapshot("qfix-snapshot v1\ntable T\nattrs a\n"
                            "tuple 5 alive 1\nend\n")
                   .ok());
  // Malformed number.
  EXPECT_FALSE(ReadSnapshot("qfix-snapshot v1\ntable T\nattrs a\n"
                            "tuple 0 alive x7\nend\n")
                   .ok());
  // Truncated (no end line).
  EXPECT_FALSE(ReadSnapshot("qfix-snapshot v1\ntable T\nattrs a\n"
                            "tuple 0 alive 1\n")
                   .ok());
}

TEST(SnapshotTest, IgnoresBlankLines) {
  const char* text =
      "qfix-snapshot v1\n\ntable T\n\nattrs a\n\n"
      "tuple 0 alive 3\n\nend\n\n";
  Result<Database> back = ReadSnapshot(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumSlots(), 1u);
  EXPECT_DOUBLE_EQ(back->slot(0).values[0], 3.0);
}

TEST(SnapshotFileTest, RoundTripsThroughDisk) {
  Database db = SampleDb();
  std::string path = testing::TempDir() + "/qfix_snapshot_test.snap";
  ASSERT_TRUE(WriteSnapshotFile(db, path).ok());
  Result<Database> back = ReadSnapshotFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameDatabase(db, *back);
}

TEST(SnapshotFileTest, MissingFileIsNotFound) {
  Result<Database> r = ReadSnapshotFile("/nonexistent/dir/x.snap");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

// Property: checkpoint-and-resume equals straight-through execution.
// This is the paper's deployment story for D_0 ("a state of the database
// that we assume is correct"): replaying the tail of the log from a
// reloaded mid-log snapshot must land on the same D_n.
class SnapshotReplayTest : public testing::TestWithParam<int> {};

TEST_P(SnapshotReplayTest, CheckpointResumeMatchesStraightExecution) {
  Rng rng(42 + GetParam());
  workload::SyntheticSpec spec;
  spec.num_tuples = 40;
  spec.num_attrs = 5;
  spec.num_queries = 30;
  spec.insert_fraction = 0.2;  // exercise slot growth and
  spec.delete_fraction = 0.2;  // dead-slot serialization
  Database d0 = workload::GenerateDatabase(spec, rng);
  relational::QueryLog log = workload::GenerateLog(spec, d0, rng);

  size_t cut = 10 + static_cast<size_t>(GetParam()) % 15;
  relational::QueryLog head(log.begin(), log.begin() + cut);
  relational::QueryLog tail(log.begin() + cut, log.end());

  Database mid = relational::ExecuteLog(head, d0);
  Result<Database> reloaded = ReadSnapshot(WriteSnapshot(mid));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  Database resumed = relational::ExecuteLog(tail, *reloaded);
  Database straight = relational::ExecuteLog(log, d0);
  ExpectSameDatabase(straight, resumed);
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, SnapshotReplayTest,
                         testing::Range(0, 10));

}  // namespace
}  // namespace io
}  // namespace qfix
