// Tests for qfixcore::BatchDiagnoser: many independent diagnosis
// pipelines over one exec pool, matching serial per-item results, with
// per-item failure isolation and a batch-level time limit.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "provenance/complaint.h"
#include "qfix/batch.h"
#include "qfix/qfix.h"
#include "relational/executor.h"
#include "test_support.h"

namespace qfix {
namespace qfixcore {
namespace {

using provenance::ComplaintSet;
using provenance::DiffStates;
using relational::Database;
using relational::ExecuteLog;
using relational::QueryLog;
using test::PaperLog;
using test::TaxD0;

// One Figure-2-style diagnosis request whose corrupted threshold is
// `dirty_threshold` (the intended value is 87500).
BatchItem PaperItem(double dirty_threshold) {
  QueryLog dirty_log = PaperLog(dirty_threshold);
  QueryLog clean_log = PaperLog(87500);
  Database d0 = TaxD0();
  Database dirty = ExecuteLog(dirty_log, d0);
  Database truth = ExecuteLog(clean_log, d0);
  BatchItem item;
  item.complaints = DiffStates(dirty, truth);
  item.data = cache::MakeSnapshot(std::move(dirty_log), std::move(d0),
                                  std::move(dirty));
  return item;
}

TEST(BatchDiagnoserTest, ResultsLineUpWithInputsAndMatchSerialRuns) {
  std::vector<double> thresholds = {85700, 86200, 85000, 86400};
  std::vector<BatchItem> items;
  for (double t : thresholds) items.push_back(PaperItem(t));

  BatchOptions parallel;
  parallel.jobs = 4;
  std::vector<Result<Repair>> batch = BatchDiagnoser(parallel).Run(items);
  ASSERT_EQ(batch.size(), items.size());

  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(batch[i].ok())
        << "item " << i << ": " << batch[i].status().ToString();
    EXPECT_TRUE(batch[i]->verified) << "item " << i;
    EXPECT_EQ(batch[i]->changed_queries, (std::vector<size_t>{0}));

    // The pooled run must agree with a plain one-engine-per-item run
    // (sharing the same snapshot zero-copy).
    QFixEngine engine(items[i].data, items[i].complaints, items[i].options);
    auto serial = engine.RepairIncremental(1);
    ASSERT_TRUE(serial.ok());
    EXPECT_NEAR(batch[i]->distance, serial->distance, 1e-6) << "item " << i;
  }
}

TEST(BatchDiagnoserTest, DeterministicModeMatchesParallelMode) {
  std::vector<BatchItem> items = {PaperItem(85700), PaperItem(86000)};
  BatchOptions serial;
  serial.jobs = 0;  // deterministic inline mode
  BatchOptions parallel;
  parallel.jobs = 3;
  auto a = BatchDiagnoser(serial).Run(items);
  auto b = BatchDiagnoser(parallel).Run(items);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(a[i].ok());
    ASSERT_TRUE(b[i].ok());
    EXPECT_NEAR(a[i]->distance, b[i]->distance, 1e-6);
    EXPECT_EQ(a[i]->changed_queries, b[i]->changed_queries);
  }
}

TEST(BatchDiagnoserTest, MakeBatchItemDerivesDirtyState) {
  QueryLog dirty_log = PaperLog(85700);
  Database d0 = TaxD0();
  Database dirty = ExecuteLog(dirty_log, d0);
  Database truth = ExecuteLog(PaperLog(87500), d0);
  BatchItem item =
      MakeBatchItem(dirty_log, d0, DiffStates(dirty, truth));
  ASSERT_EQ(item.data->dirty.NumSlots(), dirty.NumSlots());
  auto results = BatchDiagnoser().Run({item});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_TRUE(results[0]->verified);
}

TEST(BatchDiagnoserTest, FailuresAreIsolatedPerItem) {
  // Item 1's complaints demand a final state no single-query repair (or
  // any parameter assignment) can produce: tuple 0 (income 9500, far
  // from every predicate boundary) is claimed to end at income -1 while
  // everything else matches the dirty state. Neighbors must still
  // diagnose fine.
  std::vector<BatchItem> items = {PaperItem(85700), PaperItem(85700),
                                  PaperItem(86200)};
  provenance::Complaint bad;
  bad.tid = 0;
  bad.target_alive = true;
  bad.target_values = {-1, -1, -1};
  ComplaintSet bad_set;
  bad_set.Add(bad);
  items[1].complaints = bad_set;
  items[1].options.time_limit_seconds = 10.0;

  auto results = BatchDiagnoser(BatchOptions{4, 0.0}).Run(items);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
}

TEST(BatchDiagnoserTest, BatchTimeLimitFailsUnstartedItems) {
  // An already-expired batch deadline: every item must come back as
  // ResourceExhausted without running (deterministic mode makes the
  // "nothing started" claim exact).
  std::vector<BatchItem> items = {PaperItem(85700), PaperItem(86200)};
  BatchOptions options;
  options.jobs = 0;
  options.time_limit_seconds = 1e-9;
  auto results = BatchDiagnoser(options).Run(items);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  }
}

TEST(BatchDiagnoserTest, EmptyBatchIsFine) {
  EXPECT_TRUE(BatchDiagnoser().Run({}).empty());
}

}  // namespace
}  // namespace qfixcore
}  // namespace qfix
