// Encoder edge cases: every comparison operator, OR trees, equality
// side-binaries, attribute filters, and expression-valued predicates —
// each exercised through a full end-to-end repair.
#include <gtest/gtest.h>

#include "provenance/complaint.h"
#include "qfix/qfix.h"
#include "relational/executor.h"

namespace qfix {
namespace qfixcore {
namespace {

using provenance::ComplaintSet;
using provenance::DiffStates;
using relational::CmpOp;
using relational::Comparison;
using relational::Database;
using relational::ExecuteLog;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::Schema;

struct RepairOutcome {
  bool ok;
  bool verified;
  bool matches_truth;
};

RepairOutcome RunRepair(const QueryLog& dirty_log,
                        const QueryLog& clean_log, const Database& d0) {
  Database dirty = ExecuteLog(dirty_log, d0);
  Database truth = ExecuteLog(clean_log, d0);
  ComplaintSet complaints = DiffStates(dirty, truth);
  if (complaints.empty()) return {false, false, false};
  QFixEngine engine(dirty_log, d0, dirty, complaints);
  auto repair = engine.RepairIncremental(1);
  if (!repair.ok()) return {false, false, false};
  Database fixed = ExecuteLog(repair->log, d0);
  bool matches = true;
  for (size_t i = 0; i < fixed.NumSlots() && matches; ++i) {
    matches = fixed.slot(i).alive == truth.slot(i).alive;
    if (matches && fixed.slot(i).alive) {
      for (size_t a = 0; a < d0.schema().num_attrs() && matches; ++a) {
        matches = std::fabs(fixed.slot(i).values[a] -
                            truth.slot(i).values[a]) < 1e-6;
      }
    }
  }
  return {true, repair->verified, matches};
}

Database GridD0(int n) {
  Database d0(Schema::WithDefaultNames(2), "T");
  for (int i = 0; i < n; ++i) d0.AddTuple({double(i), 0});
  return d0;
}

// One corrupted query per comparison operator; the repair must recover
// the true final state (complete complaints + integer grid).
class OperatorRepairTest : public ::testing::TestWithParam<CmpOp> {};

TEST_P(OperatorRepairTest, RepairsEachComparisonOperator) {
  const CmpOp op = GetParam();
  Database d0 = GridD0(20);
  auto make_log = [&](double c) {
    QueryLog log;
    log.push_back(
        Query::Update("T", {{1, LinearExpr::Constant(7)}},
                      Predicate::Atom({LinearExpr::Attr(0), op, c})));
    return log;
  };
  QueryLog dirty_log = make_log(5);
  QueryLog clean_log = make_log(11);
  RepairOutcome out = RunRepair(dirty_log, clean_log, d0);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.verified);
  EXPECT_TRUE(out.matches_truth);
}

INSTANTIATE_TEST_SUITE_P(AllOperators, OperatorRepairTest,
                         ::testing::Values(CmpOp::kLt, CmpOp::kLe,
                                           CmpOp::kGt, CmpOp::kGe,
                                           CmpOp::kEq, CmpOp::kNeq));

TEST(EncoderEdge, RepairsDisjunctivePredicate) {
  // WHERE a0 <= lo OR a0 >= hi — repair must adjust one arm.
  Database d0 = GridD0(20);
  auto make_log = [&](double lo, double hi) {
    QueryLog log;
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::Constant(3)}},
        Predicate::Or(
            {Predicate::Atom({LinearExpr::Attr(0), CmpOp::kLe, lo}),
             Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, hi})})));
    return log;
  };
  RepairOutcome out = RunRepair(make_log(3, 15), make_log(6, 15), d0);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.verified);
  EXPECT_TRUE(out.matches_truth);
}

TEST(EncoderEdge, RepairsNestedAndOrPredicate) {
  // WHERE (a0 >= lo AND a0 <= lo+4) OR a1 = 42.
  Database d0(Schema::WithDefaultNames(3), "T");
  for (int i = 0; i < 25; ++i) {
    d0.AddTuple({double(i), i % 5 == 0 ? 42.0 : double(i), 0});
  }
  auto make_log = [&](double lo) {
    QueryLog log;
    log.push_back(Query::Update(
        "T", {{2, LinearExpr::Constant(9)}},
        Predicate::Or(
            {Predicate::Between(0, lo, lo + 4),
             Predicate::Atom({LinearExpr::Attr(1), CmpOp::kEq, 42})})));
    return log;
  };
  RepairOutcome out = RunRepair(make_log(8), make_log(16), d0);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.verified);
}

TEST(EncoderEdge, RepairsExpressionComparison) {
  // WHERE a0 - a1 >= c: the lhs is a multi-attribute linear expression.
  Database d0(Schema::WithDefaultNames(3), "T");
  for (int i = 0; i < 16; ++i) {
    d0.AddTuple({double(2 * i), double(i), 0});
  }
  auto make_log = [&](double c) {
    QueryLog log;
    LinearExpr diff = LinearExpr::Attr(0);
    diff.AddTerm(1, -1.0);
    log.push_back(Query::Update(
        "T", {{2, LinearExpr::Constant(5)}},
        Predicate::Atom({std::move(diff), CmpOp::kGe, c})));
    return log;
  };
  RepairOutcome out = RunRepair(make_log(3), make_log(9), d0);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.verified);
  EXPECT_TRUE(out.matches_truth);
}

TEST(EncoderEdge, RepairsMultiAttributeSetExpression) {
  // SET a2 = a0 + a1 + c with the wrong c.
  Database d0(Schema::WithDefaultNames(3), "T");
  for (int i = 0; i < 12; ++i) d0.AddTuple({double(i), double(3 * i), 0});
  auto make_log = [&](double c) {
    QueryLog log;
    LinearExpr sum = LinearExpr::Attr(0);
    sum.AddTerm(1, 1.0);
    sum.AddConstant(c);
    log.push_back(Query::Update(
        "T", {{2, std::move(sum)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 4})));
    return log;
  };
  RepairOutcome out = RunRepair(make_log(-2), make_log(6), d0);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.verified);
  EXPECT_TRUE(out.matches_truth);
}

TEST(EncoderEdge, RepairsMultipleSetClausesAtOnce) {
  // Both SET constants of one query corrupted.
  Database d0 = GridD0(14);
  auto make_log = [&](double c1, double c2) {
    QueryLog log;
    log.push_back(Query::Update(
        "T",
        {{1, LinearExpr::Constant(c1)},
         {0, LinearExpr::AttrScaled(0, 1.0, c2)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, 9})));
    return log;
  };
  RepairOutcome out = RunRepair(make_log(4, 100), make_log(8, 200), d0);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.verified);
  EXPECT_TRUE(out.matches_truth);
}

TEST(EncoderEdge, EqualityPredicateOnComputedValue) {
  // A first query computes a1; a corrupted second query matches on the
  // *computed* value with an equality atom (side-binary path with a
  // symbolic g).
  Database d0 = GridD0(10);
  auto make_log = [&](double set_c) {
    QueryLog log;
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::AttrScaled(0, 1.0, 0.0)}},  // a1 = a0
        Predicate::True()));
    log.push_back(Query::Update(
        "T", {{1, LinearExpr::Constant(set_c)}},
        Predicate::Atom({LinearExpr::Attr(1), CmpOp::kEq, 4})));
    return log;
  };
  RepairOutcome out = RunRepair(make_log(77), make_log(50), d0);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.verified);
  EXPECT_TRUE(out.matches_truth);
}

TEST(EncoderEdge, DisablingConstantFoldingPreservesRepairs) {
  // fold_constants = false emits the raw Eq. (1)-(6) constraints for
  // constant-input queries; the repair outcome must be unchanged, only
  // the model larger.
  Database d0 = GridD0(12);
  auto make_log = [&](double threshold) {
    QueryLog log;
    log.push_back(Query::Update(  // constant inputs: foldable
        "T", {{1, LinearExpr::Constant(5)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kLe, 3})));
    log.push_back(Query::Update(  // the corrupted query
        "T", {{1, LinearExpr::Constant(9)}},
        Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, threshold})));
    log.push_back(Query::Update(  // reads the corrupted output
        "T", {{1, LinearExpr::AttrScaled(1, 2.0)}}, Predicate::True()));
    return log;
  };
  QueryLog dirty_log = make_log(6);
  QueryLog clean_log = make_log(9);
  Database dirty = ExecuteLog(dirty_log, d0);
  Database truth = ExecuteLog(clean_log, d0);
  ComplaintSet complaints = DiffStates(dirty, truth);
  ASSERT_FALSE(complaints.empty());

  QFixOptions folded;
  QFixOptions raw;
  raw.encoder.fold_constants = false;
  QFixEngine e1(dirty_log, d0, dirty, complaints, folded);
  QFixEngine e2(dirty_log, d0, dirty, complaints, raw);
  auto r1 = e1.RepairIncremental(1);
  auto r2 = e2.RepairIncremental(1);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(r1->verified);
  EXPECT_TRUE(r2->verified);
  // Same diagnosis either way; the raw encoding pays in model size.
  EXPECT_EQ(r1->changed_queries, r2->changed_queries);
  EXPECT_GT(r2->stats.num_vars, r1->stats.num_vars);
  EXPECT_GT(r2->stats.num_constraints, r1->stats.num_constraints);
}

}  // namespace
}  // namespace qfixcore
}  // namespace qfix
