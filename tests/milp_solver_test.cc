#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "milp/model.h"
#include "milp/solver.h"

namespace qfix {
namespace milp {
namespace {

TEST(MilpSolverTest, PureLpPassThrough) {
  Model m;
  VarId x = m.AddContinuous(0, 10, "x");
  m.AddConstraint({{x, 1.0}}, Sense::kGe, 3.5);
  m.AddObjectiveTerm(x, 1.0);
  MilpSolution s = MilpSolver().Solve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.5, 1e-6);
}

TEST(MilpSolverTest, SimpleIntegerRounding) {
  // min x, x integer, x >= 3.2  ->  x = 4.
  Model m;
  VarId x = m.AddVariable(VarType::kInteger, 0, 10, "x");
  m.AddConstraint({{x, 1.0}}, Sense::kGe, 3.2);
  m.AddObjectiveTerm(x, 1.0);
  MilpSolution s = MilpSolver().Solve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 4.0, 1e-9);
}

TEST(MilpSolverTest, BinaryKnapsackKnownOptimum) {
  // max 10a + 13b + 7c st 3a + 4b + 2c <= 6 -> a=1,c=1 value 17? Check:
  // candidates: {a,b}=7kg no; {b,c}=6kg value 20; so optimum is b+c=20.
  Model m;
  VarId a = m.AddBinary("a");
  VarId b = m.AddBinary("b");
  VarId c = m.AddBinary("c");
  m.AddConstraint({{a, 3.0}, {b, 4.0}, {c, 2.0}}, Sense::kLe, 6.0);
  m.AddObjectiveTerm(a, -10.0);
  m.AddObjectiveTerm(b, -13.0);
  m.AddObjectiveTerm(c, -7.0);
  MilpSolution s = MilpSolver().Solve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -20.0, 1e-6);
  EXPECT_NEAR(s.x[b], 1.0, 1e-9);
  EXPECT_NEAR(s.x[c], 1.0, 1e-9);
}

TEST(MilpSolverTest, InfeasibleByPropagation) {
  Model m;
  VarId a = m.AddBinary("a");
  VarId b = m.AddBinary("b");
  m.AddConstraint({{a, 1.0}, {b, 1.0}}, Sense::kGe, 3.0);
  MilpSolution s = MilpSolver().Solve(m);
  EXPECT_EQ(s.status, MilpStatus::kInfeasible);
}

TEST(MilpSolverTest, InfeasibleRequiringSearch) {
  // x + y = 1 with x = y (both binary) has no integral solution; the LP
  // relaxation (0.5, 0.5) is feasible so branching must prove it.
  Model m;
  VarId x = m.AddBinary("x");
  VarId y = m.AddBinary("y");
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kEq, 1.0);
  m.AddConstraint({{x, 1.0}, {y, -1.0}}, Sense::kEq, 0.0);
  MilpSolution s = MilpSolver().Solve(m);
  EXPECT_EQ(s.status, MilpStatus::kInfeasible);
}

TEST(MilpSolverTest, BigMIndicatorModel) {
  // Indicator x=1 <-> v >= 10, minimize v subject to x = 1.
  const double kM = 1000.0;
  Model m;
  VarId v = m.AddContinuous(0, 100, "v");
  VarId x = m.AddBinary("x");
  m.AddConstraint({{v, 1.0}, {x, -kM}}, Sense::kGe, 10.0 - kM);
  m.AddConstraint({{x, 1.0}}, Sense::kEq, 1.0);
  m.AddObjectiveTerm(v, 1.0);
  MilpSolution s = MilpSolver().Solve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.x[v], 10.0, 1e-6);
}

TEST(MilpSolverTest, AbsoluteValueSplitObjective) {
  // Minimize |p - 7| with p in [0, 20] and p >= 9 -> optimum p = 9,
  // objective 2. Encoded with split variables as in the QFix objective.
  Model m;
  VarId p = m.AddContinuous(0, 20, "p");
  VarId dp = m.AddContinuous(0, kInf, "d+");
  VarId dm = m.AddContinuous(0, kInf, "d-");
  // p - 7 = dp - dm
  m.AddConstraint({{p, 1.0}, {dp, -1.0}, {dm, 1.0}}, Sense::kEq, 7.0);
  m.AddConstraint({{p, 1.0}}, Sense::kGe, 9.0);
  m.AddObjectiveTerm(dp, 1.0);
  m.AddObjectiveTerm(dm, 1.0);
  MilpSolution s = MilpSolver().Solve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-6);
  EXPECT_NEAR(s.x[p], 9.0, 1e-6);
}

TEST(MilpSolverTest, TimeLimitReturnsGracefully) {
  // A deliberately fiddly equal-weight subset-sum instance; with an
  // effectively-zero time budget the solver must stop and say so.
  Rng rng(5);
  Model m;
  LinearTerms row;
  for (int i = 0; i < 30; ++i) {
    VarId v = m.AddBinary("b" + std::to_string(i));
    row.push_back({v, rng.UniformReal(1.0, 2.0)});
    m.AddObjectiveTerm(v, -1.0);
  }
  m.AddConstraint(row, Sense::kLe, 20.0);
  MilpOptions opts;
  opts.time_limit_seconds = 1e-9;
  MilpSolution s = MilpSolver(opts).Solve(m);
  EXPECT_TRUE(s.status == MilpStatus::kTimeLimit ||
              s.status == MilpStatus::kFeasible);
}

TEST(MilpSolverTest, ExternalCancellationStopsTheSearch) {
  // Same fiddly instance as the time-limit test, but halted through
  // MilpOptions::cancel — the hook a shutting-down service fires to
  // interrupt in-flight solves without waiting out their budget.
  Rng rng(5);
  Model m;
  LinearTerms row;
  for (int i = 0; i < 30; ++i) {
    VarId v = m.AddBinary("b" + std::to_string(i));
    row.push_back({v, rng.UniformReal(1.0, 2.0)});
    m.AddObjectiveTerm(v, -1.0);
  }
  m.AddConstraint(row, Sense::kLe, 20.0);
  exec::CancellationSource cancel;
  cancel.Cancel();  // already fired: the search must stop immediately
  MilpOptions opts;
  opts.cancel = cancel.token();
  MilpSolution s = MilpSolver(opts).Solve(m);
  EXPECT_TRUE(s.status == MilpStatus::kTimeLimit ||
              s.status == MilpStatus::kFeasible);
  // A handful of nodes at most (root heuristics may claim the first).
  EXPECT_LE(s.stats.nodes, 2);
}

TEST(MilpSolverTest, StatsArePopulated) {
  Model m;
  VarId x = m.AddBinary("x");
  m.AddConstraint({{x, 1.0}}, Sense::kGe, 1.0);
  MilpSolution s = MilpSolver().Solve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_EQ(s.stats.num_vars, 1);
  EXPECT_EQ(s.stats.num_constraints, 1);
  EXPECT_EQ(s.stats.num_integer_vars, 1);
  EXPECT_GE(s.stats.nodes, 1);
  EXPECT_GE(s.stats.wall_seconds, 0.0);
}

TEST(MilpSolverTest, StatusToStringCoversAll) {
  EXPECT_STREQ(MilpStatusToString(MilpStatus::kOptimal), "optimal");
  EXPECT_STREQ(MilpStatusToString(MilpStatus::kFeasible), "feasible");
  EXPECT_STREQ(MilpStatusToString(MilpStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(MilpStatusToString(MilpStatus::kTimeLimit), "time_limit");
  EXPECT_STREQ(MilpStatusToString(MilpStatus::kTooLarge), "too_large");
  EXPECT_STREQ(MilpStatusToString(MilpStatus::kUnbounded), "unbounded");
}

// Property test: random binary knapsacks are solved to the same optimum as
// exhaustive enumeration.
class MilpKnapsackTest : public ::testing::TestWithParam<int> {};

TEST_P(MilpKnapsackTest, MatchesBruteForce) {
  Rng rng(2000 + GetParam());
  const int n = static_cast<int>(rng.UniformInt(3, 12));
  std::vector<double> weight(n), value(n);
  for (int i = 0; i < n; ++i) {
    weight[i] = static_cast<double>(rng.UniformInt(1, 20));
    value[i] = static_cast<double>(rng.UniformInt(1, 30));
  }
  double capacity =
      static_cast<double>(rng.UniformInt(10, 20 + 5 * n));

  Model m;
  LinearTerms row;
  for (int i = 0; i < n; ++i) {
    VarId v = m.AddBinary("b" + std::to_string(i));
    row.push_back({v, weight[i]});
    m.AddObjectiveTerm(v, -value[i]);
  }
  m.AddConstraint(row, Sense::kLe, capacity);

  MilpSolution s = MilpSolver().Solve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);

  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double w = 0.0, v = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        w += weight[i];
        v += value[i];
      }
    }
    if (w <= capacity) best = std::max(best, v);
  }
  EXPECT_NEAR(s.objective, -best, 1e-6) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(RandomKnapsacks, MilpKnapsackTest,
                         ::testing::Range(0, 30));

// Property test: random mixed big-M models against brute-force over the
// binary assignments with an LP for the continuous part.
class MilpMixedTest : public ::testing::TestWithParam<int> {};

TEST_P(MilpMixedTest, MatchesBinaryEnumeration) {
  Rng rng(3000 + GetParam());
  const int nb = static_cast<int>(rng.UniformInt(2, 6));
  const int nc = static_cast<int>(rng.UniformInt(1, 3));
  const int rows = static_cast<int>(rng.UniformInt(2, 6));

  Model m;
  std::vector<VarId> bins(nb), conts(nc);
  for (int i = 0; i < nb; ++i) {
    bins[i] = m.AddBinary("b" + std::to_string(i));
    m.AddObjectiveTerm(bins[i], rng.UniformReal(-3.0, 3.0));
  }
  for (int i = 0; i < nc; ++i) {
    conts[i] = m.AddContinuous(-5.0, 5.0, "c" + std::to_string(i));
    m.AddObjectiveTerm(conts[i], rng.UniformReal(-2.0, 2.0));
  }
  // Random rows shifted so that the all-zeros/midpoint assignment is
  // feasible, guaranteeing a non-trivial feasible region.
  for (int r = 0; r < rows; ++r) {
    LinearTerms terms;
    for (int i = 0; i < nb; ++i) {
      terms.push_back({bins[i], rng.UniformReal(-2.0, 2.0)});
    }
    for (int i = 0; i < nc; ++i) {
      terms.push_back({conts[i], rng.UniformReal(-2.0, 2.0)});
    }
    m.AddConstraint(terms, Sense::kLe,
                    rng.UniformReal(0.5, 4.0));  // 0-point feasible
  }

  MilpSolution s = MilpSolver().Solve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);

  // Enumerate binary assignments; solve the continuous remainder by LP.
  double best = 1e30;
  for (int mask = 0; mask < (1 << nb); ++mask) {
    Domains d = m.InitialDomains();
    for (int i = 0; i < nb; ++i) {
      double v = (mask >> i) & 1;
      d.lb[bins[i]] = v;
      d.ub[bins[i]] = v;
    }
    LpResult lp = SolveLp(m, d, SimplexOptions{});
    if (lp.status == LpStatus::kOptimal) best = std::min(best, lp.objective);
  }
  ASSERT_LT(best, 1e29);
  EXPECT_NEAR(s.objective, best, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(RandomMixed, MilpMixedTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace milp
}  // namespace qfix
