// Tests for the SQL log diff (sql/diff.h) and the diagnosis report
// renderer (qfix/explain.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "provenance/complaint.h"
#include "qfix/explain.h"
#include "qfix/qfix.h"
#include "qfix/report_json.h"
#include "relational/executor.h"
#include "sql/diff.h"
#include "test_support.h"

namespace qfix {
namespace qfixcore {
namespace {

using provenance::ComplaintSet;
using provenance::DiffStates;
using relational::CmpOp;
using relational::Database;
using relational::ExecuteLog;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::Schema;

using test::PaperLog;
using test::TaxD0;
using test::TaxSchema;

// ---------------------------------------------------------------------
// DiffLogs / FormatLogDiff
// ---------------------------------------------------------------------

TEST(LogDiffTest, IdenticalLogsProduceEmptyDiff) {
  QueryLog log = PaperLog(85700);
  auto diffs = sql::DiffLogs(log, log, TaxSchema());
  EXPECT_TRUE(diffs.empty());
  EXPECT_EQ(sql::FormatLogDiff(diffs), "(no query changes)\n");
}

TEST(LogDiffTest, ReportsChangedWhereThreshold) {
  QueryLog original = PaperLog(85700);
  QueryLog repaired = PaperLog(87500);
  auto diffs = sql::DiffLogs(original, repaired, TaxSchema());
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].index, 0u);
  ASSERT_EQ(diffs[0].params.size(), 1u);
  EXPECT_DOUBLE_EQ(diffs[0].params[0].before, 85700);
  EXPECT_DOUBLE_EQ(diffs[0].params[0].after, 87500);
  EXPECT_NE(diffs[0].params[0].where.find("WHERE"), std::string::npos);

  std::string text = sql::FormatLogDiff(diffs);
  EXPECT_NE(text.find("@@ q1 @@"), std::string::npos);
  EXPECT_NE(text.find("- UPDATE"), std::string::npos);
  EXPECT_NE(text.find("+ UPDATE"), std::string::npos);
  EXPECT_NE(text.find("85700 -> 87500"), std::string::npos);
  EXPECT_NE(text.find("(+1800)"), std::string::npos);
}

TEST(LogDiffTest, ReportsInsertAndSetChangesWithAttributeNames) {
  QueryLog original = PaperLog(87500);
  QueryLog repaired = PaperLog(87500);
  // Corrupt the INSERT's second value and q3's SET constant.
  repaired[1].mutable_insert_values()[1] = 30000;
  repaired[2].mutable_set_clauses()[0].expr.set_constant(5.0);

  auto diffs = sql::DiffLogs(original, repaired, TaxSchema());
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].index, 1u);
  EXPECT_NE(diffs[0].params[0].where.find("VALUE owed"), std::string::npos);
  EXPECT_EQ(diffs[1].index, 2u);
  EXPECT_NE(diffs[1].params[0].where.find("SET pay"), std::string::npos);
}

TEST(LogDiffTest, ToleranceSuppressesFloatDust) {
  QueryLog original = PaperLog(85700);
  QueryLog repaired = PaperLog(85700 + 1e-12);
  EXPECT_TRUE(sql::DiffLogs(original, repaired, TaxSchema()).empty());
}

// ---------------------------------------------------------------------
// ExplainRepair
// ---------------------------------------------------------------------

struct Scenario {
  QueryLog dirty_log;
  Database d0;
  Database dirty;
  ComplaintSet complaints;
};

Scenario PaperScenario() {
  Scenario s{PaperLog(85700), TaxD0(), Database(), ComplaintSet()};
  s.dirty = ExecuteLog(s.dirty_log, s.d0);
  Database truth = ExecuteLog(PaperLog(87500), s.d0);
  s.complaints = DiffStates(s.dirty, truth);
  return s;
}

TEST(ExplainRepairTest, ReportCoversAllSections) {
  Scenario s = PaperScenario();
  QFixEngine engine(s.dirty_log, s.d0, s.dirty, s.complaints);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();

  std::string report =
      ExplainRepair(*repair, s.dirty_log, s.d0, s.dirty, s.complaints);
  EXPECT_NE(report.find("QFix diagnosis report"), std::string::npos);
  EXPECT_NE(report.find("repaired queries  : 1 of 3 (q1)"),
            std::string::npos);
  EXPECT_NE(report.find("verified          : yes"), std::string::npos);
  EXPECT_NE(report.find("@@ q1 @@"), std::string::npos);
  EXPECT_NE(report.find("Complaint resolution:"), std::string::npos);
  // Both of the paper's complaints (t3, t4 -> tids 2, 3) resolve.
  EXPECT_NE(report.find("2 of 2 complaint(s) resolved"), std::string::npos);
  EXPECT_NE(report.find("[resolved]"), std::string::npos);
  EXPECT_EQ(report.find("UNRESOLVED"), std::string::npos);
  // A complete complaint set leaves no side effects.
  EXPECT_NE(report.find("Side effects: none"), std::string::npos);
}

TEST(ExplainRepairTest, SectionsCanBeDisabled) {
  Scenario s = PaperScenario();
  QFixEngine engine(s.dirty_log, s.d0, s.dirty, s.complaints);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok());

  ExplainOptions options;
  options.include_diff = false;
  options.include_complaints = false;
  options.include_side_effects = false;
  std::string report = ExplainRepair(*repair, s.dirty_log, s.d0, s.dirty,
                                     s.complaints, options);
  EXPECT_EQ(report.find("@@ q1 @@"), std::string::npos);
  EXPECT_EQ(report.find("Complaint resolution:"), std::string::npos);
  EXPECT_EQ(report.find("Side effects"), std::string::npos);
  EXPECT_NE(report.find("parameter distance"), std::string::npos);
}

TEST(ExplainRepairTest, IncompleteComplaintsShowSideEffects) {
  // Drop the complaint on t3 (tid 2): the repair generalizes to it and
  // the report must surface it as a likely unreported error.
  Scenario s = PaperScenario();
  ComplaintSet partial;
  for (const auto& c : s.complaints.complaints()) {
    if (c.tid == 3) partial.Add(c);
  }
  ASSERT_EQ(partial.size(), 1u);

  QFixEngine engine(s.dirty_log, s.d0, s.dirty, partial);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();

  std::string report =
      ExplainRepair(*repair, s.dirty_log, s.d0, s.dirty, partial);
  if (repair->collateral > 0) {
    EXPECT_NE(report.find("likely unreported errors"), std::string::npos);
    EXPECT_NE(report.find("tid 2:"), std::string::npos);
  }
  EXPECT_NE(report.find("1 of 1 complaint(s) resolved"), std::string::npos);
}

TEST(ExplainRepairTest, RowCapTruncatesLongLists) {
  Scenario s = PaperScenario();
  QFixEngine engine(s.dirty_log, s.d0, s.dirty, s.complaints);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok());

  ExplainOptions options;
  options.max_rows = 1;
  std::string report = ExplainRepair(*repair, s.dirty_log, s.d0, s.dirty,
                                     s.complaints, options);
  EXPECT_NE(report.find("... and 1 more"), std::string::npos);
}

// ---------------------------------------------------------------------
// RepairToJson
// ---------------------------------------------------------------------

TEST(RepairJsonTest, CarriesTheSameFactsAsTheTextReport) {
  Scenario s = PaperScenario();
  QFixEngine engine(s.dirty_log, s.d0, s.dirty, s.complaints);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();

  std::string json =
      RepairToJson(*repair, s.dirty_log, s.d0, s.dirty, s.complaints);
  EXPECT_NE(json.find("\"verified\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"query\":1"), std::string::npos);
  EXPECT_NE(json.find("\"executed_sql\":\"UPDATE Taxes"),
            std::string::npos);
  EXPECT_NE(json.find("\"repaired_sql\":\"UPDATE Taxes"),
            std::string::npos);
  EXPECT_NE(json.find("\"total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"resolved\":2"), std::string::npos);
  EXPECT_NE(json.find("\"side_effects\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"stats\":{"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check; full parsing
  // is covered by the CLI test piping through a JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(RepairJsonTest, SideEffectsListUnreportedErrors) {
  Scenario s = PaperScenario();
  ComplaintSet partial;
  for (const auto& c : s.complaints.complaints()) {
    if (c.tid == 3) partial.Add(c);
  }
  QFixEngine engine(s.dirty_log, s.d0, s.dirty, partial);
  auto repair = engine.RepairIncremental(1);
  ASSERT_TRUE(repair.ok());
  std::string json =
      RepairToJson(*repair, s.dirty_log, s.d0, s.dirty, partial);
  if (repair->collateral > 0) {
    EXPECT_NE(json.find("\"side_effects\":[{\"tid\":2}"),
              std::string::npos)
        << json;
  }
}

}  // namespace
}  // namespace qfixcore
}  // namespace qfix
