// Property tests on QFix-shaped MILP instances: chains of big-M
// conditional writes driven by indicator binaries, exactly the structure
// the encoder emits. Solutions are verified against exhaustive
// enumeration of the binary assignments.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "milp/model.h"
#include "milp/presolve.h"
#include "milp/simplex.h"
#include "milp/solver.h"

namespace qfix {
namespace milp {
namespace {

// Builds a "tuple chain": value v_0 fixed; per stage i an indicator z_i
// (v_{i-1} >= c_i <-> z_i = 1) gates a conditional write
// v_i = z_i ? (v_{i-1} + delta_i) : v_{i-1}; the final value is pinned
// to a target. Minimize sum |c_i - c0_i| via split deviations. This is
// the single-tuple skeleton of the QFix encoding.
struct Chain {
  Model model;
  std::vector<VarId> thresholds;
  std::vector<double> original_thresholds;
  std::vector<VarId> indicators;
};

Chain BuildChain(int stages, double v0, double target, Rng& rng) {
  constexpr double kM = 1000.0;
  constexpr double kEps = 0.5;
  Chain chain;
  Model& m = chain.model;

  // v_0 fixed.
  VarId prev = m.AddContinuous(v0, v0, "v0");
  for (int i = 0; i < stages; ++i) {
    double c0 = double(rng.UniformInt(0, 60));
    double delta = double(rng.UniformInt(1, 15));
    VarId c = m.AddContinuous(c0 - 200, c0 + 200, "c");
    VarId dp = m.AddContinuous(0, 400, "d+");
    VarId dm = m.AddContinuous(0, 400, "d-");
    m.AddConstraint({{c, 1.0}, {dp, -1.0}, {dm, 1.0}}, Sense::kEq, c0);
    m.AddObjectiveTerm(dp, 1.0);
    m.AddObjectiveTerm(dm, 1.0);
    chain.thresholds.push_back(c);
    chain.original_thresholds.push_back(c0);

    VarId z = m.AddBinary("z");
    chain.indicators.push_back(z);
    // z = 1 <=> prev - c >= 0 (eps-strict on the false side).
    m.AddConstraint({{prev, 1.0}, {c, -1.0}, {z, -kM}}, Sense::kGe, -kM);
    m.AddConstraint({{prev, 1.0}, {c, -1.0}, {z, -kM}}, Sense::kLe, -kEps);

    // Conditional write: next = z ? prev + delta : prev.
    VarId next = m.AddContinuous(-kM, kM, "v");
    m.AddConstraint({{next, 1.0}, {prev, -1.0}, {z, kM}}, Sense::kLe,
                    delta + kM);
    m.AddConstraint({{next, 1.0}, {prev, -1.0}, {z, -kM}}, Sense::kGe,
                    delta - kM);
    m.AddConstraint({{next, 1.0}, {prev, -1.0}, {z, -kM}}, Sense::kLe, 0);
    m.AddConstraint({{next, 1.0}, {prev, -1.0}, {z, kM}}, Sense::kGe, 0);
    prev = next;
  }
  m.AddConstraint({{prev, 1.0}}, Sense::kEq, target);
  return chain;
}

// Reference: enumerate all indicator assignments; for each, the minimal
// distance solution is computable per-stage (threshold moved just enough
// to flip/keep the comparison).
double BruteForceChain(int stages, double v0, double target,
                       const std::vector<double>& c0,
                       const std::vector<double>& deltas) {
  constexpr double kEps = 0.5;
  double best = 1e30;
  for (int mask = 0; mask < (1 << stages); ++mask) {
    double v = v0;
    double cost = 0.0;
    bool ok = true;
    for (int i = 0; i < stages && ok; ++i) {
      bool fire = (mask >> i) & 1;
      // Cheapest threshold making the comparison come out as `fire`.
      if (fire) {
        // need v >= c: move c down to v if c0 > v.
        if (c0[i] > v) cost += c0[i] - v;
      } else {
        // need v <= c - eps: move c up to v + eps if c0 < v + eps.
        if (c0[i] < v + kEps) cost += v + kEps - c0[i];
      }
      if (fire) v += deltas[i];
    }
    if (ok && std::fabs(v - target) < 1e-9) best = std::min(best, cost);
  }
  return best;
}

class ChainMilpTest : public ::testing::TestWithParam<int> {};

TEST_P(ChainMilpTest, MatchesBruteForceOnConditionalChains) {
  Rng rng(6000 + GetParam());
  const int stages = static_cast<int>(rng.UniformInt(2, 5));
  const double v0 = double(rng.UniformInt(0, 40));

  // Generate stage parameters first so brute force sees the same data.
  std::vector<double> c0(stages), deltas(stages);
  Rng rng_copy = rng;  // BuildChain consumes identical draws
  for (int i = 0; i < stages; ++i) {
    c0[i] = double(rng_copy.UniformInt(0, 60));
    deltas[i] = double(rng_copy.UniformInt(1, 15));
  }
  // Pick a reachable target: simulate a random subset firing.
  double target = v0;
  for (int i = 0; i < stages; ++i) {
    if ((GetParam() >> i) & 1) target += deltas[i];
  }

  Chain chain = BuildChain(stages, v0, target, rng);
  MilpOptions opts;
  opts.time_limit_seconds = 30.0;
  MilpSolution sol = MilpSolver(opts).Solve(chain.model);
  double expected = BruteForceChain(stages, v0, target, c0, deltas);

  if (expected > 1e29) {
    EXPECT_EQ(sol.status, MilpStatus::kInfeasible);
    return;
  }
  ASSERT_TRUE(HasSolution(sol.status))
      << MilpStatusToString(sol.status) << " stages=" << stages;
  EXPECT_NEAR(sol.objective, expected, 1e-4)
      << "stages=" << stages << " v0=" << v0 << " target=" << target;
}

INSTANTIATE_TEST_SUITE_P(RandomChains, ChainMilpTest,
                         ::testing::Range(0, 40));

// Degenerate-LP stress: many redundant rows through one vertex must not
// stall or mis-solve (exercises the perturbation + Bland fallback).
TEST(DegenerateStress, ManyRedundantRowsThroughOneVertex) {
  Model m;
  VarId x = m.AddContinuous(0, 100, "x");
  VarId y = m.AddContinuous(0, 100, "y");
  m.AddObjectiveTerm(x, -1.0);
  m.AddObjectiveTerm(y, -1.0);
  for (int i = 1; i <= 40; ++i) {
    // All of these pass through (50, 50) with different slopes.
    m.AddConstraint({{x, double(i)}, {y, double(41 - i)}}, Sense::kLe,
                    50.0 * i + 50.0 * (41 - i));
  }
  LpResult r = SolveLp(m, m.InitialDomains(), SimplexOptions{});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -100.0, 1e-5);
  EXPECT_LT(r.iterations, 500);
}

// Equality-heavy systems (the encoder pins complaint outputs with
// equalities): redundant and chained equalities must stay consistent
// under the inequality-only perturbation.
TEST(DegenerateStress, LongEqualityChainsStayExact) {
  Model m;
  const int n = 120;
  VarId first = m.AddContinuous(-1e6, 1e6, "v");
  m.AddConstraint({{first, 1.0}}, Sense::kEq, 21500.0);
  VarId prev = first;
  for (int i = 1; i < n; ++i) {
    VarId next = m.AddContinuous(-1e6, 1e6, "v");
    m.AddConstraint({{next, 1.0}, {prev, -1.0}}, Sense::kEq, 1.0);
    // A redundant copy of the same equality.
    m.AddConstraint({{next, 2.0}, {prev, -2.0}}, Sense::kEq, 2.0);
    prev = next;
  }
  m.AddObjectiveTerm(prev, 1.0);
  LpResult r = SolveLp(m, m.InitialDomains(), SimplexOptions{});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[prev], 21500.0 + (n - 1), 1e-5);
}

// The LP time limit must interrupt a large instance promptly.
TEST(TimeLimit, LargeLpRespectsWallClock) {
  Rng rng(1);
  Model m;
  const int n = 600;
  for (int j = 0; j < n; ++j) {
    m.AddContinuous(-10, 10, "x");
    m.AddObjectiveTerm(j, rng.UniformReal(-1, 1));
  }
  for (int i = 0; i < n; ++i) {
    LinearTerms terms;
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.3)) terms.push_back({j, rng.UniformReal(-1, 1)});
    }
    if (terms.empty()) terms.push_back({i, 1.0});
    m.AddConstraint(std::move(terms), Sense::kLe,
                    rng.UniformReal(50, 100));
  }
  SimplexOptions opts;
  opts.time_limit_seconds = 0.05;
  WallTimer timer;
  LpResult r = SolveLp(m, m.InitialDomains(), opts);
  // Either it solved quickly or it stopped near the budget.
  EXPECT_LT(timer.ElapsedSeconds(), 2.0);
  (void)r;
}

}  // namespace
}  // namespace milp
}  // namespace qfix
