// Randomized "garbage bytes" regression suite for the SQL parser.
//
// The parser is network-facing: POST /v1/datasets feeds sql::ParseLog
// straight from request bodies, so malformed input — truncated
// statements, bit rot, injected NULs, oversized literals, deep
// parenthesis nests — must come back as Result errors, never crash.
// Mirrors tests/io_fuzz_test.cc; the random sweeps are seeded and
// deterministic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "relational/schema.h"
#include "sql/parser.h"
#include "test_support.h"

namespace qfix {
namespace {

constexpr const char* kValidLogSql =
    "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;\n"
    "INSERT INTO Taxes VALUES (87000, 21750, 65250);\n"
    "UPDATE Taxes SET pay = income - owed;\n"
    "DELETE FROM Taxes WHERE owed > 90000 AND pay < 100;\n"
    "UPDATE Taxes SET owed = owed + 1 "
    "WHERE income BETWEEN 1000 AND 2000 OR pay IN [10, 20];\n";

std::string RandomBytes(Rng& rng, size_t len) {
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  return out;
}

// One random corruption of a valid document (same failure modes the io
// fuzz sweeps model: truncation, bit rot, injected bytes).
std::string Mutate(const std::string& doc, Rng& rng) {
  std::string out = doc;
  switch (rng.UniformInt(0, 6)) {
    case 0:  // truncate at a random offset
      out.resize(rng.Index(out.size() + 1));
      break;
    case 1:  // flip one byte to a random value
      if (!out.empty()) {
        out[rng.Index(out.size())] =
            static_cast<char>(rng.UniformInt(0, 255));
      }
      break;
    case 2:  // inject a NUL byte
      out.insert(rng.Index(out.size() + 1), 1, '\0');
      break;
    case 3:  // duplicate a random slice (splices keywords mid-token)
      if (!out.empty()) {
        size_t at = rng.Index(out.size());
        size_t n = rng.Index(out.size() - at) + 1;
        out.insert(at, out.substr(at, n));
      }
      break;
    case 4:  // splice in an oversized numeric literal
      out.insert(rng.Index(out.size() + 1), std::string(4096, '9'));
      break;
    case 5:  // splice in operator soup
      out.insert(rng.Index(out.size() + 1),
                 rng.Bernoulli(0.5) ? ">=<=<>*(" : "));((,,AND OR");
      break;
    default:  // extra statement separators
      out.insert(rng.Index(out.size() + 1),
                 rng.Bernoulli(0.5) ? ";;;;" : ";\n;\r\n;");
      break;
  }
  return out;
}

// The whole assertion: parse and ignore the outcome — a crash or
// sanitizer report fails the run. Accepted logs must round-trip
// through the executor-facing accessors without crashing either.
void FeedParser(const std::string& sql) {
  relational::Schema schema = test::TaxSchema();
  auto log = sql::ParseLog(sql, schema);
  if (log.ok()) {
    for (const auto& q : *log) {
      (void)q.Params();
    }
  }
  (void)sql::ParseQuery(sql, schema);
}

TEST(SqlFuzzTest, SurvivesPureRandomBytes) {
  Rng rng(20260729);
  for (int i = 0; i < 400; ++i) {
    FeedParser(RandomBytes(rng, rng.Index(512)));
  }
}

TEST(SqlFuzzTest, SurvivesMutatedLogs) {
  Rng rng(1);
  for (int i = 0; i < 600; ++i) {
    FeedParser(Mutate(kValidLogSql, rng));
  }
}

TEST(SqlFuzzTest, SurvivesKeywordSoup) {
  // Token-level recombination reaches deeper parser states than byte
  // noise: every draw is a syntactically plausible token stream.
  static const char* kTokens[] = {
      "UPDATE", "Taxes",  "SET",   "owed",  "=",    "income", "*",
      "0.3",    "WHERE",  ">=",    "85700", "AND",  "OR",     "NOT",
      "(",      ")",      ",",     ";",     "INSERT", "INTO", "VALUES",
      "DELETE", "FROM",   "BETWEEN", "IN",  "[",    "]",      "TRUE",
      "-",      "+",      "1e308", "nan",   "pay",  "unknown_attr"};
  Rng rng(2);
  for (int i = 0; i < 400; ++i) {
    std::string sql;
    int n = rng.UniformInt(1, 40);
    for (int t = 0; t < n; ++t) {
      sql += kTokens[rng.Index(sizeof(kTokens) / sizeof(kTokens[0]))];
      sql += ' ';
    }
    FeedParser(sql);
  }
}

// -- Specific regressions the sweeps above were built from ------------------

TEST(SqlFuzzTest, EmptyAndSeparatorOnlyInputs) {
  FeedParser("");
  FeedParser(";;;;");
  FeedParser(" \t\r\n");
  EXPECT_FALSE(sql::ParseQuery("", test::TaxSchema()).ok());
}

TEST(SqlFuzzTest, DeepParenthesisNestsDoNotOverflowTheStack) {
  // A recursive-descent parser must bound its depth: an attacker can
  // send megabytes of '(' for pennies.
  std::string deep = "UPDATE Taxes SET owed = 1 WHERE ";
  deep += std::string(100000, '(');
  deep += "income > 5";
  deep += std::string(100000, ')');
  deep += ";";
  auto log = sql::ParseLog(deep, test::TaxSchema());
  EXPECT_FALSE(log.ok());
}

TEST(SqlFuzzTest, OversizedAndNonFiniteLiteralsError) {
  relational::Schema schema = test::TaxSchema();
  EXPECT_FALSE(
      sql::ParseQuery("UPDATE Taxes SET owed = 1e400 WHERE TRUE", schema)
          .ok());
  EXPECT_FALSE(sql::ParseQuery(
                   "INSERT INTO Taxes VALUES (" + std::string(100000, '9') +
                       ", 1, 2)",
                   schema)
                   .ok());
}

TEST(SqlFuzzTest, EmbeddedNulErrors) {
  std::string sql = "UPDATE Taxes SET owed = 1 WHERE income > 5";
  sql[sql.size() - 1] = '\0';
  EXPECT_FALSE(sql::ParseQuery(sql, test::TaxSchema()).ok());
}

TEST(SqlFuzzTest, UnknownAttributesAndTablesError) {
  relational::Schema schema = test::TaxSchema();
  EXPECT_FALSE(
      sql::ParseQuery("UPDATE Taxes SET nope = 1 WHERE TRUE", schema).ok());
  EXPECT_FALSE(
      sql::ParseQuery("DELETE FROM Taxes WHERE ghost > 1", schema).ok());
}

TEST(SqlFuzzTest, ValidLogStillParses) {
  auto log = sql::ParseLog(kValidLogSql, test::TaxSchema());
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log->size(), 5u);
}

}  // namespace
}  // namespace qfix
