#include <gtest/gtest.h>

#include "common/random.h"
#include "relational/executor.h"
#include "relational/query.h"
#include "relational/schema.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_support.h"

namespace qfix {
namespace sql {
namespace {

using relational::CmpOp;
using relational::Database;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::QueryType;
using relational::Schema;

using qfix::test::TaxSchema;

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("UPDATE Taxes SET owed = income*0.3;");
  ASSERT_TRUE(tokens.ok());
  const auto& t = *tokens;
  ASSERT_EQ(t.size(), 10u);  // incl. kEnd
  EXPECT_EQ(t[0].type, TokenType::kKeyword);
  EXPECT_EQ(t[0].text, "UPDATE");
  EXPECT_EQ(t[1].type, TokenType::kIdentifier);
  EXPECT_EQ(t[1].text, "Taxes");
  EXPECT_EQ(t[4].type, TokenType::kSymbol);
  EXPECT_EQ(t[4].text, "=");
  EXPECT_EQ(t[6].text, "*");
  EXPECT_EQ(t[7].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(t[7].number, 0.3);
  EXPECT_EQ(t[8].text, ";");
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("update T set a = 1 where b >= 2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "UPDATE");
  EXPECT_EQ((*tokens)[2].text, "SET");
}

TEST(LexerTest, TwoCharOperatorsAndComments) {
  auto tokens = Tokenize("a <= 1 -- trailing comment\n b <> 2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<=");
  EXPECT_EQ((*tokens)[4].text, "<>");
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

TEST(ParserTest, PaperQueryQ1) {
  Schema s = TaxSchema();
  auto q = ParseQuery(
      "UPDATE Taxes SET owed=income*0.3 WHERE income>=85700", s);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->type(), QueryType::kUpdate);
  EXPECT_EQ(q->table(), "Taxes");
  ASSERT_EQ(q->set_clauses().size(), 1u);
  EXPECT_EQ(q->set_clauses()[0].attr, 1u);
  EXPECT_TRUE(q->Matches({85700, 0, 0}));
  EXPECT_FALSE(q->Matches({85699, 0, 0}));
}

TEST(ParserTest, InsertAndDelete) {
  Schema s = TaxSchema();
  auto ins = ParseQuery("INSERT INTO Taxes VALUES (87000, 21750, 65250)", s);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->type(), QueryType::kInsert);
  EXPECT_EQ(ins->insert_values(),
            (std::vector<double>{87000, 21750, 65250}));

  auto del = ParseQuery("DELETE FROM Taxes WHERE owed > 100", s);
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->type(), QueryType::kDelete);
  EXPECT_TRUE(del->Matches({0, 101, 0}));
}

TEST(ParserTest, NegativeInsertValues) {
  Schema s = TaxSchema();
  auto ins = ParseQuery("INSERT INTO Taxes VALUES (-5, 0, -0.5)", s);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->insert_values(), (std::vector<double>{-5, 0, -0.5}));
}

TEST(ParserTest, MultipleSetClauses) {
  Schema s = TaxSchema();
  auto q = ParseQuery("UPDATE Taxes SET owed = 0, pay = income", s);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->set_clauses().size(), 2u);
  EXPECT_TRUE(q->where().IsTrue());
}

TEST(ParserTest, LinearExpressions) {
  Schema s = TaxSchema();
  auto q = ParseQuery(
      "UPDATE Taxes SET pay = income - owed + 2 * income / 4", s);
  ASSERT_TRUE(q.ok());
  const LinearExpr& e = q->set_clauses()[0].expr;
  // pay = 1.5 * income - owed
  EXPECT_DOUBLE_EQ(e.Eval({100, 30, 0}), 150 - 30);
}

TEST(ParserTest, RejectsNonLinear) {
  Schema s = TaxSchema();
  EXPECT_FALSE(ParseQuery("UPDATE Taxes SET pay = income * owed", s).ok());
  EXPECT_FALSE(ParseQuery("UPDATE Taxes SET pay = 1 / income", s).ok());
}

TEST(ParserTest, WherePrecedenceAndParens) {
  Schema s = TaxSchema();
  // AND binds tighter than OR.
  auto q = ParseQuery(
      "DELETE FROM T WHERE income = 1 OR owed = 2 AND pay = 3", s);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->Matches({1, 0, 0}));
  EXPECT_TRUE(q->Matches({0, 2, 3}));
  EXPECT_FALSE(q->Matches({0, 2, 0}));

  auto q2 = ParseQuery(
      "DELETE FROM T WHERE (income = 1 OR owed = 2) AND pay = 3", s);
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(q2->Matches({1, 0, 0}));
  EXPECT_TRUE(q2->Matches({1, 0, 3}));
}

TEST(ParserTest, BetweenAndInRanges) {
  Schema s = TaxSchema();
  auto q = ParseQuery("DELETE FROM T WHERE income BETWEEN 10 AND 20", s);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->Matches({10, 0, 0}));
  EXPECT_TRUE(q->Matches({20, 0, 0}));
  EXPECT_FALSE(q->Matches({21, 0, 0}));

  auto q2 = ParseQuery("DELETE FROM T WHERE owed IN [5, 7]", s);
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->Matches({0, 6, 0}));
  EXPECT_FALSE(q2->Matches({0, 4, 0}));
  // A range contributes two repairable parameters (both endpoints).
  EXPECT_EQ(q2->NumParams(), 2u);
}

TEST(ParserTest, ComparisonNormalizationFoldsConstantsRight) {
  Schema s = TaxSchema();
  // a + 5 <= b + 10   ==>   (income - owed) <= 5
  auto q = ParseQuery("DELETE FROM T WHERE income + 5 <= owed + 10", s);
  ASSERT_TRUE(q.ok());
  const Predicate& p = q->where();
  ASSERT_EQ(p.kind(), Predicate::Kind::kComparison);
  EXPECT_DOUBLE_EQ(p.comparison().rhs, 5.0);
  EXPECT_DOUBLE_EQ(p.comparison().lhs.constant(), 0.0);
  EXPECT_TRUE(q->Matches({5, 0, 0}));
  EXPECT_FALSE(q->Matches({6, 0, 0}));
}

TEST(ParserTest, TrueWhere) {
  Schema s = TaxSchema();
  auto q = ParseQuery("UPDATE T SET owed = 1 WHERE TRUE", s);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->where().IsTrue());
}

TEST(ParserTest, ErrorsCarryContext) {
  Schema s = TaxSchema();
  auto r = ParseQuery("UPDATE T SET bogus = 1", s);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());

  auto r2 = ParseQuery("SELECT * FROM T", s);
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(r2.status().IsInvalidArgument());

  auto r3 = ParseQuery("INSERT INTO T VALUES (1, 2)", s);  // arity
  ASSERT_FALSE(r3.ok());

  auto r4 = ParseQuery("UPDATE T SET owed = 1 extra", s);
  ASSERT_FALSE(r4.ok());
}

TEST(ParserTest, ParseLogMultipleStatements) {
  Schema s = TaxSchema();
  auto log = ParseLog(
      "UPDATE Taxes SET owed=income*0.3 WHERE income>=85700;\n"
      "INSERT INTO Taxes VALUES (87000, 21750, 65250);\n"
      "UPDATE Taxes SET pay=income-owed;",
      s);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_EQ(log->size(), 3u);
  EXPECT_EQ((*log)[0].type(), QueryType::kUpdate);
  EXPECT_EQ((*log)[1].type(), QueryType::kInsert);
  EXPECT_EQ((*log)[2].type(), QueryType::kUpdate);
}

// Round-trip property: print a random query to SQL, reparse it, and check
// both versions behave identically on random tuples.
class SqlRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(SqlRoundTripTest, PrintParseBehaviourIsIdentical) {
  Rng rng(4000 + GetParam());
  const size_t num_attrs = 4;
  Schema schema = Schema::WithDefaultNames(num_attrs);

  auto random_expr = [&]() {
    LinearExpr e = LinearExpr::Constant(
        static_cast<double>(rng.UniformInt(-20, 20)));
    int terms = static_cast<int>(rng.UniformInt(0, 2));
    for (int i = 0; i < terms; ++i) {
      e.AddTerm(rng.Index(num_attrs),
                static_cast<double>(rng.UniformInt(-3, 3)));
    }
    return e;
  };
  auto random_pred = [&]() {
    std::vector<Predicate> atoms;
    int n = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < n; ++i) {
      CmpOp op = static_cast<CmpOp>(rng.UniformInt(0, 5));
      atoms.push_back(relational::Predicate::Atom(
          {LinearExpr::Attr(rng.Index(num_attrs)), op,
           static_cast<double>(rng.UniformInt(-10, 10))}));
    }
    return rng.Bernoulli(0.5) ? Predicate::And(std::move(atoms))
                              : Predicate::Or(std::move(atoms));
  };

  Query original = [&]() {
    switch (rng.UniformInt(0, 2)) {
      case 0: {
        std::vector<relational::SetClause> sets;
        size_t n = 1 + rng.Index(2);
        for (size_t i = 0; i < n; ++i) {
          sets.push_back({rng.Index(num_attrs), random_expr()});
        }
        return Query::Update("T", std::move(sets), random_pred());
      }
      case 1: {
        std::vector<double> vals;
        for (size_t i = 0; i < num_attrs; ++i) {
          vals.push_back(static_cast<double>(rng.UniformInt(-50, 50)));
        }
        return Query::Insert("T", std::move(vals));
      }
      default:
        return Query::Delete("T", random_pred());
    }
  }();

  std::string sql_text = original.ToSql(schema);
  auto reparsed = ParseQuery(sql_text, schema);
  ASSERT_TRUE(reparsed.ok())
      << "failed to reparse: " << sql_text << " -- "
      << reparsed.status().ToString();

  // Behavioural equivalence on random tuples.
  Database db(schema, "T");
  for (int i = 0; i < 30; ++i) {
    std::vector<double> values;
    for (size_t a = 0; a < num_attrs; ++a) {
      values.push_back(static_cast<double>(rng.UniformInt(-15, 15)));
    }
    db.AddTuple(values);
  }
  Database via_original = db, via_reparsed = db;
  relational::ApplyQuery(original, via_original);
  relational::ApplyQuery(*reparsed, via_reparsed);
  ASSERT_EQ(via_original.NumSlots(), via_reparsed.NumSlots());
  for (size_t i = 0; i < via_original.NumSlots(); ++i) {
    EXPECT_EQ(via_original.slot(i).alive, via_reparsed.slot(i).alive);
    for (size_t a = 0; a < num_attrs; ++a) {
      EXPECT_DOUBLE_EQ(via_original.slot(i).values[a],
                       via_reparsed.slot(i).values[a])
          << "sql: " << sql_text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RoundTrips, SqlRoundTripTest,
                         ::testing::Range(0, 60));

// ---------------------------------------------------------------------
// Robustness sweep: mangled inputs never crash, always return a clean
// InvalidArgument/Unsupported status.
// ---------------------------------------------------------------------

class SqlFuzzTest : public testing::TestWithParam<int> {};

TEST_P(SqlFuzzTest, MangledStatementsFailCleanly) {
  // Start from a valid statement and mangle it deterministically:
  // truncate, duplicate a token, splice random bytes.
  const std::string base =
      "UPDATE T SET a0 = a1 * 2 + 3 WHERE a1 >= 10 AND a0 < 5";
  Rng rng(4400 + GetParam());
  relational::Schema schema = relational::Schema::WithDefaultNames(3);

  for (int round = 0; round < 50; ++round) {
    std::string mangled = base;
    switch (rng.UniformInt(0, 3)) {
      case 0:  // truncate mid-token
        mangled = mangled.substr(0, rng.Index(mangled.size()));
        break;
      case 1: {  // duplicate a random slice
        size_t at = rng.Index(mangled.size());
        mangled.insert(at, mangled.substr(rng.Index(mangled.size()),
                                          rng.UniformInt(1, 8)));
        break;
      }
      case 2: {  // splice punctuation soup
        const char* soup[] = {"((", "**", ",,", "= =", ">=<", "'", ";;"};
        mangled.insert(rng.Index(mangled.size()),
                       soup[rng.Index(std::size(soup))]);
        break;
      }
      default: {  // flip one byte
        mangled[rng.Index(mangled.size())] =
            static_cast<char>(rng.UniformInt(33, 126));
        break;
      }
    }
    // Must not crash; must either parse (some mangles stay valid) or
    // return a clean error status.
    auto result = ParseQuery(mangled, schema);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty()) << mangled;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Mangles, SqlFuzzTest, testing::Range(0, 10));

TEST(SqlFuzzTest, PathologicalInputsFailCleanly) {
  relational::Schema schema = relational::Schema::WithDefaultNames(2);
  const char* inputs[] = {
      "",
      ";",
      ";;;;",
      "UPDATE",
      "UPDATE T",
      "UPDATE T SET",
      "UPDATE T SET a0",
      "UPDATE T SET a0 =",
      "UPDATE T SET a0 = WHERE",
      "INSERT INTO T VALUES",
      "INSERT INTO T VALUES (",
      "INSERT INTO T VALUES (1",
      "INSERT INTO T VALUES (1,)",
      "DELETE FROM",
      "DELETE FROM T WHERE",
      "UPDATE T SET a0 = 1 WHERE a9 > 0",   // unknown attribute
      "UPDATE T SET a0 = a0 * a1",          // non-linear
      "SELECT * FROM T",                    // unsupported statement
      "UPDATE T SET a0 = 1 WHERE (a1 > 0",  // unbalanced paren
      "UPDATE T SET a0 = 1e999",            // overflow literal
  };
  for (const char* sql : inputs) {
    auto result = ParseQuery(sql, schema);
    EXPECT_FALSE(result.ok()) << "accepted: " << sql;
  }
}

}  // namespace
}  // namespace sql
}  // namespace qfix
