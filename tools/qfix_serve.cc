// qfix_serve — the embedded HTTP/JSON diagnosis server.
//
// Usage:
//   qfix_serve [--host ADDR] [--port N] [--jobs N] [--max-inflight N]
//              [--max-connections N] [--time-limit SECONDS]
//              [--name NAME --table T --d0 FILE --log FILE]
//              [--test-endpoints]
//
// Starts the service (src/service) and blocks until SIGINT/SIGTERM,
// then shuts down cooperatively (in-flight requests drain, queued batch
// items fail fast). `--port 0` (the default) binds an ephemeral port;
// the bound address is printed as
//   qfix_serve listening on http://HOST:PORT
// so scripts (the CI smoke, the tests) can scrape it.
//
// Endpoints and JSON schemas: README.md, section "Running the server".
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/registry.h"
#include "service/server.h"
#include "tool_common.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host ADDR] [--port N] [--jobs N]\n"
      "          [--max-inflight N] [--max-connections N]\n"
      "          [--time-limit SECONDS]\n"
      "          [--name NAME --table T --d0 FILE --log FILE]\n\n"
      "  --host ADDR         bind address (default 127.0.0.1)\n"
      "  --port N            TCP port; 0 picks an ephemeral port\n"
      "                      (default 0)\n"
      "  --jobs N            diagnosis pool workers (default 1;\n"
      "                      0 = one per core)\n"
      "  --max-inflight N    diagnosis requests in flight before the\n"
      "                      server sheds with 429 (default 8)\n"
      "  --max-connections N concurrent connections (default 64)\n"
      "  --max-datasets N    registry capacity; full -> 429 for new\n"
      "                      names (default 64)\n"
      "  --max-items N       items[] entries accepted per diagnose\n"
      "                      request (default 64)\n"
      "  --time-limit S      cap on any request's per-item time limit\n"
      "                      (default 30)\n"
      "  --cache-bytes N     report-cache byte budget (default 64 MiB)\n"
      "  --cache-off         disable the report cache entirely\n"
      "  --idle-timeout S    keep-alive idle budget between requests\n"
      "                      on one connection (default 5)\n"
      "  --max-requests-per-conn N\n"
      "                      requests one connection may carry before\n"
      "                      the server closes it (default 100;\n"
      "                      1 disables keep-alive)\n"
      "  --name/--table/--d0/--log\n"
      "                      preregister one dataset from files before\n"
      "                      serving (same formats as qfix --d0/--log)\n"
      "  --test-endpoints    enable POST /v1/debug/sleep (tests only)\n",
      argv0);
}

using qfix::tools::ReadFile;

}  // namespace

int main(int argc, char** argv) {
  qfix::service::ServerOptions options;
  std::string pre_name, pre_table = "T", pre_d0_path, pre_log_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      options.host = next() ? argv[i] : options.host;
    } else if (arg == "--port") {
      options.port = next() ? std::atoi(argv[i]) : 0;
    } else if (arg == "--jobs") {
      const char* v = next();
      int jobs = v != nullptr ? std::atoi(v) : 1;
      options.jobs = jobs == 0
                         ? qfix::exec::ThreadPool::DefaultParallelism()
                         : jobs;
    } else if (arg == "--max-inflight") {
      options.max_inflight = next() ? std::atoi(argv[i]) : 8;
    } else if (arg == "--max-connections") {
      options.max_connections = next() ? std::atoi(argv[i]) : 64;
    } else if (arg == "--max-datasets") {
      options.max_datasets = next() ? std::atoi(argv[i]) : 64;
    } else if (arg == "--max-items") {
      options.max_items = next() ? std::atoi(argv[i]) : 64;
    } else if (arg == "--time-limit") {
      options.max_time_limit_seconds = next() ? std::atof(argv[i]) : 30.0;
    } else if (arg == "--cache-bytes") {
      const char* v = next();
      long long bytes = v != nullptr ? std::atoll(v) : 0;
      options.cache_bytes =
          bytes > 0 ? static_cast<size_t>(bytes) : 0;
    } else if (arg == "--cache-off") {
      options.cache_bytes = 0;
    } else if (arg == "--idle-timeout") {
      options.idle_timeout_seconds = next() ? std::atof(argv[i]) : 5.0;
    } else if (arg == "--max-requests-per-conn") {
      options.max_requests_per_conn = next() ? std::atoi(argv[i]) : 100;
    } else if (arg == "--name") {
      pre_name = next() ? argv[i] : "";
    } else if (arg == "--table") {
      pre_table = next() ? argv[i] : "T";
    } else if (arg == "--d0") {
      pre_d0_path = next() ? argv[i] : "";
    } else if (arg == "--log") {
      pre_log_path = next() ? argv[i] : "";
    } else if (arg == "--test-endpoints") {
      options.enable_test_endpoints = true;
    } else {
      PrintUsage(argv[0]);
      return 2;
    }
  }

  qfix::service::DiagnosisServer server(options);

  if (!pre_d0_path.empty() || !pre_log_path.empty()) {
    if (pre_d0_path.empty() || pre_log_path.empty() || pre_name.empty()) {
      std::fprintf(stderr,
                   "error: preregistration needs --name, --d0 and --log\n");
      return 2;
    }
    std::string d0_text, log_sql;
    if (!ReadFile(pre_d0_path, &d0_text)) {
      std::fprintf(stderr, "error: cannot read %s\n", pre_d0_path.c_str());
      return 1;
    }
    if (!ReadFile(pre_log_path, &log_sql)) {
      std::fprintf(stderr, "error: cannot read %s\n", pre_log_path.c_str());
      return 1;
    }
    auto ds = server.registry().Register(pre_name, d0_text, pre_table,
                                         log_sql);
    if (!ds.ok()) {
      std::fprintf(stderr, "error registering dataset: %s\n",
                   ds.status().ToString().c_str());
      return 1;
    }
    std::printf("registered dataset '%s' (%zu tuples, %zu queries)\n",
                (*ds)->name.c_str(), (*ds)->d0.NumSlots(),
                (*ds)->log.size());
  }

  qfix::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("qfix_serve listening on http://%s:%d\n",
              options.host.c_str(), server.port());
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("shutting down\n");
  server.Stop();
  return 0;
}
