// qfix_serve — the embedded HTTP/JSON diagnosis server.
//
// Usage:
//   qfix_serve [--host ADDR] [--port N] [--jobs N] [--max-inflight N]
//              [--max-connections N] [--event-loop-threads N]
//              [--time-limit SECONDS]
//              [--name NAME --table T --d0 FILE --log FILE]
//              [--test-endpoints]
//
// Starts the service (src/service) and blocks until SIGINT/SIGTERM,
// then shuts down cooperatively (in-flight requests drain, queued batch
// items fail fast). `--port 0` (the default) binds an ephemeral port;
// the bound address is printed as
//   qfix_serve listening on http://HOST:PORT
// so scripts (the CI smoke, the tests) can scrape it.
//
// Numeric flags are parsed strictly: trailing garbage ("80x0") and
// out-of-range values are usage errors, never a silent 0 — a server
// that binds an ephemeral port because a typo atoi'd to zero is a
// production incident, not a default. No SIGPIPE handler is installed
// (or needed): every send in the server and client goes through
// MSG_NOSIGNAL.
//
// Endpoints and JSON schemas: README.md, section "Running the server".
#include <chrono>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/logging.h"
#include "service/registry.h"
#include "service/server.h"
#include "tool_common.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host ADDR] [--port N] [--jobs N]\n"
      "          [--max-inflight N] [--max-connections N]\n"
      "          [--event-loop-threads N] [--time-limit SECONDS]\n"
      "          [--name NAME --table T --d0 FILE --log FILE]\n\n"
      "  --host ADDR         bind address (default 127.0.0.1)\n"
      "  --port N            TCP port; 0 picks an ephemeral port\n"
      "                      (default 0)\n"
      "  --jobs N            diagnosis pool workers (default 1;\n"
      "                      0 = one per core)\n"
      "  --max-inflight N    diagnosis requests in flight before the\n"
      "                      server sheds with 429 (default 8)\n"
      "  --max-connections N concurrent connections (default 10000)\n"
      "  --event-loop-threads N\n"
      "                      epoll event-loop threads sharing the\n"
      "                      listener (default 1)\n"
      "  --max-datasets N    registry capacity; full -> 429 for new\n"
      "                      names (default 64)\n"
      "  --max-items N       items[] entries accepted per diagnose\n"
      "                      request (default 64)\n"
      "  --time-limit S      cap on any request's per-item time limit\n"
      "                      (default 30)\n"
      "  --cache-bytes N     report-cache byte budget (default 64 MiB)\n"
      "  --cache-off         disable the report cache entirely\n"
      "  --cache-tenant-fraction F\n"
      "                      cap one tenant's slice of each cache\n"
      "                      shard's budget, in (0,1] (default 1.0)\n"
      "  --max-append-queries N\n"
      "                      queries one POST /v1/datasets/{name}/append\n"
      "                      may carry; larger bodies are rejected whole\n"
      "                      with 413 (default 4096; 0 = unbounded)\n"
      "  --encoding-cache-bytes N\n"
      "                      byte budget of the incremental-encoding\n"
      "                      cache (memoized chunk-prefix replays;\n"
      "                      default 16 MiB, 0 disables prefix reuse)\n"
      "  --registry-bytes N  registry byte budget; past it the least\n"
      "                      recently used datasets are evicted\n"
      "                      (default 0 = unbounded)\n"
      "  --registry-ttl S    evict datasets idle this long (default\n"
      "                      0 = no TTL)\n"
      "  --tenant-weight NAME=W\n"
      "                      fair-share admission weight for tenant\n"
      "                      NAME (repeatable; unlisted tenants are 1)\n"
      "  --tenant-activity-window S\n"
      "                      how long a shed tenant keeps its\n"
      "                      guaranteed share reserved (default 5)\n"
      "  --idle-timeout S    keep-alive idle budget between requests\n"
      "                      on one connection (default 5)\n"
      "  --max-requests-per-conn N\n"
      "                      requests one connection may carry before\n"
      "                      the server closes it (default 100;\n"
      "                      1 disables keep-alive)\n"
      "  --slow-request-ms MS\n"
      "                      WARN-log any /v1/diagnose slower than MS\n"
      "                      milliseconds end to end (default 0 = off);\n"
      "                      slow requests are also always retained in\n"
      "                      the flight recorder\n"
      "  --trace-buffer-bytes N\n"
      "                      flight-recorder byte budget for retained\n"
      "                      request traces, served by GET\n"
      "                      /v1/debug/traces (default 4 MiB; 0\n"
      "                      disables the recorder)\n"
      "  --trace-sample-probability F\n"
      "                      retention probability in [0,1] for fast,\n"
      "                      successful requests; slow/errored/shed\n"
      "                      requests are always retained (default\n"
      "                      0.01)\n"
      "  --loop-stall-warn-ms MS\n"
      "                      WARN `stall` when an event-loop heartbeat\n"
      "                      goes stale this long (default 1000;\n"
      "                      0 = off)\n"
      "  --solve-deadline-warn-ms MS\n"
      "                      WARN `stall` when one solve runs longer\n"
      "                      than MS and force-retain its trace\n"
      "                      (default 0 = off)\n"
      "  --starvation-warn-ms MS\n"
      "                      WARN `stall` when the admission gate stays\n"
      "                      pinned at max-inflight this long (default\n"
      "                      0 = off)\n"
      "  --warn-log-per-sec N\n"
      "                      token-bucket cap on WARN log lines per\n"
      "                      second; drops count in\n"
      "                      qfix_log_lines_dropped_total (default\n"
      "                      0 = unlimited)\n"
      "  --log-level LEVEL   debug|info|warn|error|off (default info)\n"
      "  --log-json          emit structured logs as JSON lines\n"
      "  --name/--table/--d0/--log\n"
      "                      preregister one dataset from files before\n"
      "                      serving (same formats as qfix --d0/--log)\n"
      "  --test-endpoints    enable POST /v1/debug/sleep and\n"
      "                      /v1/debug/payload (tests only)\n",
      argv0);
}

/// Strict integer flag parsing: the whole token must be a decimal
/// number inside [min, max]. "80x0", "", "abc" and out-of-range values
/// all fail — std::atoi would silently turn each into a wrong server
/// configuration (ephemeral port, zero capacity).
bool ParseIntFlag(const char* text, long min_value, long max_value,
                  long* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  if (value < min_value || value > max_value) return false;
  *out = value;
  return true;
}

/// Strict double flag parsing, same contract as ParseIntFlag.
bool ParseDoubleFlag(const char* text, double min_value, double max_value,
                     double* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(text, &end);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  if (value < min_value || value > max_value) return false;
  *out = value;
  return true;
}

using qfix::tools::ReadFile;

}  // namespace

int main(int argc, char** argv) {
  qfix::service::ServerOptions options;
  std::string pre_name, pre_table = "T", pre_d0_path, pre_log_path;

  bool usage_error = false;
  for (int i = 1; i < argc && !usage_error; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto int_flag = [&](long min_value, long max_value, long* out) {
      if (!ParseIntFlag(next(), min_value, max_value, out)) {
        std::fprintf(stderr,
                     "error: %s needs an integer in [%ld, %ld]\n",
                     arg.c_str(), min_value, max_value);
        usage_error = true;
      }
    };
    auto double_flag = [&](double min_value, double max_value, double* out) {
      if (!ParseDoubleFlag(next(), min_value, max_value, out)) {
        std::fprintf(stderr, "error: %s needs a number in [%g, %g]\n",
                     arg.c_str(), min_value, max_value);
        usage_error = true;
      }
    };
    long n = 0;
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "error: --host needs an address\n");
        usage_error = true;
      } else {
        options.host = v;
      }
    } else if (arg == "--port") {
      int_flag(0, 65535, &n);
      options.port = static_cast<int>(n);
    } else if (arg == "--jobs") {
      int_flag(0, 4096, &n);
      options.jobs = n == 0 ? qfix::exec::ThreadPool::DefaultParallelism()
                            : static_cast<int>(n);
    } else if (arg == "--max-inflight") {
      int_flag(1, 1000000, &n);
      options.max_inflight = static_cast<int>(n);
    } else if (arg == "--max-connections") {
      int_flag(1, 1000000, &n);
      options.max_connections = static_cast<int>(n);
    } else if (arg == "--event-loop-threads") {
      int_flag(1, 64, &n);
      options.event_loop_threads = static_cast<int>(n);
    } else if (arg == "--max-datasets") {
      int_flag(1, 1000000, &n);
      options.max_datasets = static_cast<int>(n);
    } else if (arg == "--max-items") {
      int_flag(1, 1000000, &n);
      options.max_items = static_cast<int>(n);
    } else if (arg == "--time-limit") {
      double_flag(0.001, 86400.0, &options.max_time_limit_seconds);
    } else if (arg == "--cache-bytes") {
      int_flag(0, LONG_MAX, &n);
      options.cache_bytes = static_cast<size_t>(n);
    } else if (arg == "--cache-off") {
      options.cache_bytes = 0;
    } else if (arg == "--cache-tenant-fraction") {
      double_flag(0.000001, 1.0, &options.cache_tenant_fraction);
    } else if (arg == "--max-append-queries") {
      int_flag(0, LONG_MAX, &n);
      options.max_append_queries = static_cast<size_t>(n);
    } else if (arg == "--encoding-cache-bytes") {
      int_flag(0, LONG_MAX, &n);
      options.encoding_cache_bytes = static_cast<size_t>(n);
    } else if (arg == "--registry-bytes") {
      int_flag(0, LONG_MAX, &n);
      options.registry_bytes = static_cast<size_t>(n);
    } else if (arg == "--registry-ttl") {
      double_flag(0.0, 86400.0 * 365.0, &options.registry_ttl_seconds);
    } else if (arg == "--tenant-weight") {
      const char* v = next();
      const char* eq = v != nullptr ? std::strchr(v, '=') : nullptr;
      long weight = 0;
      if (eq == nullptr || eq == v ||
          !ParseIntFlag(eq + 1, 1, 1000000, &weight)) {
        std::fprintf(stderr,
                     "error: --tenant-weight needs NAME=W with W >= 1\n");
        usage_error = true;
      } else {
        options.tenant_weights.emplace_back(std::string(v, eq),
                                            static_cast<int>(weight));
      }
    } else if (arg == "--tenant-activity-window") {
      double_flag(0.0, 86400.0, &options.tenant_activity_window_seconds);
    } else if (arg == "--idle-timeout") {
      double_flag(0.001, 86400.0, &options.idle_timeout_seconds);
    } else if (arg == "--max-requests-per-conn") {
      int_flag(1, 1000000000, &n);
      options.max_requests_per_conn = static_cast<int>(n);
    } else if (arg == "--slow-request-ms") {
      double_flag(0.0, 86400.0 * 1e3, &options.slow_request_ms);
    } else if (arg == "--trace-buffer-bytes") {
      int_flag(0, LONG_MAX, &n);
      options.trace_buffer_bytes = static_cast<size_t>(n);
    } else if (arg == "--trace-sample-probability") {
      double_flag(0.0, 1.0, &options.trace_sample_probability);
    } else if (arg == "--loop-stall-warn-ms") {
      double stall_ms = options.loop_stall_warn_seconds * 1e3;
      double_flag(0.0, 86400.0 * 1e3, &stall_ms);
      options.loop_stall_warn_seconds = stall_ms / 1e3;
    } else if (arg == "--solve-deadline-warn-ms") {
      double_flag(0.0, 86400.0 * 1e3, &options.solve_deadline_warn_ms);
    } else if (arg == "--starvation-warn-ms") {
      double starve_ms = options.admission_starvation_warn_seconds * 1e3;
      double_flag(0.0, 86400.0 * 1e3, &starve_ms);
      options.admission_starvation_warn_seconds = starve_ms / 1e3;
    } else if (arg == "--warn-log-per-sec") {
      double_flag(0.0, 1e9, &options.warn_log_per_sec);
    } else if (arg == "--log-level") {
      const char* v = next();
      qfix::LogLevel level = qfix::LogLevel::kInfo;
      if (v == nullptr || !qfix::ParseLogLevel(v, &level)) {
        std::fprintf(stderr,
                     "error: --log-level needs debug|info|warn|error|off\n");
        usage_error = true;
      } else {
        qfix::SetLogLevel(level);
      }
    } else if (arg == "--log-json") {
      qfix::SetLogJson(true);
    } else if (arg == "--name") {
      pre_name = next() ? argv[i] : "";
    } else if (arg == "--table") {
      pre_table = next() ? argv[i] : "T";
    } else if (arg == "--d0") {
      pre_d0_path = next() ? argv[i] : "";
    } else if (arg == "--log") {
      pre_log_path = next() ? argv[i] : "";
    } else if (arg == "--test-endpoints") {
      options.enable_test_endpoints = true;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      usage_error = true;
    }
  }
  if (usage_error) {
    PrintUsage(argv[0]);
    return 2;
  }

  qfix::service::DiagnosisServer server(options);

  if (!pre_d0_path.empty() || !pre_log_path.empty()) {
    if (pre_d0_path.empty() || pre_log_path.empty() || pre_name.empty()) {
      std::fprintf(stderr,
                   "error: preregistration needs --name, --d0 and --log\n");
      return 2;
    }
    std::string d0_text, log_sql;
    if (!ReadFile(pre_d0_path, &d0_text)) {
      std::fprintf(stderr, "error: cannot read %s\n", pre_d0_path.c_str());
      return 1;
    }
    if (!ReadFile(pre_log_path, &log_sql)) {
      std::fprintf(stderr, "error: cannot read %s\n", pre_log_path.c_str());
      return 1;
    }
    auto ds = server.registry().Register(pre_name, d0_text, pre_table,
                                         log_sql);
    if (!ds.ok()) {
      std::fprintf(stderr, "error registering dataset: %s\n",
                   ds.status().ToString().c_str());
      return 1;
    }
    qfix::LogEvent(qfix::LogLevel::kInfo, "dataset_registered")
        .Str("name", (*ds)->name)
        .Uint("tuples", (*ds)->d0().NumSlots())
        .Uint("queries", (*ds)->log.size());
  }

  qfix::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // Note: deliberately NO SIGPIPE handler — every server/client send
  // path uses MSG_NOSIGNAL, so a write to a reset peer returns EPIPE
  // instead of raising a process-killing signal. Library embedders get
  // the same safety without touching process-wide signal state.

  std::printf("qfix_serve listening on http://%s:%d\n",
              options.host.c_str(), server.port());
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  qfix::LogEvent(qfix::LogLevel::kInfo, "shutdown_signal");
  server.Stop();
  return 0;
}
