// Helpers shared by the command-line tools (qfix_cli, qfix_serve).
#ifndef QFIX_TOOLS_TOOL_COMMON_H_
#define QFIX_TOOLS_TOOL_COMMON_H_

#include <fstream>
#include <sstream>
#include <string>

namespace qfix {
namespace tools {

/// Slurps `path` into `*out`; false when the file cannot be opened.
inline bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace tools
}  // namespace qfix

#endif  // QFIX_TOOLS_TOOL_COMMON_H_
