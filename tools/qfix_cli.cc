// qfix — command-line diagnosis tool.
//
// Usage:
//   qfix --d0 <initial.csv> --log <queries.sql> --complaints <c.csv>
//        [--table NAME] [--k N] [--basic] [--alternatives N]
//        [--time-limit SECONDS] [--denoise]
//
// Reads the trusted initial state (CSV with a header of attribute
// names), the executed query log (';'-separated SQL), and the complaint
// set (CSV: tid,alive,<attrs...>). Prints the diagnosis — which query
// was corrupted and its repaired SQL — plus the repair's effect summary.
//
// Example (the paper's Figure 2):
//   qfix --d0 taxes_d0.csv --log taxes.sql --complaints taxes_fix.csv
#include <strings.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "common/strings.h"
#include "io/csv.h"
#include "io/snapshot.h"
#include "milp/lp_format.h"
#include "milp/mps_format.h"
#include "provenance/denoiser.h"
#include "provenance/impact_graph.h"
#include "qfix/encoder.h"
#include "qfix/explain.h"
#include "qfix/qfix.h"
#include "qfix/report_json.h"
#include "relational/executor.h"
#include "service/client.h"
#include "sql/parser.h"
#include "tool_common.h"

namespace {

struct CliOptions {
  std::string d0_path;
  std::string log_path;
  std::string complaints_path;
  std::string table = "T";
  int k = 1;
  bool basic = false;
  bool denoise = false;
  bool report = false;
  bool json = false;
  std::string save_state_path;
  std::string export_lp_path;
  std::string export_mps_path;
  std::string export_graph_path;
  size_t alternatives = 0;
  double time_limit = 120.0;
  int jobs = 1;
  /// Client mode: drive a running qfix_serve at this URL instead of
  /// diagnosing in-process.
  std::string client_url;
  /// Client mode: also hold N concurrent connections open at once and
  /// healthz each (the CI serve-smoke's concurrency check).
  int smoke_connections = 0;
  /// Client mode: X-Request-Id to stamp on the diagnose request, so
  /// this run correlates with the server's logs and retained trace.
  std::string request_id;
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --d0 <initial.csv> --log <queries.sql> "
      "--complaints <c.csv>\n"
      "          [--table NAME] [--k N] [--basic] [--alternatives N]\n"
      "          [--time-limit SECONDS] [--jobs N] [--denoise]\n\n"
      "  --d0          trusted initial state (CSV, header = attributes)\n"
      "  --log         executed query log (';'-separated SQL)\n"
      "  --complaints  complaint set (CSV: tid,alive,<attributes>)\n"
      "  --table       table name used in the SQL (default: T)\n"
      "  --k           incremental batch size (default: 1)\n"
      "  --basic       use Algorithm 1 (parameterize all queries)\n"
      "  --alternatives N  also print up to N ranked alternatives\n"
      "  --jobs N      solver worker threads for parallel branch &\n"
      "                bound (default 1 = serial; 0 = one per core)\n"
      "  --denoise     screen out outlier complaints first\n"
      "  --report      print the full diagnosis report (SQL diff,\n"
      "                per-complaint resolution, side effects)\n"
      "  --json        print the diagnosis as a single-line JSON\n"
      "                document (suppresses the text output)\n"
      "  --save-state PATH  write the repaired final state as a\n"
      "                checkpoint snapshot (io/snapshot.h format)\n"
      "  --export-lp PATH   write the diagnosis MILP in CPLEX LP format\n"
      "                (cross-checkable with CPLEX/Gurobi/SCIP/HiGHS)\n"
      "  --export-mps PATH  same encoding in free MPS format\n"
      "  --export-graph PATH  write the log's read-write dependency\n"
      "                graph (Graphviz DOT); repair candidates filled,\n"
      "                diagnosed queries outlined\n"
      "  --client URL  drive a running qfix_serve instead of\n"
      "                diagnosing in-process: with --d0/--log/\n"
      "                --complaints, registers the dataset and posts\n"
      "                the diagnosis (prints the JSON response); alone,\n"
      "                prints /v1/healthz and /v1/stats\n"
      "  --smoke-connections N  (client mode) additionally open N\n"
      "                concurrent connections and healthz each; fails\n"
      "                unless every one answers 200\n"
      "  --request-id ID  (client mode) X-Request-Id to send with the\n"
      "                diagnosis; the server echoes it on the response,\n"
      "                stamps it on every log line about the request,\n"
      "                and keys the retained trace in /v1/debug/traces\n"
      "                by it (default: server-minted)\n\n"
      "  --d0 also accepts a checkpoint snapshot (qfix-snapshot v1).\n",
      argv0);
}

using qfix::tools::ReadFile;

// Client mode: exercise a running qfix_serve end to end — the CI smoke
// and operators poking a deployment share this path. Returns the
// process exit code.
int RunClient(const CliOptions& opt) {
  auto hp = qfix::service::ParseUrl(opt.client_url);
  if (!hp.ok()) {
    std::fprintf(stderr, "error: %s\n", hp.status().ToString().c_str());
    return 2;
  }

  auto health = qfix::service::HttpGet(hp->host, hp->port, "/v1/healthz");
  if (!health.ok()) {
    std::fprintf(stderr, "error reaching server: %s\n",
                 health.status().ToString().c_str());
    return 1;
  }
  if (health->status != 200) {
    std::fprintf(stderr, "healthz returned HTTP %d: %s\n", health->status,
                 health->body.c_str());
    return 1;
  }
  std::printf("healthz: %s\n", health->body.c_str());

  if (opt.smoke_connections > 0) {
    auto smoke = qfix::service::ConcurrentSmoke(hp->host, hp->port,
                                                opt.smoke_connections);
    if (!smoke.ok()) {
      std::fprintf(stderr, "error running connection smoke: %s\n",
                   smoke.status().ToString().c_str());
      return 1;
    }
    std::printf("smoke: %d/%d connections held concurrently, %d healthz OK\n",
                smoke->connected, smoke->requested, smoke->ok);
    if (smoke->ok != smoke->requested) {
      std::fprintf(stderr,
                   "error: %d of %d smoke connections failed\n",
                   smoke->requested - smoke->ok, smoke->requested);
      return 1;
    }
  }

  // Without inputs this is a pure health/stats probe.
  if (opt.d0_path.empty()) {
    auto stats = qfix::service::HttpGet(hp->host, hp->port, "/v1/stats");
    if (stats.ok() && stats->status == 200) {
      std::printf("stats: %s\n", stats->body.c_str());
    }
    return 0;
  }
  if (opt.log_path.empty() || opt.complaints_path.empty()) {
    std::fprintf(stderr,
                 "error: --client with --d0 also needs --log and "
                 "--complaints\n");
    return 2;
  }

  std::string d0_text, log_sql, complaints_csv;
  if (!ReadFile(opt.d0_path, &d0_text) || !ReadFile(opt.log_path, &log_sql) ||
      !ReadFile(opt.complaints_path, &complaints_csv)) {
    std::fprintf(stderr, "error: cannot read input files\n");
    return 1;
  }

  const std::string dataset = opt.table;
  {
    qfix::JsonWriter w;
    w.BeginObject();
    w.Key("name");
    w.String(dataset);
    w.Key("table");
    w.String(opt.table);
    w.Key(d0_text.rfind("qfix-snapshot", 0) == 0 ? "d0_snapshot"
                                                 : "d0_csv");
    w.String(d0_text);
    w.Key("log_sql");
    w.String(log_sql);
    w.EndObject();
    auto reg = qfix::service::HttpPost(hp->host, hp->port, "/v1/datasets",
                                       w.str());
    if (!reg.ok()) {
      std::fprintf(stderr, "error registering dataset: %s\n",
                   reg.status().ToString().c_str());
      return 1;
    }
    if (reg->status != 200) {
      std::fprintf(stderr, "dataset registration failed (HTTP %d): %s\n",
                   reg->status, reg->body.c_str());
      return 1;
    }
    std::printf("registered: %s\n", reg->body.c_str());
  }

  qfix::JsonWriter w;
  w.BeginObject();
  w.Key("dataset");
  w.String(dataset);
  w.Key("complaints_csv");
  w.String(complaints_csv);
  if (opt.basic) {
    w.Key("basic");
    w.Bool(true);
  } else {
    w.Key("k");
    w.Int(opt.k);
  }
  w.Key("time_limit_seconds");
  w.Double(opt.time_limit);
  if (opt.denoise) {
    w.Key("denoise");
    w.Bool(true);
  }
  w.EndObject();
  std::vector<std::pair<std::string, std::string>> headers;
  if (!opt.request_id.empty()) {
    headers.emplace_back("X-Request-Id", opt.request_id);
  }
  auto diag =
      qfix::service::HttpPost(hp->host, hp->port, "/v1/diagnose", w.str(),
                              opt.time_limit + 30.0, headers);
  if (!diag.ok()) {
    std::fprintf(stderr, "error posting diagnosis (request_id=%s): %s\n",
                 opt.request_id.empty() ? "?" : opt.request_id.c_str(),
                 diag.status().ToString().c_str());
    return 1;
  }
  // The server echoes the id it served (ours, sanitized, or minted) —
  // print it so the operator can pull the request's retained trace from
  // /v1/debug/traces and grep the server log without guessing.
  std::string served_id;
  for (const auto& [name, value] : diag->headers) {
    if (strcasecmp(name.c_str(), "X-Request-Id") == 0) served_id = value;
  }
  if (!served_id.empty()) {
    std::fprintf(stderr, "request_id: %s\n", served_id.c_str());
  }
  std::printf("%s\n", diag->body.c_str());
  if (diag->status != 200) {
    std::fprintf(stderr, "diagnosis failed (HTTP %d, request_id=%s)\n",
                 diag->status, served_id.c_str());
    return 1;
  }
  // The response carries "ok":true when the repair succeeded.
  if (diag->body.find("\"ok\":true") == std::string::npos) {
    std::fprintf(stderr, "diagnosis reported no repair (request_id=%s)\n",
                 served_id.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--d0") {
      opt.d0_path = next() ? argv[i] : "";
    } else if (arg == "--log") {
      opt.log_path = next() ? argv[i] : "";
    } else if (arg == "--complaints") {
      opt.complaints_path = next() ? argv[i] : "";
    } else if (arg == "--table") {
      opt.table = next() ? argv[i] : "T";
    } else if (arg == "--k") {
      opt.k = next() ? std::atoi(argv[i]) : 1;
    } else if (arg == "--basic") {
      opt.basic = true;
    } else if (arg == "--denoise") {
      opt.denoise = true;
    } else if (arg == "--report") {
      opt.report = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--save-state") {
      opt.save_state_path = next() ? argv[i] : "";
    } else if (arg == "--export-lp") {
      opt.export_lp_path = next() ? argv[i] : "";
    } else if (arg == "--export-mps") {
      opt.export_mps_path = next() ? argv[i] : "";
    } else if (arg == "--export-graph") {
      opt.export_graph_path = next() ? argv[i] : "";
    } else if (arg == "--alternatives") {
      opt.alternatives = next() ? std::strtoul(argv[i], nullptr, 10) : 0;
    } else if (arg == "--time-limit") {
      opt.time_limit = next() ? std::atof(argv[i]) : 120.0;
    } else if (arg == "--jobs") {
      opt.jobs = next() ? std::atoi(argv[i]) : 1;
    } else if (arg == "--client") {
      opt.client_url = next() ? argv[i] : "";
    } else if (arg == "--request-id") {
      opt.request_id = next() ? argv[i] : "";
    } else if (arg == "--smoke-connections") {
      const char* v = next();
      char* end = nullptr;
      long n = v != nullptr ? std::strtol(v, &end, 10) : -1;
      if (v == nullptr || end == v || *end != '\0' || n < 1 || n > 100000) {
        std::fprintf(stderr,
                     "error: --smoke-connections needs an integer in "
                     "[1, 100000]\n");
        PrintUsage(argv[0]);
        return 2;
      }
      opt.smoke_connections = static_cast<int>(n);
    } else {
      PrintUsage(argv[0]);
      return 2;
    }
  }
  if (!opt.client_url.empty()) {
    return RunClient(opt);
  }
  if (opt.d0_path.empty() || opt.log_path.empty() ||
      opt.complaints_path.empty()) {
    PrintUsage(argv[0]);
    return 2;
  }

  std::string d0_csv, log_sql, complaints_csv;
  if (!ReadFile(opt.d0_path, &d0_csv)) {
    std::fprintf(stderr, "error: cannot read %s\n", opt.d0_path.c_str());
    return 1;
  }
  if (!ReadFile(opt.log_path, &log_sql)) {
    std::fprintf(stderr, "error: cannot read %s\n", opt.log_path.c_str());
    return 1;
  }
  if (!ReadFile(opt.complaints_path, &complaints_csv)) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 opt.complaints_path.c_str());
    return 1;
  }

  auto d0 = d0_csv.rfind("qfix-snapshot", 0) == 0
                ? qfix::io::ReadSnapshot(d0_csv)
                : qfix::io::DatabaseFromCsv(d0_csv, opt.table);
  if (!d0.ok()) {
    std::fprintf(stderr, "error reading d0: %s\n",
                 d0.status().ToString().c_str());
    return 1;
  }
  auto log = qfix::sql::ParseLog(log_sql, d0->schema());
  if (!log.ok()) {
    std::fprintf(stderr, "error parsing log: %s\n",
                 log.status().ToString().c_str());
    return 1;
  }
  auto complaints =
      qfix::io::ComplaintsFromCsv(complaints_csv, d0->schema());
  if (!complaints.ok()) {
    std::fprintf(stderr, "error reading complaints: %s\n",
                 complaints.status().ToString().c_str());
    return 1;
  }

  qfix::relational::Database dirty =
      qfix::relational::ExecuteLog(*log, *d0);

  qfix::provenance::ComplaintSet active = *complaints;
  if (opt.denoise) {
    auto screened = qfix::provenance::DenoiseComplaints(active, dirty);
    if (!screened.dropped.empty()) {
      std::printf("denoiser: dropped %zu outlier complaint(s)\n",
                  screened.dropped.size());
    }
    active = screened.kept;
  }

  if (!opt.json) {
    std::printf("loaded: %zu tuples, %zu queries, %zu complaints\n",
                d0->NumSlots(), log->size(), active.size());
  }

  qfix::qfixcore::QFixOptions options;
  options.time_limit_seconds = opt.time_limit;
  options.milp.jobs = opt.jobs;
  qfix::qfixcore::QFixEngine engine(*log, *d0, dirty, active, options);

  if (!opt.export_lp_path.empty() || !opt.export_mps_path.empty()) {
    // Export the Algorithm 1 encoding (all queries parameterized, all
    // tuples encoded) so an external MILP solver can reproduce the
    // diagnosis from the same constraint system.
    qfix::qfixcore::EncodeRequest enc;
    enc.log = &*log;
    enc.d0 = &*d0;
    enc.dirty_dn = &dirty;
    enc.complaints = &active;
    enc.parameterized.assign(log->size(), true);
    enc.encoded.assign(log->size(), true);
    for (size_t slot = 0; slot < dirty.NumSlots(); ++slot) {
      enc.tuple_slots.push_back(slot);
    }
    auto problem = qfix::qfixcore::Encode(enc);
    if (!problem.ok()) {
      std::fprintf(stderr, "error encoding for --export-lp: %s\n",
                   problem.status().ToString().c_str());
      return 1;
    }
    for (const auto& [path, is_lp] :
         {std::pair<const std::string&, bool>{opt.export_lp_path, true},
          std::pair<const std::string&, bool>{opt.export_mps_path,
                                              false}}) {
      if (path.empty()) continue;
      auto written = is_lp
                         ? qfix::milp::WriteLpFile(problem->model, path)
                         : qfix::milp::WriteMpsFile(problem->model, path);
      if (!written.ok()) {
        std::fprintf(stderr, "error writing model file: %s\n",
                     written.ToString().c_str());
        return 1;
      }
      std::fprintf(opt.json ? stderr : stdout,
                   "MILP encoding (%d vars, %d constraints) written to "
                   "%s\n",
                   problem->model.NumVars(),
                   problem->model.NumConstraints(), path.c_str());
    }
  }

  auto repair = opt.basic ? engine.RepairBasic()
                          : engine.RepairIncremental(opt.k);
  if (!repair.ok()) {
    std::fprintf(stderr, "no diagnosis: %s\n",
                 repair.status().ToString().c_str());
    return 1;
  }

  if (opt.json) {
    std::printf("%s\n", qfix::qfixcore::RepairToJson(*repair, *log, *d0,
                                                     dirty, active)
                            .c_str());
  }

  if (opt.report && !opt.json) {
    std::printf("\n%s", qfix::qfixcore::ExplainRepair(*repair, *log, *d0,
                                                      dirty, active)
                            .c_str());
  }

  if (!opt.json) {
    std::printf("\ndiagnosis (%.1f ms, %d attempt(s)):\n",
                repair->stats.total_seconds * 1e3, repair->stats.attempts);
    if (repair->changed_queries.empty()) {
      std::printf("  the log is consistent with the complaints; no repair "
                  "needed\n");
    }
    for (size_t qi : repair->changed_queries) {
      std::printf("  q%zu executed: %s;\n", qi + 1,
                  (*log)[qi].ToSql(d0->schema()).c_str());
      std::printf("  q%zu intended: %s;\n", qi + 1,
                  repair->log[qi].ToSql(d0->schema()).c_str());
    }
    std::printf("\nrepair distance d(Q,Q*): %s\n",
                qfix::FormatNumber(repair->distance).c_str());
    std::printf("complaints resolved on replay: %s\n",
                repair->verified ? "yes" : "NO");
    if (repair->collateral > 0) {
      std::printf("note: repair also changes %zu non-complaint tuple(s) — "
                  "possible unreported errors\n",
                  repair->collateral);
    }
  }

  if (!opt.export_graph_path.empty()) {
    qfix::provenance::ImpactGraphOptions graph;
    graph.complaint_attrs = active.ComplaintAttributes(dirty);
    graph.highlight = repair->changed_queries;
    std::ofstream dot(opt.export_graph_path);
    if (!dot) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   opt.export_graph_path.c_str());
      return 1;
    }
    dot << qfix::provenance::WriteImpactGraph(*log, d0->schema(), graph);
    std::fprintf(opt.json ? stderr : stdout,
                 "dependency graph written to %s\n",
                 opt.export_graph_path.c_str());
  }

  if (!opt.save_state_path.empty()) {
    qfix::relational::Database repaired_dn =
        qfix::relational::ExecuteLog(repair->log, *d0);
    auto saved =
        qfix::io::WriteSnapshotFile(repaired_dn, opt.save_state_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "error saving state: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::fprintf(opt.json ? stderr : stdout,
                 "repaired final state written to %s\n",
                 opt.save_state_path.c_str());
  }

  if (opt.alternatives > 0 && !opt.json) {
    auto all = engine.DiagnoseAll(opt.alternatives);
    if (all.size() > 1) {
      std::printf("\nranked alternatives:\n");
      for (size_t i = 0; i < all.size(); ++i) {
        const auto& alt = all[i];
        std::printf("  #%zu (distance %s, collateral %zu):", i + 1,
                    qfix::FormatNumber(alt.distance).c_str(),
                    alt.collateral);
        for (size_t qi : alt.changed_queries) {
          std::printf(" q%zu -> %s;", qi + 1,
                      alt.log[qi].ToSql(d0->schema()).c_str());
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
