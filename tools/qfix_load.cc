// qfix_load — multi-tenant load generator for qfix_serve.
//
// Usage:
//   qfix_load --url http://HOST:PORT [--mode closed|open]
//             [--duration S] [--concurrency N] [--rate R]
//             [--tenants N | --tenant NAME=W ...]
//             [--cached-fraction F] [--register-fraction F]
//             [--variants N] [--seed N] [--timeout S] [--json FILE]
//             [--no-setup] [--scrape-metrics] [--probe-traces]
//
// Drives a running qfix_serve with a weighted tenant mix (tenant =
// dataset namespace, e.g. "t1/taxes" belongs to tenant "t1"). Setup
// registers one taxes dataset per tenant, then each tenant's traffic
// mixes cache-friendly repeats, cold complaint variants, and optional
// re-registrations. Two arrival processes (src/harness/loadgen.h):
// closed-loop fixed concurrency, or open-loop fixed rate with
// coordinated-omission-corrected latency.
//
// Prints a human summary, optionally writes the full JSON result
// (bench_results/ compatible) with --json. Exits nonzero when the run
// saw 5xx or transport errors — shed 429s are expected under overload
// and do NOT fail the run — so CI soak lanes can assert "no errors
// besides 429" with the exit code alone.
#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "harness/loadgen.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/json_value.h"

namespace {

using qfix::JsonWriter;
using qfix::harness::LoadOptions;
using qfix::harness::LoadRequestTemplate;
using qfix::harness::LoadResult;
using qfix::harness::LoadTenantSpec;
using qfix::harness::TenantLoadResult;

// The paper's running example, small enough that one diagnosis is a
// few milliseconds of MILP work — load comes from volume, not size.
constexpr const char* kTaxD0Csv =
    "income,owed,pay\n"
    "9500,950,8550\n"
    "90000,22500,67500\n"
    "86000,21500,64500\n"
    "86500,21625,64875\n";

constexpr const char* kTaxLogSql =
    "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;\n"
    "INSERT INTO Taxes VALUES (87000, 21750, 65250);\n"
    "UPDATE Taxes SET pay = income - owed;\n";

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --url http://HOST:PORT [options]\n\n"
      "  --url URL           server base URL (required)\n"
      "  --mode closed|open  arrival process (default closed)\n"
      "  --duration S        run length in seconds (default 10)\n"
      "  --concurrency N     worker connections (default 4)\n"
      "  --rate R            open loop: offered requests/second over\n"
      "                      all tenants (default 100)\n"
      "  --tenants N         N equal-weight tenants t1..tN (default 3)\n"
      "  --tenant NAME=W     add tenant NAME with traffic weight W\n"
      "                      (repeatable; overrides --tenants)\n"
      "  --cached-fraction F share of each tenant's requests that\n"
      "                      repeat one complaint set (cache hits\n"
      "                      after the first solve; default 0.5)\n"
      "  --register-fraction F\n"
      "                      share that re-registers the tenant's\n"
      "                      dataset (invalidates its cache; default 0)\n"
      "  --append-mix F      share that appends queries to the tenant's\n"
      "                      dataset (POST /v1/datasets/{name}/append;\n"
      "                      the appended queries write only 'income',\n"
      "                      so cached owed/pay reports survive;\n"
      "                      default 0)\n"
      "  --append-rows N     queries carried per append request\n"
      "                      (default 4)\n"
      "  --variants N        distinct cold complaint sets per tenant\n"
      "                      (default 8)\n"
      "  --seed N            RNG seed (default 1)\n"
      "  --timeout S         per-request timeout (default 30)\n"
      "  --json FILE         write the full JSON result to FILE\n"
      "  --no-setup          skip dataset registration\n"
      "  --scrape-metrics    GET /metrics before and after the run,\n"
      "                      lint both payloads (failures fail the run),\n"
      "                      and print the nonzero counter deltas\n"
      "  --probe-traces      after the run, post one deliberately slow\n"
      "                      basic-mode diagnose (own padded dataset)\n"
      "                      with a known X-Request-Id and assert its\n"
      "                      trace — with solver-internal child spans —\n"
      "                      is retained in /v1/debug/traces. Needs a\n"
      "                      server running with --slow-request-ms set\n"
      "                      so slow requests are tail-retained\n",
      argv0);
}

bool ParseIntFlag(const char* text, long min_value, long max_value,
                  long* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  if (value < min_value || value > max_value) return false;
  *out = value;
  return true;
}

bool ParseDoubleFlag(const char* text, double min_value, double max_value,
                     double* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(text, &end);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  if (value < min_value || value > max_value) return false;
  *out = value;
  return true;
}

std::string RegisterBody(const std::string& dataset) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String(dataset);
  w.Key("table");
  w.String("Taxes");
  w.Key("d0_csv");
  w.String(kTaxD0Csv);
  w.Key("log_sql");
  w.String(kTaxLogSql);
  w.EndObject();
  return w.str();
}

/// `rows` appended queries that write only `income` (a no-op touch of
/// rows that don't exist): the diagnose mix complains about owed/pay,
/// so these appends can never affect a cached report's complaint
/// window — prefix-aware cache keys keep every report servable.
std::string AppendBody(long rows) {
  std::string sql;
  for (long r = 0; r < rows; ++r) {
    sql += "UPDATE Taxes SET income = income + 0 WHERE income < 0;\n";
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("log_sql");
  w.String(sql);
  w.EndObject();
  return w.str();
}

std::string DiagnoseBody(const std::string& dataset, double pay) {
  JsonWriter w;
  w.BeginObject();
  w.Key("dataset");
  w.String(dataset);
  w.Key("complaints_csv");
  char rows[128];
  std::snprintf(rows, sizeof(rows),
                "tid,alive,income,owed,pay\n2,1,86000,21500,%.0f\n", pay);
  w.String(rows);
  w.EndObject();
  return w.str();
}

void PrintLatency(const char* label, const qfix::harness::LatencyHistogram& h) {
  std::printf("  %-10s n=%llu p50=%.2fms p90=%.2fms p99=%.2fms "
              "p99.9=%.2fms max=%.2fms\n",
              label, static_cast<unsigned long long>(h.count()),
              h.Percentile(0.50) * 1e3, h.Percentile(0.90) * 1e3,
              h.Percentile(0.99) * 1e3, h.Percentile(0.999) * 1e3,
              h.max() * 1e3);
}

/// One --scrape-metrics snapshot: GET /metrics, lint the payload with
/// the in-repo linter, and flatten every counter sample — plus each
/// histogram's `_count` series, which is a counter in all but name —
/// into "name{label=\"v\",...}" -> value. False (with a message) on any
/// transport, lint, or parse failure.
bool ScrapeCounters(const std::string& host, int port, double timeout,
                    std::map<std::string, double>* out) {
  auto resp = qfix::service::HttpGet(host, port, "/metrics", timeout);
  if (!resp.ok() || resp->status != 200) {
    std::fprintf(stderr, "error: GET /metrics failed: %s\n",
                 resp.ok() ? resp->body.c_str()
                           : resp.status().ToString().c_str());
    return false;
  }
  qfix::Status lint = qfix::obs::LintExposition(resp->body);
  if (!lint.ok()) {
    std::fprintf(stderr, "error: /metrics failed lint: %s\n",
                 lint.ToString().c_str());
    return false;
  }
  auto parsed = qfix::obs::ParseExposition(resp->body);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: /metrics did not parse: %s\n",
                 parsed.status().ToString().c_str());
    return false;
  }
  for (const auto& sample : parsed->samples) {
    bool keep = false;
    auto type = parsed->types.find(sample.name);
    if (type != parsed->types.end()) {
      keep = type->second == "counter";
    } else if (sample.name.size() > 6 &&
               sample.name.compare(sample.name.size() - 6, 6, "_count") ==
                   0) {
      auto base =
          parsed->types.find(sample.name.substr(0, sample.name.size() - 6));
      keep = base != parsed->types.end() && base->second == "histogram";
    }
    if (!keep) continue;
    std::string key = sample.name;
    if (!sample.labels.empty()) {
      key += "{";
      for (size_t i = 0; i < sample.labels.size(); ++i) {
        if (i > 0) key += ",";
        key += sample.labels[i].first + "=\"" + sample.labels[i].second +
               "\"";
      }
      key += "}";
    }
    (*out)[key] = sample.value;
  }
  return true;
}

/// --probe-traces: one deliberately slow diagnose stamped with a known
/// X-Request-Id, then assert the flight recorder retained its trace
/// with at least one solver-internal child span. Exercises the whole
/// observability chain the way an operator debugging a slow request
/// would: id in -> same id out of GET /v1/debug/traces.
///
/// The probe registers its own dataset whose query log is padded with
/// no-op updates and diagnoses it in basic mode (Algorithm 1
/// parameterizes EVERY logged query, so the padding is real MILP work
/// the incremental slicer would otherwise discard). Calibration: ~10
/// padding queries put a cold solve in the tens of milliseconds —
/// decisively past any sane --slow-request-ms, guaranteeing tail
/// retention — while the time_limit_seconds guard keeps a slow CI
/// machine bounded (a limit-hit solve still answers 200 with solver
/// spans, so the probe still passes).
bool ProbeTraces(const LoadOptions& options, const std::string& tenant) {
  const std::string probe_id = "qfix-load-slow-probe";
  const std::string dataset = tenant + "/trace-probe";
  // The padding no-ops go BEFORE the final `pay = income - owed`
  // update: upstream of the complained-about attributes their
  // parameterizations can all interact with the repair, which is what
  // makes the MILP genuinely hard. Appended after it they are dead
  // code the solver's presolve prunes in microseconds.
  std::string log =
      "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;\n"
      "INSERT INTO Taxes VALUES (87000, 21750, 65250);\n";
  for (int i = 0; i < 8; ++i) {
    log += "UPDATE Taxes SET income = income + 0 WHERE income < 0;\n";
  }
  log += "UPDATE Taxes SET pay = income - owed;\n";
  JsonWriter reg_body;
  reg_body.BeginObject();
  reg_body.Key("name");
  reg_body.String(dataset);
  reg_body.Key("table");
  reg_body.String("Taxes");
  reg_body.Key("d0_csv");
  reg_body.String(kTaxD0Csv);
  reg_body.Key("log_sql");
  reg_body.String(log);
  reg_body.EndObject();
  auto reg = qfix::service::HttpPost(options.host, options.port,
                                     "/v1/datasets", reg_body.str(),
                                     options.request_timeout_seconds);
  if (!reg.ok() || reg->status != 200) {
    std::fprintf(stderr, "error: trace probe registration failed: %s\n",
                 reg.ok() ? reg->body.c_str()
                          : reg.status().ToString().c_str());
    return false;
  }
  JsonWriter diag_body;
  diag_body.BeginObject();
  diag_body.Key("dataset");
  diag_body.String(dataset);
  diag_body.Key("basic");
  diag_body.Bool(true);
  diag_body.Key("time_limit_seconds");
  diag_body.Double(10.0);
  diag_body.Key("complaints_csv");
  // The complaint target varies per invocation so a repeat probe
  // against a long-lived server misses the report cache and solves
  // cold again (a cache hit is fast, and fast+ok is only sampled).
  char complaint[128];
  std::snprintf(complaint, sizeof(complaint),
                "tid,alive,income,owed,pay\n2,1,86000,21500,%ld\n",
                50000 + static_cast<long>(std::time(nullptr) % 40000));
  diag_body.String(complaint);
  diag_body.EndObject();
  auto diag = qfix::service::HttpPost(
      options.host, options.port, "/v1/diagnose", diag_body.str(),
      std::max(options.request_timeout_seconds, 30.0),
      {{"X-Request-Id", probe_id}});
  if (!diag.ok() || diag->status != 200) {
    std::fprintf(stderr, "error: trace probe diagnose failed: %s\n",
                 diag.ok() ? diag->body.c_str()
                           : diag.status().ToString().c_str());
    return false;
  }
  auto traces = qfix::service::HttpGet(options.host, options.port,
                                       "/v1/debug/traces?limit=1024",
                                       options.request_timeout_seconds);
  if (!traces.ok() || traces->status != 200) {
    std::fprintf(stderr, "error: GET /v1/debug/traces failed: %s\n",
                 traces.ok() ? traces->body.c_str()
                             : traces.status().ToString().c_str());
    return false;
  }
  auto doc = qfix::service::ParseJson(traces->body);
  if (!doc.ok()) {
    std::fprintf(stderr, "error: /v1/debug/traces did not parse: %s\n",
                 doc.status().ToString().c_str());
    return false;
  }
  const qfix::service::JsonValue* list = doc->Find("traces");
  if (list == nullptr || !list->is_array()) {
    std::fprintf(stderr, "error: /v1/debug/traces has no traces array\n");
    return false;
  }
  for (const qfix::service::JsonValue& trace : list->AsArray()) {
    const qfix::service::JsonValue* id = trace.Find("request_id");
    if (id == nullptr || !id->is_string() || id->AsString() != probe_id) {
      continue;
    }
    const qfix::service::JsonValue* spans = trace.Find("spans");
    size_t solver_children = 0;
    if (spans != nullptr && spans->is_array()) {
      for (const qfix::service::JsonValue& span : spans->AsArray()) {
        const qfix::service::JsonValue* phase = span.Find("phase");
        if (phase == nullptr || !phase->is_string()) continue;
        const std::string& p = phase->AsString();
        if (p == "presolve" || p == "root_lp" || p == "node_batch" ||
            p == "incumbent_update") {
          ++solver_children;
        }
      }
    }
    if (solver_children == 0) {
      std::fprintf(stderr,
                   "error: probe trace %s retained without solver-internal "
                   "spans\n",
                   probe_id.c_str());
      return false;
    }
    std::printf("trace probe: %s retained with %zu solver-internal "
                "span(s)\n",
                probe_id.c_str(), solver_children);
    return true;
  }
  std::fprintf(stderr,
               "error: probe request %s not found in /v1/debug/traces — is "
               "the server running with --slow-request-ms set (and a "
               "nonzero --trace-buffer-bytes)?\n",
               probe_id.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string url;
  std::string json_path;
  LoadOptions options;
  options.duration_seconds = 10.0;
  options.concurrency = 4;
  options.rate_per_second = 100.0;
  long tenant_count = 3;
  std::vector<std::pair<std::string, int>> named_tenants;
  double cached_fraction = 0.5;
  double register_fraction = 0.0;
  double append_mix = 0.0;
  long append_rows = 4;
  long variants = 8;
  bool setup = true;
  bool scrape_metrics = false;
  bool probe_traces = false;

  bool usage_error = false;
  for (int i = 1; i < argc && !usage_error; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto int_flag = [&](long min_value, long max_value, long* out) {
      if (!ParseIntFlag(next(), min_value, max_value, out)) {
        std::fprintf(stderr, "error: %s needs an integer in [%ld, %ld]\n",
                     arg.c_str(), min_value, max_value);
        usage_error = true;
      }
    };
    auto double_flag = [&](double min_value, double max_value, double* out) {
      if (!ParseDoubleFlag(next(), min_value, max_value, out)) {
        std::fprintf(stderr, "error: %s needs a number in [%g, %g]\n",
                     arg.c_str(), min_value, max_value);
        usage_error = true;
      }
    };
    long n = 0;
    if (arg == "--url") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "error: --url needs a value\n");
        usage_error = true;
      } else {
        url = v;
      }
    } else if (arg == "--mode") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "closed") == 0) {
        options.mode = LoadOptions::Mode::kClosed;
      } else if (v != nullptr && std::strcmp(v, "open") == 0) {
        options.mode = LoadOptions::Mode::kOpen;
      } else {
        std::fprintf(stderr, "error: --mode needs 'closed' or 'open'\n");
        usage_error = true;
      }
    } else if (arg == "--duration") {
      double_flag(0.1, 86400.0, &options.duration_seconds);
    } else if (arg == "--concurrency") {
      int_flag(1, 10000, &n);
      options.concurrency = static_cast<int>(n);
    } else if (arg == "--rate") {
      double_flag(0.001, 1e7, &options.rate_per_second);
    } else if (arg == "--tenants") {
      int_flag(1, 10000, &tenant_count);
    } else if (arg == "--tenant") {
      const char* v = next();
      const char* eq = v != nullptr ? std::strchr(v, '=') : nullptr;
      long weight = 0;
      if (eq == nullptr || eq == v ||
          !ParseIntFlag(eq + 1, 1, 1000000, &weight)) {
        std::fprintf(stderr, "error: --tenant needs NAME=W with W >= 1\n");
        usage_error = true;
      } else {
        named_tenants.emplace_back(std::string(v, eq),
                                   static_cast<int>(weight));
      }
    } else if (arg == "--cached-fraction") {
      double_flag(0.0, 1.0, &cached_fraction);
    } else if (arg == "--register-fraction") {
      double_flag(0.0, 1.0, &register_fraction);
    } else if (arg == "--append-mix") {
      double_flag(0.0, 1.0, &append_mix);
    } else if (arg == "--append-rows") {
      int_flag(1, 4096, &append_rows);
    } else if (arg == "--variants") {
      int_flag(1, 1024, &variants);
    } else if (arg == "--seed") {
      int_flag(0, LONG_MAX, &n);
      options.seed = static_cast<uint64_t>(n);
    } else if (arg == "--timeout") {
      double_flag(0.001, 86400.0, &options.request_timeout_seconds);
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "error: --json needs a path\n");
        usage_error = true;
      } else {
        json_path = v;
      }
    } else if (arg == "--no-setup") {
      setup = false;
    } else if (arg == "--scrape-metrics") {
      scrape_metrics = true;
    } else if (arg == "--probe-traces") {
      probe_traces = true;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      usage_error = true;
    }
  }
  if (url.empty() && !usage_error) {
    std::fprintf(stderr, "error: --url is required\n");
    usage_error = true;
  }
  if (usage_error) {
    PrintUsage(argv[0]);
    return 2;
  }

  auto host_port = qfix::service::ParseUrl(url);
  if (!host_port.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 host_port.status().ToString().c_str());
    return 2;
  }
  options.host = host_port->host;
  options.port = host_port->port;

  if (named_tenants.empty()) {
    for (long t = 1; t <= tenant_count; ++t) {
      named_tenants.emplace_back("t" + std::to_string(t), 1);
    }
  }

  // Integer mix weights out of 100 request mass per tenant.
  const int w_register =
      static_cast<int>(register_fraction * 100.0 + 0.5);
  const int w_append = static_cast<int>(append_mix * 100.0 + 0.5);
  int w_cached = static_cast<int>(cached_fraction * 100.0 + 0.5);
  int w_cold = 100 - w_register - w_append - w_cached;
  if (w_cold < 0) {
    w_cold = 0;
    w_cached = std::max(0, 100 - w_register - w_append);
  }
  const int w_cold_each =
      w_cold > 0
          ? std::max(1, static_cast<int>(w_cold / static_cast<int>(variants)))
          : 0;

  for (const auto& [name, weight] : named_tenants) {
    const std::string dataset = name + "/taxes";
    if (setup) {
      auto reg = qfix::service::HttpPost(
          options.host, options.port, "/v1/datasets", RegisterBody(dataset),
          options.request_timeout_seconds);
      if (!reg.ok() || reg->status != 200) {
        std::fprintf(stderr, "error: registering %s failed: %s\n",
                     dataset.c_str(),
                     reg.ok() ? reg->body.c_str()
                              : reg.status().ToString().c_str());
        return 1;
      }
    }
    LoadTenantSpec spec;
    spec.name = name;
    spec.weight = weight;
    auto add_request = [&spec](std::string path, std::string body, int w) {
      LoadRequestTemplate t;
      t.path = std::move(path);
      t.body = std::move(body);
      t.weight = w;
      spec.requests.push_back(std::move(t));
    };
    if (w_cached > 0) {
      // The repeated complaint set: a cache hit after the first solve.
      add_request("/v1/diagnose", DiagnoseBody(dataset, 64500.0), w_cached);
    }
    for (long v = 0; v < variants && w_cold_each > 0; ++v) {
      // Distinct target values -> distinct cache keys -> solver work.
      add_request("/v1/diagnose", DiagnoseBody(dataset, 64000.0 + v),
                  w_cold_each);
    }
    if (w_append > 0) {
      add_request("/v1/datasets/" + dataset + "/append",
                  AppendBody(append_rows), w_append);
    }
    if (w_register > 0) {
      add_request("/v1/datasets", RegisterBody(dataset), w_register);
    }
    if (spec.requests.empty()) {
      add_request("/v1/diagnose", DiagnoseBody(dataset, 64500.0), 1);
    }
    options.tenants.push_back(std::move(spec));
  }

  // Baseline scrape AFTER setup so registration traffic doesn't muddy
  // the run's deltas.
  std::map<std::string, double> metrics_before;
  if (scrape_metrics &&
      !ScrapeCounters(options.host, options.port,
                      options.request_timeout_seconds, &metrics_before)) {
    return 1;
  }

  LoadResult result = qfix::harness::RunLoad(options);

  std::printf("qfix_load: mode=%s duration=%.1fs attempted=%llu "
              "achieved=%.1f rps ok=%.1f rps\n",
              result.mode == LoadOptions::Mode::kOpen ? "open" : "closed",
              result.duration_seconds,
              static_cast<unsigned long long>(result.attempted),
              result.achieved_rps, result.ok_rps);
  if (result.mode == LoadOptions::Mode::kOpen) {
    std::printf("  offered=%.1f rps behind_schedule=%llu\n",
                result.offered_rate,
                static_cast<unsigned long long>(result.behind_schedule));
  }
  std::printf("  classes: 2xx=%llu 429=%llu 4xx=%llu 5xx=%llu "
              "transport=%llu\n",
              static_cast<unsigned long long>(result.classes.ok_2xx),
              static_cast<unsigned long long>(result.classes.shed_429),
              static_cast<unsigned long long>(result.classes.err_4xx),
              static_cast<unsigned long long>(result.classes.err_5xx),
              static_cast<unsigned long long>(result.classes.transport));
  PrintLatency("overall", result.latency);
  for (const TenantLoadResult& t : result.tenants) {
    std::printf("tenant %s: attempted=%llu 2xx=%llu 429=%llu\n",
                t.name.c_str(),
                static_cast<unsigned long long>(t.attempted),
                static_cast<unsigned long long>(t.classes.ok_2xx),
                static_cast<unsigned long long>(t.classes.shed_429));
    PrintLatency(t.name.c_str(), t.latency);
  }

  if (probe_traces && !ProbeTraces(options, named_tenants.front().first)) {
    std::fprintf(stderr, "qfix_load: FAILED (trace probe)\n");
    return 1;
  }

  if (scrape_metrics) {
    std::map<std::string, double> metrics_after;
    if (!ScrapeCounters(options.host, options.port,
                        options.request_timeout_seconds, &metrics_after)) {
      return 1;
    }
    std::printf("metrics deltas (nonzero counters over the run):\n");
    for (const auto& [series, after] : metrics_after) {
      auto before = metrics_before.find(series);
      double delta = after - (before != metrics_before.end() ? before->second
                                                             : 0.0);
      if (delta == 0.0) continue;
      std::printf("  %-60s +%.0f\n", series.c_str(), delta);
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << qfix::harness::LoadResultToJson(result) << "\n";
  }

  // Overload sheds (429) are healthy; anything else is not.
  if (result.classes.err_5xx > 0 || result.classes.transport > 0) {
    std::fprintf(stderr, "qfix_load: FAILED (5xx or transport errors)\n");
    return 1;
  }
  return 0;
}
