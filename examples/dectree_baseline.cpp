// DecTree baseline (Appendix A) vs QFix on the paper's running example.
//
// The learning-based baseline re-learns a corrupted UPDATE's WHERE
// clause with a decision tree and re-fits its SET parameters by least
// squares. It only handles a single corrupted UPDATE — this example
// repairs Figure 2's transposed-digit predicate (85700 instead of
// 87500) with both systems and checks that each replay matches the
// ground truth.
//
// Build & run:  ./build/examples/dectree_baseline
#include <cstdio>

#include "dectree/dectree_repair.h"
#include "provenance/complaint.h"
#include "qfix/qfix.h"
#include "relational/executor.h"

using qfix::dectree::RepairWithDecTree;
using qfix::provenance::ComplaintSet;
using qfix::provenance::DiffStates;
using qfix::qfixcore::QFixEngine;
using qfix::relational::CmpOp;
using qfix::relational::Database;
using qfix::relational::ExecuteLog;
using qfix::relational::LinearExpr;
using qfix::relational::Predicate;
using qfix::relational::Query;
using qfix::relational::QueryLog;
using qfix::relational::Schema;

namespace {

Query BracketUpdate(double threshold) {
  return Query::Update(
      "Taxes", {{1, LinearExpr::AttrScaled(0, 0.3)}},
      Predicate::Atom({LinearExpr::Attr(0), CmpOp::kGe, threshold}));
}

}  // namespace

int main() {
  Schema schema({"income", "owed", "pay"});
  Database d0(schema, "Taxes");
  d0.AddTuple({9500, 950, 8550});
  d0.AddTuple({90000, 22500, 67500});
  d0.AddTuple({86000, 21500, 64500});
  d0.AddTuple({86500, 21625, 64875});
  d0.AddTuple({88000, 22000, 66000});
  d0.AddTuple({87600, 21900, 65700});

  Query corrupted = BracketUpdate(85700);  // transposed digit
  Query intended = BracketUpdate(87500);

  Database dirty = ExecuteLog(QueryLog{corrupted}, d0);
  Database truth = ExecuteLog(QueryLog{intended}, d0);

  std::printf("Corrupted query: %s;\n", corrupted.ToSql(schema).c_str());
  std::printf("Intended query:  %s;\n\n", intended.ToSql(schema).c_str());

  // ---- DecTree: learn WHERE from (pre, truth-post), re-fit SET. ----
  auto dt = RepairWithDecTree(corrupted, d0, truth);
  if (!dt.ok()) {
    std::fprintf(stderr, "dectree repair failed: %s\n",
                 dt.status().ToString().c_str());
    return 1;
  }
  Database dt_replay = ExecuteLog(QueryLog{dt->repaired}, d0);
  bool dt_matches = DiffStates(dt_replay, truth).empty();
  std::printf("DecTree repair (%zu tree nodes):\n  %s;\n  replay matches truth: %s\n\n",
              dt->tree_nodes, dt->repaired.ToSql(schema).c_str(),
              dt_matches ? "yes" : "NO");

  // ---- QFix: MILP diagnosis from the complaint set. ----
  ComplaintSet complaints = DiffStates(dirty, truth);
  QFixEngine engine(QueryLog{corrupted}, d0, dirty, complaints);
  auto repair = engine.RepairIncremental(/*k=*/1);
  if (!repair.ok()) {
    std::fprintf(stderr, "qfix repair failed: %s\n",
                 repair.status().ToString().c_str());
    return 1;
  }
  Database qf_replay = ExecuteLog(repair->log, d0);
  bool qf_matches = DiffStates(qf_replay, truth).empty();
  std::printf("QFix repair (%d MILP vars, %d constraints):\n  %s;\n  replay matches truth: %s\n",
              repair->stats.num_vars, repair->stats.num_constraints,
              repair->log[0].ToSql(schema).c_str(),
              qf_matches ? "yes" : "NO");

  return (dt_matches && qf_matches) ? 0 : 1;
}
