// Tax-bracket adjustment at scale (paper Examples 2 and 3).
//
// An accounting firm maintains a Taxes table for a few hundred customers.
// A bracket change ("30% above $87,500") is implemented with a corrupted
// threshold, later queries obscure the mistake, and only a handful of
// customers complain. QFix diagnoses the corrupted query from the
// incomplete complaint set, and the repair surfaces the unreported
// errors too.
//
// Build & run:  ./build/examples/tax_brackets
#include <cstdio>

#include "common/random.h"
#include "harness/metrics.h"
#include "provenance/complaint.h"
#include "qfix/qfix.h"
#include "relational/executor.h"
#include "sql/parser.h"

using qfix::Rng;
using qfix::provenance::ComplaintSet;
using qfix::provenance::DiffStates;
using qfix::provenance::SampleComplaints;
using qfix::qfixcore::QFixEngine;
using qfix::relational::Database;
using qfix::relational::ExecuteLog;
using qfix::relational::Schema;

int main() {
  Rng rng(2024);
  Schema schema({"income", "owed", "pay"});
  Database d0(schema, "Taxes");
  const int kCustomers = 400;
  for (int i = 0; i < kCustomers; ++i) {
    // Incomes between $20k and $150k; owed starts at last year's 25%.
    double income = 1000.0 * rng.UniformInt(20, 150);
    double owed = income * 0.25;
    d0.AddTuple({income, owed, income - owed});
  }

  // The log: mixed routine maintenance around the corrupted bracket
  // update. The intended threshold was 87500; a digit transposition
  // wrote 85700.
  const char* kDirtySql =
      "UPDATE Taxes SET owed = income * 0.25 WHERE income >= 20000;"
      "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;"
      "INSERT INTO Taxes VALUES (91000, 27300, 63700);"
      "INSERT INTO Taxes VALUES (43000, 10750, 32250);"
      "UPDATE Taxes SET pay = income - owed;";
  const char* kCleanSql =
      "UPDATE Taxes SET owed = income * 0.25 WHERE income >= 20000;"
      "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 87500;"
      "INSERT INTO Taxes VALUES (91000, 27300, 63700);"
      "INSERT INTO Taxes VALUES (43000, 10750, 32250);"
      "UPDATE Taxes SET pay = income - owed;";
  auto dirty_log = qfix::sql::ParseLog(kDirtySql, schema);
  auto clean_log = qfix::sql::ParseLog(kCleanSql, schema);
  if (!dirty_log.ok() || !clean_log.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }

  Database dirty = ExecuteLog(*dirty_log, d0);
  Database truth = ExecuteLog(*clean_log, d0);
  ComplaintSet all_errors = DiffStates(dirty, truth);
  std::printf("Customers with wrong tax records: %zu\n", all_errors.size());

  // Only ~30%% of affected customers actually call in (incomplete
  // complaint set, paper §6).
  ComplaintSet reported = SampleComplaints(all_errors, 0.3, rng);
  std::printf("Complaints filed with customer service: %zu\n",
              reported.size());

  QFixEngine engine(*dirty_log, d0, dirty, reported);
  auto repair = engine.RepairIncremental(1);
  if (!repair.ok()) {
    std::fprintf(stderr, "diagnosis failed: %s\n",
                 repair.status().ToString().c_str());
    return 1;
  }

  std::printf("\nDiagnosis in %.1f ms:\n",
              repair->stats.total_seconds * 1e3);
  for (size_t qi : repair->changed_queries) {
    std::printf("  corrupted: %s;\n",
                (*dirty_log)[qi].ToSql(schema).c_str());
    std::printf("  repaired:  %s;\n", repair->log[qi].ToSql(schema).c_str());
  }

  // How many of the *unreported* errors did the repair also fix?
  auto acc = qfix::harness::EvaluateRepair(repair->log, d0, dirty, truth);
  std::printf(
      "\nRepair scorecard: %zu/%zu wrong records healed "
      "(precision %.2f, recall %.2f) from only %zu reports.\n",
      acc.resolved_complaints, acc.true_complaints, acc.precision,
      acc.recall, reported.size());
  return 0;
}
