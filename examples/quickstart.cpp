// Quickstart: the paper's running example (Figure 2) end to end.
//
// A tax-bracket adjustment was implemented with a digit-transposed
// predicate (85700 instead of 87500). Two customers complain about their
// owed amounts. QFix diagnoses the corrupted query from the log and the
// complaints, and emits the repaired SQL.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "provenance/complaint.h"
#include "qfix/qfix.h"
#include "relational/executor.h"
#include "sql/parser.h"

using qfix::qfixcore::QFixEngine;
using qfix::relational::Database;
using qfix::relational::Schema;

int main() {
  // ---- 1. The table as of the last trusted checkpoint (D0). ----
  Schema schema({"income", "owed", "pay"});
  Database d0(schema, "Taxes");
  d0.AddTuple({9500, 950, 8550});      // t1
  d0.AddTuple({90000, 22500, 67500});  // t2
  d0.AddTuple({86000, 21500, 64500});  // t3
  d0.AddTuple({86500, 21625, 64875});  // t4

  // ---- 2. The query log, as executed (q1 has the transposed digit). ----
  auto log = qfix::sql::ParseLog(
      "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;"
      "INSERT INTO Taxes VALUES (87000, 21750, 65250);"
      "UPDATE Taxes SET pay = income - owed;",
      schema);
  if (!log.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 log.status().ToString().c_str());
    return 1;
  }

  // ---- 3. The observed (dirty) final state D_n = Q(D0). ----
  Database dirty = qfix::relational::ExecuteLog(*log, d0);
  std::printf("Current Taxes table (dirty):\n");
  for (const auto& t : dirty.tuples()) {
    std::printf("  t%lld: income=%6.0f owed=%6.0f pay=%6.0f\n",
                static_cast<long long>(t.tid + 1), t.values[0],
                t.values[1], t.values[2]);
  }

  // ---- 4. Customer complaints: t3 and t4 report their correct rows. ----
  qfix::provenance::ComplaintSet complaints;
  complaints.Add({2, true, {86000, 21500, 64500}});
  complaints.Add({3, true, {86500, 21625, 64875}});
  std::printf("\n%zu complaints filed (t3, t4 owed/pay are wrong).\n",
              complaints.size());

  // ---- 5. Diagnose: which query caused this, and how to fix it? ----
  QFixEngine engine(*log, d0, dirty, complaints);
  auto repair = engine.RepairIncremental(/*k=*/1);
  if (!repair.ok()) {
    std::fprintf(stderr, "diagnosis failed: %s\n",
                 repair.status().ToString().c_str());
    return 1;
  }

  std::printf("\nDiagnosis (%.1f ms, %d MILP vars, %d constraints):\n",
              repair->stats.total_seconds * 1e3, repair->stats.num_vars,
              repair->stats.num_constraints);
  for (size_t qi : repair->changed_queries) {
    std::printf("  q%zu was corrupted. Repaired statement:\n    %s;\n",
                qi + 1, repair->log[qi].ToSql(schema).c_str());
  }

  // ---- 6. The repair resolves the complaints on replay. ----
  Database fixed = qfix::relational::ExecuteLog(repair->log, d0);
  std::printf("\nTaxes table after replaying the repaired log:\n");
  for (const auto& t : fixed.tuples()) {
    std::printf("  t%lld: income=%6.0f owed=%6.0f pay=%6.0f\n",
                static_cast<long long>(t.tid + 1), t.values[0],
                t.values[1], t.values[2]);
  }
  std::printf("\nComplaints resolved: %s\n",
              repair->verified ? "yes" : "NO");
  return repair->verified ? 0 : 1;
}
