// Wireless corporate-discount scenario (paper Example 1).
//
// A wireless provider applies per-company discount policies to customer
// accounts. A policy update for one corporate group is executed with the
// wrong group id, silently discounting the wrong customers. Two affected
// customers call in; QFix traces the billing errors back to the faulty
// policy query and proposes the fix, which also identifies every other
// account the mistake touched.
//
// Build & run:  ./build/examples/wireless_discounts
#include <cstdio>

#include "common/random.h"
#include "harness/metrics.h"
#include "provenance/complaint.h"
#include "qfix/qfix.h"
#include "relational/executor.h"
#include "sql/parser.h"

using qfix::Rng;
using qfix::provenance::Complaint;
using qfix::provenance::ComplaintSet;
using qfix::provenance::DiffStates;
using qfix::qfixcore::QFixEngine;
using qfix::relational::Database;
using qfix::relational::ExecuteLog;
using qfix::relational::Schema;

int main() {
  Rng rng(77);
  // ACCOUNTS(customer_id, company, base_charge, discount, billed)
  Schema schema({"customer_id", "company", "base_charge", "discount",
                 "billed"});
  Database d0(schema, "Accounts");
  const int kCustomers = 600;
  for (int i = 0; i < kCustomers; ++i) {
    double company = static_cast<double>(rng.UniformInt(1, 12));
    double base = static_cast<double>(rng.UniformInt(40, 180));
    d0.AddTuple({static_cast<double>(i), company, base, 0.0, base});
  }

  // Policy run: flat discounts per corporate agreement, then billing.
  // The $25 incentive was meant for company 7, but the operations script
  // was run with company 2 — a classic copy-paste policy mistake.
  const char* kDirtySql =
      "UPDATE Accounts SET discount = 10 WHERE company = 4;"
      "UPDATE Accounts SET discount = 25 WHERE company = 2;"
      "UPDATE Accounts SET discount = 15 WHERE company = 11;"
      "UPDATE Accounts SET billed = base_charge - discount;";
  const char* kCleanSql =
      "UPDATE Accounts SET discount = 10 WHERE company = 4;"
      "UPDATE Accounts SET discount = 25 WHERE company = 7;"
      "UPDATE Accounts SET discount = 15 WHERE company = 11;"
      "UPDATE Accounts SET billed = base_charge - discount;";
  auto dirty_log = qfix::sql::ParseLog(kDirtySql, schema);
  auto clean_log = qfix::sql::ParseLog(kCleanSql, schema);
  if (!dirty_log.ok() || !clean_log.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }

  Database dirty = ExecuteLog(*dirty_log, d0);
  Database truth = ExecuteLog(*clean_log, d0);
  ComplaintSet all_errors = DiffStates(dirty, truth);
  std::printf("Accounts billed incorrectly: %zu\n", all_errors.size());

  // The call center logs just two complaints: one company-7 employee who
  // expected the discount, one company-2 employee surprised by theirs.
  ComplaintSet reported;
  const Complaint* first = nullptr;
  const Complaint* second = nullptr;
  for (const Complaint& c : all_errors.complaints()) {
    double company = truth.slot(static_cast<size_t>(c.tid)).values[1];
    if (first == nullptr && company == 7.0) first = &c;
    if (second == nullptr && company == 2.0) second = &c;
  }
  if (first != nullptr) reported.Add(*first);
  if (second != nullptr) reported.Add(*second);
  std::printf("Complaints reaching the diagnosis team: %zu\n",
              reported.size());

  QFixEngine engine(*dirty_log, d0, dirty, reported);
  auto repair = engine.RepairIncremental(1);
  if (!repair.ok()) {
    std::fprintf(stderr, "diagnosis failed: %s\n",
                 repair.status().ToString().c_str());
    return 1;
  }

  std::printf("\nDiagnosis in %.1f ms:\n",
              repair->stats.total_seconds * 1e3);
  for (size_t qi : repair->changed_queries) {
    std::printf("  policy query q%zu ran with the wrong constants:\n",
                qi + 1);
    std::printf("    executed: %s;\n",
                (*dirty_log)[qi].ToSql(schema).c_str());
    std::printf("    intended: %s;\n",
                repair->log[qi].ToSql(schema).c_str());
  }

  auto acc = qfix::harness::EvaluateRepair(repair->log, d0, dirty, truth);
  std::printf(
      "\nReplaying the repaired policy heals %zu/%zu wrong bills from "
      "just %zu complaints (precision %.2f, recall %.2f).\n",
      acc.resolved_complaints, acc.true_complaints, reported.size(),
      acc.precision, acc.recall);
  return 0;
}
