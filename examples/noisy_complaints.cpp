// Noisy, incomplete complaint sets: the call-center reality.
//
// Example 1 of the paper: customers of a wireless provider report
// billing errors one at a time; most affected customers never call.
// This example shows the two QFix mechanisms for imperfect inputs:
//
//  * incompleteness — only 3 of 4 affected accounts complain; tuple
//    slicing (§5.1) still generalizes the repair to every affected
//    account, and the report lists the silent one as a likely
//    unreported error;
//  * false positives — one caller reports a *correct* balance as wrong;
//    the optional denoiser (Fig. 1, §6) screens it out before the MILP
//    would have been rendered infeasible.
//
// Build & run:  ./build/examples/noisy_complaints
#include <cstdio>

#include "provenance/complaint.h"
#include "provenance/denoiser.h"
#include "qfix/explain.h"
#include "qfix/qfix.h"
#include "relational/executor.h"
#include "sql/parser.h"

using qfix::provenance::Complaint;
using qfix::provenance::ComplaintSet;
using qfix::provenance::DenoiseComplaints;
using qfix::provenance::DiffStates;
using qfix::qfixcore::QFixEngine;
using qfix::relational::Database;
using qfix::relational::ExecuteLog;
using qfix::relational::Schema;

int main() {
  // Accounts table: monthly charge and discounted balance.
  Schema schema({"charge", "discount", "balance"});
  Database d0(schema, "Accounts");
  for (int i = 0; i < 12; ++i) {
    double charge = 40 + 5 * i;  // 40, 45, ... 95
    d0.AddTuple({charge, 0, charge});
  }

  // The corporate discount should apply to charges >= 70 (6 accounts);
  // the executed query applied it to >= 50 (10 accounts) — too many.
  auto dirty_log = qfix::sql::ParseLog(
      "UPDATE Accounts SET discount = 15 WHERE charge >= 50;"
      "UPDATE Accounts SET balance = charge - discount;",
      schema);
  auto clean_log = qfix::sql::ParseLog(
      "UPDATE Accounts SET discount = 15 WHERE charge >= 70;"
      "UPDATE Accounts SET balance = charge - discount;",
      schema);
  if (!dirty_log.ok() || !clean_log.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }
  Database dirty = ExecuteLog(*dirty_log, d0);
  Database truth = ExecuteLog(*clean_log, d0);
  ComplaintSet all_errors = DiffStates(dirty, truth);
  std::printf("accounts actually affected by the bad query: %zu\n",
              all_errors.size());

  // ---- Incompleteness: only three affected customers call in. The
  // account with charge 50 (tid 2) never complains; because it sits
  // inside the span of the reported errors' repair, the minimal
  // threshold fix covers it anyway (Fig. 5a). ----
  ComplaintSet reported;
  reported.Add(*all_errors.Find(3));  // charge 55
  reported.Add(*all_errors.Find(4));  // charge 60
  reported.Add(*all_errors.Find(5));  // charge 65

  // ---- A false positive: tid 11 (charge 95) reports its correct
  // balance as "wrong", asking for an absurd target. ----
  Complaint fake;
  fake.tid = 11;
  fake.target_alive = true;
  fake.target_values = {95, 15, 0};  // balance can't be 0
  reported.Add(fake);

  std::printf("complaints received: %zu (3 real, 1 bogus)\n\n",
              reported.size());

  // ---- Step 1: denoise. The bogus complaint's requested change is an
  // outlier relative to the other complaints' deltas. ----
  auto screened = DenoiseComplaints(reported, dirty);
  std::printf("denoiser kept %zu complaint(s), dropped %zu\n",
              screened.kept.size(), screened.dropped.size());
  for (const Complaint& c : screened.dropped.complaints()) {
    std::printf("  dropped tid %lld (requested change inconsistent with "
                "the complaint set)\n",
                static_cast<long long>(c.tid));
  }

  // ---- Step 2: diagnose from the surviving complaints. ----
  QFixEngine engine(*dirty_log, d0, dirty, screened.kept);
  auto repair = engine.RepairIncremental(1);
  if (!repair.ok()) {
    std::fprintf(stderr, "no diagnosis: %s\n",
                 repair.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%s", qfix::qfixcore::ExplainRepair(
                          *repair, *dirty_log, d0, dirty, screened.kept)
                          .c_str());

  // ---- Step 3: the repair generalizes beyond the reported errors. ----
  Database fixed = ExecuteLog(repair->log, d0);
  size_t recovered = 0;
  for (const Complaint& c : all_errors.complaints()) {
    const auto& t = fixed.slot(static_cast<size_t>(c.tid));
    bool match = t.alive == c.target_alive;
    for (size_t a = 0; match && a < schema.num_attrs(); ++a) {
      match = t.values[a] == c.target_values[a];
    }
    recovered += match ? 1 : 0;
  }
  std::printf("\nerrors fixed by replaying the repaired log: %zu of %zu "
              "(only %zu were ever reported)\n",
              recovered, all_errors.size(), screened.kept.size());
  return recovered == all_errors.size() ? 0 : 1;
}
