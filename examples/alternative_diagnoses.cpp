// Alternative diagnoses: when several queries could explain the errors.
//
// A complaint set rarely pins down a unique culprit: any query in the
// causal read-write chain to the complaint attributes can, with the
// right constant change, produce the observed targets. The paper hands
// the administrator one minimum-distance repair (§3, optimal diagnosis);
// QFixEngine::DiagnoseAll (an extension) enumerates every single-query
// diagnosis that resolves the complaints, ranked zero-collateral first
// and then by parameter distance, so a human can pick the explanation
// that matches what actually happened.
//
// Scenario: a payroll table sets a base bonus (q1), tops it up (q2),
// and recomputes totals (q3). The observed bonus of 900 should have
// been 400 — which is explained equally well by "q1 set 300 instead of
// -200" and by "q2 added 600 instead of 100". QFix surfaces both
// candidates with the evidence for each; only the administrator (or the
// application's change history) can tell which edit actually went
// wrong.
//
// Build & run:  ./build/examples/alternative_diagnoses
#include <cstdio>

#include "provenance/complaint.h"
#include "qfix/explain.h"
#include "qfix/qfix.h"
#include "relational/executor.h"
#include "sql/diff.h"
#include "sql/parser.h"

using qfix::provenance::ComplaintSet;
using qfix::provenance::DiffStates;
using qfix::qfixcore::QFixEngine;
using qfix::relational::Database;
using qfix::relational::ExecuteLog;
using qfix::relational::Schema;

int main() {
  Schema schema({"base", "bonus", "total"});
  Database d0(schema, "Payroll");
  d0.AddTuple({4000, 0, 4000});
  d0.AddTuple({5200, 0, 5200});
  d0.AddTuple({6100, 0, 6100});
  d0.AddTuple({8000, 0, 8000});

  // Executed log: q2's top-up was mistyped as 600 instead of 100, so
  // qualifying accounts show bonus 900 instead of 400.
  const char* executed_sql =
      "UPDATE Payroll SET bonus = 300 WHERE base >= 5000;"
      "UPDATE Payroll SET bonus = bonus + 600 WHERE base >= 5000;"
      "UPDATE Payroll SET total = base + bonus;";
  const char* intended_sql =
      "UPDATE Payroll SET bonus = 300 WHERE base >= 5000;"
      "UPDATE Payroll SET bonus = bonus + 100 WHERE base >= 5000;"
      "UPDATE Payroll SET total = base + bonus;";

  auto dirty_log = qfix::sql::ParseLog(executed_sql, schema);
  auto clean_log = qfix::sql::ParseLog(intended_sql, schema);
  if (!dirty_log.ok() || !clean_log.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }

  Database dirty = ExecuteLog(*dirty_log, d0);
  Database truth = ExecuteLog(*clean_log, d0);
  ComplaintSet complaints = DiffStates(dirty, truth);
  std::printf("complaints reported: %zu\n\n", complaints.size());

  // Constant-only repairs (no coefficient rewrites): the candidates stay
  // in the same shape as the edits an operator would actually have made.
  qfix::qfixcore::QFixOptions options;
  options.encoder.parameterize_coefficients = false;
  QFixEngine engine(*dirty_log, d0, dirty, complaints, options);

  // The ranked list of single-query diagnoses that resolve every
  // complaint. The true culprit (q2) should rank first; any other
  // explanation ranks by how much collateral and constant change it
  // needs.
  auto all = engine.DiagnoseAll(/*max_diagnoses=*/5);
  if (all.empty()) {
    std::fprintf(stderr, "no diagnosis found\n");
    return 1;
  }
  std::printf("=== %zu candidate diagnosis/es ===\n\n", all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    const auto& repair = all[i];
    std::printf("--- candidate #%zu (distance %.6g, collateral %zu) ---\n",
                i + 1, repair.distance, repair.collateral);
    std::printf("%s\n",
                qfix::sql::FormatLogDiff(*dirty_log, repair.log, schema)
                    .c_str());
  }

  // The full report for the top-ranked diagnosis.
  std::printf("=== report for the top-ranked diagnosis ===\n\n%s",
              qfix::qfixcore::ExplainRepair(all[0], *dirty_log, d0, dirty,
                                            complaints)
                  .c_str());

  // Sanity: the real culprit (q2) must be among the candidates, and
  // the genuinely ambiguous alternative (q1) should surface too.
  bool has_q1 = false;
  bool has_q2 = false;
  for (const auto& repair : all) {
    has_q1 |= repair.changed_queries == std::vector<size_t>{0};
    has_q2 |= repair.changed_queries == std::vector<size_t>{1};
  }
  std::printf("\ncandidates include the real culprit q2: %s\n",
              has_q2 ? "yes" : "no");
  std::printf("candidates include the equally-consistent q1: %s\n",
              has_q1 ? "yes" : "no");
  return has_q2 ? 0 : 1;
}
