// OLTP audit: diagnosing a corrupted transaction in a TPC-C-style log
// (paper §7.4).
//
// The ORDER table receives a steady stream of New-Order INSERTs and
// Delivery UPDATEs. One Delivery transaction ran with a wrong order id
// and carrier. A data-quality check flags the discrepancies; QFix finds
// the faulty transaction among 2000 logged queries in milliseconds.
//
// Build & run:  ./build/examples/tpcc_audit
#include <cstdio>

#include "harness/metrics.h"
#include "qfix/qfix.h"
#include "workload/tpcc_like.h"

using qfix::qfixcore::QFixEngine;
using qfix::workload::MakeTpccScenario;
using qfix::workload::TpccSpec;

int main() {
  TpccSpec spec;  // 6000 initial orders, 2000 queries, ~92% INSERT
  const size_t kCorruptAge = 120;  // the bad delivery is 120 queries old
  qfix::workload::Scenario s = MakeTpccScenario(spec, kCorruptAge, 31);

  std::printf("ORDER table: %zu rows; log: %zu queries\n",
              s.d0.NumSlots(), s.dirty_log.size());
  std::printf("Data-quality check flagged %zu suspicious tuples.\n",
              s.complaints.size());
  std::printf("(Injected corruption at log position %zu: %s)\n",
              s.corrupted_queries[0] + 1,
              s.dirty_log[s.corrupted_queries[0]]
                  .ToSql(s.d0.schema())
                  .c_str());

  QFixEngine engine(s.dirty_log, s.d0, s.dirty, s.complaints);
  auto repair = engine.RepairIncremental(1);
  if (!repair.ok()) {
    std::fprintf(stderr, "diagnosis failed: %s\n",
                 repair.status().ToString().c_str());
    return 1;
  }

  std::printf("\nDiagnosis in %.1f ms after probing %d candidate "
              "transactions:\n",
              repair->stats.total_seconds * 1e3, repair->stats.attempts);
  for (size_t qi : repair->changed_queries) {
    std::printf("  q%zu executed: %s;\n", qi + 1,
                s.dirty_log[qi].ToSql(s.d0.schema()).c_str());
    std::printf("  q%zu intended: %s;\n", qi + 1,
                repair->log[qi].ToSql(s.d0.schema()).c_str());
  }

  auto acc =
      qfix::harness::EvaluateRepair(repair->log, s.d0, s.dirty, s.truth);
  std::printf("\nRepair accuracy: precision %.2f, recall %.2f, F1 %.2f\n",
              acc.precision, acc.recall, acc.f1);
  return acc.f1 == 1.0 ? 0 : 1;
}
