// Cross-checking a diagnosis encoding with external solver formats.
//
// The paper solved its encodings with IBM CPLEX; this repository ships
// its own solver. To audit the substitution, the encoding of any
// diagnosis can be exported in the two standard interchange formats
// (CPLEX LP and free MPS), fed to an external solver, and compared.
// This example closes the loop *without* an external solver: it builds
// the Figure 2 encoding, writes both formats, reads them back, solves
// all three models with the built-in branch & bound, and checks that
// every route yields the same optimal distance — the repair objective
// d(Q, Q*).
//
// Build & run:  ./build/examples/solver_crosscheck
#include <cmath>
#include <cstdio>

#include "milp/lp_format.h"
#include "milp/mps_format.h"
#include "milp/solver.h"
#include "provenance/complaint.h"
#include "qfix/encoder.h"
#include "relational/executor.h"
#include "sql/parser.h"

using namespace qfix;

int main() {
  // ---- The Figure 2 scenario. ----
  relational::Schema schema({"income", "owed", "pay"});
  relational::Database d0(schema, "Taxes");
  d0.AddTuple({9500, 950, 8550});
  d0.AddTuple({90000, 22500, 67500});
  d0.AddTuple({86000, 21500, 64500});
  d0.AddTuple({86500, 21625, 64875});

  auto log = sql::ParseLog(
      "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;"
      "INSERT INTO Taxes VALUES (87000, 21750, 65250);"
      "UPDATE Taxes SET pay = income - owed;",
      schema);
  if (!log.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 log.status().ToString().c_str());
    return 1;
  }
  relational::Database dirty = relational::ExecuteLog(*log, d0);

  provenance::ComplaintSet complaints;
  complaints.Add({2, true, {86000, 21500, 64500}});
  complaints.Add({3, true, {86500, 21625, 64875}});

  // ---- Build the Algorithm 1 encoding (every query parameterized). ----
  qfixcore::EncodeRequest request;
  request.log = &*log;
  request.d0 = &d0;
  request.dirty_dn = &dirty;
  request.complaints = &complaints;
  request.parameterized.assign(log->size(), true);
  request.encoded.assign(log->size(), true);
  for (size_t slot = 0; slot < dirty.NumSlots(); ++slot) {
    request.tuple_slots.push_back(slot);
  }
  auto problem = qfixcore::Encode(request);
  if (!problem.ok()) {
    std::fprintf(stderr, "encode error: %s\n",
                 problem.status().ToString().c_str());
    return 1;
  }
  std::printf("encoded Figure 2: %d vars (%d integer), %d constraints\n",
              problem->model.NumVars(), problem->model.NumIntegerVars(),
              problem->model.NumConstraints());

  // ---- Export both interchange formats and read them back. ----
  std::string lp_text = milp::WriteLpFormat(problem->model);
  std::string mps_text = milp::WriteMpsFormat(problem->model, "fig2");
  std::printf("LP export: %zu bytes; MPS export: %zu bytes\n",
              lp_text.size(), mps_text.size());

  auto via_lp = milp::ReadLpFormat(lp_text);
  auto via_mps = milp::ReadMpsFormat(mps_text);
  if (!via_lp.ok() || !via_mps.ok()) {
    std::fprintf(stderr, "re-read failed: %s / %s\n",
                 via_lp.ok() ? "ok" : via_lp.status().ToString().c_str(),
                 via_mps.ok() ? "ok" : via_mps.status().ToString().c_str());
    return 1;
  }

  // ---- Solve all three routes and compare the optima. ----
  milp::MilpOptions options;
  options.time_limit_seconds = 30.0;
  milp::MilpSolver solver(options);

  struct Route {
    const char* name;
    const milp::Model* model;
  };
  const Route routes[] = {
      {"original", &problem->model},
      {"via LP  ", &*via_lp},
      {"via MPS ", &*via_mps},
  };
  double reference = 0.0;
  bool first = true;
  bool agree = true;
  for (const Route& route : routes) {
    milp::MilpSolution solution = solver.Solve(*route.model);
    if (!milp::HasSolution(solution.status)) {
      std::fprintf(stderr, "%s: solve failed (%s)\n", route.name,
                   milp::MilpStatusToString(solution.status));
      return 1;
    }
    std::printf("  %s  optimum d(Q,Q*) = %.6f  (%s, %lld nodes)\n",
                route.name, solution.objective,
                milp::MilpStatusToString(solution.status),
                static_cast<long long>(solution.stats.nodes));
    if (first) {
      reference = solution.objective;
      first = false;
    } else if (std::abs(solution.objective - reference) > 1e-6) {
      agree = false;
    }
  }
  std::printf("\nall three routes agree on the optimal repair distance: "
              "%s\n",
              agree ? "yes" : "NO");
  std::printf("(the same files can be handed to CPLEX/Gurobi/SCIP/HiGHS "
              "with `qfix --export-lp/--export-mps`)\n");
  return agree ? 0 : 1;
}
