#include "qfix/batch.h"

#include <cstring>
#include <memory>
#include <optional>
#include <utility>

#include "common/timer.h"
#include "exec/cancellation.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "qfix/report_json.h"
#include "relational/executor.h"

namespace qfix {
namespace qfixcore {

namespace {

uint64_t HashDouble(uint64_t seed, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return cache::HashCombine(seed, bits);
}

/// Folds every QFixOptions knob that changes the *result* (not just the
/// runtime) of a diagnosis into the cache identity — the slicing
/// switches and every EncoderOptions field, since each alters the model
/// (and with it the repair) a solve can produce. Time limits are
/// deliberately excluded: only proven-optimal solves are published, and
/// an optimum is the same repair whether the budget was 10s or 120s.
uint64_t OptionsFingerprint(const QFixOptions& options) {
  uint64_t bits = 0;
  bits |= options.tuple_slicing ? 1u : 0u;
  bits |= options.query_slicing ? 2u : 0u;
  bits |= options.attribute_slicing ? 4u : 0u;
  bits |= options.refinement ? 8u : 0u;
  bits |= options.single_corruption_filter ? 16u : 0u;
  bits |= options.polish_params ? 32u : 0u;
  bits |= options.encoder.parameterize_coefficients ? 64u : 0u;
  bits |= options.encoder.fold_constants ? 128u : 0u;
  uint64_t h = cache::HashCombine(0, bits);
  h = HashDouble(h, options.refine_distance_weight);
  h = HashDouble(h, options.encoder.value_bound);
  h = HashDouble(h, options.encoder.epsilon);
  h = HashDouble(h, options.encoder.param_distance_weight);
  h = HashDouble(h, options.encoder.soft_match_weight);
  return h;
}

/// Clears leadership on every exit path: a leader that sheds, fails, or
/// throws must wake its waiters rather than strand them.
class LeaderGuard {
 public:
  LeaderGuard(cache::ReportCache* cache, const cache::CacheKey& key)
      : cache_(cache), key_(key) {}
  ~LeaderGuard() {
    if (cache_ != nullptr) cache_->Abandon(key_);
  }
  /// Publishes instead of abandoning.
  void Publish(cache::CachedReport report) {
    cache_->Publish(key_, std::move(report));
    cache_ = nullptr;
  }

 private:
  cache::ReportCache* cache_;
  cache::CacheKey key_;
};

}  // namespace

BatchItem MakeBatchItem(relational::QueryLog log, relational::Database d0,
                        provenance::ComplaintSet complaints,
                        QFixOptions options, int k) {
  BatchItem item;
  item.data = cache::MakeSnapshot(std::move(log), std::move(d0));
  item.complaints = std::move(complaints);
  item.options = options;
  item.k = k;
  return item;
}

BatchItem MakeBatchItem(cache::Snapshot data,
                        provenance::ComplaintSet complaints,
                        QFixOptions options, int k) {
  BatchItem item;
  item.data = std::move(data);
  item.complaints = std::move(complaints);
  item.options = options;
  item.k = k;
  return item;
}

cache::CacheKey ItemCacheKey(const BatchItem& item) {
  cache::CacheKey key;
  key.dataset = item.data ? item.data.name() : std::string();
  // Prefix-aware identity (incremental ingest): instead of the exact
  // snapshot version, key on the signature of the chunk prefix this
  // complaint window can actually observe. Versions derived by append
  // share it unless the appended queries can affect the complaints, so
  // reports survive unrelated appends; for an unchunked dataset it
  // degenerates to a version-unique value (same behavior as before).
  key.version =
      item.data ? cache::WindowSignature(*item.data, item.complaints) : 0;
  uint64_t h = cache::HashComplaints(item.complaints);
  h = cache::HashCombine(h, static_cast<uint64_t>(item.k));
  h = cache::HashCombine(h, OptionsFingerprint(item.options));
  key.request_hash = h;
  return key;
}

std::vector<Result<Repair>> BatchDiagnoser::Run(
    const std::vector<BatchItem>& items) const {
  // Slots are written by exactly one task each and only read after
  // Wait(), so no per-slot locking is needed.
  std::vector<std::optional<Result<Repair>>> slots(items.size());

  Deadline deadline = Deadline::AfterSeconds(options_.time_limit_seconds);
  exec::CancellationSource batch_cancel;

  // Reuse the caller's pool when one was provided; otherwise build a
  // private one for this call (the original owning path).
  std::optional<exec::ThreadPool> owned;
  exec::ThreadPool* pool = options_.pool;
  if (pool == nullptr) {
    owned.emplace(options_.jobs);
    pool = &*owned;
  }
  exec::TaskGroup group(pool, batch_cancel.token());
  for (size_t i = 0; i < items.size(); ++i) {
    group.Spawn([this, &items, &slots, &deadline, &batch_cancel, i] {
      if (options_.cancel.cancelled()) {
        slots[i] = Status::ResourceExhausted("batch cancelled");
        return;
      }
      if (batch_cancel.cancelled() || deadline.Expired()) {
        batch_cancel.Cancel();
        slots[i] = Status::ResourceExhausted("batch time limit reached");
        return;
      }
      const BatchItem& item = items[i];
      if (!item.data) {
        // A default-constructed item never got a snapshot; the by-value
        // path used to degrade to an empty log, but dereferencing a
        // null Dataset would crash.
        slots[i] = Status::InvalidArgument(
            "BatchItem has no snapshot; build it with MakeBatchItem()");
        return;
      }

      // Memoization: a hit skips the solver entirely; a cold miss takes
      // singleflight leadership so concurrent identical items (in this
      // or any other batch) wait for this solve instead of repeating it.
      cache::ReportCache* cache = options_.report_cache;
      std::optional<cache::CacheKey> key;
      std::optional<LeaderGuard> lead;
      if (cache != nullptr && item.data) {
        key = ItemCacheKey(item);
        cache::ReportCache::Outcome found =
            cache->FindOrLead(*key, options_.cancel);
        if (found.value != nullptr && found.value->payload != nullptr) {
          Repair hit = *std::static_pointer_cast<const Repair>(
              found.value->payload);
          hit.from_cache = true;
          slots[i] = std::move(hit);
          return;
        }
        if (found.lead) lead.emplace(cache, *key);
        // A cancelled wait (or a value without payload) degrades to an
        // uncached solve below.
      }

      QFixOptions options = item.options;
      // Clamp the per-item budget to what is left of the batch budget;
      // a disabled (<= 0) per-item limit must not escape the clamp.
      if (options.time_limit_seconds <= 0.0 ||
          deadline.RemainingSeconds() < options.time_limit_seconds) {
        options.time_limit_seconds = deadline.RemainingSeconds();
      }
      QFixEngine engine(item.data, item.complaints, options);
      Result<Repair> result = item.k <= 0 ? engine.RepairBasic()
                                          : engine.RepairIncremental(item.k);
      // Memoize only proven-optimal repairs: a limit-truncated feasible
      // incumbent depends on this request's budget and must not be
      // served to callers with bigger ones (the key deliberately
      // excludes time limits). Failures and truncations abandon, so
      // waiters retry with their own budget.
      if (lead.has_value() && result.ok() && result->stats.optimal) {
        cache::CachedReport report;
        report.report_json =
            RepairToJson(*result, item.data->log, item.data->d0(),
                         item.data->dirty, item.complaints);
        report.payload = std::make_shared<const Repair>(*result);
        lead->Publish(std::move(report));
      }
      slots[i] = std::move(result);
    });
  }
  group.Wait();

  std::vector<Result<Repair>> out;
  out.reserve(items.size());
  for (std::optional<Result<Repair>>& slot : slots) {
    // A task skipped by cancellation never filled its slot.
    out.push_back(slot.has_value()
                      ? std::move(*slot)
                      : Result<Repair>(Status::ResourceExhausted(
                            "batch cancelled before this item started")));
  }
  return out;
}

}  // namespace qfixcore
}  // namespace qfix
