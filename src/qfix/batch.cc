#include "qfix/batch.h"

#include <optional>
#include <utility>

#include "common/timer.h"
#include "exec/cancellation.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "relational/executor.h"

namespace qfix {
namespace qfixcore {

BatchItem MakeBatchItem(relational::QueryLog log, relational::Database d0,
                        provenance::ComplaintSet complaints,
                        QFixOptions options, int k) {
  BatchItem item;
  item.dirty_dn = relational::ExecuteLog(log, d0);
  item.log = std::move(log);
  item.d0 = std::move(d0);
  item.complaints = std::move(complaints);
  item.options = options;
  item.k = k;
  return item;
}

std::vector<Result<Repair>> BatchDiagnoser::Run(
    const std::vector<BatchItem>& items) const {
  // Slots are written by exactly one task each and only read after
  // Wait(), so no per-slot locking is needed.
  std::vector<std::optional<Result<Repair>>> slots(items.size());

  Deadline deadline = Deadline::AfterSeconds(options_.time_limit_seconds);
  exec::CancellationSource batch_cancel;

  // Reuse the caller's pool when one was provided; otherwise build a
  // private one for this call (the original owning path).
  std::optional<exec::ThreadPool> owned;
  exec::ThreadPool* pool = options_.pool;
  if (pool == nullptr) {
    owned.emplace(options_.jobs);
    pool = &*owned;
  }
  exec::TaskGroup group(pool, batch_cancel.token());
  for (size_t i = 0; i < items.size(); ++i) {
    group.Spawn([this, &items, &slots, &deadline, &batch_cancel, i] {
      if (options_.cancel.cancelled()) {
        slots[i] = Status::ResourceExhausted("batch cancelled");
        return;
      }
      if (batch_cancel.cancelled() || deadline.Expired()) {
        batch_cancel.Cancel();
        slots[i] = Status::ResourceExhausted("batch time limit reached");
        return;
      }
      const BatchItem& item = items[i];
      QFixOptions options = item.options;
      // Clamp the per-item budget to what is left of the batch budget;
      // a disabled (<= 0) per-item limit must not escape the clamp.
      if (options.time_limit_seconds <= 0.0 ||
          deadline.RemainingSeconds() < options.time_limit_seconds) {
        options.time_limit_seconds = deadline.RemainingSeconds();
      }
      QFixEngine engine(item.log, item.d0, item.dirty_dn, item.complaints,
                        options);
      slots[i] = item.k <= 0 ? engine.RepairBasic()
                             : engine.RepairIncremental(item.k);
    });
  }
  group.Wait();

  std::vector<Result<Repair>> out;
  out.reserve(items.size());
  for (std::optional<Result<Repair>>& slot : slots) {
    // A task skipped by cancellation never filled its slot.
    out.push_back(slot.has_value()
                      ? std::move(*slot)
                      : Result<Repair>(Status::ResourceExhausted(
                            "batch cancelled before this item started")));
  }
  return out;
}

}  // namespace qfixcore
}  // namespace qfix
