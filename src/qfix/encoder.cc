#include "qfix/encoder.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <tuple>

#include "common/logging.h"
#include "common/strings.h"

namespace qfix {
namespace qfixcore {
namespace {

using milp::LinearTerms;
using milp::Model;
using milp::Sense;
using milp::VarId;
using relational::CmpOp;
using relational::Comparison;
using relational::LinearExpr;
using relational::ParamRef;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::QueryType;
using relational::SetClause;

/// A tuple-cell value: an affine expression over model variables.
/// terms empty => constant. known == false => the cell's value depends on
/// queries that were sliced away; it must not be read by encoded queries
/// and is never constrained ("chain break", see encoder.h).
struct Affine {
  LinearTerms terms;
  double constant = 0.0;
  bool known = true;

  bool IsConst() const { return known && terms.empty(); }
  static Affine Const(double v) { return Affine{{}, v, true}; }
  static Affine Unknown() { return Affine{{}, 0.0, false}; }
};

/// A boolean value: either a folded constant or a binary model variable.
struct BoolVal {
  bool is_const = true;
  bool value = false;
  VarId var = -1;
  bool known = true;

  static BoolVal Const(bool v) { return BoolVal{true, v, -1, true}; }
  static BoolVal Var(VarId v) { return BoolVal{false, false, v, true}; }
  static BoolVal Unknown() { return BoolVal{true, false, -1, false}; }
};

/// Key identifying one parameter variable: (query, kind, index, term).
using ParamKey = std::tuple<size_t, int, size_t, size_t>;

ParamKey MakeKey(size_t query, const ParamRef& ref) {
  return {query, static_cast<int>(ref.kind), ref.index, ref.term};
}

class Encoder {
 public:
  explicit Encoder(const EncodeRequest& req) : req_(req) {}

  Result<EncodedProblem> Run() {
    QFIX_RETURN_IF_ERROR(Validate());
    DeriveConstants();

    std::vector<size_t> slots = req_.tuple_slots;
    std::sort(slots.begin(), slots.end());
    slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
    soft_set_.insert(req_.soft_slots.begin(), req_.soft_slots.end());

    for (size_t slot : slots) {
      QFIX_RETURN_IF_ERROR(EncodeTuple(slot));
    }

    out_.num_encoded_tuples = slots.size();
    for (size_t i = 0; i < req_.log->size(); ++i) {
      if (req_.encoded[i]) ++out_.num_encoded_queries;
    }
    out_.model = std::move(model_);
    return std::move(out_);
  }

 private:
  Status Validate() {
    if (req_.log == nullptr || req_.d0 == nullptr ||
        req_.dirty_dn == nullptr || req_.complaints == nullptr) {
      return Status::InvalidArgument("EncodeRequest has null inputs");
    }
    const size_t n = req_.log->size();
    if (req_.parameterized.size() != n || req_.encoded.size() != n) {
      return Status::InvalidArgument(
          "parameterized/encoded flag vectors must match the log size");
    }
    for (size_t i = 0; i < n; ++i) {
      if (req_.parameterized[i] && !req_.encoded[i]) {
        return Status::InvalidArgument(
            "a parameterized query must also be encoded");
      }
    }
    num_attrs_ = req_.d0->schema().num_attrs();
    if (req_.attr_filter != nullptr &&
        req_.attr_filter->capacity() != num_attrs_) {
      return Status::InvalidArgument("attr_filter capacity mismatch");
    }
    for (size_t slot : req_.tuple_slots) {
      if (slot >= req_.dirty_dn->NumSlots()) {
        return Status::InvalidArgument("tuple slot beyond final state");
      }
    }
    if (req_.prefix_len > 0) {
      if (req_.prefix_state == nullptr) {
        return Status::InvalidArgument("prefix_len set without prefix_state");
      }
      if (req_.prefix_len > n) {
        return Status::InvalidArgument("prefix_len beyond the log");
      }
      if (!req_.options.fold_constants) {
        // Without folding even unparameterized prefix queries emit
        // pinned-variable constraints, so skipping them changes the
        // model; the prefix shortcut is only equivalent under folding.
        return Status::InvalidArgument(
            "prefix reuse requires fold_constants");
      }
      for (size_t i = 0; i < req_.prefix_len; ++i) {
        if (req_.parameterized[i]) {
          return Status::InvalidArgument(
              "prefix covers a parameterized query");
        }
      }
      if (req_.prefix_state->schema().num_attrs() != num_attrs_) {
        return Status::InvalidArgument("prefix state schema mismatch");
      }
      size_t prefix_inserts = 0;
      for (size_t i = 0; i < req_.prefix_len; ++i) {
        if ((*req_.log)[i].type() == relational::QueryType::kInsert) {
          ++prefix_inserts;
        }
      }
      if (req_.prefix_state->NumSlots() !=
          req_.d0->NumSlots() + prefix_inserts) {
        return Status::InvalidArgument(
            "prefix state slot count does not match the prefix replay");
      }
    }
    return Status::OK();
  }

  void DeriveConstants() {
    const QueryLog& log = *req_.log;

    // Insert-tid assignment mirrors the executor: D0 slots first, then
    // one tid per INSERT in log order.
    insert_tid_.assign(log.size(), -1);
    int64_t next_tid = static_cast<int64_t>(req_.d0->NumSlots());
    for (size_t i = 0; i < log.size(); ++i) {
      if (log[i].type() == QueryType::kInsert) insert_tid_[i] = next_tid++;
    }

    for (size_t i = 0; i < log.size(); ++i) {
      if (req_.parameterized[i]) {
        first_param_idx_ = std::min(first_param_idx_, i);
      }
    }

    // Value bound and integrality scan over data, targets, and constants.
    double max_abs = 1.0;
    bool integral = true;
    auto feed = [&max_abs, &integral](double v) {
      max_abs = std::max(max_abs, std::fabs(v));
      integral = integral && (v == std::floor(v));
    };
    for (const auto& t : req_.d0->tuples()) {
      for (double v : t.values) feed(v);
    }
    for (const auto& t : req_.dirty_dn->tuples()) {
      for (double v : t.values) feed(v);
    }
    for (const auto& c : req_.complaints->complaints()) {
      for (double v : c.target_values) feed(v);
    }
    for (const Query& q : log) {
      for (const ParamRef& ref : q.Params()) feed(q.GetParam(ref));
    }

    value_bound_ = req_.options.value_bound > 0.0 ? req_.options.value_bound
                                                  : 4.0 * max_abs + 100.0;
    param_bound_ = 2.0 * max_abs + 100.0;
    epsilon_ = req_.options.epsilon > 0.0 ? req_.options.epsilon
                                          : (integral ? 0.5 : 1e-4);
    out_.value_bound = value_bound_;
    out_.epsilon = epsilon_;
  }

  bool AttrEncodable(size_t attr) const {
    return req_.attr_filter == nullptr || req_.attr_filter->Contains(attr);
  }

  double ActivityBound(const Affine& a) const {
    double b = std::fabs(a.constant);
    for (const auto& t : a.terms) {
      double vb = std::max(std::fabs(model_.lb(t.var)),
                           std::fabs(model_.ub(t.var)));
      b += std::fabs(t.coeff) * vb;
    }
    return b;
  }

  VarId NewValueVar(const char* tag) {
    return model_.AddContinuous(-value_bound_, value_bound_,
                                StringPrintf("%s%d", tag, next_id_++));
  }
  VarId NewBinary(const char* tag) {
    return model_.AddBinary(StringPrintf("%s%d", tag, next_id_++));
  }

  // ---- parameters ----

  VarId ParamVar(size_t query_idx, const ParamRef& ref, double original) {
    ParamKey key = MakeKey(query_idx, ref);
    auto it = param_index_.find(key);
    if (it != param_index_.end()) return out_.params[it->second].var;

    // Bound the parameter around its original value. Multiplicative
    // coefficients are rate-like (0.3, 1.0, ...); giving them the full
    // value domain would blow up the big-M constants (coeff * value) and
    // with them the solver's numerical headroom.
    double span = ref.kind == ParamRef::Kind::kSetCoeff
                      ? 2.0 * std::fabs(original) + 5.0
                      : std::max(param_bound_,
                                 2.0 * std::fabs(original) + 10.0);
    VarId p = model_.AddContinuous(
        original - span, original + span,
        StringPrintf("p_q%zu_%d", query_idx, next_id_++));
    // Split deviation: p = original + d+ - d-, objective |p - original|.
    VarId dp = model_.AddContinuous(0.0, span, "d+");
    VarId dm = model_.AddContinuous(0.0, span, "d-");
    model_.AddConstraint({{p, 1.0}, {dp, -1.0}, {dm, 1.0}}, Sense::kEq,
                         original);
    model_.AddObjectiveTerm(dp, req_.options.param_distance_weight);
    model_.AddObjectiveTerm(dm, req_.options.param_distance_weight);

    param_index_[key] = out_.params.size();
    out_.params.push_back(ParamVarInfo{query_idx, ref, p, original});
    return p;
  }

  bool CoefficientsParameterizable(size_t query_idx) const {
    // Requires concrete inputs: only the earliest parameterized query
    // qualifies, and only when folding is on (raw emission pins even
    // constant cells behind model variables, making coeff * cell
    // bilinear).
    return req_.options.parameterize_coefficients &&
           req_.options.fold_constants && query_idx == first_param_idx_;
  }

  // ---- boolean combinators ----

  BoolVal EncodeNot(BoolVal a) {
    if (!a.known) return BoolVal::Unknown();
    if (a.is_const) return BoolVal::Const(!a.value);
    VarId z = NewBinary("not");
    model_.AddConstraint({{z, 1.0}, {a.var, 1.0}}, Sense::kEq, 1.0);
    return BoolVal::Var(z);
  }

  BoolVal EncodeNary(const std::vector<BoolVal>& children, bool is_and) {
    std::vector<VarId> vars;
    for (const BoolVal& c : children) {
      if (!c.known) return BoolVal::Unknown();
      if (c.is_const) {
        if (is_and && !c.value) return BoolVal::Const(false);
        if (!is_and && c.value) return BoolVal::Const(true);
        continue;  // neutral element
      }
      vars.push_back(c.var);
    }
    if (vars.empty()) return BoolVal::Const(is_and);
    if (vars.size() == 1) return BoolVal::Var(vars[0]);

    VarId z = NewBinary(is_and ? "and" : "or");
    LinearTerms sum{{z, 1.0}};
    for (VarId v : vars) {
      if (is_and) {
        model_.AddConstraint({{z, 1.0}, {v, -1.0}}, Sense::kLe, 0.0);
      } else {
        model_.AddConstraint({{z, 1.0}, {v, -1.0}}, Sense::kGe, 0.0);
      }
      sum.push_back({v, -1.0});
    }
    if (is_and) {
      // z >= sum(v) - (k - 1):  z - sum(v) >= -(k - 1)
      model_.AddConstraint(std::move(sum), Sense::kGe,
                           -(static_cast<double>(vars.size()) - 1.0));
    } else {
      // z <= sum(v):  z - sum(v) <= 0
      model_.AddConstraint(std::move(sum), Sense::kLe, 0.0);
    }
    return BoolVal::Var(z);
  }

  BoolVal EncodeAndPair(const BoolVal& a, const BoolVal& b) {
    return EncodeNary({a, b}, /*is_and=*/true);
  }

  // ---- predicate encoding ----

  /// Indicator binary z for `g <op> 0` where g is symbolic (Eq. 1).
  BoolVal MakeIndicator(const Affine& g, CmpOp op) {
    QFIX_CHECK(g.known);
    const double mg = ActivityBound(g) + epsilon_ + 1.0;
    VarId z = NewBinary("x");

    auto row = [&](double z_coeff, Sense sense, double rhs_shift) {
      LinearTerms terms = g.terms;
      terms.push_back({z, z_coeff});
      model_.AddConstraint(std::move(terms), sense, rhs_shift - g.constant);
    };

    switch (op) {
      case CmpOp::kGe:
        row(-mg, Sense::kGe, -mg);        // z=1 -> g >= 0
        row(-mg, Sense::kLe, -epsilon_);  // z=0 -> g <= -eps
        break;
      case CmpOp::kGt:
        row(-mg, Sense::kGe, epsilon_ - mg);  // z=1 -> g >= eps
        row(-mg, Sense::kLe, 0.0);            // z=0 -> g <= 0
        break;
      case CmpOp::kLe:
        row(mg, Sense::kLe, mg);        // z=1 -> g <= 0
        row(mg, Sense::kGe, epsilon_);  // z=0 -> g >= eps
        break;
      case CmpOp::kLt:
        row(mg, Sense::kLe, mg - epsilon_);  // z=1 -> g <= -eps
        row(mg, Sense::kGe, 0.0);            // z=0 -> g >= 0
        break;
      case CmpOp::kEq: {
        row(mg, Sense::kLe, mg);    // z=1 -> g <= 0
        row(-mg, Sense::kGe, -mg);  // z=1 -> g >= 0
        // z=0 -> (g >= eps or g <= -eps), chosen by side binary d.
        VarId d = NewBinary("side");
        LinearTerms lo = g.terms;
        lo.push_back({z, mg});
        lo.push_back({d, mg});
        model_.AddConstraint(std::move(lo), Sense::kGe,
                             epsilon_ - g.constant);  // z=0,d=0 -> g >= eps
        LinearTerms hi = g.terms;
        hi.push_back({z, -mg});
        hi.push_back({d, -mg});
        model_.AddConstraint(std::move(hi), Sense::kLe,
                             mg - epsilon_ - g.constant);  // z=0,d=1 -> g<=-eps
        break;
      }
      case CmpOp::kNeq: {
        return EncodeNot(MakeIndicator(g, CmpOp::kEq));
      }
    }
    return BoolVal::Var(z);
  }

  Result<BoolVal> EncodeComparison(size_t query_idx, size_t atom_idx,
                                   const Comparison& cmp,
                                   const std::vector<Affine>& cells) {
    // g = lhs(cells) - rhs. Symbolic if any read cell is symbolic or the
    // rhs is parameterized.
    Affine g;
    g.constant = cmp.lhs.constant() - cmp.rhs;
    for (const auto& term : cmp.lhs.terms()) {
      const Affine& cell = cells[term.attr];
      if (!cell.known) {
        return Status::Internal(
            "encoded query reads a cell whose provenance was sliced away");
      }
      g.constant += term.coeff * cell.constant;
      for (const auto& ct : cell.terms) {
        g.terms.push_back({ct.var, term.coeff * ct.coeff});
      }
    }
    if (req_.parameterized[query_idx]) {
      ParamRef ref{ParamRef::Kind::kWhereRhs, atom_idx, 0};
      VarId p = ParamVar(query_idx, ref, cmp.rhs);
      g.terms.push_back({p, -1.0});
      g.constant += cmp.rhs;  // replace the folded constant by the variable
    }

    if (g.terms.empty()) {
      // Fully constant: fold with the executor's exact semantics.
      double v = g.constant;
      bool res = false;
      switch (cmp.op) {
        case CmpOp::kLt:
          res = v < 0;
          break;
        case CmpOp::kLe:
          res = v <= 0;
          break;
        case CmpOp::kGt:
          res = v > 0;
          break;
        case CmpOp::kGe:
          res = v >= 0;
          break;
        case CmpOp::kEq:
          res = v == 0;
          break;
        case CmpOp::kNeq:
          res = v != 0;
          break;
      }
      return BoolVal::Const(res);
    }
    return MakeIndicator(g, cmp.op);
  }

  /// Encodes sigma_q(t), numbering atoms in Query::Params() visit order.
  Result<BoolVal> EncodePredicateTree(size_t query_idx,
                                      const Predicate& pred,
                                      const std::vector<Affine>& cells,
                                      size_t* atom_counter) {
    switch (pred.kind()) {
      case Predicate::Kind::kTrue:
        return BoolVal::Const(true);
      case Predicate::Kind::kComparison: {
        size_t atom = (*atom_counter)++;
        return EncodeComparison(query_idx, atom, pred.comparison(), cells);
      }
      case Predicate::Kind::kAnd:
      case Predicate::Kind::kOr: {
        std::vector<BoolVal> children;
        children.reserve(pred.children().size());
        for (const Predicate& c : pred.children()) {
          QFIX_ASSIGN_OR_RETURN(
              BoolVal b,
              EncodePredicateTree(query_idx, c, cells, atom_counter));
          children.push_back(b);
        }
        return EncodeNary(children,
                          pred.kind() == Predicate::Kind::kAnd);
      }
    }
    return Status::Internal("unknown predicate kind");
  }

  // ---- SET expression evaluation ----

  Result<Affine> EvalSetExpr(size_t query_idx, size_t clause_idx,
                             const SetClause& clause,
                             const std::vector<Affine>& cells) {
    const bool parameterized = req_.parameterized[query_idx];
    Affine out;
    // Additive constant: repairable whenever the query is parameterized.
    if (parameterized) {
      ParamRef ref{ParamRef::Kind::kSetConstant, clause_idx, 0};
      out.terms.push_back(
          {ParamVar(query_idx, ref, clause.expr.constant()), 1.0});
    } else {
      out.constant = clause.expr.constant();
    }
    const auto& terms = clause.expr.terms();
    for (size_t t = 0; t < terms.size(); ++t) {
      const Affine& cell = cells[terms[t].attr];
      if (!cell.known) return Affine::Unknown();
      if (parameterized && CoefficientsParameterizable(query_idx)) {
        // Inputs of the earliest parameterized query are concrete, so
        // coeff * value stays linear with the coefficient as variable.
        QFIX_CHECK(cell.IsConst())
            << "first parameterized query read a symbolic cell";
        ParamRef ref{ParamRef::Kind::kSetCoeff, clause_idx, t};
        VarId cv = ParamVar(query_idx, ref, terms[t].coeff);
        out.terms.push_back({cv, cell.constant});
      } else {
        out.constant += terms[t].coeff * cell.constant;
        for (const auto& ct : cell.terms) {
          out.terms.push_back({ct.var, terms[t].coeff * ct.coeff});
        }
      }
    }
    return out;
  }

  /// Big-M conditional write (Eq. 2-4 with u/v eliminated):
  /// m=1 -> out = updated, m=0 -> out = old.
  Affine ConditionalCell(const BoolVal& m, const Affine& updated,
                         const Affine& old) {
    QFIX_CHECK(!m.is_const) << "ConditionalCell requires a symbolic match";
    if (!updated.known || !old.known) return Affine::Unknown();
    VarId out = NewValueVar("v");
    const double m_new = ActivityBound(updated) + value_bound_ + 1.0;
    const double m_old = ActivityBound(old) + value_bound_ + 1.0;

    auto row = [&](const Affine& side, double big_m, bool active_when_one) {
      // active_when_one: rows binding when m = 1 (new value), relaxed by
      // big_m * (1 - m); otherwise binding when m = 0, relaxed by big_m*m.
      // out - side <= slack  and  out - side >= -slack.
      for (int dir = 0; dir < 2; ++dir) {
        LinearTerms terms{{out, dir == 0 ? 1.0 : -1.0}};
        for (const auto& t : side.terms) {
          terms.push_back({t.var, dir == 0 ? -t.coeff : t.coeff});
        }
        double rhs = dir == 0 ? side.constant : -side.constant;
        if (active_when_one) {
          // slack = big_m * (1 - m): terms + big_m * m <= rhs + big_m
          terms.push_back({m.var, big_m});
          model_.AddConstraint(std::move(terms), Sense::kLe, rhs + big_m);
        } else {
          // slack = big_m * m: terms - big_m * m <= rhs
          terms.push_back({m.var, -big_m});
          model_.AddConstraint(std::move(terms), Sense::kLe, rhs);
        }
      }
    };
    row(updated, m_new, /*active_when_one=*/true);
    row(old, m_old, /*active_when_one=*/false);

    Affine cell;
    cell.terms.push_back({out, 1.0});
    return cell;
  }

  /// Materializes an affine as a single variable when needed (e.g. for
  /// an equality output constraint on a multi-term expression we can
  /// just emit the row directly, so this is rarely required).
  void AddEqualityRow(const Affine& a, double target) {
    LinearTerms terms = a.terms;
    model_.AddConstraint(std::move(terms), Sense::kEq, target - a.constant);
  }

  // ---- per-tuple encoding ----

  /// fold_constants == false: replace every constant-valued encodable
  /// cell by a fresh model variable pinned with an equality row, so the
  /// subsequent query encoding emits its full constraint set instead of
  /// folding (the raw Eq. (1)-(6) emission of the basic algorithm).
  void MaterializeConstants(std::vector<Affine>& cells) {
    for (size_t a = 0; a < num_attrs_; ++a) {
      if (!AttrEncodable(a)) continue;
      if (!cells[a].known || !cells[a].IsConst()) continue;
      double c = cells[a].constant;
      // Widen the box when folding has produced a value outside the
      // derived domain (compounded relative updates can overshoot).
      VarId v = model_.AddContinuous(std::min(-value_bound_, c),
                                     std::max(value_bound_, c),
                                     StringPrintf("cell%d", next_id_++));
      model_.AddConstraint({{v, 1.0}}, Sense::kEq, c);
      cells[a] = Affine{{{v, 1.0}}, 0.0, true};
    }
  }

  Status EncodeTuple(size_t slot) {
    const QueryLog& log = *req_.log;
    const int64_t tid = static_cast<int64_t>(slot);

    std::vector<Affine> cells(num_attrs_, Affine::Const(0.0));
    BoolVal alive = BoolVal::Const(true);
    // With a prefix, the starting point is the replayed prefix state
    // (which already accounts for prefix INSERTs/DELETEs) and the walk
    // begins at the first post-prefix query.
    const relational::Database* init_db =
        req_.prefix_len > 0 ? req_.prefix_state : req_.d0;
    bool exists = tid < static_cast<int64_t>(init_db->NumSlots());
    bool broken = false;  // a sliced-away DELETE made liveness unknown

    if (exists) {
      const relational::Tuple& t0 = init_db->slot(slot);
      alive = BoolVal::Const(t0.alive);
      for (size_t a = 0; a < num_attrs_; ++a) {
        cells[a] = Affine::Const(t0.values[a]);
      }
    }

    for (size_t qi = req_.prefix_len; qi < log.size() && !broken; ++qi) {
      const Query& q = log[qi];
      const bool enc = req_.encoded[qi];

      if (q.type() == QueryType::kInsert) {
        if (insert_tid_[qi] != tid) continue;
        QFIX_CHECK(!exists) << "duplicate insert for tid " << tid;
        exists = true;
        alive = BoolVal::Const(true);
        if (enc && req_.parameterized[qi]) {
          for (size_t a = 0; a < num_attrs_; ++a) {
            QFIX_CHECK(AttrEncodable(a))
                << "parameterized INSERT requires all attributes encoded";
            ParamRef ref{ParamRef::Kind::kInsertValue, a, 0};
            VarId p = ParamVar(qi, ref, q.insert_values()[a]);
            cells[a] = Affine{{{p, 1.0}}, 0.0, true};
          }
        } else {
          for (size_t a = 0; a < num_attrs_; ++a) {
            cells[a] = Affine::Const(q.insert_values()[a]);
          }
        }
        continue;
      }

      if (!exists) continue;

      if (enc) {
        if (!req_.options.fold_constants) MaterializeConstants(cells);
        size_t atom_counter = 0;
        QFIX_ASSIGN_OR_RETURN(
            BoolVal sigma,
            EncodePredicateTree(qi, q.where(), cells, &atom_counter));
        BoolVal match = EncodeAndPair(alive, sigma);

        if (req_.parameterized[qi] && !match.is_const) {
          out_.match_vars.push_back(MatchVarInfo{qi, tid, match.var});
        }

        if (q.type() == QueryType::kDelete) {
          if (match.is_const) {
            if (match.value) alive = BoolVal::Const(false);
          } else if (alive.is_const) {
            QFIX_CHECK(alive.value);  // match symbolic implies alive
            alive = EncodeNot(match);
          } else {
            // alive' = alive - match (0/1 arithmetic of alive AND NOT m).
            VarId next = NewBinary("alive");
            model_.AddConstraint(
                {{next, 1.0}, {alive.var, -1.0}, {match.var, 1.0}},
                Sense::kEq, 0.0);
            alive = BoolVal::Var(next);
          }
          continue;
        }

        // UPDATE: evaluate all SET expressions against pre-update cells.
        if (match.is_const && !match.value) continue;
        std::vector<std::pair<size_t, Affine>> writes;
        for (size_t ci = 0; ci < q.set_clauses().size(); ++ci) {
          const SetClause& sc = q.set_clauses()[ci];
          if (!req_.parameterized[qi] && sc.expr.IsIdentityOf(sc.attr)) {
            continue;  // SET a = a: provably a no-op
          }
          QFIX_CHECK(AttrEncodable(sc.attr))
              << "encoded query writes non-encoded attribute " << sc.attr;
          QFIX_ASSIGN_OR_RETURN(Affine updated,
                                EvalSetExpr(qi, ci, sc, cells));
          if (match.is_const) {
            writes.emplace_back(sc.attr, std::move(updated));
          } else {
            writes.emplace_back(
                sc.attr, ConditionalCell(match, updated, cells[sc.attr]));
          }
        }
        for (auto& [attr, cell] : writes) cells[attr] = std::move(cell);
        continue;
      }

      // Query sliced away: partially evaluate on constant inputs.
      bool sigma_const_known = true;
      bool sigma_value = false;
      if (alive.is_const && !alive.value) {
        sigma_value = false;  // dead tuples match nothing
      } else {
        // Evaluate the predicate only if every read cell is a known
        // constant (and liveness is concrete).
        bool readable = alive.is_const;
        AttrSet reads = q.where().ReadSet(num_attrs_);
        for (size_t a : reads.ToVector()) {
          readable = readable && cells[a].IsConst();
        }
        if (readable) {
          std::vector<double> values(num_attrs_, 0.0);
          for (size_t a : reads.ToVector()) values[a] = cells[a].constant;
          sigma_value = q.where().Eval(values);
        } else {
          sigma_const_known = false;
        }
      }

      if (q.type() == QueryType::kDelete) {
        if (!sigma_const_known) {
          // A sliced DELETE with symbolic inputs severs the whole chain;
          // slicing theory guarantees this tuple carries no complaint
          // attribute, so it is safe to stop constraining it.
          broken = true;
          continue;
        }
        if (sigma_value) alive = BoolVal::Const(false);
        continue;
      }

      // UPDATE (sliced).
      if (!sigma_const_known) {
        for (const SetClause& sc : q.set_clauses()) {
          cells[sc.attr] = Affine::Unknown();
        }
        continue;
      }
      if (!sigma_value) continue;
      std::vector<std::pair<size_t, Affine>> writes;
      for (const SetClause& sc : q.set_clauses()) {
        bool const_inputs = true;
        for (const auto& term : sc.expr.terms()) {
          const_inputs = const_inputs && cells[term.attr].IsConst();
        }
        if (!const_inputs) {
          writes.emplace_back(sc.attr, Affine::Unknown());
          continue;
        }
        double v = sc.expr.constant();
        for (const auto& term : sc.expr.terms()) {
          v += term.coeff * cells[term.attr].constant;
        }
        writes.emplace_back(sc.attr, Affine::Const(v));
      }
      for (auto& [attr, cell] : writes) cells[attr] = std::move(cell);
    }

    return ConstrainOutput(slot, cells, alive, broken);
  }

  // Refinement step (§5.1 step 2): a soft tuple's outputs are tied to the
  // observed dirty state through a per-tuple deviation binary. dev = 0
  // forces the tuple to keep its dirty values; dev = 1 (cost
  // soft_match_weight) frees it. Minimizing deviations implements the
  // paper's "minimize the number of non-complaint tuples affected by the
  // repair" while still permitting unavoidable side effects.
  void ConstrainSoftOutput(size_t slot, const std::vector<Affine>& cells,
                           const BoolVal& alive) {
    const relational::Tuple& dirty = req_.dirty_dn->slot(slot);
    VarId dev = -1;
    auto dev_var = [&]() {
      if (dev < 0) {
        dev = NewBinary("dev");
        model_.AddObjectiveTerm(dev, req_.options.soft_match_weight);
      }
      return dev;
    };

    if (!alive.is_const) {
      if (dirty.alive) {
        // dead(final) => dev: alive + dev >= 1.
        model_.AddConstraint({{alive.var, 1.0}, {dev_var(), 1.0}},
                             Sense::kGe, 1.0);
      } else {
        // alive(final) => dev: alive - dev <= 0.
        model_.AddConstraint({{alive.var, 1.0}, {dev_var(), -1.0}},
                             Sense::kLe, 0.0);
      }
    }
    if (!dirty.alive) return;  // dirty-dead values are not comparable

    for (size_t a = 0; a < num_attrs_; ++a) {
      const Affine& cell = cells[a];
      if (!cell.known || cell.IsConst() || !AttrEncodable(a)) continue;
      double target = dirty.values[a];
      double mg = ActivityBound(cell) + std::fabs(target) + 1.0;
      // |cell - target| <= mg * dev.
      LinearTerms up = cell.terms;
      up.push_back({dev_var(), -mg});
      model_.AddConstraint(std::move(up), Sense::kLe,
                           target - cell.constant);
      LinearTerms down = cell.terms;
      down.push_back({dev_var(), mg});
      model_.AddConstraint(std::move(down), Sense::kGe,
                           target - cell.constant);
    }
  }

  // AssignVals (Alg. 1 line 6): pin final cells to the complaint target
  // (complaint tuples) or the observed dirty state (other hard tuples).
  Status ConstrainOutput(size_t slot, const std::vector<Affine>& cells,
                         const BoolVal& alive, bool tuple_broken) {
    if (soft_set_.count(slot) > 0) {
      if (!tuple_broken && req_.options.soft_match_weight > 0.0) {
        ConstrainSoftOutput(slot, cells, alive);
      }
      return Status::OK();
    }

    const relational::Tuple& dirty = req_.dirty_dn->slot(slot);
    const provenance::Complaint* complaint =
        req_.complaints->Find(static_cast<int64_t>(slot));

    const bool target_alive =
        complaint != nullptr ? complaint->target_alive : dirty.alive;
    const std::vector<double>& target_values =
        complaint != nullptr && complaint->target_alive
            ? complaint->target_values
            : dirty.values;

    if (tuple_broken) {
      if (complaint != nullptr) {
        return Status::Internal(
            "complaint tuple lost to slicing chain break");
      }
      return Status::OK();
    }

    // Liveness.
    if (alive.is_const) {
      if (alive.value != target_alive) {
        if (complaint != nullptr) {
          return Status::Infeasible(StringPrintf(
              "complaint on tuple %zu requires liveness %d but no "
              "parameterized query can change it",
              slot, target_alive ? 1 : 0));
        }
        return Status::Internal(
            "replay mismatch: encoded liveness disagrees with dirty state");
      }
    } else {
      model_.AddConstraint({{alive.var, 1.0}}, Sense::kEq,
                           target_alive ? 1.0 : 0.0);
    }
    if (!target_alive) return Status::OK();  // values of dead tuples free

    for (size_t a = 0; a < num_attrs_; ++a) {
      const Affine& cell = cells[a];
      const bool differs_from_dirty =
          complaint != nullptr &&
          (!dirty.alive || target_values[a] != dirty.values[a]);
      if (!cell.known) {
        if (differs_from_dirty) {
          return Status::Internal(
              "complaint attribute sliced away (filter too narrow)");
        }
        continue;
      }
      if (!AttrEncodable(a)) {
        if (differs_from_dirty) {
          return Status::Internal(
              "attr_filter does not cover a complaint attribute");
        }
        continue;
      }
      if (cell.IsConst()) {
        if (std::fabs(cell.constant - target_values[a]) > 1e-6) {
          if (complaint != nullptr) {
            return Status::Infeasible(StringPrintf(
                "complaint on tuple %zu attr %zu is out of reach of the "
                "parameterized queries",
                slot, a));
          }
          return Status::Internal(StringPrintf(
              "replay mismatch on tuple %zu attr %zu: %f vs %f", slot, a,
              cell.constant, target_values[a]));
        }
        continue;
      }
      AddEqualityRow(cell, target_values[a]);
    }
    return Status::OK();
  }

  const EncodeRequest& req_;
  Model model_;
  EncodedProblem out_;

  double value_bound_ = 0.0;
  double param_bound_ = 0.0;
  double epsilon_ = 0.0;
  size_t num_attrs_ = 0;
  size_t first_param_idx_ = SIZE_MAX;
  std::vector<int64_t> insert_tid_;         // per query: tid created, or -1
  std::map<ParamKey, size_t> param_index_;  // -> index into out_.params
  std::set<size_t> soft_set_;
  int next_id_ = 0;
};

}  // namespace

Result<EncodedProblem> Encode(const EncodeRequest& request) {
  Encoder encoder(request);
  return encoder.Run();
}

relational::QueryLog ConvertQLog(const relational::QueryLog& log,
                                 const EncodedProblem& problem,
                                 const std::vector<double>& solution) {
  relational::QueryLog repaired = log;
  for (const ParamVarInfo& p : problem.params) {
    QFIX_CHECK(p.query_index < repaired.size());
    QFIX_CHECK(static_cast<size_t>(p.var) < solution.size());
    repaired[p.query_index].SetParam(p.ref, solution[p.var]);
  }
  return repaired;
}

}  // namespace qfixcore
}  // namespace qfix
