// QFixEngine: the user-facing diagnosis/repair API.
//
// Wires together the encoder (encoder.h), the slicing optimizations
// (provenance/impact.h) and the MILP solver (milp/solver.h) into the
// paper's algorithms:
//   * RepairBasic        — Algorithm 1: parameterize every (relevant)
//                          query and solve one MILP.
//   * RepairIncremental  — Algorithm 3 (Inc_k): walk the log from most
//                          recent to oldest in batches of k, repairing
//                          one batch at a time.
//   * RepairSingle       — parameterize exactly one query (the "single
//                          query parameterization" series of Fig. 4).
// Tuple slicing's two-step refinement (§5.1) runs automatically after a
// successful sliced solve when non-complaint tuples are caught by the
// repaired WHERE clauses.
#ifndef QFIX_QFIX_QFIX_H_
#define QFIX_QFIX_QFIX_H_

#include <cstdint>
#include <vector>

#include "cache/snapshot.h"
#include "common/result.h"
#include "common/timer.h"
#include "milp/solver.h"
#include "provenance/complaint.h"
#include "provenance/impact.h"
#include "qfix/encoder.h"
#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace ingest {
class EncodingCache;
}  // namespace ingest

namespace qfixcore {

struct QFixOptions {
  /// §5.1: encode only complaint tuples (plus refinement).
  bool tuple_slicing = true;
  /// §5.2: encode only queries whose full impact reaches the complaints.
  bool query_slicing = true;
  /// §5.3: restrict variables/constraints to relevant attributes.
  bool attribute_slicing = true;
  /// §5.1 step 2: shrink over-general repairs with a second small MILP.
  bool refinement = true;
  /// Incremental mode: use the strict candidate filter F(q) ⊇ A(C) when
  /// searching for a single corrupted query (k == 1).
  bool single_corruption_filter = true;
  /// Round repaired constants to the coarsest decimal whose replay
  /// reproduces the same final state (MILP optima sit on ugly epsilon
  /// boundaries; administrators should read "86501", not
  /// "86500.000001"). Replay-equivalence is re-checked per parameter.
  bool polish_params = true;
  /// Wall-clock budget across all attempts (encode + solve + refine).
  double time_limit_seconds = 120.0;
  /// Objective weight of the step-2 parameter-distance tiebreak.
  double refine_distance_weight = 1e-3;

  /// Incremental ingest: when set and the snapshot carries sealed
  /// chunks, attempts reuse the memoized replay of the deepest chunk
  /// prefix below the first parameterized query, re-encoding only the
  /// tail (see ingest/encoding_cache.h). Non-owning, may be null.
  /// Deliberately NOT part of any cache fingerprint: it changes encode
  /// cost, never results.
  ingest::EncodingCache* encoding_cache = nullptr;

  EncoderOptions encoder;
  milp::MilpOptions milp;
};

struct RepairStats {
  double encode_seconds = 0.0;
  double solve_seconds = 0.0;
  double total_seconds = 0.0;
  /// Size of the (last) MILP handed to the solver.
  int32_t num_vars = 0;
  int32_t num_constraints = 0;
  int32_t num_integer_vars = 0;
  int64_t solver_nodes = 0;
  /// Summed simplex iterations across every MILP behind this repair.
  int64_t lp_iterations = 0;
  /// Times any branch & bound worker installed a new best incumbent.
  int64_t incumbent_updates = 0;
  /// Whether the encoder replayed a memoized chunk-prefix state instead
  /// of re-encoding the full log (ingest::EncodingCache hit).
  bool prefix_reused = false;
  /// Batches attempted (incremental mode).
  int attempts = 0;
  /// Whether the step-2 refinement MILP ran.
  bool refined = false;
  /// True when every MILP behind the returned repair was solved to
  /// proven optimality. False means a limit stopped branch & bound at
  /// a feasible incumbent — the repair is valid but possibly not
  /// minimal, so it depends on the budget and MUST NOT be memoized
  /// (the report cache only caches optimal results).
  bool optimal = false;
  size_t encoded_tuples = 0;
  size_t encoded_queries = 0;
};

/// A successful diagnosis: the repaired log Q* and bookkeeping.
struct Repair {
  relational::QueryLog log;
  /// Indexes of queries whose parameters changed — the diagnosis.
  std::vector<size_t> changed_queries;
  /// d(Q, Q*), the Manhattan parameter distance (§4.3).
  double distance = 0.0;
  /// True if replaying Q* reproduces every complaint target exactly.
  bool verified = false;
  /// Non-complaint tuples whose final state the repair changed away from
  /// the observed dirty state. Incremental search prefers repairs with
  /// zero collateral and only falls back to damaged ones when no batch
  /// yields a clean repair.
  size_t collateral = 0;
  /// True when this result was served from a cache::ReportCache instead
  /// of a fresh solve (BatchOptions::report_cache). Not part of the
  /// rendered report — cached reports are byte-identical to cold ones.
  bool from_cache = false;
  RepairStats stats;
};

class QFixEngine {
 public:
  /// Zero-copy constructor: the engine shares the immutable snapshot
  /// for its whole lifetime (no tuple is copied). This is the serving
  /// hot path — see cache/snapshot.h.
  QFixEngine(cache::Snapshot data, provenance::ComplaintSet complaints,
             QFixOptions options = QFixOptions());

  /// By-value adapter (tests, CLI): moves the states into a private
  /// snapshot; the engine is self-contained afterwards.
  QFixEngine(relational::QueryLog log, relational::Database d0,
             relational::Database dirty_dn,
             provenance::ComplaintSet complaints,
             QFixOptions options = QFixOptions());

  /// Algorithm 1. Returns Infeasible if no parameter assignment resolves
  /// the complaints, ResourceExhausted on time/size limits.
  Result<Repair> RepairBasic();

  /// Algorithm 3 (Inc_k): k consecutive queries parameterized per
  /// attempt, most recent first. k >= 1.
  Result<Repair> RepairIncremental(int k);

  /// Parameterizes exactly one query.
  Result<Repair> RepairSingle(size_t query_index);

  /// Extension beyond the paper: enumerates *all* single-query diagnoses
  /// that resolve the complaint set, ranked best-first (zero-collateral
  /// repairs before damaged ones, then by parameter distance). Useful
  /// when an administrator wants alternatives to validate rather than a
  /// single answer (§1: repairs are confirmed by an expert). Stops after
  /// `max_diagnoses` hits or when the time limit expires.
  std::vector<Repair> DiagnoseAll(size_t max_diagnoses = 5);

  /// A(C) for the stored complaint set.
  const AttrSet& complaint_attrs() const { return complaint_attrs_; }
  /// F(q_i) for every query (Alg. 2).
  const std::vector<AttrSet>& full_impacts() const { return full_impacts_; }

 private:
  Result<Repair> SolveAttempt(const std::vector<bool>& parameterized,
                              const Deadline& deadline, RepairStats* stats);
  // Replays `repaired` and collects the non-complaint tuples whose final
  // state it moved away from the observed dirty state — the tuples the
  // refinement step (§5.1 step 2) must win back.
  std::vector<size_t> CollateralSlots(
      const relational::QueryLog& repaired) const;
  std::vector<size_t> ComplaintSlots() const;
  std::vector<size_t> AllSlots() const;
  // Queries eligible for encoding (loose relevance filter).
  std::vector<bool> EncodedSet(const std::vector<bool>& parameterized) const;

  /// Owns (a reference on) the immutable snapshot; the references below
  /// point into it and stay valid for the engine's lifetime.
  cache::Snapshot data_;
  const relational::QueryLog& log_;
  const relational::Database& d0_;
  const relational::Database& dirty_;
  provenance::ComplaintSet complaints_;
  QFixOptions options_;

  size_t num_attrs_ = 0;
  AttrSet complaint_attrs_;
  std::vector<AttrSet> full_impacts_;
  std::vector<bool> relevant_loose_;   // |F ∩ A(C)| > 0
  std::vector<bool> relevant_strict_;  // F ⊇ A(C)
};

}  // namespace qfixcore
}  // namespace qfix

#endif  // QFIX_QFIX_QFIX_H_
