#include "qfix/qfix.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>

#include "common/strings.h"
#include "common/timer.h"
#include "ingest/encoding_cache.h"
#include "obs/trace.h"
#include "relational/executor.h"

namespace qfix {
namespace qfixcore {

using relational::Database;
using relational::Query;
using relational::QueryLog;
using relational::QueryType;

namespace {

/// Rounds repaired parameters that are within `tol` of an integer when
/// the instance is integral (epsilon == 0.5 signals integral data). MILP
/// solutions sit at constraint boundaries, so a repaired threshold of
/// 86499.999999974 must not flip a >= comparison during exact replay.
void SnapIntegralParams(QueryLog& log, const EncodedProblem& problem,
                        double tol = 1e-5) {
  if (problem.epsilon != 0.5) return;
  for (const ParamVarInfo& info : problem.params) {
    Query& q = log[info.query_index];
    double v = q.GetParam(info.ref);
    double r = std::round(v);
    if (v != r && std::fabs(v - r) < tol) q.SetParam(info.ref, r);
  }
}

/// True if the two states agree slot-for-slot (liveness and, for live
/// tuples, values within `tol`).
bool SameFinalState(const Database& a, const Database& b, double tol) {
  if (a.NumSlots() != b.NumSlots()) return false;
  size_t num_attrs = a.schema().num_attrs();
  for (size_t i = 0; i < a.NumSlots(); ++i) {
    if (a.slot(i).alive != b.slot(i).alive) return false;
    if (!a.slot(i).alive) continue;
    for (size_t attr = 0; attr < num_attrs; ++attr) {
      if (std::fabs(a.slot(i).values[attr] - b.slot(i).values[attr]) > tol) {
        return false;
      }
    }
  }
  return true;
}

/// Beautifies repaired constants. MILP optima sit on epsilon boundaries,
/// so a repaired threshold comes back as 86500.000001 (or 86500.5 on
/// integral data) — correct, but not what an administrator should have
/// to read or retype. For every repaired parameter, try progressively
/// finer roundings (integer, then 1..6 decimals; at integer granularity
/// also ceil/floor, which can step off the boundary entirely) and keep
/// the coarsest candidate whose replay reproduces the exact same final
/// state as the unpolished repair.
void PolishRepairedParams(const QueryLog& original, QueryLog& repaired,
                          const Database& d0) {
  const Database want = relational::ExecuteLog(repaired, d0);
  for (size_t i = 0; i < repaired.size(); ++i) {
    for (const relational::ParamRef& ref : repaired[i].Params()) {
      double v = repaired[i].GetParam(ref);
      if (v == original[i].GetParam(ref)) continue;  // not a repair
      if (v == std::round(v)) continue;              // already clean
      bool done = false;
      for (int digits = 0; digits <= 6 && !done; ++digits) {
        double scale = std::pow(10.0, digits);
        double candidates[3] = {std::round(v * scale) / scale,
                                std::ceil(v * scale) / scale,
                                std::floor(v * scale) / scale};
        // Beyond integer granularity, ceil/floor only chase the boundary
        // value itself; the plain rounding is enough.
        int num_candidates = digits == 0 ? 3 : 1;
        for (int c = 0; c < num_candidates && !done; ++c) {
          double cand = candidates[c];
          if (cand == v) continue;
          repaired[i].SetParam(ref, cand);
          if (SameFinalState(relational::ExecuteLog(repaired, d0), want,
                             1e-9)) {
            done = true;  // keep the polished value
          } else {
            repaired[i].SetParam(ref, v);
          }
        }
      }
    }
  }
}

}  // namespace

QFixEngine::QFixEngine(QueryLog log, Database d0, Database dirty_dn,
                       provenance::ComplaintSet complaints,
                       QFixOptions options)
    : QFixEngine(cache::MakeSnapshot(std::move(log), std::move(d0),
                                     std::move(dirty_dn)),
                 std::move(complaints), options) {}

QFixEngine::QFixEngine(cache::Snapshot data,
                       provenance::ComplaintSet complaints,
                       QFixOptions options)
    : data_(std::move(data)),
      log_(data_->log),
      d0_(data_->d0()),
      dirty_(data_->dirty),
      complaints_(std::move(complaints)),
      options_(options) {
  num_attrs_ = d0_.schema().num_attrs();
  complaint_attrs_ = complaints_.ComplaintAttributes(dirty_);
  full_impacts_ = provenance::ComputeFullImpacts(log_, num_attrs_);
  relevant_loose_.assign(log_.size(), false);
  relevant_strict_.assign(log_.size(), false);
  for (size_t i = 0; i < log_.size(); ++i) {
    relevant_loose_[i] = full_impacts_[i].Intersects(complaint_attrs_);
    relevant_strict_[i] = !complaint_attrs_.Empty() &&
                          full_impacts_[i].ContainsAll(complaint_attrs_);
  }
}

std::vector<size_t> QFixEngine::ComplaintSlots() const {
  std::vector<size_t> slots;
  slots.reserve(complaints_.size());
  for (const auto& c : complaints_.complaints()) {
    slots.push_back(static_cast<size_t>(c.tid));
  }
  return slots;
}

std::vector<size_t> QFixEngine::AllSlots() const {
  std::vector<size_t> slots(dirty_.NumSlots());
  for (size_t i = 0; i < slots.size(); ++i) slots[i] = i;
  return slots;
}

std::vector<bool> QFixEngine::EncodedSet(
    const std::vector<bool>& parameterized) const {
  std::vector<bool> encoded(log_.size(), true);
  if (!options_.query_slicing) return encoded;
  for (size_t i = 0; i < log_.size(); ++i) {
    encoded[i] = relevant_loose_[i] || parameterized[i];
  }
  return encoded;
}

Result<Repair> QFixEngine::SolveAttempt(
    const std::vector<bool>& parameterized, const Deadline& deadline,
    RepairStats* stats) {
  // Engine-recorded trace phases: the engine owns the encode/solve
  // split (the server can't see it), so it opens those spans itself and
  // hangs prefix-replay / solver-internal children off them.
  obs::TraceContext* trace = options_.milp.trace;
  const size_t phase_parent = options_.milp.trace_parent_span;

  WallTimer encode_timer;
  size_t encode_span = obs::TraceContext::kDroppedSpan;
  if (trace != nullptr) encode_span = trace->BeginSpan("encode", phase_parent);

  EncodeRequest req;
  req.log = &log_;
  req.d0 = &d0_;
  req.dirty_dn = &dirty_;
  req.complaints = &complaints_;
  req.parameterized = parameterized;
  req.encoded = EncodedSet(parameterized);
  req.tuple_slots =
      options_.tuple_slicing ? ComplaintSlots() : AllSlots();
  req.options = options_.encoder;

  AttrSet filter(num_attrs_);
  if (options_.attribute_slicing) {
    std::vector<size_t> active;
    for (size_t i = 0; i < log_.size(); ++i) {
      if (req.encoded[i]) active.push_back(i);
    }
    filter = provenance::RelevantAttributes(log_, active, complaint_attrs_,
                                            num_attrs_);
    req.attr_filter = &filter;
  }

  // Incremental ingest: start the encoding from the memoized replay of
  // the deepest sealed chunk prefix below the first parameterized query
  // (the encoder validates the soundness conditions — see
  // EncodeRequest::prefix_state). Held via shared_ptr through encode
  // and refinement; the refinement request copies `req`, so the prefix
  // carries over.
  std::shared_ptr<const relational::Database> prefix_state;
  if (options_.encoding_cache != nullptr && !data_->chunks.empty() &&
      options_.encoder.fold_constants) {
    size_t first_param = log_.size();
    for (size_t i = 0; i < log_.size(); ++i) {
      if (parameterized[i]) {
        first_param = i;
        break;
      }
    }
    size_t chunk_index = data_->chunks.size();
    for (size_t ci = 0; ci < data_->chunks.size(); ++ci) {
      if (data_->chunks[ci]->end <= first_param) chunk_index = ci;
    }
    if (chunk_index < data_->chunks.size()) {
      const double replay_start =
          trace != nullptr ? trace->ElapsedSeconds() : 0.0;
      prefix_state = options_.encoding_cache->GetOrCompute(
          data_->name, data_->chunks, chunk_index, d0_, log_);
      if (prefix_state != nullptr) {
        req.prefix_state = prefix_state.get();
        req.prefix_len = data_->chunks[chunk_index]->end;
        stats->prefix_reused = true;
        if (trace != nullptr) {
          trace->AddSpan("prefix_replay", replay_start,
                         trace->ElapsedSeconds(), encode_span);
        }
      }
    }
  }

  Result<EncodedProblem> encoded = Encode(req);
  stats->encode_seconds += encode_timer.ElapsedSeconds();
  if (trace != nullptr) trace->EndSpan(encode_span);
  if (!encoded.ok()) return encoded.status();
  EncodedProblem problem = std::move(*encoded);
  stats->num_vars = problem.model.NumVars();
  stats->num_constraints = problem.model.NumConstraints();
  stats->num_integer_vars = problem.model.NumIntegerVars();
  stats->encoded_tuples = problem.num_encoded_tuples;
  stats->encoded_queries = problem.num_encoded_queries;

  milp::MilpOptions milp_opts = options_.milp;
  milp_opts.time_limit_seconds =
      std::min(deadline.RemainingSeconds(),
               milp_opts.time_limit_seconds > 0
                   ? milp_opts.time_limit_seconds
                   : deadline.RemainingSeconds());
  size_t solve_span = obs::TraceContext::kDroppedSpan;
  if (trace != nullptr) {
    solve_span = trace->BeginSpan("solve", phase_parent);
    // Solver-internal spans (presolve/root_lp/node_batch/...) nest
    // under this attempt's "solve" span, not the caller's parent.
    milp_opts.trace_parent_span = solve_span;
  }
  WallTimer solve_timer;
  milp::MilpSolution sol = milp::MilpSolver(milp_opts).Solve(problem.model);
  stats->solve_seconds += solve_timer.ElapsedSeconds();
  if (trace != nullptr) trace->EndSpan(solve_span);
  stats->solver_nodes += sol.stats.nodes;
  stats->lp_iterations += sol.stats.lp_iterations;
  stats->incumbent_updates += sol.stats.incumbent_updates;

  stats->optimal = sol.status == milp::MilpStatus::kOptimal;
  switch (sol.status) {
    case milp::MilpStatus::kOptimal:
    case milp::MilpStatus::kFeasible:
      break;
    case milp::MilpStatus::kInfeasible:
      return Status::Infeasible(
          "no assignment of the parameterized queries resolves the "
          "complaint set");
    case milp::MilpStatus::kTimeLimit:
      return Status::ResourceExhausted("MILP solve hit the time limit");
    case milp::MilpStatus::kTooLarge:
      return Status::ResourceExhausted(
          "MILP exceeds the solver's size budget");
    case milp::MilpStatus::kUnbounded:
      return Status::Internal("repair MILP unbounded (encoding bug)");
  }

  Repair repair;
  repair.log = ConvertQLog(log_, problem, sol.x);
  SnapIntegralParams(repair.log, problem);
  for (size_t i = 0; i < log_.size(); ++i) {
    auto orig_params = log_[i].Params();
    for (const auto& ref : orig_params) {
      if (std::fabs(log_[i].GetParam(ref) - repair.log[i].GetParam(ref)) >
          1e-7) {
        repair.changed_queries.push_back(i);
        break;
      }
    }
  }
  repair.distance = relational::LogDistance(log_, repair.log);

  // ---- Tuple slicing step 2: refinement (§5.1). ----
  // Iterated because one round can over-shrink or leave stragglers: each
  // round re-derives the NC set from the current repair, encodes the
  // complaints plus a bounded sample of NC with soft outputs, and adopts
  // the solution if it reduces the number of affected non-complaints.
  if (options_.tuple_slicing && options_.refinement &&
      !repair.changed_queries.empty() && !deadline.Expired()) {
    // Small caps keep each refinement MILP dense-simplex friendly; the
    // iteration re-samples, so coverage improves across rounds anyway.
    constexpr size_t kMaxSoftTuples = 24;
    constexpr int kMaxRounds = 3;
    size_t best_collateral = SIZE_MAX;
    for (int round = 0; round < kMaxRounds && !deadline.Expired();
         ++round) {
      std::vector<size_t> nc = CollateralSlots(repair.log);
      if (nc.empty()) break;
      if (nc.size() >= best_collateral) break;  // no progress last round
      best_collateral = nc.size();

      // Deterministic evenly-spaced sample keeps the MILP small while
      // spanning the whole matched region (important for intervals).
      std::vector<size_t> sample;
      if (nc.size() <= kMaxSoftTuples) {
        sample = nc;
      } else {
        double step = static_cast<double>(nc.size()) / kMaxSoftTuples;
        for (size_t i = 0; i < kMaxSoftTuples; ++i) {
          sample.push_back(nc[static_cast<size_t>(i * step)]);
        }
      }

      EncodeRequest refine = req;
      std::vector<size_t> slots = ComplaintSlots();
      slots.insert(slots.end(), sample.begin(), sample.end());
      refine.tuple_slots = std::move(slots);
      refine.soft_slots = sample;
      std::vector<bool> refine_params(log_.size(), false);
      for (size_t i : repair.changed_queries) refine_params[i] = true;
      refine.parameterized = refine_params;
      refine.encoded = EncodedSet(refine_params);
      refine.options.soft_match_weight = 1.0;
      refine.options.param_distance_weight =
          options_.refine_distance_weight;

      WallTimer refine_encode;
      size_t refine_encode_span = obs::TraceContext::kDroppedSpan;
      if (trace != nullptr) {
        refine_encode_span = trace->BeginSpan("refine_encode", phase_parent);
      }
      auto refined = Encode(refine);
      stats->encode_seconds += refine_encode.ElapsedSeconds();
      if (trace != nullptr) trace->EndSpan(refine_encode_span);
      if (!refined.ok()) break;
      milp::MilpOptions refine_opts = options_.milp;
      refine_opts.time_limit_seconds =
          std::min(deadline.RemainingSeconds(), 15.0);
      size_t refine_solve_span = obs::TraceContext::kDroppedSpan;
      if (trace != nullptr) {
        refine_solve_span = trace->BeginSpan("refine_solve", phase_parent);
        refine_opts.trace_parent_span = refine_solve_span;
      }
      WallTimer refine_solve;
      milp::MilpSolution rsol =
          milp::MilpSolver(refine_opts).Solve(refined->model);
      stats->solve_seconds += refine_solve.ElapsedSeconds();
      if (trace != nullptr) trace->EndSpan(refine_solve_span);
      stats->solver_nodes += rsol.stats.nodes;
      stats->lp_iterations += rsol.stats.lp_iterations;
      stats->incumbent_updates += rsol.stats.incumbent_updates;
      if (!milp::HasSolution(rsol.status)) break;

      QueryLog refined_log = ConvertQLog(log_, *refined, rsol.x);
      SnapIntegralParams(refined_log, *refined);
      if (CollateralSlots(refined_log).size() >= best_collateral) {
        break;  // refinement didn't help
      }
      std::vector<size_t> refined_changed;
      for (size_t i = 0; i < log_.size(); ++i) {
        for (const auto& ref : log_[i].Params()) {
          if (std::fabs(log_[i].GetParam(ref) -
                        refined_log[i].GetParam(ref)) > 1e-7) {
            refined_changed.push_back(i);
            break;
          }
        }
      }
      repair.log = std::move(refined_log);
      repair.changed_queries = std::move(refined_changed);
      repair.distance = relational::LogDistance(log_, repair.log);
      stats->refined = true;
      // The adopted solution is now the refinement's: optimality (and
      // with it cacheability) follows the weakest solve behind it.
      stats->optimal =
          stats->optimal && rsol.status == milp::MilpStatus::kOptimal;
    }
  }

  // Beautify repaired constants (replay-equivalence preserving), then
  // refresh the bookkeeping that depends on exact parameter values.
  if (options_.polish_params && !repair.changed_queries.empty()) {
    PolishRepairedParams(log_, repair.log, d0_);
    repair.changed_queries.clear();
    for (size_t i = 0; i < log_.size(); ++i) {
      for (const auto& ref : log_[i].Params()) {
        if (std::fabs(log_[i].GetParam(ref) - repair.log[i].GetParam(ref)) >
            1e-7) {
          repair.changed_queries.push_back(i);
          break;
        }
      }
    }
    repair.distance = relational::LogDistance(log_, repair.log);
  }

  // Verify that replaying Q* reproduces every complaint target, and
  // count collateral damage: non-complaint tuples moved off their
  // observed dirty state.
  Database fixed = relational::ExecuteLog(repair.log, d0_);
  repair.verified = true;
  for (const auto& c : complaints_.complaints()) {
    const relational::Tuple& t = fixed.slot(static_cast<size_t>(c.tid));
    if (t.alive != c.target_alive) {
      repair.verified = false;
      break;
    }
    if (!c.target_alive) continue;
    for (size_t a = 0; a < num_attrs_; ++a) {
      if (std::fabs(t.values[a] - c.target_values[a]) > 1e-4) {
        repair.verified = false;
        break;
      }
    }
    if (!repair.verified) break;
  }
  for (size_t slot = 0; slot < fixed.NumSlots(); ++slot) {
    if (complaints_.Find(static_cast<int64_t>(slot)) != nullptr) continue;
    const relational::Tuple& got = fixed.slot(slot);
    const relational::Tuple& dirty = dirty_.slot(slot);
    bool moved = got.alive != dirty.alive;
    if (!moved && got.alive) {
      for (size_t a = 0; a < num_attrs_ && !moved; ++a) {
        moved = std::fabs(got.values[a] - dirty.values[a]) > 1e-6;
      }
    }
    if (moved) ++repair.collateral;
  }

  repair.stats = *stats;
  return repair;
}

std::vector<size_t> QFixEngine::CollateralSlots(
    const QueryLog& repaired) const {
  Database fixed = relational::ExecuteLog(repaired, d0_);
  std::vector<size_t> out;
  for (size_t slot = 0; slot < fixed.NumSlots(); ++slot) {
    if (complaints_.Find(static_cast<int64_t>(slot)) != nullptr) continue;
    const relational::Tuple& got = fixed.slot(slot);
    const relational::Tuple& dirty = dirty_.slot(slot);
    bool moved = got.alive != dirty.alive;
    if (!moved && got.alive) {
      for (size_t a = 0; a < num_attrs_ && !moved; ++a) {
        moved = std::fabs(got.values[a] - dirty.values[a]) > 1e-6;
      }
    }
    if (moved) out.push_back(slot);
  }
  return out;
}

Result<Repair> QFixEngine::RepairBasic() {
  if (complaints_.empty()) {
    Repair noop;
    noop.log = log_;
    noop.verified = true;
    return noop;
  }
  Deadline deadline = Deadline::AfterSeconds(options_.time_limit_seconds);
  WallTimer total;
  RepairStats stats;
  stats.attempts = 1;

  std::vector<bool> parameterized(log_.size(), true);
  if (options_.query_slicing) {
    for (size_t i = 0; i < log_.size(); ++i) {
      parameterized[i] = relevant_loose_[i];
    }
    // Degenerate guard: if slicing filtered everything (e.g. empty
    // complaint set), fall back to parameterizing the full log.
    if (std::none_of(parameterized.begin(), parameterized.end(),
                     [](bool b) { return b; })) {
      parameterized.assign(log_.size(), true);
    }
  }
  auto result = SolveAttempt(parameterized, deadline, &stats);
  if (result.ok()) result->stats.total_seconds = total.ElapsedSeconds();
  return result;
}

Result<Repair> QFixEngine::RepairSingle(size_t query_index) {
  if (query_index >= log_.size()) {
    return Status::InvalidArgument("query index beyond log");
  }
  Deadline deadline = Deadline::AfterSeconds(options_.time_limit_seconds);
  WallTimer total;
  RepairStats stats;
  stats.attempts = 1;
  std::vector<bool> parameterized(log_.size(), false);
  parameterized[query_index] = true;
  auto result = SolveAttempt(parameterized, deadline, &stats);
  if (result.ok()) result->stats.total_seconds = total.ElapsedSeconds();
  return result;
}

Result<Repair> QFixEngine::RepairIncremental(int k) {
  if (k < 1) return Status::InvalidArgument("batch size must be >= 1");
  if (complaints_.empty()) {
    Repair noop;
    noop.log = log_;
    noop.verified = true;
    return noop;
  }
  Deadline deadline = Deadline::AfterSeconds(options_.time_limit_seconds);
  WallTimer total;
  RepairStats stats;

  const bool strict =
      options_.single_corruption_filter && k == 1 &&
      std::any_of(relevant_strict_.begin(), relevant_strict_.end(),
                  [](bool b) { return b; });
  const std::vector<bool>& candidates =
      strict ? relevant_strict_ : relevant_loose_;

  // A feasible repair that moves non-complaint tuples is kept as a
  // fallback; the search continues hoping for a collateral-free repair
  // from an older batch (typically the actually-corrupted query).
  std::optional<Repair> fallback;

  const int n = static_cast<int>(log_.size());
  for (int end = n; end > 0; end -= k) {
    int begin = std::max(0, end - k);
    std::vector<bool> parameterized(log_.size(), false);
    bool any = false;
    for (int i = begin; i < end; ++i) {
      bool eligible = !options_.query_slicing || candidates[i];
      if (eligible) {
        parameterized[i] = true;
        any = true;
      }
    }
    if (!any) continue;  // query slicing skipped the whole batch
    ++stats.attempts;

    if (deadline.Expired()) {
      if (fallback.has_value()) break;
      return Status::ResourceExhausted(
          "time limit reached before a repair was found");
    }
    auto attempt = SolveAttempt(parameterized, deadline, &stats);
    if (attempt.ok()) {
      attempt->stats.total_seconds = total.ElapsedSeconds();
      if (attempt->collateral == 0) return attempt;
      if (!fallback.has_value() ||
          attempt->collateral < fallback->collateral) {
        fallback = std::move(attempt).value();
      }
      continue;
    }
    if (attempt.status().IsResourceExhausted()) {
      if (fallback.has_value()) break;
      return attempt.status();
    }
    if (!attempt.status().IsInfeasible()) return attempt.status();
    // Infeasible: this batch cannot explain the complaints; go older.
  }
  if (fallback.has_value()) {
    fallback->stats.total_seconds = total.ElapsedSeconds();
    return std::move(fallback).value();
  }
  return Status::Infeasible(
      "no batch of " + std::to_string(k) +
      " consecutive queries can explain the complaint set");
}

std::vector<Repair> QFixEngine::DiagnoseAll(size_t max_diagnoses) {
  std::vector<Repair> out;
  if (complaints_.empty() || max_diagnoses == 0) return out;
  Deadline deadline = Deadline::AfterSeconds(options_.time_limit_seconds);

  const bool use_strict =
      options_.single_corruption_filter &&
      std::any_of(relevant_strict_.begin(), relevant_strict_.end(),
                  [](bool b) { return b; });
  const std::vector<bool>& candidates =
      use_strict ? relevant_strict_ : relevant_loose_;

  for (size_t i = log_.size(); i-- > 0;) {
    if (out.size() >= max_diagnoses || deadline.Expired()) break;
    if (options_.query_slicing && !candidates[i]) continue;
    RepairStats stats;
    stats.attempts = 1;
    std::vector<bool> parameterized(log_.size(), false);
    parameterized[i] = true;
    auto attempt = SolveAttempt(parameterized, deadline, &stats);
    if (!attempt.ok()) continue;
    attempt->stats.total_seconds = stats.encode_seconds +
                                   stats.solve_seconds;
    out.push_back(std::move(attempt).value());
  }
  // Rank: clean repairs first, then fewer damaged tuples, then smaller
  // parameter distance (the paper's d(Q, Q*)).
  std::stable_sort(out.begin(), out.end(),
                   [](const Repair& a, const Repair& b) {
                     if (a.collateral != b.collateral) {
                       return a.collateral < b.collateral;
                     }
                     return a.distance < b.distance;
                   });
  return out;
}

}  // namespace qfixcore
}  // namespace qfix
