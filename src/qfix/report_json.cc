#include "qfix/report_json.h"

#include <cmath>

#include "common/json.h"
#include "relational/executor.h"
#include "sql/diff.h"

namespace qfix {
namespace qfixcore {

namespace {

constexpr double kValueTol = 1e-6;

bool TupleMatchesTarget(const relational::Tuple& got,
                        const provenance::Complaint& want) {
  if (got.alive != want.target_alive) return false;
  if (!want.target_alive) return true;
  for (size_t a = 0; a < got.values.size(); ++a) {
    if (std::fabs(got.values[a] - want.target_values[a]) > kValueTol) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string RepairToJson(const Repair& repair,
                         const relational::QueryLog& original,
                         const relational::Database& d0,
                         const relational::Database& dirty,
                         const provenance::ComplaintSet& complaints) {
  const relational::Schema& schema = d0.schema();
  relational::Database fixed = relational::ExecuteLog(repair.log, d0);

  JsonWriter w;
  w.BeginObject();
  w.Key("verified");
  w.Bool(repair.verified);
  w.Key("distance");
  w.Double(repair.distance);
  w.Key("collateral");
  w.Uint(repair.collateral);

  // Per-query repairs, derived from the same diff the text report uses.
  w.Key("repairs");
  w.BeginArray();
  for (const sql::QueryDiff& d :
       sql::DiffLogs(original, repair.log, schema)) {
    w.BeginObject();
    w.Key("query");
    w.Uint(d.index + 1);  // human numbering: q1 is the oldest
    w.Key("executed_sql");
    w.String(d.original_sql);
    w.Key("repaired_sql");
    w.String(d.repaired_sql);
    w.Key("params");
    w.BeginArray();
    for (const sql::ParamChange& p : d.params) {
      w.BeginObject();
      w.Key("where");
      w.String(p.where);
      w.Key("before");
      w.Double(p.before);
      w.Key("after");
      w.Double(p.after);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  // Complaint resolution against the replayed repaired log.
  size_t resolved = 0;
  w.Key("complaints");
  w.BeginObject();
  w.Key("rows");
  w.BeginArray();
  for (const provenance::Complaint& c : complaints.complaints()) {
    size_t slot = static_cast<size_t>(c.tid);
    bool fixed_row = slot < fixed.NumSlots() &&
                     TupleMatchesTarget(fixed.slot(slot), c);
    resolved += fixed_row ? 1 : 0;
    w.BeginObject();
    w.Key("tid");
    w.Int(c.tid);
    w.Key("resolved");
    w.Bool(fixed_row);
    w.EndObject();
  }
  w.EndArray();
  w.Key("total");
  w.Uint(complaints.size());
  w.Key("resolved");
  w.Uint(resolved);
  w.EndObject();

  // Non-complaint tuples the repair moves: predicted unreported errors.
  w.Key("side_effects");
  w.BeginArray();
  size_t shared = std::min(fixed.NumSlots(), dirty.NumSlots());
  for (size_t slot = 0; slot < shared; ++slot) {
    if (complaints.Find(static_cast<int64_t>(slot)) != nullptr) continue;
    const relational::Tuple& a = dirty.slot(slot);
    const relational::Tuple& b = fixed.slot(slot);
    bool differs = a.alive != b.alive;
    if (!differs && a.alive) {
      for (size_t attr = 0; attr < schema.num_attrs() && !differs;
           ++attr) {
        differs = std::fabs(a.values[attr] - b.values[attr]) > kValueTol;
      }
    }
    if (!differs) continue;
    w.BeginObject();
    w.Key("tid");
    w.Uint(slot);
    w.EndObject();
  }
  for (size_t slot = dirty.NumSlots(); slot < fixed.NumSlots(); ++slot) {
    w.BeginObject();
    w.Key("tid");
    w.Uint(slot);
    w.Key("inserted");
    w.Bool(true);
    w.EndObject();
  }
  w.EndArray();

  w.Key("stats");
  w.BeginObject();
  w.Key("vars");
  w.Int(repair.stats.num_vars);
  w.Key("constraints");
  w.Int(repair.stats.num_constraints);
  w.Key("integer_vars");
  w.Int(repair.stats.num_integer_vars);
  w.Key("solver_nodes");
  w.Int(repair.stats.solver_nodes);
  w.Key("attempts");
  w.Int(repair.stats.attempts);
  w.Key("refined");
  w.Bool(repair.stats.refined);
  w.Key("encoded_tuples");
  w.Uint(repair.stats.encoded_tuples);
  w.Key("encoded_queries");
  w.Uint(repair.stats.encoded_queries);
  w.Key("encode_seconds");
  w.Double(repair.stats.encode_seconds);
  w.Key("solve_seconds");
  w.Double(repair.stats.solve_seconds);
  w.Key("total_seconds");
  w.Double(repair.stats.total_seconds);
  w.EndObject();

  w.EndObject();
  return w.str();
}

}  // namespace qfixcore
}  // namespace qfix
