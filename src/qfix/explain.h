// Human-readable diagnosis reports.
//
// A Repair (qfix.h) is a data structure; ExplainRepair renders it as the
// report an administrator reviews before applying the fix (§1: diagnoses
// are validated by an expert, then used to find unreported errors):
// which queries changed and how, whether replaying the repaired log
// resolves every complaint, what it costs in parameter distance, and
// which non-complaint tuples the repair also moves — the candidates for
// unreported errors.
#ifndef QFIX_QFIX_EXPLAIN_H_
#define QFIX_QFIX_EXPLAIN_H_

#include <cstddef>
#include <string>

#include "provenance/complaint.h"
#include "qfix/qfix.h"
#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace qfixcore {

struct ExplainOptions {
  /// Include the unified SQL diff of Q vs Q*.
  bool include_diff = true;
  /// Include the per-complaint resolution table.
  bool include_complaints = true;
  /// Include the tuples the repair changes beyond the complaint set
  /// (likely unreported errors, §1).
  bool include_side_effects = true;
  /// Cap on listed complaints / side-effect tuples; the rest is counted.
  size_t max_rows = 10;
};

/// Renders `repair` as a multi-section text report. `original` is the
/// executed (dirty) log the repair was derived from; `d0`/`dirty` are the
/// database states handed to QFixEngine; `complaints` the complaint set.
std::string ExplainRepair(const Repair& repair,
                          const relational::QueryLog& original,
                          const relational::Database& d0,
                          const relational::Database& dirty,
                          const provenance::ComplaintSet& complaints,
                          const ExplainOptions& options = ExplainOptions());

}  // namespace qfixcore
}  // namespace qfix

#endif  // QFIX_QFIX_EXPLAIN_H_
