#include "qfix/explain.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/strings.h"
#include "relational/executor.h"
#include "sql/diff.h"

namespace qfix {
namespace qfixcore {

namespace {

constexpr double kValueTol = 1e-6;

// "owed 25800 -> 21500, pay 60200 -> 64500" for the attributes on which
// `from` and `to` disagree.
std::string DescribeValueChanges(const relational::Schema& schema,
                                 const std::vector<double>& from,
                                 const std::vector<double>& to) {
  std::vector<std::string> parts;
  for (size_t a = 0; a < schema.num_attrs(); ++a) {
    if (std::fabs(from[a] - to[a]) > kValueTol) {
      parts.push_back(schema.attr_name(a) + " " + FormatNumber(from[a]) +
                      " -> " + FormatNumber(to[a]));
    }
  }
  return parts.empty() ? "(no value change)" : Join(parts, ", ");
}

bool TupleMatchesTarget(const relational::Tuple& got,
                        const provenance::Complaint& want) {
  if (got.alive != want.target_alive) return false;
  if (!want.target_alive) return true;  // both dead: values are moot
  for (size_t a = 0; a < got.values.size(); ++a) {
    if (std::fabs(got.values[a] - want.target_values[a]) > kValueTol) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string ExplainRepair(const Repair& repair,
                          const relational::QueryLog& original,
                          const relational::Database& d0,
                          const relational::Database& dirty,
                          const provenance::ComplaintSet& complaints,
                          const ExplainOptions& options) {
  const relational::Schema& schema = d0.schema();
  std::string out;
  out += "QFix diagnosis report\n";
  out += "=====================\n";

  // Which queries changed.
  if (repair.changed_queries.empty()) {
    out += "repaired queries  : none (the log already explains the "
           "complaints)\n";
  } else {
    std::vector<std::string> names;
    names.reserve(repair.changed_queries.size());
    for (size_t idx : repair.changed_queries) {
      names.push_back(StringPrintf("q%zu", idx + 1));
    }
    out += StringPrintf("repaired queries  : %zu of %zu (%s)\n",
                        repair.changed_queries.size(), original.size(),
                        Join(names, ", ").c_str());
  }
  out += "parameter distance: " + FormatNumber(repair.distance) + "\n";
  out += StringPrintf("verified          : %s\n",
                      repair.verified
                          ? "yes (replay resolves every complaint)"
                          : "NO (replay does not match all targets)");
  out += StringPrintf(
      "collateral        : %zu non-complaint tuple(s) moved\n",
      repair.collateral);
  out += StringPrintf(
      "encoded problem   : %d vars (%d integer), %d constraints; "
      "%zu tuples x %zu queries\n",
      repair.stats.num_vars, repair.stats.num_integer_vars,
      repair.stats.num_constraints, repair.stats.encoded_tuples,
      repair.stats.encoded_queries);
  out += StringPrintf(
      "time              : %.3fs total (encode %.3fs, solve %.3fs, "
      "%d attempt(s)%s)\n",
      repair.stats.total_seconds, repair.stats.encode_seconds,
      repair.stats.solve_seconds, repair.stats.attempts,
      repair.stats.refined ? ", refined" : "");

  if (options.include_diff) {
    out += "\nQuery repairs:\n";
    out += sql::FormatLogDiff(original, repair.log, schema);
  }

  // Replay Q* to report per-complaint resolution and side effects.
  relational::Database repaired_dn = relational::ExecuteLog(repair.log, d0);

  if (options.include_complaints && !complaints.empty()) {
    out += "\nComplaint resolution:\n";
    size_t listed = 0;
    size_t resolved = 0;
    for (const provenance::Complaint& c : complaints.complaints()) {
      size_t slot = static_cast<size_t>(c.tid);
      bool have_slot = slot < repaired_dn.NumSlots();
      bool fixed =
          have_slot && TupleMatchesTarget(repaired_dn.slot(slot), c);
      resolved += fixed ? 1 : 0;
      if (listed >= options.max_rows) continue;
      ++listed;
      std::string change = "(tuple missing)";
      if (have_slot && slot < dirty.NumSlots()) {
        const relational::Tuple& before = dirty.slot(slot);
        const relational::Tuple& after = repaired_dn.slot(slot);
        if (before.alive && !after.alive) {
          change = "deleted";
        } else if (!before.alive && after.alive) {
          change = "restored: " +
                   DescribeValueChanges(schema, before.values, after.values);
        } else {
          change = DescribeValueChanges(schema, before.values, after.values);
        }
      }
      out += StringPrintf("  tid %lld: %s  [%s]\n",
                          static_cast<long long>(c.tid), change.c_str(),
                          fixed ? "resolved" : "UNRESOLVED");
    }
    if (complaints.size() > listed) {
      out += StringPrintf("  ... and %zu more\n", complaints.size() - listed);
    }
    out += StringPrintf("  %zu of %zu complaint(s) resolved\n", resolved,
                        complaints.size());
  }

  if (options.include_side_effects) {
    // Non-complaint tuples whose final state the repair changes: these
    // are the repair's predictions of unreported errors (§1).
    std::vector<size_t> moved;
    size_t slots = std::min(repaired_dn.NumSlots(), dirty.NumSlots());
    for (size_t slot = 0; slot < slots; ++slot) {
      if (complaints.Find(static_cast<int64_t>(slot)) != nullptr) continue;
      const relational::Tuple& a = dirty.slot(slot);
      const relational::Tuple& b = repaired_dn.slot(slot);
      bool differs = a.alive != b.alive;
      if (!differs && a.alive) {
        for (size_t attr = 0; attr < schema.num_attrs(); ++attr) {
          if (std::fabs(a.values[attr] - b.values[attr]) > kValueTol) {
            differs = true;
            break;
          }
        }
      }
      if (differs) moved.push_back(slot);
    }
    for (size_t slot = dirty.NumSlots(); slot < repaired_dn.NumSlots();
         ++slot) {
      moved.push_back(slot);  // tuples only the repaired log created
    }
    if (moved.empty()) {
      out += "\nSide effects: none (only complaint tuples change)\n";
    } else {
      out += StringPrintf(
          "\nSide effects: %zu non-complaint tuple(s) change — likely "
          "unreported errors:\n",
          moved.size());
      size_t listed = 0;
      for (size_t slot : moved) {
        if (listed >= options.max_rows) break;
        ++listed;
        const relational::Tuple& after = repaired_dn.slot(slot);
        std::string change;
        if (slot >= dirty.NumSlots()) {
          change = "inserted";
        } else {
          const relational::Tuple& before = dirty.slot(slot);
          if (before.alive && !after.alive) {
            change = "deleted";
          } else if (!before.alive && after.alive) {
            change = "restored";
          } else {
            change =
                DescribeValueChanges(schema, before.values, after.values);
          }
        }
        out += StringPrintf("  tid %zu: %s\n", slot, change.c_str());
      }
      if (moved.size() > listed) {
        out += StringPrintf("  ... and %zu more\n", moved.size() - listed);
      }
    }
  }
  return out;
}

}  // namespace qfixcore
}  // namespace qfix
