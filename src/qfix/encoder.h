// The MILP Encoder: translates (query log, D0, Dn, complaints) into a
// mixed-integer linear program whose optimal solution is the minimal log
// repair (paper §4).
//
// Encoding summary (deviations from the paper's presentation are
// intentional, equivalence-preserving simplifications; see DESIGN.md §2):
//
//  * Tuple values flow through the log as *affine expressions* over MILP
//    variables. A cell that no parameterized query has touched stays a
//    constant, so untouched queries are partially evaluated instead of
//    emitting constraints — constraints appear only where repair
//    decisions can change values. ConnectQueries (Alg. 1) is therefore
//    implicit: the output expression of q_i *is* the input of q_{i+1}.
//  * UPDATE (Eq. 2-4): for a tuple with symbolic match binary x, each SET
//    output variable `out` is tied to the new/old expressions with four
//    big-M rows (x=1 -> out = mu(t).A, x=0 -> out = t.A). This eliminates
//    the paper's u/v split variables algebraically.
//  * Predicates (Eq. 1): each comparison atom gets an indicator binary
//    with two big-M rows (four for equality atoms, which need a side-
//    selection binary); AND/OR nodes combine child binaries with the
//    standard min/max linearizations. Strict comparison is modeled with a
//    configurable epsilon (auto: 0.5 for integral data).
//  * DELETE (Eq. 6): instead of the paper's out-of-domain sentinel value
//    M+ (which is unsound for `>=` predicates), each tuple carries an
//    explicit liveness state; DELETE sets alive' = alive - (alive AND x),
//    and UPDATE/DELETE matches are conjoined with liveness.
//  * INSERT (Eq. 5): a parameterized INSERT's values are the parameter
//    variables themselves; the objective term |p - p0| subsumes Eq. 5's
//    correctness binary.
//  * Parameters: every additive constant of a parameterized query (WHERE
//    rhs, SET constant, INSERT value) becomes a variable p with split
//    deviation variables, objective sum |p - p0| (§4.3). Multiplicative
//    SET/WHERE coefficients are parameterized only for the earliest
//    parameterized query (whose inputs are provably concrete), keeping
//    the encoding linear.
#ifndef QFIX_QFIX_ENCODER_H_
#define QFIX_QFIX_ENCODER_H_

#include <cstdint>
#include <vector>

#include "common/attr_set.h"
#include "common/result.h"
#include "milp/model.h"
#include "provenance/complaint.h"
#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace qfixcore {

struct EncoderOptions {
  /// Bound on |attribute value| used for variable bounds and big-M
  /// derivation. 0 = derive automatically from the data and log.
  double value_bound = 0.0;
  /// Margin enforcing strict inequalities (x < c becomes x <= c - eps).
  /// 0 = auto: 0.5 when all data and constants are integral, else 1e-4.
  double epsilon = 0.0;
  /// Allow repairing multiplicative coefficients (SET a = a * ?) where
  /// the encoding stays linear.
  bool parameterize_coefficients = true;
  /// Partial evaluation: fold query arithmetic over constant inputs
  /// instead of emitting Eq. (1)-(6) constraints for them. Disabling
  /// reproduces the paper's raw encoding (every constant-input cell of
  /// an encoded query becomes a pinned model variable), which is what
  /// the basic algorithm's Figure 4 cost profile reflects; the
  /// abl_partial_eval bench measures the difference.
  bool fold_constants = true;
  /// Weight of the Manhattan parameter-distance objective.
  double param_distance_weight = 1.0;
  /// Weight of the matched-soft-tuple objective (refinement step, §5.1).
  double soft_match_weight = 0.0;
};

/// Maps one repairable query constant to its MILP variable.
struct ParamVarInfo {
  size_t query_index;
  relational::ParamRef ref;
  milp::VarId var;
  double original;
};

/// The match indicator of a parameterized query on an encoded tuple;
/// the refinement step minimizes these over non-complaint tuples.
struct MatchVarInfo {
  size_t query_index;
  int64_t tid;
  milp::VarId var;
};

/// The encoder's output: the MILP plus the bookkeeping needed to read a
/// repaired log back out of a solution.
struct EncodedProblem {
  milp::Model model;
  std::vector<ParamVarInfo> params;
  std::vector<MatchVarInfo> match_vars;
  size_t num_encoded_tuples = 0;
  size_t num_encoded_queries = 0;
  /// Effective constants used by the encoding (useful for diagnostics).
  double value_bound = 0.0;
  double epsilon = 0.0;
};

/// What to encode. All pointers must outlive the call.
struct EncodeRequest {
  const relational::QueryLog* log = nullptr;
  const relational::Database* d0 = nullptr;
  /// The observed (dirty) final state D_n = Q(D_0).
  const relational::Database* dirty_dn = nullptr;
  const provenance::ComplaintSet* complaints = nullptr;

  /// Slots (tids) to encode. Tuple slicing passes the complaint tids;
  /// the basic algorithm passes every slot of dirty_dn.
  std::vector<size_t> tuple_slots;
  /// Per-query: expose this query's constants as repairable variables.
  std::vector<bool> parameterized;
  /// Per-query: emit constraints for this query. Non-encoded queries are
  /// partially evaluated on constant inputs (query slicing, §5.2); when
  /// their inputs are symbolic their written cells become unconstrained
  /// ("chain break"), which is sound because query slicing guarantees
  /// such attributes are disjoint from the complaint attributes.
  std::vector<bool> encoded;
  /// Attribute slicing (§5.3): when non-null, only these attributes get
  /// variables and output constraints. Must cover every attribute read
  /// or written by an encoded query, and all complaint attributes.
  const AttrSet* attr_filter = nullptr;
  /// Subset of tuple_slots with *soft* outputs (the refinement step's
  /// NC set): no D_n equality constraints; instead their match variables
  /// are penalized via EncoderOptions::soft_match_weight.
  std::vector<size_t> soft_slots;

  /// Incremental ingest (src/ingest): reuse the replayed state of the
  /// unchanged log prefix instead of re-walking it. When prefix_len >
  /// 0, tuples are initialized from `prefix_state` (the executor state
  /// after log[0, prefix_len)) and the per-tuple query walk starts at
  /// prefix_len. Sound exactly when no query in the prefix is
  /// parameterized and constant folding is on: every prefix cell is
  /// then a plain constant and the encoder's fold of the prefix IS the
  /// executor's replay, so skipping it changes nothing in the model.
  /// Both are validated. `prefix_state` must outlive the call.
  const relational::Database* prefix_state = nullptr;
  size_t prefix_len = 0;

  EncoderOptions options;
};

/// Builds the MILP. Returns Infeasible when partial evaluation already
/// proves no assignment of the parameterized queries can satisfy the
/// complaints (e.g. a complaint on a constant-valued cell).
Result<EncodedProblem> Encode(const EncodeRequest& request);

/// Writes the solved parameter values back into a copy of the log
/// (ConvertQLog, Alg. 1 line 13).
relational::QueryLog ConvertQLog(const relational::QueryLog& log,
                                 const EncodedProblem& problem,
                                 const std::vector<double>& solution);

}  // namespace qfixcore
}  // namespace qfix

#endif  // QFIX_QFIX_ENCODER_H_
