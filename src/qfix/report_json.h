// Machine-readable diagnosis reports (JSON).
//
// The text report (explain.h) is for a human reviewer; this rendering
// is for the systems around them — the paper's Example 1 call-center
// workflow wants the diagnosis attached to a ticket, not pasted into
// one. The document carries the same facts as the text report: which
// queries changed and how, verification and collateral, solver
// statistics, per-complaint resolution, and predicted unreported
// errors.
//
// Document shape (stable; extended fields are additive):
// {
//   "verified": true,
//   "distance": 801,
//   "collateral": 0,
//   "repairs": [{"query": 1, "executed_sql": ..., "repaired_sql": ...,
//                "params": [{"where": ..., "before": ..., "after": ...}]}],
//   "complaints": {"total": 2, "resolved": 2,
//                  "rows": [{"tid": 2, "resolved": true}]},
//   "side_effects": [{"tid": 5}],
//   "stats": {"vars": ..., "constraints": ..., "attempts": ...,
//             "encode_seconds": ..., "solve_seconds": ...}
// }
#ifndef QFIX_QFIX_REPORT_JSON_H_
#define QFIX_QFIX_REPORT_JSON_H_

#include <string>

#include "provenance/complaint.h"
#include "qfix/qfix.h"
#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace qfixcore {

/// Renders `repair` as a single-line JSON document. Inputs mirror
/// ExplainRepair (qfix/explain.h).
std::string RepairToJson(const Repair& repair,
                         const relational::QueryLog& original,
                         const relational::Database& d0,
                         const relational::Database& dirty,
                         const provenance::ComplaintSet& complaints);

}  // namespace qfixcore
}  // namespace qfix

#endif  // QFIX_QFIX_REPORT_JSON_H_
