// BatchDiagnoser: many independent complaint -> encode -> solve
// pipelines over one work-stealing pool (src/exec).
//
// This is the entry point a multi-tenant diagnosis service loop would
// call: each BatchItem is a self-contained diagnosis request (a shared
// immutable snapshot of the log/checkpoint/dirty state plus its own
// complaint set), items run concurrently on the pool, and the result
// vector lines up with the input vector. Snapshots are zero-copy: any
// number of items (and concurrent batches) reference one cache::Dataset
// without duplicating tuples. With `jobs <= 0` the batch runs in the
// pool's deterministic serial mode — identical results, reproducible
// order — which is what the tests and single-core deployments use.
//
// With BatchOptions::report_cache set, items are memoized through a
// cache::ReportCache keyed by (snapshot name, version, canonical
// complaint/options hash): repeat requests skip the solver and identical
// concurrent requests coalesce into one solve (singleflight). Hits are
// marked Repair::from_cache.
#ifndef QFIX_QFIX_BATCH_H_
#define QFIX_QFIX_BATCH_H_

#include <vector>

#include "cache/report_cache.h"
#include "cache/snapshot.h"
#include "common/result.h"
#include "exec/cancellation.h"
#include "provenance/complaint.h"
#include "qfix/qfix.h"
#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace exec {
class ThreadPool;
}  // namespace exec
namespace qfixcore {

/// One independent diagnosis request.
struct BatchItem {
  /// The immutable (D0, Q, D_n) snapshot this request diagnoses —
  /// shared, never copied. Use MakeBatchItem() to build one from
  /// by-value states (the tests/CLI adapter path).
  cache::Snapshot data;
  provenance::ComplaintSet complaints;
  QFixOptions options;
  /// Incremental batch size (RepairIncremental); 0 selects RepairBasic.
  int k = 1;
};

/// By-value adapter (tests, CLI): derives the dirty state by replaying
/// `log` on `d0` and freezes everything into a fresh snapshot. Inputs
/// are moved, not copied.
BatchItem MakeBatchItem(relational::QueryLog log, relational::Database d0,
                        provenance::ComplaintSet complaints,
                        QFixOptions options = QFixOptions(), int k = 1);

/// Zero-copy constructor: the item references `data` as-is.
BatchItem MakeBatchItem(cache::Snapshot data,
                        provenance::ComplaintSet complaints,
                        QFixOptions options = QFixOptions(), int k = 1);

struct BatchOptions {
  /// Pool workers; <= 0 runs deterministically on the calling thread.
  int jobs = 1;
  /// Wall-clock budget for the whole batch; items that have not started
  /// when it expires fail with ResourceExhausted instead of running.
  /// <= 0 disables (each item still honors its own per-item limit).
  double time_limit_seconds = 0.0;
  /// Optional caller-owned pool the batch runs on instead of building
  /// one per Run() call — a long-lived service shares one pool across
  /// every request instead of churning threads. Non-owning; must outlive
  /// Run(). When set, `jobs` is ignored.
  exec::ThreadPool* pool = nullptr;
  /// External cancellation (e.g. service shutdown): items that have not
  /// started when the token fires fail with ResourceExhausted instead of
  /// running. Default-constructed tokens never fire.
  exec::CancellationToken cancel;
  /// Optional memoization layer. Non-owning; must outlive Run().
  /// Successful repairs are published under the item's snapshot
  /// identity; repeat items come back with Repair::from_cache set and
  /// never touch the solver.
  cache::ReportCache* report_cache = nullptr;
};

/// The cache key BatchDiagnoser files an item under: snapshot identity
/// plus the canonical hash of the complaint set and every option that
/// changes the diagnosis. Exposed so the service layer can consult the
/// same cache entry before dispatching to a pool.
cache::CacheKey ItemCacheKey(const BatchItem& item);

/// Diagnoses every item and returns one Result per item, in input
/// order. Items are independent: a failure (infeasible, limits) in one
/// never affects the others. Thread-safe; a single BatchDiagnoser may
/// be shared across calls.
class BatchDiagnoser {
 public:
  explicit BatchDiagnoser(BatchOptions options = BatchOptions())
      : options_(options) {}

  std::vector<Result<Repair>> Run(const std::vector<BatchItem>& items) const;

 private:
  BatchOptions options_;
};

}  // namespace qfixcore
}  // namespace qfix

#endif  // QFIX_QFIX_BATCH_H_
