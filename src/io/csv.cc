#include "io/csv.h"

#include <sstream>
#include <vector>

#include "common/strings.h"
#include "io/parse_common.h"

namespace qfix {
namespace io {
namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  cells.push_back(cur);
  // Trim surrounding whitespace.
  for (std::string& cell : cells) {
    size_t b = cell.find_first_not_of(" \t");
    size_t e = cell.find_last_not_of(" \t");
    cell = b == std::string::npos ? "" : cell.substr(b, e - b + 1);
  }
  return cells;
}

Result<double> ParseNumber(const std::string& cell, size_t line_no) {
  return internal::ParseFiniteNumber(cell, "CSV", line_no);
}

}  // namespace

Result<relational::Database> DatabaseFromCsv(std::string_view csv,
                                 std::string table_name) {
  std::istringstream in{std::string(csv)};
  std::string line;
  size_t line_no = 0;

  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV: missing header");
  }
  ++line_no;
  std::vector<std::string> names = SplitLine(line);
  QFIX_RETURN_IF_ERROR(internal::ValidateAttrNames(names, "CSV"));
  relational::Database db(relational::Schema(names), std::move(table_name));

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    std::vector<std::string> cells = SplitLine(line);
    if (cells.size() != names.size()) {
      return Status::InvalidArgument(StringPrintf(
          "line %zu: %zu values for %zu attributes", line_no,
          cells.size(), names.size()));
    }
    std::vector<double> values;
    values.reserve(cells.size());
    for (const std::string& cell : cells) {
      QFIX_ASSIGN_OR_RETURN(double v, ParseNumber(cell, line_no));
      values.push_back(v);
    }
    db.AddTuple(std::move(values));
  }
  return db;
}

std::string DatabaseToCsv(const relational::Database& db) {
  std::string out = Join(db.schema().attr_names(), ",") + "\n";
  for (const relational::Tuple& t : db.tuples()) {
    if (!t.alive) continue;
    std::vector<std::string> cells;
    cells.reserve(t.values.size());
    for (double v : t.values) cells.push_back(FormatNumber(v));
    out += Join(cells, ",") + "\n";
  }
  return out;
}

Result<provenance::ComplaintSet> ComplaintsFromCsv(std::string_view csv,
                                                   const relational::Schema& schema) {
  std::istringstream in{std::string(csv)};
  std::string line;
  size_t line_no = 0;

  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty complaints CSV: missing header");
  }
  ++line_no;
  std::vector<std::string> header = SplitLine(line);
  if (header.size() != schema.num_attrs() + 2 || header[0] != "tid" ||
      header[1] != "alive") {
    return Status::InvalidArgument(
        "complaints CSV header must be 'tid,alive,<attribute names>'");
  }
  for (size_t a = 0; a < schema.num_attrs(); ++a) {
    if (header[a + 2] != schema.attr_name(a)) {
      return Status::InvalidArgument(StringPrintf(
          "complaints CSV column '%s' does not match schema attribute "
          "'%s'",
          header[a + 2].c_str(), schema.attr_name(a).c_str()));
    }
  }

  provenance::ComplaintSet out;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    std::vector<std::string> cells = SplitLine(line);
    if (cells.size() != schema.num_attrs() + 2) {
      return Status::InvalidArgument(
          StringPrintf("line %zu: wrong arity", line_no));
    }
    QFIX_ASSIGN_OR_RETURN(double tid, ParseNumber(cells[0], line_no));
    QFIX_ASSIGN_OR_RETURN(double alive, ParseNumber(cells[1], line_no));
    provenance::Complaint c;
    QFIX_ASSIGN_OR_RETURN(c.tid,
                          internal::TidFromDouble(tid, "CSV", line_no));
    c.target_alive = alive != 0.0;
    if (c.target_alive) {
      for (size_t a = 0; a < schema.num_attrs(); ++a) {
        QFIX_ASSIGN_OR_RETURN(double v, ParseNumber(cells[a + 2], line_no));
        c.target_values.push_back(v);
      }
    }
    out.Add(std::move(c));
  }
  return out;
}

std::string ComplaintsToCsv(const provenance::ComplaintSet& complaints,
                            const relational::Schema& schema) {
  std::string out = "tid,alive," + Join(schema.attr_names(), ",") + "\n";
  for (const provenance::Complaint& c : complaints.complaints()) {
    std::vector<std::string> cells{std::to_string(c.tid),
                                   c.target_alive ? "1" : "0"};
    for (size_t a = 0; a < schema.num_attrs(); ++a) {
      cells.push_back(c.target_alive ? FormatNumber(c.target_values[a])
                                     : "0");
    }
    out += Join(cells, ",") + "\n";
  }
  return out;
}

}  // namespace io
}  // namespace qfix
