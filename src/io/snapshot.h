// Checkpoint snapshots of database states.
//
// The paper's system model keeps exactly two states, D_0 and D_n, and
// treats D_0 as a trusted checkpoint ("we cannot diagnose errors before
// this state", §3.1). This module serializes a relational::Database —
// including dead tuple slots and their stable tids, which CSV (io/csv.h)
// cannot represent — so checkpoints survive process restarts and can be
// shipped alongside a query log for offline diagnosis.
//
// Format (line-oriented text, lossless for doubles):
//   qfix-snapshot v1
//   table <name>
//   attrs <a1> <a2> ...
//   tuple <tid> alive|dead <v1> <v2> ...
//   ...
//   end
#ifndef QFIX_IO_SNAPSHOT_H_
#define QFIX_IO_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "relational/database.h"

namespace qfix {
namespace io {

/// Renders `db` in the snapshot format. Attribute and table names must
/// be whitespace-free (they are in every workload this library builds);
/// violations trip a QFIX_CHECK.
std::string WriteSnapshot(const relational::Database& db);

/// Parses a snapshot document back into a Database. Tids must be the
/// dense slot indexes the executor maintains (0..n-1 in order); anything
/// else is a corrupted snapshot and returns InvalidArgument.
Result<relational::Database> ReadSnapshot(std::string_view text);

/// Writes `db` to `path`; returns InvalidArgument on IO failure.
Status WriteSnapshotFile(const relational::Database& db,
                         const std::string& path);

/// Reads a snapshot file; NotFound if the file cannot be opened.
Result<relational::Database> ReadSnapshotFile(const std::string& path);

}  // namespace io
}  // namespace qfix

#endif  // QFIX_IO_SNAPSHOT_H_
