// CSV import/export for database states and complaint sets — the
// interchange format of the command-line tool (tools/qfix_cli).
//
// Database CSV: first line is the header (attribute names); each
// subsequent line is one tuple of numeric values. Complaint CSV: header
// `tid,alive,<attr names...>`; each line names a tuple id, whether it
// should exist (0/1), and its correct values.
#ifndef QFIX_IO_CSV_H_
#define QFIX_IO_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "provenance/complaint.h"
#include "relational/database.h"

namespace qfix {
namespace io {

/// Parses a database from CSV text. `table_name` is attached to the
/// resulting Database (CSV carries no table name).
Result<relational::Database> DatabaseFromCsv(std::string_view csv,
                                 std::string table_name);

/// Renders a database as CSV (header + live and dead tuples; dead tuples
/// are skipped since CSV has no liveness column).
std::string DatabaseToCsv(const relational::Database& db);

/// Parses complaints against `schema` from CSV text with header
/// `tid,alive,<attrs...>`.
Result<provenance::ComplaintSet> ComplaintsFromCsv(std::string_view csv,
                                                   const relational::Schema& schema);

/// Renders a complaint set as CSV.
std::string ComplaintsToCsv(const provenance::ComplaintSet& complaints,
                            const relational::Schema& schema);

}  // namespace io
}  // namespace qfix

#endif  // QFIX_IO_CSV_H_
