// Shared input-hardening helpers for the io text readers (csv.cc,
// snapshot.cc). Internal to src/io — both parsers face raw network
// bytes through the service, and keeping one copy of the rules stops
// the CSV and snapshot paths of POST /v1/datasets from drifting apart
// (same field caps, same NUL/non-finite handling, same header
// validation).
#ifndef QFIX_IO_PARSE_COMMON_H_
#define QFIX_IO_PARSE_COMMON_H_

#include <cmath>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/strings.h"

namespace qfix {
namespace io {
namespace internal {

// Hard caps on untrusted input: no real workload has numbers longer
// than a few dozen characters, attribute names longer than a line, or
// millions of columns — anything beyond bounces as a Status instead of
// growing unbounded state.
constexpr size_t kMaxFieldBytes = 512;
constexpr size_t kMaxAttrs = 16384;

/// Parses one numeric field completely. `what` names the document kind
/// for error messages ("CSV", "snapshot"). Rejects empty and oversized
/// fields, trailing bytes (the end-pointer comparison against c_str()
/// catches embedded NUL bytes, which strtod would silently treat as a
/// terminator), and non-finite values.
inline Result<double> ParseFiniteNumber(const std::string& field,
                                        const char* what, size_t line_no) {
  if (field.empty() || field.size() > kMaxFieldBytes) {
    return Status::InvalidArgument(StringPrintf(
        "%s line %zu: numeric field is empty or longer than %zu bytes",
        what, line_no, kMaxFieldBytes));
  }
  char* end = nullptr;
  double v = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size()) {
    return Status::InvalidArgument(StringPrintf(
        "%s line %zu: '%s' is not a number", what, line_no,
        field.c_str()));
  }
  if (!std::isfinite(v)) {
    return Status::InvalidArgument(StringPrintf(
        "%s line %zu: non-finite value '%s'", what, line_no,
        field.c_str()));
  }
  return v;
}

/// Range-checks a parsed tid before the double -> int64 cast (casting
/// an out-of-range double is undefined behavior, not an error value).
inline Result<int64_t> TidFromDouble(double tid, const char* what,
                                     size_t line_no) {
  if (tid < 0.0 || tid > 1e15 || tid != std::floor(tid)) {
    return Status::InvalidArgument(StringPrintf(
        "%s line %zu: tid %g is not a non-negative integer", what,
        line_no, tid));
  }
  return static_cast<int64_t>(tid);
}

/// Header names must be usable as Schema attributes: non-empty, unique,
/// bounded, and free of control bytes. Duplicates would otherwise trip
/// the Schema constructor's QFIX_CHECK — a crash, which untrusted bytes
/// must never cause.
inline Status ValidateAttrNames(const std::vector<std::string>& names,
                                const char* what) {
  if (names.empty()) {
    return Status::InvalidArgument(
        StringPrintf("%s header has no attribute names", what));
  }
  if (names.size() > kMaxAttrs) {
    return Status::InvalidArgument(StringPrintf(
        "%s header declares %zu attributes (limit %zu)", what,
        names.size(), kMaxAttrs));
  }
  std::unordered_set<std::string> seen;
  for (const std::string& name : names) {
    if (name.empty() || name.size() > kMaxFieldBytes) {
      return Status::InvalidArgument(StringPrintf(
          "%s header: attribute name is empty or oversized", what));
    }
    for (char c : name) {
      if (static_cast<unsigned char>(c) < 0x20) {
        return Status::InvalidArgument(StringPrintf(
            "%s header: attribute name contains control bytes", what));
      }
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument(StringPrintf(
          "%s header: duplicate attribute name: %s", what, name.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace io
}  // namespace qfix

#endif  // QFIX_IO_PARSE_COMMON_H_
