#include "io/snapshot.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "io/parse_common.h"

namespace qfix {
namespace io {

namespace {

// Lossless double rendering (snapshots are checkpoints; a checkpoint
// that drifts on reload would silently shift every diagnosis).
std::string ExactNumber(double v) {
  char shortest[64];
  std::snprintf(shortest, sizeof(shortest), "%.15g", v);
  if (std::strtod(shortest, nullptr) == v) return shortest;
  char exact[64];
  std::snprintf(exact, sizeof(exact), "%.17g", v);
  return exact;
}

bool HasWhitespace(const std::string& s) {
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) return true;
  }
  return false;
}

// Splits a line on runs of spaces/tabs.
std::vector<std::string> SplitFields(std::string_view line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

Result<double> ParseNumber(const std::string& field, size_t line_no) {
  return internal::ParseFiniteNumber(field, "snapshot", line_no);
}

}  // namespace

std::string WriteSnapshot(const relational::Database& db) {
  const relational::Schema& schema = db.schema();
  QFIX_CHECK(!HasWhitespace(db.table_name()))
      << "table name with whitespace: '" << db.table_name() << "'";
  std::string out = "qfix-snapshot v1\n";
  out += "table " + (db.table_name().empty() ? "T" : db.table_name()) + "\n";
  out += "attrs";
  for (const std::string& name : schema.attr_names()) {
    QFIX_CHECK(!name.empty() && !HasWhitespace(name))
        << "attribute name unfit for snapshot: '" << name << "'";
    out += ' ';
    out += name;
  }
  out += '\n';
  for (const relational::Tuple& t : db.tuples()) {
    out += StringPrintf("tuple %lld %s", static_cast<long long>(t.tid),
                        t.alive ? "alive" : "dead");
    for (double v : t.values) {
      out += ' ';
      out += ExactNumber(v);
    }
    out += '\n';
  }
  out += "end\n";
  return out;
}

Result<relational::Database> ReadSnapshot(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }

  size_t li = 0;
  auto next_nonempty = [&]() -> std::string_view {
    while (li < lines.size() && SplitFields(lines[li]).empty()) ++li;
    return li < lines.size() ? lines[li++] : std::string_view();
  };

  std::vector<std::string> header = SplitFields(next_nonempty());
  if (header.size() != 2 || header[0] != "qfix-snapshot" ||
      header[1] != "v1") {
    return Status::InvalidArgument("snapshot: missing 'qfix-snapshot v1' "
                                   "header");
  }
  std::vector<std::string> table_line = SplitFields(next_nonempty());
  if (table_line.size() != 2 || table_line[0] != "table") {
    return Status::InvalidArgument("snapshot: missing 'table <name>' line");
  }
  std::vector<std::string> attrs_line = SplitFields(next_nonempty());
  if (attrs_line.size() < 2 || attrs_line[0] != "attrs") {
    return Status::InvalidArgument("snapshot: missing 'attrs ...' line");
  }
  std::vector<std::string> attr_names(attrs_line.begin() + 1,
                                      attrs_line.end());
  QFIX_RETURN_IF_ERROR(internal::ValidateAttrNames(attr_names, "snapshot"));
  size_t num_attrs = attr_names.size();

  relational::Database db(relational::Schema(std::move(attr_names)),
                          table_line[1]);
  while (true) {
    std::string_view raw = next_nonempty();
    std::vector<std::string> fields = SplitFields(raw);
    if (fields.empty()) {
      return Status::InvalidArgument("snapshot: missing 'end' line");
    }
    if (fields[0] == "end") break;
    if (fields[0] != "tuple") {
      return Status::InvalidArgument(StringPrintf(
          "snapshot: expected 'tuple' or 'end' on line %zu", li));
    }
    if (fields.size() != 3 + num_attrs) {
      return Status::InvalidArgument(StringPrintf(
          "snapshot: tuple arity %zu, expected %zu values on line %zu",
          fields.size() - 3, num_attrs, li));
    }
    QFIX_ASSIGN_OR_RETURN(double tid_value, ParseNumber(fields[1], li));
    QFIX_ASSIGN_OR_RETURN(int64_t tid,
                          internal::TidFromDouble(tid_value, "snapshot", li));
    if (tid != static_cast<int64_t>(db.NumSlots())) {
      return Status::InvalidArgument(StringPrintf(
          "snapshot: tid %lld out of order on line %zu (expected %zu)",
          static_cast<long long>(tid), li, db.NumSlots()));
    }
    bool alive;
    if (fields[2] == "alive") {
      alive = true;
    } else if (fields[2] == "dead") {
      alive = false;
    } else {
      return Status::InvalidArgument(StringPrintf(
          "snapshot: liveness '%s' on line %zu is not alive|dead",
          fields[2].c_str(), li));
    }
    std::vector<double> values(num_attrs);
    for (size_t a = 0; a < num_attrs; ++a) {
      QFIX_ASSIGN_OR_RETURN(values[a], ParseNumber(fields[3 + a], li));
    }
    int64_t slot = db.AddTuple(std::move(values));
    db.slot(static_cast<size_t>(slot)).alive = alive;
  }
  return db;
}

Status WriteSnapshotFile(const relational::Database& db,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("snapshot: cannot open for writing: " +
                                   path);
  }
  out << WriteSnapshot(db);
  out.close();
  if (!out) return Status::InvalidArgument("snapshot: write failed: " + path);
  return Status::OK();
}

Result<relational::Database> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("snapshot: cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadSnapshot(buffer.str());
}

}  // namespace io
}  // namespace qfix
