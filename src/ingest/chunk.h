// Log chunks: the unit of structural sharing for incremental ingest.
//
// A registered dataset's query log is split into an ordered list of
// frozen, immutable chunks plus a small mutable tail (the queries
// appended since the last seal). Appending seals the current tail into
// a chunk and mints a derived dataset version that shares every prior
// chunk (and the D0 checkpoint) by reference — no tuple is ever copied.
//
// Each chunk carries:
//  - the log index range it covers ([begin, end)),
//  - a conservative summary of what it can touch: the attributes
//    written by its UPDATEs (SET-clause targets) and DELETEs (all
//    attributes — a repaired DELETE predicate could match anything),
//    plus the slot range its INSERTs occupy,
//  - a prefix signature: a hash chain over chunk ids anchored at the
//    originating registration's version, so two datasets (or two
//    registrations of one name) never share a signature by accident.
//
// The signature is what the encoding cache and the prefix-aware report
// cache key on: equal prefix signature == byte-identical log prefix.
#ifndef QFIX_INGEST_CHUNK_H_
#define QFIX_INGEST_CHUNK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/attr_set.h"
#include "relational/query.h"

namespace qfix {
namespace ingest {

/// Mixes `value` into `seed` (FNV-1a over the value's bytes,
/// order-sensitive). Local to ingest so the module stays below cache in
/// the dependency order; the constants match cache::HashCombine.
uint64_t MixHash(uint64_t seed, uint64_t value);

/// Mints a process-unique chunk id. Thread-safe; never returns 0.
uint64_t NextChunkId();

/// Signature of the empty chunk prefix of a registration: anchored at
/// the registration's version so re-registering a name (fresh version)
/// can never collide with signatures of the old lineage.
uint64_t EmptyPrefixSig(uint64_t root_version);

/// One frozen slice of a query log. Immutable after sealing; shared by
/// every dataset version whose log extends it.
struct LogChunk {
  /// Process-unique id (hash-chain ingredient).
  uint64_t id = 0;
  /// Covered log index range [begin, end), end exclusive.
  size_t begin = 0;
  size_t end = 0;
  /// Attributes this chunk's queries may write: UPDATE SET targets plus
  /// every attribute for chunks containing a DELETE (a repaired DELETE
  /// predicate could match any tuple, so liveness — and with it every
  /// attribute — is conservatively "written").
  AttrSet writes;
  bool has_delete = false;
  /// Slot range occupied by this chunk's INSERTs: the database had
  /// `slots_before` slots entering the chunk and `slots_after` leaving
  /// it, so tids in [slots_before, slots_after) are born here.
  size_t slots_before = 0;
  size_t slots_after = 0;
  /// Hash chain over [registration version, chunk ids...] up to and
  /// including this chunk (see EmptyPrefixSig).
  uint64_t prefix_sig = 0;
};

using LogChunkPtr = std::shared_ptr<const LogChunk>;

/// Seals log[begin, end) into a chunk. `slots_before` is the number of
/// database slots entering the chunk (D0 slots plus prior INSERTs);
/// `prev_sig` is the signature of the chunk prefix being extended
/// (EmptyPrefixSig for the first chunk). Requires begin < end.
LogChunkPtr SealChunk(const relational::QueryLog& log, size_t begin,
                      size_t end, size_t num_attrs, size_t slots_before,
                      uint64_t prev_sig);

/// Whether queries log[begin, end) could corrupt — or, repaired, could
/// fix — a complaint window described by its attribute set and tids:
/// true iff some query writes an attribute in `attrs`, some DELETE is
/// present (liveness), or some INSERT occupies a complained-about slot.
/// This is the tail-side counterpart of ChunkAffects, computed on the
/// fly because the tail has no sealed summary.
bool QueriesAffect(const relational::QueryLog& log, size_t begin, size_t end,
                   size_t slots_before, const AttrSet& attrs,
                   const std::vector<int64_t>& tids);

/// Sealed-chunk variant of QueriesAffect using the frozen summary.
bool ChunkAffects(const LogChunk& chunk, const AttrSet& attrs,
                  const std::vector<int64_t>& tids);

}  // namespace ingest
}  // namespace qfix

#endif  // QFIX_INGEST_CHUNK_H_
