#include "ingest/chunk.h"

#include <atomic>

#include "common/logging.h"

namespace qfix {
namespace ingest {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Queries in [begin, end) summarized into an existing chunk skeleton:
/// written attributes, DELETE presence, and the slot high-water mark.
void SummarizeQueries(const relational::QueryLog& log, size_t begin,
                      size_t end, AttrSet* writes, bool* has_delete,
                      size_t* slots) {
  for (size_t i = begin; i < end; ++i) {
    const relational::Query& q = log[i];
    switch (q.type()) {
      case relational::QueryType::kUpdate:
        for (const relational::SetClause& sc : q.set_clauses()) {
          writes->Insert(sc.attr);
        }
        break;
      case relational::QueryType::kDelete:
        // A repaired DELETE predicate could match any tuple: treat the
        // chunk as writing liveness (and thus every attribute).
        *has_delete = true;
        for (size_t a = 0; a < writes->capacity(); ++a) writes->Insert(a);
        break;
      case relational::QueryType::kInsert:
        // Covered by the [slots_before, slots_after) range instead of
        // the attribute summary: an INSERT only touches its own slot.
        ++*slots;
        break;
    }
  }
}

}  // namespace

uint64_t MixHash(uint64_t seed, uint64_t value) {
  uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t NextChunkId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t EmptyPrefixSig(uint64_t root_version) {
  return MixHash(kFnvOffset, root_version);
}

LogChunkPtr SealChunk(const relational::QueryLog& log, size_t begin,
                      size_t end, size_t num_attrs, size_t slots_before,
                      uint64_t prev_sig) {
  QFIX_CHECK(begin < end && end <= log.size())
      << "chunk range [" << begin << ", " << end << ") vs log size "
      << log.size();
  auto chunk = std::make_shared<LogChunk>();
  chunk->id = NextChunkId();
  chunk->begin = begin;
  chunk->end = end;
  chunk->writes = AttrSet(num_attrs);
  chunk->slots_before = slots_before;
  chunk->slots_after = slots_before;
  SummarizeQueries(log, begin, end, &chunk->writes, &chunk->has_delete,
                   &chunk->slots_after);
  chunk->prefix_sig = MixHash(prev_sig, chunk->id);
  return chunk;
}

bool QueriesAffect(const relational::QueryLog& log, size_t begin, size_t end,
                   size_t slots_before, const AttrSet& attrs,
                   const std::vector<int64_t>& tids) {
  AttrSet writes(attrs.capacity());
  bool has_delete = false;
  size_t slots_after = slots_before;
  SummarizeQueries(log, begin, end, &writes, &has_delete, &slots_after);
  if (has_delete) return true;
  if (writes.Intersects(attrs)) return true;
  for (int64_t tid : tids) {
    if (tid >= 0 && static_cast<size_t>(tid) >= slots_before &&
        static_cast<size_t>(tid) < slots_after) {
      return true;
    }
  }
  return false;
}

bool ChunkAffects(const LogChunk& chunk, const AttrSet& attrs,
                  const std::vector<int64_t>& tids) {
  if (chunk.has_delete) return true;
  if (chunk.writes.Intersects(attrs)) return true;
  for (int64_t tid : tids) {
    if (tid >= 0 && static_cast<size_t>(tid) >= chunk.slots_before &&
        static_cast<size_t>(tid) < chunk.slots_after) {
      return true;
    }
  }
  return false;
}

}  // namespace ingest
}  // namespace qfix
