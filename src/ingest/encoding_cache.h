// EncodingCache: memoized per-(dataset, chunk-prefix) replay states.
//
// The expensive part of re-encoding a grown log is walking every query
// over every tuple again. With constant folding on, the encoder folds
// all queries before the first *parameterized* one down to plain
// constant propagation — exactly what the relational executor computes.
// So the encoding of an unchanged chunk prefix is fully captured by one
// thing: the database state after replaying that prefix. This cache
// memoizes those states keyed by (dataset name, chunk prefix
// signature); the engine feeds a cached state into the encoder as the
// tuple initialization and starts its per-tuple query walk at the
// prefix boundary, re-encoding only the appended tail.
//
// Entries are deep Clones, never aliases into a Dataset: an aliasing
// shared_ptr would keep an old dataset version (and everything its
// lineage pins in the registry) alive for as long as the cache held the
// entry. Clone cost is paid once per (dataset, boundary) and the clone
// is O(N_D), independent of log length.
//
// Thread-safe. Misses compute outside the lock; concurrent identical
// computes race benignly (last write wins — the values are equal by
// construction, both are replays of the same immutable prefix).
#ifndef QFIX_INGEST_ENCODING_CACHE_H_
#define QFIX_INGEST_ENCODING_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ingest/chunk.h"
#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace ingest {

class EncodingCache {
 public:
  /// `max_bytes` bounds the sum of cached state bytes (tuple storage
  /// estimate plus a small per-entry overhead); least recently used
  /// entries are evicted beyond it.
  explicit EncodingCache(size_t max_bytes);

  EncodingCache(const EncodingCache&) = delete;
  EncodingCache& operator=(const EncodingCache&) = delete;

  /// The cached state for `prefix_sig`, or nullptr. Refreshes recency.
  std::shared_ptr<const relational::Database> Get(std::string_view dataset,
                                                  uint64_t prefix_sig);

  /// Publishes a state for `prefix_sig`. `state` must be an owned
  /// snapshot (a Clone), not an alias into a live Dataset. Last write
  /// wins on duplicate keys.
  void Put(std::string_view dataset, uint64_t prefix_sig,
           std::shared_ptr<const relational::Database> state);

  /// The replay state at the boundary after chunks[chunk_index].
  /// On a miss, walks back to the nearest cached shallower boundary in
  /// the same lineage (or `d0`), replays the gap forward, publishes the
  /// target boundary, and returns it. `log` must be the log the chunks
  /// were sealed from (any version extending them — chunk ranges index
  /// into it identically).
  std::shared_ptr<const relational::Database> GetOrCompute(
      std::string_view dataset, const std::vector<LogChunkPtr>& chunks,
      size_t chunk_index, const relational::Database& d0,
      const relational::QueryLog& log);

  /// Drops every entry of `dataset` (re-registration, eviction).
  void EraseDataset(std::string_view dataset);

  struct Stats {
    /// Prefix lookups served from a cached state (includes
    /// GetOrCompute calls that only had to extend a shallower hit).
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Replays performed to fill a miss (each covers only the gap from
    /// the nearest cached ancestor, not the whole prefix).
    uint64_t computes = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    size_t bytes = 0;
    size_t entries = 0;
    size_t capacity_bytes = 0;
  };
  Stats stats() const;

 private:
  struct Key {
    std::string dataset;
    uint64_t sig = 0;
    bool operator==(const Key& other) const {
      return sig == other.sig && dataset == other.dataset;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Entry {
    std::shared_ptr<const relational::Database> state;
    size_t bytes = 0;
    std::list<Key>::iterator lru_it;
  };

  /// Inserts/overwrites under mu_ and evicts past the budget.
  void PutLocked(Key key, std::shared_ptr<const relational::Database> state);

  size_t max_bytes_;
  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> map_;
  /// Front = most recently used.
  std::list<Key> lru_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t computes_ = 0;
  uint64_t inserts_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace ingest
}  // namespace qfix

#endif  // QFIX_INGEST_ENCODING_CACHE_H_
