#include "ingest/encoding_cache.h"

#include <utility>

#include "common/logging.h"
#include "relational/executor.h"

namespace qfix {
namespace ingest {

namespace {

/// Mirrors the registry's resident-size estimate so the two budgets
/// speak the same unit (a sizing knob, not an allocator contract).
constexpr size_t kPerTupleOverhead = 48;
constexpr size_t kPerEntryOverhead = 256;

size_t StateBytes(const relational::Database& db) {
  return kPerEntryOverhead +
         db.NumSlots() *
             (db.schema().num_attrs() * sizeof(double) + kPerTupleOverhead);
}

}  // namespace

size_t EncodingCache::KeyHash::operator()(const Key& key) const {
  uint64_t h = key.sig;
  for (char c : key.dataset) {
    h = MixHash(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return static_cast<size_t>(h);
}

EncodingCache::EncodingCache(size_t max_bytes) : max_bytes_(max_bytes) {}

std::shared_ptr<const relational::Database> EncodingCache::Get(
    std::string_view dataset, uint64_t prefix_sig) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(Key{std::string(dataset), prefix_sig});
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.state;
}

void EncodingCache::PutLocked(
    Key key, std::shared_ptr<const relational::Database> state) {
  const size_t new_bytes = StateBytes(*state);
  auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_ -= std::min(bytes_, it->second.bytes);
    it->second.state = std::move(state);
    it->second.bytes = new_bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  } else {
    lru_.push_front(key);
    Entry entry;
    entry.state = std::move(state);
    entry.bytes = new_bytes;
    entry.lru_it = lru_.begin();
    map_.emplace(std::move(key), std::move(entry));
  }
  bytes_ += new_bytes;
  ++inserts_;
  while (max_bytes_ > 0 && bytes_ > max_bytes_ && lru_.size() > 1) {
    auto victim = map_.find(lru_.back());
    QFIX_CHECK(victim != map_.end());
    bytes_ -= std::min(bytes_, victim->second.bytes);
    lru_.pop_back();
    map_.erase(victim);
    ++evictions_;
  }
}

void EncodingCache::Put(std::string_view dataset, uint64_t prefix_sig,
                        std::shared_ptr<const relational::Database> state) {
  if (state == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  PutLocked(Key{std::string(dataset), prefix_sig}, std::move(state));
}

std::shared_ptr<const relational::Database> EncodingCache::GetOrCompute(
    std::string_view dataset, const std::vector<LogChunkPtr>& chunks,
    size_t chunk_index, const relational::Database& d0,
    const relational::QueryLog& log) {
  QFIX_CHECK(chunk_index < chunks.size());
  const uint64_t target_sig = chunks[chunk_index]->prefix_sig;
  const size_t target_end = chunks[chunk_index]->end;
  QFIX_CHECK(target_end <= log.size());

  // Find the deepest cached boundary at or below the target.
  std::shared_ptr<const relational::Database> base;
  size_t base_end = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = chunk_index + 1; i-- > 0;) {
      auto it = map_.find(Key{std::string(dataset), chunks[i]->prefix_sig});
      if (it == map_.end()) continue;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      if (i == chunk_index) {
        ++hits_;
        return it->second.state;
      }
      base = it->second.state;
      base_end = chunks[i]->end;
      break;
    }
    ++misses_;
  }

  // Fill the gap outside the lock: replay only [base_end, target_end),
  // starting from the cached ancestor (or D0). Concurrent identical
  // computes race benignly — both replay the same immutable prefix.
  relational::Database state =
      base != nullptr ? base->Clone() : d0.Clone();
  for (size_t qi = base_end; qi < target_end; ++qi) {
    relational::ApplyQuery(log[qi], state);
  }
  auto published = std::make_shared<const relational::Database>(
      std::move(state));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++computes_;
    PutLocked(Key{std::string(dataset), target_sig}, published);
  }
  return published;
}

void EncodingCache::EraseDataset(std::string_view dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.dataset == dataset) {
      bytes_ -= std::min(bytes_, it->second.bytes);
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
      ++invalidations_;
    } else {
      ++it;
    }
  }
}

EncodingCache::Stats EncodingCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.computes = computes_;
  out.inserts = inserts_;
  out.evictions = evictions_;
  out.invalidations = invalidations_;
  out.bytes = bytes_;
  out.entries = map_.size();
  out.capacity_bytes = max_bytes_;
  return out;
}

}  // namespace ingest
}  // namespace qfix
