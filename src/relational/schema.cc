#include "relational/schema.h"

#include "common/logging.h"
#include "common/strings.h"

namespace qfix {
namespace relational {

Schema::Schema(std::vector<std::string> attr_names)
    : names_(std::move(attr_names)) {
  for (size_t i = 0; i < names_.size(); ++i) {
    auto [it, inserted] = index_.emplace(names_[i], i);
    QFIX_CHECK(inserted) << "duplicate attribute name " << names_[i];
  }
}

Schema Schema::WithDefaultNames(size_t num_attrs) {
  std::vector<std::string> names;
  names.reserve(num_attrs);
  for (size_t i = 0; i < num_attrs; ++i) {
    names.push_back(StringPrintf("a%zu", i));
  }
  return Schema(std::move(names));
}

Result<size_t> Schema::AttrIndex(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Status::NotFound("unknown attribute: " + std::string(name));
  }
  return it->second;
}

}  // namespace relational
}  // namespace qfix
