// Linear expressions over tuple attributes: sum_i coeff_i * attr_i + c.
//
// Both SET clauses and WHERE comparisons are restricted to linear
// combinations of attributes and constants (paper §3, problem scope).
#ifndef QFIX_RELATIONAL_LINEAR_EXPR_H_
#define QFIX_RELATIONAL_LINEAR_EXPR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/attr_set.h"

namespace qfix {
namespace relational {

class Schema;

/// A linear combination of attributes plus an additive constant.
class LinearExpr {
 public:
  /// One attribute term: coeff * attr.
  struct AttrTerm {
    size_t attr;
    double coeff;
  };

  LinearExpr() = default;

  /// Constructs the constant expression `c`.
  static LinearExpr Constant(double c);
  /// Constructs the single-attribute expression `attr`.
  static LinearExpr Attr(size_t attr);
  /// Constructs `coeff * attr + c`.
  static LinearExpr AttrScaled(size_t attr, double coeff, double c = 0.0);

  /// Adds `coeff * attr` to the expression (merging duplicates).
  void AddTerm(size_t attr, double coeff);
  /// Adds to the additive constant.
  void AddConstant(double c) { constant_ += c; }

  /// In-place sum / difference / scalar multiple.
  LinearExpr& operator+=(const LinearExpr& other);
  LinearExpr& operator-=(const LinearExpr& other);
  LinearExpr& operator*=(double k);

  double constant() const { return constant_; }
  /// Mutable access for repair application (ConvertQLog).
  void set_constant(double c) { constant_ = c; }

  const std::vector<AttrTerm>& terms() const { return terms_; }
  std::vector<AttrTerm>& mutable_terms() { return terms_; }

  /// True when the expression has no attribute terms.
  bool IsConstant() const { return terms_.empty(); }
  /// True when the expression is exactly one attribute with coeff 1 and
  /// no additive constant (an identity copy, e.g. SET a = a).
  bool IsIdentityOf(size_t attr) const;

  /// Evaluates against a tuple's attribute values.
  double Eval(const std::vector<double>& values) const;

  /// The set of attributes read by the expression.
  AttrSet ReadSet(size_t num_attrs) const;

  /// Renders e.g. "income * 0.3 + 5" using schema names.
  std::string ToString(const Schema& schema) const;

  bool operator==(const LinearExpr& other) const;

 private:
  std::vector<AttrTerm> terms_;
  double constant_ = 0.0;
};

}  // namespace relational
}  // namespace qfix

#endif  // QFIX_RELATIONAL_LINEAR_EXPR_H_
