#include "relational/linear_expr.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "relational/schema.h"

namespace qfix {
namespace relational {

LinearExpr LinearExpr::Constant(double c) {
  LinearExpr e;
  e.constant_ = c;
  return e;
}

LinearExpr LinearExpr::Attr(size_t attr) {
  return AttrScaled(attr, 1.0, 0.0);
}

LinearExpr LinearExpr::AttrScaled(size_t attr, double coeff, double c) {
  LinearExpr e;
  e.terms_.push_back({attr, coeff});
  e.constant_ = c;
  return e;
}

void LinearExpr::AddTerm(size_t attr, double coeff) {
  for (AttrTerm& t : terms_) {
    if (t.attr == attr) {
      t.coeff += coeff;
      return;
    }
  }
  terms_.push_back({attr, coeff});
}

LinearExpr& LinearExpr::operator+=(const LinearExpr& other) {
  for (const AttrTerm& t : other.terms_) AddTerm(t.attr, t.coeff);
  constant_ += other.constant_;
  return *this;
}

LinearExpr& LinearExpr::operator-=(const LinearExpr& other) {
  for (const AttrTerm& t : other.terms_) AddTerm(t.attr, -t.coeff);
  constant_ -= other.constant_;
  return *this;
}

LinearExpr& LinearExpr::operator*=(double k) {
  for (AttrTerm& t : terms_) t.coeff *= k;
  constant_ *= k;
  return *this;
}

bool LinearExpr::IsIdentityOf(size_t attr) const {
  return constant_ == 0.0 && terms_.size() == 1 && terms_[0].attr == attr &&
         terms_[0].coeff == 1.0;
}

double LinearExpr::Eval(const std::vector<double>& values) const {
  double v = constant_;
  for (const AttrTerm& t : terms_) {
    QFIX_CHECK(t.attr < values.size())
        << "attr " << t.attr << " out of range " << values.size();
    v += t.coeff * values[t.attr];
  }
  return v;
}

AttrSet LinearExpr::ReadSet(size_t num_attrs) const {
  AttrSet s(num_attrs);
  for (const AttrTerm& t : terms_) {
    if (t.coeff != 0.0) s.Insert(t.attr);
  }
  return s;
}

std::string LinearExpr::ToString(const Schema& schema) const {
  // Each part carries its sign so "+ -1 * owed" renders as "- owed".
  struct Part {
    bool negative;
    std::string text;
  };
  std::vector<Part> parts;
  for (const AttrTerm& t : terms_) {
    if (t.coeff == 0.0) continue;
    const std::string& name = schema.attr_name(t.attr);
    double mag = std::fabs(t.coeff);
    parts.push_back({t.coeff < 0.0,
                     mag == 1.0 ? name : name + " * " + FormatNumber(mag)});
  }
  if (constant_ != 0.0 || parts.empty()) {
    parts.push_back({constant_ < 0.0, FormatNumber(std::fabs(constant_))});
  }
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i == 0) {
      out = parts[i].negative ? "-" + parts[i].text : parts[i].text;
    } else {
      out += (parts[i].negative ? " - " : " + ") + parts[i].text;
    }
  }
  return out;
}

bool LinearExpr::operator==(const LinearExpr& other) const {
  if (constant_ != other.constant_) return false;
  auto sorted = [](std::vector<AttrTerm> v) {
    std::sort(v.begin(), v.end(), [](const AttrTerm& a, const AttrTerm& b) {
      return a.attr < b.attr;
    });
    v.erase(std::remove_if(v.begin(), v.end(),
                           [](const AttrTerm& t) { return t.coeff == 0.0; }),
            v.end());
    return v;
  };
  auto a = sorted(terms_), b = sorted(other.terms_);
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].attr != b[i].attr || a[i].coeff != b[i].coeff) return false;
  }
  return true;
}

}  // namespace relational
}  // namespace qfix
