#include "relational/query.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "relational/schema.h"

namespace qfix {
namespace relational {

const char* QueryTypeToString(QueryType type) {
  switch (type) {
    case QueryType::kUpdate:
      return "UPDATE";
    case QueryType::kInsert:
      return "INSERT";
    case QueryType::kDelete:
      return "DELETE";
  }
  return "?";
}

Query Query::Update(std::string table, std::vector<SetClause> set_clauses,
                    Predicate where) {
  QFIX_CHECK(!set_clauses.empty()) << "UPDATE without SET clauses";
  Query q;
  q.type_ = QueryType::kUpdate;
  q.table_ = std::move(table);
  q.set_clauses_ = std::move(set_clauses);
  q.where_ = std::move(where);
  return q;
}

Query Query::Insert(std::string table, std::vector<double> values) {
  Query q;
  q.type_ = QueryType::kInsert;
  q.table_ = std::move(table);
  q.insert_values_ = std::move(values);
  return q;
}

Query Query::Delete(std::string table, Predicate where) {
  Query q;
  q.type_ = QueryType::kDelete;
  q.table_ = std::move(table);
  q.where_ = std::move(where);
  return q;
}

bool Query::Matches(const std::vector<double>& values) const {
  if (type_ == QueryType::kInsert) return false;
  return where_.Eval(values);
}

std::vector<ParamRef> Query::Params() const {
  std::vector<ParamRef> out;
  switch (type_) {
    case QueryType::kInsert:
      for (size_t i = 0; i < insert_values_.size(); ++i) {
        out.push_back({ParamRef::Kind::kInsertValue, i, 0});
      }
      break;
    case QueryType::kUpdate:
      for (size_t i = 0; i < set_clauses_.size(); ++i) {
        out.push_back({ParamRef::Kind::kSetConstant, i, 0});
        const auto& terms = set_clauses_[i].expr.terms();
        for (size_t t = 0; t < terms.size(); ++t) {
          out.push_back({ParamRef::Kind::kSetCoeff, i, t});
        }
      }
      [[fallthrough]];
    case QueryType::kDelete: {
      size_t atom = 0;
      where_.VisitComparisons([&out, &atom](const Comparison&) {
        out.push_back({ParamRef::Kind::kWhereRhs, atom, 0});
        ++atom;
      });
      break;
    }
  }
  return out;
}

double Query::GetParam(const ParamRef& ref) const {
  switch (ref.kind) {
    case ParamRef::Kind::kInsertValue:
      QFIX_CHECK(ref.index < insert_values_.size());
      return insert_values_[ref.index];
    case ParamRef::Kind::kSetConstant:
      QFIX_CHECK(ref.index < set_clauses_.size());
      return set_clauses_[ref.index].expr.constant();
    case ParamRef::Kind::kSetCoeff:
      QFIX_CHECK(ref.index < set_clauses_.size());
      QFIX_CHECK(ref.term < set_clauses_[ref.index].expr.terms().size());
      return set_clauses_[ref.index].expr.terms()[ref.term].coeff;
    case ParamRef::Kind::kWhereRhs: {
      double value = 0.0;
      size_t atom = 0;
      bool found = false;
      where_.VisitComparisons([&](const Comparison& cmp) {
        if (atom++ == ref.index) {
          value = cmp.rhs;
          found = true;
        }
      });
      QFIX_CHECK(found) << "WHERE atom " << ref.index << " out of range";
      return value;
    }
  }
  QFIX_CHECK(false) << "unreachable";
  return 0.0;
}

void Query::SetParam(const ParamRef& ref, double value) {
  switch (ref.kind) {
    case ParamRef::Kind::kInsertValue:
      QFIX_CHECK(ref.index < insert_values_.size());
      insert_values_[ref.index] = value;
      return;
    case ParamRef::Kind::kSetConstant:
      QFIX_CHECK(ref.index < set_clauses_.size());
      set_clauses_[ref.index].expr.set_constant(value);
      return;
    case ParamRef::Kind::kSetCoeff:
      QFIX_CHECK(ref.index < set_clauses_.size());
      QFIX_CHECK(ref.term < set_clauses_[ref.index].expr.terms().size());
      set_clauses_[ref.index].expr.mutable_terms()[ref.term].coeff = value;
      return;
    case ParamRef::Kind::kWhereRhs: {
      size_t atom = 0;
      bool found = false;
      where_.VisitComparisons([&](Comparison& cmp) {
        if (atom++ == ref.index) {
          cmp.rhs = value;
          found = true;
        }
      });
      QFIX_CHECK(found) << "WHERE atom " << ref.index << " out of range";
      return;
    }
  }
}

AttrSet Query::DirectImpact(size_t num_attrs) const {
  AttrSet s(num_attrs);
  switch (type_) {
    case QueryType::kUpdate:
      for (const SetClause& sc : set_clauses_) s.Insert(sc.attr);
      break;
    case QueryType::kInsert:
    case QueryType::kDelete:
      for (size_t i = 0; i < num_attrs; ++i) s.Insert(i);
      break;
  }
  return s;
}

AttrSet Query::Dependency(size_t num_attrs) const {
  AttrSet s(num_attrs);
  if (type_ == QueryType::kInsert) return s;
  s.UnionWith(where_.ReadSet(num_attrs));
  if (type_ == QueryType::kUpdate) {
    for (const SetClause& sc : set_clauses_) {
      s.UnionWith(sc.expr.ReadSet(num_attrs));
    }
  }
  return s;
}

std::string Query::ToSql(const Schema& schema) const {
  switch (type_) {
    case QueryType::kInsert: {
      std::vector<std::string> vals;
      for (double v : insert_values_) vals.push_back(FormatNumber(v));
      return "INSERT INTO " + table_ + " VALUES (" + Join(vals, ", ") + ")";
    }
    case QueryType::kDelete: {
      std::string out = "DELETE FROM " + table_;
      if (!where_.IsTrue()) out += " WHERE " + where_.ToString(schema);
      return out;
    }
    case QueryType::kUpdate: {
      std::vector<std::string> sets;
      for (const SetClause& sc : set_clauses_) {
        sets.push_back(schema.attr_name(sc.attr) + " = " +
                       sc.expr.ToString(schema));
      }
      std::string out = "UPDATE " + table_ + " SET " + Join(sets, ", ");
      if (!where_.IsTrue()) out += " WHERE " + where_.ToString(schema);
      return out;
    }
  }
  return "?";
}

double LogDistance(const QueryLog& a, const QueryLog& b) {
  QFIX_CHECK(a.size() == b.size()) << "log size mismatch";
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    std::vector<ParamRef> pa = a[i].Params();
    std::vector<ParamRef> pb = b[i].Params();
    QFIX_CHECK(pa.size() == pb.size())
        << "query " << i << " has different parameter counts";
    for (size_t j = 0; j < pa.size(); ++j) {
      d += std::fabs(a[i].GetParam(pa[j]) - b[i].GetParam(pb[j]));
    }
  }
  return d;
}

}  // namespace relational
}  // namespace qfix
