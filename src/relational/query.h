// Update-workload queries: UPDATE, INSERT, DELETE.
//
// A Query models the paper's (mu_q, sigma_q) pair (§3.1): UPDATE carries a
// list of SET clauses (the modifier function) and a WHERE predicate (the
// conditional function); INSERT carries the new tuple's values; DELETE
// carries only a predicate. Queries expose their numeric constants as an
// ordered parameter list — the objects of repair (§3, log repair Q*).
#ifndef QFIX_RELATIONAL_QUERY_H_
#define QFIX_RELATIONAL_QUERY_H_

#include <string>
#include <vector>

#include "common/attr_set.h"
#include "relational/linear_expr.h"
#include "relational/predicate.h"

namespace qfix {
namespace relational {

class Schema;

enum class QueryType { kUpdate, kInsert, kDelete };

const char* QueryTypeToString(QueryType type);

/// One SET assignment: attr := expr(tuple).
struct SetClause {
  size_t attr;
  LinearExpr expr;
};

/// Identifies one numeric constant inside a query.
struct ParamRef {
  enum class Kind {
    /// Additive constant of a SET expression.
    kSetConstant,
    /// Multiplicative coefficient of a SET expression term.
    kSetCoeff,
    /// Right-hand-side constant of a WHERE comparison atom.
    kWhereRhs,
    /// One value of an INSERT.
    kInsertValue,
  };
  Kind kind;
  /// SET clause index, WHERE atom index (visit order), or INSERT slot.
  size_t index = 0;
  /// Term index within a SET expression (kSetCoeff only).
  size_t term = 0;
};

/// A single update-workload query over one table.
class Query {
 public:
  static Query Update(std::string table, std::vector<SetClause> set_clauses,
                      Predicate where);
  static Query Insert(std::string table, std::vector<double> values);
  static Query Delete(std::string table, Predicate where);

  QueryType type() const { return type_; }
  const std::string& table() const { return table_; }

  const std::vector<SetClause>& set_clauses() const { return set_clauses_; }
  std::vector<SetClause>& mutable_set_clauses() { return set_clauses_; }
  const Predicate& where() const { return where_; }
  Predicate& mutable_where() { return where_; }
  const std::vector<double>& insert_values() const { return insert_values_; }
  std::vector<double>& mutable_insert_values() { return insert_values_; }

  /// Evaluates sigma_q(t). INSERT queries have no condition (false: they
  /// act on no existing tuple).
  bool Matches(const std::vector<double>& values) const;

  /// The ordered list of the query's numeric constants. The order is
  /// deterministic so that d(Q, Q*) can align parameters pairwise.
  std::vector<ParamRef> Params() const;
  size_t NumParams() const { return Params().size(); }
  double GetParam(const ParamRef& ref) const;
  void SetParam(const ParamRef& ref, double value);

  /// Direct impact I(q): attributes written (Def. 7). INSERT and DELETE
  /// touch every attribute of the affected tuple.
  AttrSet DirectImpact(size_t num_attrs) const;

  /// Dependency P(q): attributes read. The paper's Def. 7 counts only the
  /// WHERE clause; we also include attributes read by SET expressions
  /// (e.g. SET pay = income - owed reads both), otherwise full-impact
  /// propagation (Alg. 2) would miss read-write chains through SET and
  /// query slicing would drop repair-relevant queries. Recorded as a
  /// deliberate deviation in DESIGN.md.
  AttrSet Dependency(size_t num_attrs) const;

  /// Renders the query as SQL text.
  std::string ToSql(const Schema& schema) const;

 private:
  QueryType type_ = QueryType::kUpdate;
  std::string table_;
  std::vector<SetClause> set_clauses_;   // kUpdate
  Predicate where_;                      // kUpdate / kDelete
  std::vector<double> insert_values_;    // kInsert
};

/// The query log Q = {q1, ..., qn} (index 0 = oldest).
using QueryLog = std::vector<Query>;

/// Sum over queries of |q_i.param_j - q*_i.param_j|: the paper's
/// normalized Manhattan distance d(Q, Q*) (§4.3). Logs must be
/// structurally identical.
double LogDistance(const QueryLog& a, const QueryLog& b);

}  // namespace relational
}  // namespace qfix

#endif  // QFIX_RELATIONAL_QUERY_H_
