// Relation schema: an ordered list of named numeric attributes.
//
// The paper's data model (§3.1) is a single relation with numeric
// attributes A1..Am; categorical data is out of scope for the distance
// function, so every attribute is a double here.
#ifndef QFIX_RELATIONAL_SCHEMA_H_
#define QFIX_RELATIONAL_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace qfix {
namespace relational {

/// Attribute metadata for one relation.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from attribute names (all numeric). Names must be
  /// unique; duplicates trip a QFIX_CHECK.
  explicit Schema(std::vector<std::string> attr_names);

  /// Convenience: attributes named a0..a{n-1}, matching the synthetic
  /// workload generator.
  static Schema WithDefaultNames(size_t num_attrs);

  size_t num_attrs() const { return names_.size(); }
  const std::string& attr_name(size_t i) const { return names_[i]; }
  const std::vector<std::string>& attr_names() const { return names_; }

  /// Index of a named attribute, or NotFound.
  Result<size_t> AttrIndex(std::string_view name) const;

  bool operator==(const Schema& other) const {
    return names_ == other.names_;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace relational
}  // namespace qfix

#endif  // QFIX_RELATIONAL_SCHEMA_H_
