// Query-log execution: D_i = q_i(q_{i-1}(... q_1(D_0))).
#ifndef QFIX_RELATIONAL_EXECUTOR_H_
#define QFIX_RELATIONAL_EXECUTOR_H_

#include <vector>

#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace relational {

/// Applies one query to `db` in place. UPDATE evaluates all SET clauses
/// against the pre-update tuple (simultaneous assignment); DELETE marks
/// tuples dead but keeps their slots; INSERT appends a live tuple.
void ApplyQuery(const Query& query, Database& db);

/// Runs the whole log on a copy of `d0` and returns the final state D_n.
Database ExecuteLog(const QueryLog& log, const Database& d0);

/// Returns all states D_0 ... D_n (log.size() + 1 entries). Used by tests
/// and the DecTree baseline; QFix itself only needs D_0 and D_n (§3.1).
std::vector<Database> ExecuteLogStates(const QueryLog& log,
                                       const Database& d0);

}  // namespace relational
}  // namespace qfix

#endif  // QFIX_RELATIONAL_EXECUTOR_H_
