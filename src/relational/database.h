// In-memory single-relation database with stable row identities.
//
// Tuples keep a stable `tid` across database states: replaying either the
// clean or the corrupted log on the same D0 yields aligned tids, which is
// how true complaint sets are derived by state diffing (§7.1). Deleted
// tuples stay in their slot with alive == false so alignment survives
// DELETE queries.
#ifndef QFIX_RELATIONAL_DATABASE_H_
#define QFIX_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "relational/schema.h"

namespace qfix {
namespace relational {

/// One row: stable id, liveness, and attribute values.
struct Tuple {
  int64_t tid = -1;
  bool alive = true;
  std::vector<double> values;
};

/// A single-relation database state (one of the paper's D_i).
class Database {
 public:
  Database() = default;
  Database(Schema schema, std::string table_name)
      : schema_(std::move(schema)), table_name_(std::move(table_name)) {}

  const Schema& schema() const { return schema_; }
  const std::string& table_name() const { return table_name_; }

  /// Appends a live tuple; returns its tid (== slot index).
  int64_t AddTuple(std::vector<double> values) {
    QFIX_CHECK(values.size() == schema_.num_attrs())
        << "tuple arity " << values.size() << " vs schema "
        << schema_.num_attrs();
    int64_t tid = static_cast<int64_t>(tuples_.size());
    tuples_.push_back(Tuple{tid, true, std::move(values)});
    return tid;
  }

  /// Total slots including dead tuples (tids are slot indexes).
  size_t NumSlots() const { return tuples_.size(); }

  /// Number of live tuples.
  size_t NumAlive() const {
    size_t n = 0;
    for (const Tuple& t : tuples_) n += t.alive ? 1 : 0;
    return n;
  }

  Tuple& slot(size_t i) {
    QFIX_CHECK(i < tuples_.size());
    return tuples_[i];
  }
  const Tuple& slot(size_t i) const {
    QFIX_CHECK(i < tuples_.size());
    return tuples_[i];
  }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& mutable_tuples() { return tuples_; }

 private:
  Schema schema_;
  std::string table_name_;
  std::vector<Tuple> tuples_;
};

}  // namespace relational
}  // namespace qfix

#endif  // QFIX_RELATIONAL_DATABASE_H_
