// In-memory single-relation database with stable row identities.
//
// Tuples keep a stable `tid` across database states: replaying either the
// clean or the corrupted log on the same D0 yields aligned tids, which is
// how true complaint sets are derived by state diffing (§7.1). Deleted
// tuples stay in their slot with alive == false so alignment survives
// DELETE queries.
#ifndef QFIX_RELATIONAL_DATABASE_H_
#define QFIX_RELATIONAL_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "relational/schema.h"

namespace qfix {
namespace relational {

/// One row: stable id, liveness, and attribute values.
struct Tuple {
  int64_t tid = -1;
  bool alive = true;
  std::vector<double> values;
};

/// A single-relation database state (one of the paper's D_i).
class Database {
 public:
  Database() = default;
  Database(Schema schema, std::string table_name)
      : schema_(std::move(schema)), table_name_(std::move(table_name)) {}

  // Copies are counted (see CopyCount()): the serving hot path is
  // contractually zero-copy — requests share immutable snapshots — so
  // every implicit deep copy of a database state is either a bug or
  // belongs on the explicit Clone() path.
  Database(const Database& other)
      : schema_(other.schema_),
        table_name_(other.table_name_),
        tuples_(other.tuples_) {
    copy_count_.fetch_add(1, std::memory_order_relaxed);
  }
  Database& operator=(const Database& other) {
    if (this != &other) {
      schema_ = other.schema_;
      table_name_ = other.table_name_;
      tuples_ = other.tuples_;
      copy_count_.fetch_add(1, std::memory_order_relaxed);
    }
    return *this;
  }
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// An intentional deep copy, excluded from CopyCount(): replaying a
  /// log onto a working state is solver work that scales with the
  /// solve, not request plumbing that scales with traffic.
  Database Clone() const {
    Database out;
    out.schema_ = schema_;
    out.table_name_ = table_name_;
    out.tuples_ = tuples_;
    return out;
  }

  /// Test hook: process-wide number of implicit deep copies
  /// (copy-construction/assignment) since start. The zero-copy serving
  /// tests assert this does not move across a request.
  static int64_t CopyCount() {
    return copy_count_.load(std::memory_order_relaxed);
  }

  const Schema& schema() const { return schema_; }
  const std::string& table_name() const { return table_name_; }

  /// Appends a live tuple; returns its tid (== slot index).
  int64_t AddTuple(std::vector<double> values) {
    QFIX_CHECK(values.size() == schema_.num_attrs())
        << "tuple arity " << values.size() << " vs schema "
        << schema_.num_attrs();
    int64_t tid = static_cast<int64_t>(tuples_.size());
    tuples_.push_back(Tuple{tid, true, std::move(values)});
    return tid;
  }

  /// Total slots including dead tuples (tids are slot indexes).
  size_t NumSlots() const { return tuples_.size(); }

  /// Number of live tuples.
  size_t NumAlive() const {
    size_t n = 0;
    for (const Tuple& t : tuples_) n += t.alive ? 1 : 0;
    return n;
  }

  Tuple& slot(size_t i) {
    QFIX_CHECK(i < tuples_.size());
    return tuples_[i];
  }
  const Tuple& slot(size_t i) const {
    QFIX_CHECK(i < tuples_.size());
    return tuples_[i];
  }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& mutable_tuples() { return tuples_; }

 private:
  inline static std::atomic<int64_t> copy_count_{0};
  Schema schema_;
  std::string table_name_;
  std::vector<Tuple> tuples_;
};

}  // namespace relational
}  // namespace qfix

#endif  // QFIX_RELATIONAL_DATABASE_H_
