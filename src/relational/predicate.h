// WHERE-clause predicates: AND/OR trees of linear comparisons.
//
// This models the paper's conditional function sigma_q(t): conjunctions
// and disjunctions of predicates whose sides are linear combinations of
// constants and attributes (§3, problem scope).
#ifndef QFIX_RELATIONAL_PREDICATE_H_
#define QFIX_RELATIONAL_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/attr_set.h"
#include "relational/linear_expr.h"

namespace qfix {
namespace relational {

class Schema;

enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNeq };

const char* CmpOpToString(CmpOp op);

/// One atomic comparison, normalized to `lhs <op> rhs_const`.
///
/// The right-hand constant is the atom's repairable parameter (the digit-
/// transposed 85700 of the running example lives here). Constants folded
/// into the lhs are structural and are not repaired.
struct Comparison {
  LinearExpr lhs;
  CmpOp op = CmpOp::kLe;
  double rhs = 0.0;

  bool Eval(const std::vector<double>& values) const;
};

/// A boolean combination of comparisons.
class Predicate {
 public:
  enum class Kind { kTrue, kComparison, kAnd, kOr };

  /// The always-true predicate (UPDATE/DELETE without WHERE).
  Predicate() : kind_(Kind::kTrue) {}

  static Predicate True() { return Predicate(); }
  static Predicate Atom(Comparison cmp);
  static Predicate And(std::vector<Predicate> children);
  static Predicate Or(std::vector<Predicate> children);

  /// Convenience for the common single-range case `lo <= attr <= hi`.
  static Predicate Between(size_t attr, double lo, double hi);

  Kind kind() const { return kind_; }
  bool IsTrue() const { return kind_ == Kind::kTrue; }

  const Comparison& comparison() const;
  Comparison& mutable_comparison();
  const std::vector<Predicate>& children() const { return children_; }
  std::vector<Predicate>& mutable_children() { return children_; }

  /// Evaluates sigma(t) over a tuple's attribute values.
  bool Eval(const std::vector<double>& values) const;

  /// All attributes read anywhere in the tree.
  AttrSet ReadSet(size_t num_attrs) const;

  /// Number of comparison atoms in the tree.
  size_t NumAtoms() const;

  /// Applies `fn` to every comparison atom (mutable), in a deterministic
  /// left-to-right order. Used for parameter collection and repair.
  template <typename Fn>
  void VisitComparisons(Fn&& fn) {
    if (kind_ == Kind::kComparison) {
      fn(cmp_);
      return;
    }
    for (Predicate& c : children_) c.VisitComparisons(fn);
  }
  template <typename Fn>
  void VisitComparisons(Fn&& fn) const {
    if (kind_ == Kind::kComparison) {
      fn(cmp_);
      return;
    }
    for (const Predicate& c : children_) c.VisitComparisons(fn);
  }

  /// Renders SQL, e.g. "income >= 85700 AND (a1 = 3 OR a2 <= 7)".
  std::string ToString(const Schema& schema) const;

 private:
  Kind kind_;
  Comparison cmp_;                  // kComparison only
  std::vector<Predicate> children_; // kAnd / kOr only
};

}  // namespace relational
}  // namespace qfix

#endif  // QFIX_RELATIONAL_PREDICATE_H_
