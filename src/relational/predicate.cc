#include "relational/predicate.h"

#include "common/logging.h"
#include "common/strings.h"
#include "relational/schema.h"

namespace qfix {
namespace relational {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNeq:
      return "<>";
  }
  return "?";
}

bool Comparison::Eval(const std::vector<double>& values) const {
  double v = lhs.Eval(values);
  switch (op) {
    case CmpOp::kLt:
      return v < rhs;
    case CmpOp::kLe:
      return v <= rhs;
    case CmpOp::kGt:
      return v > rhs;
    case CmpOp::kGe:
      return v >= rhs;
    case CmpOp::kEq:
      return v == rhs;
    case CmpOp::kNeq:
      return v != rhs;
  }
  return false;
}

Predicate Predicate::Atom(Comparison cmp) {
  Predicate p;
  p.kind_ = Kind::kComparison;
  p.cmp_ = std::move(cmp);
  return p;
}

Predicate Predicate::And(std::vector<Predicate> children) {
  QFIX_CHECK(!children.empty()) << "AND of zero predicates";
  if (children.size() == 1) return std::move(children[0]);
  Predicate p;
  p.kind_ = Kind::kAnd;
  p.children_ = std::move(children);
  return p;
}

Predicate Predicate::Or(std::vector<Predicate> children) {
  QFIX_CHECK(!children.empty()) << "OR of zero predicates";
  if (children.size() == 1) return std::move(children[0]);
  Predicate p;
  p.kind_ = Kind::kOr;
  p.children_ = std::move(children);
  return p;
}

Predicate Predicate::Between(size_t attr, double lo, double hi) {
  return And({Atom({LinearExpr::Attr(attr), CmpOp::kGe, lo}),
              Atom({LinearExpr::Attr(attr), CmpOp::kLe, hi})});
}

const Comparison& Predicate::comparison() const {
  QFIX_CHECK(kind_ == Kind::kComparison);
  return cmp_;
}

Comparison& Predicate::mutable_comparison() {
  QFIX_CHECK(kind_ == Kind::kComparison);
  return cmp_;
}

bool Predicate::Eval(const std::vector<double>& values) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kComparison:
      return cmp_.Eval(values);
    case Kind::kAnd:
      for (const Predicate& c : children_) {
        if (!c.Eval(values)) return false;
      }
      return true;
    case Kind::kOr:
      for (const Predicate& c : children_) {
        if (c.Eval(values)) return true;
      }
      return false;
  }
  return false;
}

AttrSet Predicate::ReadSet(size_t num_attrs) const {
  AttrSet s(num_attrs);
  VisitComparisons([&s, num_attrs](const Comparison& cmp) {
    s.UnionWith(cmp.lhs.ReadSet(num_attrs));
  });
  return s;
}

size_t Predicate::NumAtoms() const {
  size_t n = 0;
  VisitComparisons([&n](const Comparison&) { ++n; });
  return n;
}

std::string Predicate::ToString(const Schema& schema) const {
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kComparison:
      return cmp_.lhs.ToString(schema) + " " + CmpOpToString(cmp_.op) + " " +
             FormatNumber(cmp_.rhs);
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = kind_ == Kind::kAnd ? " AND " : " OR ";
      std::vector<std::string> parts;
      for (const Predicate& c : children_) {
        // AND binds tighter than OR, so only an OR child under an AND
        // parent needs parentheses.
        bool needs_parens = kind_ == Kind::kAnd && c.kind() == Kind::kOr;
        parts.push_back(needs_parens ? "(" + c.ToString(schema) + ")"
                                     : c.ToString(schema));
      }
      return Join(parts, sep);
    }
  }
  return "?";
}

}  // namespace relational
}  // namespace qfix
