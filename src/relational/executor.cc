#include "relational/executor.h"

namespace qfix {
namespace relational {

void ApplyQuery(const Query& query, Database& db) {
  const size_t num_attrs = db.schema().num_attrs();
  switch (query.type()) {
    case QueryType::kInsert: {
      QFIX_CHECK(query.insert_values().size() == num_attrs)
          << "INSERT arity mismatch";
      db.AddTuple(query.insert_values());
      return;
    }
    case QueryType::kDelete: {
      for (Tuple& t : db.mutable_tuples()) {
        if (t.alive && query.where().Eval(t.values)) t.alive = false;
      }
      return;
    }
    case QueryType::kUpdate: {
      for (Tuple& t : db.mutable_tuples()) {
        if (!t.alive || !query.where().Eval(t.values)) continue;
        // Simultaneous assignment: evaluate every SET expression against
        // the pre-update values before writing any of them.
        std::vector<double> updated = t.values;
        for (const SetClause& sc : query.set_clauses()) {
          QFIX_CHECK(sc.attr < num_attrs) << "SET attr out of range";
          updated[sc.attr] = sc.expr.Eval(t.values);
        }
        t.values = std::move(updated);
      }
      return;
    }
  }
}

Database ExecuteLog(const QueryLog& log, const Database& d0) {
  // Clone, not copy: replay working states are intentional deep copies
  // and must not trip the zero-copy serving assertion (database.h).
  Database db = d0.Clone();
  for (const Query& q : log) ApplyQuery(q, db);
  return db;
}

std::vector<Database> ExecuteLogStates(const QueryLog& log,
                                       const Database& d0) {
  std::vector<Database> states;
  states.reserve(log.size() + 1);
  states.push_back(d0);
  for (const Query& q : log) {
    states.push_back(states.back());
    ApplyQuery(q, states.back());
  }
  return states;
}

}  // namespace relational
}  // namespace qfix
