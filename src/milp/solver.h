// Branch & bound MILP solver (the role CPLEX plays in the paper).
//
// Depth-first search over binary/integer variable fixings, with bound
// propagation at every node, LP relaxation bounds from the bounded-
// variable simplex (simplex.h), a most-fractional branching rule, and a
// root rounding heuristic for early incumbents. With `jobs > 1` the
// search runs on a work-stealing thread pool (src/exec): shallow branch
// siblings are packaged as subtree tasks that idle workers steal, and
// the incumbent objective is shared through an atomic bound so every
// worker prunes against the global best without taking a lock.
#ifndef QFIX_MILP_SOLVER_H_
#define QFIX_MILP_SOLVER_H_

#include <cstdint>
#include <vector>

#include "exec/cancellation.h"
#include "milp/model.h"
#include "milp/simplex.h"
#include "obs/trace.h"

namespace qfix {
namespace exec {
class ThreadPool;
}  // namespace exec
namespace milp {

enum class MilpStatus {
  /// Optimality proven.
  kOptimal,
  /// A feasible solution was found but a limit stopped the proof.
  kFeasible,
  /// The model has no feasible solution.
  kInfeasible,
  /// A limit was hit before any feasible solution was found.
  kTimeLimit,
  /// The instance exceeds the solver's size budget (mirrors the paper's
  /// observation that `basic` collapses beyond ~50 queries).
  kTooLarge,
  /// The LP relaxation is unbounded (indicates an encoding bug).
  kUnbounded,
};

/// True if the status carries a usable assignment.
inline bool HasSolution(MilpStatus s) {
  return s == MilpStatus::kOptimal || s == MilpStatus::kFeasible;
}

const char* MilpStatusToString(MilpStatus status);

struct MilpStats {
  int64_t nodes = 0;
  int64_t lp_iterations = 0;
  /// Elapsed time, measured via MonotonicSeconds() (common/timer.h) so
  /// per-worker stats taken on different threads are comparable.
  double wall_seconds = 0.0;
  /// Subtree tasks handed to the work-stealing pool (0 in serial runs).
  int64_t spawned_subtrees = 0;
  /// Times a new best feasible solution was installed (across workers).
  int64_t incumbent_updates = 0;
  /// Worker threads the search actually used.
  int workers = 1;
  /// Binaries fixed by root probing (0 when probing is disabled).
  int probe_fixed = 0;
  /// Bounds tightened by root probing's union step.
  int probe_tightened = 0;
  /// Size of the model as handed to the solver (reported by the benches
  /// alongside time, since problem size is the scale-free difficulty
  /// measure when comparing against the paper's CPLEX runs).
  int32_t num_vars = 0;
  int32_t num_constraints = 0;
  int32_t num_integer_vars = 0;

  /// Folds a per-worker search record into this one: the search
  /// counters add up. Timing and the root-only fields (probe_*, model
  /// sizes) are owned by the top-level Solve(), not by workers.
  void MergeFrom(const MilpStats& worker) {
    nodes += worker.nodes;
    lp_iterations += worker.lp_iterations;
    spawned_subtrees += worker.spawned_subtrees;
    incumbent_updates += worker.incumbent_updates;
  }
};

struct MilpSolution {
  MilpStatus status = MilpStatus::kTimeLimit;
  double objective = 0.0;
  /// Values for all model variables; empty when !HasSolution(status).
  std::vector<double> x;
  MilpStats stats;
};

/// Which fractional variable branch & bound splits on.
enum class BranchRule {
  /// The variable closest to 0.5 fractionality (cheap, default).
  kMostFractional,
  /// Pseudo-cost branching: prefer variables that historically degraded
  /// the LP bound the most per unit of fractionality (product rule).
  /// Pays off on models where a few binaries control most of the
  /// structure; falls back to fractionality until a variable has been
  /// observed at least once in each direction.
  kPseudoCost,
};

struct MilpOptions {
  /// Wall-clock budget for one Solve() call; <= 0 disables the limit.
  double time_limit_seconds = 60.0;
  /// Node budget for the search tree.
  int64_t max_nodes = 2'000'000;
  /// A solution counts as integral when every integer variable is within
  /// this distance of an integer.
  double int_tol = 1e-6;
  /// Run global bound propagation before the search.
  bool enable_presolve = true;
  /// Fixpoint rounds for each propagation call.
  int propagation_rounds = 20;
  /// Probe every binary at the root (presolve.h ProbeBinaries): fixes
  /// indicator binaries that big-M rows hide from plain propagation.
  /// Skipped automatically on models larger than `probe_max_binaries`.
  bool enable_probing = true;
  /// Full probing sweeps at the root.
  int probe_passes = 1;
  /// Probing costs O(binaries * propagation); beyond this many unfixed
  /// binaries the root LP is cheaper than the probe, so skip it.
  int probe_max_binaries = 512;
  /// Try rounding the root LP solution into an incumbent.
  bool enable_rounding_heuristic = true;
  /// Variable selection rule at branch nodes.
  BranchRule branch_rule = BranchRule::kMostFractional;
  /// Worker threads for branch & bound. 1 (default) runs the
  /// deterministic serial search; > 1 runs parallel branch & bound on a
  /// work-stealing pool (src/exec) — workers steal open subtree nodes
  /// and share the incumbent through an atomic bound; 0 means "one per
  /// hardware thread". Parallel search visits nodes in a different
  /// order, so node counts vary run to run, but proven-optimal
  /// objectives are identical to the serial search.
  int jobs = 1;
  /// Optional caller-owned pool the parallel search runs on instead of
  /// building (and tearing down) its own — the thread-churn fix for
  /// callers that issue many solves per request (incremental diagnosis,
  /// the batch service). Non-owning; must outlive the Solve() call. When
  /// set, `jobs` is ignored: parallelism follows the pool's worker count,
  /// and a deterministic (<= 0 workers) pool runs the serial search.
  exec::ThreadPool* pool = nullptr;
  /// External cancellation, polled at node boundaries like the time
  /// limit (a cancelled search reports kTimeLimit/kFeasible). Lets a
  /// service shut down without waiting out in-flight solves. The
  /// default token never fires.
  exec::CancellationToken cancel;
  /// Optional request trace the solve records solver-internal child
  /// spans into: "presolve", "root_lp", zero-width "incumbent_update"
  /// marks, and sampled "node_batch" spans (one per kTraceNodeBatch
  /// nodes per worker, capped at kMaxNodeBatchSpans per solve so span
  /// overhead stays bounded at high node rates). Runtime-only wiring
  /// like `pool` and `cancel` — never part of any cache fingerprint.
  /// Non-owning; must outlive the Solve() call. nullptr disables span
  /// recording entirely (the default; zero cost).
  obs::TraceContext* trace = nullptr;
  /// Index in `trace` of the enclosing span (the server's "solve"
  /// phase); kNoParent leaves solver spans at top level.
  size_t trace_parent_span = obs::TraceContext::kNoParent;
  SimplexOptions lp;
};

/// Nodes per sampled "node_batch" trace span (per worker).
inline constexpr int64_t kTraceNodeBatch = 256;
/// Cap on "node_batch" spans one Solve() may record.
inline constexpr int64_t kMaxNodeBatchSpans = 32;

/// Solves a MILP to optimality (or best effort under limits).
class MilpSolver {
 public:
  explicit MilpSolver(MilpOptions options = MilpOptions())
      : options_(options) {}

  /// Minimizes the model's objective. The returned solution is always
  /// verified against the original model before being reported.
  MilpSolution Solve(const Model& model) const;

 private:
  MilpOptions options_;
};

}  // namespace milp
}  // namespace qfix

#endif  // QFIX_MILP_SOLVER_H_
