#include "milp/model.h"

#include <algorithm>
#include <cmath>

namespace qfix {
namespace milp {

VarId Model::AddVariable(VarType type, double lb, double ub,
                         std::string name) {
  QFIX_CHECK(lb <= ub) << "variable '" << name << "' has lb " << lb
                       << " > ub " << ub;
  types_.push_back(type);
  lb_.push_back(lb);
  ub_.push_back(ub);
  names_.push_back(std::move(name));
  objective_.push_back(0.0);
  if (type != VarType::kContinuous) ++num_integer_vars_;
  return static_cast<VarId>(types_.size() - 1);
}

void Model::AddConstraint(LinearTerms terms, Sense sense, double rhs) {
  // Merge duplicate variables so downstream code can assume distinctness.
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  LinearTerms merged;
  merged.reserve(terms.size());
  for (const Term& t : terms) {
    QFIX_CHECK(t.var >= 0 && t.var < NumVars())
        << "constraint references unknown var " << t.var;
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(t);
    }
  }
  // Drop exact-zero coefficients produced by cancellation.
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const Term& t) { return t.coeff == 0.0; }),
               merged.end());
  constraints_.push_back(Constraint{std::move(merged), sense, rhs});
}

void Model::AddObjectiveTerm(VarId var, double coeff) {
  QFIX_CHECK(var >= 0 && var < NumVars());
  objective_[var] += coeff;
}

Status Model::Validate() const {
  for (VarId v = 0; v < NumVars(); ++v) {
    if (std::isnan(lb_[v]) || std::isnan(ub_[v])) {
      return Status::InvalidArgument("NaN bound on variable " + names_[v]);
    }
    if (lb_[v] > ub_[v]) {
      return Status::InvalidArgument("crossed bounds on " + names_[v]);
    }
    if (types_[v] == VarType::kBinary && (lb_[v] < 0.0 || ub_[v] > 1.0)) {
      return Status::InvalidArgument("binary out of [0,1]: " + names_[v]);
    }
    if (!std::isfinite(objective_[v])) {
      return Status::InvalidArgument("non-finite objective coeff on " +
                                     names_[v]);
    }
  }
  for (const Constraint& c : constraints_) {
    if (!std::isfinite(c.rhs)) {
      return Status::InvalidArgument("non-finite constraint rhs");
    }
    for (const Term& t : c.terms) {
      if (!std::isfinite(t.coeff)) {
        return Status::InvalidArgument("non-finite coefficient");
      }
    }
  }
  return Status::OK();
}

double Model::EvalObjective(const std::vector<double>& x) const {
  QFIX_CHECK(x.size() == objective_.size());
  double obj = objective_constant_;
  for (size_t i = 0; i < x.size(); ++i) obj += objective_[i] * x[i];
  return obj;
}

bool Model::IsFeasible(const std::vector<double>& x, double tol) const {
  if (x.size() != static_cast<size_t>(NumVars())) return false;
  for (VarId v = 0; v < NumVars(); ++v) {
    if (x[v] < lb_[v] - tol || x[v] > ub_[v] + tol) return false;
    if (types_[v] != VarType::kContinuous &&
        std::fabs(x[v] - std::round(x[v])) > tol) {
      return false;
    }
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const Term& t : c.terms) lhs += t.coeff * x[t.var];
    // Scale the tolerance with the row magnitude so big-M rows do not
    // spuriously fail on accumulated rounding — but cap the scaling so
    // that a huge big-M coefficient cannot mask a genuine violation.
    double scale = std::max(1.0, std::fabs(c.rhs));
    for (const Term& t : c.terms) {
      scale = std::max(scale, std::fabs(t.coeff * x[t.var]));
    }
    scale = std::min(scale, 1e6);
    double slack = lhs - c.rhs;
    switch (c.sense) {
      case Sense::kLe:
        if (slack > tol * scale) return false;
        break;
      case Sense::kGe:
        if (slack < -tol * scale) return false;
        break;
      case Sense::kEq:
        if (std::fabs(slack) > tol * scale) return false;
        break;
    }
  }
  return true;
}

}  // namespace milp
}  // namespace qfix
