// Free-format MPS export/import for MILP models.
//
// MPS is the oldest and most universally accepted interchange format for
// linear and mixed-integer programs (every solver CPLEX ever competed
// with reads it). Alongside the LP format (lp_format.h) this lets QFix
// encodings travel to any external solver and lets externally produced
// instances drive the built-in solver in tests.
//
// Dialect notes (documented because MPS has decades of them):
//  * free format: whitespace-separated fields, not column positions;
//  * objective constant: carried as an RHS entry on the objective row
//    with negated sign (the de-facto convention);
//  * binaries: written as BV bounds inside INTORG/INTEND markers;
//  * every variable gets explicit bounds (MPS's integer-default-[0,1]
//    quirk never applies to our output);
//  * RANGES and SOS sections are not part of Model and are rejected.
#ifndef QFIX_MILP_MPS_FORMAT_H_
#define QFIX_MILP_MPS_FORMAT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "milp/model.h"

namespace qfix {
namespace milp {

/// Renders `model` in free MPS format. Variable names are sanitized to
/// alphanumerics/underscore and deduplicated (same policy as the LP
/// writer).
std::string WriteMpsFormat(const Model& model,
                           const std::string& problem_name = "qfix");

/// Parses a free-format MPS document. Variables appear in the returned
/// model in COLUMNS-section order; maximization (OBJSENSE MAX) is
/// negated into minimization form.
Result<Model> ReadMpsFormat(std::string_view text);

/// File convenience wrappers (same error mapping as lp_format.h).
Status WriteMpsFile(const Model& model, const std::string& path);
Result<Model> ReadMpsFile(const std::string& path);

}  // namespace milp
}  // namespace qfix

#endif  // QFIX_MILP_MPS_FORMAT_H_
