// Bound propagation ("presolve") for MILP models.
//
// Propagation tightens variable domains by reasoning about constraint
// activity bounds. It is run once globally before branch & bound and once
// per search node; on QFix encodings — long chains of big-M implications —
// it fixes most indicator binaries without any simplex work, which is what
// makes the from-scratch solver practical.
#ifndef QFIX_MILP_PRESOLVE_H_
#define QFIX_MILP_PRESOLVE_H_

#include <vector>

#include "common/status.h"
#include "milp/model.h"

namespace qfix {
namespace milp {

/// One undo record: variable `var` had bounds [lb, ub] before a change.
struct BoundChange {
  VarId var;
  double lb;
  double ub;
};

/// A stack of bound changes used to rewind per-node tightenings.
using BoundTrail = std::vector<BoundChange>;

/// Tightens `domains` in place until fixpoint (or `max_rounds`).
///
/// If `trail` is non-null every modification is recorded so the caller can
/// rewind with RewindTrail(). Returns Infeasible when some constraint
/// cannot be satisfied under the tightened domains.
Status PropagateBounds(const Model& model, Domains& domains, int max_rounds,
                       BoundTrail* trail);

/// Restores `domains` to the state captured by `trail` entries at index
/// >= `mark`, then truncates the trail to `mark`.
void RewindTrail(Domains& domains, BoundTrail& trail, size_t mark);

/// Outcome accounting for ProbeBinaries.
struct ProbeResult {
  /// Binaries probed (both 0 and 1 sides propagated).
  int probed = 0;
  /// Binaries fixed because one side propagated to a contradiction.
  int fixed_binaries = 0;
  /// Bounds of other variables tightened by taking the union of the two
  /// probe sides (valid in every feasible solution).
  int tightened_bounds = 0;
};

/// Probing: for every unfixed binary b, tentatively fix b=0 and b=1 and
/// propagate each side.
///
///  * both sides infeasible          -> the model is infeasible;
///  * exactly one side infeasible    -> b is fixed to the other value;
///  * both sides feasible            -> every variable's global bounds
///    shrink to the union of the two propagated side intervals.
///
/// Big-M indicator rows — the bulk of QFix encodings — propagate weakly
/// in isolation; probing recovers much of the implied structure before
/// branch & bound starts. Runs up to `max_passes` full sweeps or until a
/// sweep makes no change. Modifications are recorded on `trail` when it
/// is non-null. Returns Infeasible when a contradiction is proven.
Status ProbeBinaries(const Model& model, Domains& domains,
                     int propagation_rounds, int max_passes,
                     BoundTrail* trail, ProbeResult* result);

}  // namespace milp
}  // namespace qfix

#endif  // QFIX_MILP_PRESOLVE_H_
