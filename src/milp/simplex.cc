#include "milp/simplex.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace qfix {
namespace milp {
namespace {

// Variable status within the simplex. Nonbasic variables rest at a bound
// (or at zero when free); basic variables carry the residual values.
enum class VState : uint8_t { kAtLower, kAtUpper, kFree, kBasic };

class Simplex {
 public:
  Simplex(const Model& model, const Domains& domains,
          const SimplexOptions& options)
      : model_(model), options_(options) {
    n_ = model.NumVars();
    m_ = model.NumConstraints();
    num_cols_ = n_ + m_;        // structural + slack
    total_ = num_cols_ + m_;    // + artificial
    (void)domains;
  }

  LpResult Run(const Domains& domains);

 private:
  void BuildProblem(const Domains& domains);
  void InstallInitialBasis();
  // Runs the primal loop with the given cost vector. Returns kOptimal,
  // kUnbounded, or kIterLimit.
  LpStatus PrimalLoop(const std::vector<double>& costs);
  // Re-derives the basic variable values from the nonbasic assignment to
  // curb accumulated floating-point drift.
  void RecomputeBasics();
  // Pivots artificial variables out of the basis after phase 1 (or fixes
  // them on redundant rows).
  void DriveOutArtificials();

  bool IsArtificial(int j) const { return j >= num_cols_; }

  double ColumnDot(const std::vector<double>& y, int j) const {
    double d = 0.0;
    for (const auto& [row, coeff] : cols_[j]) d += y[row] * coeff;
    return d;
  }

  const Model& model_;
  SimplexOptions options_;
  int n_ = 0;         // structural variables
  int m_ = 0;         // rows
  int num_cols_ = 0;  // structural + slack
  int total_ = 0;     // + artificials

  // Column-sparse matrix over all variables (structural, slack, artificial).
  std::vector<std::vector<std::pair<int, double>>> cols_;
  std::vector<double> lb_, ub_;
  std::vector<double> b_;       // perturbed right-hand sides
  std::vector<double> true_b_;  // original right-hand sides
  std::vector<double> phase2_cost_;

  std::vector<VState> state_;
  std::vector<double> xval_;
  std::vector<int> basis_;    // basis_[r] = variable basic in row r
  std::vector<double> binv_;  // m_ x m_ row-major basis inverse

  int64_t iterations_ = 0;
  int64_t max_iterations_ = 0;
  WallTimer timer_;
};

void Simplex::BuildProblem(const Domains& domains) {
  cols_.assign(total_, {});
  lb_.assign(total_, 0.0);
  ub_.assign(total_, 0.0);
  phase2_cost_.assign(total_, 0.0);
  b_.assign(m_, 0.0);

  for (VarId v = 0; v < n_; ++v) {
    lb_[v] = domains.lb[v];
    ub_[v] = domains.ub[v];
    phase2_cost_[v] = model_.objective()[v];
  }
  for (int i = 0; i < m_; ++i) {
    const Constraint& c = model_.constraint(i);
    for (const Term& t : c.terms) {
      cols_[t.var].push_back({i, t.coeff});
    }
    b_[i] = c.rhs;
    int slack = n_ + i;
    cols_[slack].push_back({i, 1.0});
    switch (c.sense) {
      case Sense::kLe:
        lb_[slack] = 0.0;
        ub_[slack] = kInf;
        break;
      case Sense::kGe:
        lb_[slack] = -kInf;
        ub_[slack] = 0.0;
        break;
      case Sense::kEq:
        lb_[slack] = 0.0;
        ub_[slack] = 0.0;
        break;
    }
  }
  // Artificial columns are installed by InstallInitialBasis once the
  // initial residuals (and hence their signs) are known.

  // Anti-degeneracy: perturb each *inequality* right-hand side by a
  // deterministic, row-specific epsilon in the loosening direction.
  // Big-M encodings are massively degenerate and otherwise stall the
  // primal simplex in long runs of zero-step pivots. Loosening keeps
  // every originally-feasible point feasible, and equality rows stay
  // exact (perturbing them desynchronizes redundant equalities into
  // false infeasibility). The perturbation is removed before the final
  // solution is reported (Run() restores true_b_ and re-derives the
  // basic values), so the returned point is exact for the original
  // problem.
  true_b_ = b_;
  for (int i = 0; i < m_; ++i) {
    Sense sense = model_.constraint(i).sense;
    if (sense == Sense::kEq) continue;
    uint64_t h = static_cast<uint64_t>(i + 1) * 0x9E3779B97F4A7C15ull;
    double unit =
        static_cast<double>(h >> 11) / 9007199254740992.0;  // [0, 1)
    double delta = (1e-8 + 1e-7 * unit) * (1.0 + std::fabs(b_[i]));
    b_[i] += sense == Sense::kLe ? delta : -delta;
  }
}

void Simplex::InstallInitialBasis() {
  state_.assign(total_, VState::kAtLower);
  xval_.assign(total_, 0.0);
  basis_.assign(m_, -1);
  binv_.assign(static_cast<size_t>(m_) * m_, 0.0);

  // Nonbasic variables start at their bound nearest to zero (or zero when
  // free); this keeps initial activities small in big-M models.
  for (int j = 0; j < num_cols_; ++j) {
    bool lb_fin = std::isfinite(lb_[j]);
    bool ub_fin = std::isfinite(ub_[j]);
    if (lb_fin && ub_fin) {
      if (std::fabs(lb_[j]) <= std::fabs(ub_[j])) {
        state_[j] = VState::kAtLower;
        xval_[j] = lb_[j];
      } else {
        state_[j] = VState::kAtUpper;
        xval_[j] = ub_[j];
      }
    } else if (lb_fin) {
      state_[j] = VState::kAtLower;
      xval_[j] = lb_[j];
    } else if (ub_fin) {
      state_[j] = VState::kAtUpper;
      xval_[j] = ub_[j];
    } else {
      state_[j] = VState::kFree;
      xval_[j] = 0.0;
    }
  }

  // Residuals determine the artificial columns' signs so that every
  // artificial starts basic with a non-negative value.
  std::vector<double> residual = b_;
  for (int j = 0; j < num_cols_; ++j) {
    if (xval_[j] == 0.0) continue;
    for (const auto& [row, coeff] : cols_[j]) {
      residual[row] -= coeff * xval_[j];
    }
  }
  for (int i = 0; i < m_; ++i) {
    int art = num_cols_ + i;
    double sign = residual[i] >= 0.0 ? 1.0 : -1.0;
    cols_[art] = {{i, sign}};
    lb_[art] = 0.0;
    ub_[art] = kInf;
    state_[art] = VState::kBasic;
    xval_[art] = std::fabs(residual[i]);
    basis_[i] = art;
    binv_[static_cast<size_t>(i) * m_ + i] = sign;
  }
}

void Simplex::RecomputeBasics() {
  std::vector<double> residual = b_;
  for (int j = 0; j < total_; ++j) {
    if (state_[j] == VState::kBasic || xval_[j] == 0.0) continue;
    for (const auto& [row, coeff] : cols_[j]) {
      residual[row] -= coeff * xval_[j];
    }
  }
  for (int r = 0; r < m_; ++r) {
    double v = 0.0;
    const double* binv_row = &binv_[static_cast<size_t>(r) * m_];
    for (int i = 0; i < m_; ++i) v += binv_row[i] * residual[i];
    xval_[basis_[r]] = v;
  }
}

LpStatus Simplex::PrimalLoop(const std::vector<double>& costs) {
  std::vector<double> y(m_);
  std::vector<double> alpha(m_);
  int degenerate_streak = 0;
  bool bland = false;

  while (true) {
    if (iterations_ >= max_iterations_) return LpStatus::kIterLimit;
    // Wall-clock cutoff: checked cheaply every 64 iterations.
    if (options_.time_limit_seconds > 0.0 && (iterations_ & 63) == 0 &&
        timer_.ElapsedSeconds() > options_.time_limit_seconds) {
      return LpStatus::kIterLimit;
    }
    ++iterations_;

    // Pricing vector y = c_B' * Binv.
    std::fill(y.begin(), y.end(), 0.0);
    for (int r = 0; r < m_; ++r) {
      double cb = costs[basis_[r]];
      if (cb == 0.0) continue;
      const double* binv_row = &binv_[static_cast<size_t>(r) * m_];
      for (int i = 0; i < m_; ++i) y[i] += cb * binv_row[i];
    }

    // Pricing: find the entering variable.
    int enter = -1;
    double enter_dir = 0.0;
    double best_viol = options_.opt_tol;
    for (int j = 0; j < total_; ++j) {
      if (state_[j] == VState::kBasic) continue;
      if (lb_[j] == ub_[j]) continue;  // fixed: cannot move
      double d = costs[j] - ColumnDot(y, j);
      double viol = 0.0;
      double dir = 0.0;
      if ((state_[j] == VState::kAtLower || state_[j] == VState::kFree) &&
          d < -options_.opt_tol) {
        viol = -d;
        dir = 1.0;
      } else if ((state_[j] == VState::kAtUpper ||
                  state_[j] == VState::kFree) &&
                 d > options_.opt_tol) {
        viol = d;
        dir = -1.0;
      } else {
        continue;
      }
      if (bland) {
        enter = j;
        enter_dir = dir;
        break;  // Bland: first improving index
      }
      if (viol > best_viol) {
        best_viol = viol;
        enter = j;
        enter_dir = dir;
      }
    }
    if (enter < 0) return LpStatus::kOptimal;

    // FTRAN: alpha = Binv * A_enter.
    std::fill(alpha.begin(), alpha.end(), 0.0);
    for (const auto& [row, coeff] : cols_[enter]) {
      for (int r = 0; r < m_; ++r) {
        alpha[r] += binv_[static_cast<size_t>(r) * m_ + row] * coeff;
      }
    }

    // Ratio test with bound flips.
    const double sigma = enter_dir;
    double t_bound = kInf;  // step at which the entering var hits its
                            // opposite bound (bound flip)
    if (std::isfinite(lb_[enter]) && std::isfinite(ub_[enter])) {
      t_bound = ub_[enter] - lb_[enter];
    }
    double best_t = kInf;
    int leave_row = -1;
    bool leave_at_upper = false;
    for (int r = 0; r < m_; ++r) {
      double rate = -sigma * alpha[r];  // d x_B[r] / d t
      if (std::fabs(rate) <= options_.pivot_tol) continue;
      int bv = basis_[r];
      double t_r;
      bool at_upper;
      if (rate > 0.0) {
        if (!std::isfinite(ub_[bv])) continue;
        t_r = (ub_[bv] - xval_[bv]) / rate;
        at_upper = true;
      } else {
        if (!std::isfinite(lb_[bv])) continue;
        t_r = (lb_[bv] - xval_[bv]) / rate;
        at_upper = false;
      }
      if (t_r < 0.0) t_r = 0.0;  // numerical guard
      bool better;
      if (bland) {
        better = t_r < best_t - 1e-12 ||
                 (t_r <= best_t + 1e-12 && leave_row >= 0 &&
                  basis_[r] < basis_[leave_row]);
      } else {
        // Prefer larger pivot magnitude among (near-)ties for stability.
        better = t_r < best_t - 1e-9 ||
                 (t_r <= best_t + 1e-9 &&
                  (leave_row < 0 ||
                   std::fabs(alpha[r]) > std::fabs(alpha[leave_row])));
      }
      if (better) {
        best_t = t_r;
        leave_row = r;
        leave_at_upper = at_upper;
      }
    }

    double t = std::min(best_t, t_bound);
    if (!std::isfinite(t)) return LpStatus::kUnbounded;

    if (t <= 1e-12) {
      if (++degenerate_streak > 64) bland = true;
    } else {
      degenerate_streak = 0;
      bland = false;
    }

    // Apply the step to the basic variables.
    if (t != 0.0) {
      for (int r = 0; r < m_; ++r) {
        if (alpha[r] != 0.0) xval_[basis_[r]] -= sigma * t * alpha[r];
      }
    }

    if (t_bound <= best_t) {
      // Bound flip: the entering variable jumps to its other bound.
      if (sigma > 0) {
        xval_[enter] = ub_[enter];
        state_[enter] = VState::kAtUpper;
      } else {
        xval_[enter] = lb_[enter];
        state_[enter] = VState::kAtLower;
      }
      continue;
    }

    // Basis change.
    int leave_var = basis_[leave_row];
    // Snap the leaving variable exactly onto the bound it reached.
    xval_[leave_var] = leave_at_upper ? ub_[leave_var] : lb_[leave_var];
    state_[leave_var] =
        leave_at_upper ? VState::kAtUpper : VState::kAtLower;
    if (IsArtificial(leave_var)) {
      ub_[leave_var] = 0.0;  // artificials never re-enter
      state_[leave_var] = VState::kAtLower;
      xval_[leave_var] = 0.0;
    }

    xval_[enter] += sigma * t;
    state_[enter] = VState::kBasic;
    basis_[leave_row] = enter;

    // Product-form update of the dense basis inverse.
    double piv = alpha[leave_row];
    QFIX_CHECK(std::fabs(piv) > options_.pivot_tol * 0.01)
        << "simplex pivot collapse " << piv;
    double* lr = &binv_[static_cast<size_t>(leave_row) * m_];
    double inv_piv = 1.0 / piv;
    for (int i = 0; i < m_; ++i) lr[i] *= inv_piv;
    for (int r = 0; r < m_; ++r) {
      if (r == leave_row) continue;
      double factor = alpha[r];
      if (factor == 0.0) continue;
      double* row = &binv_[static_cast<size_t>(r) * m_];
      for (int i = 0; i < m_; ++i) row[i] -= factor * lr[i];
    }

    // Periodically re-derive basic values to curb drift.
    if (iterations_ % 512 == 0) RecomputeBasics();
  }
}

void Simplex::DriveOutArtificials() {
  std::vector<double> tableau_row(m_);
  for (int r = 0; r < m_; ++r) {
    if (!IsArtificial(basis_[r])) continue;
    // Tableau row r over candidate columns: (Binv * A)_{r,j}.
    const double* binv_row = &binv_[static_cast<size_t>(r) * m_];
    int pivot_col = -1;
    double pivot_val = 0.0;
    for (int j = 0; j < num_cols_; ++j) {
      if (state_[j] == VState::kBasic) continue;
      double entry = 0.0;
      for (const auto& [row, coeff] : cols_[j]) {
        entry += binv_row[row] * coeff;
      }
      if (std::fabs(entry) > 1e-7) {
        pivot_col = j;
        pivot_val = entry;
        break;
      }
    }
    if (pivot_col < 0) {
      // Redundant row: pin the artificial at zero and leave it basic.
      ub_[basis_[r]] = 0.0;
      continue;
    }
    // Degenerate pivot (step 0): swap the artificial out of the basis.
    int art = basis_[r];
    state_[art] = VState::kAtLower;
    xval_[art] = 0.0;
    ub_[art] = 0.0;
    double entering_value = xval_[pivot_col];
    state_[pivot_col] = VState::kBasic;
    xval_[pivot_col] = entering_value;
    basis_[r] = pivot_col;

    // Update Binv for the degenerate pivot.
    std::fill(tableau_row.begin(), tableau_row.end(), 0.0);
    for (const auto& [row, coeff] : cols_[pivot_col]) {
      for (int rr = 0; rr < m_; ++rr) {
        tableau_row[rr] += binv_[static_cast<size_t>(rr) * m_ + row] * coeff;
      }
    }
    double* lr = &binv_[static_cast<size_t>(r) * m_];
    double inv_piv = 1.0 / pivot_val;
    for (int i = 0; i < m_; ++i) lr[i] *= inv_piv;
    for (int rr = 0; rr < m_; ++rr) {
      if (rr == r) continue;
      double factor = tableau_row[rr];
      if (factor == 0.0) continue;
      double* row = &binv_[static_cast<size_t>(rr) * m_];
      for (int i = 0; i < m_; ++i) row[i] -= factor * lr[i];
    }
    RecomputeBasics();
  }
}

LpResult Simplex::Run(const Domains& domains) {
  LpResult result;
  if (m_ > options_.max_rows) {
    result.status = LpStatus::kTooLarge;
    return result;
  }
  // Crossed domains (possible after aggressive branching) are infeasible.
  for (VarId v = 0; v < n_; ++v) {
    if (domains.lb[v] > domains.ub[v]) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
  }

  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 5000 + 40 * static_cast<int64_t>(m_);

  BuildProblem(domains);

  if (m_ == 0) {
    // No constraints: each variable sits at whichever bound its cost
    // prefers.
    result.x.resize(n_);
    double obj = model_.objective_constant();
    for (VarId v = 0; v < n_; ++v) {
      double c = phase2_cost_[v];
      double val;
      if (c > 0.0) {
        val = lb_[v];
      } else if (c < 0.0) {
        val = ub_[v];
      } else {
        val = std::isfinite(lb_[v]) ? lb_[v]
                                    : (std::isfinite(ub_[v]) ? ub_[v] : 0.0);
      }
      if (!std::isfinite(val)) {
        result.status = LpStatus::kUnbounded;
        return result;
      }
      result.x[v] = val;
      obj += c * val;
    }
    result.objective = obj;
    result.status = LpStatus::kOptimal;
    return result;
  }

  InstallInitialBasis();

  // Phase 1: minimize the sum of artificial variables.
  std::vector<double> phase1_cost(total_, 0.0);
  for (int j = num_cols_; j < total_; ++j) phase1_cost[j] = 1.0;
  LpStatus p1 = PrimalLoop(phase1_cost);
  result.iterations = iterations_;
  if (p1 == LpStatus::kIterLimit || p1 == LpStatus::kUnbounded) {
    // Phase 1 is bounded below by zero, so kUnbounded signals numerical
    // trouble; report as iteration limit.
    result.status = LpStatus::kIterLimit;
    return result;
  }
  RecomputeBasics();
  double infeas = 0.0;
  for (int j = num_cols_; j < total_; ++j) infeas += std::fabs(xval_[j]);
  if (infeas > options_.feas_tol * (1.0 + std::fabs(infeas))) {
    result.status = LpStatus::kInfeasible;
    return result;
  }
  DriveOutArtificials();
  for (int j = num_cols_; j < total_; ++j) ub_[j] = 0.0;

  // Phase 2: the real objective.
  LpStatus p2 = PrimalLoop(phase2_cost_);
  result.iterations = iterations_;
  if (p2 == LpStatus::kOptimal) {
    // Remove the anti-degeneracy perturbation: the optimal basis stays
    // optimal (dual feasibility is independent of b), and re-deriving
    // the basic values against the true right-hand sides makes the
    // reported point exact.
    b_ = true_b_;
    RecomputeBasics();
  }

  result.x.assign(xval_.begin(), xval_.begin() + n_);
  double obj = model_.objective_constant();
  for (VarId v = 0; v < n_; ++v) obj += phase2_cost_[v] * result.x[v];
  result.objective = obj;
  result.status = p2;
  return result;
}

// Builds a reduced LP: variables fixed by branching/propagation are
// substituted into the rows, rows that become vacuous under the variable
// bounds (most big-M rows whose indicator got fixed) are dropped, and
// the remaining problem is renumbered densely. On branch & bound nodes
// deep in the tree this typically shrinks the LP by an order of
// magnitude.
struct ReducedLp {
  Model model;
  Domains domains;
  std::vector<VarId> orig_of_reduced;  // reduced var -> original var
  bool infeasible = false;
};

ReducedLp ReduceLp(const Model& model, const Domains& domains) {
  ReducedLp out;
  const int32_t n = model.NumVars();
  std::vector<VarId> reduced_of_orig(n, -1);
  for (VarId v = 0; v < n; ++v) {
    if (domains.lb[v] > domains.ub[v]) {
      out.infeasible = true;
      return out;
    }
    if (domains.lb[v] == domains.ub[v]) continue;  // fixed: substitute
    reduced_of_orig[v] = out.model.AddVariable(
        model.type(v), domains.lb[v], domains.ub[v], std::string());
    out.orig_of_reduced.push_back(v);
    double c = model.objective()[v];
    if (c != 0.0) {
      out.model.AddObjectiveTerm(reduced_of_orig[v], c);
    }
  }
  double fixed_obj = model.objective_constant();
  for (VarId v = 0; v < n; ++v) {
    if (reduced_of_orig[v] < 0) {
      fixed_obj += model.objective()[v] * domains.lb[v];
    }
  }
  out.model.AddObjectiveConstant(fixed_obj);

  for (const Constraint& c : model.constraints()) {
    LinearTerms terms;
    double rhs = c.rhs;
    double min_act = 0.0, max_act = 0.0;
    bool min_inf = false, max_inf = false;
    for (const Term& t : c.terms) {
      VarId rv = reduced_of_orig[t.var];
      if (rv < 0) {
        rhs -= t.coeff * domains.lb[t.var];
        continue;
      }
      terms.push_back({rv, t.coeff});
      double lo = t.coeff > 0 ? t.coeff * domains.lb[t.var]
                              : t.coeff * domains.ub[t.var];
      double hi = t.coeff > 0 ? t.coeff * domains.ub[t.var]
                              : t.coeff * domains.lb[t.var];
      if (std::isinf(lo)) {
        min_inf = true;
      } else {
        min_act += lo;
      }
      if (std::isinf(hi)) {
        max_inf = true;
      } else {
        max_act += hi;
      }
    }
    const double tol = 1e-9 * (1.0 + std::fabs(rhs));
    if (terms.empty()) {
      bool ok = true;
      switch (c.sense) {
        case Sense::kLe:
          ok = 0.0 <= rhs + tol;
          break;
        case Sense::kGe:
          ok = 0.0 >= rhs - tol;
          break;
        case Sense::kEq:
          ok = std::fabs(rhs) <= tol;
          break;
      }
      if (!ok) {
        out.infeasible = true;
        return out;
      }
      continue;
    }
    // Vacuity: the row cannot be violated under the current bounds.
    bool vacuous = false;
    switch (c.sense) {
      case Sense::kLe:
        vacuous = !max_inf && max_act <= rhs + tol;
        break;
      case Sense::kGe:
        vacuous = !min_inf && min_act >= rhs - tol;
        break;
      case Sense::kEq:
        vacuous = false;
        break;
    }
    if (vacuous) continue;
    out.model.AddConstraint(std::move(terms), c.sense, rhs);
  }
  out.domains = out.model.InitialDomains();
  return out;
}

}  // namespace

LpResult SolveLp(const Model& model, const Domains& domains,
                 const SimplexOptions& options) {
  QFIX_CHECK(domains.size() == static_cast<size_t>(model.NumVars()))
      << "domains size mismatch";
  ReducedLp reduced = ReduceLp(model, domains);
  if (reduced.infeasible) {
    LpResult r;
    r.status = LpStatus::kInfeasible;
    return r;
  }
  Simplex simplex(reduced.model, reduced.domains, options);
  LpResult inner = simplex.Run(reduced.domains);
  // Expand the solution back to the original variable space.
  LpResult out;
  out.status = inner.status;
  out.iterations = inner.iterations;
  out.objective = inner.objective;
  if (inner.status == LpStatus::kOptimal) {
    out.x.resize(model.NumVars());
    for (VarId v = 0; v < model.NumVars(); ++v) out.x[v] = domains.lb[v];
    for (size_t rv = 0; rv < reduced.orig_of_reduced.size(); ++rv) {
      out.x[reduced.orig_of_reduced[rv]] = inner.x[rv];
    }
  }
  return out;
}

}  // namespace milp
}  // namespace qfix
