#include "milp/lp_format.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/strings.h"

namespace qfix {
namespace milp {

namespace {

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

// True if `c` is allowed anywhere in an LP-format identifier. We restrict
// to the conservative subset every LP reader accepts.
bool IsLpNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// LP-format reserved words (section headers and the `free` bound
// keyword), lower-cased. Variables must not collide with these: the
// format is newline-insensitive, so a variable named "end" would
// terminate the file mid-expression.
bool IsReservedWord(const std::string& lower) {
  static const char* const kReserved[] = {
      "minimize", "minimum", "min", "maximize", "maximum", "max",
      "subject",  "such",    "to",  "that",     "st",      "bounds",
      "bound",    "binaries", "binary", "bin",  "generals", "general",
      "gen",      "integers", "integer", "int", "end",      "free",
      "inf",      "infinity",
  };
  for (const char* word : kReserved) {
    if (lower == word) return true;
  }
  return false;
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

// True if `name` can be used verbatim: non-empty, allowed charset, does
// not start with a digit or '.', and does not look like the start of a
// number in scientific notation ("e12", "E3.5").
bool IsValidLpName(const std::string& name) {
  if (name.empty()) return false;
  char first = name[0];
  if (std::isdigit(static_cast<unsigned char>(first)) != 0 || first == '.') {
    return false;
  }
  for (char c : name) {
    if (!IsLpNameChar(c)) return false;
  }
  if ((first == 'e' || first == 'E') && name.size() > 1 &&
      (std::isdigit(static_cast<unsigned char>(name[1])) != 0 ||
       name[1] == '.')) {
    return false;
  }
  return !IsReservedWord(ToLower(name));
}

// Maps every model variable to a unique LP-safe name.
std::vector<std::string> SanitizeNames(const Model& model, bool* any_renamed) {
  std::vector<std::string> out(model.NumVars());
  std::unordered_set<std::string> used;
  *any_renamed = false;
  for (VarId v = 0; v < model.NumVars(); ++v) {
    std::string candidate = model.name(v);
    for (char& c : candidate) {
      if (!IsLpNameChar(c)) c = '_';
    }
    if (!IsValidLpName(candidate)) candidate = "v_" + candidate;
    if (!IsValidLpName(candidate) || used.count(candidate) > 0) {
      candidate = StringPrintf("v%d", v);
    }
    // v%d can still collide with a user name that happens to be "v7";
    // append the id until unique (terminates: ids are unique).
    while (used.count(candidate) > 0) {
      candidate += StringPrintf("_%d", v);
    }
    if (candidate != model.name(v)) *any_renamed = true;
    used.insert(candidate);
    out[v] = std::move(candidate);
  }
  return out;
}

// Formats a coefficient/bound so it round-trips through the reader.
std::string LpNumber(double v) {
  if (v == kInf) return "inf";
  if (v == -kInf) return "-inf";
  // %.17g is lossless for doubles; trim when a shorter form suffices.
  char shortest[64];
  std::snprintf(shortest, sizeof(shortest), "%.15g", v);
  if (std::strtod(shortest, nullptr) == v) return shortest;
  char exact[64];
  std::snprintf(exact, sizeof(exact), "%.17g", v);
  return exact;
}

// Appends "<sign> <coeff> <name>" to the current expression line, wrapping
// when the line grows past `wrap`.
class ExprWriter {
 public:
  ExprWriter(std::string* out, size_t wrap) : out_(out), wrap_(wrap) {}

  void Term(double coeff, const std::string& name) {
    std::string piece;
    double mag = std::fabs(coeff);
    piece += coeff < 0 ? "- " : (first_ ? "" : "+ ");
    if (mag != 1.0) {
      piece += LpNumber(mag);
      piece += ' ';
    }
    piece += name;
    Append(piece);
  }

  void Constant(double value) {
    if (value == 0.0) return;
    std::string piece = value < 0 ? "- " : (first_ ? "" : "+ ");
    piece += LpNumber(std::fabs(value));
    Append(piece);
  }

  // Emits "0" for empty expressions (LP rows must not be blank).
  void FinishExpr() {
    if (first_) Append("0");
  }

 private:
  void Append(const std::string& piece) {
    if (!first_ && column_ + piece.size() + 1 > wrap_) {
      *out_ += "\n   ";
      column_ = 3;
    } else if (!first_) {
      *out_ += ' ';
      ++column_;
    }
    *out_ += piece;
    column_ += piece.size();
    first_ = false;
  }

  std::string* out_;
  size_t wrap_;
  size_t column_ = 0;
  bool first_ = true;
};

const char* SenseToLp(Sense s) {
  switch (s) {
    case Sense::kLe:
      return "<=";
    case Sense::kGe:
      return ">=";
    case Sense::kEq:
      return "=";
  }
  return "<=";
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

enum class TokKind { kName, kNumber, kOp, kColon, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // kName / kOp
  double number = 0;  // kNumber
  size_t line = 0;    // 1-based, for diagnostics
};

// Splits LP text into tokens, dropping comments ('\' to end of line).
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<Token> Next() {
    SkipWhitespaceAndComments();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) {
      t.kind = TokKind::kEnd;
      return t;
    }
    char c = text_[pos_];
    if (c == ':') {
      ++pos_;
      t.kind = TokKind::kColon;
      return t;
    }
    if (c == '<' || c == '>' || c == '=') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '=') ++pos_;
      t.kind = TokKind::kOp;
      t.text = (c == '=') ? "=" : std::string(1, c) + "=";
      return t;
    }
    if (c == '+' || c == '-') {
      ++pos_;
      t.kind = TokKind::kOp;
      t.text = std::string(1, c);
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
      return LexNumber();
    }
    if (IsLpNameChar(c)) {
      size_t start = pos_;
      while (pos_ < text_.size() && IsLpNameChar(text_[pos_])) ++pos_;
      t.text = std::string(text_.substr(start, pos_ - start));
      // "inf"/"infinity" are numeric literals in bounds sections.
      std::string lower = Lower(t.text);
      if (lower == "inf" || lower == "infinity") {
        t.kind = TokKind::kNumber;
        t.number = kInf;
        return t;
      }
      t.kind = TokKind::kName;
      return t;
    }
    return Status::InvalidArgument(StringPrintf(
        "lp: unexpected character '%c' on line %zu", c, line_));
  }

  static std::string Lower(std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    return s;
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '\\') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Result<Token> LexNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.')) {
      ++pos_;
    }
    // Optional exponent.
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      size_t mark = pos_;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
          ++pos_;
        }
      } else {
        pos_ = mark;  // 'e' belongs to a following name, not the number
      }
    }
    Token t;
    t.kind = TokKind::kNumber;
    t.line = line_;
    std::string digits(text_.substr(start, pos_ - start));
    char* end = nullptr;
    t.number = std::strtod(digits.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument(StringPrintf(
          "lp: malformed number '%s' on line %zu", digits.c_str(), line_));
    }
    return t;
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

// Variable facts accumulated while parsing; the Model is built at the end
// because Model fixes type and bounds at AddVariable time.
struct VarDraft {
  std::string name;
  double lb = 0.0;    // LP default bounds: [0, +inf)
  double ub = kInf;
  bool lb_explicit = false;
  bool ub_explicit = false;
  VarType type = VarType::kContinuous;
};

struct ConstraintDraft {
  LinearTerms terms;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

enum class Section {
  kObjective,
  kConstraints,
  kBounds,
  kBinaries,
  kGenerals,
  kDone,
};

// Recursive-descent parser over the token stream.
class LpParser {
 public:
  explicit LpParser(std::string_view text) : lexer_(text) {}

  Result<Model> Parse() {
    QFIX_RETURN_IF_ERROR(Advance());
    QFIX_RETURN_IF_ERROR(ParseObjectiveHeader());
    QFIX_RETURN_IF_ERROR(ParseObjective());
    while (section_ != Section::kDone) {
      switch (section_) {
        case Section::kConstraints:
          QFIX_RETURN_IF_ERROR(ParseConstraints());
          break;
        case Section::kBounds:
          QFIX_RETURN_IF_ERROR(ParseBounds());
          break;
        case Section::kBinaries:
          QFIX_RETURN_IF_ERROR(ParseIntegralitySection(VarType::kBinary));
          break;
        case Section::kGenerals:
          QFIX_RETURN_IF_ERROR(ParseIntegralitySection(VarType::kInteger));
          break;
        case Section::kObjective:
        case Section::kDone:
          return Status::Internal("lp: parser section out of order");
      }
    }
    return Build();
  }

 private:
  Status Advance() {
    QFIX_ASSIGN_OR_RETURN(cur_, lexer_.Next());
    return Status::OK();
  }

  bool AtName() const { return cur_.kind == TokKind::kName; }

  // A name token usable as a variable (not an LP reserved word). Keyword
  // handling cannot rely on line breaks: the format is newline-agnostic.
  bool AtVarName() const {
    return cur_.kind == TokKind::kName &&
           !IsReservedWord(Lexer::Lower(cur_.text));
  }

  // Recognizes a section keyword at the current token (possibly the
  // two-word "subject to"). Leaves cur_ on the first token after the
  // header and updates section_. Returns false if not a header.
  Result<bool> ConsumeSectionHeader() {
    if (cur_.kind != TokKind::kName) return false;
    std::string kw = Lexer::Lower(cur_.text);
    if (kw == "subject" || kw == "such") {
      QFIX_RETURN_IF_ERROR(Advance());
      if (cur_.kind != TokKind::kName ||
          Lexer::Lower(cur_.text) != (kw == "subject" ? "to" : "that")) {
        return Status::InvalidArgument(StringPrintf(
            "lp: dangling '%s' on line %zu", kw.c_str(), cur_.line));
      }
      QFIX_RETURN_IF_ERROR(Advance());
      section_ = Section::kConstraints;
      return true;
    }
    if (kw == "st") {
      QFIX_RETURN_IF_ERROR(Advance());
      section_ = Section::kConstraints;
      return true;
    }
    if (kw == "bounds" || kw == "bound") {
      QFIX_RETURN_IF_ERROR(Advance());
      section_ = Section::kBounds;
      return true;
    }
    if (kw == "binaries" || kw == "binary" || kw == "bin") {
      QFIX_RETURN_IF_ERROR(Advance());
      section_ = Section::kBinaries;
      return true;
    }
    if (kw == "generals" || kw == "general" || kw == "gen" ||
        kw == "integers" || kw == "integer" || kw == "int") {
      QFIX_RETURN_IF_ERROR(Advance());
      section_ = Section::kGenerals;
      return true;
    }
    if (kw == "end") {
      QFIX_RETURN_IF_ERROR(Advance());
      section_ = Section::kDone;
      return true;
    }
    return false;
  }

  Status ParseObjectiveHeader() {
    if (cur_.kind != TokKind::kName) {
      return Status::InvalidArgument("lp: file must start with an "
                                     "objective sense keyword");
    }
    std::string kw = Lexer::Lower(cur_.text);
    if (kw == "minimize" || kw == "minimum" || kw == "min") {
      maximize_ = false;
    } else if (kw == "maximize" || kw == "maximum" || kw == "max") {
      maximize_ = true;
    } else {
      return Status::InvalidArgument(StringPrintf(
          "lp: expected Minimize/Maximize, got '%s' on line %zu",
          cur_.text.c_str(), cur_.line));
    }
    section_ = Section::kObjective;
    return Advance();
  }

  // Parses "[name :] expr" up to the next section header.
  Status ParseObjective() {
    QFIX_RETURN_IF_ERROR(MaybeConsumeRowLabel(&objective_terms_));
    while (true) {
      QFIX_ASSIGN_OR_RETURN(bool header, ConsumeSectionHeader());
      if (header) return Status::OK();
      if (cur_.kind == TokKind::kEnd) {
        return Status::InvalidArgument("lp: missing End keyword");
      }
      QFIX_RETURN_IF_ERROR(ParseOneExprPiece(&objective_terms_,
                                             &objective_constant_));
    }
  }

  Status ParseConstraints() {
    while (true) {
      QFIX_ASSIGN_OR_RETURN(bool header, ConsumeSectionHeader());
      if (header) return Status::OK();
      if (cur_.kind == TokKind::kEnd) {
        return Status::InvalidArgument("lp: missing End keyword");
      }
      QFIX_RETURN_IF_ERROR(ParseOneConstraint());
    }
  }

  // One constraint: "[name :] expr sense number".
  Status ParseOneConstraint() {
    ConstraintDraft draft;
    QFIX_RETURN_IF_ERROR(MaybeConsumeRowLabel(&draft.terms));
    double lhs_constant = 0.0;
    while (cur_.kind != TokKind::kOp ||
           (cur_.text != "<=" && cur_.text != ">=" && cur_.text != "=")) {
      if (cur_.kind == TokKind::kEnd) {
        return Status::InvalidArgument(StringPrintf(
            "lp: constraint without relational operator near line %zu",
            cur_.line));
      }
      QFIX_RETURN_IF_ERROR(ParseOneExprPiece(&draft.terms, &lhs_constant));
    }
    draft.sense = cur_.text == "<=" ? Sense::kLe
                  : cur_.text == ">=" ? Sense::kGe
                                      : Sense::kEq;
    QFIX_RETURN_IF_ERROR(Advance());
    QFIX_ASSIGN_OR_RETURN(double rhs, ParseSignedNumber());
    draft.rhs = rhs - lhs_constant;
    constraints_.push_back(std::move(draft));
    return Status::OK();
  }

  // "[+|-] [number] name" or "[+|-] number": one additive piece of a
  // linear expression. Accumulates into terms/constant.
  Status ParseOneExprPiece(LinearTerms* terms, double* constant) {
    double sign = 1.0;
    while (cur_.kind == TokKind::kOp &&
           (cur_.text == "+" || cur_.text == "-")) {
      if (cur_.text == "-") sign = -sign;
      QFIX_RETURN_IF_ERROR(Advance());
    }
    if (cur_.kind == TokKind::kNumber) {
      double value = cur_.number;
      QFIX_RETURN_IF_ERROR(Advance());
      if (AtVarName()) {
        VarId v = InternVariable(cur_.text);
        terms->push_back({v, sign * value});
        return Advance();
      }
      *constant += sign * value;
      return Status::OK();
    }
    if (AtVarName()) {
      VarId v = InternVariable(cur_.text);
      terms->push_back({v, sign});
      return Advance();
    }
    return Status::InvalidArgument(StringPrintf(
        "lp: expected term on line %zu", cur_.line));
  }

  Result<double> ParseSignedNumber() {
    double sign = 1.0;
    while (cur_.kind == TokKind::kOp &&
           (cur_.text == "+" || cur_.text == "-")) {
      if (cur_.text == "-") sign = -sign;
      QFIX_RETURN_IF_ERROR(Advance());
    }
    if (cur_.kind != TokKind::kNumber) {
      return Status::InvalidArgument(StringPrintf(
          "lp: expected number on line %zu", cur_.line));
    }
    double v = sign * cur_.number;
    QFIX_RETURN_IF_ERROR(Advance());
    return v;
  }

  // Bounds lines come in several shapes; dispatch on the lookahead.
  Status ParseBounds() {
    while (true) {
      QFIX_ASSIGN_OR_RETURN(bool header, ConsumeSectionHeader());
      if (header) return Status::OK();
      if (cur_.kind == TokKind::kEnd) {
        return Status::InvalidArgument("lp: missing End keyword");
      }
      QFIX_RETURN_IF_ERROR(ParseOneBound());
    }
  }

  Status ParseOneBound() {
    // Shape A: "number <= name [<= number]".
    if (cur_.kind == TokKind::kNumber || cur_.kind == TokKind::kOp) {
      QFIX_ASSIGN_OR_RETURN(double lo, ParseSignedNumber());
      QFIX_RETURN_IF_ERROR(ExpectOp("<="));
      QFIX_RETURN_IF_ERROR(ExpectNameNext());
      VarId v = InternVariable(cur_.text);
      QFIX_RETURN_IF_ERROR(Advance());
      SetLower(v, lo);
      if (cur_.kind == TokKind::kOp && cur_.text == "<=") {
        QFIX_RETURN_IF_ERROR(Advance());
        QFIX_ASSIGN_OR_RETURN(double hi, ParseSignedNumber());
        SetUpper(v, hi);
      }
      return Status::OK();
    }
    // Shape B: "name free" | "name <= n" | "name >= n" | "name = n".
    QFIX_RETURN_IF_ERROR(ExpectNameNext());
    std::string name = cur_.text;
    QFIX_RETURN_IF_ERROR(Advance());
    if (AtName() && Lexer::Lower(cur_.text) == "free") {
      VarId v = InternVariable(name);
      SetLower(v, -kInf);
      SetUpper(v, kInf);
      return Advance();
    }
    if (cur_.kind != TokKind::kOp) {
      return Status::InvalidArgument(StringPrintf(
          "lp: malformed bound for '%s' on line %zu", name.c_str(),
          cur_.line));
    }
    std::string op = cur_.text;
    QFIX_RETURN_IF_ERROR(Advance());
    QFIX_ASSIGN_OR_RETURN(double value, ParseSignedNumber());
    VarId v = InternVariable(name);
    if (op == "<=") {
      SetUpper(v, value);
    } else if (op == ">=") {
      SetLower(v, value);
    } else if (op == "=") {
      SetLower(v, value);
      SetUpper(v, value);
    } else {
      return Status::InvalidArgument(StringPrintf(
          "lp: unexpected operator '%s' in bounds on line %zu", op.c_str(),
          cur_.line));
    }
    return Status::OK();
  }

  Status ParseIntegralitySection(VarType type) {
    while (true) {
      QFIX_ASSIGN_OR_RETURN(bool header, ConsumeSectionHeader());
      if (header) return Status::OK();
      if (cur_.kind == TokKind::kEnd) {
        return Status::InvalidArgument("lp: missing End keyword");
      }
      if (!AtName()) {
        return Status::InvalidArgument(StringPrintf(
            "lp: expected variable name on line %zu", cur_.line));
      }
      VarId v = InternVariable(cur_.text);
      vars_[v].type = type;
      QFIX_RETURN_IF_ERROR(Advance());
    }
  }

  // Consumes "name :" if present (row labels are optional in LP files).
  // A name *not* followed by ':' was actually the row's first term
  // (implicit coefficient 1) and is pushed into `terms` directly.
  Status MaybeConsumeRowLabel(LinearTerms* terms) {
    if (!AtName()) return Status::OK();
    std::string name = cur_.text;
    QFIX_RETURN_IF_ERROR(Advance());
    if (cur_.kind == TokKind::kColon) {
      return Advance();  // drop the label
    }
    terms->push_back({InternVariable(name), 1.0});
    return Status::OK();
  }

  Status ExpectOp(const char* op) {
    if (cur_.kind != TokKind::kOp || cur_.text != op) {
      return Status::InvalidArgument(StringPrintf(
          "lp: expected '%s' on line %zu", op, cur_.line));
    }
    return Advance();
  }

  Status ExpectNameNext() {
    if (!AtName()) {
      return Status::InvalidArgument(StringPrintf(
          "lp: expected variable name on line %zu", cur_.line));
    }
    return Status::OK();
  }

  VarId InternVariable(const std::string& name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    VarId id = static_cast<VarId>(vars_.size());
    index_.emplace(name, id);
    VarDraft draft;
    draft.name = name;
    vars_.push_back(std::move(draft));
    return id;
  }

  void SetLower(VarId v, double value) {
    vars_[v].lb = value;
    vars_[v].lb_explicit = true;
  }
  void SetUpper(VarId v, double value) {
    vars_[v].ub = value;
    vars_[v].ub_explicit = true;
  }

  Result<Model> Build() {
    Model model;
    for (VarDraft& draft : vars_) {
      double lb = draft.lb;
      double ub = draft.ub;
      if (draft.type == VarType::kBinary) {
        // Explicit bounds shrink the binary [0,1] box; defaults do not.
        lb = draft.lb_explicit ? std::max(lb, 0.0) : 0.0;
        ub = draft.ub_explicit ? std::min(ub, 1.0) : 1.0;
      }
      if (lb > ub) {
        return Status::InvalidArgument(StringPrintf(
            "lp: variable '%s' has empty bound interval [%g, %g]",
            draft.name.c_str(), lb, ub));
      }
      model.AddVariable(draft.type, lb, ub, std::move(draft.name));
    }
    for (ConstraintDraft& c : constraints_) {
      model.AddConstraint(std::move(c.terms), c.sense, c.rhs);
    }
    double sign = maximize_ ? -1.0 : 1.0;
    for (const Term& t : objective_terms_) {
      model.AddObjectiveTerm(t.var, sign * t.coeff);
    }
    model.AddObjectiveConstant(sign * objective_constant_);
    QFIX_RETURN_IF_ERROR(model.Validate());
    return model;
  }

  Lexer lexer_;
  Token cur_;
  Section section_ = Section::kObjective;
  bool maximize_ = false;

  std::vector<VarDraft> vars_;
  std::unordered_map<std::string, VarId> index_;
  LinearTerms objective_terms_;
  double objective_constant_ = 0.0;
  std::vector<ConstraintDraft> constraints_;
};

}  // namespace

std::string WriteLpFormat(const Model& model, const LpWriteOptions& options) {
  bool any_renamed = false;
  std::vector<std::string> names = SanitizeNames(model, &any_renamed);

  std::string out;
  out += "\\ QFix MILP export: ";
  out += StringPrintf("%d vars, %d constraints, %d integer\n",
                      model.NumVars(), model.NumConstraints(),
                      model.NumIntegerVars());
  if (any_renamed && options.comment_renames) {
    for (VarId v = 0; v < model.NumVars(); ++v) {
      if (names[v] != model.name(v)) {
        out += "\\ ";
        out += names[v];
        out += " := ";
        out += model.name(v);
        out += '\n';
      }
    }
  }

  out += "Minimize\n ";
  out += options.objective_name;
  out += ": ";
  {
    ExprWriter expr(&out, options.wrap_column);
    const std::vector<double>& obj = model.objective();
    for (VarId v = 0; v < model.NumVars(); ++v) {
      if (obj[v] != 0.0) expr.Term(obj[v], names[v]);
    }
    expr.Constant(model.objective_constant());
    expr.FinishExpr();
  }
  out += "\nSubject To\n";
  for (int32_t i = 0; i < model.NumConstraints(); ++i) {
    const Constraint& c = model.constraint(i);
    out += ' ';
    out += options.constraint_prefix;
    out += StringPrintf("%d: ", i);
    ExprWriter expr(&out, options.wrap_column);
    for (const Term& t : c.terms) expr.Term(t.coeff, names[t.var]);
    expr.FinishExpr();
    out += ' ';
    out += SenseToLp(c.sense);
    out += ' ';
    out += LpNumber(c.rhs);
    out += '\n';
  }

  // Every variable gets explicit bounds: the LP default ([0, inf)) does
  // not match arbitrary models, and explicit bounds make the file
  // self-describing.
  out += "Bounds\n";
  for (VarId v = 0; v < model.NumVars(); ++v) {
    double lb = model.lb(v);
    double ub = model.ub(v);
    out += ' ';
    if (lb == -kInf && ub == kInf) {
      out += names[v];
      out += " free";
    } else if (lb == ub) {
      out += names[v];
      out += " = ";
      out += LpNumber(lb);
    } else {
      out += LpNumber(lb);
      out += " <= ";
      out += names[v];
      out += " <= ";
      out += LpNumber(ub);
    }
    out += '\n';
  }

  bool have_binary = false;
  bool have_integer = false;
  for (VarId v = 0; v < model.NumVars(); ++v) {
    have_binary |= model.type(v) == VarType::kBinary;
    have_integer |= model.type(v) == VarType::kInteger;
  }
  if (have_binary) {
    out += "Binaries\n";
    for (VarId v = 0; v < model.NumVars(); ++v) {
      if (model.type(v) == VarType::kBinary) {
        out += ' ';
        out += names[v];
        out += '\n';
      }
    }
  }
  if (have_integer) {
    out += "Generals\n";
    for (VarId v = 0; v < model.NumVars(); ++v) {
      if (model.type(v) == VarType::kInteger) {
        out += ' ';
        out += names[v];
        out += '\n';
      }
    }
  }
  out += "End\n";
  return out;
}

Result<Model> ReadLpFormat(std::string_view text) {
  LpParser parser(text);
  return parser.Parse();
}

Status WriteLpFile(const Model& model, const std::string& path,
                   const LpWriteOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("lp: cannot open for writing: " + path);
  }
  out << WriteLpFormat(model, options);
  out.close();
  if (!out) {
    return Status::InvalidArgument("lp: write failed: " + path);
  }
  return Status::OK();
}

Result<Model> ReadLpFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("lp: cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadLpFormat(buffer.str());
}

}  // namespace milp
}  // namespace qfix
