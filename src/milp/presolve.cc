#include "milp/presolve.h"

#include <cmath>

namespace qfix {
namespace milp {
namespace {

constexpr double kFeasTol = 1e-7;

// Minimum activity contribution of one term under `d`. (Maximum activity
// is obtained by negating the row, so no TermMax is needed.)
double TermMin(const Term& t, const Domains& d) {
  return t.coeff > 0 ? t.coeff * d.lb[t.var] : t.coeff * d.ub[t.var];
}

// Records the previous bounds of `var` before a modification.
void Record(BoundTrail* trail, VarId var, const Domains& d) {
  if (trail != nullptr) trail->push_back({var, d.lb[var], d.ub[var]});
}

// Integer-aware bound tightening. Returns true if the domain changed,
// false if no change, and sets *infeasible when bounds cross.
bool TightenUpper(const Model& model, Domains& d, VarId v, double new_ub,
                  BoundTrail* trail, bool* infeasible) {
  if (model.type(v) != VarType::kContinuous) {
    new_ub = std::floor(new_ub + kFeasTol);
  }
  if (new_ub >= d.ub[v] - 1e-12) return false;
  if (new_ub < d.lb[v] - kFeasTol) {
    *infeasible = true;
    return false;
  }
  Record(trail, v, d);
  d.ub[v] = std::max(new_ub, d.lb[v]);
  return true;
}

bool TightenLower(const Model& model, Domains& d, VarId v, double new_lb,
                  BoundTrail* trail, bool* infeasible) {
  if (model.type(v) != VarType::kContinuous) {
    new_lb = std::ceil(new_lb - kFeasTol);
  }
  if (new_lb <= d.lb[v] + 1e-12) return false;
  if (new_lb > d.ub[v] + kFeasTol) {
    *infeasible = true;
    return false;
  }
  Record(trail, v, d);
  d.lb[v] = std::min(new_lb, d.ub[v]);
  return true;
}

// Propagates one <= inequality: terms <= rhs. Returns true on any change.
bool PropagateLe(const Model& model, const LinearTerms& terms, double rhs,
                 Domains& d, BoundTrail* trail, bool* infeasible) {
  // Minimum possible activity; count infinite contributions so a single
  // unbounded variable can still be tightened.
  double min_act = 0.0;
  int num_inf = 0;
  VarId inf_var = -1;
  for (const Term& t : terms) {
    double m = TermMin(t, d);
    if (std::isinf(m)) {
      ++num_inf;
      inf_var = t.var;
    } else {
      min_act += m;
    }
  }
  if (num_inf == 0 && min_act > rhs + kFeasTol * (1.0 + std::fabs(rhs))) {
    *infeasible = true;
    return false;
  }
  if (num_inf >= 2) return false;

  bool changed = false;
  for (const Term& t : terms) {
    double rest;
    if (num_inf == 1) {
      if (t.var != inf_var) continue;  // only the unbounded var tightens
      rest = min_act;
    } else {
      rest = min_act - TermMin(t, d);
    }
    double limit = rhs - rest;  // t.coeff * x <= limit
    if (t.coeff > 0) {
      changed |= TightenUpper(model, d, t.var, limit / t.coeff, trail,
                              infeasible);
    } else {
      changed |= TightenLower(model, d, t.var, limit / t.coeff, trail,
                              infeasible);
    }
    if (*infeasible) return changed;
  }
  return changed;
}

}  // namespace

Status PropagateBounds(const Model& model, Domains& domains, int max_rounds,
                       BoundTrail* trail) {
  bool infeasible = false;
  for (int round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (const Constraint& c : model.constraints()) {
      switch (c.sense) {
        case Sense::kLe:
          changed |= PropagateLe(model, c.terms, c.rhs, domains, trail,
                                 &infeasible);
          break;
        case Sense::kGe: {
          // -terms <= -rhs
          LinearTerms neg = c.terms;
          for (Term& t : neg) t.coeff = -t.coeff;
          changed |= PropagateLe(model, neg, -c.rhs, domains, trail,
                                 &infeasible);
          break;
        }
        case Sense::kEq: {
          changed |= PropagateLe(model, c.terms, c.rhs, domains, trail,
                                 &infeasible);
          if (infeasible) break;
          LinearTerms neg = c.terms;
          for (Term& t : neg) t.coeff = -t.coeff;
          changed |= PropagateLe(model, neg, -c.rhs, domains, trail,
                                 &infeasible);
          break;
        }
      }
      if (infeasible) {
        return Status::Infeasible("bound propagation proved infeasibility");
      }
    }
    if (!changed) break;
  }
  return Status::OK();
}

Status ProbeBinaries(const Model& model, Domains& domains,
                     int propagation_rounds, int max_passes,
                     BoundTrail* trail, ProbeResult* result) {
  ProbeResult local;
  ProbeResult* res = result != nullptr ? result : &local;
  *res = ProbeResult{};

  for (int pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    for (VarId v = 0; v < model.NumVars(); ++v) {
      if (model.type(v) != VarType::kBinary) continue;
      if (domains.Fixed(v)) continue;
      if (domains.lb[v] > 0.0 || domains.ub[v] < 1.0) continue;

      // Propagate each tentative side on a scratch copy.
      Domains zero = domains;
      zero.ub[v] = 0.0;
      bool zero_ok =
          PropagateBounds(model, zero, propagation_rounds, nullptr).ok();
      Domains one = domains;
      one.lb[v] = 1.0;
      bool one_ok =
          PropagateBounds(model, one, propagation_rounds, nullptr).ok();
      ++res->probed;

      if (!zero_ok && !one_ok) {
        return Status::Infeasible("probing proved infeasibility");
      }
      if (!zero_ok || !one_ok) {
        Record(trail, v, domains);
        domains.lb[v] = zero_ok ? 0.0 : 1.0;
        domains.ub[v] = domains.lb[v];
        ++res->fixed_binaries;
        changed = true;
        // Make the fixing's consequences visible to later probes.
        Status s = PropagateBounds(model, domains, propagation_rounds, trail);
        if (!s.ok()) return s;
        continue;
      }

      // Both sides survive: any feasible solution lives in one of the two
      // propagated boxes, so their union bounds every variable globally.
      for (VarId w = 0; w < model.NumVars(); ++w) {
        double nl = std::min(zero.lb[w], one.lb[w]);
        double nu = std::max(zero.ub[w], one.ub[w]);
        if (nl > domains.lb[w] + 1e-12) {
          Record(trail, w, domains);
          domains.lb[w] = std::min(nl, domains.ub[w]);
          ++res->tightened_bounds;
          changed = true;
        }
        if (nu < domains.ub[w] - 1e-12) {
          Record(trail, w, domains);
          domains.ub[w] = std::max(nu, domains.lb[w]);
          ++res->tightened_bounds;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return Status::OK();
}

void RewindTrail(Domains& domains, BoundTrail& trail, size_t mark) {
  QFIX_CHECK(mark <= trail.size());
  // Undo in reverse so the oldest record wins for multiply-changed vars.
  for (size_t i = trail.size(); i > mark; --i) {
    const BoundChange& bc = trail[i - 1];
    domains.lb[bc.var] = bc.lb;
    domains.ub[bc.var] = bc.ub;
  }
  trail.resize(mark);
}

}  // namespace milp
}  // namespace qfix
