// CPLEX LP text format export/import for MILP models.
//
// The paper hands its encodings to IBM CPLEX; this module writes our
// milp::Model in the solver-neutral LP file format (accepted by CPLEX,
// Gurobi, SCIP, CBC, HiGHS, ...) so users can cross-check QFix encodings
// against a commercial solver, and reads LP files back for testing and
// for driving the built-in solver on externally produced instances.
//
// Coverage: minimization and maximization (maximization is folded into
// the minimization form our Model stores), <=/>=/= constraints, explicit
// variable bounds including free/infinite ones, Binaries and Generals
// sections, and an objective constant. Semi-continuous variables, SOS
// sections, and ranged rows are not part of Model and are rejected.
#ifndef QFIX_MILP_LP_FORMAT_H_
#define QFIX_MILP_LP_FORMAT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "milp/model.h"

namespace qfix {
namespace milp {

struct LpWriteOptions {
  /// Name written on the objective row.
  std::string objective_name = "obj";
  /// Prefix for constraint row names (row i becomes "<prefix><i>").
  std::string constraint_prefix = "c";
  /// Wrap expression lines at roughly this many characters. The LP
  /// format caps physical lines at 510 characters; we stay far below.
  size_t wrap_column = 72;
  /// Emit the original variable names as a comment header when they had
  /// to be sanitized (LP names cannot contain '[', ' ', ...).
  bool comment_renames = true;
};

/// Renders `model` in LP format. Variable names are sanitized to the LP
/// charset and deduplicated; the mapping is emitted as comments.
std::string WriteLpFormat(const Model& model,
                          const LpWriteOptions& options = LpWriteOptions());

/// Parses an LP-format document into a Model. Variables appear in the
/// returned model in order of first mention. Maximization objectives are
/// negated into minimization form (Model is minimize-only); the negation
/// is reflected in objective coefficients and constant.
Result<Model> ReadLpFormat(std::string_view text);

/// Writes `model` to `path` in LP format. Returns an IO failure as
/// InvalidArgument (no dedicated IO code in StatusCode).
Status WriteLpFile(const Model& model, const std::string& path,
                   const LpWriteOptions& options = LpWriteOptions());

/// Reads an LP-format file from disk.
Result<Model> ReadLpFile(const std::string& path);

}  // namespace milp
}  // namespace qfix

#endif  // QFIX_MILP_LP_FORMAT_H_
