#include "milp/mps_format.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/strings.h"

namespace qfix {
namespace milp {

namespace {

std::string MpsNumber(double v) {
  if (v == kInf) return "1e30";  // MPS has no infinity literal
  if (v == -kInf) return "-1e30";
  char shortest[64];
  std::snprintf(shortest, sizeof(shortest), "%.15g", v);
  if (std::strtod(shortest, nullptr) == v) return shortest;
  char exact[64];
  std::snprintf(exact, sizeof(exact), "%.17g", v);
  return exact;
}

bool IsMpsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<std::string> SanitizeNames(const Model& model) {
  std::vector<std::string> out(model.NumVars());
  std::unordered_set<std::string> used;
  for (VarId v = 0; v < model.NumVars(); ++v) {
    std::string candidate = model.name(v);
    for (char& c : candidate) {
      if (!IsMpsNameChar(c)) c = '_';
    }
    if (candidate.empty() ||
        std::isdigit(static_cast<unsigned char>(candidate[0])) != 0) {
      candidate = "v_" + candidate;
    }
    if (used.count(candidate) > 0) {
      candidate = StringPrintf("v%d", v);
    }
    while (used.count(candidate) > 0) {
      candidate += StringPrintf("_%d", v);
    }
    used.insert(candidate);
    out[v] = std::move(candidate);
  }
  return out;
}

char RowSense(Sense s) {
  switch (s) {
    case Sense::kLe:
      return 'L';
    case Sense::kGe:
      return 'G';
    case Sense::kEq:
      return 'E';
  }
  return 'L';
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

std::vector<std::string> SplitFields(std::string_view line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) == 0) {
      ++i;
    }
    if (i > start) out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

std::string Upper(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return s;
}

Result<double> ParseMpsNumber(const std::string& field, size_t line_no) {
  char* end = nullptr;
  double v = std::strtod(field.c_str(), &end);
  if (end == nullptr || *end != '\0' || field.empty()) {
    return Status::InvalidArgument(StringPrintf(
        "mps: malformed number '%s' on line %zu", field.c_str(), line_no));
  }
  if (v >= 1e30) return kInf;
  if (v <= -1e30) return -kInf;
  return v;
}

struct MpsVarDraft {
  std::string name;
  double lb = 0.0;
  double ub = kInf;
  bool lb_explicit = false;
  bool ub_explicit = false;
  VarType type = VarType::kContinuous;
  LinearTerms rows;     // (row index, coeff)
  double obj_coeff = 0.0;
};

class MpsParser {
 public:
  explicit MpsParser(std::string_view text) : text_(text) {}

  Result<Model> Parse() {
    std::string section;
    bool in_integers = false;
    bool saw_endata = false;

    size_t pos = 0;
    size_t line_no = 0;
    while (pos <= text_.size() && !saw_endata) {
      size_t eol = text_.find('\n', pos);
      if (eol == std::string_view::npos) eol = text_.size();
      std::string_view raw = text_.substr(pos, eol - pos);
      pos = eol + 1;
      ++line_no;
      if (!raw.empty() && raw[0] == '*') continue;  // comment
      std::vector<std::string> fields = SplitFields(raw);
      if (fields.empty()) continue;

      // Section headers start in column 1 (no leading whitespace).
      bool is_header =
          std::isspace(static_cast<unsigned char>(raw[0])) == 0;
      if (is_header) {
        section = Upper(fields[0]);
        if (section == "NAME") continue;
        if (section == "OBJSENSE") {
          // Either "OBJSENSE MAX" inline or the sense on the next line.
          if (fields.size() >= 2) maximize_ = Upper(fields[1]) == "MAX";
          pending_objsense_ = fields.size() < 2;
          continue;
        }
        if (section == "ENDATA") {
          saw_endata = true;
          continue;
        }
        if (section != "ROWS" && section != "COLUMNS" && section != "RHS" &&
            section != "BOUNDS") {
          return Status::Unsupported(StringPrintf(
              "mps: unsupported section '%s' on line %zu",
              fields[0].c_str(), line_no));
        }
        continue;
      }

      if (pending_objsense_) {
        maximize_ = Upper(fields[0]) == "MAX";
        pending_objsense_ = false;
        continue;
      }

      if (section == "ROWS") {
        QFIX_RETURN_IF_ERROR(ParseRowLine(fields, line_no));
      } else if (section == "COLUMNS") {
        QFIX_RETURN_IF_ERROR(
            ParseColumnLine(fields, line_no, &in_integers));
      } else if (section == "RHS") {
        QFIX_RETURN_IF_ERROR(ParseRhsLine(fields, line_no));
      } else if (section == "BOUNDS") {
        QFIX_RETURN_IF_ERROR(ParseBoundLine(fields, line_no));
      } else {
        return Status::InvalidArgument(StringPrintf(
            "mps: data before any section header on line %zu", line_no));
      }
    }
    if (!saw_endata) {
      return Status::InvalidArgument("mps: missing ENDATA");
    }
    return Build();
  }

 private:
  Status ParseRowLine(const std::vector<std::string>& fields,
                      size_t line_no) {
    if (fields.size() != 2) {
      return Status::InvalidArgument(StringPrintf(
          "mps: ROWS line needs 'sense name' on line %zu", line_no));
    }
    std::string sense = Upper(fields[0]);
    if (sense == "N") {
      if (objective_row_.empty()) objective_row_ = fields[1];
      return Status::OK();  // extra free rows are ignored per tradition
    }
    Sense s;
    if (sense == "L") {
      s = Sense::kLe;
    } else if (sense == "G") {
      s = Sense::kGe;
    } else if (sense == "E") {
      s = Sense::kEq;
    } else {
      return Status::InvalidArgument(StringPrintf(
          "mps: unknown row sense '%s' on line %zu", fields[0].c_str(),
          line_no));
    }
    if (row_index_.count(fields[1]) > 0) {
      return Status::InvalidArgument(StringPrintf(
          "mps: duplicate row '%s' on line %zu", fields[1].c_str(),
          line_no));
    }
    row_index_.emplace(fields[1], rows_.size());
    rows_.push_back({LinearTerms{}, s, 0.0});
    return Status::OK();
  }

  Status ParseColumnLine(const std::vector<std::string>& fields,
                         size_t line_no, bool* in_integers) {
    // Marker lines toggle integrality.
    if (fields.size() >= 3 && Upper(fields[1]) == "'MARKER'") {
      std::string kind = Upper(fields[2]);
      if (kind == "'INTORG'") {
        *in_integers = true;
      } else if (kind == "'INTEND'") {
        *in_integers = false;
      } else {
        return Status::InvalidArgument(StringPrintf(
            "mps: unknown marker on line %zu", line_no));
      }
      return Status::OK();
    }
    if (fields.size() != 3 && fields.size() != 5) {
      return Status::InvalidArgument(StringPrintf(
          "mps: COLUMNS line needs 'var row value [row value]' on line "
          "%zu",
          line_no));
    }
    VarId v = InternVariable(fields[0]);
    if (*in_integers && vars_[v].type == VarType::kContinuous) {
      vars_[v].type = VarType::kInteger;
    }
    for (size_t f = 1; f + 1 < fields.size(); f += 2) {
      QFIX_ASSIGN_OR_RETURN(double value,
                            ParseMpsNumber(fields[f + 1], line_no));
      if (fields[f] == objective_row_) {
        vars_[v].obj_coeff += value;
        continue;
      }
      auto it = row_index_.find(fields[f]);
      if (it == row_index_.end()) {
        return Status::InvalidArgument(StringPrintf(
            "mps: unknown row '%s' on line %zu", fields[f].c_str(),
            line_no));
      }
      rows_[it->second].terms.push_back({v, value});
    }
    return Status::OK();
  }

  Status ParseRhsLine(const std::vector<std::string>& fields,
                      size_t line_no) {
    if (fields.size() != 3 && fields.size() != 5) {
      return Status::InvalidArgument(StringPrintf(
          "mps: RHS line needs 'set row value [row value]' on line %zu",
          line_no));
    }
    for (size_t f = 1; f + 1 < fields.size(); f += 2) {
      QFIX_ASSIGN_OR_RETURN(double value,
                            ParseMpsNumber(fields[f + 1], line_no));
      if (fields[f] == objective_row_) {
        // Convention: objective constant is the negated RHS of the
        // objective row.
        objective_constant_ = -value;
        continue;
      }
      auto it = row_index_.find(fields[f]);
      if (it == row_index_.end()) {
        return Status::InvalidArgument(StringPrintf(
            "mps: unknown RHS row '%s' on line %zu", fields[f].c_str(),
            line_no));
      }
      rows_[it->second].rhs = value;
    }
    return Status::OK();
  }

  Status ParseBoundLine(const std::vector<std::string>& fields,
                        size_t line_no) {
    if (fields.size() < 3) {
      return Status::InvalidArgument(StringPrintf(
          "mps: BOUNDS line needs 'type set var [value]' on line %zu",
          line_no));
    }
    std::string type = Upper(fields[0]);
    VarId v = InternVariable(fields[2]);
    bool needs_value = type == "UP" || type == "LO" || type == "FX" ||
                       type == "UI" || type == "LI";
    double value = 0.0;
    if (needs_value) {
      if (fields.size() < 4) {
        return Status::InvalidArgument(StringPrintf(
            "mps: bound '%s' needs a value on line %zu", type.c_str(),
            line_no));
      }
      QFIX_ASSIGN_OR_RETURN(value, ParseMpsNumber(fields[3], line_no));
    }
    MpsVarDraft& draft = vars_[v];
    if (type == "UP" || type == "UI") {
      draft.ub = value;
      draft.ub_explicit = true;
      // Historical quirk: UP with a negative value and no explicit lower
      // bound implies lb = -inf.
      if (value < 0.0 && !draft.lb_explicit) draft.lb = -kInf;
    } else if (type == "LO" || type == "LI") {
      draft.lb = value;
      draft.lb_explicit = true;
    } else if (type == "FX") {
      draft.lb = draft.ub = value;
      draft.lb_explicit = draft.ub_explicit = true;
    } else if (type == "FR") {
      draft.lb = -kInf;
      draft.ub = kInf;
      draft.lb_explicit = draft.ub_explicit = true;
    } else if (type == "MI") {
      draft.lb = -kInf;
      draft.lb_explicit = true;
    } else if (type == "PL") {
      draft.ub = kInf;
      draft.ub_explicit = true;
    } else if (type == "BV") {
      draft.type = VarType::kBinary;
      draft.lb = 0.0;
      draft.ub = 1.0;
      draft.lb_explicit = draft.ub_explicit = true;
    } else {
      return Status::InvalidArgument(StringPrintf(
          "mps: unknown bound type '%s' on line %zu", fields[0].c_str(),
          line_no));
    }
    return Status::OK();
  }

  VarId InternVariable(const std::string& name) {
    auto it = var_index_.find(name);
    if (it != var_index_.end()) return it->second;
    VarId id = static_cast<VarId>(vars_.size());
    var_index_.emplace(name, id);
    MpsVarDraft draft;
    draft.name = name;
    vars_.push_back(std::move(draft));
    return id;
  }

  Result<Model> Build() {
    Model model;
    double sign = maximize_ ? -1.0 : 1.0;
    for (MpsVarDraft& draft : vars_) {
      if (draft.lb > draft.ub) {
        return Status::InvalidArgument(StringPrintf(
            "mps: variable '%s' has empty bound interval",
            draft.name.c_str()));
      }
      VarId v = model.AddVariable(draft.type, draft.lb, draft.ub,
                                  std::move(draft.name));
      if (draft.obj_coeff != 0.0) {
        model.AddObjectiveTerm(v, sign * draft.obj_coeff);
      }
    }
    for (Constraint& row : rows_) {
      model.AddConstraint(std::move(row.terms), row.sense, row.rhs);
    }
    model.AddObjectiveConstant(sign * objective_constant_);
    QFIX_RETURN_IF_ERROR(model.Validate());
    return model;
  }

  std::string_view text_;
  bool maximize_ = false;
  bool pending_objsense_ = false;
  std::string objective_row_;
  std::unordered_map<std::string, size_t> row_index_;
  std::vector<Constraint> rows_;
  std::unordered_map<std::string, VarId> var_index_;
  std::vector<MpsVarDraft> vars_;
  double objective_constant_ = 0.0;
};

}  // namespace

std::string WriteMpsFormat(const Model& model,
                           const std::string& problem_name) {
  std::vector<std::string> names = SanitizeNames(model);

  std::string out;
  out += "* QFix MILP export (free MPS): ";
  out += StringPrintf("%d vars, %d constraints, %d integer\n",
                      model.NumVars(), model.NumConstraints(),
                      model.NumIntegerVars());
  out += "NAME " + problem_name + "\n";

  out += "ROWS\n";
  out += " N obj\n";
  for (int32_t i = 0; i < model.NumConstraints(); ++i) {
    out += StringPrintf(" %c c%d\n", RowSense(model.constraint(i).sense), i);
  }

  // Column-major coefficient lists.
  std::vector<std::vector<std::pair<int32_t, double>>> by_var(
      model.NumVars());
  for (int32_t i = 0; i < model.NumConstraints(); ++i) {
    for (const Term& t : model.constraint(i).terms) {
      by_var[t.var].emplace_back(i, t.coeff);
    }
  }

  out += "COLUMNS\n";
  bool in_integers = false;
  int marker = 0;
  for (VarId v = 0; v < model.NumVars(); ++v) {
    bool integral = model.type(v) != VarType::kContinuous;
    if (integral && !in_integers) {
      out += StringPrintf(" M%d 'MARKER' 'INTORG'\n", marker++);
      in_integers = true;
    } else if (!integral && in_integers) {
      out += StringPrintf(" M%d 'MARKER' 'INTEND'\n", marker++);
      in_integers = false;
    }
    double obj = model.objective()[v];
    bool wrote_any = false;
    if (obj != 0.0) {
      out += " " + names[v] + " obj " + MpsNumber(obj) + "\n";
      wrote_any = true;
    }
    for (const auto& [row, coeff] : by_var[v]) {
      out += " " + names[v] + StringPrintf(" c%d ", row) +
             MpsNumber(coeff) + "\n";
      wrote_any = true;
    }
    if (!wrote_any) {
      // MPS variables exist only via COLUMNS entries; emit a harmless
      // zero objective coefficient so the variable is declared.
      out += " " + names[v] + " obj 0\n";
    }
  }
  if (in_integers) out += StringPrintf(" M%d 'MARKER' 'INTEND'\n", marker++);

  out += "RHS\n";
  for (int32_t i = 0; i < model.NumConstraints(); ++i) {
    double rhs = model.constraint(i).rhs;
    if (rhs != 0.0) {
      out += StringPrintf(" rhs c%d ", i) + MpsNumber(rhs) + "\n";
    }
  }
  if (model.objective_constant() != 0.0) {
    out += " rhs obj " + MpsNumber(-model.objective_constant()) + "\n";
  }

  out += "BOUNDS\n";
  for (VarId v = 0; v < model.NumVars(); ++v) {
    double lb = model.lb(v);
    double ub = model.ub(v);
    if (model.type(v) == VarType::kBinary && lb == 0.0 && ub == 1.0) {
      out += " BV bnd " + names[v] + "\n";
      continue;
    }
    if (lb == -kInf && ub == kInf) {
      out += " FR bnd " + names[v] + "\n";
      continue;
    }
    if (lb == ub) {
      out += " FX bnd " + names[v] + " " + MpsNumber(lb) + "\n";
      continue;
    }
    if (lb == -kInf) {
      out += " MI bnd " + names[v] + "\n";
    } else {
      out += " LO bnd " + names[v] + " " + MpsNumber(lb) + "\n";
    }
    if (ub != kInf) {
      out += " UP bnd " + names[v] + " " + MpsNumber(ub) + "\n";
    }
  }
  out += "ENDATA\n";
  return out;
}

Result<Model> ReadMpsFormat(std::string_view text) {
  MpsParser parser(text);
  return parser.Parse();
}

Status WriteMpsFile(const Model& model, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("mps: cannot open for writing: " + path);
  }
  out << WriteMpsFormat(model);
  out.close();
  if (!out) return Status::InvalidArgument("mps: write failed: " + path);
  return Status::OK();
}

Result<Model> ReadMpsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("mps: cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadMpsFormat(buffer.str());
}

}  // namespace milp
}  // namespace qfix
