// Mixed-integer linear program model.
//
// This is the interface the QFix encoder targets (the role CPLEX's model
// API plays in the paper). A Model owns variables (continuous / binary /
// general integer, each with bounds), sparse linear constraints, and a
// linear minimization objective.
#ifndef QFIX_MILP_MODEL_H_
#define QFIX_MILP_MODEL_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace qfix {
namespace milp {

/// Identifies a variable within its Model (dense index).
using VarId = int32_t;

/// Positive infinity used for unbounded variable bounds.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class VarType { kContinuous, kBinary, kInteger };

enum class Sense { kLe, kGe, kEq };

/// One term of a linear expression: coeff * var.
struct Term {
  VarId var;
  double coeff;
};

/// A sparse linear expression sum_i coeff_i * var_i.
using LinearTerms = std::vector<Term>;

/// A linear constraint: terms <sense> rhs.
struct Constraint {
  LinearTerms terms;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// Lower/upper bound vectors for all variables of a model; the unit that
/// presolve tightens and branch & bound copies per node.
struct Domains {
  std::vector<double> lb;
  std::vector<double> ub;

  bool Empty() const { return lb.empty(); }
  size_t size() const { return lb.size(); }

  /// True if variable v is fixed (lb == ub).
  bool Fixed(VarId v) const { return lb[v] == ub[v]; }
};

/// A mixed-integer linear program under minimization.
class Model {
 public:
  Model() = default;

  /// Adds a variable and returns its id. `name` is kept for diagnostics
  /// and for mapping solutions back to query parameters.
  VarId AddVariable(VarType type, double lb, double ub, std::string name);

  /// Shorthand for a [0, 1] binary variable.
  VarId AddBinary(std::string name) {
    return AddVariable(VarType::kBinary, 0.0, 1.0, std::move(name));
  }
  /// Shorthand for a bounded continuous variable.
  VarId AddContinuous(double lb, double ub, std::string name) {
    return AddVariable(VarType::kContinuous, lb, ub, std::move(name));
  }

  /// Adds `terms <sense> rhs`; terms with duplicate vars are merged.
  void AddConstraint(LinearTerms terms, Sense sense, double rhs);

  /// Adds `coeff * var` to the objective (minimization).
  void AddObjectiveTerm(VarId var, double coeff);

  /// Adds a constant to the objective value.
  void AddObjectiveConstant(double c) { objective_constant_ += c; }

  /// Fixes a variable to a constant value by collapsing its bounds.
  void FixVariable(VarId var, double value) {
    QFIX_CHECK(var >= 0 && var < NumVars());
    lb_[var] = value;
    ub_[var] = value;
  }

  int32_t NumVars() const { return static_cast<int32_t>(lb_.size()); }
  int32_t NumConstraints() const {
    return static_cast<int32_t>(constraints_.size());
  }
  /// Number of binary/integer variables (drives solver difficulty).
  int32_t NumIntegerVars() const { return num_integer_vars_; }

  VarType type(VarId v) const { return types_[v]; }
  double lb(VarId v) const { return lb_[v]; }
  double ub(VarId v) const { return ub_[v]; }
  const std::string& name(VarId v) const { return names_[v]; }
  const Constraint& constraint(int32_t i) const { return constraints_[i]; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  const std::vector<double>& objective() const { return objective_; }
  double objective_constant() const { return objective_constant_; }

  /// Snapshot of the variable bounds, the starting point for presolve.
  Domains InitialDomains() const { return Domains{lb_, ub_}; }

  /// Checks structural sanity (finite coefficients, bounds ordered,
  /// binaries within [0,1]). Returns InvalidArgument on violation.
  Status Validate() const;

  /// Evaluates the objective at a full assignment.
  double EvalObjective(const std::vector<double>& x) const;

  /// True if `x` satisfies all constraints and bounds within `tol`, with
  /// integer variables within `tol` of an integer.
  bool IsFeasible(const std::vector<double>& x, double tol) const;

 private:
  std::vector<VarType> types_;
  std::vector<double> lb_;
  std::vector<double> ub_;
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
  std::vector<double> objective_;  // dense, aligned with variables
  double objective_constant_ = 0.0;
  int32_t num_integer_vars_ = 0;
};

}  // namespace milp
}  // namespace qfix

#endif  // QFIX_MILP_MODEL_H_
