// Bounded-variable primal simplex for linear programs.
//
// Solves  min c'x  s.t.  Ax {<=,>=,=} b,  l <= x <= u  over the reals.
// This is the LP workhorse underneath branch & bound (solver.h). The
// implementation is a two-phase revised simplex with a dense basis
// inverse, Dantzig pricing with a Bland's-rule anti-cycling fallback, and
// bound-flip handling for boxed variables (the common case in QFix's
// big-M encodings).
#ifndef QFIX_MILP_SIMPLEX_H_
#define QFIX_MILP_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "milp/model.h"

namespace qfix {
namespace milp {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterLimit,
  /// The instance exceeds the configured memory budget (rows² doubles).
  kTooLarge,
};

/// Outcome of one LP solve.
struct LpResult {
  LpStatus status = LpStatus::kIterLimit;
  /// Objective value (includes the model's objective constant).
  double objective = 0.0;
  /// Primal values for the model's structural variables.
  std::vector<double> x;
  int64_t iterations = 0;
};

struct SimplexOptions {
  /// Primal feasibility tolerance (absolute, scaled by row magnitude).
  double feas_tol = 1e-7;
  /// Reduced-cost optimality tolerance.
  double opt_tol = 1e-7;
  /// Pivot magnitude below which a column entry is considered zero.
  double pivot_tol = 1e-9;
  /// Hard cap on simplex iterations over both phases; 0 = automatic
  /// (5000 + 40 * rows).
  int64_t max_iterations = 0;
  /// Wall-clock budget for one LP solve; <= 0 disables. Large dense
  /// instances can take minutes per solve, so branch & bound threads its
  /// remaining deadline through here.
  double time_limit_seconds = 0.0;
  /// Refuses instances with more than this many rows (dense basis
  /// inverse memory is rows^2 * 8 bytes).
  int32_t max_rows = 4000;
};

/// Solves the LP relaxation of `model` under variable bounds `domains`
/// (integrality is ignored; callers enforce it via branch & bound).
LpResult SolveLp(const Model& model, const Domains& domains,
                 const SimplexOptions& options);

}  // namespace milp
}  // namespace qfix

#endif  // QFIX_MILP_SIMPLEX_H_
