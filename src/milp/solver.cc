#include "milp/solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/timer.h"
#include "milp/presolve.h"

namespace qfix {
namespace milp {

const char* MilpStatusToString(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal:
      return "optimal";
    case MilpStatus::kFeasible:
      return "feasible";
    case MilpStatus::kInfeasible:
      return "infeasible";
    case MilpStatus::kTimeLimit:
      return "time_limit";
    case MilpStatus::kTooLarge:
      return "too_large";
    case MilpStatus::kUnbounded:
      return "unbounded";
  }
  return "unknown";
}

namespace {

/// Search state shared across the DFS.
class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const MilpOptions& options)
      : model_(model),
        options_(options),
        deadline_(Deadline::AfterSeconds(options.time_limit_seconds)),
        pcosts_(static_cast<size_t>(model.NumVars())) {}

  MilpSolution Run() {
    MilpSolution out;
    out.stats.num_vars = model_.NumVars();
    out.stats.num_constraints = model_.NumConstraints();
    out.stats.num_integer_vars = model_.NumIntegerVars();

    WallTimer timer;
    Status valid = model_.Validate();
    QFIX_CHECK(valid.ok()) << valid.ToString();

    Domains domains = model_.InitialDomains();
    if (options_.enable_presolve) {
      Status s = PropagateBounds(model_, domains,
                                 options_.propagation_rounds, nullptr);
      if (s.IsInfeasible()) {
        out.status = MilpStatus::kInfeasible;
        out.stats.wall_seconds = timer.ElapsedSeconds();
        return out;
      }
      if (options_.enable_probing &&
          CountUnfixedBinaries(domains) <= options_.probe_max_binaries) {
        ProbeResult probe;
        s = ProbeBinaries(model_, domains, options_.propagation_rounds,
                          options_.probe_passes, nullptr, &probe);
        out.stats.probe_fixed = probe.fixed_binaries;
        out.stats.probe_tightened = probe.tightened_bounds;
        if (s.IsInfeasible()) {
          out.status = MilpStatus::kInfeasible;
          out.stats.wall_seconds = timer.ElapsedSeconds();
          return out;
        }
      }
    }

    Dfs(domains, /*depth=*/0, /*try_rounding=*/true);

    out.stats.nodes = nodes_;
    out.stats.lp_iterations = lp_iterations_;
    out.stats.wall_seconds = timer.ElapsedSeconds();

    if (too_large_) {
      out.status = MilpStatus::kTooLarge;
      return out;
    }
    if (unbounded_ && !have_incumbent_) {
      out.status = MilpStatus::kUnbounded;
      return out;
    }
    if (have_incumbent_) {
      out.objective = incumbent_obj_;
      out.x = incumbent_x_;
      out.status = (limit_hit_ || !exact_) ? MilpStatus::kFeasible
                                           : MilpStatus::kOptimal;
      return out;
    }
    out.status = (limit_hit_ || !exact_) ? MilpStatus::kTimeLimit
                                         : MilpStatus::kInfeasible;
    return out;
  }

 private:
  // Depth-first node processing. `domains` is mutated in place; callers
  // rewind via the trail. When `entry_obj` is non-null it receives this
  // node's LP relaxation objective (NaN if the LP did not reach
  // optimality) — the parent uses it to update pseudo-costs.
  void Dfs(Domains& domains, int depth, bool try_rounding,
           double* entry_obj = nullptr) {
    if (entry_obj != nullptr) {
      *entry_obj = std::numeric_limits<double>::quiet_NaN();
    }
    if (too_large_ || unbounded_) return;
    if (deadline_.Expired() || nodes_ >= options_.max_nodes) {
      limit_hit_ = true;
      return;
    }
    ++nodes_;

    LpResult lp = SolveLp(model_, domains, LpOptionsForNode());
    lp_iterations_ += lp.iterations;
    switch (lp.status) {
      case LpStatus::kInfeasible:
        return;
      case LpStatus::kTooLarge:
        too_large_ = true;
        return;
      case LpStatus::kUnbounded:
        unbounded_ = true;
        return;
      case LpStatus::kIterLimit:
        // No dual bound available; continue branching blindly but drop
        // the optimality certificate.
        exact_ = false;
        BranchWithoutBound(domains, depth);
        return;
      case LpStatus::kOptimal:
        break;
    }
    if (entry_obj != nullptr) *entry_obj = lp.objective;

    // Bound pruning (minimization).
    if (have_incumbent_ && lp.objective >= incumbent_obj_ - 1e-9) return;

    int branch_var = PickBranchVariable(lp.x, domains);
    if (branch_var < 0) {
      AcceptIncumbent(lp.x);
      return;
    }

    if (try_rounding && options_.enable_rounding_heuristic) {
      TryRounding(domains, lp.x);
      if (have_incumbent_ && lp.objective >= incumbent_obj_ - 1e-9) return;
    }

    double xv = lp.x[branch_var];
    double floor_v = std::floor(xv);
    double ceil_v = floor_v + 1.0;
    double frac = xv - floor_v;
    // Explore the side nearer the LP value first (dive).
    bool floor_first = frac <= 0.5;
    for (int side = 0; side < 2; ++side) {
      bool use_floor = (side == 0) == floor_first;
      size_t mark = trail_.size();
      trail_.push_back(
          {branch_var, domains.lb[branch_var], domains.ub[branch_var]});
      if (use_floor) {
        domains.ub[branch_var] = std::min(domains.ub[branch_var], floor_v);
      } else {
        domains.lb[branch_var] = std::max(domains.lb[branch_var], ceil_v);
      }
      if (domains.lb[branch_var] <= domains.ub[branch_var]) {
        Status s = PropagateBounds(model_, domains,
                                   options_.propagation_rounds, &trail_);
        if (s.ok()) {
          double child_obj;
          Dfs(domains, depth + 1, /*try_rounding=*/false, &child_obj);
          UpdatePseudoCost(branch_var, use_floor, frac, lp.objective,
                           child_obj);
        }
      }
      RewindTrail(domains, trail_, mark);
      if (too_large_ || unbounded_) return;
      if (limit_hit_) return;
    }
  }

  // Records how much fixing `var` down/up degraded the child's LP bound,
  // normalized per unit of fractionality removed.
  void UpdatePseudoCost(int var, bool went_down, double frac,
                        double parent_obj, double child_obj) {
    if (options_.branch_rule != BranchRule::kPseudoCost) return;
    if (std::isnan(child_obj)) return;
    double removed = went_down ? frac : 1.0 - frac;
    if (removed < 1e-6) return;
    double degradation = std::max(child_obj - parent_obj, 0.0) / removed;
    PseudoCost& pc = pcosts_[var];
    if (went_down) {
      pc.down_sum += degradation;
      ++pc.down_n;
    } else {
      pc.up_sum += degradation;
      ++pc.up_n;
    }
  }

  int CountUnfixedBinaries(const Domains& domains) const {
    int n = 0;
    for (VarId v = 0; v < model_.NumVars(); ++v) {
      if (model_.type(v) == VarType::kBinary && !domains.Fixed(v)) ++n;
    }
    return n;
  }

  // Fallback branching when the LP failed to converge: fix the first
  // unfixed integer variable to its bounds' midpoint split.
  void BranchWithoutBound(Domains& domains, int depth) {
    int branch_var = -1;
    for (VarId v = 0; v < model_.NumVars(); ++v) {
      if (model_.type(v) == VarType::kContinuous) continue;
      if (domains.lb[v] < domains.ub[v] - 0.5) {
        branch_var = v;
        break;
      }
    }
    if (branch_var < 0) return;  // cannot certify anything here
    double mid = std::floor((domains.lb[branch_var] +
                             domains.ub[branch_var]) / 2.0);
    for (int side = 0; side < 2; ++side) {
      size_t mark = trail_.size();
      trail_.push_back(
          {branch_var, domains.lb[branch_var], domains.ub[branch_var]});
      if (side == 0) {
        domains.ub[branch_var] = mid;
      } else {
        domains.lb[branch_var] = mid + 1.0;
      }
      if (domains.lb[branch_var] <= domains.ub[branch_var]) {
        Status s = PropagateBounds(model_, domains,
                                   options_.propagation_rounds, &trail_);
        if (s.ok()) Dfs(domains, depth + 1, /*try_rounding=*/false);
      }
      RewindTrail(domains, trail_, mark);
      if (too_large_ || unbounded_ || limit_hit_) return;
    }
  }

  // Returns the branching variable per the configured rule, or -1 if the
  // solution is integral.
  int PickBranchVariable(const std::vector<double>& x,
                         const Domains& domains) const {
    if (options_.branch_rule == BranchRule::kPseudoCost) {
      return PickByPseudoCost(x, domains);
    }
    int best = -1;
    double best_frac = options_.int_tol;
    for (VarId v = 0; v < model_.NumVars(); ++v) {
      if (model_.type(v) == VarType::kContinuous) continue;
      if (domains.Fixed(v)) continue;
      double frac = std::fabs(x[v] - std::round(x[v]));
      double dist_to_half = std::fabs(frac - 0.5);
      if (frac > options_.int_tol &&
          (best < 0 || dist_to_half < best_frac)) {
        best = v;
        best_frac = dist_to_half;
      }
    }
    return best;
  }

  // Product rule over estimated down/up bound degradations; variables
  // without history in a direction estimate with their raw fraction, so
  // unexplored variables stay competitive (a crude reliability rule).
  int PickByPseudoCost(const std::vector<double>& x,
                       const Domains& domains) const {
    int best = -1;
    double best_score = -1.0;
    for (VarId v = 0; v < model_.NumVars(); ++v) {
      if (model_.type(v) == VarType::kContinuous) continue;
      if (domains.Fixed(v)) continue;
      double frac = x[v] - std::floor(x[v]);
      double dist = std::min(frac, 1.0 - frac);
      if (dist <= options_.int_tol) continue;
      const PseudoCost& pc = pcosts_[v];
      double down_est =
          pc.down_n > 0 ? (pc.down_sum / pc.down_n) * frac : frac;
      double up_est =
          pc.up_n > 0 ? (pc.up_sum / pc.up_n) * (1.0 - frac) : 1.0 - frac;
      double score = std::max(down_est, 1e-6) * std::max(up_est, 1e-6);
      if (score > best_score) {
        best = v;
        best_score = score;
      }
    }
    return best;
  }

  // Records an integral LP solution as the new incumbent after verifying
  // it against the original model.
  void AcceptIncumbent(std::vector<double> x) {
    // Snap integer variables exactly.
    for (VarId v = 0; v < model_.NumVars(); ++v) {
      if (model_.type(v) != VarType::kContinuous) x[v] = std::round(x[v]);
    }
    if (!model_.IsFeasible(x, 1e-5)) return;  // numerical mirage; skip
    double obj = model_.EvalObjective(x);
    if (!have_incumbent_ || obj < incumbent_obj_) {
      have_incumbent_ = true;
      incumbent_obj_ = obj;
      incumbent_x_ = std::move(x);
    }
  }

  // Root heuristic: fix every integer variable to the rounded LP value,
  // propagate, and re-solve the LP for the continuous remainder.
  void TryRounding(Domains& domains, const std::vector<double>& x) {
    size_t mark = trail_.size();
    bool viable = true;
    for (VarId v = 0; v < model_.NumVars() && viable; ++v) {
      if (model_.type(v) == VarType::kContinuous) continue;
      double r = std::round(x[v]);
      r = std::clamp(r, domains.lb[v], domains.ub[v]);
      trail_.push_back({v, domains.lb[v], domains.ub[v]});
      domains.lb[v] = r;
      domains.ub[v] = r;
    }
    Status s = PropagateBounds(model_, domains,
                               options_.propagation_rounds, &trail_);
    if (s.ok()) {
      LpResult lp = SolveLp(model_, domains, LpOptionsForNode());
      lp_iterations_ += lp.iterations;
      if (lp.status == LpStatus::kOptimal) AcceptIncumbent(lp.x);
    }
    RewindTrail(domains, trail_, mark);
  }

  // LP options with the solver's remaining wall-clock budget threaded
  // through, so a single large LP cannot outlive the MILP deadline.
  SimplexOptions LpOptionsForNode() const {
    SimplexOptions opts = options_.lp;
    double remaining = deadline_.RemainingSeconds();
    if (remaining < 1e20 &&
        (opts.time_limit_seconds <= 0.0 ||
         remaining < opts.time_limit_seconds)) {
      opts.time_limit_seconds = std::max(remaining, 1e-3);
    }
    return opts;
  }

  /// Running per-variable estimates of LP bound degradation when the
  /// variable is pushed down/up (pseudo-cost branching).
  struct PseudoCost {
    double down_sum = 0.0;
    double up_sum = 0.0;
    int down_n = 0;
    int up_n = 0;
  };

  const Model& model_;
  const MilpOptions& options_;
  Deadline deadline_;
  std::vector<PseudoCost> pcosts_;

  BoundTrail trail_;
  bool have_incumbent_ = false;
  double incumbent_obj_ = 0.0;
  std::vector<double> incumbent_x_;
  bool limit_hit_ = false;
  bool too_large_ = false;
  bool unbounded_ = false;
  bool exact_ = true;
  int64_t nodes_ = 0;
  int64_t lp_iterations_ = 0;
};

}  // namespace

MilpSolution MilpSolver::Solve(const Model& model) const {
  BranchAndBound bb(model, options_);
  return bb.Run();
}

}  // namespace milp
}  // namespace qfix
