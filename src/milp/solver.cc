#include "milp/solver.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "exec/cancellation.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "milp/presolve.h"

namespace qfix {
namespace milp {

const char* MilpStatusToString(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal:
      return "optimal";
    case MilpStatus::kFeasible:
      return "feasible";
    case MilpStatus::kInfeasible:
      return "infeasible";
    case MilpStatus::kTimeLimit:
      return "time_limit";
    case MilpStatus::kTooLarge:
      return "too_large";
    case MilpStatus::kUnbounded:
      return "unbounded";
  }
  return "unknown";
}

namespace {

/// Search state shared by every subtree worker of one Solve() call.
/// Workers prune against `PruneBound()` with a single atomic load; the
/// full incumbent vector sits behind a mutex taken only on improvement,
/// which is rare compared to node processing.
class SharedSearch {
 public:
  SharedSearch(const Model& model, const MilpOptions& options)
      : model_(model),
        options_(options),
        deadline_(Deadline::AfterSeconds(options.time_limit_seconds)) {}

  const Model& model() const { return model_; }
  const MilpOptions& options() const { return options_; }
  const Deadline& deadline() const { return deadline_; }
  exec::CancellationToken token() const { return cancel_.token(); }

  /// True once any terminal condition fired; workers return from their
  /// subtree as soon as they observe it.
  bool Halted() const {
    return cancel_.cancelled() || limit_hit_.load(std::memory_order_relaxed);
  }

  /// Claims one node against the global budget. Returns false (and
  /// latches the limit) when the deadline or node budget is exhausted
  /// or an external caller (service shutdown) cancelled the solve.
  bool TakeNode() {
    if (deadline_.Expired() || options_.cancel.cancelled() ||
        nodes_.load(std::memory_order_relaxed) >= options_.max_nodes) {
      SetLimitHit();
      return false;
    }
    nodes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void SetLimitHit() {
    limit_hit_.store(true, std::memory_order_relaxed);
    cancel_.Cancel();  // queued subtree tasks are skipped, not searched
  }
  void SetTooLarge() {
    too_large_.store(true, std::memory_order_relaxed);
    cancel_.Cancel();
  }
  void SetUnbounded() {
    unbounded_.store(true, std::memory_order_relaxed);
    cancel_.Cancel();
  }
  void SetInexact() { inexact_.store(true, std::memory_order_relaxed); }

  bool limit_hit() const { return limit_hit_.load(std::memory_order_relaxed); }
  bool too_large() const { return too_large_.load(std::memory_order_relaxed); }
  bool unbounded() const { return unbounded_.load(std::memory_order_relaxed); }
  bool inexact() const { return inexact_.load(std::memory_order_relaxed); }
  int64_t nodes() const { return nodes_.load(std::memory_order_relaxed); }

  /// The objective every worker prunes against (+inf until a feasible
  /// solution exists). Lock-free on the hot path.
  double PruneBound() const {
    return incumbent_bound_.load(std::memory_order_acquire);
  }

  /// Installs `x` as the incumbent if it beats the current one. `x` must
  /// already be verified feasible against the original model.
  void OfferIncumbent(double obj, std::vector<double> x) {
    bool installed = false;
    {
      std::lock_guard<std::mutex> lock(incumbent_mu_);
      if (!have_incumbent_ || obj < incumbent_obj_) {
        have_incumbent_ = true;
        incumbent_obj_ = obj;
        incumbent_x_ = std::move(x);
        ++incumbent_updates_;
        incumbent_bound_.store(obj, std::memory_order_release);
        installed = true;
      }
    }
    if (installed && trace() != nullptr) {
      // Zero-width mark at the moment a better solution landed — the
      // retained trace shows when the solve stopped improving.
      double t = trace()->ElapsedSeconds();
      trace()->AddSpan("incumbent_update", t, t, trace_parent());
    }
  }

  obs::TraceContext* trace() const { return options_.trace; }
  size_t trace_parent() const { return options_.trace_parent_span; }
  /// Claims one of the solve-wide "node_batch" span slots.
  bool TakeNodeBatchSpanSlot() {
    return node_batch_spans_.fetch_add(1, std::memory_order_relaxed) <
           kMaxNodeBatchSpans;
  }

  int64_t incumbent_updates() {
    std::lock_guard<std::mutex> lock(incumbent_mu_);
    return incumbent_updates_;
  }

  bool GetIncumbent(double* obj, std::vector<double>* x) {
    std::lock_guard<std::mutex> lock(incumbent_mu_);
    if (!have_incumbent_) return false;
    *obj = incumbent_obj_;
    *x = incumbent_x_;
    return true;
  }

  // --- subtree task throttling ---
  bool WantMoreTasks() const {
    return open_tasks_.load(std::memory_order_relaxed) <
           options_.jobs * 4;
  }
  void TaskStarted() { open_tasks_.fetch_add(1, std::memory_order_relaxed); }
  void TaskFinished() { open_tasks_.fetch_sub(1, std::memory_order_relaxed); }

  void MergeStats(const MilpStats& worker) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    merged_stats_.MergeFrom(worker);
  }
  MilpStats merged_stats() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return merged_stats_;
  }

 private:
  const Model& model_;
  const MilpOptions& options_;
  Deadline deadline_;
  exec::CancellationSource cancel_;

  std::atomic<int64_t> nodes_{0};
  std::atomic<bool> limit_hit_{false};
  std::atomic<bool> too_large_{false};
  std::atomic<bool> unbounded_{false};
  std::atomic<bool> inexact_{false};
  std::atomic<int> open_tasks_{0};
  std::atomic<int64_t> node_batch_spans_{0};

  std::atomic<double> incumbent_bound_{
      std::numeric_limits<double>::infinity()};
  std::mutex incumbent_mu_;
  bool have_incumbent_ = false;
  double incumbent_obj_ = 0.0;
  int64_t incumbent_updates_ = 0;
  std::vector<double> incumbent_x_;

  std::mutex stats_mu_;
  MilpStats merged_stats_;
};

/// One worker's depth-first search over a subtree. Owns its own bound
/// trail and pseudo-cost table (pseudo-costs are a per-worker heuristic;
/// sharing them would serialize every node on a lock for marginal
/// benefit). With a TaskGroup attached, the second branch side at a node
/// may be packaged as a fresh subtree task for idle workers to steal;
/// without one (serial mode) the search is the original deterministic
/// DFS.
class SubtreeWorker {
 public:
  SubtreeWorker(SharedSearch& shared, exec::TaskGroup* group)
      : shared_(shared),
        group_(group),
        pcosts_(static_cast<size_t>(shared.model().NumVars())) {}

  /// Runs the DFS rooted at `domains`, then folds this worker's counters
  /// into the shared stats.
  void Search(Domains domains, bool try_rounding) {
    Dfs(domains, /*depth=*/0, try_rounding);
    FlushNodeBatch();
    shared_.MergeStats(stats_);
  }

 private:
  const Model& model() const { return shared_.model(); }
  const MilpOptions& options() const { return shared_.options(); }

  // Depth-first node processing. `domains` is mutated in place; callers
  // rewind via the trail. When `entry_obj` is non-null it receives this
  // node's LP relaxation objective (NaN if the LP did not reach
  // optimality) — the parent uses it to update pseudo-costs.
  void Dfs(Domains& domains, int depth, bool try_rounding,
           double* entry_obj = nullptr) {
    if (entry_obj != nullptr) {
      *entry_obj = std::numeric_limits<double>::quiet_NaN();
    }
    if (shared_.Halted()) return;
    if (!shared_.TakeNode()) return;
    ++stats_.nodes;
    if (shared_.trace() != nullptr) TickNodeBatch();

    // The root worker's first LP is the root relaxation — the span an
    // operator reads first when a solve is slow (a fat root LP means
    // the model, not the tree, is the problem).
    const bool is_root_lp =
        depth == 0 && try_rounding && shared_.trace() != nullptr;
    double root_lp_start = 0.0;
    if (is_root_lp) root_lp_start = shared_.trace()->ElapsedSeconds();
    LpResult lp = SolveLp(model(), domains, LpOptionsForNode());
    if (is_root_lp) {
      shared_.trace()->AddSpan("root_lp", root_lp_start,
                               shared_.trace()->ElapsedSeconds(),
                               shared_.trace_parent());
    }
    stats_.lp_iterations += lp.iterations;
    switch (lp.status) {
      case LpStatus::kInfeasible:
        return;
      case LpStatus::kTooLarge:
        shared_.SetTooLarge();
        return;
      case LpStatus::kUnbounded:
        shared_.SetUnbounded();
        return;
      case LpStatus::kIterLimit:
        // No dual bound available; continue branching blindly but drop
        // the optimality certificate.
        shared_.SetInexact();
        BranchWithoutBound(domains, depth);
        return;
      case LpStatus::kOptimal:
        break;
    }
    if (entry_obj != nullptr) *entry_obj = lp.objective;

    // Bound pruning (minimization) against the global incumbent.
    if (lp.objective >= shared_.PruneBound() - 1e-9) return;

    int branch_var = PickBranchVariable(lp.x, domains);
    if (branch_var < 0) {
      AcceptIncumbent(lp.x);
      return;
    }

    if (try_rounding && options().enable_rounding_heuristic) {
      TryRounding(domains, lp.x);
      if (lp.objective >= shared_.PruneBound() - 1e-9) return;
    }

    double xv = lp.x[branch_var];
    double floor_v = std::floor(xv);
    double ceil_v = floor_v + 1.0;
    double frac = xv - floor_v;
    // Explore the side nearer the LP value first (dive).
    bool floor_first = frac <= 0.5;
    for (int side = 0; side < 2; ++side) {
      bool use_floor = (side == 0) == floor_first;
      // Offload the away-side subtree to the pool when workers are
      // hungry; the dive side stays on this worker so the incumbent
      // arrives as fast as in the serial search.
      if (side == 1 && group_ != nullptr && shared_.WantMoreTasks()) {
        SpawnSubtree(domains, branch_var, use_floor, floor_v, ceil_v);
        continue;
      }
      size_t mark = trail_.size();
      trail_.push_back(
          {branch_var, domains.lb[branch_var], domains.ub[branch_var]});
      if (use_floor) {
        domains.ub[branch_var] = std::min(domains.ub[branch_var], floor_v);
      } else {
        domains.lb[branch_var] = std::max(domains.lb[branch_var], ceil_v);
      }
      if (domains.lb[branch_var] <= domains.ub[branch_var]) {
        Status s = PropagateBounds(model(), domains,
                                   options().propagation_rounds, &trail_);
        if (s.ok()) {
          double child_obj;
          Dfs(domains, depth + 1, /*try_rounding=*/false, &child_obj);
          UpdatePseudoCost(branch_var, use_floor, frac, lp.objective,
                           child_obj);
        }
      }
      RewindTrail(domains, trail_, mark);
      if (shared_.Halted()) return;
    }
  }

  // Packages one branch side as an independent subtree task: snapshot
  // the domains, apply the branch bound, and hand it to the group. The
  // child propagates and searches with its own worker state.
  void SpawnSubtree(const Domains& domains, int branch_var, bool use_floor,
                    double floor_v, double ceil_v) {
    Domains child = domains;
    if (use_floor) {
      child.ub[branch_var] = std::min(child.ub[branch_var], floor_v);
    } else {
      child.lb[branch_var] = std::max(child.lb[branch_var], ceil_v);
    }
    if (child.lb[branch_var] > child.ub[branch_var]) return;
    ++stats_.spawned_subtrees;
    shared_.TaskStarted();
    SharedSearch& shared = shared_;
    exec::TaskGroup* group = group_;
    group->Spawn([&shared, group, child = std::move(child)]() mutable {
      Status s = PropagateBounds(shared.model(), child,
                                 shared.options().propagation_rounds,
                                 nullptr);
      if (s.ok() && !shared.Halted()) {
        SubtreeWorker worker(shared, group);
        worker.Search(std::move(child), /*try_rounding=*/false);
      }
      shared.TaskFinished();
    });
  }

  // Records how much fixing `var` down/up degraded the child's LP bound,
  // normalized per unit of fractionality removed.
  void UpdatePseudoCost(int var, bool went_down, double frac,
                        double parent_obj, double child_obj) {
    if (options().branch_rule != BranchRule::kPseudoCost) return;
    if (std::isnan(child_obj)) return;
    double removed = went_down ? frac : 1.0 - frac;
    if (removed < 1e-6) return;
    double degradation = std::max(child_obj - parent_obj, 0.0) / removed;
    PseudoCost& pc = pcosts_[var];
    if (went_down) {
      pc.down_sum += degradation;
      ++pc.down_n;
    } else {
      pc.up_sum += degradation;
      ++pc.up_n;
    }
  }

  // Fallback branching when the LP failed to converge: fix the first
  // unfixed integer variable to its bounds' midpoint split.
  void BranchWithoutBound(Domains& domains, int depth) {
    int branch_var = -1;
    for (VarId v = 0; v < model().NumVars(); ++v) {
      if (model().type(v) == VarType::kContinuous) continue;
      if (domains.lb[v] < domains.ub[v] - 0.5) {
        branch_var = v;
        break;
      }
    }
    if (branch_var < 0) return;  // cannot certify anything here
    double mid = std::floor((domains.lb[branch_var] +
                             domains.ub[branch_var]) / 2.0);
    for (int side = 0; side < 2; ++side) {
      size_t mark = trail_.size();
      trail_.push_back(
          {branch_var, domains.lb[branch_var], domains.ub[branch_var]});
      if (side == 0) {
        domains.ub[branch_var] = mid;
      } else {
        domains.lb[branch_var] = mid + 1.0;
      }
      if (domains.lb[branch_var] <= domains.ub[branch_var]) {
        Status s = PropagateBounds(model(), domains,
                                   options().propagation_rounds, &trail_);
        if (s.ok()) Dfs(domains, depth + 1, /*try_rounding=*/false);
      }
      RewindTrail(domains, trail_, mark);
      if (shared_.Halted()) return;
    }
  }

  // Returns the branching variable per the configured rule, or -1 if the
  // solution is integral.
  int PickBranchVariable(const std::vector<double>& x,
                         const Domains& domains) const {
    if (options().branch_rule == BranchRule::kPseudoCost) {
      return PickByPseudoCost(x, domains);
    }
    int best = -1;
    double best_frac = options().int_tol;
    for (VarId v = 0; v < model().NumVars(); ++v) {
      if (model().type(v) == VarType::kContinuous) continue;
      if (domains.Fixed(v)) continue;
      double frac = std::fabs(x[v] - std::round(x[v]));
      double dist_to_half = std::fabs(frac - 0.5);
      if (frac > options().int_tol &&
          (best < 0 || dist_to_half < best_frac)) {
        best = v;
        best_frac = dist_to_half;
      }
    }
    return best;
  }

  // Product rule over estimated down/up bound degradations; variables
  // without history in a direction estimate with their raw fraction, so
  // unexplored variables stay competitive (a crude reliability rule).
  int PickByPseudoCost(const std::vector<double>& x,
                       const Domains& domains) const {
    int best = -1;
    double best_score = -1.0;
    for (VarId v = 0; v < model().NumVars(); ++v) {
      if (model().type(v) == VarType::kContinuous) continue;
      if (domains.Fixed(v)) continue;
      double frac = x[v] - std::floor(x[v]);
      double dist = std::min(frac, 1.0 - frac);
      if (dist <= options().int_tol) continue;
      const PseudoCost& pc = pcosts_[v];
      double down_est =
          pc.down_n > 0 ? (pc.down_sum / pc.down_n) * frac : frac;
      double up_est =
          pc.up_n > 0 ? (pc.up_sum / pc.up_n) * (1.0 - frac) : 1.0 - frac;
      double score = std::max(down_est, 1e-6) * std::max(up_est, 1e-6);
      if (score > best_score) {
        best = v;
        best_score = score;
      }
    }
    return best;
  }

  // Offers an integral LP solution as the new incumbent after verifying
  // it against the original model.
  void AcceptIncumbent(std::vector<double> x) {
    // Snap integer variables exactly.
    for (VarId v = 0; v < model().NumVars(); ++v) {
      if (model().type(v) != VarType::kContinuous) x[v] = std::round(x[v]);
    }
    if (!model().IsFeasible(x, 1e-5)) return;  // numerical mirage; skip
    double obj = model().EvalObjective(x);
    shared_.OfferIncumbent(obj, std::move(x));
  }

  // Root heuristic: fix every integer variable to the rounded LP value,
  // propagate, and re-solve the LP for the continuous remainder.
  void TryRounding(Domains& domains, const std::vector<double>& x) {
    size_t mark = trail_.size();
    for (VarId v = 0; v < model().NumVars(); ++v) {
      if (model().type(v) == VarType::kContinuous) continue;
      double r = std::round(x[v]);
      r = std::clamp(r, domains.lb[v], domains.ub[v]);
      trail_.push_back({v, domains.lb[v], domains.ub[v]});
      domains.lb[v] = r;
      domains.ub[v] = r;
    }
    Status s = PropagateBounds(model(), domains,
                               options().propagation_rounds, &trail_);
    if (s.ok()) {
      LpResult lp = SolveLp(model(), domains, LpOptionsForNode());
      stats_.lp_iterations += lp.iterations;
      if (lp.status == LpStatus::kOptimal) AcceptIncumbent(lp.x);
    }
    RewindTrail(domains, trail_, mark);
  }

  // Sampled node-batch spans: one span per kTraceNodeBatch nodes this
  // worker processes, bounded solve-wide by kMaxNodeBatchSpans (and by
  // the trace's own span cap). At a high node rate the per-node cost
  // is one branch; the clock is only read at batch edges.
  void TickNodeBatch() {
    if (batch_nodes_ == 0) {
      batch_start_ = shared_.trace()->ElapsedSeconds();
    }
    if (++batch_nodes_ >= kTraceNodeBatch) FlushNodeBatch();
  }

  void FlushNodeBatch() {
    if (batch_nodes_ == 0) return;
    obs::TraceContext* trace = shared_.trace();
    if (trace != nullptr && shared_.TakeNodeBatchSpanSlot()) {
      trace->AddSpan("node_batch", batch_start_, trace->ElapsedSeconds(),
                     shared_.trace_parent());
    }
    batch_nodes_ = 0;
  }

  // LP options with the solver's remaining wall-clock budget threaded
  // through, so a single large LP cannot outlive the MILP deadline.
  SimplexOptions LpOptionsForNode() const {
    SimplexOptions opts = options().lp;
    double remaining = shared_.deadline().RemainingSeconds();
    if (remaining < 1e20 &&
        (opts.time_limit_seconds <= 0.0 ||
         remaining < opts.time_limit_seconds)) {
      opts.time_limit_seconds = std::max(remaining, 1e-3);
    }
    return opts;
  }

  /// Running per-variable estimates of LP bound degradation when the
  /// variable is pushed down/up (pseudo-cost branching).
  struct PseudoCost {
    double down_sum = 0.0;
    double up_sum = 0.0;
    int down_n = 0;
    int up_n = 0;
  };

  SharedSearch& shared_;
  exec::TaskGroup* group_;
  std::vector<PseudoCost> pcosts_;
  BoundTrail trail_;
  MilpStats stats_;
  int64_t batch_nodes_ = 0;
  double batch_start_ = 0.0;
};

int NormalizedJobs(const MilpOptions& options) {
  // A caller-owned pool dictates the parallelism: its worker count is
  // what the search can actually use (a deterministic pool has zero
  // workers, which selects the serial search).
  if (options.pool != nullptr) {
    return std::max(options.pool->num_workers(), 1);
  }
  if (options.jobs == 0) return exec::ThreadPool::DefaultParallelism();
  return std::max(options.jobs, 1);
}

}  // namespace

MilpSolution MilpSolver::Solve(const Model& model) const {
  MilpOptions options = options_;
  options.jobs = NormalizedJobs(options);

  MilpSolution out;
  out.stats.num_vars = model.NumVars();
  out.stats.num_constraints = model.NumConstraints();
  out.stats.num_integer_vars = model.NumIntegerVars();
  out.stats.workers = options.jobs;

  const double start = MonotonicSeconds();
  Status valid = model.Validate();
  QFIX_CHECK(valid.ok()) << valid.ToString();

  SharedSearch shared(model, options);

  Domains domains = model.InitialDomains();
  if (options.enable_presolve) {
    double presolve_start = 0.0;
    if (options.trace != nullptr) {
      presolve_start = options.trace->ElapsedSeconds();
    }
    auto end_presolve_span = [&] {
      if (options.trace != nullptr) {
        options.trace->AddSpan("presolve", presolve_start,
                               options.trace->ElapsedSeconds(),
                               options.trace_parent_span);
      }
    };
    Status s = PropagateBounds(model, domains, options.propagation_rounds,
                               nullptr);
    if (s.IsInfeasible()) {
      end_presolve_span();
      out.status = MilpStatus::kInfeasible;
      out.stats.wall_seconds = MonotonicSeconds() - start;
      return out;
    }
    int unfixed_binaries = 0;
    for (VarId v = 0; v < model.NumVars(); ++v) {
      if (model.type(v) == VarType::kBinary && !domains.Fixed(v)) {
        ++unfixed_binaries;
      }
    }
    if (options.enable_probing &&
        unfixed_binaries <= options.probe_max_binaries) {
      ProbeResult probe;
      s = ProbeBinaries(model, domains, options.propagation_rounds,
                        options.probe_passes, nullptr, &probe);
      out.stats.probe_fixed = probe.fixed_binaries;
      out.stats.probe_tightened = probe.tightened_bounds;
      if (s.IsInfeasible()) {
        end_presolve_span();
        out.status = MilpStatus::kInfeasible;
        out.stats.wall_seconds = MonotonicSeconds() - start;
        return out;
      }
    }
    end_presolve_span();
  }

  if (options.jobs <= 1) {
    SubtreeWorker worker(shared, /*group=*/nullptr);
    worker.Search(std::move(domains), /*try_rounding=*/true);
  } else {
    // Reuse the caller's pool when one was provided; otherwise build a
    // private one for this call (the original owning path).
    std::optional<exec::ThreadPool> owned;
    exec::ThreadPool* pool = options.pool;
    if (pool == nullptr) {
      owned.emplace(options.jobs);
      pool = &*owned;
    }
    exec::TaskGroup group(pool, shared.token());
    shared.TaskStarted();
    group.Spawn([&shared, &group, root = std::move(domains)]() mutable {
      SubtreeWorker worker(shared, &group);
      worker.Search(std::move(root), /*try_rounding=*/true);
      shared.TaskFinished();
    });
    group.Wait();
  }

  MilpStats merged = shared.merged_stats();
  out.stats.nodes = merged.nodes;
  out.stats.lp_iterations = merged.lp_iterations;
  out.stats.spawned_subtrees = merged.spawned_subtrees;
  out.stats.incumbent_updates = shared.incumbent_updates();
  out.stats.wall_seconds = MonotonicSeconds() - start;

  if (shared.too_large()) {
    out.status = MilpStatus::kTooLarge;
    return out;
  }
  double obj;
  std::vector<double> x;
  bool have_incumbent = shared.GetIncumbent(&obj, &x);
  if (shared.unbounded() && !have_incumbent) {
    out.status = MilpStatus::kUnbounded;
    return out;
  }
  bool proven = !shared.limit_hit() && !shared.inexact();
  if (have_incumbent) {
    out.objective = obj;
    out.x = std::move(x);
    out.status = proven ? MilpStatus::kOptimal : MilpStatus::kFeasible;
    return out;
  }
  out.status = proven ? MilpStatus::kInfeasible : MilpStatus::kTimeLimit;
  return out;
}

}  // namespace milp
}  // namespace qfix
