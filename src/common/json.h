// Minimal JSON document writer.
//
// Produces RFC 8259-conformant output for the library's machine-readable
// reports (diagnosis JSON, tools integration). Writer-only by design: the
// library core never consumes JSON; the service front-end, which does,
// has its own parser (service/json_value.h).
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("verified"); w.Bool(true);
//   w.Key("queries");  w.BeginArray(); w.Int(1); w.EndArray();
//   w.EndObject();
//   w.str()  // {"verified":true,"queries":[1]}
#ifndef QFIX_COMMON_JSON_H_
#define QFIX_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qfix {

/// Streaming JSON writer with automatic comma placement. Structural
/// misuse (e.g. two keys in a row) trips a QFIX_CHECK — report shapes
/// are static, so a malformed document is a programming error.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes an object key; the next value call supplies its value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  /// Non-finite doubles are not representable in JSON; they are written
  /// as null.
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Splices `json` — which must itself be one complete, valid JSON
  /// value — verbatim as the next value. Lets composite documents embed
  /// pre-rendered sub-documents (e.g. a report_json rendering inside a
  /// service response) without reparsing. The caller vouches for
  /// validity; nothing is checked beyond non-emptiness.
  void Raw(std::string_view json);

  /// The document so far. Valid once every Begin has been matched.
  const std::string& str() const { return out_; }

 private:
  struct Level {
    char kind;  // 'o' = object, 'a' = array
    bool has_elements = false;
  };

  // Comma/colon bookkeeping shared by every value-writing method.
  void BeforeValue();

  std::string out_;
  std::vector<Level> levels_;
  bool have_key_ = false;
  bool root_written_ = false;
};

/// Escapes `s` per JSON string rules (quotes, backslash, control chars).
std::string JsonEscape(std::string_view s);

}  // namespace qfix

#endif  // QFIX_COMMON_JSON_H_
