// Minimal assertion and logging macros.
//
// QFIX_CHECK(cond) aborts with a message when an internal invariant is
// violated; it is active in all build types because a wrong repair is far
// worse than a crash in this domain. Extra context can be streamed in:
//   QFIX_CHECK(i < n) << "index " << i;
#ifndef QFIX_COMMON_LOGGING_H_
#define QFIX_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace qfix {
namespace internal {

/// Accumulates a failure message and aborts on destruction.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition) {
    stream_ << "QFIX_CHECK failed at " << file << ":" << line << ": "
            << condition << " ";
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Binds looser than operator<< so streamed context is collected before
/// the expression is voided (glog idiom).
class Voidify {
 public:
  // Const ref binds both the bare temporary and the result of operator<<.
  void operator&(const CheckFailStream&) {}
};

}  // namespace internal
}  // namespace qfix

#define QFIX_CHECK(cond)                               \
  (cond) ? (void)0                                     \
         : ::qfix::internal::Voidify() &               \
               ::qfix::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define QFIX_CHECK_OK(status_expr)                                   \
  do {                                                               \
    const ::qfix::Status& _qfix_s = (status_expr);                   \
    QFIX_CHECK(_qfix_s.ok()) << _qfix_s.ToString();                  \
  } while (0)

#endif  // QFIX_COMMON_LOGGING_H_
